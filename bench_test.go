// Package repro's root benchmark harness regenerates every table and figure
// of the paper's evaluation as a testing.B benchmark, reporting the paper's
// metric (throughput, error rate, latency gap, normalized execution time) as
// custom benchmark metrics. Run with:
//
//	go test -bench=. -benchmem
//
// Each benchmark corresponds to one artifact in DESIGN.md's per-experiment
// index; the Ablation* benchmarks cover the design-choice studies DESIGN.md
// calls out.
package repro_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/exp"
	"repro/internal/exp/pack"
	"repro/internal/figures"
	"repro/internal/memctrl"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// quietMachine builds a machine with the given LLC geometry and no noise.
func quietMachine(b *testing.B, llcBytes, llcWays int) *sim.Machine {
	b.Helper()
	cfg := sim.DefaultConfig()
	cfg.LLCBytes = llcBytes
	cfg.LLCWays = llcWays
	m, err := sim.New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// flatMem is a constant-latency backend for isolating one cache level.
type flatMem struct{}

func (flatMem) Access(now int64, addr uint64, write bool) int64 { return 100 }

// BenchmarkCacheAccess measures the simulator's per-access hot path on a
// cache hit: with fixed-slot counters and precomputed tag shifts this must
// be allocation- and hash-free. (Baseline with string-map counters and
// per-access setBits recomputation: ~18.8 ns/op.)
func BenchmarkCacheAccess(b *testing.B) {
	run := func(b *testing.B, ways int) {
		c, err := cache.New(cache.Config{
			Name: "l1", SizeBytes: 32 << 10, Ways: ways, LineBytes: 64, Latency: 4, Policy: cache.PolicyLRU,
		}, flatMem{})
		if err != nil {
			b.Fatal(err)
		}
		c.Access(0, 0x1000, false)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			c.Access(int64(i), 0x1000, false)
		}
	}
	b.Run("8way-hit", func(b *testing.B) { run(b, 8) })
	b.Run("direct-hit", func(b *testing.B) { run(b, 1) })
}

// BenchmarkBankAccess measures the DRAM device's per-access hot path on a
// row-buffer hit, including outcome accounting.
func BenchmarkBankAccess(b *testing.B) {
	dev, err := dram.NewDevice(dram.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := dev.Access(0, 0, 5); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.Access(int64(i)*200, 0, 5); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigureSuite compares the sequential experiment runner against
// the worker-pool runner over the full quick-scale artifact set; the
// parallel variant must produce byte-identical reports in a fraction of
// the wall-clock time on a multi-core host.
func BenchmarkFigureSuite(b *testing.B) {
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := figures.All(figures.ScaleQuick); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportMetric(float64(runtime.NumCPU()), "cores")
		for i := 0; i < b.N; i++ {
			if _, err := figures.RunParallel(figures.ScaleQuick, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRowBufferLatencyGap regenerates the Section 3.1 microbenchmark:
// the ~74-cycle conflict-vs-hit gap.
func BenchmarkRowBufferLatencyGap(b *testing.B) {
	var gap int64
	for i := 0; i < b.N; i++ {
		m := quietMachine(b, 8<<20, 16)
		c := m.Core(0)
		c.TranslateTouch(m.AddrFor(0, 10, 0))
		c.TranslateTouch(m.AddrFor(0, 20, 0))
		c.LoadUncached(m.AddrFor(0, 10, 0))
		hit := c.LoadUncached(m.AddrFor(0, 10, 64))
		c.Advance(500)
		conflict := c.LoadUncached(m.AddrFor(0, 20, 0))
		gap = conflict - hit
	}
	b.ReportMetric(float64(gap), "gap-cycles")
	if gap < 60 || gap > 90 {
		b.Fatalf("gap %d cycles outside the paper's ~74-cycle band", gap)
	}
}

// channelBench runs one covert channel and reports the paper's metrics.
func channelBench(b *testing.B, bits int, run func(*sim.Machine, []bool, core.Options) (core.Result, error)) {
	b.Helper()
	msg := core.RandomMessage(bits, 42)
	var res core.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = run(quietMachine(b, 8<<20, 16), msg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.ThroughputMbps, "Mb/s")
	b.ReportMetric(res.ErrorRate*100, "err%")
	b.ReportMetric(float64(res.Cycles)/float64(bits), "cyc/bit")
}

// BenchmarkFig9PnM is the IMPACT-PnM headline number (paper: 8.2 Mb/s).
func BenchmarkFig9PnM(b *testing.B) { channelBench(b, 4096, core.RunPnM) }

// BenchmarkFig9PuM is the IMPACT-PuM headline number (paper: 14.8 Mb/s).
func BenchmarkFig9PuM(b *testing.B) { channelBench(b, 4096, core.RunPuM) }

// BenchmarkFig9DRAMAClflush is the strongest prior-work baseline
// (paper: ~2.3 Mb/s at the default LLC).
func BenchmarkFig9DRAMAClflush(b *testing.B) { channelBench(b, 2048, core.RunDRAMAClflush) }

// BenchmarkFig9DRAMAEviction is the eviction-set baseline (paper: slowest).
func BenchmarkFig9DRAMAEviction(b *testing.B) { channelBench(b, 512, core.RunDRAMAEviction) }

// BenchmarkFig9DMA is the DMA-engine baseline (paper: 0.81 Mb/s).
func BenchmarkFig9DMA(b *testing.B) { channelBench(b, 1024, core.RunDMA) }

// BenchmarkFig2LLCSizeSweep regenerates the Figure 2 series: the direct
// attack stays flat while the eviction baseline collapses with LLC size.
func BenchmarkFig2LLCSizeSweep(b *testing.B) {
	msg := core.RandomMessage(512, 2)
	for i := 0; i < b.N; i++ {
		var direct4, direct128, baseline4, baseline128 core.Result
		var err error
		if direct4, err = core.RunDirect(quietMachine(b, 4<<20, 16), msg, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if direct128, err = core.RunDirect(quietMachine(b, 128<<20, 16), msg, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if baseline4, err = core.RunDRAMAEviction(quietMachine(b, 4<<20, 16), msg, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if baseline128, err = core.RunDRAMAEviction(quietMachine(b, 128<<20, 16), msg, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(direct4.ThroughputMbps, "direct4MB")
			b.ReportMetric(direct128.ThroughputMbps, "direct128MB")
			b.ReportMetric(baseline4.ThroughputMbps, "evict4MB")
			b.ReportMetric(baseline128.ThroughputMbps, "evict128MB")
			if direct128.ThroughputMbps < direct4.ThroughputMbps*0.9 {
				b.Fatal("direct attack throughput not flat across LLC sizes")
			}
			if baseline128.ThroughputMbps > baseline4.ThroughputMbps/2 {
				b.Fatal("eviction baseline did not collapse with LLC size")
			}
		}
	}
}

// BenchmarkFig3LLCWaySweep regenerates the Figure 3 series over LLC ways.
func BenchmarkFig3LLCWaySweep(b *testing.B) {
	msg := core.RandomMessage(512, 3)
	for i := 0; i < b.N; i++ {
		low, err := core.RunDRAMAEviction(quietMachine(b, 16<<20, 2), msg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		high, err := core.RunDRAMAEviction(quietMachine(b, 16<<20, 128), msg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			b.ReportMetric(low.ThroughputMbps, "evict2way")
			b.ReportMetric(high.ThroughputMbps, "evict128way")
			if high.ThroughputMbps > low.ThroughputMbps/4 {
				b.Fatal("eviction baseline did not collapse with associativity")
			}
		}
	}
}

// BenchmarkFig8PoC regenerates the 16-bit proof of concept with the paper's
// 150-cycle threshold; the transmission must decode perfectly.
func BenchmarkFig8PoC(b *testing.B) {
	msg := []bool{true, true, true, false, false, true, false, false,
		true, true, true, false, false, true, false, false}
	var pnm, pum core.Result
	var err error
	for i := 0; i < b.N; i++ {
		if pnm, err = core.RunPnM(quietMachine(b, 8<<20, 16), msg, core.Options{RecordLatencies: true}); err != nil {
			b.Fatal(err)
		}
		if pum, err = core.RunPuM(quietMachine(b, 8<<20, 16), msg, core.Options{RecordLatencies: true}); err != nil {
			b.Fatal(err)
		}
	}
	if pnm.Correct != 16 || pum.Correct != 16 {
		b.Fatalf("PoC decode errors: pnm %d/16, pum %d/16", pnm.Correct, pum.Correct)
	}
	b.ReportMetric(float64(pnm.Latencies[3]), "pnm-logic0-cyc")
	b.ReportMetric(float64(pnm.Latencies[0]), "pnm-logic1-cyc")
}

// BenchmarkFig10Breakdown regenerates the sender/receiver time breakdown:
// the PuM sender must be roughly an order of magnitude cheaper.
func BenchmarkFig10Breakdown(b *testing.B) {
	msg := core.RandomMessage(2048, 5)
	var pnm, pum core.Result
	var err error
	for i := 0; i < b.N; i++ {
		if pnm, err = core.RunPnM(quietMachine(b, 8<<20, 16), msg, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if pum, err = core.RunPuM(quietMachine(b, 8<<20, 16), msg, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	ratio := float64(pnm.SenderCycles) / float64(pum.SenderCycles)
	b.ReportMetric(ratio, "sender-ratio")
	b.ReportMetric(float64(pnm.ReceiverCycles)/float64(pum.ReceiverCycles), "receiver-ratio")
	if ratio < 4 {
		b.Fatalf("PnM/PuM sender ratio %.1f too low (paper: 11.1x)", ratio)
	}
}

// BenchmarkFig11SideChannel regenerates the bank sweep of the genomics side
// channel at its two endpoints.
func BenchmarkFig11SideChannel(b *testing.B) {
	var lo, hi core.SideChannelResult
	var err error
	for i := 0; i < b.N; i++ {
		if lo, err = figures.SideChannelOnce(1024, 1<<18, 8000, 3, 7); err != nil {
			b.Fatal(err)
		}
		if hi, err = figures.SideChannelOnce(8192, 1<<18, 8000, 3, 7); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(lo.ThroughputMbps, "1024banks-Mb/s")
	b.ReportMetric(hi.ThroughputMbps, "8192banks-Mb/s")
	b.ReportMetric(lo.ErrorRate*100, "1024banks-err%")
	b.ReportMetric(hi.ErrorRate*100, "8192banks-err%")
	if hi.ThroughputMbps >= lo.ThroughputMbps {
		b.Fatal("side-channel throughput did not decline with bank count")
	}
	if hi.ErrorRate <= lo.ErrorRate {
		b.Fatal("side-channel error did not rise with bank count")
	}
}

// BenchmarkFig12Defenses regenerates the defense performance comparison.
func BenchmarkFig12Defenses(b *testing.B) {
	var rows []workloads.DefenseRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = workloads.RunDefenseComparison(workloads.SmallSuiteConfig(), workloads.DefenseConfigs())
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range rows {
		b.ReportMetric(row.GMean, row.Defense+"-gmean")
	}
}

// BenchmarkACTThroughputReduction regenerates the Section 7.4 analysis.
func BenchmarkACTThroughputReduction(b *testing.B) {
	msg := core.RandomMessage(1024, 99)
	run := func(mem memctrl.Config) core.Result {
		cfg := sim.DefaultConfig()
		cfg.Mem = mem
		m, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunPnM(m, msg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var base, aggr core.Result
	for i := 0; i < b.N; i++ {
		base = run(memctrl.DefaultConfig())
		mem := memctrl.DefaultConfig()
		mem.Defense = memctrl.DefenseAdaptive
		mem.ACT = memctrl.ACTAggressive()
		aggr = run(mem)
	}
	reduction := 100 * (1 - aggr.EffectiveThroughputMbps/base.EffectiveThroughputMbps)
	b.ReportMetric(reduction, "aggr-reduction%")
	if reduction < 70 {
		b.Fatalf("ACT-Aggressive reduction %.0f%% below the paper's 72%%", reduction)
	}
}

// BenchmarkAblationRowPolicy studies the open-row timeout DESIGN.md calls
// out: shrinking the timeout below the batch period kills the channel.
func BenchmarkAblationRowPolicy(b *testing.B) {
	msg := core.RandomMessage(1024, 7)
	run := func(timeout int64) core.Result {
		cfg := sim.DefaultConfig()
		cfg.DRAM.Timing.RowTimeout = timeout
		m, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunPnM(m, msg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var open, strict core.Result
	for i := 0; i < b.N; i++ {
		open = run(0)
		strict = run(260) // the literal 100 ns of Table 2
	}
	b.ReportMetric(open.EffectiveThroughputMbps, "no-timeout-Mb/s")
	b.ReportMetric(strict.EffectiveThroughputMbps, "100ns-timeout-Mb/s")
	if strict.EffectiveThroughputMbps > open.EffectiveThroughputMbps/2 {
		b.Fatal("a 100 ns timeout should cripple the channel (see DESIGN.md)")
	}
}

// BenchmarkAblationBatchSize sweeps the number of banks used per batch.
func BenchmarkAblationBatchSize(b *testing.B) {
	msg := core.RandomMessage(1024, 8)
	run := func(banks int) core.Result {
		m := quietMachine(b, 8<<20, 16)
		set := make([]int, banks)
		for i := range set {
			set[i] = i
		}
		res, err := core.RunPuM(m, msg, core.Options{Banks: set})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var narrow, wide core.Result
	for i := 0; i < b.N; i++ {
		narrow = run(2)
		wide = run(16)
	}
	b.ReportMetric(narrow.ThroughputMbps, "2banks-Mb/s")
	b.ReportMetric(wide.ThroughputMbps, "16banks-Mb/s")
	if wide.ThroughputMbps <= narrow.ThroughputMbps {
		b.Fatal("bank parallelism did not raise throughput")
	}
}

// BenchmarkAblationThreshold sweeps the decode threshold around the paper's
// 150-cycle operating point.
func BenchmarkAblationThreshold(b *testing.B) {
	msg := core.RandomMessage(1024, 9)
	run := func(threshold int64) core.Result {
		res, err := core.RunPnM(quietMachine(b, 8<<20, 16), msg, core.Options{Threshold: threshold})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var low, mid, high core.Result
	for i := 0; i < b.N; i++ {
		low = run(60)   // below the logic-0 band: everything decodes 1
		mid = run(150)  // the paper's threshold
		high = run(400) // above the logic-1 band: everything decodes 0
	}
	b.ReportMetric(low.ErrorRate*100, "thr60-err%")
	b.ReportMetric(mid.ErrorRate*100, "thr150-err%")
	b.ReportMetric(high.ErrorRate*100, "thr400-err%")
	if mid.ErrorRate > 0.02 {
		b.Fatalf("threshold 150 error %.1f%%", mid.ErrorRate*100)
	}
	if low.ErrorRate < 0.3 || high.ErrorRate < 0.3 {
		b.Fatal("extreme thresholds should break decoding")
	}
}

// BenchmarkAblationNoise sweeps the background-activity intensity.
func BenchmarkAblationNoise(b *testing.B) {
	msg := core.RandomMessage(2048, 10)
	run := func(noise float64) core.Result {
		cfg := sim.DefaultConfig()
		cfg.Noise.EventsPerMCycle = noise
		m, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunPnM(m, msg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var quiet, noisy core.Result
	for i := 0; i < b.N; i++ {
		quiet = run(0)
		noisy = run(300)
	}
	b.ReportMetric(quiet.ErrorRate*100, "quiet-err%")
	b.ReportMetric(noisy.ErrorRate*100, "noisy-err%")
	if noisy.ErrorRate <= quiet.ErrorRate {
		b.Fatal("noise had no effect on error rate")
	}
}

// BenchmarkAblationACTConfig traces the ACT performance-security frontier.
func BenchmarkAblationACTConfig(b *testing.B) {
	msg := core.RandomMessage(1024, 11)
	attack := func(penalty int64) core.Result {
		mem := memctrl.DefaultConfig()
		mem.Defense = memctrl.DefenseAdaptive
		mem.ACT = memctrl.ACTConfig{EpochCycles: 2600, ConflictThreshold: 1, PenaltyEpochs: penalty}
		cfg := sim.DefaultConfig()
		cfg.Mem = mem
		m, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunPnM(m, msg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var mild, aggressive core.Result
	for i := 0; i < b.N; i++ {
		mild = attack(2)
		aggressive = attack(4000)
	}
	b.ReportMetric(mild.EffectiveThroughputMbps, "penalty2-Mb/s")
	b.ReportMetric(aggressive.EffectiveThroughputMbps, "penalty4000-Mb/s")
	if aggressive.EffectiveThroughputMbps >= mild.EffectiveThroughputMbps {
		b.Fatal("longer penalties did not reduce attack throughput")
	}
}

// BenchmarkAblationMappingScheme compares address-mapping schemes: both
// must sustain the channel (the attack composes addresses per scheme).
func BenchmarkAblationMappingScheme(b *testing.B) {
	msg := core.RandomMessage(1024, 12)
	run := func(scheme dram.MappingScheme) core.Result {
		cfg := sim.DefaultConfig()
		cfg.Mapping = scheme
		m, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunPnM(m, msg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var xor, linear core.Result
	for i := 0; i < b.N; i++ {
		xor = run(dram.MapBankXOR)
		linear = run(dram.MapRowInterleaved)
	}
	b.ReportMetric(xor.ThroughputMbps, "bankxor-Mb/s")
	b.ReportMetric(linear.ThroughputMbps, "rowinterleaved-Mb/s")
	if xor.ErrorRate > 0.05 || linear.ErrorRate > 0.05 {
		b.Fatal("channel broken under one of the mapping schemes")
	}
}

// BenchmarkWorkloadBFS measures the simulator's own execution speed on the
// BFS kernel (host ns per simulated access).
func BenchmarkWorkloadBFS(b *testing.B) {
	g := workloads.NewRandomGraph(1<<12, 8, 11)
	for i := 0; i < b.N; i++ {
		m, err := sim.New(sim.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		res := workloads.BFS{G: g}.Run(m.Core(0))
		if res.Accesses == 0 {
			b.Fatal("no accesses")
		}
	}
}

// BenchmarkAblationRefresh quantifies DDR4 refresh's effect on the channel:
// a 4.5% duty cycle of tRFC stalls plus row closures.
func BenchmarkAblationRefresh(b *testing.B) {
	msg := core.RandomMessage(2048, 13)
	run := func(maint dram.Maintenance) core.Result {
		cfg := sim.DefaultConfig()
		cfg.Noise.EventsPerMCycle = 0
		cfg.DRAM.Maintenance = maint
		m, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunPnM(m, msg, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var off, on core.Result
	for i := 0; i < b.N; i++ {
		off = run(dram.Maintenance{})
		on = run(dram.DDR4Refresh())
	}
	b.ReportMetric(off.ThroughputMbps, "no-refresh-Mb/s")
	b.ReportMetric(on.ThroughputMbps, "refresh-Mb/s")
	b.ReportMetric(on.ErrorRate*100, "refresh-err%")
	if on.ThroughputMbps >= off.ThroughputMbps {
		b.Fatal("refresh had no cost")
	}
}

// BenchmarkSection84RFM regenerates the Section 8.4 RowHammer-mitigation
// analysis: preventive-action stalls are visible but tolerable.
func BenchmarkSection84RFM(b *testing.B) {
	msg := core.RandomMessage(2048, 14)
	run := func(maint dram.Maintenance, opt core.Options) core.Result {
		cfg := sim.DefaultConfig()
		cfg.Noise.EventsPerMCycle = 0
		cfg.DRAM.Maintenance = maint
		m, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err := core.RunPnM(m, msg, opt)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var plain, rfm core.Result
	for i := 0; i < b.N; i++ {
		plain = run(dram.Maintenance{}, core.Options{})
		rfm = run(dram.DDR5RFM(), core.Options{MaintenanceStall: dram.DDR5RFM().MitigationPenalty})
	}
	b.ReportMetric(plain.ThroughputMbps, "plain-Mb/s")
	b.ReportMetric(rfm.ThroughputMbps, "rfm-filtered-Mb/s")
	b.ReportMetric(rfm.ErrorRate*100, "rfm-err%")
}

// BenchmarkMemoryMassaging measures the cost of the attack's setup phase:
// discovering co-located address pairs purely by timing.
func BenchmarkMemoryMassaging(b *testing.B) {
	var res core.MassageResult
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Noise.EventsPerMCycle = 0
		m, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err = core.MassageMemory(m, m.Core(0), 16)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.ProbeCount), "probes")
	b.ReportMetric(float64(res.Cycles), "setup-cycles")
}

// BenchmarkReliableFraming measures the coded channel's goodput on a noisy
// machine.
func BenchmarkReliableFraming(b *testing.B) {
	data := core.RandomMessage(2048, 15)
	var res core.ReliableResult
	for i := 0; i < b.N; i++ {
		cfg := sim.DefaultConfig()
		cfg.Noise.EventsPerMCycle = 250
		m, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		res, err = core.RunReliable(m, data, core.Options{}, core.RunPnM)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.GoodputMbps, "goodput-Mb/s")
	b.ReportMetric(float64(res.Coded.ResidualErrors), "residual-bits")
	b.ReportMetric(res.Raw.ErrorRate*100, "raw-err%")
}

// BenchmarkPipelinedPnM measures the overlapped-protocol variant of
// Section 4.1 (sender and receiver work concurrently on disjoint bank
// halves).
func BenchmarkPipelinedPnM(b *testing.B) {
	msg := core.RandomMessage(4096, 16)
	var serial, pipelined core.Result
	var err error
	for i := 0; i < b.N; i++ {
		if serial, err = core.RunPnM(quietMachine(b, 8<<20, 16), msg, core.Options{}); err != nil {
			b.Fatal(err)
		}
		if pipelined, err = core.RunPnMPipelined(quietMachine(b, 8<<20, 16), msg, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(serial.ThroughputMbps, "serial-Mb/s")
	b.ReportMetric(pipelined.ThroughputMbps, "pipelined-Mb/s")
	if pipelined.ThroughputMbps <= serial.ThroughputMbps {
		b.Fatal("pipelining did not improve throughput")
	}
}

// BenchmarkServerRun measures the experiment service's POST /v1/run path
// cold (every request against a fresh engine, all runs simulated) vs.
// cached (one shared engine, every run content-addressed into the result
// cache). The gap is the serving-layer win: identical specs are answered
// without touching the simulator.
func BenchmarkServerRun(b *testing.B) {
	spec := []byte(`{
		"scenario": "covert-pnm",
		"grid": {"llc_bytes": [4194304, 8388608], "mem.defense": ["none", "crp"]}
	}`)
	post := func(b *testing.B, h http.Handler) *httptest.ResponseRecorder {
		b.Helper()
		req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(spec))
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("POST /v1/run = %d: %s", rec.Code, rec.Body)
		}
		return rec
	}

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h := exp.NewServer(exp.NewEngine()).Handler()
			post(b, h)
		}
	})

	b.Run("cached", func(b *testing.B) {
		h := exp.NewServer(exp.NewEngine()).Handler()
		warm := post(b, h) // prime the cache outside the timed loop
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rec := post(b, h)
			if !bytes.Equal(rec.Body.Bytes(), warm.Body.Bytes()) {
				b.Fatal("cached response drifted from the primed response")
			}
			if rec.Header().Get("X-Cache") != "hit" {
				b.Fatalf("X-Cache = %q, want hit", rec.Header().Get("X-Cache"))
			}
		}
	})

	// The warm path under concurrency: many goroutines hammer one handler
	// with the same spec, so throughput is bounded by the sharded cache and
	// the metrics middleware rather than the simulator. Responses must stay
	// byte-identical to the primed response under contention.
	b.Run("cached-parallel", func(b *testing.B) {
		h := exp.NewServer(exp.NewEngine()).Handler()
		warm := post(b, h)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				req := httptest.NewRequest(http.MethodPost, "/v1/run", bytes.NewReader(spec))
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("POST /v1/run = %d: %s", rec.Code, rec.Body)
				}
				if !bytes.Equal(rec.Body.Bytes(), warm.Body.Bytes()) {
					b.Fatal("concurrent cached response drifted")
				}
			}
		})
	})
}

// BenchmarkResultStoreGet is the pinned form of the docs/benchmark.md
// object-count sweep: Get latency on a preloaded durable result store,
// pack engine vs. the per-file backend, at two object counts. Pack
// answers every Get with one in-memory index lookup plus one bundle
// ReadAt, so its per-op time must stay flat as the store grows; the
// per-file backend pays a full open/read/close (and at preload time an
// fsync per entry — why the 10^6 points of the recorded sweep run
// against pack only).
func BenchmarkResultStoreGet(b *testing.B) {
	blob := json.RawMessage(`{"scenario":"covert-pnm","throughput_mbps":8.21,` +
		`"error_rate":0.0042,"cycles":812345,"rows":[11,12,13,14,15,16,17,18]}`)
	keyOf := func(i int) string {
		sum := sha256.Sum256([]byte(fmt.Sprintf("bench-object-%d", i)))
		return hex.EncodeToString(sum[:])
	}
	run := func(b *testing.B, st exp.ResultStore, n int) {
		b.Helper()
		for i := 0; i < n; i++ {
			st.Put(context.Background(), keyOf(i), blob)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, ok := st.Get(context.Background(), keyOf(i%n)); !ok {
				b.Fatalf("preloaded key %d missing", i%n)
			}
		}
	}
	for _, n := range []int{1000, 10000} {
		n := n
		b.Run(fmt.Sprintf("pack-%d", n), func(b *testing.B) {
			st, err := pack.Open(b.TempDir(), pack.WithAuditInterval(0))
			if err != nil {
				b.Fatal(err)
			}
			defer st.Close()
			run(b, st, n)
		})
		b.Run(fmt.Sprintf("files-%d", n), func(b *testing.B) {
			st, err := exp.NewStore(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			run(b, st, n)
		})
	}
}

// BenchmarkColdRun measures the cold-path provisioning win: a full
// machine assembly plus one quick-scale PnM transmission (fresh) against
// the pooled Get→run→Put cycle (pooled), whose reset fast path reuses
// the machine's allocated DRAM rows, cache arrays, and counter blocks.
// The pooled subbenchmark pins the two regressions that matter: the
// cold-run speedup must stay >= 2x (measured ~3.5x; see
// docs/benchmark.md) and the pooled cycle must allocate at least 8x
// less than assembly (measured ~47x less).
func BenchmarkColdRun(b *testing.B) {
	cfg := sim.DefaultConfig()
	msg := core.RandomMessage(512, 101)
	cold := func() {
		m, err := sim.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.RunPnM(m, msg, core.Options{}); err != nil {
			b.Fatal(err)
		}
	}

	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cold()
		}
	})

	b.Run("pooled", func(b *testing.B) {
		pool := sim.NewPool()
		cycle := func() {
			m, err := pool.Get(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := core.RunPnM(m, msg, core.Options{}); err != nil {
				b.Fatal(err)
			}
			pool.Put(m)
		}
		cycle() // warm the pool so the timed loop hits the reset path
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			cycle()
		}
		b.StopTimer()

		pooledPerOp := b.Elapsed() / time.Duration(b.N)
		const reps = 8
		start := time.Now()
		for i := 0; i < reps; i++ {
			cold()
		}
		coldPerOp := time.Since(start) / reps
		ratio := float64(coldPerOp) / float64(pooledPerOp)
		b.ReportMetric(ratio, "speedup-x")
		if ratio < 2 {
			b.Fatalf("pooled cold-run speedup %.2fx below the 2x pin (cold %v, pooled %v)",
				ratio, coldPerOp, pooledPerOp)
		}

		coldAllocs := testing.AllocsPerRun(3, cold)
		pooledAllocs := testing.AllocsPerRun(3, cycle)
		b.ReportMetric(pooledAllocs, "pooled-allocs")
		if pooledAllocs > coldAllocs/8 {
			b.Fatalf("pooled cycle allocates %.0f objects vs %.0f cold: reset is leaking assembly work",
				pooledAllocs, coldAllocs)
		}
	})
}

// BenchmarkSweepExpand compares eager grid materialization against the
// lazy iterator at the synchronous bound (a 64x64 = 4096-run grid):
// Expand allocates the full Cartesian product of resolved configs, while
// Expansion's construction cost is the decoded axes plus one probed run
// regardless of grid size — the property that lets the job path afford
// MaxJobRuns. The lazy subbenchmark pins the gap at two orders of
// magnitude in allocations.
func BenchmarkSweepExpand(b *testing.B) {
	grid := func(path string, n int) string {
		vals := make([]json.RawMessage, n)
		for i := range vals {
			vals[i] = json.RawMessage(fmt.Sprint(i))
		}
		blob, _ := json.Marshal(vals)
		return fmt.Sprintf("%q: %s", path, blob)
	}
	spec, err := exp.ParseSpec([]byte(fmt.Sprintf(`{"scenario": "covert-pnm", "grid": {%s, %s}}`,
		grid("noise.seed", 64), grid("costs.flush_overhead", 64))))
	if err != nil {
		b.Fatal(err)
	}

	b.Run("eager", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			runs, err := spec.Expand()
			if err != nil {
				b.Fatal(err)
			}
			if len(runs) != 4096 {
				b.Fatalf("expanded %d runs", len(runs))
			}
		}
	})

	b.Run("lazy", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			x, err := spec.Expansion(exp.MaxRuns)
			if err != nil {
				b.Fatal(err)
			}
			if x.Total() != 4096 {
				b.Fatalf("expansion covers %d runs", x.Total())
			}
		}
		b.StopTimer()
		eagerAllocs := testing.AllocsPerRun(1, func() {
			if _, err := spec.Expand(); err != nil {
				b.Fatal(err)
			}
		})
		lazyAllocs := testing.AllocsPerRun(1, func() {
			if _, err := spec.Expansion(exp.MaxRuns); err != nil {
				b.Fatal(err)
			}
		})
		b.ReportMetric(lazyAllocs, "lazy-allocs")
		if lazyAllocs > eagerAllocs/100 {
			b.Fatalf("lazy expansion allocates %.0f objects vs %.0f eager: construction is no longer O(axes)",
				lazyAllocs, eagerAllocs)
		}
	})
}

// BenchmarkMetricsObserve measures the serving layer's per-request metrics
// cost: one padded atomic counter add plus one histogram observation
// (binary search + atomic add). This rides on every instrumented request,
// so it must stay in the low-nanosecond, zero-allocation regime.
func BenchmarkMetricsObserve(b *testing.B) {
	set := metrics.NewSet("requests")
	lat := set.AddHistogram("latency_ns", metrics.LatencyBounds())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set.Add(0, 1)
		set.Observe(lat, int64(i%1_000_000_000))
	}
}

package repro_test

import (
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/pim"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/tlb"
)

// TestCounterParityAcrossCovertRun drives full PnM and PuM covert-channel
// transmissions and checks, for every subsystem, that the typed fixed-slot
// counter view (Value by CounterID) and the string-keyed compatibility
// layer (Get/Snapshot) agree exactly — i.e. the integer-indexed redesign
// exports the same statistics the old string-map implementation did.
func TestCounterParityAcrossCovertRun(t *testing.T) {
	msg := core.RandomMessage(256, 21)
	m, err := sim.New(sim.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunPnM(m, msg, core.Options{}); err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunPuM(m, msg, core.Options{}); err != nil {
		t.Fatal(err)
	}
	// The covert channels bypass the caches (uncached loads and PEIs), so
	// drive some ordinary cached loads as well to exercise the L1/LLC path.
	for i := 0; i < 64; i++ {
		m.Core(0).Load(m.AddrFor(i%4, int64(i), 0), 0)
		m.Core(0).Load(m.AddrFor(i%4, int64(i), 0), 0)
	}

	check := func(sub string, c *stats.Counters, ids map[string]stats.CounterID) {
		t.Helper()
		snap := c.Snapshot()
		var total int64
		for name, id := range ids {
			typed := c.Value(id)
			total += typed
			if got := c.Get(name); got != typed {
				t.Errorf("%s: Get(%q) = %d, Value(%d) = %d", sub, name, got, id, typed)
			}
			if snap[name] != typed {
				t.Errorf("%s: Snapshot[%q] = %d, Value(%d) = %d", sub, name, snap[name], id, typed)
			}
			if typed == 0 {
				if _, ok := snap[name]; ok {
					t.Errorf("%s: zero counter %q present in snapshot", sub, name)
				}
			}
		}
		for name := range snap {
			if _, ok := ids[name]; !ok {
				t.Errorf("%s: unexpected counter %q in snapshot", sub, name)
			}
		}
		if total == 0 {
			t.Errorf("%s: covert run left all counters at zero", sub)
		}
	}

	check("dram", m.Device().Counters(), map[string]stats.CounterID{
		"hit":      dram.CounterHit,
		"empty":    dram.CounterEmpty,
		"conflict": dram.CounterConflict,
		"rowclone": dram.CounterRowClone,
	})
	check("memctrl", m.Controller().Counters(), map[string]stats.CounterID{
		"requests":            memctrl.CounterRequests,
		"act_padded":          memctrl.CounterACTPadded,
		"partition_violation": memctrl.CounterPartitionViolation,
	})
	check("llc", m.LLC().Counters(), map[string]stats.CounterID{
		"hit":       cache.CounterHit,
		"miss":      cache.CounterMiss,
		"writeback": cache.CounterWriteback,
	})
	check("l1", m.Core(0).Hierarchy().L1().Counters(), map[string]stats.CounterID{
		"hit":       cache.CounterHit,
		"miss":      cache.CounterMiss,
		"writeback": cache.CounterWriteback,
	})
	check("mmu", m.Core(0).MMU().Counters(), map[string]stats.CounterID{
		"l1_hit": tlb.CounterL1Hit,
		"l2_hit": tlb.CounterL2Hit,
		"walk":   tlb.CounterWalk,
	})
	check("pei", m.PEI().Counters(), map[string]stats.CounterID{
		"host_side":   pim.CounterHostSide,
		"memory_side": pim.CounterMemorySide,
	})
	check("rowclone-engine", m.RowClone().Counters(), map[string]stats.CounterID{
		"ops":      pim.CounterOps,
		"requests": pim.CounterRequests,
	})
}

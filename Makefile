GO ?= go

.PHONY: ci fmt vet vet-extra lint build test race bench-smoke bench serve sweep-smoke client-smoke loadtest-smoke loadtest jobs-smoke recovery-smoke objsweep-smoke fuzz-smoke coldpath-smoke cluster-smoke objsweep

ci: fmt vet vet-extra build lint test race sweep-smoke client-smoke loadtest-smoke jobs-smoke recovery-smoke objsweep-smoke fuzz-smoke coldpath-smoke cluster-smoke bench-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

# impact-lint: the project-specific analyzer suite (see docs/lint.md).
# Any finding fails the build; suppress only with a reasoned
# //lint:ignore directive.
lint:
	$(GO) run ./cmd/impact-lint ./...

# Pinned third-party analyzers, best-effort: `go run` fetches them on
# toolchains with module access and runs them; on the network-isolated CI
# image the fetch fails fast and the step skips rather than fakes a pass.
STATICCHECK_VERSION ?= honnef.co/go/tools/cmd/staticcheck@2024.1.1
GOVULNCHECK_VERSION ?= golang.org/x/vuln/cmd/govulncheck@v1.1.3
vet-extra:
	@if $(GO) run $(STATICCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run $(STATICCHECK_VERSION) ./...; \
	else \
		echo "vet-extra: staticcheck unavailable (offline toolchain); skipping"; \
	fi
	@if $(GO) run $(GOVULNCHECK_VERSION) -version >/dev/null 2>&1; then \
		$(GO) run $(GOVULNCHECK_VERSION) ./...; \
	else \
		echo "vet-extra: govulncheck unavailable (offline toolchain); skipping"; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel experiment runners, the sharded+deduped result cache, the
# async job lifecycle (including DELETE-races-the-worker-pool
# cancellation), the durable store, the job journal with its graceful
# drain and crash recovery, the lock-free metrics, and the Go SDK must
# stay race-clean and deterministic.
race:
	$(GO) test -race ./internal/figures -run TestRunParallelMatchesSequential
	$(GO) test -race ./internal/metrics
	$(GO) test -race ./internal/sim
	$(GO) test -race ./internal/exp -run 'TestEngineCacheAndDeterminism|TestServerRunCacheHit|TestCacheCompute|TestConcurrentIdenticalRuns|TestJob|TestStore|TestJournal|TestGraceful|TestCrash|TestCancelBeats|TestRunPanic|TestPooledSweepParallelDeterminism|TestStreamingSweepMemoryBoundTrimmed'
	$(GO) test -race ./internal/exp/fsio
	$(GO) test -race ./internal/exp/pack
	$(GO) test -race ./internal/cluster
	$(GO) test -race ./pkg/client

# Quick regression signal on the allocation-free hot path.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkCacheAccess|BenchmarkBankAccess' -benchtime 100x -benchmem .

# Cold-path round-2 regressions: pooled-machine determinism (Machine.Reset
# must be provably state-free, sequentially and under 8-way contention),
# lazy-vs-eager expansion equivalence, the overflow-safe grid guard, a
# trimmed streaming memory-bound run, and the >= 2x pooled cold-run
# speedup pin. The full 10^5-run memory bound runs in `make test`
# (it is testing.Short-gated, not smoke-gated).
coldpath-smoke:
	$(GO) test ./internal/exp -count=1 -run 'TestPooledMachineDeterminism|TestExpansionMatchesExpand|TestGridTooLarge|TestServerGridTooLarge|TestStreamingSweepMemoryBoundTrimmed|TestStreamingMatchesExecute'
	$(GO) test -race ./internal/exp -count=1 -run TestPooledSweepParallelDeterminism
	$(GO) test -run xxx -bench 'BenchmarkColdRun/pooled|BenchmarkSweepExpand/lazy' -benchtime 3x -benchmem .

bench:
	$(GO) test -bench . -benchmem .

# Run the result-cached experiment HTTP service (POST /v1/run, GET
# /v1/figures/{id}, GET /v1/scenarios, GET /v1/metrics, GET /healthz).
serve:
	$(GO) run ./cmd/impact-server

# Short load-test against an in-process server: 8 workers, a mixed
# run/figure schedule with a cold slice, -smoke asserting zero errors,
# nonzero QPS, and a nonzero cache hit rate.
loadtest-smoke:
	$(GO) run ./cmd/impact-bench -inprocess -workers 8 -requests 64 -run-frac 0.5 -cold 0.1 -smoke

# The full reproducible benchmark run recorded in docs/benchmark.md.
loadtest:
	$(GO) run ./cmd/impact-bench -inprocess -workers 8 -duration 30s -run-frac 0.5 -cold 0.05

# Object-count sweep smoke: preload a few thousand synthetic results
# into each store backend and time random Gets, -smoke asserting zero
# misses. The full 10^3..10^6 sweep recorded in docs/benchmark.md is
# `make objsweep`.
objsweep-smoke:
	@tmp=$$(mktemp -d); status=1; \
	if $(GO) run ./cmd/impact-bench -objects 2000 -gets 4000 -data-dir $$tmp/pack -store pack -smoke \
	&& $(GO) run ./cmd/impact-bench -objects 500 -gets 1000 -data-dir $$tmp/files -store files -smoke; then \
		status=0; \
	fi; \
	rm -rf $$tmp; exit $$status

# The full object-count sweep behind the docs/benchmark.md table: pack
# to 10^6 objects, the per-file backend capped at 10^5 (its fsync-per-
# entry preload makes 10^6 impractical — that asymmetry is the point).
objsweep:
	@tmp=$$(mktemp -d); \
	for n in 1000 10000 100000 1000000; do \
		$(GO) run ./cmd/impact-bench -objects $$n -gets 200000 -data-dir $$tmp/pack-$$n -store pack -json; \
	done; \
	for n in 1000 10000 100000; do \
		$(GO) run ./cmd/impact-bench -objects $$n -gets 200000 -data-dir $$tmp/files-$$n -store files -json; \
	done; \
	rm -rf $$tmp

# Short fuzz pass over the pack store's two untrusted-byte decoders
# (needle frames, index file) on top of the checked-in seed corpus.
fuzz-smoke:
	$(GO) test ./internal/exp/pack -run xxx -fuzz FuzzDecodeNeedle -fuzztime 5s
	$(GO) test ./internal/exp/pack -run xxx -fuzz FuzzDecodeIndex -fuzztime 5s

# Cluster smoke: three in-process nodes over real listeners, a sweep
# through one node, a peer partitioned mid-sweep on another — every
# response must stay byte-identical and the survivors must keep serving
# the dead node's keys (see internal/cluster's TestClusterSmoke).
cluster-smoke:
	$(GO) test -run TestClusterSmoke -count=1 ./internal/cluster

# Crash-recovery smoke: build the real server binary, kill it -9 mid-job,
# restart it on the same -data-dir, and require the interrupted job to
# complete with a byte-identical sweep (see cmd/impact-server's
# TestRecoverySmoke).
recovery-smoke:
	$(GO) test -run TestRecoverySmoke -count=1 ./cmd/impact-server

# Async job API smoke: the full submit → stream → poll lifecycle against
# an in-process server backed by a temp durable store, 8 workers, -smoke
# asserting zero errors, nonzero QPS, and a nonzero cache hit rate.
jobs-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) run ./cmd/impact-bench -inprocess -jobs -data-dir $$tmp/store -workers 8 -requests 32 -run-frac 1 -cold 0.1 -smoke; \
	status=$$?; rm -rf $$tmp; exit $$status

# Drive a full sweep through pkg/client against an in-process server —
# impact-sweep's default mode is exactly that path — so the SDK, the
# typed pkg/api contract, and the server stay wired together end to end.
client-smoke:
	@tmp=$$(mktemp -d); status=1; \
	if $(GO) run ./cmd/impact-sweep -spec examples/sweep-llc.json -json > $$tmp/sweep.json; then \
		if $(GO) run ./cmd/impact-sweep -spec examples/sweep-llc.json -json > $$tmp/sweep2.json \
		&& cmp $$tmp/sweep.json $$tmp/sweep2.json; then \
			echo "client-smoke: pkg/client sweep reproducible against an in-process server"; status=0; \
		else \
			echo "client-smoke: repeated pkg/client sweeps differ"; \
		fi; \
	fi; \
	rm -rf $$tmp; exit $$status

# The sweep CLI must produce byte-identical output regardless of the
# worker count (every run is deterministic and content-addressed).
sweep-smoke:
	@tmp=$$(mktemp -d); status=1; \
	if $(GO) run ./cmd/impact-sweep -spec examples/sweep-llc.json -workers 1 -json > $$tmp/w1.json \
	&& $(GO) run ./cmd/impact-sweep -spec examples/sweep-llc.json -workers 8 -json > $$tmp/w8.json; then \
		if cmp $$tmp/w1.json $$tmp/w8.json; then \
			echo "sweep-smoke: workers=1 and workers=8 byte-identical"; status=0; \
		else \
			echo "sweep-smoke: output depends on worker count"; \
		fi; \
	fi; \
	rm -rf $$tmp; exit $$status

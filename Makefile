GO ?= go

.PHONY: ci fmt vet build test race bench-smoke bench

ci: fmt vet build test race bench-smoke

fmt:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The parallel experiment runner must stay race-clean and deterministic.
race:
	$(GO) test -race ./internal/figures -run TestRunParallelMatchesSequential

# Quick regression signal on the allocation-free hot path.
bench-smoke:
	$(GO) test -run xxx -bench 'BenchmarkCacheAccess|BenchmarkBankAccess' -benchtime 100x -benchmem .

bench:
	$(GO) test -bench . -benchmem .

package api

import (
	"encoding/json"
	"fmt"
)

// ErrorCode is the stable, machine-readable classification of an API
// error. Codes are the branching surface of the error contract: messages
// are for humans and may change wording; codes never do.
type ErrorCode string

const (
	// CodeBadRequest: the request could not be read (bad transfer, bad
	// query parameter, malformed page token).
	CodeBadRequest ErrorCode = "bad_request"
	// CodeInvalidSpec: the spec document is malformed, names unknown
	// fields, fails config validation, or mixes config/grid into a
	// figure-replay scenario.
	CodeInvalidSpec ErrorCode = "invalid_spec"
	// CodeSpecTooLarge: the spec body exceeds the 1 MiB bound (413).
	CodeSpecTooLarge ErrorCode = "spec_too_large"
	// CodeUnsupportedMedia: a POST carried a non-JSON Content-Type (415).
	// An empty Content-Type is accepted for curl ergonomics.
	CodeUnsupportedMedia ErrorCode = "unsupported_media_type"
	// CodeUnknownScenario: the scenario name is not in the registry (404).
	CodeUnknownScenario ErrorCode = "unknown_scenario"
	// CodeUnknownJob: the job ID was never issued by this server (404).
	CodeUnknownJob ErrorCode = "unknown_job"
	// CodeJobRetired: the job ID was issued but its record has been
	// retired FIFO from the bounded registry (410). The results
	// themselves live on in the content-addressed cache/store, so
	// re-submitting the same spec is cheap.
	CodeJobRetired ErrorCode = "job_retired"
	// CodeTooManyJobs: the registry is full of live (queued or running)
	// jobs (429); retry after one finishes. The response carries a
	// Retry-After header, surfaced by clients as Error.RetryAfter.
	CodeTooManyJobs ErrorCode = "too_many_jobs"
	// CodeShuttingDown: the server is draining for shutdown and no longer
	// accepts new jobs (503). Retry against the restarted server, which
	// resumes interrupted work from its journal.
	CodeShuttingDown ErrorCode = "shutting_down"
	// CodeJobInterrupted: a graceful shutdown interrupted the job
	// mid-execution (the job stream's trailing error line during drain).
	// The job's progress is journaled; a restart on the same data dir
	// resumes it under the same ID.
	CodeJobInterrupted ErrorCode = "job_interrupted"
	// CodeJobCanceled: the sweep was canceled before completing. Appears
	// on the job stream's trailing error line and on synchronous runs cut
	// short by client disconnect.
	CodeJobCanceled ErrorCode = "job_canceled"
	// CodeRunFailed: a simulation inside the sweep failed (the job
	// stream's trailing error line for failed sweeps).
	CodeRunFailed ErrorCode = "run_failed"
	// CodeGridTooLarge: the spec's grid expands to more runs than the
	// endpoint allows (400). The Cartesian product is computed with
	// overflow-safe arithmetic, so adversarially large grids get this
	// error rather than a huge or integer-overflowed allocation.
	CodeGridTooLarge ErrorCode = "grid_too_large"
	// CodeResultNotFound: the internal peer-fetch endpoint
	// (GET /v1/internal/results/{key}) does not hold the requested result
	// locally (404). Expected in normal operation — the asking node falls
	// back to simulating the run itself.
	CodeResultNotFound ErrorCode = "result_not_found"
	// CodeInternal: the server failed in a way the request did not cause.
	CodeInternal ErrorCode = "internal"
)

// Error is the structured error document inside every non-2xx response
// (and the trailing NDJSON line of a failed or canceled job stream). It
// implements the error interface, so pkg/client returns it directly:
//
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.CodeJobRetired { … }
type Error struct {
	Code    ErrorCode `json:"code"`
	Message string    `json:"message"`
	Detail  any       `json:"detail,omitempty"`

	// HTTPStatus is the response status the error arrived with. Filled by
	// clients, never serialized: the status line already carries it.
	HTTPStatus int `json:"-"`

	// RetryAfter is the server's Retry-After hint in seconds (0 = none).
	// Filled by clients from the response header, never serialized.
	RetryAfter int `json:"-"`
}

// Error renders the code-prefixed message.
func (e *Error) Error() string {
	if e.HTTPStatus != 0 {
		return fmt.Sprintf("api: %s (%d): %s", e.Code, e.HTTPStatus, e.Message)
	}
	return fmt.Sprintf("api: %s: %s", e.Code, e.Message)
}

// Envelope is the wire wrapper every error travels in:
//
//	{"error": {"code": "unknown_scenario", "message": "..."}}
type Envelope struct {
	Err *Error `json:"error"`
}

// DecodeError parses an error response body into an *Error carrying the
// given HTTP status. Bodies that are not a valid envelope (a crashed
// proxy, a non-API server) degrade to CodeInternal with the raw body as
// the message, so callers always get a typed error.
func DecodeError(status int, body []byte) *Error {
	var env Envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Err != nil && env.Err.Code != "" {
		env.Err.HTTPStatus = status
		return env.Err
	}
	msg := string(body)
	if len(msg) > 512 {
		msg = msg[:512] + "…"
	}
	return &Error{Code: CodeInternal, Message: msg, HTTPStatus: status}
}

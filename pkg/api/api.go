// Package api is the versioned wire contract of the impact experiment
// service: every request and response body exchanged on the /v1 HTTP
// surface is defined here as a typed document, shared verbatim by the
// server (internal/exp), the Go SDK (pkg/client), and the CLIs
// (cmd/impact-server, cmd/impact-sweep, cmd/impact-bench). The package
// has no dependencies beyond the standard library, so external users can
// import it without pulling in the simulator.
//
// Two invariants shape every type here:
//
//   - Determinism: the simulator behind the service is deterministic and
//     reports are content-addressed, so the body served for one RunSpec is
//     byte-identical across requests, worker counts, and server restarts.
//     The JSON field order of these structs is therefore part of the
//     contract — reordering fields changes served bytes.
//   - Structured errors: every non-2xx response is an Envelope holding an
//     Error with a stable machine-readable Code (see errors.go), so
//     clients branch on codes, never on message text.
//
// See docs/api.md for the endpoint-by-endpoint contract.
package api

import (
	"bytes"
	"encoding/json"
	"fmt"
)

// Version is the API version prefix every experiment route lives under.
const Version = "v1"

// Response headers that carry request-scoped metadata outside the body.
const (
	// HeaderRequestID is set on every response. Inbound values are echoed
	// back (so callers can correlate retries); absent ones are generated.
	HeaderRequestID = "X-Request-ID"
	// HeaderCache summarizes how a request's unique runs were served:
	// "hit" (all from cache), "miss" (none), or "partial".
	HeaderCache = "X-Cache"
	// HeaderCacheHits and HeaderCacheMisses carry the counts behind the
	// HeaderCache verdict.
	HeaderCacheHits   = "X-Cache-Hits"
	HeaderCacheMisses = "X-Cache-Misses"
)

// ContentTypeJSON is the request/response body media type for every
// document endpoint; ContentTypeNDJSON is the job stream's.
const (
	ContentTypeJSON   = "application/json"
	ContentTypeNDJSON = "application/x-ndjson"
)

// RunSpec is the declarative form of an experiment sweep, the request
// body of POST /v1/run and POST /v1/jobs.
//
// Config is a sparse sim.Config document (snake_case fields) deep-merged
// over the paper's Table 2 defaults. Grid maps dot-separated config field
// paths — e.g. "llc_bytes" or "mem.defense" — to the list of values to
// sweep; the server expands the Cartesian product of all grid fields into
// concrete runs (sorted path order, last path fastest).
type RunSpec struct {
	Scenario string                       `json:"scenario"`
	Scale    string                       `json:"scale,omitempty"`
	Config   json.RawMessage              `json:"config,omitempty"`
	Grid     map[string][]json.RawMessage `json:"grid,omitempty"`
}

// ParseRunSpec decodes a spec document the same way the server does:
// unknown fields are rejected so typos ("grids", "senario") fail loudly
// client-side instead of silently running defaults.
func ParseRunSpec(data []byte) (RunSpec, error) {
	var s RunSpec
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&s); err != nil {
		return RunSpec{}, fmt.Errorf("api: spec: %v", err)
	}
	return s, nil
}

// RunResult is one concrete run's outcome: its content address, the
// resolved scenario/scale/grid-point labels, and the report document.
// These appear as SweepResult.Runs elements and as the NDJSON lines of
// GET /v1/jobs/{id}/stream (line i is byte-identical to runs[i] of the
// synchronous response for the same spec).
type RunResult struct {
	Key      string            `json:"key"`
	Scenario string            `json:"scenario"`
	Scale    string            `json:"scale"`
	Params   map[string]string `json:"params,omitempty"`
	Report   json.RawMessage   `json:"report"`
}

// SweepResult is the POST /v1/run response: every expanded run in
// deterministic expansion order, under the sweep's own content address
// (the SHA-256 over the ordered run keys).
type SweepResult struct {
	SpecKey string      `json:"spec_key"`
	Runs    []RunResult `json:"runs"`
}

// ScenarioInfo describes one runnable scenario in the registry listing.
// ConfigSensitive scenarios accept config/grid fields; the rest replay
// fixed paper artifacts and reject them.
type ScenarioInfo struct {
	Name            string `json:"name"`
	Description     string `json:"description"`
	ConfigSensitive bool   `json:"config_sensitive"`
}

// ScenarioList is the GET /v1/scenarios response.
type ScenarioList struct {
	Scenarios []ScenarioInfo `json:"scenarios"`
}

// Job statuses, in lifecycle order: a job starts queued, moves to
// running, and lands in exactly one terminal state. Retirement (the
// registry dropping a terminal job FIFO to bound memory) is not a
// status — a retired job answers 410 with code "job_retired".
//
// Interrupted is the one non-terminal state outside the normal flow: a
// graceful shutdown caught the job mid-execution, its progress was
// journaled, and a server restarted on the same data dir re-enqueues it
// (the resumed job reports Resumed true and skips every run already in
// the durable store). The state is visible only in the narrow window
// between drain start and process exit.
const (
	JobQueued      = "queued"
	JobRunning     = "running"
	JobInterrupted = "interrupted"
	JobDone        = "done"
	JobFailed      = "failed"
	JobCanceled    = "canceled"
)

// JobTerminal reports whether a status string is a terminal state.
// Interrupted is not terminal: the job still owes results, just to a
// future process.
func JobTerminal(status string) bool {
	return status == JobDone || status == JobFailed || status == JobCanceled
}

// JobInfo is the wire form of a job's state, served on POST /v1/jobs,
// GET /v1/jobs/{id}, DELETE /v1/jobs/{id}, and inside GET /v1/jobs.
// Hits and Misses count completed runs by how they were served (cache
// vs. simulation); SpecKey appears only on done jobs and Error only on
// failed or canceled ones. Resumed marks a job re-enqueued from the
// on-disk journal after a restart interrupted it.
type JobInfo struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Runs      int    `json:"runs"`
	Completed int    `json:"completed"`
	Hits      int    `json:"hits"`
	Misses    int    `json:"misses"`
	Resumed   bool   `json:"resumed,omitempty"`
	SpecKey   string `json:"spec_key,omitempty"`
	Error     string `json:"error,omitempty"`
}

// JobPage is the GET /v1/jobs response: tracked jobs newest-first.
// NextPageToken, when set, is the ?page_token= value that continues the
// listing with the next-older page; an empty token means the listing is
// complete.
type JobPage struct {
	Jobs          []JobInfo `json:"jobs"`
	NextPageToken string    `json:"next_page_token,omitempty"`
}

// Health is the GET /healthz response: a stable, minimal liveness
// contract (richer data lives on /v1/metrics). Version and Go come from
// the binary's embedded build info. NodeID, Store, and Peers identify a
// cluster member: the node's -node-id, its result-store backend ("pack",
// "files", or "memory"), and how many other peers its hash ring knows
// about (0 for a standalone server) — enough for an operator curling a
// load-balanced address to tell which node answered and how it is
// configured.
type Health struct {
	Status  string      `json:"status"`
	Version string      `json:"version"`
	Go      string      `json:"go"`
	NodeID  string      `json:"node_id"`
	Store   string      `json:"store"`
	Peers   int         `json:"peers"`
	Cache   HealthCache `json:"cache"`
}

// HealthCache is the result-cache slice of the health document.
type HealthCache struct {
	Entries int64 `json:"entries"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

// RouteMetrics is the per-route section of the /v1/metrics document.
// Latency quantiles are estimated from fixed 1-2-5 bucket histograms, so
// they carry bucket-resolution error; LatencyOverflow counts samples
// beyond the top bound and LatencyNegative counts clock-skewed samples
// clamped to zero, so neither distortion is silent.
type RouteMetrics struct {
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	LatencyMeanN    float64 `json:"latency_mean_ns"`
	LatencyP50N     int64   `json:"latency_p50_ns"`
	LatencyP90N     int64   `json:"latency_p90_ns"`
	LatencyP99N     int64   `json:"latency_p99_ns"`
	LatencyOverflow int64   `json:"latency_overflow"`
	LatencyNegative int64   `json:"latency_negative"`
}

// CacheStats is the result-cache section of /v1/metrics (and, in part,
// /healthz). Computes counts actual simulator executions; DedupHits
// counts callers whose identical in-flight run was coalesced onto
// another request's computation.
type CacheStats struct {
	Entries   int64 `json:"entries"`
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Stores    int64 `json:"stores"`
	Evictions int64 `json:"evictions"`
	Computes  int64 `json:"computes"`
	DedupHits int64 `json:"dedup_hits"`
}

// StoreStats is the durable-store section of /v1/metrics, present only
// when the server runs with a disk store. CorruptDropped counts entries
// that failed checksum validation and were deleted; Errors counts I/O
// failures that degraded to misses or dropped writes.
type StoreStats struct {
	Hits           int64 `json:"hits"`
	Misses         int64 `json:"misses"`
	Stores         int64 `json:"stores"`
	CorruptDropped int64 `json:"corrupt_dropped"`
	Errors         int64 `json:"errors"`
}

// PackStats is the pack-engine section of /v1/metrics, present only when
// the server runs with -store=pack. The first five counters mirror
// StoreStats; the rest expose the subsystems the pack engine adds.
// Migrated counts legacy per-file entries carried into bundles at boot;
// RecoveredNeedles counts appends rebuilt by the boot tail scan (writes
// newer than the last index file). IndexWrites counts atomic index
// rewrites. Compactions/CompactedBytes account for garbage-bundle
// rewrites, and the Audit* counters for the background CRC re-verifier:
// passes completed, needles checked, and entries dropped (then healed by
// re-simulation on next access). Bundles/IndexEntries/LiveBytes/
// GarbageBytes are point-in-time gauges of the on-disk layout.
type PackStats struct {
	Hits                int64 `json:"hits"`
	Misses              int64 `json:"misses"`
	Stores              int64 `json:"stores"`
	CorruptDropped      int64 `json:"corrupt_dropped"`
	Errors              int64 `json:"errors"`
	Migrated            int64 `json:"migrated"`
	RecoveredNeedles    int64 `json:"recovered_needles"`
	IndexWrites         int64 `json:"index_writes"`
	Compactions         int64 `json:"compactions"`
	CompactedBytes      int64 `json:"compacted_bytes"`
	AuditPasses         int64 `json:"audit_passes"`
	AuditedNeedles      int64 `json:"audited_needles"`
	AuditCorruptDropped int64 `json:"audit_corrupt_dropped"`
	Bundles             int64 `json:"bundles"`
	IndexEntries        int64 `json:"index_entries"`
	LiveBytes           int64 `json:"live_bytes"`
	GarbageBytes        int64 `json:"garbage_bytes"`
}

// JobsStats is the async-job-registry section of /v1/metrics. Tracked is
// current registry occupancy; Retired counts terminal jobs dropped FIFO
// to admit new submissions (plus terminal journal records cleaned up at
// boot). Resumed counts jobs re-enqueued from the journal after a
// restart, and RunsSkippedOnResume counts their runs served from the
// durable store instead of re-simulated — recovery cost is proportional
// only to the work actually lost. JournalErrors and JournalCorruptDropped
// mirror the store's error accounting for the job journal.
type JobsStats struct {
	Submitted             int64 `json:"submitted"`
	Rejected              int64 `json:"rejected"`
	Completed             int64 `json:"completed"`
	Failed                int64 `json:"failed"`
	Canceled              int64 `json:"canceled"`
	Retired               int64 `json:"retired"`
	Tracked               int64 `json:"tracked"`
	Resumed               int64 `json:"resumed"`
	RunsSkippedOnResume   int64 `json:"runs_skipped_on_resume"`
	JournalErrors         int64 `json:"journal_errors,omitempty"`
	JournalCorruptDropped int64 `json:"journal_corrupt_dropped,omitempty"`
}

// ClusterStats is the cluster section of /v1/metrics, present only when
// the server runs with -peers. The lookup counters classify how this
// node resolved result keys that missed its in-memory cache: LocalHits
// were served from the node's own durable store, RemoteHits were fetched
// from a peer in the key's replica set, RemoteMisses were probes a live
// peer answered "not found", PeerErrors were fetch attempts that failed
// at the transport (a partitioned or dead peer — the lookup degrades to
// local simulation, never to a failed request), and Misses count full
// fallthroughs that went on to simulate locally. Heals count replica
// copies written back to the local store after a peer fetch found bytes
// this node should have owned.
//
// The Repl* counters account for the asynchronous replication queue:
// Enqueued copies accepted, Sent copies acknowledged by their target,
// Retries failed attempts that were re-tried with backoff, Failed copies
// dropped after exhausting retries, and DroppedFull copies rejected at
// enqueue because the bounded queue was full (re-replication on a later
// read heals both loss modes). Queue is the point-in-time backlog gauge.
type ClusterStats struct {
	NodeID          string `json:"node_id"`
	Peers           int    `json:"peers"`
	LocalHits       int64  `json:"local_hits"`
	RemoteHits      int64  `json:"remote_hits"`
	RemoteMisses    int64  `json:"remote_misses"`
	PeerErrors      int64  `json:"peer_errors"`
	Misses          int64  `json:"misses"`
	Heals           int64  `json:"heals"`
	ReplEnqueued    int64  `json:"replication_enqueued"`
	ReplSent        int64  `json:"replication_sent"`
	ReplRetries     int64  `json:"replication_retries"`
	ReplFailed      int64  `json:"replication_failed"`
	ReplDroppedFull int64  `json:"replication_dropped_full"`
	ReplQueue       int64  `json:"replication_queue"`
}

// PeerAck is the response body of the internal peer replication endpoint
// (PUT /v1/internal/results/{key}): a minimal acknowledgment document —
// the store is first-write-wins and content-addressed, so there is
// nothing else to say.
type PeerAck struct {
	OK bool `json:"ok"`
}

// MachinePoolStats is the machine-pool section of /v1/metrics: how cold
// runs were provisioned. Hits reused a pooled machine via the reset fast
// path, Misses assembled a fresh machine because the pool was empty, and
// Drops discarded a pooled machine whose shape the requested config could
// not reuse (and then assembled fresh).
type MachinePoolStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Drops  int64 `json:"drops"`
}

// MetricsDoc is the GET /v1/metrics response body. Exactly one of Store
// and Pack is present when the engine has a durable disk store
// configured: Store for the per-file backend, Pack for the pack engine.
type MetricsDoc struct {
	Requests    map[string]RouteMetrics `json:"requests"`
	Cache       CacheStats              `json:"cache"`
	Store       *StoreStats             `json:"store,omitempty"`
	Pack        *PackStats              `json:"pack,omitempty"`
	Cluster     *ClusterStats           `json:"cluster,omitempty"`
	Jobs        JobsStats               `json:"jobs"`
	MachinePool MachinePoolStats        `json:"machine_pool"`
}

package api

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestParseRunSpecStrict pins client-side parsing: unknown fields fail
// loudly, valid documents round-trip losslessly.
func TestParseRunSpecStrict(t *testing.T) {
	raw := `{"scenario": "covert-pnm", "scale": "quick", "grid": {"llc_bytes": [1, 2]}}`
	spec, err := ParseRunSpec([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Scenario != "covert-pnm" || spec.Scale != "quick" || len(spec.Grid["llc_bytes"]) != 2 {
		t.Fatalf("parsed spec: %+v", spec)
	}

	if _, err := ParseRunSpec([]byte(`{"senario": "x"}`)); err == nil || !strings.Contains(err.Error(), "senario") {
		t.Fatalf("typo field not rejected: %v", err)
	}
	if _, err := ParseRunSpec([]byte(`{"scenario": `)); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

// TestErrorEnvelopeShape pins the wire form of the error contract.
func TestErrorEnvelopeShape(t *testing.T) {
	blob, err := json.Marshal(Envelope{Err: &Error{Code: CodeUnknownJob, Message: "no such job"}})
	if err != nil {
		t.Fatal(err)
	}
	want := `{"error":{"code":"unknown_job","message":"no such job"}}`
	if string(blob) != want {
		t.Fatalf("envelope = %s, want %s", blob, want)
	}

	decoded := DecodeError(404, blob)
	if decoded.Code != CodeUnknownJob || decoded.HTTPStatus != 404 || decoded.Message != "no such job" {
		t.Fatalf("decoded = %+v", decoded)
	}
	if msg := decoded.Error(); !strings.Contains(msg, "unknown_job") || !strings.Contains(msg, "404") {
		t.Fatalf("Error() = %q", msg)
	}

	// Non-envelope bodies degrade to a typed internal error, not a panic
	// or a nil.
	fallback := DecodeError(502, []byte("<html>bad gateway</html>"))
	if fallback.Code != CodeInternal || fallback.HTTPStatus != 502 {
		t.Fatalf("fallback = %+v", fallback)
	}
}

// TestJobTerminal pins the lifecycle predicate.
func TestJobTerminal(t *testing.T) {
	for _, s := range []string{JobDone, JobFailed, JobCanceled} {
		if !JobTerminal(s) {
			t.Fatalf("%q should be terminal", s)
		}
	}
	for _, s := range []string{JobQueued, JobRunning, "", "retired"} {
		if JobTerminal(s) {
			t.Fatalf("%q should not be terminal", s)
		}
	}
}

package api

import "context"

// requestIDKey is the private context key under which the serving layer
// records a request's X-Request-ID. The value travels with the request
// context so that any outbound hop made on behalf of the request — a
// peer fetch in a cluster, an SDK call from a handler — can echo the
// same ID and the whole cross-node chain traces as one request.
type requestIDKey struct{}

// WithRequestID returns a context carrying the request's correlation ID.
// The server's middleware attaches the inbound (or freshly generated)
// X-Request-ID here; pkg/client reads it back with RequestID and stamps
// it on outgoing requests.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the correlation ID carried by ctx, or "" when the
// context has none.
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"

	"repro/pkg/api"
)

// streamBufferCap bounds one NDJSON line; report documents are a few KiB,
// so 16 MiB is comfortably above anything the server emits.
const streamBufferCap = 16 << 20

// JobStream iterates the NDJSON result stream of GET /v1/jobs/{id}/stream,
// yielding each api.RunResult as the server finishes (or replays) that
// run. Not safe for concurrent use; always Close it.
type JobStream struct {
	body io.ReadCloser
	sc   *bufio.Scanner
	done bool
}

// StreamJob opens a job's result stream. The stream lives outside the
// client's unary timeout — a long sweep may hold it open indefinitely —
// so bound it with ctx: canceling ctx fails the next Next with the
// context's error. Streams are never retried (a replayed stream could
// re-deliver runs the caller already consumed).
func (c *Client) StreamJob(ctx context.Context, id string) (*JobStream, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		c.base+"/v1/jobs/"+url.PathEscape(id)+"/stream", nil)
	if err != nil {
		return nil, fmt.Errorf("client: building stream request: %v", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("client: opening job stream: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return nil, api.DecodeError(resp.StatusCode, blob)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 64<<10), streamBufferCap)
	return &JobStream{body: resp.Body, sc: sc}, nil
}

// Next returns the stream's next run. It blocks while the server waits
// on the sweep, and finishes three ways: io.EOF on a cleanly completed
// stream, an *api.Error when the server ends a failed or canceled sweep
// with its trailing error line (codes api.CodeRunFailed and
// api.CodeJobCanceled), or the underlying read error when the connection
// (or the StreamJob context) dies mid-stream.
func (s *JobStream) Next() (api.RunResult, error) {
	if s.done {
		return api.RunResult{}, io.EOF
	}
	if !s.sc.Scan() {
		s.done = true
		if err := s.sc.Err(); err != nil {
			return api.RunResult{}, fmt.Errorf("client: job stream: %w", err)
		}
		return api.RunResult{}, io.EOF
	}
	line := s.sc.Bytes()

	// A line is either a RunResult or the trailing error envelope; probe
	// for the envelope first since error lines carry no "key" field.
	var probe struct {
		Key   string     `json:"key"`
		Error *api.Error `json:"error"`
	}
	if err := json.Unmarshal(line, &probe); err != nil {
		s.done = true
		return api.RunResult{}, fmt.Errorf("client: job stream line: %v", err)
	}
	if probe.Error != nil {
		s.done = true
		return api.RunResult{}, probe.Error
	}
	var rr api.RunResult
	if err := json.Unmarshal(line, &rr); err != nil {
		s.done = true
		return api.RunResult{}, fmt.Errorf("client: job stream line: %v", err)
	}
	return rr, nil
}

// Close releases the stream's connection. Safe to call at any point,
// including after Next returned io.EOF or an error.
func (s *JobStream) Close() error {
	s.done = true
	return s.body.Close()
}

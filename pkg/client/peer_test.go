package client

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/pkg/api"
)

// TestFetchResultByteIdentity pins the framing contract the cluster's
// consistency story rests on: the blob FetchResult returns is
// byte-identical to what the peer holds — the wire frame's single
// trailing newline is stripped, and nothing else is touched. The probe
// blob deliberately ends in "\n" inside a JSON string and carries odd
// interior whitespace, so any over-trimming or JSON re-framing fails.
func TestFetchResultByteIdentity(t *testing.T) {
	blob := []byte("{\"report\": {\"x\":\t1 },\"note\":\"ends in newline\\n\"}")
	const key = "4a5e1e4baab89f3a32518a88c31bc87f618f76673e2cc77ab2127b7afdeda33b"

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/internal/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		if r.PathValue("key") != key {
			t.Errorf("fetched key %q", r.PathValue("key"))
		}
		// The server's writeRawJSON frame: body + exactly one "\n".
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.Write(blob)
		w.Write([]byte("\n"))
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newTestClient(t, ts.URL)
	got, ok, err := c.FetchResult(context.Background(), key)
	if err != nil || !ok {
		t.Fatalf("FetchResult = %v, %v", ok, err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("fetched blob differs:\n got %q\nwant %q", got, blob)
	}
}

// TestFetchResultMissIsNotAnError: a peer that does not hold the key
// answers 404 result_not_found, and the client reports a clean miss —
// the caller's fallback is simulation, not error handling.
func TestFetchResultMissIsNotAnError(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/internal/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(api.Envelope{Err: &api.Error{
			Code: api.CodeResultNotFound, Message: "not held locally",
		}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newTestClient(t, ts.URL)
	blob, ok, err := c.FetchResult(context.Background(), "deadbeef")
	if err != nil {
		t.Fatalf("miss surfaced as error: %v", err)
	}
	if ok || blob != nil {
		t.Fatalf("miss reported a hit: %q", blob)
	}
}

// TestStoreResultRoundTrip: StoreResult PUTs the blob verbatim and
// accepts the ack.
func TestStoreResultRoundTrip(t *testing.T) {
	blob := json.RawMessage(`{"v": 42}`)
	var got []byte
	var mu sync.Mutex
	mux := http.NewServeMux()
	mux.HandleFunc("PUT /v1/internal/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		body := make([]byte, r.ContentLength)
		r.Body.Read(body)
		mu.Lock()
		got = body
		mu.Unlock()
		json.NewEncoder(w).Encode(api.PeerAck{OK: true})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newTestClient(t, ts.URL)
	if err := c.StoreResult(context.Background(), "deadbeef", blob); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if !bytes.Equal(got, blob) {
		t.Fatalf("peer received %q, want %q", got, blob)
	}
}

// flappingListener refuses (accepts then immediately resets) the first n
// connections, then serves normally — a server mid-restart as the
// network sees it.
type flappingListener struct {
	net.Listener
	refuse atomic.Int64
}

func (l *flappingListener) Accept() (net.Conn, error) {
	for {
		conn, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.refuse.Add(-1) >= 0 {
			conn.Close() // reset: the client sees a connection error
			continue
		}
		return conn, nil
	}
}

// TestFetchResultRetriesConnectionReset pins the small-fix satellite: a
// connection reset on an idempotent content-addressed GET is retried
// (with backoff) instead of surfacing, so a peer bouncing at the instant
// of a fetch costs latency, not a miss.
func TestFetchResultRetriesConnectionReset(t *testing.T) {
	blob := []byte(`{"ok":true}`)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/internal/results/{key}", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", api.ContentTypeJSON)
		w.Write(blob)
		w.Write([]byte("\n"))
	})
	ts := httptest.NewUnstartedServer(mux)
	fl := &flappingListener{Listener: ts.Listener}
	fl.refuse.Store(2)
	ts.Listener = fl
	ts.Start()
	defer ts.Close()

	// Connection reuse would dodge the flap, so force a fresh dial per
	// attempt.
	hc := &http.Client{Transport: &http.Transport{DisableKeepAlives: true}}
	c := newTestClient(t, ts.URL,
		WithHTTPClient(hc), WithRetry(3, time.Millisecond), WithBackoffCap(5*time.Millisecond))
	got, ok, err := c.FetchResult(context.Background(), "deadbeef")
	if err != nil || !ok {
		t.Fatalf("FetchResult through a flapping server = %v, %v", ok, err)
	}
	if !bytes.Equal(got, blob) {
		t.Fatalf("fetched %q, want %q", got, blob)
	}
}

// TestRetryBackoffCapped pins the capped-backoff schedule: with a base
// of 100ms and a cap of 200ms, the waits are 100, 200, 200, 200 — not
// 100, 200, 400, 800.
func TestRetryBackoffCapped(t *testing.T) {
	calls := 0
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		calls++
		http.Error(w, "no", http.StatusInternalServerError)
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	start := time.Now()
	c := newTestClient(t, ts.URL, WithRetry(4, 100*time.Millisecond), WithBackoffCap(200*time.Millisecond))
	_, err := c.Health(context.Background())
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("expected failure after retries exhausted")
	}
	if calls != 5 {
		t.Fatalf("made %d attempts, want 5", calls)
	}
	// Capped: 100+200+200+200 = 700ms of sleeps. Uncapped would be
	// 100+200+400+800 = 1.5s. Allow generous scheduling slack either way.
	if elapsed > 1200*time.Millisecond {
		t.Fatalf("retries took %v; backoff cap not applied", elapsed)
	}
	if elapsed < 600*time.Millisecond {
		t.Fatalf("retries took only %v; backoff not applied at all", elapsed)
	}
}

// TestRequestIDForwarded pins that a context carrying a request ID
// stamps it on the outgoing request — the client half of cross-node
// request tracing.
func TestRequestIDForwarded(t *testing.T) {
	var seen atomic.Value
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		seen.Store(r.Header.Get(api.HeaderRequestID))
		json.NewEncoder(w).Encode(api.Health{Status: "ok"})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newTestClient(t, ts.URL)
	ctx := api.WithRequestID(context.Background(), "trace-77")
	if _, err := c.Health(ctx); err != nil {
		t.Fatal(err)
	}
	if got, _ := seen.Load().(string); got != "trace-77" {
		t.Fatalf("server saw X-Request-ID %q, want trace-77", got)
	}

	// A bare context stamps nothing.
	if _, err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
	if got, _ := seen.Load().(string); got != "" {
		t.Fatalf("bare context leaked X-Request-ID %q", got)
	}
}

// Package client is the Go SDK for the impact experiment service: a
// typed, context-aware wrapper over the v1 HTTP surface whose wire
// contract lives in pkg/api. Every method takes a context, applies the
// client's per-request timeout, retries transient failures (transport
// errors and 5xx responses) where a retry is safe, and returns server
// errors as *api.Error values carrying the stable machine-readable code:
//
//	c, err := client.New("http://localhost:8322")
//	res, cache, err := c.Run(ctx, spec)
//	var apiErr *api.Error
//	if errors.As(err, &apiErr) && apiErr.Code == api.CodeUnknownScenario { … }
//
// Asynchronous sweeps get the full job lifecycle: SubmitJob, ListJobs,
// Job, CancelJob, WaitJob, and StreamJob's NDJSON iterator that yields
// each run as the server finishes it.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"repro/pkg/api"
)

// Defaults applied by New; all are overridable through Options.
const (
	DefaultTimeout      = 2 * time.Minute
	DefaultRetries      = 2
	DefaultBackoff      = 100 * time.Millisecond
	DefaultBackoffCap   = 2 * time.Second
	DefaultPollInterval = 20 * time.Millisecond
	DefaultPollMax      = time.Second
)

// Client is a typed v1 API client. Safe for concurrent use.
type Client struct {
	base       string
	hc         *http.Client
	timeout    time.Duration
	retries    int
	backoff    time.Duration
	backoffCap time.Duration
	poll       time.Duration
	pollMax    time.Duration

	// Injection points for deterministic backoff tests; nil selects the
	// real clock and math/rand.
	sleep  func(ctx context.Context, d time.Duration) error
	jitter func() float64
}

// Option configures a Client at construction.
type Option func(*Client)

// WithHTTPClient substitutes the transport (connection pooling, proxies,
// instrumentation). The client never mutates it.
func WithHTTPClient(hc *http.Client) Option {
	return func(c *Client) { c.hc = hc }
}

// WithTimeout bounds each unary request (0 disables the bound). Streams
// are exempt: a long sweep may hold its stream open far longer than any
// sane unary timeout.
func WithTimeout(d time.Duration) Option {
	return func(c *Client) { c.timeout = d }
}

// WithRetry sets how many times a retry-safe request is reissued after a
// transport error (connection refused, connection reset) or 5xx
// response, and the base backoff between attempts. The backoff doubles
// each retry up to WithBackoffCap's ceiling. 0 retries disables
// retrying.
func WithRetry(retries int, backoff time.Duration) Option {
	return func(c *Client) { c.retries, c.backoff = retries, backoff }
}

// WithBackoffCap caps the exponential retry backoff (default
// DefaultBackoffCap). Without a cap, a generous retry budget against a
// flapping server doubles into multi-minute sleeps; with one, retries
// settle into a steady cadence instead.
func WithBackoffCap(d time.Duration) Option {
	return func(c *Client) { c.backoffCap = d }
}

// WithPollInterval sets WaitJob's initial status-poll cadence (the
// backoff schedule's floor).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) { c.poll = d }
}

// WithPollMax caps WaitJob's exponential poll backoff.
func WithPollMax(d time.Duration) Option {
	return func(c *Client) { c.pollMax = d }
}

// New returns a client for the service at baseURL (scheme defaults to
// http:// when absent).
func New(baseURL string, opts ...Option) (*Client, error) {
	if baseURL == "" {
		return nil, fmt.Errorf("client: empty base URL")
	}
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	u, err := url.Parse(baseURL)
	if err != nil || u.Host == "" {
		return nil, fmt.Errorf("client: base URL %q: invalid", baseURL)
	}
	c := &Client{
		base:       strings.TrimSuffix(baseURL, "/"),
		hc:         http.DefaultClient,
		timeout:    DefaultTimeout,
		retries:    DefaultRetries,
		backoff:    DefaultBackoff,
		backoffCap: DefaultBackoffCap,
		poll:       DefaultPollInterval,
		pollMax:    DefaultPollMax,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c, nil
}

// CacheInfo summarizes how the server served a request's unique runs,
// parsed from the X-Cache response headers: State is "hit" (all from
// cache), "miss" (none), or "partial" (an overlapping sweep), with the
// counts behind the verdict.
type CacheInfo struct {
	State  string
	Hits   int
	Misses int
}

func cacheInfo(h http.Header) CacheInfo {
	hits, _ := strconv.Atoi(h.Get(api.HeaderCacheHits))
	misses, _ := strconv.Atoi(h.Get(api.HeaderCacheMisses))
	return CacheInfo{State: h.Get(api.HeaderCache), Hits: hits, Misses: misses}
}

// Run executes a sweep synchronously (POST /v1/run). Deterministic
// content addressing makes this retry-safe despite being a POST: a
// repeated spec can only re-serve the same bytes.
func (c *Client) Run(ctx context.Context, spec api.RunSpec) (*api.SweepResult, CacheInfo, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, CacheInfo{}, fmt.Errorf("client: marshaling spec: %v", err)
	}
	var res api.SweepResult
	h, err := c.do(ctx, http.MethodPost, "/v1/run", body, &res, true)
	if err != nil {
		return nil, CacheInfo{}, err
	}
	return &res, cacheInfo(h), nil
}

// Figure replays one registry scenario (GET /v1/figures/{id}) and
// returns its raw report document; scale is "quick", "full", or "" for
// the server default.
func (c *Client) Figure(ctx context.Context, id, scale string) (json.RawMessage, CacheInfo, error) {
	path := "/v1/figures/" + url.PathEscape(id)
	if scale != "" {
		path += "?scale=" + url.QueryEscape(scale)
	}
	var rep json.RawMessage
	h, err := c.do(ctx, http.MethodGet, path, nil, &rep, true)
	if err != nil {
		return nil, CacheInfo{}, err
	}
	return rep, cacheInfo(h), nil
}

// Scenarios lists the runnable scenario registry (GET /v1/scenarios).
func (c *Client) Scenarios(ctx context.Context) ([]api.ScenarioInfo, error) {
	var list api.ScenarioList
	if _, err := c.do(ctx, http.MethodGet, "/v1/scenarios", nil, &list, true); err != nil {
		return nil, err
	}
	return list.Scenarios, nil
}

// Health fetches the liveness document (GET /healthz).
func (c *Client) Health(ctx context.Context) (*api.Health, error) {
	var h api.Health
	if _, err := c.do(ctx, http.MethodGet, "/healthz", nil, &h, true); err != nil {
		return nil, err
	}
	return &h, nil
}

// Metrics fetches the runtime metrics document (GET /v1/metrics).
func (c *Client) Metrics(ctx context.Context) (*api.MetricsDoc, error) {
	var doc api.MetricsDoc
	if _, err := c.do(ctx, http.MethodGet, "/v1/metrics", nil, &doc, true); err != nil {
		return nil, err
	}
	return &doc, nil
}

// FetchResult fetches one content-addressed result blob from a cluster
// peer (GET /v1/internal/results/{key}). A peer that does not hold the
// key locally is a clean miss — (nil, false, nil) — not an error: the
// caller's fallback is to simulate the run itself, and a 404 here is
// normal cluster operation. Retry-safe (the key names immutable bytes),
// so transport flaps and 5xx responses get the client's capped-backoff
// retry budget. The returned blob is byte-identical to what the owning
// node serves locally: the wire frame's single trailing newline (added
// by the server to every JSON body) is stripped — exactly one byte, so
// the blob's own bytes are never touched.
func (c *Client) FetchResult(ctx context.Context, key string) (json.RawMessage, bool, error) {
	var body []byte
	_, err := c.do(ctx, http.MethodGet, "/v1/internal/results/"+url.PathEscape(key), nil, &body, true)
	if err != nil {
		var apiErr *api.Error
		if errors.As(err, &apiErr) && apiErr.Code == api.CodeResultNotFound {
			return nil, false, nil
		}
		return nil, false, err
	}
	if n := len(body); n > 0 && body[n-1] == '\n' {
		body = body[:n-1]
	}
	return json.RawMessage(body), true, nil
}

// StoreResult replicates one content-addressed result blob to a cluster
// peer (PUT /v1/internal/results/{key}). Idempotent and retry-safe: the
// key is the SHA-256 of the spec that produced the blob, so re-sending
// can only rewrite identical bytes.
func (c *Client) StoreResult(ctx context.Context, key string, blob json.RawMessage) error {
	var ack api.PeerAck
	_, err := c.do(ctx, http.MethodPut, "/v1/internal/results/"+url.PathEscape(key), blob, &ack, true)
	return err
}

// SubmitJob enqueues a sweep as an asynchronous job (POST /v1/jobs).
// Never retried: although a duplicate submission would compute identical
// results, it would occupy a second slot in the server's bounded
// registry.
func (c *Client) SubmitJob(ctx context.Context, spec api.RunSpec) (*api.JobInfo, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("client: marshaling spec: %v", err)
	}
	var info api.JobInfo
	if _, err := c.do(ctx, http.MethodPost, "/v1/jobs", body, &info, false); err != nil {
		return nil, err
	}
	return &info, nil
}

// Job fetches one job's status (GET /v1/jobs/{id}). A job whose record
// was retired from the server's bounded registry yields an *api.Error
// with code api.CodeJobRetired (HTTP 410), distinct from CodeUnknownJob.
func (c *Client) Job(ctx context.Context, id string) (*api.JobInfo, error) {
	var info api.JobInfo
	if _, err := c.do(ctx, http.MethodGet, "/v1/jobs/"+url.PathEscape(id), nil, &info, true); err != nil {
		return nil, err
	}
	return &info, nil
}

// ListJobsOptions parameterizes ListJobs. Limit <= 0 selects the server
// default page size; PageToken continues a previous page's walk.
type ListJobsOptions struct {
	Limit     int
	PageToken string
}

// ListJobs lists tracked jobs newest-first (GET /v1/jobs). Iterate pages
// by feeding NextPageToken back in until it comes back empty.
func (c *Client) ListJobs(ctx context.Context, opts ListJobsOptions) (*api.JobPage, error) {
	q := url.Values{}
	if opts.Limit > 0 {
		q.Set("limit", strconv.Itoa(opts.Limit))
	}
	if opts.PageToken != "" {
		q.Set("page_token", opts.PageToken)
	}
	path := "/v1/jobs"
	if len(q) > 0 {
		path += "?" + q.Encode()
	}
	var page api.JobPage
	if _, err := c.do(ctx, http.MethodGet, path, nil, &page, true); err != nil {
		return nil, err
	}
	return &page, nil
}

// CancelJob cancels a job (DELETE /v1/jobs/{id}). Idempotent — canceling
// a terminal job changes nothing — and retry-safe for the same reason.
// The returned info is the state at cancellation time; in-flight runs
// still drain, so use WaitJob for the terminal "canceled" state.
func (c *Client) CancelJob(ctx context.Context, id string) (*api.JobInfo, error) {
	var info api.JobInfo
	if _, err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+url.PathEscape(id), nil, &info, true); err != nil {
		return nil, err
	}
	return &info, nil
}

// WaitJob polls a job's status until it reaches a terminal state (done,
// failed, or canceled) and returns the terminal document. Poll delays
// start at WithPollInterval's cadence and double up to WithPollMax's cap
// — quick jobs resolve promptly, long sweeps cost one cheap status GET
// per second instead of fifty — with each delay jittered over ±20% so a
// fleet of waiters cannot synchronize into bursts. ctx bounds the total
// wait.
func (c *Client) WaitJob(ctx context.Context, id string) (*api.JobInfo, error) {
	delay := c.poll
	for {
		info, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if api.JobTerminal(info.Status) {
			return info, nil
		}
		if err := c.sleepFor(ctx, jittered(delay, c.jitterUnit())); err != nil {
			return nil, err
		}
		if delay *= 2; delay > c.pollMax {
			delay = c.pollMax
		}
	}
}

// jittered spreads a delay over ±20% of its nominal value: d*(0.8+0.4u)
// for u in [0,1).
func jittered(d time.Duration, u float64) time.Duration {
	return time.Duration(float64(d) * (0.8 + 0.4*u))
}

// sleepFor waits d or until ctx is done, through the injectable sleep
// hook when one is set. A fresh timer each call: reusing one across the
// status request would leave a stale fire in its channel and degrade
// into a busy poll.
func (c *Client) sleepFor(ctx context.Context, d time.Duration) error {
	if c.sleep != nil {
		return c.sleep(ctx, d)
	}
	select {
	case <-time.After(d):
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// jitterUnit draws the jitter sample in [0,1), through the injectable
// hook when one is set.
func (c *Client) jitterUnit() float64 {
	if c.jitter != nil {
		return c.jitter()
	}
	return rand.Float64()
}

// do issues one request, retrying transport errors and 5xx responses
// when retryable, and decodes a 2xx body into out (skipped when out is
// nil). Non-2xx responses come back as *api.Error.
func (c *Client) do(ctx context.Context, method, path string, body []byte, out any, retryable bool) (http.Header, error) {
	attempts := 1
	if retryable {
		attempts += c.retries
	}
	backoff := c.backoff
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
			if backoff *= 2; c.backoffCap > 0 && backoff > c.backoffCap {
				backoff = c.backoffCap
			}
		}
		h, retryAgain, err := c.attempt(ctx, method, path, body, out)
		if err == nil {
			return h, nil
		}
		lastErr = err
		if !retryAgain || ctx.Err() != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// attempt is one wire round trip; retryAgain reports whether the failure
// class is worth another attempt (5xx or transport error, never 4xx).
func (c *Client) attempt(ctx context.Context, method, path string, body []byte, out any) (h http.Header, retryAgain bool, err error) {
	if c.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, rd)
	if err != nil {
		return nil, false, fmt.Errorf("client: building request: %v", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", api.ContentTypeJSON)
	}
	// Forward the correlation ID when serving on another request's behalf
	// (a peer-forwarded cluster lookup), so one user request traces as one
	// ID across every node it touches.
	if id := api.RequestID(ctx); id != "" {
		req.Header.Set(api.HeaderRequestID, id)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, true, fmt.Errorf("client: %s %s: %w", method, path, err)
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, fmt.Errorf("client: reading %s %s response: %w", method, path, err)
	}
	if resp.StatusCode >= 400 {
		apiErr := api.DecodeError(resp.StatusCode, blob)
		if s, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && s >= 0 {
			apiErr.RetryAfter = s
		}
		return nil, resp.StatusCode >= 500, apiErr
	}
	switch dst := out.(type) {
	case nil:
	case *[]byte:
		// Raw capture for byte-identity-sensitive callers (FetchResult): the
		// body verbatim, no JSON round trip that could reframe whitespace.
		*dst = blob
	default:
		if err := json.Unmarshal(blob, out); err != nil {
			return nil, false, fmt.Errorf("client: decoding %s %s response: %v", method, path, err)
		}
	}
	return resp.Header, false, nil
}

package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/internal/exp/fsio"
	"repro/pkg/api"
)

// newTestServer spins up a real experiment server on a loopback listener.
func newTestServer(t *testing.T, opts ...exp.ServerOption) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(exp.NewServer(exp.NewEngine(), opts...).Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newTestClient wraps a server with fast test-friendly settings.
func newTestClient(t *testing.T, base string, opts ...Option) *Client {
	t.Helper()
	c, err := New(base, append([]Option{WithPollInterval(time.Millisecond)}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestClientRetryOn5xx pins the retry policy: a retry-safe request rides
// through transient 5xx responses, while POST /v1/jobs is never reissued.
func TestClientRetryOn5xx(t *testing.T) {
	var healthCalls, submitCalls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if healthCalls.Add(1) <= 2 {
			http.Error(w, "warming up", http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(api.Health{Status: "ok"})
	})
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submitCalls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
		json.NewEncoder(w).Encode(api.Envelope{Err: &api.Error{Code: api.CodeInternal, Message: "boom"}})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newTestClient(t, ts.URL, WithRetry(2, time.Millisecond))
	health, err := c.Health(context.Background())
	if err != nil {
		t.Fatalf("health after two 503s: %v", err)
	}
	if health.Status != "ok" || healthCalls.Load() != 3 {
		t.Fatalf("health = %+v after %d calls, want ok on the third", health, healthCalls.Load())
	}

	// Submissions must not be replayed: one wire call, error surfaced.
	_, err = c.SubmitJob(context.Background(), api.RunSpec{Scenario: "rowbuffer"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeInternal || apiErr.HTTPStatus != http.StatusInternalServerError {
		t.Fatalf("submit error = %v, want the server's internal envelope", err)
	}
	if got := submitCalls.Load(); got != 1 {
		t.Fatalf("submit hit the wire %d times, want exactly 1 (no retry)", got)
	}

	// With retries exhausted the typed error still comes through.
	c0 := newTestClient(t, ts.URL, WithRetry(0, 0))
	healthCalls.Store(0)
	if _, err := c0.Health(context.Background()); !errors.As(err, &apiErr) || apiErr.HTTPStatus != http.StatusServiceUnavailable {
		t.Fatalf("no-retry health error = %v, want a 503 api.Error", err)
	}
}

// TestClientTypedErrors pins the error mapping against a real server:
// every failure arrives as *api.Error with the documented code.
func TestClientTypedErrors(t *testing.T) {
	ts := newTestServer(t, exp.WithWorkers(1))
	c := newTestClient(t, ts.URL, WithRetry(0, 0))
	ctx := context.Background()

	var apiErr *api.Error
	_, _, err := c.Run(ctx, api.RunSpec{Scenario: "covert-warp"})
	if !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnknownScenario || apiErr.HTTPStatus != http.StatusNotFound {
		t.Fatalf("unknown scenario = %v", err)
	}
	if _, err := c.Job(ctx, "job-999999"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnknownJob {
		t.Fatalf("unknown job = %v", err)
	}
	if _, err := c.StreamJob(ctx, "job-999999"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeUnknownJob {
		t.Fatalf("unknown job stream = %v", err)
	}
	if _, _, err := c.Figure(ctx, "rowbuffer", "huge"); !errors.As(err, &apiErr) || apiErr.Code != api.CodeInvalidSpec {
		t.Fatalf("bad scale = %v", err)
	}
}

// TestClientRunSpecRoundTrip is the acceptance-criteria check: a spec
// round-tripped through the typed api.RunSpec produces a byte-identical
// response to the same document POSTed raw, and the SDK decodes exactly
// that payload.
func TestClientRunSpecRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	ts := newTestServer(t, exp.WithWorkers(2))
	raw := []byte(`{
		"scenario": "covert-pnm",
		"scale": "quick",
		"config": {"enable_prefetchers": false},
		"grid": {"llc_bytes": [4194304, 8388608]}
	}`)

	post := func(body []byte) []byte {
		resp, err := http.Post(ts.URL+"/v1/run", api.ContentTypeJSON, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST /v1/run = %d: %s", resp.StatusCode, blob)
		}
		return blob
	}
	rawBody := post(raw)

	spec, err := api.ParseRunSpec(raw)
	if err != nil {
		t.Fatal(err)
	}
	typed, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	typedBody := post(typed)
	if !bytes.Equal(rawBody, typedBody) {
		t.Fatalf("typed round trip changed the response:\nraw:   %s\ntyped: %s", rawBody, typedBody)
	}

	// The SDK's decoded result re-marshals to the same document the wire
	// carried (modulo the trailing newline every body ends with).
	c := newTestClient(t, ts.URL)
	res, cache, err := c.Run(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, bytes.TrimSuffix(rawBody, []byte("\n"))) {
		t.Fatal("SDK-decoded SweepResult does not re-marshal to the wire payload")
	}
	if cache.State != "hit" || cache.Hits != 2 || cache.Misses != 0 {
		t.Fatalf("third identical sweep cache info = %+v, want a full hit", cache)
	}
}

// TestClientJobLifecycle drives submit → stream → wait → list against a
// real server and checks the stream agrees with the synchronous result.
func TestClientJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	ts := newTestServer(t, exp.WithWorkers(2))
	c := newTestClient(t, ts.URL)
	ctx := context.Background()
	spec := api.RunSpec{
		Scenario: "covert-pnm",
		Grid:     map[string][]json.RawMessage{"llc_bytes": {json.RawMessage(`4194304`), json.RawMessage(`8388608`)}},
	}

	sub, err := c.SubmitJob(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if sub.ID == "" || sub.Runs != 2 {
		t.Fatalf("submitted info: %+v", sub)
	}

	stream, err := c.StreamJob(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()
	var streamed []api.RunResult
	for {
		rr, err := stream.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("stream: %v", err)
		}
		streamed = append(streamed, rr)
	}

	final, err := c.WaitJob(ctx, sub.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.Status != api.JobDone || final.Completed != 2 || final.SpecKey == "" {
		t.Fatalf("terminal info: %+v", final)
	}

	// The stream carried the same runs the synchronous API returns.
	res, _, err := c.Run(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecKey != final.SpecKey || len(streamed) != len(res.Runs) {
		t.Fatalf("stream/run mismatch: %d streamed vs %d runs", len(streamed), len(res.Runs))
	}
	for i := range streamed {
		a, _ := json.Marshal(streamed[i])
		b, _ := json.Marshal(res.Runs[i])
		if !bytes.Equal(a, b) {
			t.Fatalf("streamed run %d differs:\n%s\n%s", i, a, b)
		}
	}

	// The job shows up first in the newest-first listing.
	page, err := c.ListJobs(ctx, ListJobsOptions{Limit: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Jobs) != 1 || page.Jobs[0].ID != sub.ID {
		t.Fatalf("listing head: %+v", page.Jobs)
	}
}

// TestClientStreamContextCancel pins mid-stream cancellation: after the
// context dies, the next Next returns an error instead of blocking until
// the server finishes.
func TestClientStreamContextCancel(t *testing.T) {
	// A synthetic NDJSON endpoint: one line immediately, then hold the
	// connection open until the client goes away.
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}/stream", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", api.ContentTypeNDJSON)
		line, _ := json.Marshal(api.RunResult{Key: "k1", Scenario: "s", Scale: "quick", Report: json.RawMessage(`{}`)})
		w.Write(line)
		w.Write([]byte("\n"))
		w.(http.Flusher).Flush()
		<-r.Context().Done()
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newTestClient(t, ts.URL)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stream, err := c.StreamJob(ctx, "job-000001")
	if err != nil {
		t.Fatal(err)
	}
	defer stream.Close()

	rr, err := stream.Next()
	if err != nil || rr.Key != "k1" {
		t.Fatalf("first line = %+v, %v", rr, err)
	}

	cancel()
	done := make(chan error, 1)
	go func() {
		_, err := stream.Next()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || err == io.EOF {
			t.Fatalf("Next after cancel = %v, want a context-kill error", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Next never returned after context cancellation")
	}
}

// TestClientCancelWhileCompleting is the acceptance-criteria race: cancel
// a job while 8 workers are completing its runs, then require a clean
// terminal state with consistent counts and an idempotent second cancel.
func TestClientCancelWhileCompleting(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	ts := newTestServer(t, exp.WithWorkers(8))
	c := newTestClient(t, ts.URL)
	ctx := context.Background()

	// Slow every cold run down so the cancel reliably lands while the
	// sweep is in flight: on a fast machine all 8 runs can otherwise
	// finish inside the submit→cancel HTTP round trip and no round ever
	// exercises the race this test exists for.
	fsio.SetFailpoint("engine.run", func() error {
		time.Sleep(15 * time.Millisecond)
		return nil
	})
	defer fsio.SetFailpoint("engine.run", nil)

	grid := make([]json.RawMessage, 8)
	for i := range grid {
		grid[i], _ = json.Marshal(1 << (20 + i))
	}
	spec := api.RunSpec{Scenario: "covert-pnm", Grid: map[string][]json.RawMessage{"llc_bytes": grid}}

	canceledSeen := false
	for round := 0; round < 6; round++ {
		// A fresh seed each round keeps every sweep cold, so the cancel
		// always races live simulations rather than cache replay.
		cfg, _ := json.Marshal(map[string]any{"noise": map[string]any{"seed": 1000 + round}})
		spec.Config = cfg

		sub, err := c.SubmitJob(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		// Stagger the cancel point across rounds: immediately, and at
		// increasing depths into the sweep.
		time.Sleep(time.Duration(round) * 2 * time.Millisecond)
		if _, err := c.CancelJob(ctx, sub.ID); err != nil {
			t.Fatal(err)
		}
		final, err := c.WaitJob(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		switch final.Status {
		case api.JobCanceled:
			canceledSeen = true
			if final.Completed > final.Runs || final.SpecKey != "" {
				t.Fatalf("round %d: canceled job inconsistent: %+v", round, final)
			}
		case api.JobDone:
			if final.Completed != final.Runs || final.SpecKey == "" {
				t.Fatalf("round %d: done job inconsistent: %+v", round, final)
			}
		default:
			t.Fatalf("round %d: terminal status %q", round, final.Status)
		}
		if final.Hits+final.Misses != final.Completed {
			t.Fatalf("round %d: cache counts inconsistent: %+v", round, final)
		}

		// Idempotent: a second cancel reports the same terminal state.
		again, err := c.CancelJob(ctx, sub.ID)
		if err != nil {
			t.Fatal(err)
		}
		if again.Status != final.Status || again.Completed != final.Completed {
			t.Fatalf("round %d: second cancel drifted: %+v vs %+v", round, again, final)
		}

		// A canceled job's stream still ends with the job_canceled line.
		if final.Status == api.JobCanceled {
			stream, err := c.StreamJob(ctx, sub.ID)
			if err != nil {
				t.Fatal(err)
			}
			for {
				_, err := stream.Next()
				if err == io.EOF {
					t.Fatal("canceled job stream ended without the job_canceled line")
				}
				if err != nil {
					var apiErr *api.Error
					if !errors.As(err, &apiErr) || apiErr.Code != api.CodeJobCanceled {
						t.Fatalf("canceled job stream error = %v", err)
					}
					break
				}
			}
			stream.Close()
		}
	}
	if !canceledSeen {
		t.Fatal("no round actually landed in canceled; the race never happened")
	}
}

// TestClientWaitJobContext pins WaitJob's context handling: a never-
// finishing poll loop unwinds when the context dies.
func TestClientWaitJobContext(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(api.JobInfo{ID: r.PathValue("id"), Status: api.JobRunning})
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := newTestClient(t, ts.URL)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := c.WaitJob(ctx, "job-000001"); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitJob = %v, want deadline exceeded", err)
	}
}

// TestClientHealthAndScenarios smoke-tests the remaining unary surface
// against a real server.
func TestClientHealthAndScenarios(t *testing.T) {
	ts := newTestServer(t, exp.WithWorkers(1))
	c := newTestClient(t, ts.URL)
	ctx := context.Background()

	health, err := c.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || !strings.HasPrefix(health.Go, "go") {
		t.Fatalf("health = %+v", health)
	}
	scenarios, err := c.Scenarios(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(scenarios) == 0 {
		t.Fatal("no scenarios listed")
	}
	metricsDoc, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := metricsDoc.Requests["run"]; !ok {
		t.Fatalf("metrics missing run route: %+v", metricsDoc.Requests)
	}
}

// TestNewValidation pins constructor validation.
func TestNewValidation(t *testing.T) {
	if _, err := New(""); err == nil {
		t.Fatal("empty base URL accepted")
	}
	if _, err := New("://nope"); err == nil {
		t.Fatal("malformed base URL accepted")
	}
	c, err := New("localhost:8322")
	if err != nil {
		t.Fatal(err)
	}
	if c.base != "http://localhost:8322" {
		t.Fatalf("scheme default: %q", c.base)
	}
}

// TestWaitJobBackoffSchedule pins WaitJob's poll schedule: delays start
// at the poll interval, double each lap, cap at the poll maximum, and
// carry ±20% jitter. The clock and jitter draw are injected, so the
// schedule is asserted exactly.
func TestWaitJobBackoffSchedule(t *testing.T) {
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		status := api.JobRunning
		if polls.Add(1) >= 6 {
			status = api.JobDone
		}
		json.NewEncoder(w).Encode(api.JobInfo{ID: r.PathValue("id"), Status: status})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	c := newTestClient(t, ts.URL,
		WithPollInterval(10*time.Millisecond), WithPollMax(80*time.Millisecond))
	var slept []time.Duration
	c.sleep = func(_ context.Context, d time.Duration) error {
		slept = append(slept, d)
		return nil
	}
	c.jitter = func() float64 { return 0.5 } // 0.8 + 0.4*0.5 = exactly 1.0

	info, err := c.WaitJob(context.Background(), "job-000001")
	if err != nil || info.Status != api.JobDone {
		t.Fatalf("WaitJob = %+v, %v", info, err)
	}
	want := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 40 * time.Millisecond,
		80 * time.Millisecond, 80 * time.Millisecond,
	}
	if len(slept) != len(want) {
		t.Fatalf("slept %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full schedule %v)", i, slept[i], want[i], slept)
		}
	}

	// Jitter spreads each delay over [0.8d, 1.2d).
	if d := jittered(100*time.Millisecond, 0); d != 80*time.Millisecond {
		t.Fatalf("jittered(100ms, 0) = %v, want 80ms", d)
	}
	if d := jittered(100*time.Millisecond, 0.999); d < 119*time.Millisecond || d > 120*time.Millisecond {
		t.Fatalf("jittered(100ms, 0.999) = %v, want just under 120ms", d)
	}
}

// TestClientRetryAfterSurface pins the 429 contract client-side: a full
// registry rejection arrives as a typed *api.Error with the stable
// too_many_jobs code and the server's Retry-After hint in seconds.
func TestClientRetryAfterSurface(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		json.NewEncoder(w).Encode(api.Envelope{Err: &api.Error{
			Code: api.CodeTooManyJobs, Message: "registry full",
		}})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	c := newTestClient(t, ts.URL)
	_, err := c.SubmitJob(context.Background(), api.RunSpec{Scenario: "covert-pnm"})
	var apiErr *api.Error
	if !errors.As(err, &apiErr) {
		t.Fatalf("SubmitJob error = %v, want *api.Error", err)
	}
	if apiErr.Code != api.CodeTooManyJobs || apiErr.HTTPStatus != http.StatusTooManyRequests {
		t.Fatalf("typed error = %+v", apiErr)
	}
	if apiErr.RetryAfter != 1 {
		t.Fatalf("RetryAfter = %d, want 1", apiErr.RetryAfter)
	}
}

package jsonenum

import (
	"strings"
	"testing"
)

type color int

const (
	red color = iota + 1
	blue
)

var colorNames = map[string]color{"red": red, "blue": blue}

func TestMarshal(t *testing.T) {
	blob, err := Marshal(blue, "color", colorNames)
	if err != nil || string(blob) != `"blue"` {
		t.Fatalf("Marshal = %s, %v", blob, err)
	}
	if _, err := Marshal(color(99), "color", colorNames); err == nil || !strings.Contains(err.Error(), `"color"`) {
		t.Fatalf("unknown value error = %v", err)
	}
}

func TestUnmarshal(t *testing.T) {
	for in, want := range map[string]color{`"red"`: red, `"blue"`: blue, `1`: red, `2`: blue} {
		got, err := Unmarshal([]byte(in), "color", colorNames)
		if err != nil || got != want {
			t.Fatalf("Unmarshal(%s) = %v, %v", in, got, err)
		}
	}
	for _, in := range []string{`"green"`, `99`, `true`} {
		_, err := Unmarshal([]byte(in), "color", colorNames)
		if err == nil || !strings.Contains(err.Error(), `"color"`) {
			t.Fatalf("Unmarshal(%s) error = %v, want a field-naming error", in, err)
		}
	}
	// Unknown-name errors enumerate the valid names deterministically.
	_, err := Unmarshal([]byte(`"green"`), "color", colorNames)
	if !strings.Contains(err.Error(), `"blue", "red"`) {
		t.Fatalf("error does not list names sorted: %v", err)
	}
}

// Package jsonenum gives integer enums a string JSON form: values encode
// as their registered names and decode from either a name or the integer
// ordinal, with errors that name the JSON field. dram.MappingScheme and
// memctrl.Defense wrap these helpers in their MarshalJSON/UnmarshalJSON
// methods so every enum shares one decode contract.
package jsonenum

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// Marshal encodes v as its registered name.
func Marshal[E comparable](v E, field string, names map[string]E) ([]byte, error) {
	for name, e := range names {
		if e == v {
			return json.Marshal(name)
		}
	}
	return nil, fmt.Errorf("field %q: cannot encode unknown value %v", field, v)
}

// Unmarshal decodes a registered name or an integer ordinal.
func Unmarshal[E ~int](data []byte, field string, names map[string]E) (E, error) {
	var name string
	if err := json.Unmarshal(data, &name); err == nil {
		if v, ok := names[name]; ok {
			return v, nil
		}
		return 0, fmt.Errorf("field %q: unknown value %q (want one of %s)", field, name, nameList(names))
	}
	var ord int
	if err := json.Unmarshal(data, &ord); err != nil {
		return 0, fmt.Errorf("field %q: want one of %s or an ordinal, got %s", field, nameList(names), data)
	}
	v := E(ord)
	for _, e := range names {
		if e == v {
			return v, nil
		}
	}
	return 0, fmt.Errorf("field %q: unknown ordinal %d", field, ord)
}

// nameList renders the registered names sorted, quoted, comma-separated.
func nameList[E comparable](names map[string]E) string {
	out := make([]string, 0, len(names))
	for name := range names {
		out = append(out, fmt.Sprintf("%q", name))
	}
	sort.Strings(out)
	return strings.Join(out, ", ")
}

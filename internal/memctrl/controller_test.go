package memctrl

import (
	"errors"
	"testing"

	"repro/internal/dram"
)

func newTestController(t *testing.T, cfg Config) *Controller {
	t.Helper()
	dev, err := dram.NewDevice(dram.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return New(dev, cfg)
}

func TestControllerAddsRequestOverhead(t *testing.T) {
	c := newTestController(t, Config{Defense: DefenseNone, RequestOverhead: 15})
	res, err := c.Access(0, 0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := dram.DDR4_2400().EmptyLatency() + 15
	if res.Latency != want {
		t.Fatalf("latency = %d, want %d", res.Latency, want)
	}
}

func TestConstantTimePadsEverything(t *testing.T) {
	c := newTestController(t, Config{Defense: DefenseConstantTime, RequestOverhead: 15})
	worst := dram.DDR4_2400().WorstCaseLatency() + 15
	var latencies []int64
	// Hit, empty and conflict paths must all observe the same latency.
	for _, row := range []int64{5, 5, 9} {
		res, err := c.Access(int64(len(latencies))*1000, 0, row, 0)
		if err != nil {
			t.Fatal(err)
		}
		latencies = append(latencies, res.Latency)
	}
	for i, lat := range latencies {
		if lat != worst {
			t.Fatalf("access %d latency = %d, want constant %d", i, lat, worst)
		}
	}
}

func TestClosedRowPolicyPrechargesAfterAccess(t *testing.T) {
	c := newTestController(t, Config{Defense: DefenseClosedRow, RequestOverhead: 0})
	first, err := c.Access(0, 0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The same row again: under CRP it must be an activation (empty), not
	// a hit — the timing channel's hit/conflict distinction is gone.
	res, err := c.Access(first.CompletedAt+500, 0, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != dram.OutcomeEmpty {
		t.Fatalf("outcome under CRP = %v, want empty", res.Outcome)
	}
}

func TestPartitionDefense(t *testing.T) {
	c := newTestController(t, Config{Defense: DefensePartition, RequestOverhead: 0})
	if err := c.SetOwner(3, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Access(0, 3, 5, 1); err != nil {
		t.Fatalf("owner access rejected: %v", err)
	}
	_, err := c.Access(100, 3, 5, 2)
	if !errors.Is(err, ErrPartitionViolation) {
		t.Fatalf("cross-process access error = %v, want ErrPartitionViolation", err)
	}
	// Unowned banks remain accessible to anyone.
	if _, err := c.Access(200, 4, 5, 2); err != nil {
		t.Fatalf("unowned bank rejected: %v", err)
	}
	if err := c.SetOwner(99, 1); err == nil {
		t.Fatal("SetOwner accepted out-of-range bank")
	}
}

func TestACTTriggersAfterThreshold(t *testing.T) {
	cfg := Config{Defense: DefenseAdaptive, RequestOverhead: 0, ACT: ACTConfig{
		EpochCycles: 1000, ConflictThreshold: 1, PenaltyEpochs: 10,
	}}
	c := newTestController(t, cfg)
	worst := dram.DDR4_2400().WorstCaseLatency()

	// Epoch 0: create a conflict.
	c.Access(0, 0, 1, 0)
	c.Access(200, 0, 2, 0) // conflict
	// Epoch 1..10: the bank must be padded.
	res, err := c.Access(1500, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != worst {
		t.Fatalf("epoch-1 latency = %d, want padded %d", res.Latency, worst)
	}
	if !c.ConstantTimeActive(1500, 0) {
		t.Fatal("ConstantTimeActive = false during penalty")
	}
	// After the penalty expires (epoch 11+), a quiet bank serves default
	// latency again.
	res, err = c.Access(12_500, 0, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency == worst {
		t.Fatalf("latency still padded after penalty expiry")
	}
}

func TestACTConservativeNeedsFiveConflicts(t *testing.T) {
	cfg := Config{Defense: DefenseAdaptive, RequestOverhead: 0, ACT: ACTConservative()}
	c := newTestController(t, cfg)
	// Three conflicts in one epoch: below the threshold of five.
	now := int64(0)
	for i := 0; i < 4; i++ {
		res, err := c.Access(now, 0, int64(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		now = res.CompletedAt + 1
	}
	if c.ConstantTimeActive(now, 0) {
		t.Fatal("conservative ACT armed below threshold")
	}
}

func TestACTOtherBanksUnaffected(t *testing.T) {
	cfg := Config{Defense: DefenseAdaptive, RequestOverhead: 0, ACT: ACTAggressive()}
	c := newTestController(t, cfg)
	c.Access(0, 0, 1, 0)
	c.Access(200, 0, 2, 0) // conflict in bank 0
	// Roll into the next epoch on bank 0 to arm the penalty.
	c.Access(3000, 0, 3, 0)
	if !c.ConstantTimeActive(3100, 0) {
		t.Fatal("bank 0 not padded")
	}
	if c.ConstantTimeActive(3100, 1) {
		t.Fatal("bank 1 padded without any conflicts")
	}
}

func TestPaddingNeverShortensLatency(t *testing.T) {
	c := newTestController(t, Config{Defense: DefenseConstantTime, RequestOverhead: 0})
	// Force a stall longer than the worst-case latency by hammering the
	// same bank back-to-back; padding must not hide the real latency.
	var now int64
	var prev int64
	for i := 0; i < 4; i++ {
		res, err := c.Access(now, 0, int64(i), 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Latency < prev-now {
			t.Fatalf("padded latency %d shorter than remaining busy time", res.Latency)
		}
		prev = res.CompletedAt
		// Do not advance now: every access queues behind the previous.
	}
}

func TestRowCloneUnderConstantTime(t *testing.T) {
	c := newTestController(t, Config{Defense: DefenseConstantTime, RequestOverhead: 0})
	hit, err := c.RowClone(0, 0, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	conflict, err := c.RowClone(hit.CompletedAt+500, 0, 3, 4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Latency != conflict.Latency {
		t.Fatalf("rowclone latencies differ under CTD: %d vs %d", hit.Latency, conflict.Latency)
	}
}

func TestDefenseString(t *testing.T) {
	wants := map[Defense]string{
		DefenseNone: "none", DefensePartition: "mpr", DefenseClosedRow: "crp",
		DefenseConstantTime: "ctd", DefenseAdaptive: "act", Defense(99): "unknown",
	}
	for d, want := range wants {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", d, got, want)
		}
	}
}

// Package memctrl models the memory controller that fronts the DRAM device:
// request overheads, row policies, and the paper's four IMPACT defenses
// (bank partitioning, closed-row policy, constant-time DRAM, and the
// adaptive constant-time "ACT" mechanism of Section 7.4).
package memctrl

import (
	"errors"
	"fmt"

	"repro/internal/dram"
	"repro/internal/jsonenum"
	"repro/internal/stats"
)

// ErrPartitionViolation is returned when a process touches a bank owned by
// another process under the MPR (memory partitioning) defense.
var ErrPartitionViolation = errors.New("memctrl: bank partition violation")

// Defense selects the active countermeasure.
type Defense int

const (
	// DefenseNone serves requests with the default open-row policy.
	DefenseNone Defense = iota + 1
	// DefensePartition (MPR, Section 7.1) dedicates each bank to one
	// process and rejects cross-process accesses.
	DefensePartition
	// DefenseClosedRow (CRP, Section 7.2) precharges the row after every
	// access, so every access pays exactly one activation.
	DefenseClosedRow
	// DefenseConstantTime (CTD, Section 7.3) pads every access to the
	// worst-case DRAM latency.
	DefenseConstantTime
	// DefenseAdaptive (ACT, Section 7.4) enforces constant-time latency
	// per bank only after observing row-buffer contention.
	DefenseAdaptive
)

// String implements fmt.Stringer.
func (d Defense) String() string {
	switch d {
	case DefenseNone:
		return "none"
	case DefensePartition:
		return "mpr"
	case DefenseClosedRow:
		return "crp"
	case DefenseConstantTime:
		return "ctd"
	case DefenseAdaptive:
		return "act"
	default:
		return "unknown"
	}
}

// defenseNames maps the JSON/String form back to the enum.
var defenseNames = map[string]Defense{
	"none": DefenseNone,
	"mpr":  DefensePartition,
	"crp":  DefenseClosedRow,
	"ctd":  DefenseConstantTime,
	"act":  DefenseAdaptive,
}

// Valid reports whether d names one of the five defined defenses.
func (d Defense) Valid() bool {
	return d >= DefenseNone && d <= DefenseAdaptive
}

// MarshalJSON encodes the defense as its String form ("none", "mpr", "crp",
// "ctd", "act").
func (d Defense) MarshalJSON() ([]byte, error) {
	blob, err := jsonenum.Marshal(d, "defense", defenseNames)
	if err != nil {
		return nil, fmt.Errorf("memctrl: %w", err)
	}
	return blob, nil
}

// UnmarshalJSON decodes either the String form or the integer ordinal.
func (d *Defense) UnmarshalJSON(data []byte) error {
	v, err := jsonenum.Unmarshal(data, "defense", defenseNames)
	if err != nil {
		return fmt.Errorf("memctrl: %w", err)
	}
	*d = v
	return nil
}

// ACTConfig parameterizes the adaptive constant-time defense. The paper
// evaluates three variants over 1000 ns epochs (2600 cycles at 2.6 GHz).
type ACTConfig struct {
	// EpochCycles is the epoch length in CPU cycles.
	EpochCycles int64 `json:"epoch_cycles"`
	// ConflictThreshold is the number of row-buffer conflicts within one
	// epoch that arms the constant-time policy for the next epochs.
	ConflictThreshold int `json:"conflict_threshold"`
	// PenaltyEpochs is how many epochs the bank stays constant-time after
	// the threshold is crossed.
	PenaltyEpochs int64 `json:"penalty_epochs"`
}

// ACTAggressive returns the paper's ACT-Aggressive variant: constant time
// for the next 4000 epochs after the 1st conflict in a bank.
func ACTAggressive() ACTConfig {
	return ACTConfig{EpochCycles: 2600, ConflictThreshold: 1, PenaltyEpochs: 4000}
}

// ACTMild returns ACT-Mild: constant time for 2 epochs after the 1st
// conflict.
func ACTMild() ACTConfig {
	return ACTConfig{EpochCycles: 2600, ConflictThreshold: 1, PenaltyEpochs: 2}
}

// ACTConservative returns ACT-Conservative: constant time for 2 epochs after
// 5 conflicts in an epoch.
func ACTConservative() ACTConfig {
	return ACTConfig{EpochCycles: 2600, ConflictThreshold: 5, PenaltyEpochs: 2}
}

// Fixed counter IDs for controller statistics, in the slot order passed to
// stats.NewFixed in New.
const (
	CounterRequests stats.CounterID = iota
	CounterACTPadded
	CounterPartitionViolation
)

// actBankState tracks per-bank epoch accounting for the ACT defense.
type actBankState struct {
	epoch              int64
	conflictsInEpoch   int
	constantUntilEpoch int64
}

// Config parameterizes the controller.
type Config struct {
	// Defense selects the countermeasure (DefenseNone to disable).
	Defense Defense `json:"defense"`
	// ACT configures DefenseAdaptive; ignored otherwise.
	ACT ACTConfig `json:"act"`
	// RequestOverhead is the fixed controller/queueing cost added to each
	// request, in cycles.
	RequestOverhead int64 `json:"request_overhead"`
}

// DefaultConfig returns an undefended controller with a 15-cycle fixed
// request overhead (queue, scheduling, bus).
func DefaultConfig() Config {
	return Config{Defense: DefenseNone, RequestOverhead: 15}
}

// Validate reports configuration errors, naming fields by their JSON tags.
func (c Config) Validate() error {
	if !c.Defense.Valid() {
		return fmt.Errorf(`memctrl: field "defense": unknown defense %d`, int(c.Defense))
	}
	if c.RequestOverhead < 0 {
		return fmt.Errorf(`memctrl: field "request_overhead": must be >= 0 (got %d)`, c.RequestOverhead)
	}
	if c.Defense == DefenseAdaptive {
		if c.ACT.EpochCycles <= 0 {
			return fmt.Errorf(`memctrl: field "act.epoch_cycles": must be > 0 for the act defense (got %d)`, c.ACT.EpochCycles)
		}
		if c.ACT.ConflictThreshold <= 0 {
			return fmt.Errorf(`memctrl: field "act.conflict_threshold": must be > 0 for the act defense (got %d)`, c.ACT.ConflictThreshold)
		}
	}
	return nil
}

// Controller fronts a DRAM device.
type Controller struct {
	dev      *dram.Device
	cfg      Config
	actState []actBankState
	owners   []int
	counters *stats.Counters
}

// New builds a controller over the given device.
func New(dev *dram.Device, cfg Config) *Controller {
	n := dev.NumBanks()
	owners := make([]int, n)
	for i := range owners {
		owners[i] = -1
	}
	return &Controller{
		dev:      dev,
		cfg:      cfg,
		actState: make([]actBankState, n),
		owners:   owners,
		counters: stats.NewFixed("requests", "act_padded", "partition_violation"),
	}
}

// Device returns the underlying DRAM device.
func (c *Controller) Device() *dram.Device { return c.dev }

// Config returns the controller configuration.
func (c *Controller) Config() Config { return c.cfg }

// Counters exposes controller statistics.
func (c *Controller) Counters() *stats.Counters { return c.counters }

// SetOwner assigns a bank to a process for the partitioning defense.
func (c *Controller) SetOwner(bank, proc int) error {
	if bank < 0 || bank >= len(c.owners) {
		return fmt.Errorf("memctrl: bank %d out of range [0,%d)", bank, len(c.owners))
	}
	c.owners[bank] = proc
	return nil
}

// Access serves one memory request for the given process and returns the
// end-to-end latency (controller overhead + device latency, possibly padded
// by a defense) plus the true row-buffer outcome. Under latency-padding
// defenses the returned Outcome reflects what the device did, but the
// Latency is what the requester observes — which is exactly the distinction
// the defenses exploit.
//
//impact:hotpath
func (c *Controller) Access(now int64, bank int, row int64, proc int) (dram.AccessResult, error) {
	if c.cfg.Defense == DefensePartition {
		if bank >= 0 && bank < len(c.owners) {
			if owner := c.owners[bank]; owner >= 0 && owner != proc {
				c.counters.Add(CounterPartitionViolation, 1)
				return dram.AccessResult{}, ErrPartitionViolation
			}
		}
	}

	res, err := c.dev.Access(now+c.cfg.RequestOverhead, bank, row)
	if err != nil {
		return dram.AccessResult{}, err
	}
	res.Latency += c.cfg.RequestOverhead
	c.counters.Add(CounterRequests, 1)

	switch c.cfg.Defense {
	case DefenseClosedRow:
		// Precharge immediately after the access; the requester pays the
		// activation on this access (Empty path) and the bank is busy
		// through the precharge.
		if b := c.dev.Bank(bank); b != nil {
			b.Precharge(res.CompletedAt)
		}
	case DefenseConstantTime:
		res.Latency = c.padded(res.Latency)
	case DefenseAdaptive:
		if c.actObserve(now, bank, res.Outcome) {
			res.Latency = c.padded(res.Latency)
			c.counters.Add(CounterACTPadded, 1)
		}
	}
	return res, nil
}

// Activate opens a row (sender-side PEIs) subject to the same defenses.
//
//impact:hotpath
func (c *Controller) Activate(now int64, bank int, row int64, proc int) (dram.AccessResult, error) {
	if c.cfg.Defense == DefensePartition {
		if bank >= 0 && bank < len(c.owners) {
			if owner := c.owners[bank]; owner >= 0 && owner != proc {
				c.counters.Add(CounterPartitionViolation, 1)
				return dram.AccessResult{}, ErrPartitionViolation
			}
		}
	}
	res, err := c.dev.Activate(now+c.cfg.RequestOverhead, bank, row)
	if err != nil {
		return dram.AccessResult{}, err
	}
	res.Latency += c.cfg.RequestOverhead
	c.counters.Add(CounterRequests, 1)
	switch c.cfg.Defense {
	case DefenseClosedRow:
		if b := c.dev.Bank(bank); b != nil {
			b.Precharge(res.CompletedAt)
		}
	case DefenseAdaptive:
		c.actObserve(now, bank, res.Outcome)
	}
	return res, nil
}

// RowClone dispatches an in-DRAM copy subject to the active defense.
func (c *Controller) RowClone(now int64, bank int, srcRow, dstRow int64, proc int) (dram.AccessResult, error) {
	if c.cfg.Defense == DefensePartition {
		if bank >= 0 && bank < len(c.owners) {
			if owner := c.owners[bank]; owner >= 0 && owner != proc {
				c.counters.Add(CounterPartitionViolation, 1)
				return dram.AccessResult{}, ErrPartitionViolation
			}
		}
	}
	res, err := c.dev.RowClone(now+c.cfg.RequestOverhead, bank, srcRow, dstRow)
	if err != nil {
		return dram.AccessResult{}, err
	}
	res.Latency += c.cfg.RequestOverhead
	c.counters.Add(CounterRequests, 1)
	switch c.cfg.Defense {
	case DefenseClosedRow:
		if b := c.dev.Bank(bank); b != nil {
			b.Precharge(res.CompletedAt)
		}
	case DefenseConstantTime:
		res.Latency = c.paddedRowClone(res.Latency)
	case DefenseAdaptive:
		if c.actObserve(now, bank, res.Outcome) {
			res.Latency = c.paddedRowClone(res.Latency)
			c.counters.Add(CounterACTPadded, 1)
		}
	}
	return res, nil
}

// padded returns the constant-time access latency (never shorter than the
// observed latency, so padding cannot speed a request up).
//
//impact:hotpath
func (c *Controller) padded(actual int64) int64 {
	worst := c.dev.Config().Timing.WorstCaseLatency() + c.cfg.RequestOverhead
	if actual > worst {
		return actual
	}
	return worst
}

// paddedRowClone pads RowClone operations to their worst case.
//
//impact:hotpath
func (c *Controller) paddedRowClone(actual int64) int64 {
	t := c.dev.Config().Timing
	worst := t.TRAS + t.TRP + t.TRCD + t.RowCloneFPM + c.cfg.RequestOverhead
	if actual > worst {
		return actual
	}
	return worst
}

// actObserve updates per-bank ACT epoch accounting with the outcome of an
// access that started at now and reports whether the bank is currently under
// the constant-time policy.
//
//impact:hotpath
func (c *Controller) actObserve(now int64, bank int, outcome dram.Outcome) bool {
	if bank < 0 || bank >= len(c.actState) || c.cfg.ACT.EpochCycles <= 0 {
		return false
	}
	st := &c.actState[bank]
	epoch := now / c.cfg.ACT.EpochCycles
	if epoch != st.epoch {
		// Epoch rollover: decide the next policy from the last epoch's
		// conflict count. The penalty window is measured from the epoch
		// the conflicts occurred in, so an attack that revisits a bank
		// every PenaltyEpochs+1 epochs threads between penalties — which
		// is exactly why the paper finds ACT-Mild and ACT-Conservative
		// unable to reduce IMPACT's throughput (Section 7.4).
		if st.conflictsInEpoch >= c.cfg.ACT.ConflictThreshold {
			until := st.epoch + c.cfg.ACT.PenaltyEpochs
			if until > st.constantUntilEpoch {
				st.constantUntilEpoch = until
			}
		}
		st.conflictsInEpoch = 0
		st.epoch = epoch
	}
	if outcome == dram.OutcomeConflict {
		st.conflictsInEpoch++
	}
	return epoch < st.constantUntilEpoch
}

// ConstantTimeActive reports whether ACT currently pads the given bank. The
// adaptive attacker in Section 7.4 uses this observable (it can infer it
// from latencies) to transmit only during default-latency epochs.
func (c *Controller) ConstantTimeActive(now int64, bank int) bool {
	if c.cfg.Defense == DefenseConstantTime {
		return true
	}
	if c.cfg.Defense != DefenseAdaptive {
		return false
	}
	if bank < 0 || bank >= len(c.actState) || c.cfg.ACT.EpochCycles <= 0 {
		return false
	}
	st := &c.actState[bank]
	epoch := now / c.cfg.ACT.EpochCycles
	until := st.constantUntilEpoch
	if epoch != st.epoch && st.conflictsInEpoch >= c.cfg.ACT.ConflictThreshold {
		// The rollover on the next access would arm this penalty; apply
		// the same window arithmetic actObserve uses so idle epochs
		// count toward expiry.
		if pending := st.epoch + c.cfg.ACT.PenaltyEpochs; pending > until {
			until = pending
		}
	}
	return epoch < until
}

package genomics

// Alignment scoring constants (match/mismatch/gap), minimap2-like defaults.
const (
	scoreMatch    = 2
	scoreMismatch = -4
	scoreGap      = -2
)

// AlignmentResult reports a banded alignment between a read and a reference
// window.
type AlignmentResult struct {
	// Score is the best global alignment score within the band.
	Score int
	// RefStart is the reference offset the alignment was anchored at.
	RefStart int
	// Cells is the number of dynamic-programming cells evaluated, which
	// drives the victim's simulated compute time.
	Cells int
}

// BandedAlign aligns read against ref[refStart : refStart+len(read)+band]
// with a diagonal band of half-width band (Needleman-Wunsch restricted to
// the band), the dynamic-programming step of Figure 6.
func BandedAlign(ref []byte, read []byte, refStart, band int) AlignmentResult {
	if band < 1 {
		band = 1
	}
	n := len(read)
	if n == 0 {
		return AlignmentResult{RefStart: refStart}
	}
	// Clamp the reference window.
	if refStart < 0 {
		refStart = 0
	}
	m := n + band
	if refStart+m > len(ref) {
		m = len(ref) - refStart
	}
	if m <= 0 {
		return AlignmentResult{RefStart: refStart}
	}
	window := ref[refStart : refStart+m]

	const negInf = -1 << 30
	// Two rolling rows over the reference window, banded around the
	// diagonal i (read position) == j (window position).
	prev := make([]int, m+1)
	cur := make([]int, m+1)
	for j := range prev {
		if j <= band {
			prev[j] = j * scoreGap
		} else {
			prev[j] = negInf
		}
	}
	cells := 0
	for i := 1; i <= n; i++ {
		lo := i - band
		if lo < 1 {
			lo = 1
		}
		hi := i + band
		if hi > m {
			hi = m
		}
		for j := 0; j <= m; j++ {
			cur[j] = negInf
		}
		if lo == 1 {
			cur[0] = i * scoreGap
		}
		for j := lo; j <= hi; j++ {
			cells++
			sub := scoreMismatch
			if window[j-1] == read[i-1] {
				sub = scoreMatch
			}
			bestScore := prev[j-1] + sub
			if s := prev[j] + scoreGap; s > bestScore {
				bestScore = s
			}
			if s := cur[j-1] + scoreGap; s > bestScore {
				bestScore = s
			}
			cur[j] = bestScore
		}
		prev, cur = cur, prev
	}
	// The best end is the maximum over the last band of the final row.
	bestScore := negInf
	for j := n - band; j <= n+band; j++ {
		if j < 0 || j > m {
			continue
		}
		if prev[j] > bestScore {
			bestScore = prev[j]
		}
	}
	return AlignmentResult{Score: bestScore, RefStart: refStart, Cells: cells}
}

package genomics

import (
	"testing"

	"repro/internal/sim"
)

func mapperFixture(t *testing.T, banks, numReads int, mutationRate float64) (*sim.Machine, *Mapper) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.DRAM = cfg.DRAM.WithBanks(banks)
	cfg.Noise.EventsPerMCycle = 0
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewReference(1<<17, 7)
	idx, err := BuildIndex(ref, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	reads, err := SampleReads(ref, numReads, 150, mutationRate, 8)
	if err != nil {
		t.Fatal(err)
	}
	mapper, err := NewMapper(m, m.Core(2), ref, idx, DefaultBankLayout(banks), reads, DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return m, mapper
}

func TestMapperRecoversTruePositions(t *testing.T) {
	_, mapper := mapperFixture(t, 16, 60, 0.02)
	if err := mapper.Run(); err != nil {
		t.Fatal(err)
	}
	if !mapper.Done() {
		t.Fatal("mapper not done after Run")
	}
	if got := mapper.Accuracy(64); got < 0.95 {
		t.Fatalf("mapping accuracy = %.2f, want >= 0.95", got)
	}
	if len(mapper.Results()) != 60 {
		t.Fatalf("results = %d, want 60", len(mapper.Results()))
	}
}

func TestMapperAdvancesSimulatedTime(t *testing.T) {
	_, mapper := mapperFixture(t, 16, 5, 0)
	start := mapper.Now()
	if err := mapper.Run(); err != nil {
		t.Fatal(err)
	}
	if mapper.Now() <= start {
		t.Fatal("victim clock did not advance")
	}
}

func TestMapperTouchesReportedBanks(t *testing.T) {
	m, mapper := mapperFixture(t, 16, 10, 0.02)
	layout := mapper.Layout()
	touches := 0
	mapper.SetTouchFunc(func(bank int, row int64, at int64) {
		touches++
		if bank < 0 || bank >= layout.Banks {
			t.Fatalf("touch outside layout: bank %d", bank)
		}
		if row < layout.BaseRow {
			t.Fatalf("touch below table region: row %d", row)
		}
		// The touched bank's open row must actually be a table row: the
		// physical evidence the attacker reads.
		if open := m.Device().Bank(bank).OpenRow(); open != row {
			t.Fatalf("reported row %d but bank %d holds %d", row, bank, open)
		}
	})
	if err := mapper.Run(); err != nil {
		t.Fatal(err)
	}
	if touches == 0 {
		t.Fatal("no touches reported")
	}
}

func TestMapperRejectsEmptyReads(t *testing.T) {
	cfg := sim.DefaultConfig()
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewReference(1000, 1)
	idx, err := BuildIndex(ref, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMapper(m, m.Core(0), ref, idx, DefaultBankLayout(16), nil, DefaultCosts()); err == nil {
		t.Fatal("empty read set accepted")
	}
}

func TestMapperRejectsOversizedLayout(t *testing.T) {
	cfg := sim.DefaultConfig() // 16 banks
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := NewReference(1000, 1)
	idx, err := BuildIndex(ref, DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	reads, err := SampleReads(ref, 1, 150, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMapper(m, m.Core(0), ref, idx, DefaultBankLayout(1024), reads, DefaultCosts()); err == nil {
		t.Fatal("layout larger than the device accepted")
	}
}

func TestMapperMutationToleranceDegradesGracefully(t *testing.T) {
	// Even at 10% mutation rate, most reads should still map: seeding +
	// chaining tolerate point mutations.
	_, mapper := mapperFixture(t, 16, 40, 0.10)
	if err := mapper.Run(); err != nil {
		t.Fatal(err)
	}
	if got := mapper.Accuracy(64); got < 0.5 {
		t.Fatalf("accuracy at 10%% mutations = %.2f, want >= 0.5", got)
	}
}

package genomics

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrNoReads indicates the mapper was constructed without work to do.
var ErrNoReads = errors.New("genomics: no reads to map")

// Costs models the victim's per-step compute time (cycles) around its
// simulated memory accesses.
type Costs struct {
	// SeedCompute is the cost of extracting and hashing one k-mer.
	SeedCompute int64
	// ChainPerAnchor is the chaining cost per collected anchor.
	ChainPerAnchor int64
	// AlignPerCell is the alignment cost per DP cell.
	AlignPerCell int64
}

// DefaultCosts returns calibrated victim compute costs.
func DefaultCosts() Costs {
	return Costs{SeedCompute: 60, ChainPerAnchor: 12, AlignPerCell: 2}
}

// MapResult is the mapper's answer for one read.
type MapResult struct {
	TruePos int
	// MappedPos is the reference position the pipeline chose (-1 when the
	// read could not be placed).
	MappedPos int
	Score     int
}

// Correct reports whether the mapping landed within tolerance of the truth.
func (r MapResult) Correct(tolerance int) bool {
	if r.MappedPos < 0 {
		return false
	}
	d := r.MappedPos - r.TruePos
	if d < 0 {
		d = -d
	}
	return d <= tolerance
}

// TouchFunc observes every hash-table row the victim's seeding step
// activates: (bank, row, completion time). The side-channel harness uses it
// as ground truth.
type TouchFunc func(bank int, row int64, at int64)

// Mapper is the victim process of Section 4.3: a read mapper whose seeding
// step probes a bank-distributed hash table with PIM-enabled instructions.
// It advances one seed probe per Step so a co-running attacker can be
// interleaved at simulated-time granularity.
type Mapper struct {
	machine *sim.Machine
	core    *sim.Core
	ref     *Reference
	idx     *Index
	layout  BankLayout
	costs   Costs
	reads   []Read
	onTouch TouchFunc

	band int

	// Iteration state.
	readIdx int
	offset  int
	anchors []Anchor
	results []MapResult
}

// NewMapper builds the victim over an existing machine. core selects which
// simulated core the victim occupies.
func NewMapper(
	machine *sim.Machine,
	core *sim.Core,
	ref *Reference,
	idx *Index,
	layout BankLayout,
	reads []Read,
	costs Costs,
) (*Mapper, error) {
	if len(reads) == 0 {
		return nil, ErrNoReads
	}
	if layout.Banks > machine.Device().NumBanks() {
		return nil, fmt.Errorf("genomics: layout spans %d banks but device has %d",
			layout.Banks, machine.Device().NumBanks())
	}
	return &Mapper{
		machine: machine,
		core:    core,
		ref:     ref,
		idx:     idx,
		layout:  layout,
		costs:   costs,
		reads:   reads,
		band:    16,
	}, nil
}

// SetTouchFunc installs the ground-truth observer.
func (v *Mapper) SetTouchFunc(fn TouchFunc) { v.onTouch = fn }

// Now returns the victim's simulated clock.
func (v *Mapper) Now() int64 { return v.core.Now() }

// Done reports whether all reads are mapped.
func (v *Mapper) Done() bool { return v.readIdx >= len(v.reads) }

// Results returns the mapping results so far.
func (v *Mapper) Results() []MapResult { return v.results }

// Layout returns the table's bank layout.
func (v *Mapper) Layout() BankLayout { return v.layout }

// IndexBuckets returns the size of the seeding hash table.
func (v *Mapper) IndexBuckets() int { return v.idx.NumBuckets() }

// Step advances the victim by one seeding probe: it hashes the next k-mer,
// offloads the hash-table lookup to the PiM system (activating the bucket's
// DRAM row, which is what the attacker observes), and collects anchors. At
// the end of a read it runs chaining and banded alignment as pure compute.
func (v *Mapper) Step() error {
	if v.Done() {
		return nil
	}
	read := v.reads[v.readIdx]
	cfg := v.idx.Config()

	if v.offset+cfg.K <= len(read.Seq) {
		// Seeding: hash the k-mer and probe the table near memory.
		v.core.Advance(v.costs.SeedCompute)
		hash := KmerHash(read.Seq[v.offset:], cfg.K)
		bucket := v.idx.BucketOf(hash)
		bank, row, col := v.layout.Place(bucket)
		addr := v.machine.AddrFor(bank, row, col)
		if _, err := v.core.PEIAccess(addr); err != nil {
			return fmt.Errorf("seeding probe: %w", err)
		}
		if v.onTouch != nil {
			v.onTouch(bank, row, v.core.Now())
		}
		for _, pos := range v.idx.Lookup(hash) {
			v.anchors = append(v.anchors, Anchor{ReadPos: v.offset, RefPos: int(pos)})
		}
		v.offset += cfg.QueryStride
		return nil
	}

	// Read finished: chain and align (compute-only on the victim core).
	v.core.Advance(int64(len(v.anchors)) * v.costs.ChainPerAnchor)
	chain := ChainAnchors(v.anchors)
	result := MapResult{TruePos: read.TruePos, MappedPos: -1}
	if chain.Score > 0 {
		aln := BandedAlign(v.ref.Seq, read.Seq, chain.RefStart, v.band)
		v.core.Advance(int64(aln.Cells) * v.costs.AlignPerCell)
		result.MappedPos = aln.RefStart
		result.Score = aln.Score
	}
	v.results = append(v.results, result)
	v.anchors = v.anchors[:0]
	v.offset = 0
	v.readIdx++
	return nil
}

// Run maps everything without an attacker (used by tests and examples).
func (v *Mapper) Run() error {
	for !v.Done() {
		if err := v.Step(); err != nil {
			return err
		}
	}
	return nil
}

// Accuracy returns the fraction of reads mapped within tolerance.
func (v *Mapper) Accuracy(tolerance int) float64 {
	if len(v.results) == 0 {
		return 0
	}
	correct := 0
	for _, r := range v.results {
		if r.Correct(tolerance) {
			correct++
		}
	}
	return float64(correct) / float64(len(v.results))
}

package genomics

import "sort"

// Anchor is one seed hit: the read offset and the reference position where
// the seed's k-mer occurs.
type Anchor struct {
	ReadPos int
	RefPos  int
}

// Chain is a scored set of co-linear anchors, the output of the chaining
// step (Figure 6's step between seeding and alignment; the paper assumes
// chaining is part of the offloaded pipeline, Section 5.1).
type Chain struct {
	Anchors []Anchor
	Score   int
	// RefStart estimates where the read begins in the reference.
	RefStart int
}

// chainGapLimit bounds the reference/read gap between chained anchors.
const chainGapLimit = 500

// ChainAnchors finds the best co-linear chain through the anchors using the
// classic O(n^2) dynamic program over anchors sorted by reference position
// (minimap2's chaining, without its heuristics). It returns a zero-score
// chain when no anchors exist.
func ChainAnchors(anchors []Anchor) Chain {
	if len(anchors) == 0 {
		return Chain{}
	}
	sorted := make([]Anchor, len(anchors))
	copy(sorted, anchors)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].RefPos != sorted[j].RefPos {
			return sorted[i].RefPos < sorted[j].RefPos
		}
		return sorted[i].ReadPos < sorted[j].ReadPos
	})

	score := make([]int, len(sorted))
	prev := make([]int, len(sorted))
	best := 0
	for i := range sorted {
		score[i] = 1
		prev[i] = -1
		for j := i - 1; j >= 0; j-- {
			refGap := sorted[i].RefPos - sorted[j].RefPos
			readGap := sorted[i].ReadPos - sorted[j].ReadPos
			if refGap > chainGapLimit {
				break // sorted by RefPos: no earlier anchor can chain
			}
			if readGap <= 0 || refGap <= 0 {
				continue
			}
			diagDrift := refGap - readGap
			if diagDrift < 0 {
				diagDrift = -diagDrift
			}
			if diagDrift > 50 {
				continue
			}
			if s := score[j] + 1; s > score[i] {
				score[i] = s
				prev[i] = j
			}
		}
		if score[i] > score[best] {
			best = i
		}
	}

	// Backtrack the best chain.
	var chain []Anchor
	for i := best; i >= 0; i = prev[i] {
		chain = append(chain, sorted[i])
	}
	// Reverse into read order.
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	head := chain[0]
	return Chain{
		Anchors:  chain,
		Score:    score[best],
		RefStart: head.RefPos - head.ReadPos,
	}
}

// Package genomics implements the read-mapping substrate of the paper's
// side-channel attack (Section 4.3): a minimap2-style pipeline with k-mer
// seeding against a hash table distributed over DRAM banks, anchor chaining,
// and banded alignment. The reference genome is synthetic (the paper uses
// the human genome, which we cannot ship); the attack leaks *which hash
// table buckets the victim touches*, a property preserved exactly by a
// synthetic reference with the same table-over-banks layout (see DESIGN.md).
package genomics

import (
	"fmt"

	"repro/internal/stats"
)

// Bases are the four nucleotides in 2-bit encoding order.
var Bases = []byte{'A', 'C', 'G', 'T'}

// Reference is a synthetic reference genome.
type Reference struct {
	Seq []byte
}

// NewReference generates a deterministic pseudo-random reference of the
// given length, with a fraction of tandem repeats so seeding sees realistic
// multi-hit buckets.
func NewReference(length int, seed uint64) *Reference {
	rng := stats.NewRNG(seed)
	seq := make([]byte, 0, length)
	for len(seq) < length {
		// Insert a tandem repeat roughly every ~1250 bases appended, so
		// about 10% of the genome is repetitive (multi-hit seeds exist
		// without swamping chaining).
		if rng.Bool(0.0008) && len(seq) > 200 {
			// Copy a short repeat from earlier in the sequence.
			repLen := 50 + rng.Intn(150)
			src := rng.Intn(len(seq) - repLen)
			if src < 0 {
				src = 0
			}
			end := src + repLen
			if end > len(seq) {
				end = len(seq)
			}
			seq = append(seq, seq[src:end]...)
			continue
		}
		seq = append(seq, Bases[rng.Intn(4)])
	}
	return &Reference{Seq: seq[:length]}
}

// Read is one sequencing read sampled from a reference.
type Read struct {
	Seq []byte
	// TruePos is the position the read was sampled from (ground truth
	// for mapper accuracy tests).
	TruePos int
}

// SampleReads draws n reads of readLen bases from the reference, mutating
// each base with probability mutationRate (sequencing error + variants).
func SampleReads(ref *Reference, n, readLen int, mutationRate float64, seed uint64) ([]Read, error) {
	if readLen > len(ref.Seq) {
		return nil, fmt.Errorf("genomics: read length %d exceeds reference length %d", readLen, len(ref.Seq))
	}
	rng := stats.NewRNG(seed)
	reads := make([]Read, n)
	for i := range reads {
		pos := rng.Intn(len(ref.Seq) - readLen + 1)
		seq := make([]byte, readLen)
		copy(seq, ref.Seq[pos:pos+readLen])
		for j := range seq {
			if rng.Bool(mutationRate) {
				seq[j] = Bases[rng.Intn(4)]
			}
		}
		reads[i] = Read{Seq: seq, TruePos: pos}
	}
	return reads, nil
}

// encodeBase maps a nucleotide to its 2-bit code (A=0 C=1 G=2 T=3).
// Unknown characters map to 0, as real mappers do for 'N'.
func encodeBase(b byte) uint64 {
	switch b {
	case 'A', 'a':
		return 0
	case 'C', 'c':
		return 1
	case 'G', 'g':
		return 2
	case 'T', 't':
		return 3
	default:
		return 0
	}
}

// KmerHash computes a mixed hash of the k-mer starting at seq[0:k]. It
// 2-bit-packs the bases then applies a SplitMix64-style finalizer, matching
// the "hash the seed" step of Figure 6.
func KmerHash(seq []byte, k int) uint64 {
	var packed uint64
	for i := 0; i < k && i < len(seq); i++ {
		packed = packed<<2 | encodeBase(seq[i])
	}
	z := packed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

package genomics

import "fmt"

// IndexConfig parameterizes seeding.
type IndexConfig struct {
	// K is the seed (k-mer) length.
	K int
	// Stride is the indexing distance between reference k-mers (1 =
	// index every k-mer).
	Stride int
	// QueryStride is the sampling distance between seeds extracted from
	// a read during mapping.
	QueryStride int
	// Buckets is the hash table size; the paper distributes these across
	// DRAM banks.
	Buckets int
	// MaxPositionsPerBucket caps bucket occupancy (highly repetitive
	// seeds are dropped, as minimap2 does with high-frequency minimizers).
	MaxPositionsPerBucket int
}

// DefaultIndexConfig returns a small but realistic seeding configuration.
func DefaultIndexConfig() IndexConfig {
	return IndexConfig{K: 15, Stride: 1, QueryStride: 5, Buckets: 1 << 16, MaxPositionsPerBucket: 32}
}

// entry is one hash-table record: a k-mer fingerprint (the high hash bits,
// disambiguating bucket collisions) plus the reference position.
type entry struct {
	fp  uint32
	pos int32
}

// Index is the seeding hash table: bucket -> candidate reference positions.
type Index struct {
	cfg     IndexConfig
	buckets [][]entry
}

// fingerprint extracts the collision-disambiguation bits of a k-mer hash.
func fingerprint(hash uint64) uint32 {
	return uint32(hash >> 32)
}

// BuildIndex indexes every Stride-th k-mer of the reference.
func BuildIndex(ref *Reference, cfg IndexConfig) (*Index, error) {
	if cfg.K <= 0 || cfg.Stride <= 0 || cfg.Buckets <= 0 {
		return nil, fmt.Errorf("genomics: invalid index config %+v", cfg)
	}
	ix := &Index{cfg: cfg, buckets: make([][]entry, cfg.Buckets)}
	for pos := 0; pos+cfg.K <= len(ref.Seq); pos += cfg.Stride {
		hash := KmerHash(ref.Seq[pos:], cfg.K)
		b := ix.BucketOf(hash)
		if cfg.MaxPositionsPerBucket > 0 && len(ix.buckets[b]) >= cfg.MaxPositionsPerBucket {
			continue
		}
		ix.buckets[b] = append(ix.buckets[b], entry{fp: fingerprint(hash), pos: int32(pos)})
	}
	return ix, nil
}

// Config returns the index configuration.
func (ix *Index) Config() IndexConfig { return ix.cfg }

// BucketOf maps a k-mer hash to its bucket.
func (ix *Index) BucketOf(hash uint64) int {
	return int(hash % uint64(ix.cfg.Buckets))
}

// Lookup returns the candidate positions recorded for this exact k-mer hash
// (bucket entries with a different fingerprint are collisions of other
// k-mers and are filtered out).
func (ix *Index) Lookup(hash uint64) []int32 {
	fp := fingerprint(hash)
	var out []int32
	for _, e := range ix.buckets[ix.BucketOf(hash)] {
		if e.fp == fp {
			out = append(out, e.pos)
		}
	}
	return out
}

// NumBuckets returns the table size.
func (ix *Index) NumBuckets() int { return ix.cfg.Buckets }

// BucketLen returns the occupancy of bucket b.
func (ix *Index) BucketLen(b int) int {
	if b < 0 || b >= len(ix.buckets) {
		return 0
	}
	return len(ix.buckets[b])
}

// BankLayout places hash table buckets into DRAM banks and rows, matching
// the paper's assumption that the table interleaves across banks (Section
// 4.3: "the hash table is distributed across multiple DRAM banks").
type BankLayout struct {
	// Banks is the number of DRAM banks the table spans.
	Banks int
	// EntriesPerRow is how many buckets share one DRAM row (16 in the
	// paper's 1024-bank example).
	EntriesPerRow int
	// BaseRow is the first row of the table region in each bank.
	BaseRow int64
	// EntryBytes is the storage footprint of one bucket header.
	EntryBytes int
}

// DefaultBankLayout spreads the table over the given bank count with the
// paper's 8 KiB rows holding 16 bucket headers of 512 bytes each.
func DefaultBankLayout(banks int) BankLayout {
	return BankLayout{Banks: banks, EntriesPerRow: 16, BaseRow: 100, EntryBytes: 512}
}

// Place returns the bank, row and byte column of bucket b: buckets
// interleave bank-first (consecutive buckets land in consecutive banks,
// exploiting bank-level parallelism as modern address mappings do).
func (l BankLayout) Place(bucket int) (bank int, row int64, col int) {
	bank = bucket % l.Banks
	slot := bucket / l.Banks
	row = l.BaseRow + int64(slot/l.EntriesPerRow)
	col = (slot % l.EntriesPerRow) * l.EntryBytes
	return bank, row, col
}

// RowsUsed returns how many table rows each bank holds for the given bucket
// count: the quantity that shrinks as banks grow, making each leaked row
// more informative (Section 6.3).
func (l BankLayout) RowsUsed(buckets int) int {
	perBank := (buckets + l.Banks - 1) / l.Banks
	return (perBank + l.EntriesPerRow - 1) / l.EntriesPerRow
}

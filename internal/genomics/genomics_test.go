package genomics

import (
	"testing"
	"testing/quick"
)

func TestReferenceDeterministic(t *testing.T) {
	a := NewReference(10_000, 7)
	b := NewReference(10_000, 7)
	if string(a.Seq) != string(b.Seq) {
		t.Fatal("same seed produced different references")
	}
	c := NewReference(10_000, 8)
	if string(a.Seq) == string(c.Seq) {
		t.Fatal("different seeds produced identical references")
	}
}

func TestReferenceAlphabet(t *testing.T) {
	ref := NewReference(50_000, 3)
	if len(ref.Seq) != 50_000 {
		t.Fatalf("length = %d", len(ref.Seq))
	}
	counts := map[byte]int{}
	for _, b := range ref.Seq {
		counts[b]++
	}
	for _, base := range Bases {
		if counts[base] < 5000 {
			t.Fatalf("base %c underrepresented: %d", base, counts[base])
		}
	}
	if len(counts) != 4 {
		t.Fatalf("alphabet = %v", counts)
	}
}

func TestSampleReadsGroundTruth(t *testing.T) {
	ref := NewReference(100_000, 5)
	reads, err := SampleReads(ref, 50, 150, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, rd := range reads {
		if string(rd.Seq) != string(ref.Seq[rd.TruePos:rd.TruePos+150]) {
			t.Fatalf("mutation-free read differs from reference at %d", rd.TruePos)
		}
	}
}

func TestSampleReadsRejectsLongReads(t *testing.T) {
	ref := NewReference(100, 5)
	if _, err := SampleReads(ref, 1, 150, 0, 6); err == nil {
		t.Fatal("oversized read length accepted")
	}
}

func TestKmerHashDeterministicAndCaseInsensitive(t *testing.T) {
	a := KmerHash([]byte("ACGTACGTACGTACG"), 15)
	b := KmerHash([]byte("acgtacgtacgtacg"), 15)
	if a != b {
		t.Fatal("case changed the hash")
	}
	c := KmerHash([]byte("TCGTACGTACGTACG"), 15)
	if a == c {
		t.Fatal("different k-mers collided trivially")
	}
}

func TestIndexLookupFindsIndexedKmers(t *testing.T) {
	ref := NewReference(50_000, 11)
	cfg := DefaultIndexConfig()
	idx, err := BuildIndex(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	check := func(posRaw uint16) bool {
		pos := int(posRaw) % (len(ref.Seq) - cfg.K)
		hash := KmerHash(ref.Seq[pos:], cfg.K)
		for _, p := range idx.Lookup(hash) {
			if string(ref.Seq[p:int(p)+cfg.K]) == string(ref.Seq[pos:pos+cfg.K]) {
				return true
			}
		}
		// Position may have been dropped by the bucket occupancy cap;
		// accept only if the bucket is full.
		return idx.BucketLen(idx.BucketOf(hash)) >= cfg.MaxPositionsPerBucket
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestIndexRejectsBadConfig(t *testing.T) {
	ref := NewReference(1000, 1)
	for _, cfg := range []IndexConfig{
		{K: 0, Stride: 1, Buckets: 16},
		{K: 15, Stride: 0, Buckets: 16},
		{K: 15, Stride: 1, Buckets: 0},
	} {
		if _, err := BuildIndex(ref, cfg); err == nil {
			t.Errorf("config %+v accepted", cfg)
		}
	}
}

func TestBankLayoutPlacement(t *testing.T) {
	l := DefaultBankLayout(1024)
	seen := map[[2]int64]int{}
	for b := 0; b < 4096; b++ {
		bank, row, col := l.Place(b)
		if bank < 0 || bank >= 1024 {
			t.Fatalf("bucket %d -> bank %d", b, bank)
		}
		if col < 0 || col+l.EntryBytes > 8192 {
			t.Fatalf("bucket %d -> col %d outside the row", b, col)
		}
		seen[[2]int64{int64(bank), row}]++
	}
	// 4096 buckets over 1024 banks at 16 entries/row: all in the first row.
	for key, n := range seen {
		if key[1] != l.BaseRow {
			t.Fatalf("bucket spilled to row %d with only 4 buckets per bank", key[1])
		}
		if n != 4 {
			t.Fatalf("bank/row %v holds %d buckets, want 4", key, n)
		}
	}
}

func TestBankLayoutRowsShrinkWithBanks(t *testing.T) {
	buckets := 1 << 16
	rows1k := DefaultBankLayout(1024).RowsUsed(buckets)
	rows8k := DefaultBankLayout(8192).RowsUsed(buckets)
	if rows8k >= rows1k {
		t.Fatalf("rows per bank did not shrink: %d -> %d", rows1k, rows8k)
	}
}

func TestChainAnchorsColinear(t *testing.T) {
	// A clean co-linear chain at diagonal 1000 plus junk anchors.
	var anchors []Anchor
	for i := 0; i < 10; i++ {
		anchors = append(anchors, Anchor{ReadPos: i * 10, RefPos: 1000 + i*10})
	}
	anchors = append(anchors,
		Anchor{ReadPos: 5, RefPos: 50_000},
		Anchor{ReadPos: 50, RefPos: 20},
	)
	chain := ChainAnchors(anchors)
	if chain.Score < 10 {
		t.Fatalf("chain score = %d, want >= 10", chain.Score)
	}
	if chain.RefStart != 1000 {
		t.Fatalf("chain RefStart = %d, want 1000", chain.RefStart)
	}
}

func TestChainAnchorsEmpty(t *testing.T) {
	chain := ChainAnchors(nil)
	if chain.Score != 0 || len(chain.Anchors) != 0 {
		t.Fatalf("empty chain = %+v", chain)
	}
}

func TestChainAnchorsRespectsGapLimit(t *testing.T) {
	anchors := []Anchor{
		{ReadPos: 0, RefPos: 0},
		{ReadPos: 10, RefPos: 10_000}, // beyond the gap limit
	}
	chain := ChainAnchors(anchors)
	if chain.Score != 1 {
		t.Fatalf("gap-violating anchors chained: score %d", chain.Score)
	}
}

func TestBandedAlignPerfectMatch(t *testing.T) {
	ref := []byte("ACGTACGTACGTACGTACGT")
	res := BandedAlign(ref, ref[4:12], 4, 3)
	if want := 8 * scoreMatch; res.Score != want {
		t.Fatalf("perfect-match score = %d, want %d", res.Score, want)
	}
	if res.Cells <= 0 {
		t.Fatal("no DP cells evaluated")
	}
}

func TestBandedAlignPenalizesErrors(t *testing.T) {
	ref := []byte("AAAAAAAAAACCCCCCCCCC")
	read := []byte("AAAAATAAAA")
	res := BandedAlign(ref, read, 0, 3)
	// The aligner is semi-global (end gaps free): the best alignment
	// treats the T as an insertion, scoring 9 matches and one gap —
	// better than the mismatch alternative (9*2-4=14), and strictly
	// below a perfect 10-match score.
	want := 9*scoreMatch + scoreGap
	if res.Score != want {
		t.Fatalf("score = %d, want %d", res.Score, want)
	}
	if perfect := BandedAlign(ref, ref[:10], 0, 3); perfect.Score <= res.Score {
		t.Fatalf("error-free score %d not above erroneous %d", perfect.Score, res.Score)
	}
}

func TestBandedAlignBoundary(t *testing.T) {
	ref := []byte("ACGT")
	if res := BandedAlign(ref, nil, 0, 4); res.Score != 0 {
		t.Fatalf("empty read score = %d", res.Score)
	}
	if res := BandedAlign(ref, []byte("ACGT"), 100, 4); res.Score != 0 {
		t.Fatalf("out-of-window alignment score = %d", res.Score)
	}
	// Negative refStart clamps to 0.
	res := BandedAlign(ref, []byte("ACGT"), -5, 4)
	if res.RefStart != 0 {
		t.Fatalf("RefStart = %d, want clamped 0", res.RefStart)
	}
}

package lint_test

import (
	"strings"
	"testing"

	"repro/internal/lint"
	"repro/internal/lint/linttest"
)

// Each analyzer runs against its fixture package, which seeds every
// violation class the analyzer knows plus the idioms it must leave alone.

func TestNoDeterminism(t *testing.T) {
	linttest.Run(t, lint.NoDeterminism, "nodeterminism", lint.ModulePath+"/internal/sim")
}

func TestAtomicWrite(t *testing.T) {
	linttest.Run(t, lint.AtomicWrite, "atomicwrite", lint.ModulePath+"/internal/exp")
}

func TestHotPathAlloc(t *testing.T) {
	linttest.Run(t, lint.HotPathAlloc, "hotpathalloc", lint.ModulePath+"/internal/sim")
}

func TestCtxPlumb(t *testing.T) {
	linttest.Run(t, lint.CtxPlumb, "ctxplumb", lint.ModulePath+"/internal/exp")
}

func TestAPIEnvelope(t *testing.T) {
	linttest.Run(t, lint.APIEnvelope, "apienvelope", lint.ModulePath+"/internal/exp")
}

// TestMatchScoping loads a violation-riddled fixture under an import path
// the analyzer does not cover: Match must keep it silent.
func TestMatchScoping(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/nodeterminism", lint.ModulePath+"/internal/figures/render")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{lint.NoDeterminism})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("out-of-scope package produced %d diagnostics, first: %s", len(diags), diags[0])
	}
}

// TestIgnoreDirectives checks well-formed suppression end to end: on-line
// and next-line directives silence the named analyzer, while directives
// for other analyzers or out of range do not.
func TestIgnoreDirectives(t *testing.T) {
	linttest.Run(t, lint.NoDeterminism, "ignore", lint.ModulePath+"/internal/sim")
}

// TestMalformedDirectives checks that a directive missing its reason or
// naming an unknown check suppresses nothing and is itself a finding.
func TestMalformedDirectives(t *testing.T) {
	pkg, err := lint.LoadDir("testdata/src/lintdirective", lint.ModulePath+"/internal/sim")
	if err != nil {
		t.Fatalf("loading fixture: %v", err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{lint.NoDeterminism})
	if err != nil {
		t.Fatalf("running: %v", err)
	}
	counts := map[string]int{}
	for _, d := range diags {
		counts[d.Analyzer]++
	}
	if counts["nodeterminism"] != 2 {
		t.Errorf("want both time.Now sites flagged despite the broken directives, got %d", counts["nodeterminism"])
	}
	if counts["lintdirective"] != 2 {
		t.Errorf("want 2 lintdirective findings, got %d", counts["lintdirective"])
	}
	var sawMalformed, sawUnknown bool
	for _, d := range diags {
		if d.Analyzer != "lintdirective" {
			continue
		}
		if strings.Contains(d.Message, "malformed") {
			sawMalformed = true
		}
		if strings.Contains(d.Message, `unknown check "nosuchcheck"`) {
			sawUnknown = true
		}
	}
	if !sawMalformed || !sawUnknown {
		t.Errorf("missing lintdirective detail (malformed=%v unknown=%v): %v", sawMalformed, sawUnknown, diags)
	}
}

// TestLookup pins the suite roster: docs, -only flags, and ignore
// directives all resolve analyzers by these names.
func TestLookup(t *testing.T) {
	for _, name := range []string{"nodeterminism", "atomicwrite", "hotpathalloc", "ctxplumb", "apienvelope"} {
		if lint.Lookup(name) == nil {
			t.Errorf("Lookup(%q) = nil; the suite lost an analyzer", name)
		}
	}
	if lint.Lookup("nosuchcheck") != nil {
		t.Error(`Lookup("nosuchcheck") should be nil`)
	}
	if got := len(lint.Analyzers()); got < 5 {
		t.Errorf("suite has %d analyzers, want at least 5", got)
	}
}

// Package fixture exercises the nodeterminism analyzer: it masquerades
// as repro/internal/sim, one of the packages whose output feeds the
// content-addressed result store.
package fixture

import (
	"math/rand" // want `import of math/rand: simulated components must draw randomness from the seeded stats\.Rng`
	"sort"
	"sync"
	"time"
)

func wallClock() int64 {
	start := time.Now()          // want `wall-clock read time\.Now`
	elapsed := time.Since(start) // want `wall-clock read time\.Since`
	return elapsed.Nanoseconds() + rand.Int63()
}

func orderLeaks(m map[string]int) []int {
	var out []int
	for _, v := range m { // want `map iteration with order-dependent effects`
		out = append(out, v)
	}
	return out
}

func orderSafe(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

func accumulate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

func racyAppend(n int) []int {
	var out []int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out = append(out, 1) // want `goroutine appends to captured "out"`
		}()
	}
	wg.Wait()
	return out
}

func racyAccumulate(n int) int {
	total := 0
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			total += 1 // want `goroutine accumulates into captured "total"`
		}()
	}
	wg.Wait()
	return total
}

func disjointIndices(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i
		}(i)
	}
	wg.Wait()
	return out
}

// Package fixture exercises the ctxplumb analyzer: it masquerades as a
// package below cmd/, where contexts are threaded, never manufactured.
package fixture

import "context"

func lookup(ctx context.Context, key string) string {
	select {
	case <-ctx.Done():
		return ""
	default:
		return key
	}
}

func manufactured() context.Context {
	return context.Background() // want `context\.Background below cmd/`
}

func stubbed() context.Context {
	return context.TODO() // want `context\.TODO below cmd/`
}

func passesNil() string {
	return lookup(nil, "k") // want `nil context: pass the caller's context`
}

func dropsCtx(ctx context.Context, key string) string { // want `dropsCtx accepts ctx but never uses it`
	return key
}

func misplaced(key string, ctx context.Context) string { // want `context\.Context must be the first parameter`
	return lookup(ctx, key)
}

func forced(_ context.Context, key string) string {
	return key
}

func threaded(ctx context.Context, key string) string {
	return lookup(ctx, key)
}

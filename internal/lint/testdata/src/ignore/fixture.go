// Package fixture exercises well-formed //lint:ignore suppression: each
// directive names the analyzer and carries a reason, and covers its own
// line plus the line directly below.
package fixture

import "time"

func suppressedSameLine() int64 {
	return time.Now().UnixNano() //lint:ignore nodeterminism fixture exercises same-line suppression
}

func suppressedLineAbove() int64 {
	//lint:ignore nodeterminism fixture exercises next-line suppression
	return time.Now().UnixNano()
}

func suppressedWrongCheck() int64 {
	//lint:ignore atomicwrite a directive for another analyzer does not suppress this one
	return time.Now().UnixNano() // want `wall-clock read time\.Now`
}

func outOfRange() int64 {
	//lint:ignore nodeterminism two lines above the call is out of the directive's reach

	return time.Now().UnixNano() // want `wall-clock read time\.Now`
}

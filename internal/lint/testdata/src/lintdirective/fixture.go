// Package fixture holds malformed //lint:ignore directives: one with no
// reason, one naming an unknown check. Neither suppresses anything, and
// both must surface as lintdirective findings (asserted in ignore_test.go
// rather than with want comments, because the finding lands on the
// directive's own line).
package fixture

import "time"

func missingReason() int64 {
	//lint:ignore nodeterminism
	return time.Now().UnixNano()
}

func unknownCheck() int64 {
	//lint:ignore nosuchcheck the check name is not in the suite
	return time.Now().UnixNano()
}

// Package fixture exercises the hotpathalloc analyzer: only functions
// carrying the //impact:hotpath doc directive are checked, and within
// them every allocation, hash, and box is a finding.
package fixture

import "fmt"

type point struct{ x, y int64 }

type sink interface{ accept() }

type impl struct{ n int64 }

func (impl) accept() {}

func consume(s sink) { s.accept() }

func release() {}

var global int64

//impact:hotpath
func hotViolations(vals []int64, m map[string]int64, key, s string, v int64) {
	buf := make([]byte, 8) // want `make in hot path allocates`
	_ = buf
	p := new(point) // want `new in hot path allocates`
	_ = p
	vals = append(vals, v) // want `append in hot path allocates`
	f := func() {}         // want `closure in hot path`
	f()
	defer release()     // want `defer in hot path`
	go release()        // want `goroutine launch in hot path allocates a stack`
	sl := []int64{1, 2} // want `slice literal in hot path allocates`
	_ = sl
	mm := map[string]int64{} // want `map literal in hot path allocates`
	_ = mm
	pp := &point{} // want `&composite literal in hot path escapes to the heap`
	_ = pp
	joined := s + key // want `string concatenation in hot path allocates`
	_ = joined
	global = m[key] // want `map access in hot path hashes the key`
	b := []byte(s)  // want `conversion to \[\]byte in hot path copies and allocates`
	_ = b
	consume(impl{n: v}) // want `boxing impl into sink at argument`
	fmt.Println(v)      // want `boxing int64 into any at argument`
}

//impact:hotpath
func hotReturnBoxes(v int64) sink {
	return impl{n: v} // want `boxing impl into sink at return value`
}

// Value struct literals, fixed-index loads, pointer receivers, and
// constant arguments all stay allowed: they compile to stores, not heap
// allocations.
//
//impact:hotpath
func hotClean(c *point, vals []int64, i int) int64 {
	v := point{x: 1}
	vals[i] = v.x
	c.y = vals[i]
	return c.x + c.y
}

// Unannotated functions allocate freely.
func coldPath() []byte {
	return make([]byte, 64)
}

// Package fixture exercises the atomicwrite analyzer: it masquerades as
// repro/internal/exp, where every durable write must go through the fsio
// helpers.
package fixture

import "os"

func rawWrites(path string, data []byte) error {
	if err := os.MkdirAll(path, 0o755); err != nil { // want `raw os\.MkdirAll on a durable path: use fsio\.EnsureDir`
		return err
	}
	if err := os.Mkdir(path, 0o755); err != nil { // want `raw os\.Mkdir on a durable path: use fsio\.EnsureDir`
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil { // want `raw os\.WriteFile on a durable path: use fsio\.AtomicWrite`
		return err
	}
	f, err := os.Create(path) // want `raw os\.Create on a durable path: use fsio\.AtomicWrite`
	if err != nil {
		return err
	}
	f.Close()
	return os.Rename(path, path+".bak") // want `raw os\.Rename on a durable path: use fsio\.AtomicWrite`
}

// os.OpenFile stays legal: the pack engine's append path owns a reviewed
// open-append-fsync discipline that AtomicWrite cannot express.
func appendDiscipline(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Reads were never the problem.
func read(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// Package fixture exercises the apienvelope analyzer: it masquerades as
// repro/internal/exp, where every HTTP response body flows through the
// blessed emitters.
package fixture

import (
	"encoding/json"
	"fmt"
	"net/http"
)

func handleBad(w http.ResponseWriter, r *http.Request) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error emits unstructured text/plain`
	fmt.Fprintf(w, "count=%d\n", 1)                       // want `fmt\.Fprintf to a ResponseWriter bypasses the envelope contract`
	fmt.Fprintln(w, "done")                               // want `fmt\.Fprintln to a ResponseWriter bypasses the envelope contract`
	json.NewEncoder(w).Encode(map[string]int{"a": 1})     // want `json\.NewEncoder\(w\)\.Encode streams unframed JSON`
	w.WriteHeader(http.StatusOK)                          // want `direct w\.WriteHeader outside writeRawJSON/writeError`
	w.Write([]byte("{}\n"))                               // want `direct w\.Write outside writeRawJSON/writeError`
}

// The blessed emitters may touch the writer directly.
func writeRawJSON(w http.ResponseWriter, status int, body []byte) {
	w.WriteHeader(status)
	w.Write(body)
}

func writeError(w http.ResponseWriter, status int, body []byte) {
	w.WriteHeader(status)
	w.Write(body)
}

// So may the instrumentation middleware's recorder shim.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Printing to anything that is not a ResponseWriter is out of scope.
func handleGood(w http.ResponseWriter, r *http.Request) {
	fmt.Printf("request: %s\n", r.URL.Path)
	writeRawJSON(w, http.StatusOK, []byte("{}\n"))
}

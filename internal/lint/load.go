package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one fully type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the slice of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Standard   bool
	DepOnly    bool
	GoFiles    []string
}

// Load type-checks the module packages matched by patterns (run from dir)
// and returns them ready for RunPackage, in deterministic import-path
// order. Only non-test Go files are analyzed: the invariants guard
// production code, and tests legitimately use wall clocks, raw temp
// files, and ad-hoc contexts.
//
// The loader shells out to `go list -deps -json`, which emits packages in
// dependency-first order, then type-checks each module package from
// source. Imports resolve through the packages already checked; standard
// library imports fall back to the stdlib source importer. CGO is
// disabled so the file sets `go list` reports match what a pure-Go type
// check can digest.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	listed, err := goList(dir, patterns)
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	loaded := make(map[string]*types.Package)
	imp := &chainImporter{
		loaded: loaded,
		std:    newStdImporter(fset),
	}

	var pkgs []*Package
	for _, lp := range listed {
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		loaded[lp.ImportPath] = pkg.Types
		if !lp.DepOnly {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

// goList runs `go list -deps -json` and decodes the package stream.
func goList(dir string, patterns []string) ([]listedPackage, error) {
	args := append([]string{
		"list", "-e", "-deps",
		"-json=ImportPath,Dir,Standard,DepOnly,GoFiles",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %v: %s", err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		listed = append(listed, lp)
	}
	return listed, nil
}

// checkPackage parses and type-checks one module package.
func checkPackage(fset *token.FileSet, imp types.Importer, lp listedPackage) (*Package, error) {
	files := make([]*ast.File, 0, len(lp.GoFiles))
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{
		ImportPath: lp.ImportPath,
		Dir:        lp.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// LoadDir parses and type-checks the single directory dir as the package
// importPath, resolving imports from the standard library alone. It backs
// the linttest harness: fixture packages masquerade as the module package
// an analyzer's Match scopes to, while deliberately importing nothing
// from the module itself.
func LoadDir(dir, importPath string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %v", err)
	}
	var names []string
	for _, e := range entries {
		if name := e.Name(); strings.HasSuffix(name, ".go") && !e.IsDir() {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	lp := listedPackage{ImportPath: importPath, Dir: dir, GoFiles: names}
	return checkPackage(fset, newStdImporter(fset), lp)
}

// NewTypesInfo returns a types.Info with every map the analyzers read
// allocated. Shared with linttest so testdata packages are checked with
// identical fidelity.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// chainImporter resolves module packages from the loader's own checked
// set and everything else (the standard library) from source.
type chainImporter struct {
	loaded map[string]*types.Package
	std    types.ImporterFrom
}

func (c *chainImporter) Import(path string) (*types.Package, error) {
	return c.ImportFrom(path, "", 0)
}

func (c *chainImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if p, ok := c.loaded[path]; ok {
		return p, nil
	}
	return c.std.ImportFrom(path, srcDir, mode)
}

var stdImporterOnce sync.Once

// newStdImporter returns the stdlib source importer. CGO is switched off
// in the global build context first (once, process-wide) so packages like
// net type-check through their pure-Go fallbacks.
func newStdImporter(fset *token.FileSet) types.ImporterFrom {
	stdImporterOnce.Do(func() { build.Default.CgoEnabled = false })
	return importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
}

// ModulePath reports the import path prefix of this module ("repro").
// Analyzer Match functions are written against it so the suite keeps
// working if the module is ever renamed.
const ModulePath = "repro"

// inPackages reports whether importPath is one of the given package
// paths (exact match, not prefix).
func inPackages(importPath string, paths ...string) bool {
	for _, p := range paths {
		if importPath == p {
			return true
		}
	}
	return false
}

// underPath reports whether importPath equals prefix or is nested
// beneath it.
func underPath(importPath, prefix string) bool {
	return importPath == prefix || strings.HasPrefix(importPath, prefix+"/")
}

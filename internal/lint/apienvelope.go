package lint

import (
	"go/ast"
)

// APIEnvelope enforces the PR 5 wire contract: every HTTP response body
// the experiment server emits is either pre-marshaled JSON written by
// writeRawJSON (newline-terminated, shared content type, X-Request-ID) or
// a structured api.Envelope error written by writeError. A naked
// http.Error ships text/plain that no SDK error path can decode, and an
// ad-hoc fmt.Fprintf to a ResponseWriter is how the pre-PR 4 figure
// handler produced bodies that weren't byte-identical to the cached
// sweep documents. Inside repro/internal/exp the analyzer forbids:
//
//   - http.Error;
//   - the fmt.Fprint family writing to an http.ResponseWriter;
//   - json.NewEncoder(w).Encode on a ResponseWriter (marshal first, then
//     writeRawJSON, so hashes and cache comparisons see the same bytes);
//   - direct w.Write / w.WriteHeader on a ResponseWriter outside the two
//     blessed emitters (writeRawJSON, writeError) and the
//     instrumentation middleware's statusRecorder.
var APIEnvelope = &Analyzer{
	Name: "apienvelope",
	Doc:  "HTTP responses go through writeRawJSON / the structured api.Envelope error path",
	Match: func(importPath string) bool {
		return inPackages(importPath, ModulePath+"/internal/exp")
	},
	Run: runAPIEnvelope,
}

// envelopeEmitters are the functions allowed to touch a ResponseWriter
// directly: the blessed document and stream emitters (the middleware's
// statusRecorder shim is exempted by receiver type instead).
var envelopeEmitters = map[string]bool{
	"writeRawJSON":      true,
	"writeError":        true,
	"beginNDJSONStream": true,
	"writeStreamLine":   true,
}

var fprintFamily = map[string]bool{"Fprintf": true, "Fprint": true, "Fprintln": true}

func runAPIEnvelope(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			exempt := envelopeEmitters[fd.Name.Name] || receiverTypeName(fd) == "statusRecorder"
			checkEnvelopeFunc(pass, fd, exempt)
		}
	}
	return nil
}

func checkEnvelopeFunc(pass *Pass, fd *ast.FuncDecl, exempt bool) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if pkg, name, ok := pkgFuncCall(info, call); ok {
			switch {
			case pkg == "net/http" && name == "Error":
				pass.Reportf(call.Pos(), "http.Error emits unstructured text/plain: use writeError with an api.ErrorCode")
			case pkg == "fmt" && fprintFamily[name] && len(call.Args) > 0 &&
				implementsResponseWriter(pass.Pkg, info.TypeOf(call.Args[0])):
				pass.Reportf(call.Pos(), "fmt.%s to a ResponseWriter bypasses the envelope contract: marshal and use writeRawJSON", name)
			}
			return true
		}
		// Method calls on a ResponseWriter: Encode-on-writer and, outside
		// the blessed emitters, Write/WriteHeader.
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch sel.Sel.Name {
		case "Encode":
			if inner, ok := ast.Unparen(sel.X).(*ast.CallExpr); ok {
				if pkg, name, ok := pkgFuncCall(info, inner); ok && pkg == "encoding/json" && name == "NewEncoder" &&
					len(inner.Args) == 1 && implementsResponseWriter(pass.Pkg, info.TypeOf(inner.Args[0])) {
					pass.Reportf(call.Pos(), "json.NewEncoder(w).Encode streams unframed JSON: marshal first and use writeRawJSON so cached bytes stay identical")
				}
			}
		case "Write", "WriteHeader":
			if !exempt && implementsResponseWriter(pass.Pkg, info.TypeOf(sel.X)) {
				pass.Reportf(call.Pos(), "direct w.%s outside writeRawJSON/writeError: responses must go through the shared emitters", sel.Sel.Name)
			}
		}
		return true
	})
}

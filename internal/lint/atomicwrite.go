package lint

import (
	"go/ast"
)

// AtomicWrite enforces the crash-safety invariant: every durable artifact
// under a -data-dir — result store entries, journal records, pack bundles
// and index — must be published through internal/exp/fsio's fsynced
// atomic-write discipline, never by raw os file mutation. A raw
// os.WriteFile survives process death but not power loss (no fsync), a
// raw os.Rename without a directory sync can vanish after a crash, and a
// raw os.MkdirAll leaves the new directory entry un-synced; each of those
// was a real torn-write window before PR 6/7 closed them with
// fsio.AtomicWrite/SyncDir (and now fsio.EnsureDir).
//
// The analyzer forbids os.WriteFile, os.Create, os.CreateTemp, os.Rename,
// and os.MkdirAll inside repro/internal/exp and repro/internal/exp/pack.
// os.OpenFile stays legal: the pack engine's append-only bundles are an
// explicitly reviewed fsync discipline of their own, pinned by the
// crash-at-every-write-boundary tests. The fsio package itself is exempt
// — it is the one place the raw primitives are allowed to live.
var AtomicWrite = &Analyzer{
	Name: "atomicwrite",
	Doc:  "route every durable write through fsio's fsynced atomic-write helpers",
	Match: func(importPath string) bool {
		return inPackages(importPath,
			ModulePath+"/internal/exp",
			ModulePath+"/internal/exp/pack",
		)
	},
	Run: runAtomicWrite,
}

// forbiddenOSFuncs maps each banned os function to the blessed
// replacement named in the diagnostic.
var forbiddenOSFuncs = map[string]string{
	"WriteFile":  "fsio.AtomicWrite",
	"Create":     "fsio.AtomicWrite",
	"CreateTemp": "fsio.AtomicWrite",
	"Rename":     "fsio.AtomicWrite (tmp+rename+dir-sync in one step)",
	"MkdirAll":   "fsio.EnsureDir",
	"Mkdir":      "fsio.EnsureDir",
}

func runAtomicWrite(pass *Pass) error {
	pass.Preorder(func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		pkg, name, ok := pkgFuncCall(pass.TypesInfo, call)
		if !ok || pkg != "os" {
			return
		}
		if repl, bad := forbiddenOSFuncs[name]; bad {
			pass.Reportf(call.Pos(), "raw os.%s on a durable path: use %s so the write survives power loss, not just process death", name, repl)
		}
	})
	return nil
}

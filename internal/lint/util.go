package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// pkgFuncCall resolves call's callee as a package-level function selector
// ("os.WriteFile") and returns the import path and function name. ok is
// false for method calls, local calls, builtins, and conversions.
func pkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	ident, isIdent := sel.X.(*ast.Ident)
	if !isIdent {
		return "", "", false
	}
	pn, isPkg := info.Uses[ident].(*types.PkgName)
	if !isPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// builtinName returns the name of the builtin call (e.g. "make",
// "append"), or "" when call is not a builtin.
func builtinName(info *types.Info, call *ast.CallExpr) string {
	ident, isIdent := ast.Unparen(call.Fun).(*ast.Ident)
	if !isIdent {
		return ""
	}
	if b, isBuiltin := info.Uses[ident].(*types.Builtin); isBuiltin {
		return b.Name()
	}
	return ""
}

// isConversion reports whether call is a type conversion, returning the
// destination type.
func isConversion(info *types.Info, call *ast.CallExpr) (types.Type, bool) {
	tv, ok := info.Types[ast.Unparen(call.Fun)]
	if !ok || !tv.IsType() {
		return nil, false
	}
	return tv.Type, true
}

// isMap reports whether t's core type is a map.
func isMap(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// isInterface reports whether t's underlying type is an interface.
func isInterface(t types.Type) bool {
	if t == nil {
		return false
	}
	return types.IsInterface(t)
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// funcHasDirective reports whether a function declaration carries the
// given //-style magic comment (e.g. "//impact:hotpath") in its doc.
func funcHasDirective(decl *ast.FuncDecl, directive string) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		if strings.TrimSpace(c.Text) == directive {
			return true
		}
	}
	return false
}

// receiverTypeName returns the bare type name of a method receiver
// ("Engine" for func (e *Engine) ...), or "" for plain functions.
func receiverTypeName(decl *ast.FuncDecl) string {
	if decl.Recv == nil || len(decl.Recv.List) == 0 {
		return ""
	}
	t := decl.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if idx, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = idx.X
	}
	if ident, ok := t.(*ast.Ident); ok {
		return ident.Name
	}
	return ""
}

// freeObject reports whether ident (resolved through info) refers to a
// variable declared outside the [lo, hi) position range — i.e. a free
// variable of the function literal spanning that range.
func freeObject(info *types.Info, ident *ast.Ident, lo, hi int) *types.Var {
	obj, ok := info.Uses[ident].(*types.Var)
	if !ok || obj.Pos() == 0 {
		return nil
	}
	if int(obj.Pos()) >= lo && int(obj.Pos()) < hi {
		return nil
	}
	return obj
}

// implementsResponseWriter reports whether t is, or trivially implements,
// net/http.ResponseWriter (resolved from the analyzed package's imports;
// false when the package does not import net/http).
func implementsResponseWriter(pkg *types.Package, t types.Type) bool {
	if t == nil {
		return false
	}
	for _, imp := range pkg.Imports() {
		if imp.Path() != "net/http" {
			continue
		}
		obj := imp.Scope().Lookup("ResponseWriter")
		if obj == nil {
			return false
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			return false
		}
		return types.Implements(t, iface) || types.Identical(t, obj.Type())
	}
	return false
}

package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc guards PR 1's hot-path win (cache hit 18.8 → 4.4 ns/op,
// zero allocations): any function annotated with a //impact:hotpath doc
// comment — the cache/DRAM/memctrl/TLB/PIM access paths, the stats
// counter slots, metrics.Add/Observe — must stay free of allocation and
// hashing. Within an annotated function body the analyzer forbids:
//
//   - the allocating builtins make, new, and append;
//   - function literals (closure capture), defer, and go;
//   - composite literals of slice or map type, and &T{...} — plain
//     by-value struct literals (line{...}, AccessResult{...}) compile to
//     stores and stay allowed;
//   - string concatenation that survives to run time, and the allocating
//     conversions string <-> []byte/[]rune;
//   - map index expressions — the exact regression that string-keyed
//     stats.Counters access was (a hash per counter bump) before the
//     fixed-slot redesign;
//   - boxing a concrete non-pointer value into an interface, whether at a
//     call (including variadic ...any, so every fmt helper is caught), a
//     return, or an assignment.
//
// The check is lexical: it covers the annotated body, not its callees.
// Annotate the full chain you need cold-free, and the suite's
// bench-smoke allocation pins catch what annotation discipline misses.
var HotPathAlloc = &Analyzer{
	Name: "hotpathalloc",
	Doc:  "functions marked //impact:hotpath must not allocate, hash, or box",
	Run:  runHotPathAlloc,
}

// HotPathDirective is the doc-comment marker hotpathalloc keys on.
const HotPathDirective = "//impact:hotpath"

func runHotPathAlloc(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !funcHasDirective(fd, HotPathDirective) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	var sig *types.Signature
	if obj := info.Defs[fd.Name]; obj != nil {
		sig, _ = obj.Type().(*types.Signature)
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			checkHotCall(pass, n)
		case *ast.FuncLit:
			pass.Reportf(n.Pos(), "closure in hot path: func literals capture and may allocate")
			return false // its body is the closure's problem, reported once
		case *ast.DeferStmt:
			pass.Reportf(n.Pos(), "defer in hot path")
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "goroutine launch in hot path allocates a stack")
		case *ast.CompositeLit:
			t := info.TypeOf(n)
			if t != nil {
				switch t.Underlying().(type) {
				case *types.Slice, *types.Map:
					pass.Reportf(n.Pos(), "%s literal in hot path allocates", kindWord(t))
				}
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, lit := ast.Unparen(n.X).(*ast.CompositeLit); lit {
					pass.Reportf(n.Pos(), "&composite literal in hot path escapes to the heap")
				}
			}
		case *ast.BinaryExpr:
			if n.Op == token.ADD && isStringType(info.TypeOf(n)) && info.Types[n].Value == nil {
				pass.Reportf(n.Pos(), "string concatenation in hot path allocates")
			}
		case *ast.IndexExpr:
			if isMap(info.TypeOf(n.X)) {
				pass.Reportf(n.Pos(), "map access in hot path hashes the key; use a fixed integer-indexed slot (see stats.Counters)")
			}
		case *ast.ReturnStmt:
			checkHotReturn(pass, sig, n)
		case *ast.AssignStmt:
			checkHotAssign(pass, n)
		}
		return true
	})
}

// checkHotCall flags allocating builtins, allocating conversions, and
// boxing of concrete values into interface parameters.
func checkHotCall(pass *Pass, call *ast.CallExpr) {
	info := pass.TypesInfo
	switch builtinName(info, call) {
	case "make", "new", "append":
		pass.Reportf(call.Pos(), "%s in hot path allocates", builtinName(info, call))
		return
	case "":
	default:
		return // len, cap, copy, delete, min, max: fine
	}
	if dst, ok := isConversion(info, call); ok {
		if allocConversion(dst, info.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion to %s in hot path copies and allocates", types.TypeString(dst, types.RelativeTo(pass.Pkg)))
		}
		return
	}
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		var param types.Type
		switch {
		case sig.Variadic() && i >= sig.Params().Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing an existing slice through, no boxing here
			}
			param = sig.Params().At(sig.Params().Len() - 1).Type().(*types.Slice).Elem()
		case i < sig.Params().Len():
			param = sig.Params().At(i).Type()
		}
		reportBoxing(pass, arg, param, "argument")
	}
}

func checkHotReturn(pass *Pass, sig *types.Signature, ret *ast.ReturnStmt) {
	if sig == nil || len(ret.Results) != sig.Results().Len() {
		return
	}
	for i, res := range ret.Results {
		reportBoxing(pass, res, sig.Results().At(i).Type(), "return value")
	}
}

func checkHotAssign(pass *Pass, a *ast.AssignStmt) {
	if a.Tok != token.ASSIGN || len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i := range a.Lhs {
		reportBoxing(pass, a.Rhs[i], pass.TypesInfo.TypeOf(a.Lhs[i]), "assignment")
	}
}

// reportBoxing flags converting a concrete non-pointer value into an
// interface: the runtime must heap-allocate the value's box. Pointers,
// functions, channels, maps, and existing interfaces fit in the interface
// word directly; nil and constants are free.
func reportBoxing(pass *Pass, expr ast.Expr, to types.Type, site string) {
	if to == nil || !isInterface(to) {
		return
	}
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil || tv.IsNil() || tv.Value != nil {
		return
	}
	from := tv.Type
	if isInterface(from) {
		return
	}
	switch from.Underlying().(type) {
	case *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		return
	}
	pass.Reportf(expr.Pos(), "boxing %s into %s at %s allocates in hot path",
		types.TypeString(from, types.RelativeTo(pass.Pkg)),
		types.TypeString(to, types.RelativeTo(pass.Pkg)), site)
}

// allocConversion reports whether converting from -> dst copies memory:
// string <-> []byte / []rune in either direction.
func allocConversion(dst, from types.Type) bool {
	if dst == nil || from == nil {
		return false
	}
	return (isStringType(dst) && isByteOrRuneSlice(from)) ||
		(isByteOrRuneSlice(dst) && isStringType(from))
}

func isStringType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

func kindWord(t types.Type) string {
	switch t.Underlying().(type) {
	case *types.Slice:
		return "slice"
	case *types.Map:
		return "map"
	}
	return "composite"
}

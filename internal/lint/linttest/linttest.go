// Package linttest runs impact-lint analyzers against fixture packages
// and checks their diagnostics against inline expectations, in the style
// of golang.org/x/tools/go/analysis/analysistest.
//
// A fixture lives under internal/lint/testdata/src/<analyzer>/ and is an
// ordinary stdlib-only Go package. A line expected to be flagged carries
// a trailing expectation comment:
//
//	os.WriteFile(path, data, 0o644) // want `os\.WriteFile`
//
// Each backquoted string is a regexp that must match the message of one
// diagnostic reported on that line; conversely every diagnostic must be
// claimed by an expectation, so fixtures assert silence (clean files) as
// strictly as they assert findings.
package linttest

import (
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/lint"
)

// wantRe extracts the backquoted regexps of one `// want` comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// expectation is one `// want` regexp awaiting a diagnostic on its line.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// Run loads the fixture directory dir (relative to the caller's testdata/src),
// masquerading as importPath, runs the single analyzer through the full
// RunPackage path (Match scoping, ignore directives, sorting), and fails
// the test on any mismatch between diagnostics and `// want` expectations.
func Run(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	pkg, err := lint.LoadDir(filepath.Join("testdata", "src", dir), importPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := lint.RunPackage(pkg, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := parseWants(t, pkg)
	for _, d := range diags {
		if !claim(wants, d) {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched want `%s`", filepath.Base(w.file), w.line, w.re)
		}
	}
}

// parseWants collects every expectation in the fixture package.
func parseWants(t *testing.T, pkg *lint.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				groups := wantRe.FindAllStringSubmatch(rest, -1)
				if len(groups) == 0 {
					t.Fatalf("%s: want comment without a backquoted regexp", pos)
				}
				for _, g := range groups {
					re, err := regexp.Compile(g[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp: %v", pos, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// claim marks the first unmatched expectation covering d, reporting
// whether one existed.
func claim(wants []*expectation, d lint.Diagnostic) bool {
	for _, w := range wants {
		if !w.matched && samePos(w, d.Pos) && w.re.MatchString(d.Message) {
			w.matched = true
			return true
		}
	}
	return false
}

func samePos(w *expectation, pos token.Position) bool {
	return w.file == pos.Filename && w.line == pos.Line
}

package lint

import (
	"go/ast"
	"go/types"
)

// CtxPlumb enforces the PR 5 context contract: cancellation flows from
// the caller — an HTTP request, a CLI signal handler, a test — down
// through Engine, Jobs, and Server, and is never manufactured mid-stack.
// A context.Background() below cmd/ is how a DELETE /v1/jobs/{id} stops
// reaching the worker pool, and a dropped ctx parameter is how a sweep
// keeps simulating after its client hung up. Outside cmd/ (package mains
// own the root context) and tests, the analyzer forbids:
//
//   - calls to context.Background() and context.TODO();
//   - passing a nil literal where a context.Context is expected;
//   - declaring a context.Context parameter and never using it (name it
//     _ if an interface forces the signature on you);
//   - a context.Context parameter anywhere but first in the parameter
//     list, the position the rest of the codebase and the SDK assume.
var CtxPlumb = &Analyzer{
	Name: "ctxplumb",
	Doc:  "thread caller contexts; never manufacture or drop one mid-stack",
	Match: func(importPath string) bool {
		return underPath(importPath, ModulePath) && !underPath(importPath, ModulePath+"/cmd")
	},
	Run: runCtxPlumb,
}

func runCtxPlumb(pass *Pass) error {
	info := pass.TypesInfo
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkg, name, ok := pkgFuncCall(info, n); ok && pkg == "context" && (name == "Background" || name == "TODO") {
				pass.Reportf(n.Pos(), "context.%s below cmd/: thread the caller's context (or suppress with a reason if this lifetime is genuinely detached)", name)
			}
			checkNilContextArg(pass, n)
		case *ast.FuncDecl:
			if n.Body != nil {
				checkCtxParams(pass, n.Type, n.Body, n.Name.Name)
			}
		case *ast.FuncLit:
			checkCtxParams(pass, n.Type, n.Body, "func literal")
		}
	})
	return nil
}

// checkNilContextArg flags passing an untyped nil where the callee wants
// a context.Context.
func checkNilContextArg(pass *Pass, call *ast.CallExpr) {
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		if i >= sig.Params().Len() {
			break
		}
		if !isContextType(sig.Params().At(i).Type()) {
			continue
		}
		if tv, ok := pass.TypesInfo.Types[arg]; ok && tv.IsNil() {
			pass.Reportf(arg.Pos(), "nil context: pass the caller's context")
		}
	}
}

// checkCtxParams enforces the position and the use of context parameters.
func checkCtxParams(pass *Pass, ft *ast.FuncType, body *ast.BlockStmt, name string) {
	if ft.Params == nil {
		return
	}
	paramIndex := 0
	for _, field := range ft.Params.List {
		isCtx := isContextType(pass.TypesInfo.TypeOf(field.Type))
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isCtx && paramIndex != 0 {
			pass.Reportf(field.Pos(), "context.Context must be the first parameter")
		}
		if isCtx {
			for _, ident := range field.Names {
				if ident.Name == "_" {
					continue
				}
				if !identUsedIn(pass.TypesInfo, body, ident) {
					pass.Reportf(ident.Pos(), "%s accepts ctx but never uses it: thread it into the calls below (or name it _ if the signature is forced)", name)
				}
			}
		}
		paramIndex += n
	}
}

// identUsedIn reports whether the object defined by def is referenced
// anywhere in body.
func identUsedIn(info *types.Info, body *ast.BlockStmt, def *ast.Ident) bool {
	obj := info.Defs[def]
	if obj == nil {
		return true // be lenient when resolution failed
	}
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if ident, ok := n.(*ast.Ident); ok && info.Uses[ident] == obj {
			used = true
		}
		return true
	})
	return used
}

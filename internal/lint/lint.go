// Package lint is impact-lint: a suite of project-specific static
// analyzers that mechanically enforce the invariants this repository's
// correctness rests on — deterministic simulation output (results are
// content-addressed by the SHA-256 of canonical JSON), fsynced atomic
// durable writes (crash safety), an allocation-free hot access path, and
// context plumbing through the serving layer.
//
// The package deliberately reimplements the core of
// golang.org/x/tools/go/analysis on the standard library alone (go/ast +
// go/types + `go list`): the module is dependency-free by design, and the
// build environment is network-isolated, so the x/tools framework is not
// available. The shapes match the real framework closely — an Analyzer
// with a Run(*Pass) hook reporting Diagnostics, analysistest-style
// testdata packages with `// want` expectations (see linttest) — so a
// future migration to x/tools is a mechanical search-and-replace, not a
// rewrite.
//
// See docs/lint.md for the rule catalog and the motivating incident
// behind each analyzer.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a single package
// and reports violations through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lint:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Match reports whether the analyzer applies to a package import
	// path. A nil Match applies everywhere. Tests bypass Match and run
	// the analyzer directly on testdata packages.
	Match func(importPath string) bool
	// Run performs the check. It may assume Pass.TypesInfo is fully
	// populated for the package's non-test files.
	Run func(*Pass) error
}

// Pass carries one analyzed package into an Analyzer.Run.
type Pass struct {
	Analyzer   *Analyzer
	Fset       *token.FileSet
	Files      []*ast.File
	Pkg        *types.Package
	TypesInfo  *types.Info
	ImportPath string

	diags *[]Diagnostic
}

// Reportf records a violation at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Preorder walks every file in the pass in depth-first preorder, calling
// fn for each node. It is the stdlib stand-in for inspector.Preorder.
func (p *Pass) Preorder(fn func(ast.Node)) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if n != nil {
				fn(n)
			}
			return true
		})
	}
}

// Diagnostic is one reported violation.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Analyzers returns the full impact-lint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		NoDeterminism,
		AtomicWrite,
		HotPathAlloc,
		CtxPlumb,
		APIEnvelope,
	}
}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// RunPackage applies every applicable analyzer to one loaded package and
// returns the surviving diagnostics: Match-scoped, //lint:ignore-filtered,
// and sorted by position. Malformed ignore directives are themselves
// diagnostics, so a suppression can never rot silently.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Match != nil && !a.Match(pkg.ImportPath) {
			continue
		}
		pass := &Pass{
			Analyzer:   a,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			Pkg:        pkg.Types,
			TypesInfo:  pkg.Info,
			ImportPath: pkg.ImportPath,
			diags:      &diags,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
	}
	diags = applyIgnores(pkg, diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

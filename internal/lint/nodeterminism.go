package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NoDeterminism enforces the content-addressing invariant: every run
// result is keyed by the SHA-256 of its canonical JSON, so any
// nondeterminism inside the simulator, the experiment engine's
// canonicalization, or the figure pipelines silently poisons the durable
// cache with irreproducible entries. The analyzer forbids, inside
// repro/internal/{sim,figures,exp}:
//
//   - wall-clock reads (time.Now, time.Since, time.Until) — simulated
//     time is the only clock those packages may observe;
//   - math/rand and math/rand/v2 — stats.Rng is the seeded, deterministic
//     generator every simulated component must draw from;
//   - map iteration whose body has order-dependent effects (appending
//     values, writing to writers/hashes, calling out). The commutative
//     idioms — collect-keys-then-sort, numeric accumulation, map-to-map
//     copies, deletes — are recognized and allowed;
//   - goroutines that mutate free variables by append, accumulation, or
//     plain assignment: completion order would decide the final contents.
//     Writes to disjoint index expressions (results[i] = ...) are the
//     sanctioned pattern and stay allowed.
var NoDeterminism = &Analyzer{
	Name: "nodeterminism",
	Doc:  "forbid wall clocks, math/rand, and order-dependent iteration in content-addressed simulation paths",
	Match: func(importPath string) bool {
		return inPackages(importPath,
			ModulePath+"/internal/sim",
			ModulePath+"/internal/figures",
			ModulePath+"/internal/exp",
		)
	},
	Run: runNoDeterminism,
}

var forbiddenTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runNoDeterminism(pass *Pass) error {
	for _, f := range pass.Files {
		for _, imp := range f.Imports {
			switch impPath(imp) {
			case "math/rand", "math/rand/v2":
				pass.Reportf(imp.Pos(), "import of %s: simulated components must draw randomness from the seeded stats.Rng", impPath(imp))
			}
		}
	}
	pass.Preorder(func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkg, name, ok := pkgFuncCall(pass.TypesInfo, n); ok && pkg == "time" && forbiddenTimeFuncs[name] {
				pass.Reportf(n.Pos(), "wall-clock read time.%s: results are content-addressed, so only simulated clocks may feed them", name)
			}
		case *ast.RangeStmt:
			checkMapRange(pass, n)
		case *ast.GoStmt:
			checkGoroutineWrites(pass, n)
		}
	})
	return nil
}

func impPath(spec *ast.ImportSpec) string {
	if len(spec.Path.Value) < 2 {
		return ""
	}
	return spec.Path.Value[1 : len(spec.Path.Value)-1]
}

// checkMapRange flags `for ... := range m` over a map unless every
// statement in the body is an order-independent (commutative) effect.
func checkMapRange(pass *Pass, rng *ast.RangeStmt) {
	if !isMap(pass.TypesInfo.TypeOf(rng.X)) {
		return
	}
	keyIdent, _ := rng.Key.(*ast.Ident)
	if !mapRangeBodyCommutes(pass.TypesInfo, rng.Body, keyIdent) {
		pass.Reportf(rng.Pos(), "map iteration with order-dependent effects: collect and sort the keys first (map order would leak into content-addressed output)")
	}
}

// mapRangeBodyCommutes reports whether every statement is one of the
// allowed commutative forms.
func mapRangeBodyCommutes(info *types.Info, body *ast.BlockStmt, key *ast.Ident) bool {
	for _, s := range body.List {
		if !commutativeStmt(info, s, key) {
			return false
		}
	}
	return true
}

func commutativeStmt(info *types.Info, s ast.Stmt, key *ast.Ident) bool {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return commutativeAssign(info, s, key)
	case *ast.IncDecStmt:
		return true // n++ / n-- accumulation
	case *ast.ExprStmt:
		// delete(m, k) is the only order-independent bare call.
		if call, ok := s.X.(*ast.CallExpr); ok {
			return builtinName(info, call) == "delete"
		}
		return false
	case *ast.IfStmt:
		// Conditions only read; each branch must itself commute.
		if !mapRangeBodyCommutes(info, s.Body, key) {
			return false
		}
		switch e := s.Else.(type) {
		case nil:
			return true
		case *ast.BlockStmt:
			return mapRangeBodyCommutes(info, e, key)
		case *ast.IfStmt:
			return commutativeStmt(info, e, key)
		}
		return false
	case *ast.BlockStmt:
		return mapRangeBodyCommutes(info, s, key)
	case *ast.BranchStmt:
		return s.Tok == token.CONTINUE || s.Tok == token.BREAK
	case *ast.DeclStmt, *ast.EmptyStmt:
		return true
	}
	return false
}

// commutativeAssign allows the order-independent assignment forms:
// numeric op-accumulation (+=, -=, |=, &=, ^=), map-index stores
// (map-to-map copy), and the collect-keys idiom `s = append(s, k)` where
// k is exactly the range key.
func commutativeAssign(info *types.Info, a *ast.AssignStmt, key *ast.Ident) bool {
	switch a.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	case token.DEFINE:
		// Defines create per-iteration locals; order-dependent uses are
		// caught where they happen. The one sharp edge is
		// `x := append(outer, v)`, which can write into outer's backing
		// array, so defines may not contain appends of non-key values.
		for _, rhs := range a.Rhs {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && builtinName(info, call) == "append" {
				return appendsKeyOnly(info, call, key)
			}
		}
		return true
	case token.ASSIGN:
		if len(a.Lhs) != 1 || len(a.Rhs) != 1 {
			return false
		}
		// Map-index store: out[k2] = v — insertion order is irrelevant.
		if idx, ok := a.Lhs[0].(*ast.IndexExpr); ok && isMap(info.TypeOf(idx.X)) {
			return true
		}
		// s = append(s, key): collecting keys for a later sort.
		call, ok := a.Rhs[0].(*ast.CallExpr)
		if !ok || builtinName(info, call) != "append" {
			return false
		}
		return appendsKeyOnly(info, call, key)
	}
	return false
}

// appendsKeyOnly reports whether call is append(s, k) appending exactly
// the range key and nothing else.
func appendsKeyOnly(info *types.Info, call *ast.CallExpr, key *ast.Ident) bool {
	if len(call.Args) != 2 || key == nil {
		return false
	}
	arg, ok := ast.Unparen(call.Args[1]).(*ast.Ident)
	if !ok || info.Uses[arg] == nil {
		return false
	}
	return info.Uses[arg] == info.Defs[key] || info.Uses[arg] == info.Uses[key]
}

// checkGoroutineWrites flags goroutine bodies that race completion order
// into shared state: append to a free slice, op-accumulation on a free
// variable, or plain assignment to a free variable.
func checkGoroutineWrites(pass *Pass, g *ast.GoStmt) {
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	lo, hi := int(lit.Pos()), int(lit.End())
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		a, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range a.Lhs {
			ident, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue // index/field stores are the sanctioned pattern
			}
			obj := freeObject(pass.TypesInfo, ident, lo, hi)
			if obj == nil {
				continue
			}
			switch a.Tok {
			case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN,
				token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.SHL_ASSIGN, token.SHR_ASSIGN:
				pass.Reportf(a.Pos(), "goroutine accumulates into captured %q: completion order decides the result", obj.Name())
			case token.ASSIGN:
				if i < len(a.Rhs) && isSelfAppend(pass.TypesInfo, a.Rhs[i], obj) {
					pass.Reportf(a.Pos(), "goroutine appends to captured %q: element order depends on scheduling; write to disjoint indices instead", obj.Name())
				} else {
					pass.Reportf(a.Pos(), "goroutine assigns captured %q: last-writer-wins depends on scheduling", obj.Name())
				}
			}
		}
		return true
	})
}

// isSelfAppend reports whether rhs is append(obj, ...).
func isSelfAppend(info *types.Info, rhs ast.Expr, obj *types.Var) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok || builtinName(info, call) != "append" || len(call.Args) == 0 {
		return false
	}
	ident, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	return ok && info.Uses[ident] == obj
}

package lint

import (
	"go/token"
	"strings"
)

// ignoreDirective is one parsed "//lint:ignore <checks> <reason>"
// comment. It suppresses the named analyzers (comma-separated) on its own
// source line and on the line directly below it, mirroring the
// staticcheck directive this project's contributors already know. The
// reason is mandatory: a suppression is an audited exception, and the
// reviewer deserves the why next to the what.
type ignoreDirective struct {
	checks []string
	reason string
	line   int
	file   string
	bad    string // non-empty when the directive is malformed
}

const ignorePrefix = "//lint:ignore"

// parseIgnores collects every ignore directive in the package, keyed by
// file and line.
func parseIgnores(pkg *Package) []ignoreDirective {
	var out []ignoreDirective
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				d := ignoreDirective{line: pos.Line, file: pos.Filename}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //lint:ignorefoo — not this directive
				}
				fields := strings.Fields(rest)
				switch {
				case len(fields) < 2:
					d.bad = "malformed //lint:ignore directive: want \"//lint:ignore <check>[,<check>] <reason>\""
				default:
					d.checks = strings.Split(fields[0], ",")
					d.reason = strings.Join(fields[1:], " ")
					for _, chk := range d.checks {
						if Lookup(chk) == nil {
							d.bad = "//lint:ignore names unknown check \"" + chk + "\""
						}
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// applyIgnores filters diagnostics suppressed by a well-formed directive
// and appends a diagnostic for every malformed one.
func applyIgnores(pkg *Package, diags []Diagnostic) []Diagnostic {
	directives := parseIgnores(pkg)
	if len(directives) == 0 {
		return diags
	}
	suppressed := func(d Diagnostic) bool {
		for _, dir := range directives {
			if dir.bad != "" || dir.file != d.Pos.Filename {
				continue
			}
			if d.Pos.Line != dir.line && d.Pos.Line != dir.line+1 {
				continue
			}
			for _, chk := range dir.checks {
				if chk == d.Analyzer {
					return true
				}
			}
		}
		return false
	}
	out := diags[:0]
	for _, d := range diags {
		if !suppressed(d) {
			out = append(out, d)
		}
	}
	for _, dir := range directives {
		if dir.bad != "" {
			out = append(out, Diagnostic{
				Analyzer: "lintdirective",
				Pos:      token.Position{Filename: dir.file, Line: dir.line},
				Message:  dir.bad,
			})
		}
	}
	return out
}

package pim

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

func newEngineFixture(t *testing.T) (*PEIEngine, *RowCloneEngine, *memctrl.Controller, *dram.AddrMapper) {
	t.Helper()
	dev, err := dram.NewDevice(dram.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := memctrl.New(dev, memctrl.DefaultConfig())
	mapper, err := dram.NewAddrMapper(dram.DefaultConfig(), dram.MapBankXOR)
	if err != nil {
		t.Fatal(err)
	}
	pei := NewPEIEngine(ctrl, mapper, nil, DefaultPEICosts())
	rc := NewRowCloneEngine(ctrl, DefaultRowCloneCosts())
	return pei, rc, ctrl, mapper
}

func TestLocalityMonitorTracksRecency(t *testing.T) {
	m := NewLocalityMonitor(4)
	if m.Observe(0x1000) {
		t.Fatal("first observation reported locality")
	}
	if !m.Observe(0x1008) {
		t.Fatal("same cache line not recognized")
	}
	if m.Observe(0x2000) {
		t.Fatal("new line reported locality")
	}
}

func TestLocalityMonitorEvictsOldest(t *testing.T) {
	m := NewLocalityMonitor(2)
	m.Observe(0x1000)
	m.Observe(0x2000)
	m.Observe(0x3000) // evicts 0x1000
	if m.Observe(0x1000) {
		t.Fatal("oldest entry survived capacity eviction")
	}
}

func TestPEIExecutesNearMemoryOnLowLocality(t *testing.T) {
	pei, _, _, mapper := newEngineFixture(t)
	addr := mapper.Compose(3, 100, 0)
	res, err := pei.Execute(0, addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.NearMemory {
		t.Fatal("fresh address executed host-side")
	}
	costs := DefaultPEICosts()
	wantMin := costs.IssueCost + costs.PEIOverhead
	if res.Latency <= wantMin {
		t.Fatalf("latency %d missing DRAM component (> %d expected)", res.Latency, wantMin)
	}
	if res.Outcome != dram.OutcomeEmpty {
		t.Fatalf("outcome = %v, want empty", res.Outcome)
	}
}

func TestPEIHostSideWithMonitorHit(t *testing.T) {
	dev, err := dram.NewDevice(dram.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctrl := memctrl.New(dev, memctrl.DefaultConfig())
	mapper, err := dram.NewAddrMapper(dram.DefaultConfig(), dram.MapBankXOR)
	if err != nil {
		t.Fatal(err)
	}
	host := &hostRecorder{}
	pei := NewPEIEngine(ctrl, mapper, host, DefaultPEICosts())
	addr := mapper.Compose(3, 100, 0)
	pei.Execute(0, addr, 0)
	res, err := pei.Execute(1000, addr, 0) // monitor hit -> host side
	if err != nil {
		t.Fatal(err)
	}
	if res.NearMemory {
		t.Fatal("hot address executed near memory")
	}
	if host.calls != 1 {
		t.Fatalf("host path invoked %d times, want 1", host.calls)
	}
}

type hostRecorder struct{ calls int }

func (h *hostRecorder) Access(_ int64, _ uint64, _ bool) int64 {
	h.calls++
	return 50
}

func TestPEIAsyncIsFireAndForget(t *testing.T) {
	pei, _, _, mapper := newEngineFixture(t)
	addr := mapper.Compose(5, 200, 0)
	res, err := pei.ExecuteAsync(0, addr, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Latency != DefaultPEICosts().AsyncIssueCost {
		t.Fatalf("async latency = %d, want issue cost %d", res.Latency, DefaultPEICosts().AsyncIssueCost)
	}
	if res.CompletedAt <= res.Latency {
		t.Fatalf("completion %d not after issue", res.CompletedAt)
	}
}

func TestPEIAsyncOpensRow(t *testing.T) {
	pei, _, ctrl, mapper := newEngineFixture(t)
	addr := mapper.Compose(5, 200, 0)
	if _, err := pei.ExecuteAsync(0, addr, 0); err != nil {
		t.Fatal(err)
	}
	coord := mapper.Map(addr)
	bank := coord.FlatBank(ctrl.Device().Config())
	if got := ctrl.Device().Bank(bank).OpenRow(); got != 200 {
		t.Fatalf("open row after async PEI = %d, want 200", got)
	}
}

func TestRowCloneSubmitHonorsMask(t *testing.T) {
	_, rc, ctrl, _ := newEngineFixture(t)
	banks := []int{0, 1, 2, 3}
	res, err := rc.Submit(0, banks, 0b0101, 10, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	dev := ctrl.Device()
	for i, bank := range banks {
		open := dev.Bank(bank).OpenRow()
		if i%2 == 0 && open != 11 {
			t.Errorf("masked-in bank %d open row = %d, want 11", bank, open)
		}
		if i%2 == 1 && open != -1 {
			t.Errorf("masked-out bank %d open row = %d, want untouched", bank, open)
		}
	}
	if res.IssueLatency != DefaultRowCloneCosts().IssueCost {
		t.Errorf("issue latency = %d", res.IssueLatency)
	}
	if res.PerBank[1].Latency != 0 {
		t.Error("masked-out bank has a recorded operation")
	}
}

func TestRowCloneParallelismBeatsSerial(t *testing.T) {
	_, rc, _, _ := newEngineFixture(t)
	banks := make([]int, 16)
	for i := range banks {
		banks[i] = i
	}
	res, err := rc.Submit(0, banks, ^uint64(0)>>48, 10, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 16 parallel operations must complete far sooner than 16 serialized
	// ones (the PuM channel's advantage).
	serial := int64(16) * (dram.DDR4_2400().TRCD + dram.DDR4_2400().RowCloneFPM)
	if res.CompletedAt-res.IssueLatency >= serial {
		t.Fatalf("parallel rowclone took %d cycles, not better than serial %d",
			res.CompletedAt-res.IssueLatency, serial)
	}
}

func TestRowCloneMeasureLatencyDistinguishesStates(t *testing.T) {
	_, rc, _, _ := newEngineFixture(t)
	// First measure latches dst; second (swapped) finds it open (hit);
	// then an interfering activation forces a conflict.
	first, err := rc.Measure(0, 0, 10, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	hit, err := rc.Measure(first.CompletedAt+100, 0, 11, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit.Outcome != dram.OutcomeHit {
		t.Fatalf("swapped measure outcome = %v, want hit", hit.Outcome)
	}
	disturbBank0(t, rc)
	conflict, err := rc.Measure(hit.CompletedAt+2000, 0, 10, 11, 0)
	if err != nil {
		t.Fatal(err)
	}
	if conflict.Outcome != dram.OutcomeConflict {
		t.Fatalf("post-disturb outcome = %v, want conflict", conflict.Outcome)
	}
	if conflict.Latency <= hit.Latency {
		t.Fatalf("conflict latency %d not above hit %d", conflict.Latency, hit.Latency)
	}
}

// disturbBank0 opens an unrelated row in bank 0, emulating a sender.
func disturbBank0(t *testing.T, rc *RowCloneEngine) {
	t.Helper()
	if _, err := rc.ctrl.Activate(1_000_000, 0, 999, 1); err != nil {
		t.Fatal(err)
	}
}

// Package pim models the two Processing-in-Memory substrates the paper's
// attacks exploit: PIM-Enabled Instructions (PEI, Ahn et al. ISCA'15) — a
// processing-near-memory design with per-bank computation units and a
// locality-monitoring dispatch unit — and RowClone (Seshadri et al.
// MICRO'13) — a processing-using-memory bulk copy primitive with masked
// multi-bank dispatch.
package pim

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/stats"
)

// Fixed counter IDs for the PEI engine's dispatch statistics, in the slot
// order passed to stats.NewFixed in NewPEIEngine.
const (
	CounterHostSide stats.CounterID = iota
	CounterMemorySide
)

// PEICosts collects the software/uncore cost constants of the PEI path.
type PEICosts struct {
	// IssueCost is the core-side cost of dispatching one synchronous PEI
	// (operand packing, PMU lookup, uncore hop).
	IssueCost int64 `json:"issue_cost"`
	// AsyncIssueCost is the core-side cost of a fire-and-forget PEI,
	// which carries operand data and write semantics and therefore pays
	// a heavier dispatch than a read-return PEI.
	AsyncIssueCost int64 `json:"async_issue_cost"`
	// PEIOverhead is the additional latency of executing a PEI in a
	// memory-side PCU (3 cycles in the paper, after Ahn et al.).
	PEIOverhead int64 `json:"pei_overhead"`
	// HostExtra is the extra cost when the PMU routes the PEI to the
	// host-side PCU (it then goes through the cache hierarchy).
	HostExtra int64 `json:"host_extra"`
}

// DefaultPEICosts returns the calibrated constants (see DESIGN.md).
func DefaultPEICosts() PEICosts {
	return PEICosts{IssueCost: 25, AsyncIssueCost: 45, PEIOverhead: 3, HostExtra: 5}
}

// PEIResult describes one executed PEI.
type PEIResult struct {
	// Latency is the core-observed round-trip latency for synchronous
	// execution, or the issue cost for asynchronous execution.
	Latency int64
	// CompletedAt is when the memory-side operation finishes (equals the
	// issue completion for host-side execution).
	CompletedAt int64
	// NearMemory reports whether the PMU dispatched the PEI to a
	// memory-side PCU.
	NearMemory bool
	// Outcome is the DRAM row-buffer outcome for memory-side execution.
	Outcome dram.Outcome
}

// LocalityMonitor models the PEI Management Unit's locality monitor: a small
// tag cache of recently touched cache blocks. A hit means the data is likely
// cached, so the PEI executes host-side; a miss routes it near memory. The
// IMPACT attackers deliberately touch fresh cache lines each batch to force
// memory-side execution.
type LocalityMonitor struct {
	entries map[uint64]int64
	max     int
	tick    int64
}

// NewLocalityMonitor returns a monitor tracking up to max cache-line tags.
func NewLocalityMonitor(max int) *LocalityMonitor {
	return &LocalityMonitor{entries: make(map[uint64]int64, max), max: max}
}

// Observe records a touch of the cache line containing addr and returns
// whether the line was already being tracked (= high locality).
func (m *LocalityMonitor) Observe(addr uint64) bool {
	const lineBits = 6
	tag := addr >> lineBits
	m.tick++
	_, hit := m.entries[tag]
	if !hit && len(m.entries) >= m.max {
		// Evict the oldest entry.
		var oldTag uint64
		oldTick := m.tick + 1
		for t, when := range m.entries {
			if when < oldTick {
				oldTick, oldTag = when, t
			}
		}
		delete(m.entries, oldTag)
	}
	m.entries[tag] = m.tick
	return hit
}

// PEIEngine executes PIM-enabled instructions against a memory controller.
type PEIEngine struct {
	ctrl     *memctrl.Controller
	mapper   *dram.AddrMapper
	monitor  *LocalityMonitor
	host     cache.Level
	costs    PEICosts
	counters *stats.Counters
}

// NewPEIEngine builds a PEI engine. host is the host-side execution path
// (the cache hierarchy); it may be nil, in which case all PEIs execute near
// memory regardless of locality.
func NewPEIEngine(ctrl *memctrl.Controller, mapper *dram.AddrMapper, host cache.Level, costs PEICosts) *PEIEngine {
	return &PEIEngine{
		ctrl:     ctrl,
		mapper:   mapper,
		monitor:  NewLocalityMonitor(256),
		host:     host,
		costs:    costs,
		counters: stats.NewFixed("host_side", "memory_side"),
	}
}

// Costs returns the engine's cost constants.
func (e *PEIEngine) Costs() PEICosts { return e.costs }

// Counters exposes dispatch statistics.
func (e *PEIEngine) Counters() *stats.Counters { return e.counters }

// Execute runs one PEI (e.g. pim_add) on the word at addr synchronously:
// the caller's clock should advance by the returned Latency. The PMU routes
// the PEI host-side when the locality monitor indicates cached data.
//
//impact:hotpath
func (e *PEIEngine) Execute(now int64, addr uint64, proc int) (PEIResult, error) {
	highLocality := e.monitor.Observe(addr)
	if highLocality && e.host != nil {
		e.counters.Add(CounterHostSide, 1)
		lat := e.costs.IssueCost + e.costs.HostExtra + e.host.Access(now+e.costs.IssueCost, addr, false)
		return PEIResult{Latency: lat, CompletedAt: now + lat, NearMemory: false}, nil
	}
	e.counters.Add(CounterMemorySide, 1)
	coord := e.mapper.Map(addr)
	bank := coord.FlatBank(e.ctrl.Device().Config())
	start := now + e.costs.IssueCost + e.costs.PEIOverhead
	res, err := e.ctrl.Access(start, bank, coord.Row, proc)
	if err != nil {
		return PEIResult{}, err
	}
	lat := e.costs.IssueCost + e.costs.PEIOverhead + res.Latency
	return PEIResult{
		Latency:     lat,
		CompletedAt: now + lat,
		NearMemory:  true,
		Outcome:     res.Outcome,
	}, nil
}

// ExecuteAsync issues a PEI without waiting for the memory-side operation:
// the caller's clock advances only by the issue cost, and CompletedAt tells
// a later memory fence when the operation drains. This is the sender-side
// fire-and-forget pattern of Listing 1.
//
//impact:hotpath
func (e *PEIEngine) ExecuteAsync(now int64, addr uint64, proc int) (PEIResult, error) {
	highLocality := e.monitor.Observe(addr)
	if highLocality && e.host != nil {
		e.counters.Add(CounterHostSide, 1)
		lat := e.costs.AsyncIssueCost + e.costs.HostExtra + e.host.Access(now+e.costs.AsyncIssueCost, addr, false)
		return PEIResult{Latency: e.costs.AsyncIssueCost, CompletedAt: now + lat, NearMemory: false}, nil
	}
	e.counters.Add(CounterMemorySide, 1)
	coord := e.mapper.Map(addr)
	bank := coord.FlatBank(e.ctrl.Device().Config())
	start := now + e.costs.AsyncIssueCost + e.costs.PEIOverhead
	res, err := e.ctrl.Activate(start, bank, coord.Row, proc)
	if err != nil {
		return PEIResult{}, err
	}
	return PEIResult{
		Latency:     e.costs.AsyncIssueCost,
		CompletedAt: start + res.Latency,
		NearMemory:  true,
		Outcome:     res.Outcome,
	}, nil
}

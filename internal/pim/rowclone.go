package pim

import (
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/stats"
)

// Fixed counter IDs for the RowClone engine, in the slot order passed to
// stats.NewFixed in NewRowCloneEngine: per-bank operations dispatched and
// engine-level requests issued.
const (
	CounterOps stats.CounterID = iota
	CounterRequests
)

// RowCloneCosts collects the software-path constants of the RowClone
// interface (Section 4.2: the application specifies source range,
// destination range and a bank mask in a single request).
type RowCloneCosts struct {
	// IssueCost is the core-side cost of composing and issuing one masked
	// RowClone request, regardless of how many banks it fans out to.
	IssueCost int64 `json:"issue_cost"`
	// MeasureIssueCost is the cheaper single-bank probe issue the
	// receiver uses (no range/mask composition).
	MeasureIssueCost int64 `json:"measure_issue_cost"`
	// PerBankDispatch is the memory controller's serialization cost per
	// selected bank when it splits the masked request into per-bank
	// operations.
	PerBankDispatch int64 `json:"per_bank_dispatch"`
}

// DefaultRowCloneCosts returns the calibrated constants (see DESIGN.md).
func DefaultRowCloneCosts() RowCloneCosts {
	return RowCloneCosts{IssueCost: 60, MeasureIssueCost: 25, PerBankDispatch: 4}
}

// RowCloneResult describes one masked RowClone request.
type RowCloneResult struct {
	// IssueLatency is the core-side cost (the request is asynchronous;
	// a fence waits for CompletedAt).
	IssueLatency int64
	// CompletedAt is when the last per-bank operation finishes.
	CompletedAt int64
	// PerBank holds the outcome of each dispatched bank operation,
	// indexed like the banks argument; banks masked out hold zero values.
	PerBank []dram.AccessResult
}

// RowCloneEngine issues in-DRAM bulk copies through the memory controller.
type RowCloneEngine struct {
	ctrl     *memctrl.Controller
	costs    RowCloneCosts
	counters *stats.Counters
}

// NewRowCloneEngine builds a RowClone engine over the controller.
func NewRowCloneEngine(ctrl *memctrl.Controller, costs RowCloneCosts) *RowCloneEngine {
	return &RowCloneEngine{ctrl: ctrl, costs: costs, counters: stats.NewFixed("ops", "requests")}
}

// Costs returns the engine's cost constants.
func (e *RowCloneEngine) Costs() RowCloneCosts { return e.costs }

// Counters exposes dispatch statistics.
func (e *RowCloneEngine) Counters() *stats.Counters { return e.counters }

// Submit issues one masked RowClone request: for each set bit i of mask, the
// controller copies srcRow into dstRow within banks[i]. Operations proceed
// in parallel across banks (bank-level parallelism is the PuM channel's
// throughput advantage); the controller serializes only the small per-bank
// dispatch. The sender's clock advances by IssueLatency; a fence waits for
// CompletedAt.
func (e *RowCloneEngine) Submit(now int64, banks []int, mask uint64, srcRow, dstRow int64, proc int) (RowCloneResult, error) {
	out := RowCloneResult{
		IssueLatency: e.costs.IssueCost,
		CompletedAt:  now + e.costs.IssueCost,
		PerBank:      make([]dram.AccessResult, len(banks)),
	}
	dispatch := now + e.costs.IssueCost
	for i, bank := range banks {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		dispatch += e.costs.PerBankDispatch
		res, err := e.ctrl.RowClone(dispatch, bank, srcRow, dstRow, proc)
		if err != nil {
			return RowCloneResult{}, err
		}
		out.PerBank[i] = res
		if done := dispatch + res.Latency; done > out.CompletedAt {
			out.CompletedAt = done
		}
		e.counters.Add(CounterOps, 1)
	}
	e.counters.Add(CounterRequests, 1)
	return out, nil
}

// Measure issues a single-bank RowClone synchronously and returns its
// core-observed latency — the receiver-side probe of Listing 2 (the copy
// direction is swapped by the caller: dst becomes the source).
func (e *RowCloneEngine) Measure(now int64, bank int, srcRow, dstRow int64, proc int) (dram.AccessResult, error) {
	res, err := e.ctrl.RowClone(now+e.costs.MeasureIssueCost, bank, srcRow, dstRow, proc)
	if err != nil {
		return dram.AccessResult{}, err
	}
	res.Latency += e.costs.MeasureIssueCost
	res.CompletedAt = now + res.Latency
	e.counters.Add(CounterOps, 1)
	e.counters.Add(CounterRequests, 1)
	return res, nil
}

package trace

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/memctrl"
	"repro/internal/sim"
)

func TestSerializationRoundTrip(t *testing.T) {
	check := func(gaps []uint16, addrs []uint32) bool {
		var tr Trace
		n := len(gaps)
		if len(addrs) < n {
			n = len(addrs)
		}
		for i := 0; i < n; i++ {
			tr.Append(Record{
				Gap:   int64(gaps[i]),
				Addr:  uint64(addrs[i]),
				PC:    uint64(i),
				Write: i%3 == 0,
			})
		}
		var buf bytes.Buffer
		if _, err := tr.WriteTo(&buf); err != nil {
			return false
		}
		var back Trace
		if _, err := back.ReadFrom(&buf); err != nil {
			return false
		}
		if len(back.Records) != len(tr.Records) {
			return false
		}
		for i := range tr.Records {
			if back.Records[i] != tr.Records[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	var tr Trace
	if _, err := tr.ReadFrom(bytes.NewReader([]byte("nonsense stream"))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := tr.ReadFrom(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
	// Truncated valid header.
	var buf bytes.Buffer
	good := Trace{Records: []Record{{Gap: 1, Addr: 2, PC: 3}}}
	if _, err := good.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := tr.ReadFrom(bytes.NewReader(raw[:len(raw)-1])); err == nil {
		t.Fatal("truncated stream accepted")
	}
}

func newReplayCore(t *testing.T, defense memctrl.Defense) *sim.Core {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	cfg.Mem.Defense = defense
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Core(0)
}

func TestRecordAndReplayMatchTiming(t *testing.T) {
	// Record a synthetic pointer-chase, then replay it on an identical
	// machine: timings must agree exactly.
	rec := NewRecorder(newReplayCore(t, memctrl.DefenseNone))
	addr := uint64(0x100000)
	for i := 0; i < 500; i++ {
		rec.Compute(3)
		rec.Load(addr, 0x1)
		addr = addr*6364136223846793005 + 1442695040888963407
		addr &= 0xfff_ffc0
		if i%7 == 0 {
			rec.Store(addr, 0x2)
		}
	}
	tr := rec.Trace()
	res := Replay(tr, newReplayCore(t, memctrl.DefenseNone))
	if res.Accesses != int64(tr.Len()) {
		t.Fatalf("replayed %d of %d accesses", res.Accesses, tr.Len())
	}
	again := Replay(tr, newReplayCore(t, memctrl.DefenseNone))
	if res.Cycles != again.Cycles {
		t.Fatalf("replay nondeterministic: %d vs %d", res.Cycles, again.Cycles)
	}
}

func TestReplayExposesDefenseCost(t *testing.T) {
	rec := NewRecorder(newReplayCore(t, memctrl.DefenseNone))
	// A row-friendly stream: mostly hits, which CTD hurts the most.
	for i := 0; i < 2000; i++ {
		rec.Compute(2)
		rec.Load(0x200000+uint64(i%512)*64, 0x3)
	}
	tr := rec.Trace()
	baseline := Replay(tr, newReplayCore(t, memctrl.DefenseNone))
	padded := Replay(tr, newReplayCore(t, memctrl.DefenseConstantTime))
	if padded.Cycles <= baseline.Cycles {
		t.Fatalf("CTD replay %d not slower than baseline %d", padded.Cycles, baseline.Cycles)
	}
	if padded.MemCycles <= baseline.MemCycles {
		t.Fatal("defense cost not attributed to memory cycles")
	}
}

func TestReplayEmptyTrace(t *testing.T) {
	res := Replay(&Trace{}, newReplayCore(t, memctrl.DefenseNone))
	if res.Accesses != 0 || res.Cycles != 0 {
		t.Fatalf("empty replay = %+v", res)
	}
}

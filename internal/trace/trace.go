// Package trace records and replays memory-access traces. The paper's
// artifact drives its defense experiments from trace files; this package
// provides the equivalent: capture a workload's access stream once, then
// replay it against memory controllers with different defenses — cheaper
// than re-running the workload, and guaranteed to issue the identical
// stream to every configuration.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrCorrupt indicates a malformed serialized trace.
var ErrCorrupt = errors.New("trace: corrupt stream")

// Record is one memory operation.
type Record struct {
	// Gap is the compute time (cycles) between the previous operation
	// and this one.
	Gap int64
	// Addr is the virtual address accessed.
	Addr uint64
	// PC identifies the access site (prefetchers key on it).
	PC uint64
	// Write distinguishes stores from loads.
	Write bool
}

// Trace is an ordered access stream.
type Trace struct {
	Records []Record
}

// Append adds one record.
func (t *Trace) Append(r Record) {
	t.Records = append(t.Records, r)
}

// Len returns the number of records.
func (t *Trace) Len() int { return len(t.Records) }

// magic identifies the serialized format.
var magic = [4]byte{'I', 'M', 'P', '1'}

// WriteTo serializes the trace in a compact varint format.
func (t *Trace) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var written int64
	n, err := bw.Write(magic[:])
	written += int64(n)
	if err != nil {
		return written, err
	}
	var buf [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(buf[:], v)
		n, err := bw.Write(buf[:k])
		written += int64(n)
		return err
	}
	if err := putUvarint(uint64(len(t.Records))); err != nil {
		return written, err
	}
	for _, r := range t.Records {
		flags := uint64(0)
		if r.Write {
			flags = 1
		}
		for _, v := range []uint64{uint64(r.Gap), r.Addr, r.PC, flags} {
			if err := putUvarint(v); err != nil {
				return written, err
			}
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// ReadFrom deserializes a trace written by WriteTo, replacing the receiver's
// records.
func (t *Trace) ReadFrom(r io.Reader) (int64, error) {
	br := bufio.NewReader(r)
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	if hdr != magic {
		return 4, fmt.Errorf("%w: bad magic %q", ErrCorrupt, hdr[:])
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return 4, fmt.Errorf("%w: length: %v", ErrCorrupt, err)
	}
	const maxRecords = 1 << 28
	if count > maxRecords {
		return 4, fmt.Errorf("%w: implausible record count %d", ErrCorrupt, count)
	}
	records := make([]Record, 0, count)
	for i := uint64(0); i < count; i++ {
		var vals [4]uint64
		for j := range vals {
			v, err := binary.ReadUvarint(br)
			if err != nil {
				return 0, fmt.Errorf("%w: record %d: %v", ErrCorrupt, i, err)
			}
			vals[j] = v
		}
		records = append(records, Record{
			Gap:   int64(vals[0]),
			Addr:  vals[1],
			PC:    vals[2],
			Write: vals[3]&1 == 1,
		})
	}
	t.Records = records
	return 0, nil
}

package trace

import "repro/internal/sim"

// ReplayResult reports one trace replay.
type ReplayResult struct {
	// Cycles is the simulated execution time of the replay.
	Cycles int64
	// Accesses is the number of operations issued.
	Accesses int64
	// MemCycles is the portion spent in the memory system (total minus
	// the recorded compute gaps).
	MemCycles int64
}

// Replay issues the trace through the given core, honoring the recorded
// compute gaps between operations. Replaying the same trace against
// machines with different memory-controller defenses isolates exactly the
// defense's latency contribution.
func Replay(t *Trace, core *sim.Core) ReplayResult {
	start := core.Now()
	var gaps int64
	for _, r := range t.Records {
		core.Advance(r.Gap)
		gaps += r.Gap
		if r.Write {
			core.Hierarchy().Store(core.Now(), r.Addr, r.PC)
			core.Advance(1)
		} else {
			core.Load(r.Addr, r.PC)
		}
	}
	total := core.Now() - start
	return ReplayResult{
		Cycles:    total,
		Accesses:  int64(len(t.Records)),
		MemCycles: total - gaps,
	}
}

// Recorder captures an access stream while forwarding it to a core, so a
// workload can be traced by running it once.
type Recorder struct {
	core    *sim.Core
	trace   *Trace
	lastEnd int64
}

// NewRecorder wraps a core; accesses issued through Load/Store are both
// executed and recorded.
func NewRecorder(core *sim.Core) *Recorder {
	return &Recorder{core: core, trace: &Trace{}, lastEnd: core.Now()}
}

// Load executes and records a load.
func (r *Recorder) Load(addr, pc uint64) {
	gap := r.core.Now() - r.lastEnd
	if gap < 0 {
		gap = 0
	}
	r.core.Load(addr, pc)
	r.trace.Append(Record{Gap: gap, Addr: addr, PC: pc})
	r.lastEnd = r.core.Now()
}

// Store executes and records a store.
func (r *Recorder) Store(addr, pc uint64) {
	gap := r.core.Now() - r.lastEnd
	if gap < 0 {
		gap = 0
	}
	r.core.Hierarchy().Store(r.core.Now(), addr, pc)
	r.core.Advance(1)
	r.trace.Append(Record{Gap: gap, Addr: addr, PC: pc, Write: true})
	r.lastEnd = r.core.Now()
}

// Compute advances the core; the time is attributed to the next record's
// gap.
func (r *Recorder) Compute(cycles int64) {
	r.core.Advance(cycles)
}

// Trace returns the captured trace.
func (r *Recorder) Trace() *Trace { return r.trace }

package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/exp/pack"
)

// mustSpec parses a spec document or fails the test.
func mustSpec(t *testing.T, doc string) Spec {
	t.Helper()
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	return spec
}

// seedSpec returns a spec whose grid sweeps n distinct noise seeds —
// n unique cold runs nothing else in the test suite has cached.
func seedSpec(t *testing.T, n int) Spec {
	t.Helper()
	seeds := make([]string, n)
	for i := range seeds {
		seeds[i] = fmt.Sprint(1000 + i)
	}
	return mustSpec(t, `{"scenario": "covert-pnm", "grid": {"noise.seed": [`+
		strings.Join(seeds, ", ")+`]}}`)
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitSettled polls a job until it will produce no further results and
// returns its final info.
func waitSettled(t *testing.T, j *Job) JobInfo {
	t.Helper()
	waitFor(t, "job "+j.ID+" to settle", func() bool { return settled(j.Status()) })
	return j.Info()
}

// drainJobs waits for every job goroutine to flush its final journal
// record, the way the server's shutdown path always does before exiting.
// A job is observable as settled slightly before its terminal record
// lands, so a test that skips this would race the registry's background
// writes against directory cleanup or a subsequent Recover over the same
// journal.
func drainJobs(t testing.TB, js *Jobs) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := js.Quiesce(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestJournalRecoverRoundTrip pins the journal's happy path: records
// round-trip through Recover in sequence order with their last status
// attached, and the SEQ watermark wins over the highest spec number.
func TestJournalRecoverRoundTrip(t *testing.T) {
	jl, err := NewJournal(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	spec := mustSpec(t, `{"scenario": "covert-pnm"}`)
	if err := jl.RecordSeq(64); err != nil {
		t.Fatal(err)
	}
	// Written out of order: Recover must sort by sequence.
	if err := jl.RecordSpec("job-000002", spec); err != nil {
		t.Fatal(err)
	}
	if err := jl.RecordSpec("job-000001", spec); err != nil {
		t.Fatal(err)
	}
	if err := jl.RecordStatus("job-000001", journalStatus{Status: JobRunning, Completed: 3}); err != nil {
		t.Fatal(err)
	}

	seq, entries := jl.Recover()
	if seq != 64 {
		t.Fatalf("recovered seq = %d, want the SEQ watermark 64", seq)
	}
	if len(entries) != 2 || entries[0].ID != "job-000001" || entries[1].ID != "job-000002" {
		t.Fatalf("entries = %+v, want job-000001 then job-000002", entries)
	}
	if st := entries[0].Status; st.Status != JobRunning || st.Completed != 3 {
		t.Fatalf("job-000001 status = %+v", st)
	}
	// A missing status record recovers as the zero value (queued).
	if st := entries[1].Status; st.Status != "" || st.Completed != 0 {
		t.Fatalf("job-000002 status = %+v, want zero", st)
	}
}

// TestJournalHealsCorruption pins the healing contract: corrupt specs are
// dropped (their files deleted, their sequence numbers still advancing
// the watermark), corrupt statuses are deleted with the job surviving as
// queued, orphaned statuses and stray temp files are removed, foreign
// files are left alone — and a second Recover over the healed directory
// is clean.
func TestJournalHealsCorruption(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "jobs")
	jl, err := NewJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	spec := mustSpec(t, `{"scenario": "covert-pnm"}`)
	running := journalStatus{Status: JobRunning, Completed: 1}
	for _, id := range []string{"job-000001", "job-000002", "job-000003"} {
		if err := jl.RecordSpec(id, spec); err != nil {
			t.Fatal(err)
		}
		if err := jl.RecordStatus(id, running); err != nil {
			t.Fatal(err)
		}
	}
	// job 2: torn status record. job 3: torn spec record.
	truncate := func(path string) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)-3], 0o644); err != nil {
			t.Fatal(err)
		}
	}
	truncate(jl.statusPath("job-000002"))
	truncate(jl.specPath("job-000003"))
	// Orphaned status (its spec never landed) and a stray mid-write temp.
	if err := jl.RecordStatus("job-000004", running); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, ".tmp-crashed"), []byte("partial"), 0o644); err != nil {
		t.Fatal(err)
	}
	// A foreign file the journal never wrote must survive untouched.
	foreign := filepath.Join(dir, "NOTES.txt")
	if err := os.WriteFile(foreign, []byte("keep"), 0o644); err != nil {
		t.Fatal(err)
	}

	seq, entries := jl.Recover()
	if seq != 3 {
		t.Fatalf("recovered seq = %d, want 3 (highest spec, corrupt included)", seq)
	}
	if len(entries) != 2 || entries[0].ID != "job-000001" || entries[1].ID != "job-000002" {
		t.Fatalf("entries = %+v, want jobs 1 and 2", entries)
	}
	if st := entries[0].Status; st != running {
		t.Fatalf("job-000001 status = %+v", st)
	}
	if st := entries[1].Status; st.Status != "" {
		t.Fatalf("job-000002 corrupt status recovered as %+v, want zero (queued)", st)
	}
	if n := jl.corruptCount(); n != 2 {
		t.Fatalf("corrupt_dropped = %d, want 2 (one spec, one status)", n)
	}
	for _, path := range []string{
		jl.specPath("job-000003"), jl.statusPath("job-000003"),
		jl.statusPath("job-000004"), filepath.Join(dir, ".tmp-crashed"),
	} {
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s survived healing", path)
		}
	}
	if _, err := os.Stat(foreign); err != nil {
		t.Fatalf("foreign file removed: %v", err)
	}

	// Healed means healed: the next boot sees a clean journal.
	jl2, err := NewJournal(dir)
	if err != nil {
		t.Fatal(err)
	}
	seq2, entries2 := jl2.Recover()
	if seq2 != seq || len(entries2) != 2 || jl2.corruptCount() != 0 {
		t.Fatalf("second Recover: seq=%d entries=%d corrupt=%d, want %d/2/0",
			seq2, len(entries2), jl2.corruptCount(), seq)
	}
}

// TestJournalCorruptSeqFallsBack pins the watermark's own healing: a torn
// SEQ record is deleted and allocation resumes above the highest spec on
// disk, so IDs still never regress.
func TestJournalCorruptSeqFallsBack(t *testing.T) {
	jl, err := NewJournal(filepath.Join(t.TempDir(), "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	if err := jl.RecordSeq(64); err != nil {
		t.Fatal(err)
	}
	if err := jl.RecordSpec("job-000007", mustSpec(t, `{"scenario": "covert-pnm"}`)); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(jl.seqPath(), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	seq, entries := jl.Recover()
	if seq != 7 || len(entries) != 1 {
		t.Fatalf("recovered seq=%d entries=%d, want 7/1 (spec scan fallback)", seq, len(entries))
	}
	if jl.corruptCount() != 1 {
		t.Fatalf("corrupt_dropped = %d, want 1", jl.corruptCount())
	}
	// The repaired watermark is itself durable: a second crash right after
	// this boot still cannot regress below the scanned sequence.
	data, err := os.ReadFile(jl.seqPath())
	if err != nil {
		t.Fatalf("repaired SEQ: %v", err)
	}
	if payload, ok := decodeRecord(journalMagic, data); !ok || string(payload) != "7" {
		t.Fatalf("repaired SEQ = %q (ok=%v), want 7", payload, ok)
	}
}

// TestCrashAtEveryWriteBoundary is the fault-injection acceptance test,
// run once per store backend: for each write boundary in the durability
// path, every write from that boundary onward fails (disk state =
// exactly the writes before the crash), the in-memory registry is
// discarded, and a fresh registry recovers over the same directories.
// Whatever the crash point, recovery never produces a corrupt record,
// never loses an ID to reuse, and never duplicates a job.
//
// The files backend has one store boundary (store.write); the pack
// backend has two: pack.append (the needle write) and pack.index (the
// index persist — the pack.index-only case is the interesting one, where
// appends land durably but the index write dies, so a reboot must
// rebuild them by scanning the bundle tail). pack.compact.swap is
// exercised by the pack package's own crash tests; compaction never runs
// in the submit path.
func TestCrashAtEveryWriteBoundary(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	type backend struct {
		name       string
		boundaries []string
		// open returns the store plus a snapshot func for its error counter.
		open func(t *testing.T, dir string) (ResultStore, func() int64)
	}
	backends := []backend{
		{
			name:       "files",
			boundaries: []string{"journal.seq", "journal.spec", "journal.status", "store.write"},
			open: func(t *testing.T, dir string) (ResultStore, func() int64) {
				st, err := NewStore(filepath.Join(dir, "store"))
				if err != nil {
					t.Fatal(err)
				}
				return st, func() int64 { return st.Stats().Errors }
			},
		},
		{
			name:       "pack",
			boundaries: []string{"journal.seq", "journal.spec", "journal.status", "pack.append", "pack.index"},
			open: func(t *testing.T, dir string) (ResultStore, func() int64) {
				// Index persist on every mutation so the pack.index boundary
				// fires during the sweep, not just at Close; no background
				// goroutine so the crash schedule stays deterministic.
				st, err := pack.Open(filepath.Join(dir, "store"),
					pack.WithIndexEvery(1), pack.WithAuditInterval(0))
				if err != nil {
					t.Fatal(err)
				}
				return st, func() int64 { return st.PackStats().Errors }
			},
		},
	}
	for _, be := range backends {
		disarm := func() {
			for _, name := range be.boundaries {
				setFailpoint(name, nil)
			}
		}
		for k, crashAt := range be.boundaries {
			t.Run(be.name+"/"+crashAt, func(t *testing.T) {
				dir := t.TempDir()
				spec := seedSpec(t, 2)

				// Process one: crash (fail all writes) from boundary k onward.
				injected := errors.New("injected crash")
				for _, name := range be.boundaries[k:] {
					setFailpoint(name, func() error { return injected })
				}
				defer disarm()
				store1, store1Errors := be.open(t, dir)
				jl1, err := NewJournal(filepath.Join(dir, "jobs"))
				if err != nil {
					t.Fatal(err)
				}
				js1 := NewJobs(NewEngine(WithStore(store1)), 2, 0, jl1)
				j, err := js1.Submit(spec)
				var oldID string
				if crashAt == "journal.seq" {
					// The ID-allocation write is the one non-negotiable: if the
					// watermark cannot land, no ID may escape.
					if !errors.Is(err, ErrJournalUnavailable) {
						t.Fatalf("Submit with failed SEQ write = %v, want ErrJournalUnavailable", err)
					}
				} else {
					if err != nil {
						t.Fatalf("Submit: %v", err)
					}
					oldID = j.ID
					// Spec/status/store writes are best-effort: the job still runs
					// (in-memory cache), and every failure is counted — journal
					// failures in the registry stats, store failures in the
					// store's own.
					if info := waitSettled(t, j); info.Status != JobDone {
						t.Fatalf("job under injected write failures = %+v", info)
					}
					if strings.HasPrefix(crashAt, "journal.") && js1.Stats().JournalErrors == 0 {
						t.Fatal("failed journal writes were not counted")
					}
					if store1Errors() == 0 {
						t.Fatal("failed store writes were not counted")
					}
				}

				// Reboot: failures disarmed, fresh registry over the same dirs.
				// Draining first makes the crashed process's disk state final —
				// exactly what a real crash leaves — instead of racing its last
				// journal write against the recovery scan. The crashed store is
				// abandoned, never closed, like a real crash.
				drainJobs(t, js1)
				disarm()
				store2, _ := be.open(t, dir)
				jl2, err := NewJournal(filepath.Join(dir, "jobs"))
				if err != nil {
					t.Fatal(err)
				}
				js2 := NewJobs(NewEngine(WithStore(store2)), 2, 0, jl2)
				resumed := js2.Recover()

				// Partial disk states decode clean or not at all — recovery must
				// never see (or serve) a corrupt record.
				if n := js2.Stats().JournalCorruptDropped; n != 0 {
					t.Fatalf("recovery dropped %d corrupt records; crash must leave records absent or complete", n)
				}
				switch crashAt {
				case "journal.seq", "journal.spec":
					// Nothing (or only the watermark) landed: no job to resume.
					if resumed != 0 {
						t.Fatalf("resumed %d jobs from an empty journal", resumed)
					}
				case "journal.status":
					// Spec landed, status did not: the job comes back queued.
					if resumed != 1 {
						t.Fatalf("resumed = %d, want 1", resumed)
					}
					j2, ok := js2.Get(oldID)
					if !ok {
						t.Fatalf("recovered registry does not track %s", oldID)
					}
					info := waitSettled(t, j2)
					if info.Status != JobDone || !info.Resumed || info.ID != oldID {
						t.Fatalf("recovered job = %+v", info)
					}
				case "store.write", "pack.append", "pack.index":
					// The terminal status record landed: boot retires it.
					if resumed != 0 || js2.Stats().Retired != 1 {
						t.Fatalf("resumed=%d retired=%d, want 0/1", resumed, js2.Stats().Retired)
					}
				}
				if crashAt == "pack.index" {
					// Appends landed, only the index write died: the rebooted
					// store must have rebuilt every run by scanning the bundle
					// tail past the last durable index.
					runs, err := spec.Expand()
					if err != nil {
						t.Fatal(err)
					}
					for _, r := range runs {
						if _, ok := store2.Get(context.Background(), r.Key); !ok {
							t.Fatalf("run %s lost: bundle tail not rescanned after index-write crash", r.Key)
						}
					}
				}

				// The watermark survived whatever happened: a fresh submission can
				// never reuse an ID the crashed process may have handed out.
				fresh, err := js2.Submit(seedSpec(t, 1))
				if err != nil {
					t.Fatal(err)
				}
				if fresh.ID == oldID && oldID != "" {
					t.Fatalf("recovered registry reissued ID %s", oldID)
				}
				if oldID != "" && fresh.seq <= j.seq {
					t.Fatalf("fresh seq %d did not advance past crashed seq %d", fresh.seq, j.seq)
				}
				waitSettled(t, fresh)
				drainJobs(t, js2)
			})
		}
	}
}

// TestGracefulQuiesceAndResume is the end-to-end drain contract at the
// registry level, race-clean at 8 workers: a sweep interrupted mid-flight
// by Quiesce journals a resumable state, rejects new submissions while
// draining, and a second registry over the same store and journal resumes
// it under the same ID — re-simulating only the one run the "crash" lost,
// with byte-identical results.
func TestGracefulQuiesceAndResume(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	dir := t.TempDir()
	const total = 16
	spec := seedSpec(t, total)
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}

	// Process one: run the sweep with run 0 parked so "interrupted with
	// exactly one run outstanding" is a deterministic state.
	store1, err := NewStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	jl1, err := NewJournal(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	eng1 := NewEngine(WithStore(store1))
	js1 := NewJobs(eng1, 8, 0, jl1)
	release := blockRun(eng1, runs[0].Key)
	j, err := js1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "all unblocked runs to finish", func() bool {
		return j.Info().Completed == total-1
	})

	quiesced := make(chan error, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	go func() { quiesced <- js1.Quiesce(ctx) }()
	// Quiesce cancels the job before waiting on it; only then release the
	// parked run (with an error — the canceled sweep ignores it, and the
	// resumed engine must re-simulate this run for real).
	waitFor(t, "quiesce to interrupt the job", func() bool { return j.ctx.Err() != nil })
	if _, err := js1.Submit(seedSpec(t, 1)); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("Submit during drain = %v, want ErrShuttingDown", err)
	}
	release(nil, errors.New("interrupted before this run completed"))
	if err := <-quiesced; err != nil {
		t.Fatalf("Quiesce: %v", err)
	}

	info := j.Info()
	if info.Status != JobInterrupted || info.Completed != total-1 {
		t.Fatalf("drained job = %+v, want interrupted with %d runs", info, total-1)
	}
	// Settled-but-not-terminal: waiters unblock (a stream client gets its
	// trailing interrupted line instead of hanging into the drain window).
	if _, ok := j.WaitRun(context.Background(), 0); ok {
		t.Fatal("WaitRun returned a result for the interrupted run")
	}
	if !errors.Is(j.Err(), ErrJobInterrupted) {
		t.Fatalf("interrupted job Err = %v", j.Err())
	}

	// Process two: fresh store/journal/engine over the same directories.
	store2, err := NewStore(filepath.Join(dir, "store"))
	if err != nil {
		t.Fatal(err)
	}
	jl2, err := NewJournal(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(WithStore(store2))
	js2 := NewJobs(eng2, 8, 0, jl2)
	if n := js2.Recover(); n != 1 {
		t.Fatalf("Recover resumed %d jobs, want 1", n)
	}
	j2, ok := js2.Get(j.ID)
	if !ok {
		t.Fatalf("recovered registry does not track %s", j.ID)
	}
	final := waitSettled(t, j2)
	if final.Status != JobDone || !final.Resumed || final.Completed != total {
		t.Fatalf("resumed job = %+v", final)
	}
	// Recovery cost is proportional to lost work: the 15 stored runs were
	// skipped, only the parked one was simulated.
	if final.Hits != total-1 || final.Misses != 1 {
		t.Fatalf("resumed job hits=%d misses=%d, want %d/1", final.Hits, final.Misses, total-1)
	}
	st := js2.Stats()
	if st.Resumed != 1 || st.RunsSkippedOnResume != int64(total-1) {
		t.Fatalf("stats resumed=%d runs_skipped_on_resume=%d, want 1/%d",
			st.Resumed, st.RunsSkippedOnResume, total-1)
	}

	// Byte identity: the resumed job's runs match a synchronous sweep of
	// the same spec, run by run, and the spec keys agree.
	sweep, err := eng2.RunSpec(context.Background(), spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	if final.SpecKey == "" || final.SpecKey != sweep.SpecKey {
		t.Fatalf("spec keys differ: job %q vs sweep %q", final.SpecKey, sweep.SpecKey)
	}
	for i := 0; i < total; i++ {
		rr, ok := j2.WaitRun(context.Background(), i)
		if !ok {
			t.Fatalf("resumed job missing run %d", i)
		}
		got, err := json.Marshal(rr)
		if err != nil {
			t.Fatal(err)
		}
		want, err := json.Marshal(sweep.Runs[i])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("resumed run %d differs from synchronous sweep:\n got %s\nwant %s", i, got, want)
		}
	}

	// The terminal record lands in the journal, so a third boot (after the
	// second registry drains, like its server would) has nothing to resume
	// — it retires the finished record.
	drainJobs(t, js2)
	js3 := NewJobs(NewEngine(WithStore(store2)), 8, 0, jl2)
	if n := js3.Recover(); n != 0 {
		t.Fatalf("third boot resumed %d jobs, want 0", n)
	}
	if js3.Stats().Retired != 1 {
		t.Fatalf("third boot retired = %d, want 1", js3.Stats().Retired)
	}
}

// TestCancelBeatsInterrupt pins the precedence contract: a job the user
// canceled stays canceled through a drain and a restart — an acknowledged
// DELETE must never resurrect as a resumed job.
func TestCancelBeatsInterrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	dir := t.TempDir()
	spec := seedSpec(t, 2)
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	jl, err := NewJournal(filepath.Join(dir, "jobs"))
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	js := NewJobs(eng, 2, 0, jl)
	release := blockRun(eng, runs[0].Key)
	j, err := js.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "job to start", func() bool { return j.Status() == JobRunning })
	j.Cancel()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- js.Quiesce(ctx) }()
	release(nil, errors.New("unblocked"))
	if err := <-done; err != nil {
		t.Fatalf("Quiesce: %v", err)
	}
	if st := j.Status(); st != JobCanceled {
		t.Fatalf("canceled-then-drained job = %q, want canceled", st)
	}

	// The journaled record is terminal: a restart retires it, resumes
	// nothing.
	js2 := NewJobs(NewEngine(), 2, 0, jl)
	if n := js2.Recover(); n != 0 {
		t.Fatalf("restart resumed %d jobs after a user cancel", n)
	}
	if js2.Stats().Retired != 1 {
		t.Fatalf("restart retired = %d, want 1", js2.Stats().Retired)
	}
}

// TestRunPanicBecomesFailedRun pins the per-run panic boundary: a
// panicking simulation fails its run (and so its sweep or job) with the
// panic message and stack, while the worker pool, the registry, and the
// process all survive to run the next spec.
func TestRunPanicBecomesFailedRun(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	setFailpoint("engine.run", func() error { panic("injected simulator panic") })
	defer setFailpoint("engine.run", nil)

	eng := NewEngine()
	js := NewJobs(eng, 2, 0, nil)
	j, err := js.Submit(seedSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	info := waitSettled(t, j)
	if info.Status != JobFailed {
		t.Fatalf("panicking job = %+v, want failed", info)
	}
	if !strings.Contains(info.Error, "injected simulator panic") || !strings.Contains(info.Error, "panicked") {
		t.Fatalf("job error does not carry the panic: %q", info.Error)
	}

	// The pool survived: with the panic disarmed, the same registry runs
	// the next job to completion.
	setFailpoint("engine.run", nil)
	j2, err := js.Submit(seedSpec(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	if info := waitSettled(t, j2); info.Status != JobDone {
		t.Fatalf("job after recovered panic = %+v, want done", info)
	}
}

// TestSubmitRetryAfterHeader pins the 429 contract at the HTTP surface: a
// registry full of live jobs rejects with the structured too_many_jobs
// envelope plus a Retry-After hint.
func TestSubmitRetryAfterHeader(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	spec := seedSpec(t, 1)
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	eng := NewEngine()
	srv := NewServer(eng, WithWorkers(1), WithMaxJobs(1))
	h := srv.Handler()
	release := blockRun(eng, runs[0].Key)
	defer release(json.RawMessage(`{}`), nil)

	doc, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	if rec := doRequest(t, h, http.MethodPost, "/v1/jobs", string(doc)); rec.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d: %s", rec.Code, rec.Body)
	}
	rec := doRequest(t, h, http.MethodPost, "/v1/jobs", string(doc))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("second submit = %d, want 429", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
	var env struct {
		Err struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Err.Code != "too_many_jobs" {
		t.Fatalf("429 envelope = %s (%v)", rec.Body, err)
	}
}

// BenchmarkJobResume measures crash-recovery cost as a function of the
// work actually lost: a 32-run sweep is resumed over a store already
// holding a fraction of its results, so recovery time should scale with
// the missing fraction, not the sweep size (stored runs are skipped via
// store hits). Recorded in docs/benchmark.md.
func BenchmarkJobResume(b *testing.B) {
	seeds := make([]string, 32)
	for i := range seeds {
		seeds[i] = fmt.Sprint(9000 + i)
	}
	doc := `{"scenario": "covert-pnm", "grid": {"noise.seed": [` + strings.Join(seeds, ", ") + `]}}`
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		b.Fatal(err)
	}
	runs, err := spec.Expand()
	if err != nil {
		b.Fatal(err)
	}
	// One reference sweep supplies the blobs used to prepopulate stores.
	sweep, err := NewEngine().RunSpec(context.Background(), spec, 0)
	if err != nil {
		b.Fatal(err)
	}
	blobs := make(map[string]json.RawMessage, len(sweep.Runs))
	for _, rr := range sweep.Runs {
		blobs[rr.Key] = rr.Report
	}

	for _, frac := range []float64{0, 0.5, 0.9} {
		stored := int(frac * float64(len(runs)))
		b.Run(fmt.Sprintf("stored=%d/%d", stored, len(runs)), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				dir := b.TempDir()
				store, err := NewStore(filepath.Join(dir, "store"))
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range runs[:stored] {
					store.Put(context.Background(), r.Key, blobs[r.Key])
				}
				jl, err := NewJournal(filepath.Join(dir, "jobs"))
				if err != nil {
					b.Fatal(err)
				}
				if err := jl.RecordSeq(seqChunk); err != nil {
					b.Fatal(err)
				}
				if err := jl.RecordSpec("job-000001", spec); err != nil {
					b.Fatal(err)
				}
				if err := jl.RecordStatus("job-000001", journalStatus{
					Status: JobInterrupted, Completed: stored,
				}); err != nil {
					b.Fatal(err)
				}
				js := NewJobs(NewEngine(WithStore(store)), 0, 0, jl)
				b.StartTimer()

				if n := js.Recover(); n != 1 {
					b.Fatalf("resumed %d jobs", n)
				}
				j, ok := js.Get("job-000001")
				if !ok {
					b.Fatal("recovered job missing")
				}
				for r := range runs {
					if _, ok := j.WaitRun(context.Background(), r); !ok {
						b.Fatalf("resumed job lost run %d", r)
					}
				}
				for !settled(j.Status()) {
					time.Sleep(50 * time.Microsecond)
				}
				if st := j.Status(); st != JobDone {
					b.Fatalf("resumed job = %q", st)
				}
				b.StopTimer()
				drainJobs(b, js)
			}
		})
	}
}

package exp

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/pkg/api"
)

// pollJob GETs a job's status until it reaches a terminal state.
func pollJob(t *testing.T, h http.Handler, id string) JobInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		rec := doRequest(t, h, http.MethodGet, "/v1/jobs/"+id, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("job status = %d: %s", rec.Code, rec.Body)
		}
		var info JobInfo
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		if api.JobTerminal(info.Status) {
			return info
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in %q", id, info.Status)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestJobLifecycle drives the full submit → poll → stream contract: a
// spec submitted as a job produces, line for line, the same RunResults as
// the synchronous POST /v1/run, with a 202 + Location up front and a
// terminal status document at the end.
func TestJobLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	srv := NewServer(NewEngine(), WithWorkers(2))
	h := srv.Handler()
	spec := `{
		"scenario": "covert-pnm",
		"grid": {"llc_bytes": [4194304, 8388608]}
	}`

	sub := doRequest(t, h, http.MethodPost, "/v1/jobs", spec)
	if sub.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", sub.Code, sub.Body)
	}
	var queued JobInfo
	if err := json.Unmarshal(sub.Body.Bytes(), &queued); err != nil {
		t.Fatal(err)
	}
	if queued.ID == "" || queued.Runs != 2 {
		t.Fatalf("queued info: %+v", queued)
	}
	if loc := sub.Header().Get("Location"); loc != "/v1/jobs/"+queued.ID {
		t.Fatalf("Location = %q", loc)
	}

	done := pollJob(t, h, queued.ID)
	if done.Status != JobDone || done.Completed != 2 || done.Error != "" {
		t.Fatalf("terminal info: %+v", done)
	}
	if done.Hits != 0 || done.Misses != 2 {
		t.Fatalf("cold job hits=%d misses=%d, want 0/2", done.Hits, done.Misses)
	}
	if done.SpecKey == "" {
		t.Fatal("terminal info missing spec_key")
	}

	// The stream replays every RunResult as NDJSON, in expansion order,
	// byte-identical to the runs the synchronous API returns.
	runRes := doRequest(t, h, http.MethodPost, "/v1/run", spec)
	var sweep SweepResult
	if err := json.Unmarshal(runRes.Body.Bytes(), &sweep); err != nil {
		t.Fatal(err)
	}
	stream := doRequest(t, h, http.MethodGet, "/v1/jobs/"+queued.ID+"/stream", "")
	if stream.Code != http.StatusOK {
		t.Fatalf("stream = %d: %s", stream.Code, stream.Body)
	}
	if ct := stream.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream Content-Type = %q", ct)
	}
	lines := strings.Split(strings.TrimSuffix(stream.Body.String(), "\n"), "\n")
	if len(lines) != 2 {
		t.Fatalf("stream has %d lines, want 2:\n%s", len(lines), stream.Body)
	}
	for i, line := range lines {
		want, err := json.Marshal(sweep.Runs[i])
		if err != nil {
			t.Fatal(err)
		}
		if line != string(want) {
			t.Fatalf("stream line %d:\n got %s\nwant %s", i, line, want)
		}
	}

	// A repeated job is served from cache and says so.
	again := doRequest(t, h, http.MethodPost, "/v1/jobs", spec)
	var queued2 JobInfo
	if err := json.Unmarshal(again.Body.Bytes(), &queued2); err != nil {
		t.Fatal(err)
	}
	warm := pollJob(t, h, queued2.ID)
	if warm.Hits != 2 || warm.Misses != 0 {
		t.Fatalf("warm job hits=%d misses=%d, want 2/0", warm.Hits, warm.Misses)
	}

	// Unknown jobs and malformed specs fail loudly.
	if rec := doRequest(t, h, http.MethodGet, "/v1/jobs/job-999999", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", rec.Code)
	}
	if rec := doRequest(t, h, http.MethodGet, "/v1/jobs/job-999999/stream", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job stream = %d, want 404", rec.Code)
	}
	if rec := doRequest(t, h, http.MethodPost, "/v1/jobs", `{"scenario": "covert-warp"}`); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown scenario job = %d, want 404", rec.Code)
	}
	if rec := doRequest(t, h, http.MethodPost, "/v1/jobs", `{"scenario": `); rec.Code != http.StatusBadRequest {
		t.Fatalf("malformed job spec = %d, want 400", rec.Code)
	}
}

// TestJobsConcurrentLifecycle is the acceptance-criteria test for the
// async API: 8 concurrent clients each run the full submit → stream →
// poll lifecycle for one spec, every stream is byte-identical, and the
// deduped cache still simulated each unique run exactly once. Run under
// -race via make race.
func TestJobsConcurrentLifecycle(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	srv := NewServer(NewEngine(), WithWorkers(2))
	h := srv.Handler()
	spec := `{
		"scenario": "covert-pnm",
		"grid": {"llc_bytes": [4194304, 8388608]}
	}`
	const workers = 8

	start := make(chan struct{})
	var wg sync.WaitGroup
	streams := make([][]byte, workers)
	failures := make([]error, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			sub := doRequest(t, h, http.MethodPost, "/v1/jobs", spec)
			if sub.Code != http.StatusAccepted {
				failures[i] = fmt.Errorf("submit = %d: %s", sub.Code, sub.Body)
				return
			}
			var info JobInfo
			if err := json.Unmarshal(sub.Body.Bytes(), &info); err != nil {
				failures[i] = err
				return
			}
			// Stream first: it blocks until every run lands, which also
			// exercises WaitRun against live execution.
			stream := doRequest(t, h, http.MethodGet, "/v1/jobs/"+info.ID+"/stream", "")
			if stream.Code != http.StatusOK {
				failures[i] = fmt.Errorf("stream = %d", stream.Code)
				return
			}
			streams[i] = stream.Body.Bytes()
			final := pollJob(t, h, info.ID)
			if final.Status != JobDone || final.Completed != 2 {
				failures[i] = fmt.Errorf("terminal info: %+v", final)
			}
		}(i)
	}
	close(start)
	wg.Wait()
	for i, err := range failures {
		if err != nil {
			t.Fatalf("worker %d: %v", i, err)
		}
	}
	for i := 1; i < workers; i++ {
		if !bytes.Equal(streams[i], streams[0]) {
			t.Fatalf("worker %d stream differs from worker 0", i)
		}
	}
	if c := srv.engine.Cache().Stats().Computes; c != 2 {
		t.Fatalf("computes = %d, want exactly one simulation per unique run (2)", c)
	}
	st := srv.jobs.Stats()
	if st.Submitted != workers || st.Completed != workers || st.Failed != 0 {
		t.Fatalf("job stats: %+v", st)
	}
}

// blockRun parks all computations of key behind a manually controlled
// flight entry, returning a release function that resolves every waiter
// with the given blob or error. The resolved entry is left in the flight
// map so a Compute arriving after release still sees the synthetic
// result instead of simulating. This makes "a job that is still running"
// (and "a run that failed") a deterministic state instead of a race
// against the simulator.
func blockRun(eng *Engine, key string) (release func(blob json.RawMessage, err error)) {
	call := &flightCall{done: make(chan struct{})}
	eng.cache.flightMu.Lock()
	eng.cache.flight[key] = call
	eng.cache.flightMu.Unlock()
	return func(blob json.RawMessage, err error) {
		call.blob, call.err = blob, err
		if err == nil {
			// Mirror a real Compute leader, which stores its result before
			// waking waiters: job streams rebuild their lines from the cache.
			eng.cache.Put(context.Background(), key, blob)
		}
		close(call.done)
	}
}

// TestJobsRegistryBound pins the FIFO retirement contract: terminal jobs
// retire oldest-first to admit new submissions, while a registry full of
// live jobs rejects with 429 rather than evicting work in progress.
func TestJobsRegistryBound(t *testing.T) {
	eng := NewEngine()
	jobs := NewJobs(eng, 1, 1, nil)
	spec, err := ParseSpec([]byte(`{"scenario": "rowbuffer"}`))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	release := blockRun(eng, runs[0].Key)

	// Job A blocks inside its single run; the registry (max 1) is now full
	// of non-terminal work, so a second submission must be rejected — A
	// cannot terminate while the flight entry is held, making this
	// deterministic rather than a race against the simulator.
	a, err := jobs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := jobs.Submit(spec); err == nil {
		t.Fatal("submit into a full live registry accepted")
	} else if status, code := statusFor(err); status != http.StatusTooManyRequests || code != api.CodeTooManyJobs {
		t.Fatalf("submit into a full live registry: status=%d code=%s (%v)", status, code, err)
	}

	release(json.RawMessage(`{"id":"fake"}`), nil)
	deadline := time.Now().Add(10 * time.Second)
	for !a.terminal() {
		if time.Now().After(deadline) {
			t.Fatal("job A never finished")
		}
		time.Sleep(time.Millisecond)
	}
	if info := a.Info(); info.Status != JobDone || info.Completed != 1 {
		t.Fatalf("job A terminal info: %+v", info)
	}

	// With A terminal, the next submission retires it FIFO.
	b, err := jobs.Submit(spec)
	if err != nil {
		t.Fatalf("submit after A finished: %v", err)
	}
	if _, ok := jobs.Get(a.ID); ok {
		t.Fatal("terminal job A not retired to admit B")
	}
	if _, ok := jobs.Get(b.ID); !ok {
		t.Fatal("job B missing from the registry")
	}
	st := jobs.Stats()
	if st.Rejected != 1 || st.Retired != 1 || st.Tracked != 1 {
		t.Fatalf("registry stats: %+v", st)
	}
}

// TestJobStreamFlushesIncrementally is the regression test for the
// statusRecorder flush passthrough: a client of the instrumented stream
// route must receive each NDJSON line as its run completes — over a real
// connection, before the job finishes — not buffered until the end.
func TestJobStreamFlushesIncrementally(t *testing.T) {
	eng := NewEngine()
	srv := NewServer(eng, WithWorkers(1))
	spec, err := ParseSpec([]byte(`{
		"scenario": "covert-pnm",
		"grid": {"llc_bytes": [4194304, 8388608]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Run 0 is a synthetic cache hit, run 1 is parked: the job emits its
	// first result immediately and then stays running until released.
	fakeA := json.RawMessage(`{"id":"fake-a"}`)
	fakeB := json.RawMessage(`{"id":"fake-b"}`)
	eng.cache.Put(context.Background(), runs[0].Key, fakeA)
	release := blockRun(eng, runs[1].Key)

	job, err := srv.jobs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + job.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// The first line must arrive while run 1 is still blocked. Without
	// Flush forwarding through the metrics middleware it would sit in the
	// server's buffer until the job completed, and this read would hang.
	type lineOrErr struct {
		line string
		err  error
	}
	rd := bufio.NewReader(resp.Body)
	readLine := make(chan lineOrErr, 2)
	go func() {
		for i := 0; i < 2; i++ {
			line, err := rd.ReadString('\n')
			readLine <- lineOrErr{line, err}
		}
	}()
	select {
	case got := <-readLine:
		if got.err != nil {
			t.Fatalf("reading first stream line: %v", got.err)
		}
		var rr RunResult
		if err := json.Unmarshal([]byte(got.line), &rr); err != nil {
			t.Fatalf("first line not a RunResult: %v (%q)", err, got.line)
		}
		if !bytes.Equal(rr.Report, fakeA) {
			t.Fatalf("first line report = %s", rr.Report)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("first stream line never flushed while the job was still running")
	}

	release(fakeB, nil)
	select {
	case got := <-readLine:
		if got.err != nil {
			t.Fatalf("reading second stream line: %v", got.err)
		}
		var rr RunResult
		if err := json.Unmarshal([]byte(got.line), &rr); err != nil {
			t.Fatalf("second line not a RunResult: %v (%q)", err, got.line)
		}
		if !bytes.Equal(rr.Report, fakeB) {
			t.Fatalf("second line report = %s", rr.Report)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second stream line never arrived after release")
	}
}

// TestJobStreamFailedSweep pins the failure contract: the stream carries
// every run that did finish — including runs that completed after the
// failing one — followed by a single {"error": ...} line, rather than
// truncating at the first unfinished index.
func TestJobStreamFailedSweep(t *testing.T) {
	eng := NewEngine()
	srv := NewServer(eng, WithWorkers(1))
	spec, err := ParseSpec([]byte(`{
		"scenario": "covert-pnm",
		"grid": {"llc_bytes": [4194304, 8388608, 16777216]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Run 0 is a synthetic cache hit, run 1 fails, run 2 still completes
	// (the pool drains every queued run even after an earlier error).
	fakeA := json.RawMessage(`{"id":"fake-a"}`)
	fakeC := json.RawMessage(`{"id":"fake-c"}`)
	eng.cache.Put(context.Background(), runs[0].Key, fakeA)
	blockRun(eng, runs[1].Key)(nil, fmt.Errorf("synthetic run failure"))
	blockRun(eng, runs[2].Key)(fakeC, nil)

	job, err := srv.jobs.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	h := srv.Handler()
	final := pollJob(t, h, job.ID)
	if final.Status != JobFailed || final.Completed != 2 {
		t.Fatalf("terminal info: %+v", final)
	}
	if !strings.Contains(final.Error, "synthetic run failure") {
		t.Fatalf("terminal error = %q", final.Error)
	}

	stream := doRequest(t, h, http.MethodGet, "/v1/jobs/"+job.ID+"/stream", "")
	lines := strings.Split(strings.TrimSuffix(stream.Body.String(), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("stream has %d lines, want 2 results + 1 error:\n%s", len(lines), stream.Body)
	}
	var rr RunResult
	if err := json.Unmarshal([]byte(lines[0]), &rr); err != nil || !bytes.Equal(rr.Report, fakeA) {
		t.Fatalf("line 0 = %q (%v)", lines[0], err)
	}
	if err := json.Unmarshal([]byte(lines[1]), &rr); err != nil || !bytes.Equal(rr.Report, fakeC) {
		t.Fatalf("line 1 should be the run that finished after the failure, got %q (%v)", lines[1], err)
	}
	var tail api.Envelope
	if err := json.Unmarshal([]byte(lines[2]), &tail); err != nil || tail.Err == nil {
		t.Fatalf("trailing line = %q (%v)", lines[2], err)
	}
	if tail.Err.Code != api.CodeRunFailed || !strings.Contains(tail.Err.Message, "synthetic run failure") {
		t.Fatalf("trailing error line = %+v, want code run_failed mentioning the failure", tail.Err)
	}
}

// flushRecorder counts flushes and the body length at each, so a test
// can see whether writes were flushed incrementally.
type flushRecorder struct {
	*httptest.ResponseRecorder
	flushedAt []int
}

func (f *flushRecorder) Flush() {
	f.flushedAt = append(f.flushedAt, f.Body.Len())
}

// TestInstrumentForwardsFlush pins the middleware contract directly: a
// handler behind instrument can reach the underlying Flusher both via a
// type assertion and via http.ResponseController (which unwraps).
func TestInstrumentForwardsFlush(t *testing.T) {
	srv := NewServer(NewEngine(), WithWorkers(1))
	rec := &flushRecorder{ResponseRecorder: httptest.NewRecorder()}
	h := srv.instrument(routeRun, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("first"))
		fl, ok := w.(http.Flusher)
		if !ok {
			t.Fatal("instrumented writer lost http.Flusher")
		}
		fl.Flush()
		w.Write([]byte("second"))
		if err := http.NewResponseController(w).Flush(); err != nil {
			t.Fatalf("ResponseController flush: %v", err)
		}
	})
	h(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	want := []int{len("first"), len("firstsecond")}
	if len(rec.flushedAt) != 2 || rec.flushedAt[0] != want[0] || rec.flushedAt[1] != want[1] {
		t.Fatalf("flush points = %v, want %v", rec.flushedAt, want)
	}
}

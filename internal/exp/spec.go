// Package exp is the experiment engine: it turns declarative JSON specs —
// a scenario name, sim.Config overrides, and a parameter grid — into
// concrete simulator runs, schedules them over a bounded worker pool, and
// memoizes every result in a content-addressed cache. Because the whole
// simulator is deterministic (per-core logical clocks, seeded noise, no
// wall-clock reads), a concrete run's canonical JSON identity maps to
// exactly one report, so repeated and overlapping sweeps are served from
// cache instead of re-simulated.
//
// The cache is built for concurrent serving: entries are sharded by key
// hash behind per-shard locks, and Cache.Compute coalesces identical
// in-flight runs (singleflight) so two clients requesting the same sweep
// at once trigger exactly one simulation. Determinism also makes reports
// safe to persist forever, so the cache can be layered over a durable
// disk Store (memory → disk → simulate) that lets a restarted server
// answer previously computed sweeps without re-simulating. Server wraps
// the engine in an HTTP API — synchronous sweeps on POST /v1/run,
// asynchronous ones through the bounded Jobs registry (POST /v1/jobs,
// polled and streamed as NDJSON) — whose experiment routes run behind a
// metrics middleware (request counts, error counts, latency histograms
// from internal/metrics) exported on GET /v1/metrics. The wire contract
// — request/response documents, job lifecycle states, and the structured
// error envelope — is the typed pkg/api package (see docs/api.md), and
// pkg/client is the Go SDK over it. cmd/impact-server exposes the engine
// over HTTP, cmd/impact-sweep drives it from spec files through the SDK,
// and cmd/impact-bench load-tests the serving layer.
package exp

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/figures"
	"repro/internal/sim"
	"repro/pkg/api"
)

// MaxRuns bounds how many concrete runs one spec may expand into on the
// synchronous path, so a malformed or hostile grid cannot wedge the
// server. The async job path streams runs through a lazy Expansion and
// affords the much larger MaxJobRuns.
const MaxRuns = 4096

// MaxJobRuns bounds lazily expanded (async job) sweeps. Lazy expansion
// never materializes the Cartesian product and results stream into the
// content-addressed store as they complete, so the bound exists only to
// keep one job from monopolizing a server indefinitely.
const MaxJobRuns = 1 << 20

// ErrUnknownScenario tags expansion failures caused by a scenario name
// that is not in the registry (servers map it to 404 rather than 400).
var ErrUnknownScenario = errors.New("exp: unknown scenario")

// ErrGridTooLarge tags specs whose grid expands past the endpoint's run
// bound. The run count is computed with overflow-safe arithmetic, so a
// grid sized to overflow int lands here instead of in a huge or negative
// allocation (servers map it to 400 with code grid_too_large).
var ErrGridTooLarge = errors.New("exp: grid too large")

// Spec is the engine-side form of an experiment sweep. Its wire shape is
// api.RunSpec — the two convert freely — with the expansion machinery
// (Expand, grid resolution, content addressing) layered on top here so
// pkg/api stays a pure contract package.
//
// Config is a sparse sim.Config document (snake_case JSON tags; see
// sim.FromJSON) deep-merged over the Table 2 defaults. Grid maps
// dot-separated config field paths — e.g. "llc_bytes" or "mem.defense" —
// to the list of values to sweep; the engine expands the Cartesian
// product of all grid fields into concrete runs.
type Spec api.RunSpec

// ParseSpec decodes a spec document, rejecting unknown fields so typos
// ("grids", "senario") fail loudly instead of silently running defaults.
func ParseSpec(data []byte) (Spec, error) {
	s, err := api.ParseRunSpec(data)
	if err != nil {
		return Spec{}, err
	}
	return Spec(s), nil
}

// Run is one concrete, fully resolved experiment: a scenario, a scale,
// and an exact sim.Config. Key is the hex SHA-256 of the run's canonical
// JSON document and is the content address of its report.
type Run struct {
	Scenario string
	Scale    figures.Scale
	Config   sim.Config
	// Params records this run's grid-point assignments (path -> canonical
	// JSON value) for labeling sweep output.
	Params map[string]string
	Key    string

	scn scenario
}

// resolve validates the spec's front matter — scenario, scale, config
// overlay — and returns the pieces expansion needs (shared by the eager
// Expand and the lazy Expansion).
func (s Spec) resolve() (scenario, figures.Scale, map[string]any, error) {
	scn, ok := scenarioByName(s.Scenario)
	if !ok {
		return scenario{}, 0, nil, fmt.Errorf("%w %q (known: %s)", ErrUnknownScenario, s.Scenario, strings.Join(ScenarioNames(), ", "))
	}
	scale, err := figures.ParseScale(s.Scale)
	if err != nil {
		return scenario{}, 0, nil, err
	}
	// Figure-replay scenarios build their own fixed machines; accepting
	// overrides or grids for them would produce runs labeled with
	// parameters that were never applied.
	if !scn.ConfigSensitive && (len(s.Config) > 0 || len(s.Grid) > 0) {
		return scenario{}, 0, nil, fmt.Errorf("exp: scenario %q replays a fixed paper artifact and ignores sim.Config; drop the config/grid fields", s.Scenario)
	}

	base, err := defaultConfigDoc()
	if err != nil {
		return scenario{}, 0, nil, err
	}
	if len(s.Config) > 0 {
		patch, err := decodeDoc(s.Config)
		if err != nil {
			return scenario{}, 0, nil, fmt.Errorf(`exp: spec field "config": %v`, err)
		}
		deepMerge(base, patch)
	}
	return scn, scale, base, nil
}

// Expand resolves the spec into concrete runs: grid fields are sorted
// lexicographically and the Cartesian product is walked row-major (last
// field fastest), so expansion order — and therefore sweep output — is a
// pure function of the spec.
func (s Spec) Expand() ([]Run, error) {
	scn, scale, base, err := s.resolve()
	if err != nil {
		return nil, err
	}

	// Sort the grid fields before validating them, so which error a bad
	// spec gets back is as deterministic as the expansion itself.
	paths := make([]string, 0, len(s.Grid))
	for path := range s.Grid {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	total := 1
	for _, path := range paths {
		vals := s.Grid[path]
		if len(vals) == 0 {
			return nil, fmt.Errorf(`exp: grid field %q has no values`, path)
		}
		// Guard the product before multiplying: total*len(vals) could
		// overflow int on an adversarial grid, and the quotient form
		// cannot (len(vals) >= 1, so the division is always defined).
		if total > MaxRuns/len(vals) {
			return nil, fmt.Errorf("%w: grid expands to more than %d runs", ErrGridTooLarge, MaxRuns)
		}
		total *= len(vals)
	}

	runs := make([]Run, 0, total)
	for idx := 0; idx < total; idx++ {
		cfgDoc := deepCopy(base)
		params := make(map[string]string, len(paths))
		stride := total
		for _, path := range paths {
			vals := s.Grid[path]
			stride /= len(vals)
			raw := vals[(idx/stride)%len(vals)]
			val, err := decodeValue(raw)
			if err != nil {
				return nil, fmt.Errorf("exp: grid field %q: %v", path, err)
			}
			if err := setPath(cfgDoc, path, val); err != nil {
				return nil, err
			}
			canon, err := json.Marshal(val)
			if err != nil {
				return nil, fmt.Errorf("exp: grid field %q: %v", path, err)
			}
			params[path] = string(canon)
		}
		run, err := newRun(scn, scale, cfgDoc, params)
		if err != nil {
			if len(params) == 0 {
				return nil, fmt.Errorf("exp: %w", err)
			}
			return nil, fmt.Errorf("exp: grid point %s: %w", FormatParams(params), err)
		}
		runs = append(runs, run)
	}
	return runs, nil
}

// gridAxis is one grid field of an Expansion: its decoded values and their
// canonical JSON labels, fixed at construction so RunAt never re-parses.
type gridAxis struct {
	path   string
	vals   []any
	labels []string
}

// Expansion is a lazily expanded spec: RunAt(i) materializes run i on
// demand in exactly the row-major order Expand uses (sorted grid paths,
// last field fastest), so run content addresses — and therefore sweep
// bodies — are byte-identical to the eager path's while a 10^5-run grid
// never allocates its full Cartesian product. Construction validates
// everything Expand would: the front matter, every grid value's JSON, and
// (by probing the first grid point) that the grid paths name real config
// fields the simulator accepts.
//
// An Expansion is immutable after construction and safe for concurrent
// RunAt calls: each call deep-copies the base document before applying its
// grid point.
type Expansion struct {
	scn   scenario
	scale figures.Scale
	base  map[string]any
	axes  []gridAxis
	total int
}

// Expansion resolves the spec into a lazy run iterator bounded by limit
// (MaxRuns for the synchronous path, MaxJobRuns for jobs).
func (s Spec) Expansion(limit int) (*Expansion, error) {
	scn, scale, base, err := s.resolve()
	if err != nil {
		return nil, err
	}

	paths := make([]string, 0, len(s.Grid))
	for path := range s.Grid {
		paths = append(paths, path)
	}
	sort.Strings(paths)

	total := 1
	axes := make([]gridAxis, 0, len(paths))
	for _, path := range paths {
		raws := s.Grid[path]
		if len(raws) == 0 {
			return nil, fmt.Errorf(`exp: grid field %q has no values`, path)
		}
		// Same overflow-safe product guard as Expand: divide, never
		// multiply unchecked.
		if total > limit/len(raws) {
			return nil, fmt.Errorf("%w: grid expands to more than %d runs", ErrGridTooLarge, limit)
		}
		total *= len(raws)
		ax := gridAxis{path: path, vals: make([]any, len(raws)), labels: make([]string, len(raws))}
		for i, raw := range raws {
			val, err := decodeValue(raw)
			if err != nil {
				return nil, fmt.Errorf("exp: grid field %q: %v", path, err)
			}
			canon, err := json.Marshal(val)
			if err != nil {
				return nil, fmt.Errorf("exp: grid field %q: %v", path, err)
			}
			ax.vals[i] = val
			ax.labels[i] = string(canon)
		}
		axes = append(axes, ax)
	}

	x := &Expansion{scn: scn, scale: scale, base: base, axes: axes, total: total}
	// Probe the first grid point now: lazy expansion moves setPath and
	// sim.FromJSON validation from submit time to run time, and a grid
	// whose paths misname config fields fails identically at every point —
	// catching it here keeps bad specs failing synchronously, like Expand.
	if _, err := x.RunAt(0); err != nil {
		return nil, err
	}
	return x, nil
}

// Total returns the number of runs the spec expands into (always >= 1).
func (x *Expansion) Total() int { return x.total }

// RunAt materializes run i in expansion order.
func (x *Expansion) RunAt(i int) (Run, error) {
	if i < 0 || i >= x.total {
		return Run{}, fmt.Errorf("exp: run index %d out of range [0,%d)", i, x.total)
	}
	cfgDoc := deepCopy(x.base)
	params := make(map[string]string, len(x.axes))
	stride := x.total
	for _, ax := range x.axes {
		stride /= len(ax.vals)
		j := (i / stride) % len(ax.vals)
		if err := setPath(cfgDoc, ax.path, ax.vals[j]); err != nil {
			return Run{}, err
		}
		params[ax.path] = ax.labels[j]
	}
	run, err := newRun(x.scn, x.scale, cfgDoc, params)
	if err != nil {
		if len(params) == 0 {
			return Run{}, fmt.Errorf("exp: %w", err)
		}
		return Run{}, fmt.Errorf("exp: grid point %s: %w", FormatParams(params), err)
	}
	return run, nil
}

// newRun validates one concrete config document and computes the run's
// content address.
func newRun(scn scenario, scale figures.Scale, cfgDoc map[string]any, params map[string]string) (Run, error) {
	cfgJSON, err := json.Marshal(cfgDoc)
	if err != nil {
		return Run{}, err
	}
	cfg, err := sim.FromJSON(cfgJSON)
	if err != nil {
		return Run{}, err
	}
	// The canonical document re-encodes the *decoded* config, so
	// equivalent spellings of one value ("1e3" vs "1000", string vs
	// ordinal enums) collapse to the same content address.
	canonCfg, err := cfg.ToJSON()
	if err != nil {
		return Run{}, err
	}
	canonical, err := json.Marshal(map[string]any{
		"scenario": scn.Name,
		"scale":    scale.String(),
		"config":   json.RawMessage(canonCfg),
	})
	if err != nil {
		return Run{}, err
	}
	sum := sha256.Sum256(canonical)
	return Run{
		Scenario: scn.Name,
		Scale:    scale,
		Config:   cfg,
		Params:   params,
		Key:      hex.EncodeToString(sum[:]),
		scn:      scn,
	}, nil
}

// FormatParams renders a grid point as "a=1 b=2" in sorted path order
// (the shared label form for engine errors and sweep output).
func FormatParams(params map[string]string) string {
	if len(params) == 0 {
		return "(no grid)"
	}
	paths := make([]string, 0, len(params))
	for p := range params {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	parts := make([]string, len(paths))
	for i, p := range paths {
		parts[i] = p + "=" + params[p]
	}
	return strings.Join(parts, " ")
}

// defaultConfigDoc returns sim.DefaultConfig as a canonical document.
func defaultConfigDoc() (map[string]any, error) {
	data, err := sim.DefaultConfig().ToJSON()
	if err != nil {
		return nil, err
	}
	return decodeDoc(data)
}

// decodeDoc decodes a JSON object, preserving numbers as json.Number so
// re-encoding does not round integers through float64.
func decodeDoc(data []byte) (map[string]any, error) {
	v, err := decodeValue(data)
	if err != nil {
		return nil, err
	}
	doc, ok := v.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("want a JSON object, got %s", data)
	}
	return doc, nil
}

// decodeValue decodes any JSON value with number literals preserved.
func decodeValue(data []byte) (any, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var v any
	if err := dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// deepMerge overlays src onto dst: nested objects merge recursively,
// everything else (including arrays) replaces wholesale.
func deepMerge(dst, src map[string]any) {
	//lint:ignore nodeterminism writes land on disjoint keys, so merge order commutes
	for k, sv := range src {
		if sm, ok := sv.(map[string]any); ok {
			if dm, ok := dst[k].(map[string]any); ok {
				deepMerge(dm, sm)
				continue
			}
		}
		dst[k] = sv
	}
}

// deepCopy clones a document so grid points never alias each other.
func deepCopy(doc map[string]any) map[string]any {
	out := make(map[string]any, len(doc))
	for k, v := range doc {
		if m, ok := v.(map[string]any); ok {
			out[k] = deepCopy(m)
		} else {
			out[k] = v
		}
	}
	return out
}

// setPath assigns a value at a dot-separated field path, creating missing
// intermediate objects (sim.FromJSON then rejects paths that do not name
// real config fields).
func setPath(doc map[string]any, path string, val any) error {
	segs := strings.Split(path, ".")
	cur := doc
	for _, seg := range segs[:len(segs)-1] {
		next, ok := cur[seg]
		if !ok {
			child := map[string]any{}
			cur[seg] = child
			cur = child
			continue
		}
		child, ok := next.(map[string]any)
		if !ok {
			return fmt.Errorf("exp: grid field %q: %q is not a config section", path, seg)
		}
		cur = child
	}
	cur[segs[len(segs)-1]] = val
	return nil
}

package exp

import "repro/internal/exp/fsio"

// The store and journal's durability primitives live in the shared
// internal/exp/fsio package (the pack engine builds on the same
// discipline); these aliases keep this package's call sites terse.

// atomicWrite publishes data at path so readers only ever observe the
// complete old or complete new contents; see fsio.AtomicWrite.
func atomicWrite(path string, data []byte) error { return fsio.AtomicWrite(path, data) }

// syncDir fsyncs a directory, making previously renamed (or removed)
// entries durable.
func syncDir(dir string) error { return fsio.SyncDir(dir) }

// ensureDir creates a directory chain and fsyncs the new entries into
// their parents; see fsio.EnsureDir.
func ensureDir(dir string) error { return fsio.EnsureDir(dir) }

// encodeRecord frames a payload under the shared checksummed-header
// discipline; see fsio.EncodeRecord.
func encodeRecord(magic string, payload []byte) []byte { return fsio.EncodeRecord(magic, payload) }

// decodeRecord validates a framed record against its header; see
// fsio.DecodeRecord.
func decodeRecord(magic string, data []byte) ([]byte, bool) { return fsio.DecodeRecord(magic, data) }

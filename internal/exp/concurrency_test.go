package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"sync"
	"testing"
)

// TestCacheCompute pins the singleflight contract on the cache alone:
// concurrent Compute calls for one key run fn exactly once, every caller
// gets the same bytes, and failed computations are not cached.
func TestCacheCompute(t *testing.T) {
	c := NewCache()
	release := make(chan struct{})
	var calls int
	fn := func() (json.RawMessage, error) {
		calls++ // safe: singleflight admits one executor at a time
		<-release
		return json.RawMessage(`{"v":1}`), nil
	}

	const waiters = 8
	var wg sync.WaitGroup
	blobs := make([]json.RawMessage, waiters)
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			blob, err := c.Compute(context.Background(), "k", fn)
			if err != nil {
				t.Error(err)
			}
			blobs[i] = blob
		}(i)
	}
	close(release)
	wg.Wait()
	if calls != 1 {
		t.Fatalf("fn ran %d times, want 1", calls)
	}
	for _, blob := range blobs {
		if string(blob) != `{"v":1}` {
			t.Fatalf("coalesced caller got %q", blob)
		}
	}
	st := c.Stats()
	if st.Computes != 1 || st.Stores != 1 {
		t.Fatalf("computes=%d stores=%d, want 1/1", st.Computes, st.Stores)
	}
	if st.DedupHits+1 > waiters {
		t.Fatalf("dedup_hits=%d exceeds waiter count", st.DedupHits)
	}

	// A cached key never reruns fn, even through Compute.
	if _, err := c.Compute(context.Background(), "k", func() (json.RawMessage, error) {
		t.Fatal("recomputed a cached key")
		return nil, nil
	}); err != nil {
		t.Fatal(err)
	}

	// Failures propagate to every coalesced caller and leave no entry, so
	// a retry gets a fresh computation.
	boom := errors.New("boom")
	if _, err := c.Compute(context.Background(), "bad", func() (json.RawMessage, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
	if _, ok := c.lookup("bad"); ok {
		t.Fatal("failed computation was cached")
	}
	blob, err := c.Compute(context.Background(), "bad", func() (json.RawMessage, error) { return json.RawMessage(`{}`), nil })
	if err != nil || string(blob) != `{}` {
		t.Fatalf("retry after failure: %q, %v", blob, err)
	}
}

// TestCacheComputePanic pins panic safety: a panicking fn must not wedge
// its key — the flight entry clears, waiters get an error instead of a
// nil report, and a retry computes fresh.
func TestCacheComputePanic(t *testing.T) {
	c := NewCache()
	entered := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		defer func() { recover() }() // a recovering caller above Compute
		c.Compute(context.Background(), "k", func() (json.RawMessage, error) {
			close(entered)
			<-release
			panic("boom")
		})
	}()
	<-entered
	// The leader is parked inside fn, so its flight entry is observable;
	// this is exactly what a concurrent waiter would latch onto.
	c.flightMu.Lock()
	call := c.flight["k"]
	c.flightMu.Unlock()
	if call == nil {
		t.Fatal("no flight entry while the leader is computing")
	}
	close(release)
	<-call.done // the waiter path: block until the leader resolves
	if call.err == nil || !strings.Contains(call.err.Error(), "panic") {
		t.Fatalf("waiter-visible error = %v, want the leader's panic surfaced", call.err)
	}
	<-done
	// The key is not wedged and nothing was cached: a retry computes fresh.
	if _, ok := c.lookup("k"); ok {
		t.Fatal("panicking computation left a cache entry")
	}
	blob, err := c.Compute(context.Background(), "k", func() (json.RawMessage, error) { return json.RawMessage(`{}`), nil })
	if err != nil || string(blob) != `{}` {
		t.Fatalf("retry after panic: %q, %v", blob, err)
	}
}

// TestConcurrentIdenticalRuns is the acceptance-criteria test for the
// sharded+deduped cache: 8 concurrent workers POSTing the same spec get
// byte-identical bodies while each unique run is simulated exactly once.
// Run under -race via make race.
func TestConcurrentIdenticalRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	srv := NewServer(NewEngine(), WithWorkers(2))
	h := srv.Handler()
	spec := `{
		"scenario": "covert-pnm",
		"grid": {"llc_bytes": [4194304, 8388608]}
	}`
	const workers = 8

	start := make(chan struct{})
	var wg sync.WaitGroup
	bodies := make([][]byte, workers)
	codes := make([]int, workers)
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			rec := doRequest(t, h, http.MethodPost, "/v1/run", spec)
			codes[i] = rec.Code
			bodies[i] = rec.Body.Bytes()
		}(i)
	}
	close(start)
	wg.Wait()

	for i := 0; i < workers; i++ {
		if codes[i] != http.StatusOK {
			t.Fatalf("worker %d status %d: %s", i, codes[i], bodies[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("worker %d body differs from worker 0", i)
		}
	}

	st := srv.engine.Cache().Stats()
	if st.Computes != 2 {
		t.Fatalf("computes = %d, want exactly one simulation per unique run (2)", st.Computes)
	}
	if st.Stores != 2 || st.Entries != 2 {
		t.Fatalf("stores=%d entries=%d, want 2/2", st.Stores, st.Entries)
	}
	// Every request either hit the cache outright or was coalesced onto the
	// in-flight computation; nobody simulated redundantly.
	if st.Hits+st.Misses != workers*2 {
		t.Fatalf("hits=%d misses=%d, want %d lookups total", st.Hits, st.Misses, workers*2)
	}
}

// TestObservabilityEndpointsDoNotPollute is the regression test for the
// /healthz + /v1/metrics isolation rule: scraping the observability
// endpoints must not touch the result cache or the per-route experiment
// counters.
func TestObservabilityEndpointsDoNotPollute(t *testing.T) {
	h := NewServer(NewEngine(), WithWorkers(1)).Handler()

	readMetrics := func() MetricsDoc {
		rec := doRequest(t, h, http.MethodGet, "/v1/metrics", "")
		if rec.Code != http.StatusOK {
			t.Fatalf("metrics = %d: %s", rec.Code, rec.Body)
		}
		var doc MetricsDoc
		if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
			t.Fatal(err)
		}
		return doc
	}

	// Scrape both observability endpoints repeatedly on a cold server.
	for i := 0; i < 5; i++ {
		if rec := doRequest(t, h, http.MethodGet, "/healthz", ""); rec.Code != http.StatusOK {
			t.Fatalf("healthz = %d", rec.Code)
		}
		readMetrics()
	}
	doc := readMetrics()
	if doc.Cache != (CacheStats{}) {
		t.Fatalf("observability scrapes polluted the cache counters: %+v", doc.Cache)
	}
	for route, m := range doc.Requests {
		if m.Requests != 0 || m.Errors != 0 {
			t.Fatalf("observability scrapes counted as %q traffic: %+v", route, m)
		}
	}

	// One real request registers in exactly one route's counters and the
	// cache; further scrapes leave everything untouched.
	if rec := doRequest(t, h, http.MethodGet, "/v1/figures/rowbuffer", ""); rec.Code != http.StatusOK {
		t.Fatalf("figure = %d: %s", rec.Code, rec.Body)
	}
	doc = readMetrics()
	fig := doc.Requests["figure"]
	if fig.Requests != 1 || fig.Errors != 0 {
		t.Fatalf("figure route after one request: %+v", fig)
	}
	if fig.LatencyP50N <= 0 || fig.LatencyP99N < fig.LatencyP50N {
		t.Fatalf("latency percentiles not recorded: %+v", fig)
	}
	if doc.Requests["run"].Requests != 0 || doc.Requests["scenarios"].Requests != 0 {
		t.Fatalf("figure request leaked into other routes: %+v", doc.Requests)
	}
	if doc.Cache.Misses != 1 || doc.Cache.Entries != 1 || doc.Cache.Computes != 1 {
		t.Fatalf("cache after one cold figure: %+v", doc.Cache)
	}

	before := doc
	for i := 0; i < 5; i++ {
		doRequest(t, h, http.MethodGet, "/healthz", "")
		readMetrics()
	}
	after := readMetrics()
	if after.Cache != before.Cache {
		t.Fatalf("cache counters drifted under scraping: %+v vs %+v", after.Cache, before.Cache)
	}
	if after.Requests["figure"].Requests != 1 {
		t.Fatalf("figure counter drifted under scraping: %+v", after.Requests["figure"])
	}

	// Errors are counted per route too.
	doRequest(t, h, http.MethodGet, "/v1/figures/nope", "")
	if m := readMetrics().Requests["figure"]; m.Requests != 2 || m.Errors != 1 {
		t.Fatalf("error accounting: %+v", m)
	}
}

package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/exp/pack"
)

// testKey returns a syntactically valid store key derived from seed (the
// store only accepts 64-char lowercase hex names).
func testKey(seed byte) string {
	return strings.Repeat(string([]byte{'a' + seed%6}), 64)
}

// TestStoreRoundTrip pins the disk format contract: entries land under a
// two-hex-digit fan-out directory, round-trip byte-identically, and
// first write wins.
func TestStoreRoundTrip(t *testing.T) {
	st, err := NewStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	key := testKey(0)
	if _, ok := st.Get(context.Background(), key); ok {
		t.Fatal("phantom entry")
	}
	blob := json.RawMessage(`{"id":"x","rows":[1,2,3]}`)
	st.Put(context.Background(), key, blob)
	got, ok := st.Get(context.Background(), key)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("round trip = %q, %v", got, ok)
	}
	// The entry lives under the first two hex digits of its key.
	path := filepath.Join(st.Dir(), key[:2], key)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("entry not at fan-out path: %v", err)
	}
	// First write wins, like the in-memory cache.
	st.Put(context.Background(), key, json.RawMessage(`{"id":"y"}`))
	got, _ = st.Get(context.Background(), key)
	if !bytes.Equal(got, blob) {
		t.Fatal("second Put replaced the entry")
	}
	// Keys that are not hex digests never touch the filesystem.
	st.Put(context.Background(), "../escape", blob)
	if _, ok := st.Get(context.Background(), "../escape"); ok {
		t.Fatal("invalid key stored")
	}
	if _, err := os.Stat(filepath.Join(st.Dir(), "..", "escape")); err == nil {
		t.Fatal("invalid key escaped the data dir")
	}
	stats := st.Stats()
	if stats.Stores != 1 || stats.Hits != 2 {
		t.Fatalf("stats = %+v, want 1 store and 2 hits", stats)
	}
}

// TestStoreCorruptEntries pins recovery: truncated payloads, checksum
// mismatches, and foreign files are all discarded as misses (and deleted,
// so the next Put heals them) instead of being served.
func TestStoreCorruptEntries(t *testing.T) {
	st, err := NewStore(filepath.Join(t.TempDir(), "store"))
	if err != nil {
		t.Fatal(err)
	}
	blob := json.RawMessage(`{"id":"report"}`)
	corruptions := []struct {
		name    string
		corrupt func(path string)
	}{
		{"truncated payload", func(path string) {
			data, _ := os.ReadFile(path)
			os.WriteFile(path, data[:len(data)-4], 0o644)
		}},
		{"flipped payload byte", func(path string) {
			data, _ := os.ReadFile(path)
			data[len(data)-2] ^= 0xff
			os.WriteFile(path, data, 0o644)
		}},
		{"foreign file", func(path string) {
			os.WriteFile(path, []byte("not a store entry at all\n"), 0o644)
		}},
		{"empty file", func(path string) {
			os.WriteFile(path, nil, 0o644)
		}},
	}
	for i, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			key := testKey(byte(i + 1))
			st.Put(context.Background(), key, blob)
			path := filepath.Join(st.Dir(), key[:2], key)
			tc.corrupt(path)
			if got, ok := st.Get(context.Background(), key); ok {
				t.Fatalf("corrupt entry served: %q", got)
			}
			if _, err := os.Stat(path); err == nil {
				t.Fatal("corrupt entry not deleted")
			}
			// The next Put rewrites the entry clean.
			st.Put(context.Background(), key, blob)
			if got, ok := st.Get(context.Background(), key); !ok || !bytes.Equal(got, blob) {
				t.Fatalf("entry did not heal: %q, %v", got, ok)
			}
		})
	}
	if st.Stats().CorruptDropped != int64(len(corruptions)) {
		t.Fatalf("corrupt_dropped = %d, want %d", st.Stats().CorruptDropped, len(corruptions))
	}
}

// restartSpec is the durability test sweep: two unique config-sensitive
// runs, small enough to simulate quickly.
const restartSpec = `{
	"scenario": "covert-pnm",
	"scale": "quick",
	"grid": {"llc_bytes": [4194304, 8388608]}
}`

// TestServerRestartDurability is the acceptance-criteria test for the
// durable store: a server restarted on the same data dir (modeled as a
// fresh engine over the same directory) serves a previously computed
// sweep with X-Cache: hit and a byte-identical body, without
// re-simulating — and the disk path changes no response byte versus
// memory or a cold simulation.
func TestServerRestartDurability(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	dir := filepath.Join(t.TempDir(), "data")

	st1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	h1 := NewServer(NewEngine(WithStore(st1)), WithWorkers(2)).Handler()
	cold := doRequest(t, h1, http.MethodPost, "/v1/run", restartSpec)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold POST = %d: %s", cold.Code, cold.Body)
	}
	if got := cold.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("cold POST X-Cache = %q, want miss", got)
	}
	warm := doRequest(t, h1, http.MethodPost, "/v1/run", restartSpec)
	if got := warm.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("warm POST X-Cache = %q, want hit", got)
	}

	// "Restart": a brand-new engine over the same data dir. Its memory
	// cache is empty, so every hit below came off disk.
	st2, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := NewEngine(WithStore(st2))
	h2 := NewServer(eng2, WithWorkers(2)).Handler()
	restarted := doRequest(t, h2, http.MethodPost, "/v1/run", restartSpec)
	if restarted.Code != http.StatusOK {
		t.Fatalf("restarted POST = %d: %s", restarted.Code, restarted.Body)
	}
	if got := restarted.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("restarted POST X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold.Body.Bytes(), restarted.Body.Bytes()) {
		t.Fatal("disk-served response is not byte-identical to the cold response")
	}
	if c := eng2.Cache().Stats().Computes; c != 0 {
		t.Fatalf("restarted engine simulated %d runs, want 0", c)
	}
	if hits := st2.Stats().Hits; hits != 2 {
		t.Fatalf("store hits = %d, want 2 (one per unique run)", hits)
	}

	// A second request on the restarted engine is a pure memory hit: the
	// disk entries were promoted, not re-read.
	doRequest(t, h2, http.MethodPost, "/v1/run", restartSpec)
	if hits := st2.Stats().Hits; hits != 2 {
		t.Fatalf("store hits grew to %d on a memory-warm request", hits)
	}

	// The cold path with no store at all also produces the same bytes.
	pure := doRequest(t, NewServer(NewEngine(), WithWorkers(2)).Handler(), http.MethodPost, "/v1/run", restartSpec)
	if !bytes.Equal(pure.Body.Bytes(), cold.Body.Bytes()) {
		t.Fatal("store layering changed response bytes")
	}
}

// TestPackMigrationServesByteIdentical is the acceptance test for the
// per-file → pack upgrade at the serving layer: sweeps computed by a
// files-backed server, then migrated into bundles by pack.Open on the
// same data dir, are served by the pack-backed server with X-Cache: hit
// and byte-identical bodies — no re-simulation, no per-file layout left
// behind.
func TestPackMigrationServesByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	dir := filepath.Join(t.TempDir(), "data")

	st1, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	h1 := NewServer(NewEngine(WithStore(st1)), WithWorkers(2)).Handler()
	cold := doRequest(t, h1, http.MethodPost, "/v1/run", restartSpec)
	if cold.Code != http.StatusOK {
		t.Fatalf("cold POST = %d: %s", cold.Code, cold.Body)
	}

	// "Upgrade restart": the same data dir, reopened with the pack
	// backend — exactly what impact-server -store=pack does on boot.
	st2, err := pack.Open(dir, pack.WithAuditInterval(0))
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if n := st2.PackStats().Migrated; n != 2 {
		t.Fatalf("migrated = %d, want 2 (one per unique run)", n)
	}
	eng2 := NewEngine(WithStore(st2))
	h2 := NewServer(eng2, WithWorkers(2)).Handler()
	migrated := doRequest(t, h2, http.MethodPost, "/v1/run", restartSpec)
	if migrated.Code != http.StatusOK {
		t.Fatalf("migrated POST = %d: %s", migrated.Code, migrated.Body)
	}
	if got := migrated.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("migrated POST X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(cold.Body.Bytes(), migrated.Body.Bytes()) {
		t.Fatal("pack-served response is not byte-identical to the files-computed one")
	}
	if c := eng2.Cache().Stats().Computes; c != 0 {
		t.Fatalf("pack engine simulated %d runs after migration, want 0", c)
	}
	// The fan-out layout is gone: only pack (and any journal) remain.
	des, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if name := de.Name(); name != "pack" && name != "jobs" {
			t.Fatalf("per-file layout %q survived migration", name)
		}
	}
}

// TestStoreCorruptEntryReSimulates pins end-to-end healing: corrupting
// one stored report downgrades exactly that run to a re-simulation on the
// next cold-memory lookup, with the response still byte-identical.
func TestStoreCorruptEntryReSimulates(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	dir := filepath.Join(t.TempDir(), "data")
	st1, _ := NewStore(dir)
	eng1 := NewEngine(WithStore(st1))
	spec, err := ParseSpec([]byte(restartSpec))
	if err != nil {
		t.Fatal(err)
	}
	first, err := eng1.RunSpec(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Corrupt the first run's entry on disk.
	key := first.Runs[0].Key
	path := filepath.Join(dir, key[:2], key)
	if err := os.WriteFile(path, []byte("impactstore1 3 deadbeef\nxxx"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2, _ := NewStore(dir)
	eng2 := NewEngine(WithStore(st2))
	second, err := eng2.RunSpec(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if second.Hits != 1 || second.Misses != 1 {
		t.Fatalf("hits=%d misses=%d after corrupting one of two entries, want 1/1", second.Hits, second.Misses)
	}
	if st2.Stats().CorruptDropped != 1 {
		t.Fatalf("corrupt_dropped = %d, want 1", st2.Stats().CorruptDropped)
	}
	firstJSON, _ := json.Marshal(first)
	secondJSON, _ := json.Marshal(second)
	if !bytes.Equal(firstJSON, secondJSON) {
		t.Fatal("re-simulated sweep differs from the original")
	}
	// The re-simulation wrote the entry back clean.
	if _, ok := st2.Get(context.Background(), key); !ok {
		t.Fatal("healed entry missing from the store")
	}
}

package exp

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"repro/internal/memctrl"
)

// gridSpec is the canonical test sweep: a 3x2 grid over LLC size and
// defense on the PnM covert channel (6 concrete runs).
const gridSpec = `{
	"scenario": "covert-pnm",
	"scale": "quick",
	"config": {"enable_prefetchers": false},
	"grid": {
		"llc_bytes": [4194304, 8388608, 16777216],
		"mem.defense": ["none", "crp"]
	}
}`

func mustExpand(t *testing.T, doc string) []Run {
	t.Helper()
	spec, err := ParseSpec([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	return runs
}

// TestExpandGrid checks the Cartesian expansion: size, order determinism,
// resolved configs, parameter labels, and key uniqueness.
func TestExpandGrid(t *testing.T) {
	runs := mustExpand(t, gridSpec)
	if len(runs) != 6 {
		t.Fatalf("expanded %d runs, want 6", len(runs))
	}
	keys := map[string]bool{}
	for _, r := range runs {
		if keys[r.Key] {
			t.Fatalf("duplicate key %s", r.Key)
		}
		keys[r.Key] = true
		if r.Config.EnablePrefetchers {
			t.Fatal("base config override lost")
		}
		if r.Params["llc_bytes"] == "" || r.Params["mem.defense"] == "" {
			t.Fatalf("grid point unlabeled: %v", r.Params)
		}
	}
	// Grid paths iterate sorted ("llc_bytes" before "mem.defense"), last
	// path fastest: the first two runs share the smallest LLC.
	if runs[0].Config.LLCBytes != 4<<20 || runs[1].Config.LLCBytes != 4<<20 {
		t.Fatalf("row-major order broken: %v %v", runs[0].Params, runs[1].Params)
	}
	if runs[0].Config.Mem.Defense != memctrl.DefenseNone || runs[1].Config.Mem.Defense != memctrl.DefenseClosedRow {
		t.Fatalf("inner axis order broken: %v %v", runs[0].Params, runs[1].Params)
	}

	// Expansion is a pure function of the spec.
	again := mustExpand(t, gridSpec)
	for i := range runs {
		if runs[i].Key != again[i].Key || !reflect.DeepEqual(runs[i].Params, again[i].Params) {
			t.Fatalf("expansion not deterministic at run %d", i)
		}
	}
}

// TestExpandKeyCanonicalization checks that equivalent value spellings
// collapse to the same content address, and that distinct configs do not.
func TestExpandKeyCanonicalization(t *testing.T) {
	a := mustExpand(t, `{"scenario": "covert-pnm", "config": {"noise": {"events_per_mcycle": 3.5}}}`)
	b := mustExpand(t, `{"scenario": "covert-pnm", "config": {"noise": {"events_per_mcycle": 0.35e1}}}`)
	if a[0].Key != b[0].Key {
		t.Fatalf("equivalent configs hash differently: %s vs %s", a[0].Key, b[0].Key)
	}
	c := mustExpand(t, `{"scenario": "covert-pnm", "config": {"llc_bytes": 4194304}}`)
	if a[0].Key == c[0].Key {
		t.Fatal("distinct configs collide")
	}
	d := mustExpand(t, `{"scenario": "rowbuffer", "scale": "full"}`)
	e := mustExpand(t, `{"scenario": "rowbuffer"}`)
	if d[0].Key == e[0].Key {
		t.Fatal("scale not part of the content address")
	}
}

// TestExpandErrors checks the failure contract: unknown scenarios carry
// ErrUnknownScenario, bad grid paths and values name the field.
func TestExpandErrors(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"scenario": "covert-warp"}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Expand(); !errors.Is(err, ErrUnknownScenario) {
		t.Fatalf("want ErrUnknownScenario, got %v", err)
	}

	cases := []struct{ name, doc, want string }{
		{"unknown grid field", `{"scenario": "covert-pnm", "grid": {"llcbytes": [1]}}`, "llcbytes"},
		{"grid through scalar", `{"scenario": "covert-pnm", "grid": {"cores.deep": [1]}}`, "cores"},
		{"empty grid axis", `{"scenario": "covert-pnm", "grid": {"llc_bytes": []}}`, "no values"},
		{"invalid value", `{"scenario": "covert-pnm", "grid": {"llc_ways": [-4]}}`, "llc_ways"},
		{"unknown spec field", `{"scenario": "covert-pnm", "grids": {}}`, "grids"},
		{"grid on figure replay", `{"scenario": "rowbuffer", "grid": {"llc_bytes": [4194304]}}`, "ignores sim.Config"},
		{"config on figure replay", `{"scenario": "rowbuffer", "config": {"llc_bytes": 4194304}}`, "ignores sim.Config"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec, err := ParseSpec([]byte(tc.doc))
			if err == nil {
				_, err = spec.Expand()
			}
			if err == nil {
				t.Fatalf("accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}

	// Oversized grids are rejected before any simulation.
	big := `{"scenario": "covert-pnm", "grid": {"noise.seed": [` + seq(100) + `], "llc_ways": [` + seq(100) + `]}}`
	spec, err = ParseSpec([]byte(big))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := spec.Expand(); err == nil || !strings.Contains(err.Error(), "more than") {
		t.Fatalf("oversized grid not rejected: %v", err)
	}
}

// seq renders "1, 2, ..., n".
func seq(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = strconv.Itoa(i + 1)
	}
	return strings.Join(parts, ", ")
}

// TestCacheCounters pins the content-addressed cache contract.
func TestCacheCounters(t *testing.T) {
	c := NewCache()
	if _, ok := c.Get(context.Background(), "k"); ok {
		t.Fatal("phantom entry")
	}
	c.Put(context.Background(), "k", json.RawMessage(`{"a":1}`))
	blob, ok := c.Get(context.Background(), "k")
	if !ok || string(blob) != `{"a":1}` {
		t.Fatalf("lookup = %q, %v", blob, ok)
	}
	// First store wins; duplicates do not bump the store counter.
	c.Put(context.Background(), "k", json.RawMessage(`{"a":2}`))
	blob, _ = c.Get(context.Background(), "k")
	if string(blob) != `{"a":1}` {
		t.Fatal("duplicate store replaced the entry")
	}
	if c.Hits() != 2 || c.Misses() != 1 || c.Len() != 1 {
		t.Fatalf("counters hits=%d misses=%d len=%d, want 2/1/1", c.Hits(), c.Misses(), c.Len())
	}
}

// TestEngineCacheAndDeterminism is the core tentpole invariant: a repeated
// sweep is served entirely from cache and marshals byte-identically, and
// the worker count cannot change a single output byte.
func TestEngineCacheAndDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	spec, err := ParseSpec([]byte(gridSpec))
	if err != nil {
		t.Fatal(err)
	}

	eng := NewEngine()
	first, err := eng.RunSpec(context.Background(), spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if first.Hits != 0 || first.Misses != 6 {
		t.Fatalf("cold sweep hits=%d misses=%d, want 0/6", first.Hits, first.Misses)
	}
	second, err := eng.RunSpec(context.Background(), spec, 1)
	if err != nil {
		t.Fatal(err)
	}
	if second.Hits != 6 || second.Misses != 0 {
		t.Fatalf("warm sweep hits=%d misses=%d, want 6/0", second.Hits, second.Misses)
	}
	for _, r := range second.Runs {
		if !r.Cached {
			t.Fatalf("warm run %v not marked cached", r.Params)
		}
	}
	firstJSON, err := json.Marshal(first)
	if err != nil {
		t.Fatal(err)
	}
	secondJSON, err := json.Marshal(second)
	if err != nil {
		t.Fatal(err)
	}
	if string(firstJSON) != string(secondJSON) {
		t.Fatalf("cached sweep differs from cold sweep:\n%s\n%s", firstJSON, secondJSON)
	}

	// A fresh engine with a wide pool reproduces the same bytes.
	wide, err := NewEngine().RunSpec(context.Background(), spec, 8)
	if err != nil {
		t.Fatal(err)
	}
	wideJSON, err := json.Marshal(wide)
	if err != nil {
		t.Fatal(err)
	}
	if string(wideJSON) != string(firstJSON) {
		t.Fatal("worker count changed sweep output")
	}

	// An overlapping sweep (one shared grid point) is a partial hit.
	overlap, err := ParseSpec([]byte(`{
		"scenario": "covert-pnm",
		"config": {"enable_prefetchers": false},
		"grid": {"llc_bytes": [4194304, 2097152], "mem.defense": ["none"]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := eng.RunSpec(context.Background(), overlap, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 1 || res.Misses != 1 {
		t.Fatalf("overlapping sweep hits=%d misses=%d, want 1/1", res.Hits, res.Misses)
	}

	if _, err := eng.RunSpec(context.Background(), spec, -2); err == nil {
		t.Fatal("negative worker count accepted")
	}
}

// TestEngineDedupesWithinSweep checks that two grid points resolving to
// the same concrete run are simulated once.
func TestEngineDedupesWithinSweep(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"scenario": "covert-pnm", "grid": {"noise.events_per_mcycle": [3.5, 0.35e1]}}`))
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewEngine().RunSpec(context.Background(), spec, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 2 {
		t.Fatalf("runs = %d, want 2", len(res.Runs))
	}
	if res.Runs[0].Key != res.Runs[1].Key {
		t.Fatal("equivalent grid points got different keys")
	}
	if res.Misses != 1 || res.Hits != 0 {
		t.Fatalf("hits=%d misses=%d, want 0/1", res.Hits, res.Misses)
	}
	if string(res.Runs[0].Report) != string(res.Runs[1].Report) {
		t.Fatal("deduped runs returned different reports")
	}
}

// TestScenarioRegistry sanity-checks the registry surface the server lists.
func TestScenarioRegistry(t *testing.T) {
	names := ScenarioNames()
	if len(names) != len(ScenarioList()) {
		t.Fatal("names/list length mismatch")
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate scenario %q", n)
		}
		seen[n] = true
	}
	for _, want := range []string{"covert-pnm", "covert-dma", "rowbuffer", "fig9", "framing"} {
		if !seen[want] {
			t.Fatalf("registry missing %q (have %v)", want, names)
		}
	}
}

// TestCacheEviction checks the sharded FIFO size bound: the cache never
// exceeds maxEntries in total, each shard evicts oldest-first, and the
// eviction counter accounts for every displaced entry.
func TestCacheEviction(t *testing.T) {
	c := NewCache()
	blob := json.RawMessage(`{}`)
	// Overfill every shard: 2x the global bound guarantees each of the 16
	// shards sees more inserts than its per-shard cap.
	const inserts = 2 * maxEntries
	for i := 0; i < inserts; i++ {
		c.Put(context.Background(), "key-"+strconv.Itoa(i), blob)
	}
	if c.Len() > maxEntries {
		t.Fatalf("cache grew to %d entries, bound is %d", c.Len(), maxEntries)
	}
	if _, ok := c.Get(context.Background(), "key-0"); ok {
		t.Fatal("oldest entry survived a full overfill of its shard")
	}
	if _, ok := c.Get(context.Background(), "key-"+strconv.Itoa(inserts-1)); !ok {
		t.Fatal("newest entry missing")
	}
	st := c.Stats()
	if st.Stores != inserts || st.Evictions != inserts-st.Entries {
		t.Fatalf("stores=%d evictions=%d entries=%d, want every insert stored and evictions to account for the rest",
			st.Stores, st.Evictions, st.Entries)
	}
	// A shard at capacity replaces its own oldest entry, never a
	// neighbor's: re-adding an evicted key must land and stay retrievable.
	c.Put(context.Background(), "key-0", blob)
	if _, ok := c.Get(context.Background(), "key-0"); !ok {
		t.Fatal("re-added key missing")
	}
}

// TestCacheEvictionChurn is the regression test for the FIFO order
// bookkeeping: under sustained eviction the ring buffer must hold the
// size bound, keep its backing storage fixed (the old order[1:] slice
// head pinned every evicted key string and re-allocated under append),
// and run allocation-free at steady state.
func TestCacheEvictionChurn(t *testing.T) {
	c := NewCache()
	blob := json.RawMessage(`{}`)
	keys := make([]string, 3*maxEntries)
	for i := range keys {
		keys[i] = "churn-" + strconv.Itoa(i)
	}
	for i, k := range keys {
		c.Put(context.Background(), k, blob)
		if i%1024 == 0 {
			if n := c.Len(); n > maxEntries {
				t.Fatalf("cache grew to %d entries mid-churn, bound is %d", n, maxEntries)
			}
		}
	}
	if n := c.Len(); n > maxEntries {
		t.Fatalf("cache holds %d entries after churn, bound is %d", n, maxEntries)
	}

	// The ring's backing array never grows or shifts, and every slot not
	// currently occupied has released its key string.
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		if len(sh.order) != shardCap {
			t.Fatalf("shard %d order len %d, want fixed %d", i, len(sh.order), shardCap)
		}
		live := 0
		for _, k := range sh.order {
			if k != "" {
				live++
			}
		}
		if live != sh.n || sh.n != len(sh.entries) {
			t.Fatalf("shard %d: %d live slots, n=%d, %d entries", i, live, sh.n, len(sh.entries))
		}
		sh.mu.Unlock()
	}

	// Steady state: every shard is full, so each Put of an already
	// allocated key evicts one entry and inserts another without growing
	// anything — zero allocations per operation.
	next := 0
	avg := testing.AllocsPerRun(2000, func() {
		c.Put(context.Background(), keys[next%len(keys)], blob)
		next++
	})
	if avg > 0.1 {
		t.Fatalf("steady-state eviction allocates %.2f objects/op, want 0", avg)
	}
}

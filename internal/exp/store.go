package exp

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"repro/internal/metrics"
	"repro/pkg/api"
)

// Fixed counter IDs for store statistics, in the slot order passed to
// metrics.NewSet in NewStore.
const (
	storeHits metrics.CounterID = iota
	storeMisses
	storeStores
	storeCorrupt
	storeErrors
)

// storeMagic tags every entry file's header line so an unrelated file
// dropped into the data dir is never mistaken for a report.
const storeMagic = "impactstore1"

// Store is the durable half of the result cache: a directory of
// content-addressed report blobs, one file per run key, fanned out over
// 256 two-hex-digit subdirectories so no single directory grows huge.
// Because the simulator is deterministic, a key maps to exactly one
// possible value, so entries are written once and are valid forever — a
// restarted server answers previously computed sweeps without
// re-simulating.
//
// Every entry file is "impactstore1 <payload-bytes> <hex sha256>\n"
// followed by the report bytes; writes go through a temp file in the
// final directory, an atomic rename, and a directory fsync (so a
// published entry survives power loss, not just process death), and
// reads verify the length and checksum, silently discarding corrupt or
// truncated entries (the next Put rewrites them clean). The store is
// best-effort by design: any I/O failure degrades to a cache miss, never
// to a wrong answer.
//
// Safe for concurrent use; all counters land in lock-free metrics.Set
// slots exported on /v1/metrics.
type Store struct {
	dir string
	met *metrics.Set
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	if err := ensureDir(dir); err != nil {
		return nil, fmt.Errorf("exp: store: %v", err)
	}
	return &Store{
		dir: dir,
		met: metrics.NewSet("hits", "misses", "stores", "corrupt_dropped", "errors"),
	}, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// validStoreKey reports whether key is a lowercase hex SHA-256 digest —
// the only names the store ever writes, and a guarantee that a key can
// never traverse outside the data dir.
func validStoreKey(key string) bool {
	if len(key) != sha256.Size*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// entryPath maps a key to its file: <dir>/<first two hex digits>/<key>.
func (s *Store) entryPath(key string) string {
	return filepath.Join(s.dir, key[:2], key)
}

// Get returns the stored report bytes for a key. Corrupt or truncated
// entries are deleted and reported as misses, so a damaged file heals on
// the next Put instead of poisoning every later read. The context is
// part of the ResultStore contract; a purely local store has no remote
// hops to bound with it.
func (s *Store) Get(_ context.Context, key string) (json.RawMessage, bool) {
	if !validStoreKey(key) {
		s.met.Add(storeMisses, 1)
		return nil, false
	}
	path := s.entryPath(key)
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		s.met.Add(storeMisses, 1)
		return nil, false
	}
	if err != nil {
		s.met.Add(storeErrors, 1)
		s.met.Add(storeMisses, 1)
		return nil, false
	}
	blob, ok := decodeRecord(storeMagic, data)
	if !ok {
		// Dropping a corrupt entry is a durability decision just like
		// publishing one: without the parent-directory fsync, a crash after
		// the unlink could resurrect the corrupt file this reader already
		// refused, re-poisoning reads that the next Put was supposed to heal.
		if err := os.Remove(path); err != nil {
			s.met.Add(storeErrors, 1)
		} else if err := syncDir(filepath.Dir(path)); err != nil {
			s.met.Add(storeErrors, 1)
		}
		s.met.Add(storeCorrupt, 1)
		s.met.Add(storeMisses, 1)
		return nil, false
	}
	s.met.Add(storeHits, 1)
	return blob, true
}

// Put persists report bytes under a key. First write wins (a deterministic
// simulator makes any second write byte-identical anyway), and the
// tmp+rename dance means readers only ever see complete entries — a crash
// mid-write leaves at worst a stray temp file, never a torn entry.
func (s *Store) Put(_ context.Context, key string, blob json.RawMessage) {
	if !validStoreKey(key) {
		s.met.Add(storeErrors, 1)
		return
	}
	path := s.entryPath(key)
	if _, err := os.Stat(path); err == nil {
		return
	}
	if err := s.write(path, blob); err != nil {
		s.met.Add(storeErrors, 1)
		return
	}
	s.met.Add(storeStores, 1)
}

// write creates the entry file atomically in the key's fan-out directory.
func (s *Store) write(path string, blob json.RawMessage) error {
	if err := failpoint("store.write"); err != nil {
		return err
	}
	if err := ensureDir(filepath.Dir(path)); err != nil {
		return err
	}
	return atomicWrite(path, encodeRecord(storeMagic, blob))
}

// StoreStats is a point-in-time copy of the store counters, served on
// /v1/metrics. The wire shape lives in pkg/api with the rest of the v1
// contract.
type StoreStats = api.StoreStats

// Stats snapshots all counters.
func (s *Store) Stats() StoreStats {
	return StoreStats{
		Hits:           s.met.Value(storeHits),
		Misses:         s.met.Value(storeMisses),
		Stores:         s.met.Value(storeStores),
		CorruptDropped: s.met.Value(storeCorrupt),
		Errors:         s.met.Value(storeErrors),
	}
}

package exp

import (
	"encoding/json"
	"sync"

	"repro/internal/stats"
)

// Fixed counter IDs for cache statistics, in the slot order passed to
// stats.NewFixed in NewCache.
const (
	CounterHits stats.CounterID = iota
	CounterMisses
	CounterStores
	CounterEvictions
)

// maxEntries bounds the cache so a long-running server cannot be grown
// without limit by high-cardinality sweeps; eviction is FIFO (oldest
// insertion first). Evicting never changes any response byte — a re-miss
// just re-simulates — so the bound only trades memory for hit rate.
const maxEntries = 16384

// Cache is a content-addressed result store: keys are the hex SHA-256 of a
// run's canonical JSON document (see Run.Key), values are the marshaled
// report bytes. Since the simulator is deterministic, a key maps to exactly
// one possible value, so entries never need invalidation. Safe for
// concurrent use; hit/miss/store traffic lands in fixed stats.Counters
// slots that the HTTP service exports.
type Cache struct {
	mu       sync.Mutex
	entries  map[string]json.RawMessage
	order    []string // insertion order, for FIFO eviction
	counters *stats.Counters
}

// NewCache returns an empty cache.
func NewCache() *Cache {
	return &Cache{
		entries:  make(map[string]json.RawMessage),
		counters: stats.NewFixed("hits", "misses", "stores", "evictions"),
	}
}

// Get returns the cached report bytes for a key, recording a hit or miss.
// Callers must treat the returned bytes as immutable.
func (c *Cache) Get(key string) (json.RawMessage, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	blob, ok := c.entries[key]
	if ok {
		c.counters.Add(CounterHits, 1)
	} else {
		c.counters.Add(CounterMisses, 1)
	}
	return blob, ok
}

// Put stores report bytes under a key. First store wins: with a
// deterministic simulator any concurrent second computation produced the
// same bytes, so keeping the existing entry preserves pointer stability.
func (c *Cache) Put(key string, blob json.RawMessage) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return
	}
	for len(c.entries) >= maxEntries {
		delete(c.entries, c.order[0])
		c.order = c.order[1:]
		c.counters.Add(CounterEvictions, 1)
	}
	c.entries[key] = blob
	c.order = append(c.order, key)
	c.counters.Add(CounterStores, 1)
}

// Len returns the number of cached reports.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Hits and Misses return the lifetime lookup counters.
func (c *Cache) Hits() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters.Value(CounterHits)
}

// Misses returns the lifetime miss counter.
func (c *Cache) Misses() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters.Value(CounterMisses)
}

package exp

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/metrics"
	"repro/pkg/api"
)

// Fixed counter IDs for cache statistics, in the slot order passed to
// metrics.NewSet in NewCache.
const (
	cacheHits metrics.CounterID = iota
	cacheMisses
	cacheStores
	cacheEvictions
	cacheComputes
	cacheDedups
)

// cacheShards spreads entries over independently locked shards so
// concurrent requests hitting the warm path do not serialize on one mutex.
// Keys are uniformly distributed hex SHA-256 digests, so a small
// power-of-two shard count balances well.
const cacheShards = 16

// maxEntries bounds the whole cache so a long-running server cannot be
// grown without limit by high-cardinality sweeps; each shard holds at most
// maxEntries/cacheShards entries and evicts FIFO (oldest insertion first).
// Evicting never changes any response byte — a re-miss just re-simulates —
// so the bound only trades memory for hit rate.
const (
	maxEntries = 16384
	shardCap   = maxEntries / cacheShards
)

// ResultStore is the durable backend a Cache writes through to. Three
// implementations exist: the per-file Store in this package (one fanned-
// out file per result), the pack engine in internal/exp/pack
// (append-only bundles behind a needle index, flat lookup cost at any
// object count), and the cluster store in internal/cluster (a local
// backend plus hash-ring-placed remote peers). All share the contract
// the cache relies on: Get returns previously Put bytes or reports a
// miss — never a wrong or partial value (corrupt entries are dropped and
// heal by re-simulation) — and Put is best-effort, first write wins.
// The context carries the caller's cancellation, deadline, and request
// ID; purely local backends may ignore it, but a networked backend
// bounds its remote hops with it and propagates the request ID so a
// cross-node lookup chain traces as one request. Implementations must be
// safe for concurrent use.
type ResultStore interface {
	Get(ctx context.Context, key string) (json.RawMessage, bool)
	Put(ctx context.Context, key string, blob json.RawMessage)
}

// localTierStore is implemented by ResultStores that are fronts for a
// cluster: LocalGet and LocalPut bypass any remote hops and touch only
// the node's own durable tier. The server's internal peer endpoints use
// them so one node answering another's fetch can never recurse into a
// third hop, and so an inbound replica copy is stored without being
// re-replicated. Detected structurally — exp never imports
// internal/cluster; the dependency points the other way.
type localTierStore interface {
	LocalGet(ctx context.Context, key string) (json.RawMessage, bool)
	LocalPut(ctx context.Context, key string, blob json.RawMessage)
}

// Cache is a content-addressed result store: keys are the hex SHA-256 of a
// run's canonical JSON document (see Run.Key), values are the marshaled
// report bytes. Since the simulator is deterministic, a key maps to exactly
// one possible value, so entries never need invalidation. Entries are
// sharded by key hash behind per-shard mutexes, and Compute adds
// singleflight-style deduplication so identical in-flight runs — e.g. two
// clients POSTing the same spec concurrently — are simulated exactly once.
//
// A Cache built with NewCacheWithStore is additionally backed by a durable
// disk Store: memory misses fall through to disk (promoting hits back into
// memory), and every computed report is written through, so a restarted
// server serves previously computed sweeps as cache hits.
//
// Safe for concurrent use; all traffic lands in lock-free metrics.Set
// counter slots that the HTTP service exports on /v1/metrics.
type Cache struct {
	shards [cacheShards]cacheShard
	met    *metrics.Set
	store  ResultStore // nil = memory only

	flightMu sync.Mutex
	flight   map[string]*flightCall
}

// cacheShard is one lock domain: a map plus its FIFO insertion order,
// tracked in a fixed-size ring buffer. A ring (rather than a slice head
// advanced with order = order[1:]) keeps the backing array from churning
// under sustained eviction and lets evicted key strings actually be
// collected instead of staying pinned by the old backing array.
type cacheShard struct {
	mu      sync.Mutex
	entries map[string]json.RawMessage
	order   []string // ring of len shardCap; oldest key at head
	head    int
	n       int
}

// flightCall tracks one in-progress computation; waiters block on done.
type flightCall struct {
	done chan struct{}
	blob json.RawMessage
	err  error
}

// NewCache returns an empty, memory-only cache.
func NewCache() *Cache { return NewCacheWithStore(nil) }

// NewCacheWithStore returns an empty cache layered over a durable disk
// store (nil for memory only): lookups fall through memory → disk, and
// stores write through to disk.
func NewCacheWithStore(st ResultStore) *Cache {
	c := &Cache{
		met:    metrics.NewSet("hits", "misses", "stores", "evictions", "computes", "dedup_hits"),
		store:  st,
		flight: make(map[string]*flightCall),
	}
	for i := range c.shards {
		c.shards[i].entries = make(map[string]json.RawMessage)
		c.shards[i].order = make([]string, shardCap)
	}
	return c
}

// shardFor hashes a key to its shard (FNV-1a; keys are hex digests, so any
// cheap mix distributes them uniformly).
func (c *Cache) shardFor(key string) *cacheShard {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return &c.shards[h%cacheShards]
}

// Get returns the cached report bytes for a key, recording a hit or miss.
// Memory misses fall through to the configured store (disk, or disk plus
// remote peers in a cluster); store hits are promoted back into memory
// and count as cache hits (the store's own counters record the
// memory/disk/remote split). ctx bounds any remote hops the store makes
// and carries the request ID across them. Callers must treat the
// returned bytes as immutable.
func (c *Cache) Get(ctx context.Context, key string) (json.RawMessage, bool) {
	blob, ok := c.lookup(key)
	if !ok && c.store != nil {
		if disk, diskOK := c.store.Get(ctx, key); diskOK {
			blob, ok = disk, true
			// Memory-only insert: the entry is already durable.
			c.add(key, disk)
		}
	}
	if ok {
		c.met.Add(cacheHits, 1)
	} else {
		c.met.Add(cacheMisses, 1)
	}
	return blob, ok
}

// Peek returns the cached bytes for a key without recording a hit or a
// miss, falling through to the store like Get (store hits are still
// promoted into memory). Job streams rebuild their results from the cache
// on replay; that accounting belongs to the sweep that computed the
// reports, not to every later reader.
func (c *Cache) Peek(ctx context.Context, key string) (json.RawMessage, bool) {
	blob, ok := c.lookup(key)
	if !ok && c.store != nil {
		if disk, diskOK := c.store.Get(ctx, key); diskOK {
			blob, ok = disk, true
			c.add(key, disk)
		}
	}
	return blob, ok
}

// PeekLocal returns the cached bytes for a key from this node's own
// tiers only — memory, then the store's local tier — never crossing the
// network, and records no hit/miss accounting. This is the probe behind
// the internal peer-fetch endpoint: node A asking node B must see
// exactly what B holds, not trigger B asking C.
func (c *Cache) PeekLocal(ctx context.Context, key string) (json.RawMessage, bool) {
	if blob, ok := c.lookup(key); ok {
		return blob, true
	}
	switch st := c.store.(type) {
	case localTierStore:
		return st.LocalGet(ctx, key)
	case nil:
		return nil, false
	default:
		return c.store.Get(ctx, key)
	}
}

// PutLocal stores report bytes into this node's own tiers only — memory
// plus the store's local tier — without triggering replication. This is
// the write behind the internal peer replication endpoint: the sender
// already placed the copy by ring position, so the receiver fanning it
// out again would echo forever.
func (c *Cache) PutLocal(ctx context.Context, key string, blob json.RawMessage) {
	if !c.add(key, blob) {
		return
	}
	switch st := c.store.(type) {
	case localTierStore:
		st.LocalPut(ctx, key, blob)
	case nil:
	default:
		c.store.Put(ctx, key, blob)
	}
}

// lookup probes a shard without touching the hit/miss counters (Compute's
// double-check path must not distort per-request accounting).
func (c *Cache) lookup(key string) (json.RawMessage, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	blob, ok := sh.entries[key]
	sh.mu.Unlock()
	return blob, ok
}

// Put stores report bytes under a key, writing through to the disk store
// when one is configured. First store wins: with a deterministic simulator
// any concurrent second computation produced the same bytes, so keeping
// the existing entry preserves pointer stability.
func (c *Cache) Put(ctx context.Context, key string, blob json.RawMessage) {
	if !c.add(key, blob) {
		return
	}
	if c.store != nil {
		c.store.Put(ctx, key, blob)
	}
}

// add inserts into the in-memory tier only, evicting the shard's oldest
// entries to stay within shardCap, and reports whether the key was new.
// Steady-state eviction is allocation-free: the ring slot is overwritten
// in place and the evicted key string is released.
func (c *Cache) add(key string, blob json.RawMessage) bool {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.entries[key]; ok {
		return false
	}
	for sh.n >= shardCap {
		delete(sh.entries, sh.order[sh.head])
		sh.order[sh.head] = ""
		sh.head = (sh.head + 1) % shardCap
		sh.n--
		c.met.Add(cacheEvictions, 1)
	}
	sh.entries[key] = blob
	sh.order[(sh.head+sh.n)%shardCap] = key
	sh.n++
	c.met.Add(cacheStores, 1)
	return true
}

// Compute returns the report for a key, running fn to produce it if no
// other goroutine already is: concurrent callers for one key coalesce onto
// a single computation (singleflight), and with a deterministic simulator
// every caller receives the same bytes either way. On error nothing is
// cached and every coalesced caller gets the error; a later retry
// recomputes. Callers are expected to have already probed Get (Compute
// itself never records hits or misses, only computes and dedup_hits).
// ctx rides into the write-through Put, bounding a clustered store's
// replication enqueue the same way Get bounds its fetches.
func (c *Cache) Compute(ctx context.Context, key string, fn func() (json.RawMessage, error)) (json.RawMessage, error) {
	c.flightMu.Lock()
	if call, ok := c.flight[key]; ok {
		c.flightMu.Unlock()
		<-call.done
		if call.err == nil {
			c.met.Add(cacheDedups, 1)
		}
		return call.blob, call.err
	}
	// No computation in flight; one may have finished between the caller's
	// miss and now, in which case its stored bytes are authoritative.
	if blob, ok := c.lookup(key); ok {
		c.flightMu.Unlock()
		return blob, nil
	}
	call := &flightCall{done: make(chan struct{})}
	c.flight[key] = call
	c.flightMu.Unlock()

	// The flight entry must be cleared and done closed even if fn panics —
	// a recovering caller above us must not wedge the key forever, and
	// waiters must see an error rather than a nil report. The panic itself
	// still propagates to the leader.
	defer func() {
		r := recover()
		if r != nil {
			call.err = fmt.Errorf("exp: panic computing run %s: %v", key, r)
		}
		c.flightMu.Lock()
		delete(c.flight, key)
		c.flightMu.Unlock()
		close(call.done)
		if r != nil {
			panic(r)
		}
	}()
	c.met.Add(cacheComputes, 1)
	call.blob, call.err = fn()
	if call.err == nil {
		c.Put(ctx, key, call.blob)
	}
	return call.blob, call.err
}

// Len returns the number of cached reports.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}

// Hits returns the lifetime hit counter.
func (c *Cache) Hits() int64 { return c.met.Value(cacheHits) }

// Misses returns the lifetime miss counter.
func (c *Cache) Misses() int64 { return c.met.Value(cacheMisses) }

// CacheStats is a point-in-time copy of the cache counters, served on
// /healthz and /v1/metrics. The wire shape lives in pkg/api with the
// rest of the v1 contract.
type CacheStats = api.CacheStats

// Stats snapshots all counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Entries:   int64(c.Len()),
		Hits:      c.met.Value(cacheHits),
		Misses:    c.met.Value(cacheMisses),
		Stores:    c.met.Value(cacheStores),
		Evictions: c.met.Value(cacheEvictions),
		Computes:  c.met.Value(cacheComputes),
		DedupHits: c.met.Value(cacheDedups),
	}
}

package exp

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"

	"repro/internal/figures"
	"repro/internal/sim"
	"repro/pkg/api"
)

// RunResult is one concrete run's outcome: the api.RunResult wire form
// plus engine-side bookkeeping. Cached is deliberately excluded from the
// JSON form: two identical sweeps must serialize byte-identically whether
// they were simulated or served from cache.
type RunResult struct {
	api.RunResult
	Cached bool `json:"-"`
}

// SweepResult is the outcome of one expanded spec, marshaling exactly as
// api.SweepResult. Runs appear in expansion order. Hits and Misses count
// this invocation's unique-key cache lookups (excluded from JSON for the
// same reason as Cached).
type SweepResult struct {
	SpecKey string      `json:"spec_key"`
	Runs    []RunResult `json:"runs"`
	Hits    int         `json:"-"`
	Misses  int         `json:"-"`
}

// ErrSweepCanceled tags sweeps cut short by context cancellation — a
// DELETE on the owning job, or a synchronous client disconnecting. Runs
// that finished before the cancellation remain cached.
var ErrSweepCanceled = errors.New("exp: sweep canceled")

// Engine expands specs and schedules their runs over a bounded worker
// pool, memoizing every report in a shared content-addressed cache. Safe
// for concurrent use (the HTTP service calls RunSpec from handler
// goroutines). Machines are recycled through a shared sim.Pool, so cold
// runs skip full machine assembly whenever a same-shaped machine has run
// before — across sweeps and requests, not just within one.
type Engine struct {
	cache *Cache
	pool  *sim.Pool
}

// EngineOption configures an Engine at construction.
type EngineOption func(*Engine)

// WithStore layers the engine's cache over a durable disk store (either
// backend satisfying ResultStore): lookups fall through memory → disk →
// simulate, and every computed report is written through, so a new
// engine over the same data dir serves previously computed sweeps
// without re-simulating.
func WithStore(st ResultStore) EngineOption {
	return func(e *Engine) { e.cache = NewCacheWithStore(st) }
}

// NewEngine returns an engine with an empty, memory-only cache unless an
// option says otherwise.
func NewEngine(opts ...EngineOption) *Engine {
	e := &Engine{cache: NewCache(), pool: sim.NewPool()}
	for _, opt := range opts {
		opt(e)
	}
	return e
}

// Cache exposes the engine's result cache (for metrics endpoints).
func (e *Engine) Cache() *Cache { return e.cache }

// PoolStats snapshots the engine's machine-pool counters (for metrics
// endpoints).
func (e *Engine) PoolStats() sim.PoolStats { return e.pool.Stats() }

// RunSpec expands the spec and produces every report, serving repeated
// runs from cache. workers == 0 selects runtime.NumCPU(), negative counts
// are rejected, and the pool is clamped to the number of cache misses.
// The result is a pure function of the spec: run order is expansion order
// and every report is deterministic, so neither the worker count nor the
// cache state can change a single output byte. Canceling ctx stops
// scheduling new runs (in-flight simulations finish and stay cached) and
// fails the sweep with the context's error.
func (e *Engine) RunSpec(ctx context.Context, spec Spec, workers int) (*SweepResult, error) {
	runs, err := spec.Expand()
	if err != nil {
		return nil, err
	}
	return e.execute(ctx, runs, workers, nil)
}

// execute produces every report for pre-expanded runs. When onRun is
// non-nil it is called once per run index as that run's report becomes
// available — in no particular order, possibly from several worker
// goroutines at once — which is how the async job API streams results
// while a sweep executes. The returned SweepResult is identical whether
// or not onRun is set.
//
// Cancellation is cooperative at run granularity: once ctx is done, no
// further runs are handed to the pool and already-claimed runs are
// skipped, but a simulation that already started runs to completion and
// is cached — cancellation never wastes finished work, and it never
// poisons the singleflight table other requests may be waiting on.
func (e *Engine) execute(ctx context.Context, runs []Run, workers int, onRun func(int, RunResult)) (*SweepResult, error) {
	if workers < 0 {
		return nil, fmt.Errorf("exp: negative worker count %d", workers)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSweepCanceled, err)
	}
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	out := &SweepResult{Runs: make([]RunResult, len(runs))}
	idxByKey := make(map[string][]int, len(runs))
	keyOrder := make([]string, 0, len(runs)) // unique keys, first occurrence first
	runByKey := make(map[string]Run, len(runs))
	for i, r := range runs {
		out.Runs[i] = RunResult{
			RunResult: api.RunResult{
				Key:      r.Key,
				Scenario: r.Scenario,
				Scale:    r.Scale.String(),
				Params:   r.Params,
			},
		}
		if _, seen := idxByKey[r.Key]; !seen {
			keyOrder = append(keyOrder, r.Key)
			runByKey[r.Key] = r
		}
		idxByKey[r.Key] = append(idxByKey[r.Key], i)
	}

	// resolve publishes one unique key's report to every run index that
	// shares it. Distinct keys own distinct index sets, so concurrent
	// workers never write the same element.
	resolve := func(key string, blob json.RawMessage, cached bool) {
		for _, i := range idxByKey[key] {
			out.Runs[i].Report = blob
			out.Runs[i].Cached = cached
			if onRun != nil {
				onRun(i, out.Runs[i])
			}
		}
	}

	// Lookup phase: one cache probe per unique key, so overlapping grid
	// points inside one sweep are simulated at most once.
	var misses []Run
	for _, key := range keyOrder {
		if blob, ok := e.cache.Get(ctx, key); ok {
			resolve(key, blob, true)
			out.Hits++
		} else {
			misses = append(misses, runByKey[key])
			out.Misses++
		}
	}

	// Execute phase: shard the misses over the pool; results land at
	// fixed indices, so scheduling order cannot reorder anything. Each run
	// goes through Cache.Compute, which coalesces identical in-flight runs
	// across concurrent requests onto one simulation and caches every run
	// that completes — so a corrected retry (or an overlapping sweep) never
	// re-simulates the points that already succeeded.
	if len(misses) > 0 {
		if workers > len(misses) {
			workers = len(misses)
		}
		errs := make([]error, len(misses))
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					// A run claimed just before cancellation is skipped here
					// rather than simulated; the cancellation check below
					// reports the sweep canceled either way.
					if ctx.Err() != nil {
						continue
					}
					r := misses[i]
					var blob json.RawMessage
					blob, errs[i] = e.cache.Compute(ctx, r.Key, func() (json.RawMessage, error) {
						return e.executeRun(r)
					})
					if errs[i] == nil {
						resolve(r.Key, blob, false)
					}
				}
			}()
		}
	feed:
		for i := range misses {
			select {
			case work <- i:
			case <-ctx.Done():
				break feed
			}
		}
		close(work)
		wg.Wait()
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSweepCanceled, err)
		}
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("exp: scenario %s (%s): %w",
					misses[i].Scenario, FormatParams(misses[i].Params), err)
			}
		}
	}

	specSum := sha256.New()
	for _, r := range runs {
		specSum.Write([]byte(r.Key))
	}
	out.SpecKey = hex.EncodeToString(specSum.Sum(nil))
	return out, nil
}

// executeStream produces every report of a lazily expanded sweep without
// ever materializing the run list or the result set: a feeder goroutine
// generates runs in expansion order (hashing the spec key incrementally as
// it goes), workers probe the cache and simulate misses, and each result
// is handed to onRun as it completes — then dropped, so resident memory is
// bounded by the worker count no matter how many runs the sweep has. The
// returned SweepResult carries only aggregates (SpecKey, Hits, Misses);
// Runs is nil by design.
//
// Two accounting differences from execute are deliberate: Hits/Misses
// count per run (not per unique key), so a sweep whose grid points
// collapse to one key reports later occurrences as hits; and when several
// runs fail, the error reported is the failing run with the lowest index
// (execute reports the lowest-index miss), keeping the reported error
// deterministic under any worker interleaving. Cancellation semantics are
// identical to execute.
func (e *Engine) executeStream(ctx context.Context, x *Expansion, workers int, onRun func(int, RunResult)) (*SweepResult, error) {
	if workers < 0 {
		return nil, fmt.Errorf("exp: negative worker count %d", workers)
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSweepCanceled, err)
	}
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	total := x.Total()
	if workers > total {
		workers = total
	}

	var (
		mu       sync.Mutex
		hits     int
		misses   int
		firstErr error
		errIdx   = total // lowest failing index seen so far
	)
	recordErr := func(i int, err error) {
		mu.Lock()
		if i < errIdx {
			errIdx, firstErr = i, err
		}
		mu.Unlock()
	}

	type item struct {
		i int
		r Run
	}
	work := make(chan item, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range work {
				if ctx.Err() != nil {
					continue
				}
				rr := RunResult{
					RunResult: api.RunResult{
						Key:      it.r.Key,
						Scenario: it.r.Scenario,
						Scale:    it.r.Scale.String(),
						Params:   it.r.Params,
					},
				}
				if blob, ok := e.cache.Get(ctx, it.r.Key); ok {
					rr.Report, rr.Cached = blob, true
					mu.Lock()
					hits++
					mu.Unlock()
				} else {
					blob, err := e.cache.Compute(ctx, it.r.Key, func() (json.RawMessage, error) {
						return e.executeRun(it.r)
					})
					if err != nil {
						recordErr(it.i, fmt.Errorf("exp: scenario %s (%s): %w",
							it.r.Scenario, FormatParams(it.r.Params), err))
						continue
					}
					rr.Report = blob
					mu.Lock()
					misses++
					mu.Unlock()
				}
				if onRun != nil {
					onRun(it.i, rr)
				}
			}
		}()
	}

	// The feeder materializes runs one at a time in expansion order; the
	// spec key is the same hash over the same key sequence execute uses,
	// accumulated incrementally instead of over a stored slice.
	specSum := sha256.New()
feed:
	for i := 0; i < total; i++ {
		r, err := x.RunAt(i)
		if err != nil {
			// RunAt(0) was probed at construction, so a failure here is a
			// later grid point the probe could not cover.
			recordErr(i, err)
			break
		}
		specSum.Write([]byte(r.Key))
		select {
		case work <- item{i: i, r: r}:
		case <-ctx.Done():
			break feed
		}
	}
	close(work)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSweepCanceled, err)
	}
	if firstErr != nil {
		return nil, firstErr
	}
	return &SweepResult{
		SpecKey: hex.EncodeToString(specSum.Sum(nil)),
		Hits:    hits,
		Misses:  misses,
	}, nil
}

// executeRun simulates one concrete run and marshals its report. A panic
// inside the simulator is confined here: it becomes this run's error (and
// so a failed sweep), never a dead worker goroutine or a crashed process
// taking every other job down with it. (The machine pool tolerates this:
// a machine released mid-run is fully reinitialized before reuse.)
func (e *Engine) executeRun(r Run) (blob json.RawMessage, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("run panicked: %v\n%s", p, debug.Stack())
		}
	}()
	if err := failpoint("engine.run"); err != nil {
		return nil, err
	}
	rep, err := r.scn.run(e.pool, r.Config, r.Scale)
	if err != nil {
		return nil, err
	}
	return json.Marshal(rep)
}

// DecodeReport unmarshals cached report bytes back into a figures.Report
// (for text rendering in cmd/impact-sweep).
func DecodeReport(blob json.RawMessage) (figures.Report, error) {
	var rep figures.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return figures.Report{}, fmt.Errorf("exp: corrupt cached report: %v", err)
	}
	return rep, nil
}

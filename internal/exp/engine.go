package exp

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/figures"
)

// RunResult is one concrete run's outcome. Cached is deliberately excluded
// from the JSON form: two identical sweeps must serialize byte-identically
// whether they were simulated or served from cache.
type RunResult struct {
	Key      string            `json:"key"`
	Scenario string            `json:"scenario"`
	Scale    string            `json:"scale"`
	Params   map[string]string `json:"params,omitempty"`
	Report   json.RawMessage   `json:"report"`
	Cached   bool              `json:"-"`
}

// SweepResult is the outcome of one expanded spec. Runs appear in
// expansion order. Hits and Misses count this invocation's unique-key
// cache lookups (excluded from JSON for the same reason as Cached).
type SweepResult struct {
	SpecKey string      `json:"spec_key"`
	Runs    []RunResult `json:"runs"`
	Hits    int         `json:"-"`
	Misses  int         `json:"-"`
}

// Engine expands specs and schedules their runs over a bounded worker
// pool, memoizing every report in a shared content-addressed cache. Safe
// for concurrent use (the HTTP service calls RunSpec from handler
// goroutines).
type Engine struct {
	cache *Cache
}

// NewEngine returns an engine with an empty cache.
func NewEngine() *Engine {
	return &Engine{cache: NewCache()}
}

// Cache exposes the engine's result cache (for metrics endpoints).
func (e *Engine) Cache() *Cache { return e.cache }

// RunSpec expands the spec and produces every report, serving repeated
// runs from cache. workers == 0 selects runtime.NumCPU(), negative counts
// are rejected, and the pool is clamped to the number of cache misses.
// The result is a pure function of the spec: run order is expansion order
// and every report is deterministic, so neither the worker count nor the
// cache state can change a single output byte.
func (e *Engine) RunSpec(spec Spec, workers int) (*SweepResult, error) {
	if workers < 0 {
		return nil, fmt.Errorf("exp: negative worker count %d", workers)
	}
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	runs, err := spec.Expand()
	if err != nil {
		return nil, err
	}

	// Lookup phase: one cache probe per unique key, so overlapping grid
	// points inside one sweep are simulated at most once.
	reports := make(map[string]json.RawMessage, len(runs))
	cached := make(map[string]bool, len(runs))
	var misses []Run
	out := &SweepResult{}
	for _, r := range runs {
		if _, seen := cached[r.Key]; seen {
			continue
		}
		if blob, ok := e.cache.Get(r.Key); ok {
			reports[r.Key] = blob
			cached[r.Key] = true
			out.Hits++
		} else {
			cached[r.Key] = false
			misses = append(misses, r)
			out.Misses++
		}
	}

	// Execute phase: shard the misses over the pool; results land at
	// fixed indices, so scheduling order cannot reorder anything. Each run
	// goes through Cache.Compute, which coalesces identical in-flight runs
	// across concurrent requests onto one simulation and caches every run
	// that completes — so a corrected retry (or an overlapping sweep) never
	// re-simulates the points that already succeeded.
	if len(misses) > 0 {
		if workers > len(misses) {
			workers = len(misses)
		}
		blobs := make([]json.RawMessage, len(misses))
		errs := make([]error, len(misses))
		work := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range work {
					r := misses[i]
					blobs[i], errs[i] = e.cache.Compute(r.Key, func() (json.RawMessage, error) {
						return executeRun(r)
					})
				}
			}()
		}
		for i := range misses {
			work <- i
		}
		close(work)
		wg.Wait()
		for i, r := range misses {
			if errs[i] == nil {
				reports[r.Key] = blobs[i]
			}
		}
		for i, err := range errs {
			if err != nil {
				return nil, fmt.Errorf("exp: scenario %s (%s): %w",
					misses[i].Scenario, FormatParams(misses[i].Params), err)
			}
		}
	}

	out.Runs = make([]RunResult, len(runs))
	specSum := sha256.New()
	for i, r := range runs {
		out.Runs[i] = RunResult{
			Key:      r.Key,
			Scenario: r.Scenario,
			Scale:    r.Scale.String(),
			Params:   r.Params,
			Report:   reports[r.Key],
			Cached:   cached[r.Key],
		}
		specSum.Write([]byte(r.Key))
	}
	out.SpecKey = hex.EncodeToString(specSum.Sum(nil))
	return out, nil
}

// executeRun simulates one concrete run and marshals its report.
func executeRun(r Run) (json.RawMessage, error) {
	rep, err := r.scn.run(r.Config, r.Scale)
	if err != nil {
		return nil, err
	}
	return json.Marshal(rep)
}

// DecodeReport unmarshals cached report bytes back into a figures.Report
// (for text rendering in cmd/impact-sweep).
func DecodeReport(blob json.RawMessage) (figures.Report, error) {
	var rep figures.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return figures.Report{}, fmt.Errorf("exp: corrupt cached report: %v", err)
	}
	return rep, nil
}

package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro/internal/figures"
	"repro/internal/sim"
	"repro/pkg/api"
)

// reportBytes runs one scenario on one machine source and marshals the
// report exactly as the engine would.
func reportBytes(t testing.TB, scn scenario, pool *sim.Pool, cfg sim.Config) []byte {
	t.Helper()
	rep, err := scn.run(pool, cfg, figures.ScaleQuick)
	if err != nil {
		t.Fatalf("scenario %s: %v", scn.Name, err)
	}
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestPooledMachineDeterminism is the contract the machine pool stands
// on: Machine.Reset must be provably state-free. For every registered
// scenario, a report produced on a pooled machine — deliberately dirtied
// by other scenarios and other configs first — must be byte-identical to
// one produced on a freshly assembled machine. The config sequence
// exercises both pool routes: B shares A's shape (the reset fast path)
// and C changes the LLC geometry (its own pool shard), so every round
// interleaves reuse across two live shapes.
func TestPooledMachineDeterminism(t *testing.T) {
	cfgA := sim.DefaultConfig()
	cfgB := sim.DefaultConfig()
	cfgB.Costs.FlushOverhead += 100 // same machine shape, different behavior
	cfgC := sim.DefaultConfig()
	cfgC.LLCBytes = 4 << 20 // different LLC geometry: separate pool shard

	pool := sim.NewPool()
	for _, scn := range scenarios() {
		configs := []sim.Config{cfgA, cfgB, cfgC}
		if !scn.ConfigSensitive {
			// Figure replays build their own fixed machines; one config
			// point pins that the pooled path cannot perturb them either.
			configs = configs[:1]
		}
		want := make([][]byte, len(configs))
		for i, cfg := range configs {
			want[i] = reportBytes(t, scn, nil, cfg)
		}
		// Interleave configs on one shared pool so every run after the
		// first sees a machine dirtied by a different grid point.
		for round := 0; round < 2; round++ {
			for i := len(configs) - 1; i >= 0; i-- {
				if got := reportBytes(t, scn, pool, configs[i]); string(got) != string(want[i]) {
					t.Fatalf("scenario %s config %d round %d: pooled report diverged from fresh\n got %s\nwant %s",
						scn.Name, i, round, got, want[i])
				}
			}
		}
	}
	st := pool.Stats()
	if st.Hits == 0 {
		t.Fatalf("pool stats %+v: the reset fast path was never exercised", st)
	}
	if st.Drops != 0 {
		// The shape key must cover everything Reset pre-checks: a drop
		// here means a machine was routed to a shard it cannot serve.
		t.Fatalf("pool stats %+v: shape-sharded pool dropped a machine on a valid config", st)
	}
	if st.Misses < 2 {
		t.Fatalf("pool stats %+v: expected a fresh build per distinct shape", st)
	}
}

// TestPooledSweepParallelDeterminism drives a grid through the engine at
// 8 workers — every worker contending for the shared machine pool — and
// requires the sweep body to be byte-identical to a single-worker sweep
// on a fresh engine. Run under -race in `make race`/`make coldpath-smoke`,
// this is the concurrency half of the pool's determinism contract.
func TestPooledSweepParallelDeterminism(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"scenario": "covert-pnm",
		"grid": {
			"llc_bytes": [2097152, 4194304, 8388608, 16777216],
			"costs.flush_overhead": [300, 400]
		}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	body := func(workers int) []byte {
		res, err := NewEngine().RunSpec(context.Background(), spec, workers)
		if err != nil {
			t.Fatal(err)
		}
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return blob
	}
	want := body(1)
	for i := 0; i < 3; i++ {
		if got := body(8); string(got) != string(want) {
			t.Fatalf("8-worker pooled sweep diverged from 1-worker sweep:\n got %s\nwant %s", got, want)
		}
	}
}

// expansionAxes is the pool of valid grid axes the randomized
// lazy-vs-eager trials draw from (every path names a real config field
// and every value passes sim.FromJSON).
var expansionAxes = []struct {
	path string
	vals []string
}{
	{"llc_bytes", []string{"2097152", "4194304", "8388608", "16777216"}},
	{"llc_ways", []string{"8", "16"}},
	{"costs.flush_overhead", []string{"100", "200", "300"}},
	{"noise.seed", []string{"1", "2", "3", "4", "5"}},
	{"noise.events_per_mcycle", []string{"0", "50.5"}},
	{"mem.defense", []string{`"none"`, `"crp"`}},
}

// checkExpansionMatchesExpand asserts the lazy iterator reproduces the
// eager path exactly: same total, same expansion order, same content
// addresses, same grid-point labels.
func checkExpansionMatchesExpand(t *testing.T, spec Spec) {
	t.Helper()
	runs, err := spec.Expand()
	if err != nil {
		t.Fatalf("Expand(%v): %v", spec.Grid, err)
	}
	x, err := spec.Expansion(MaxRuns)
	if err != nil {
		t.Fatalf("Expansion(%v): %v", spec.Grid, err)
	}
	if x.Total() != len(runs) {
		t.Fatalf("Total() = %d, Expand produced %d runs", x.Total(), len(runs))
	}
	for i, want := range runs {
		got, err := x.RunAt(i)
		if err != nil {
			t.Fatalf("RunAt(%d): %v", i, err)
		}
		if got.Key != want.Key {
			t.Fatalf("run %d: lazy key %s != eager key %s", i, got.Key, want.Key)
		}
		if got.Scenario != want.Scenario || got.Scale != want.Scale {
			t.Fatalf("run %d: identity (%s, %s) != (%s, %s)",
				i, got.Scenario, got.Scale, want.Scenario, want.Scale)
		}
		if FormatParams(got.Params) != FormatParams(want.Params) {
			t.Fatalf("run %d: params %s != %s", i, FormatParams(got.Params), FormatParams(want.Params))
		}
	}
	for _, bad := range []int{-1, x.Total()} {
		if _, err := x.RunAt(bad); err == nil {
			t.Fatalf("RunAt(%d) accepted an out-of-range index", bad)
		}
	}
}

// randomGridSpec draws a random spec over the valid axis pool: a random
// subset of axes (possibly none — the empty grid), each with a random
// non-empty value subset (often a single value).
func randomGridSpec(rng *rand.Rand) Spec {
	spec := Spec{Scenario: "covert-pnm"}
	if rng.Intn(8) == 0 {
		return spec // empty grid: exactly one run
	}
	spec.Grid = map[string][]json.RawMessage{}
	for _, ax := range expansionAxes {
		if rng.Intn(2) == 0 {
			continue
		}
		n := 1 + rng.Intn(len(ax.vals))
		perm := rng.Perm(len(ax.vals))[:n]
		vals := make([]json.RawMessage, n)
		for i, j := range perm {
			vals[i] = json.RawMessage(ax.vals[j])
		}
		spec.Grid[ax.path] = vals
	}
	return spec
}

// TestExpansionMatchesExpand is the lazy-expansion equivalence property
// over randomized grids, plus the deterministic corners: the empty grid
// and all-single-value axes.
func TestExpansionMatchesExpand(t *testing.T) {
	checkExpansionMatchesExpand(t, Spec{Scenario: "covert-pnm"})
	checkExpansionMatchesExpand(t, Spec{Scenario: "covert-pum", Grid: map[string][]json.RawMessage{
		"llc_bytes":   {json.RawMessage("4194304")},
		"noise.seed":  {json.RawMessage("7")},
		"mem.defense": {json.RawMessage(`"crp"`)},
	}})
	rng := rand.New(rand.NewSource(20250808))
	for trial := 0; trial < 60; trial++ {
		checkExpansionMatchesExpand(t, randomGridSpec(rng))
	}
}

// FuzzExpansionMatchesExpand fuzzes the same property: any seed's random
// grid must expand identically through both paths.
func FuzzExpansionMatchesExpand(f *testing.F) {
	for _, seed := range []int64{1, 42, 20250808} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		checkExpansionMatchesExpand(t, randomGridSpec(rand.New(rand.NewSource(seed))))
	})
}

// TestGridTooLarge pins the overflow-safe run-count guard: a grid whose
// Cartesian product overflows int must fail with ErrGridTooLarge (and a
// 400 grid_too_large through statusFor) on both expansion paths, without
// attempting the allocation.
func TestGridTooLarge(t *testing.T) {
	// 7 axes x 1000 values = 10^21 runs: past int64, let alone the limits.
	grid := map[string][]json.RawMessage{}
	for a := 0; a < 7; a++ {
		vals := make([]json.RawMessage, 1000)
		for j := range vals {
			vals[j] = json.RawMessage(strconv.Itoa(j))
		}
		grid[fmt.Sprintf("axis%d", a)] = vals
	}
	spec := Spec{Scenario: "covert-pnm", Grid: grid}

	if _, err := spec.Expand(); !errorsIsGridTooLarge(err) {
		t.Fatalf("Expand on an overflowing grid = %v, want ErrGridTooLarge", err)
	}
	_, err := spec.Expansion(MaxJobRuns)
	if !errorsIsGridTooLarge(err) {
		t.Fatalf("Expansion on an overflowing grid = %v, want ErrGridTooLarge", err)
	}
	if status, code := statusFor(err); status != http.StatusBadRequest || code != api.CodeGridTooLarge {
		t.Fatalf("statusFor(ErrGridTooLarge) = %d %s, want 400 %s", status, code, api.CodeGridTooLarge)
	}

	// Just past the synchronous bound (not overflowing): same error.
	over := Spec{Scenario: "covert-pnm", Grid: map[string][]json.RawMessage{
		"noise.seed":           manyInts(70),
		"costs.flush_overhead": manyInts(70), // 4900 > MaxRuns
	}}
	if _, err := over.Expand(); !errorsIsGridTooLarge(err) {
		t.Fatalf("Expand just past MaxRuns = %v, want ErrGridTooLarge", err)
	}
	if _, err := over.Expansion(MaxJobRuns); err != nil {
		t.Fatalf("the job bound must still admit a %d-run grid: %v", 70*70, err)
	}
}

// TestServerGridTooLarge pins the wire form: POST /v1/run with an
// oversized grid answers 400 with the stable grid_too_large code.
func TestServerGridTooLarge(t *testing.T) {
	body := fmt.Sprintf(`{"scenario": "covert-pnm", "grid": {"noise.seed": %s, "costs.flush_overhead": %s}}`,
		intsJSON(70), intsJSON(70))
	rec := doRequest(t, NewServer(NewEngine()).Handler(), http.MethodPost, "/v1/run", body)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("POST /v1/run oversized grid = %d: %s", rec.Code, rec.Body)
	}
	var env api.Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Err == nil {
		t.Fatalf("error body %q (%v)", rec.Body, err)
	}
	if env.Err.Code != api.CodeGridTooLarge {
		t.Fatalf("error code = %s, want %s", env.Err.Code, api.CodeGridTooLarge)
	}
}

func errorsIsGridTooLarge(err error) bool { return errors.Is(err, ErrGridTooLarge) }

func manyInts(n int) []json.RawMessage {
	vals := make([]json.RawMessage, n)
	for i := range vals {
		vals[i] = json.RawMessage(strconv.Itoa(i))
	}
	return vals
}

func intsJSON(n int) string {
	blob, _ := json.Marshal(manyInts(n))
	return string(blob)
}

// syntheticScenario registers a microsecond-cost config-sensitive
// scenario under the given name for the duration of the test, so
// 10^5-run sweeps exercise the streaming machinery without paying 10^5
// simulations. The returned func restores the registry.
func syntheticScenario(name string) func() {
	testScenarios = append(testScenarios, scenario{
		Name:            name,
		Description:     "synthetic test scenario (constant-time run)",
		ConfigSensitive: true,
		run: func(_ *sim.Pool, cfg sim.Config, _ figures.Scale) (figures.Report, error) {
			return figures.Report{
				ID:    name,
				Title: "synthetic",
				Rows: []figures.Row{{
					Label: "seed", Paper: "-", Measured: fmt.Sprint(cfg.Noise.Seed),
				}},
			}, nil
		},
	})
	return func() { testScenarios = testScenarios[:len(testScenarios)-1] }
}

// streamMemoryBudget bounds peak HeapAlloc while a 10^5-run sweep flows
// through the streaming path. The eager path materializes every Run
// (each embedding a full sim.Config plus a params map — well over 1 KiB
// apiece) and every RunResult, so 10^5 runs would hold hundreds of MiB;
// the streaming path's live set is the worker count plus the bounded
// result cache — measured ~11 MiB peak at 10^5 runs, far under this
// bound.
const streamMemoryBudget = 64 << 20

// TestStreamingSweepMemoryBound drives a 100,000-run grid through
// executeStream and asserts peak heap stays bounded: the run list is
// never materialized and per-run results are dropped as they stream.
// Skipped under -short; `make coldpath-smoke` runs a trimmed grid via
// TestStreamingSweepMemoryBoundTrimmed either way.
func TestStreamingSweepMemoryBound(t *testing.T) {
	if testing.Short() {
		t.Skip("10^5-run streaming sweep skipped in -short mode")
	}
	streamMemoryBound(t, 1000, 100)
}

// TestStreamingSweepMemoryBoundTrimmed is the smoke-sized variant: same
// assertions, 10^3 runs.
func TestStreamingSweepMemoryBoundTrimmed(t *testing.T) {
	streamMemoryBound(t, 100, 10)
}

func streamMemoryBound(t *testing.T, seeds, overheads int) {
	t.Helper()
	restore := syntheticScenario("synthetic-coldpath")
	defer restore()

	grid := map[string][]json.RawMessage{
		"noise.seed":           manyInts(seeds),
		"costs.flush_overhead": manyInts(overheads),
	}
	spec := Spec{Scenario: "synthetic-coldpath", Grid: grid}
	x, err := spec.Expansion(MaxJobRuns)
	if err != nil {
		t.Fatal(err)
	}
	total := seeds * overheads
	if x.Total() != total {
		t.Fatalf("Total() = %d, want %d", x.Total(), total)
	}

	var (
		completed int64
		peak      uint64
		ms        runtime.MemStats
	)
	runtime.GC()
	runtime.ReadMemStats(&ms)
	peak = ms.HeapAlloc

	e := NewEngine()
	var mu sync.Mutex
	res, err := e.executeStream(context.Background(), x, 0, func(i int, rr RunResult) {
		mu.Lock()
		completed++
		if completed%512 == 0 {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > peak {
				peak = ms.HeapAlloc
			}
		}
		mu.Unlock()
		if len(rr.Report) == 0 {
			t.Errorf("run %d streamed with an empty report", i)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != nil {
		t.Fatalf("streaming sweep pinned %d results; Runs must stay nil", len(res.Runs))
	}
	if got := res.Hits + res.Misses; got != total {
		t.Fatalf("hits(%d)+misses(%d) = %d, want %d", res.Hits, res.Misses, got, total)
	}
	if completed != int64(total) {
		t.Fatalf("onRun fired %d times, want %d", completed, total)
	}
	if res.SpecKey == "" {
		t.Fatal("streaming sweep produced no spec key")
	}
	t.Logf("streaming %d-run sweep: peak HeapAlloc %.1f MiB (budget %d MiB)",
		total, float64(peak)/(1<<20), streamMemoryBudget>>20)
	if peak > streamMemoryBudget {
		t.Fatalf("peak HeapAlloc %d exceeds the %d-byte streaming budget", peak, streamMemoryBudget)
	}
}

// TestStreamingMatchesExecute pins that the streaming path reports the
// same spec key as the eager path and streams every run's exact bytes:
// the job API's move to executeStream must not change a single stream
// line.
func TestStreamingMatchesExecute(t *testing.T) {
	spec, err := ParseSpec([]byte(`{
		"scenario": "covert-pnm",
		"grid": {"llc_bytes": [4194304, 8388608], "noise.seed": [1, 2]}
	}`))
	if err != nil {
		t.Fatal(err)
	}

	eager := NewEngine()
	want, err := eager.RunSpec(context.Background(), Spec(spec), 0)
	if err != nil {
		t.Fatal(err)
	}

	streaming := NewEngine()
	x, err := Spec(spec).Expansion(MaxJobRuns)
	if err != nil {
		t.Fatal(err)
	}
	lines := make([][]byte, x.Total())
	res, err := streaming.executeStream(context.Background(), x, 0, func(i int, rr RunResult) {
		blob, err := json.Marshal(rr)
		if err != nil {
			t.Error(err)
			return
		}
		lines[i] = blob
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SpecKey != want.SpecKey {
		t.Fatalf("streaming spec key %s != eager %s", res.SpecKey, want.SpecKey)
	}
	for i, wantRun := range want.Runs {
		wantLine, err := json.Marshal(wantRun)
		if err != nil {
			t.Fatal(err)
		}
		if string(lines[i]) != string(wantLine) {
			t.Fatalf("stream line %d:\n got %s\nwant %s", i, lines[i], wantLine)
		}
	}
}

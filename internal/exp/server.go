package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// maxSpecBytes bounds POST /v1/run and POST /v1/jobs request bodies.
const maxSpecBytes = 1 << 20

// Server serves experiment reports over HTTP from a shared Engine. Because
// every report is deterministic and content-addressed, responses for one
// spec are byte-identical across requests; the X-Cache headers are the
// only request-dependent surface.
//
//	POST /v1/run              run a Spec document, returns the SweepResult
//	POST /v1/jobs             enqueue a Spec as an async job, returns 202
//	GET  /v1/jobs/{id}        job status + per-run progress counts
//	GET  /v1/jobs/{id}/stream RunResults as NDJSON while the sweep executes
//	GET  /v1/figures/{id}     run one registry scenario, returns its Report
//	GET  /v1/scenarios        list runnable scenarios
//	GET  /v1/metrics          per-route counters + cache/store/job stats
//	GET  /healthz             liveness + cache hit/miss counters
//
// Experiment routes run behind a metrics middleware that records request
// counts, error counts, and a latency histogram per route; /healthz and
// /v1/metrics are deliberately outside it, so scraping observability
// endpoints never pollutes the result cache or the experiment counters.
type Server struct {
	engine  *Engine
	workers int
	jobs    *Jobs
	met     *metrics.Groups
}

// routeID labels the instrumented routes, in the counter slot order built
// by newServerMetrics.
type routeID int

const (
	routeRun routeID = iota
	routeFigure
	routeScenarios
	routeJobSubmit
	routeJobStatus
	routeJobStream
	routeCount
)

// routeNames are the stable labels used in the /v1/metrics document.
var routeNames = []string{"run", "figure", "scenarios", "job_submit", "job_status", "job_stream"}

// Per-route counter slots inside the metrics.Groups blocks.
const (
	slotRequests = iota
	slotErrors
)

// NewServer wraps an engine; workers bounds each request's (and each
// job's) simulation pool (0 = all cores), maxJobs bounds the async job
// registry (<= 0 selects DefaultMaxJobs).
func NewServer(engine *Engine, workers, maxJobs int) *Server {
	return &Server{
		engine:  engine,
		workers: workers,
		jobs:    NewJobs(engine, workers, maxJobs),
		met: metrics.NewGroups(routeNames, []string{"requests", "errors"},
			"latency_ns", metrics.LatencyBounds()),
	}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/scenarios", s.instrument(routeScenarios, s.handleScenarios))
	mux.HandleFunc("POST /v1/run", s.instrument(routeRun, s.handleRun))
	mux.HandleFunc("GET /v1/figures/{id}", s.instrument(routeFigure, s.handleFigure))
	mux.HandleFunc("POST /v1/jobs", s.instrument(routeJobSubmit, s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument(routeJobStatus, s.handleJobStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.instrument(routeJobStream, s.handleJobStream))
	return mux
}

// statusRecorder captures the response status for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards flush capability so instrumented routes can stream —
// without it the job stream's per-line flushes would silently buffer
// until the sweep finished.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// discovers extension interfaces (Flusher, deadlines) through it.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps one experiment route with request/error counting and
// wall-clock latency observation. Wall time is fine here: the serving
// layer is the one part of the system that is *supposed* to be measured in
// host time; simulated time never leaves the engine.
func (s *Server) instrument(route routeID, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.met.Add(int(route), slotRequests, 1)
		if rec.status >= 400 {
			s.met.Add(int(route), slotErrors, 1)
		}
		s.met.Observe(int(route), time.Since(start).Nanoseconds())
	}
}

// readSpec reads and parses a request's spec document, writing the error
// response itself on failure (shared by /v1/run and /v1/jobs).
func readSpec(w http.ResponseWriter, r *http.Request) (Spec, bool) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		return Spec{}, false
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("spec larger than %d bytes", maxSpecBytes))
		return Spec{}, false
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return Spec{}, false
	}
	return spec, true
}

// handleRun expands and runs a spec document.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	spec, ok := readSpec(w, r)
	if !ok {
		return
	}
	res, err := s.engine.RunSpec(spec, s.workers)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	setCacheHeaders(w, res.Hits, res.Misses)
	writeJSON(w, http.StatusOK, res)
}

// handleFigure serves one scenario by registry ID (an optional ?scale=
// query selects quick or full).
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	spec := Spec{Scenario: r.PathValue("id"), Scale: r.URL.Query().Get("scale")}
	res, err := s.engine.RunSpec(spec, s.workers)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	if len(res.Runs) == 0 {
		writeError(w, http.StatusInternalServerError,
			fmt.Errorf("exp: scenario %q expanded to no runs", spec.Scenario))
		return
	}
	setCacheHeaders(w, res.Hits, res.Misses)
	writeRawJSON(w, http.StatusOK, res.Runs[0].Report)
}

// handleJobSubmit validates a spec and enqueues it as an async job: the
// 202 response carries the job's initial state and a Location header, and
// the client polls or streams from there while the sweep executes.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	spec, ok := readSpec(w, r)
	if !ok {
		return
	}
	job, err := s.jobs.Submit(spec)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.Info())
}

// handleJobStatus reports one job's lifecycle state and progress counts.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("exp: unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.Info())
}

// handleJobStream streams the job's RunResults as NDJSON in expansion
// order, each line flushed as its run completes, so a client watches a
// long sweep make progress instead of holding a silent connection. A
// completed job replays its full result set; a failed sweep ends the
// stream with an {"error": ...} line after the runs that did finish.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.jobs.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("exp: unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	rc := http.NewResponseController(w)
	for i := 0; i < job.Total(); i++ {
		rr, ok := job.WaitRun(r.Context(), i)
		if !ok {
			if r.Context().Err() != nil {
				return // client gone; nothing left to tell it
			}
			// Failed sweep: this run never finished, but later ones may
			// have (the pool drains every queued run), and the contract
			// promises every finished run before the error line.
			continue
		}
		line, err := json.Marshal(rr)
		if err != nil {
			return
		}
		w.Write(line)
		w.Write([]byte("\n"))
		rc.Flush()
	}
	if err := job.Err(); err != nil {
		line, _ := json.Marshal(map[string]string{"error": err.Error()})
		w.Write(line)
		w.Write([]byte("\n"))
		rc.Flush()
	}
}

// handleScenarios lists the registry.
func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": ScenarioList()})
}

// handleHealth reports liveness and the engine's cache counters. The shape
// (status + entries/hits/misses) is a stable wire contract; the richer
// document lives on /v1/metrics.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := s.engine.Cache().Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"cache": map[string]int64{
			"entries": st.Entries,
			"hits":    st.Hits,
			"misses":  st.Misses,
		},
	})
}

// RouteMetrics is the per-route section of the /v1/metrics document.
// Latency quantiles are estimated from the fixed 1-2-5 bucket ladder
// (metrics.LatencyBounds), so they carry bucket-resolution error;
// LatencyOverflow counts samples beyond the top bound (reported by
// quantiles as that bound) and LatencyNegative counts clock-skewed
// samples clamped to zero, so neither distortion is silent.
type RouteMetrics struct {
	Requests        int64   `json:"requests"`
	Errors          int64   `json:"errors"`
	LatencyMeanN    float64 `json:"latency_mean_ns"`
	LatencyP50N     int64   `json:"latency_p50_ns"`
	LatencyP90N     int64   `json:"latency_p90_ns"`
	LatencyP99N     int64   `json:"latency_p99_ns"`
	LatencyOverflow int64   `json:"latency_overflow"`
	LatencyNegative int64   `json:"latency_negative"`
}

// MetricsDoc is the GET /v1/metrics response body. Store is present only
// when the engine has a durable disk store configured.
type MetricsDoc struct {
	Requests map[string]RouteMetrics `json:"requests"`
	Cache    CacheStats              `json:"cache"`
	Store    *StoreStats             `json:"store,omitempty"`
	Jobs     JobsStats               `json:"jobs"`
}

// handleMetrics serves the runtime metrics document. Read-only: it must
// never touch the result cache or the experiment counters (scrapers poll
// this endpoint, and polling is not traffic).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	doc := MetricsDoc{
		Requests: make(map[string]RouteMetrics, routeCount),
		Cache:    s.engine.Cache().Stats(),
		Jobs:     s.jobs.Stats(),
	}
	if st := s.engine.cache.store; st != nil {
		stats := st.Stats()
		doc.Store = &stats
	}
	for i := range routeNames {
		lat := s.met.Histogram(i)
		doc.Requests[routeNames[i]] = RouteMetrics{
			Requests:        s.met.Value(i, slotRequests),
			Errors:          s.met.Value(i, slotErrors),
			LatencyMeanN:    lat.Mean(),
			LatencyP50N:     lat.Quantile(0.50),
			LatencyP90N:     lat.Quantile(0.90),
			LatencyP99N:     lat.Quantile(0.99),
			LatencyOverflow: lat.Overflow,
			LatencyNegative: lat.Negative,
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// setCacheHeaders records how this request's unique runs were served:
// "hit" (all from cache), "miss" (none), or "partial" (an overlapping
// sweep). The counts ride along for sweep-level observability.
func setCacheHeaders(w http.ResponseWriter, hits, misses int) {
	state := "miss"
	switch {
	case misses == 0 && hits > 0:
		state = "hit"
	case misses > 0 && hits > 0:
		state = "partial"
	}
	w.Header().Set("X-Cache", state)
	w.Header().Set("X-Cache-Hits", fmt.Sprint(hits))
	w.Header().Set("X-Cache-Misses", fmt.Sprint(misses))
}

// statusFor maps engine errors to HTTP statuses: unknown scenarios are
// 404s (the resource does not exist), a full job registry is a 429 (try
// again once a job finishes), everything else a client spec error.
func statusFor(err error) int {
	if errors.Is(err, ErrUnknownScenario) {
		return http.StatusNotFound
	}
	if errors.Is(err, ErrTooManyJobs) {
		return http.StatusTooManyRequests
	}
	return http.StatusBadRequest
}

// writeRawJSON writes pre-marshaled JSON with the shared content type and
// the trailing newline every JSON body carries.
func writeRawJSON(w http.ResponseWriter, status int, blob []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(blob)
	w.Write([]byte("\n"))
}

// writeJSON marshals v once and writes it; marshaling before WriteHeader
// keeps error handling honest and the body deterministic.
func writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeRawJSON(w, status, blob)
}

// writeError emits a JSON error document.
func writeError(w http.ResponseWriter, status int, err error) {
	blob, _ := json.Marshal(map[string]string{"error": err.Error()})
	writeRawJSON(w, status, blob)
}

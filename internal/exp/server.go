package exp

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"mime"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/pkg/api"
)

// maxSpecBytes bounds POST /v1/run and POST /v1/jobs request bodies.
const maxSpecBytes = 1 << 20

// Server serves experiment reports over HTTP from a shared Engine,
// speaking the typed v1 wire contract defined in pkg/api: request and
// response bodies are pkg/api documents, and every error is a structured
// api.Envelope with a stable code. Because every report is deterministic
// and content-addressed, responses for one spec are byte-identical across
// requests; the X-Cache headers and X-Request-ID are the only
// request-dependent surface.
//
//	POST   /v1/run              run a Spec document, returns the SweepResult
//	POST   /v1/jobs             enqueue a Spec as an async job, returns 202
//	GET    /v1/jobs             list tracked jobs, newest-first, paginated
//	GET    /v1/jobs/{id}        job status + per-run progress counts
//	DELETE /v1/jobs/{id}        cancel a job (idempotent; terminal state "canceled")
//	GET    /v1/jobs/{id}/stream RunResults as NDJSON while the sweep executes
//	GET    /v1/figures/{id}     run one registry scenario, returns its Report
//	GET    /v1/scenarios        list runnable scenarios
//	GET    /v1/metrics          per-route counters + cache/store/job stats
//	GET    /healthz             liveness + build info + cache counters
//
// Experiment routes run behind a metrics middleware that records request
// counts, error counts, and a latency histogram per route; /healthz and
// /v1/metrics are deliberately outside it, so scraping observability
// endpoints never pollutes the result cache or the experiment counters.
type Server struct {
	engine  *Engine
	workers int
	maxJobs int
	journal *Journal
	jobs    *Jobs
	met     *metrics.Groups

	// Cluster identity, surfaced on /healthz (see WithNodeIdentity).
	nodeID    string
	storeKind string
	peers     int
}

// ServerOption configures a Server at construction.
type ServerOption func(*Server)

// WithWorkers bounds each request's (and each job's) simulation pool
// (0, the default, selects all cores).
func WithWorkers(n int) ServerOption {
	return func(s *Server) { s.workers = n }
}

// WithMaxJobs bounds the async job registry (<= 0, the default, selects
// DefaultMaxJobs).
func WithMaxJobs(n int) ServerOption {
	return func(s *Server) { s.maxJobs = n }
}

// WithJournal makes the job registry durable: accepted jobs persist to
// the journal, and NewServer replays it — re-enqueueing every job a
// previous process left unfinished — before the server takes traffic.
func WithJournal(jl *Journal) ServerOption {
	return func(s *Server) { s.journal = jl }
}

// WithNodeIdentity names this node for /healthz: its cluster node ID,
// the configured store backend ("memory", "files", "pack"), and how many
// peers its ring knows about (0 for a solo node). Identity is
// observability only — placement and routing live in the cluster store,
// not the HTTP layer.
func WithNodeIdentity(nodeID, storeKind string, peers int) ServerOption {
	return func(s *Server) { s.nodeID, s.storeKind, s.peers = nodeID, storeKind, peers }
}

// NewServer wraps an engine with the v1 HTTP surface; see WithWorkers,
// WithMaxJobs, and WithJournal for the tunables. With a journal attached,
// recovery runs here: by the time NewServer returns, interrupted jobs are
// already executing again.
func NewServer(engine *Engine, opts ...ServerOption) *Server {
	s := &Server{engine: engine, nodeID: "solo", storeKind: "memory"}
	for _, opt := range opts {
		opt(s)
	}
	s.jobs = NewJobs(engine, s.workers, s.maxJobs, s.journal)
	s.jobs.Recover()
	s.met = metrics.NewGroups(routeNames, []string{"requests", "errors"},
		"latency_ns", metrics.LatencyBounds())
	return s
}

// Shutdown gracefully drains the server's background work: new job
// submissions are rejected with 503 shutting_down, live jobs are
// interrupted (in-flight runs finish and land in the durable store, the
// journal records a resumable interrupted state), and Shutdown returns
// once every job goroutine has flushed — or ctx expires. Call before the
// HTTP listener's own Shutdown: quiescing first unblocks any job streams
// still holding connections open.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.jobs.Quiesce(ctx)
}

// JobsStats snapshots the job registry counters (for post-recovery
// logging in cmd/impact-server).
func (s *Server) JobsStats() JobsStats { return s.jobs.Stats() }

// routeID labels the instrumented routes, in the counter slot order built
// in NewServer.
type routeID int

const (
	routeRun routeID = iota
	routeFigure
	routeScenarios
	routeJobSubmit
	routeJobList
	routeJobStatus
	routeJobCancel
	routeJobStream
	routePeerGet
	routePeerPut
	routeCount
)

// routeNames are the stable labels used in the /v1/metrics document.
var routeNames = []string{
	"run", "figure", "scenarios", "job_submit", "job_list", "job_status",
	"job_cancel", "job_stream", "peer_get", "peer_put",
}

// Per-route counter slots inside the metrics.Groups blocks.
const (
	slotRequests = iota
	slotErrors
)

// Handler returns the route table, wrapped so every response — including
// the uninstrumented observability endpoints — carries an X-Request-ID.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/scenarios", s.instrument(routeScenarios, s.handleScenarios))
	mux.HandleFunc("POST /v1/run", s.instrument(routeRun, s.handleRun))
	mux.HandleFunc("GET /v1/figures/{id}", s.instrument(routeFigure, s.handleFigure))
	mux.HandleFunc("POST /v1/jobs", s.instrument(routeJobSubmit, s.handleJobSubmit))
	mux.HandleFunc("GET /v1/jobs", s.instrument(routeJobList, s.handleJobList))
	mux.HandleFunc("GET /v1/jobs/{id}", s.instrument(routeJobStatus, s.handleJobStatus))
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.instrument(routeJobCancel, s.handleJobCancel))
	mux.HandleFunc("GET /v1/jobs/{id}/stream", s.instrument(routeJobStream, s.handleJobStream))
	mux.HandleFunc("GET /v1/internal/results/{key}", s.instrument(routePeerGet, s.handlePeerGet))
	mux.HandleFunc("PUT /v1/internal/results/{key}", s.instrument(routePeerPut, s.handlePeerPut))
	return withRequestID(mux)
}

// withRequestID stamps X-Request-ID on every response: a sane inbound ID
// is echoed (so a caller's own correlation IDs survive the round trip),
// anything else gets a fresh one. The ID also rides the request context,
// so work done on this request's behalf — in particular the cluster
// store's peer-fetch hop — carries the same correlation ID to the next
// node.
func withRequestID(h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(api.HeaderRequestID)
		if !validRequestID(id) {
			id = newRequestID()
		}
		w.Header().Set(api.HeaderRequestID, id)
		h.ServeHTTP(w, r.WithContext(api.WithRequestID(r.Context(), id)))
	})
}

// validRequestID accepts short printable tokens without whitespace —
// enough to echo any reasonable tracing ID while refusing header abuse.
func validRequestID(id string) bool {
	if len(id) == 0 || len(id) > 128 {
		return false
	}
	for i := 0; i < len(id); i++ {
		if id[i] <= ' ' || id[i] > '~' {
			return false
		}
	}
	return true
}

// newRequestID returns a fresh 16-hex-digit ID. Randomness (rather than a
// counter) keeps IDs unique across restarts and replicas.
func newRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "req-unavailable"
	}
	return hex.EncodeToString(b[:])
}

// statusRecorder captures the response status for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards flush capability so instrumented routes can stream —
// without it the job stream's per-line flushes would silently buffer
// until the sweep finished.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController, which
// discovers extension interfaces (Flusher, deadlines) through it.
func (r *statusRecorder) Unwrap() http.ResponseWriter { return r.ResponseWriter }

// instrument wraps one experiment route with request/error counting and
// wall-clock latency observation. Wall time is fine here: the serving
// layer is the one part of the system that is *supposed* to be measured in
// host time; simulated time never leaves the engine.
func (s *Server) instrument(route routeID, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now() //lint:ignore nodeterminism request latency is host-time observability; simulated results never see it
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.met.Add(int(route), slotRequests, 1)
		if rec.status >= 400 {
			s.met.Add(int(route), slotErrors, 1)
		}
		//lint:ignore nodeterminism request latency is host-time observability; simulated results never see it
		s.met.Observe(int(route), time.Since(start).Nanoseconds())
	}
}

// readSpec reads and parses a request's spec document, writing the error
// response itself on failure (shared by /v1/run and /v1/jobs). A non-JSON
// Content-Type is a 415; an empty one is accepted for curl ergonomics.
func readSpec(w http.ResponseWriter, r *http.Request) (Spec, bool) {
	if ct := r.Header.Get("Content-Type"); ct != "" {
		mt, _, err := mime.ParseMediaType(ct)
		if err != nil || (mt != api.ContentTypeJSON && !strings.HasSuffix(mt, "+json")) {
			writeError(w, http.StatusUnsupportedMediaType, api.CodeUnsupportedMedia,
				fmt.Errorf("exp: Content-Type %q is not JSON (send application/json or omit the header)", ct))
			return Spec{}, false
		}
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("reading body: %v", err))
		return Spec{}, false
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, api.CodeSpecTooLarge,
			fmt.Errorf("spec larger than %d bytes", maxSpecBytes))
		return Spec{}, false
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeInvalidSpec, err)
		return Spec{}, false
	}
	return spec, true
}

// handleRun expands and runs a spec document. The request context rides
// into the engine, so a disconnecting client stops scheduling new runs
// (finished runs stay cached for the retry).
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	spec, ok := readSpec(w, r)
	if !ok {
		return
	}
	res, err := s.engine.RunSpec(r.Context(), spec, s.workers)
	if err != nil {
		status, code := statusFor(err)
		writeError(w, status, code, err)
		return
	}
	setCacheHeaders(w, res.Hits, res.Misses)
	writeJSON(w, http.StatusOK, res)
}

// handleFigure serves one scenario by registry ID (an optional ?scale=
// query selects quick or full).
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	spec := Spec{Scenario: r.PathValue("id"), Scale: r.URL.Query().Get("scale")}
	res, err := s.engine.RunSpec(r.Context(), spec, s.workers)
	if err != nil {
		status, code := statusFor(err)
		writeError(w, status, code, err)
		return
	}
	if len(res.Runs) == 0 {
		writeError(w, http.StatusInternalServerError, api.CodeInternal,
			fmt.Errorf("exp: scenario %q expanded to no runs", spec.Scenario))
		return
	}
	setCacheHeaders(w, res.Hits, res.Misses)
	writeRawJSON(w, http.StatusOK, res.Runs[0].Report)
}

// handleJobSubmit validates a spec and enqueues it as an async job: the
// 202 response carries the job's initial state and a Location header, and
// the client polls or streams from there while the sweep executes.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	spec, ok := readSpec(w, r)
	if !ok {
		return
	}
	job, err := s.jobs.Submit(spec)
	if err != nil {
		status, code := statusFor(err)
		if status == http.StatusTooManyRequests {
			// A slot opens as soon as one live job finishes; 1s is an honest
			// hint for well-behaved clients (pkg/client surfaces it).
			w.Header().Set("Retry-After", "1")
		}
		writeError(w, status, code, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.Info())
}

// handleJobList serves the tracked jobs newest-first. ?limit= bounds the
// page (default DefaultJobPageSize, capped at MaxJobPageSize) and
// ?page_token= (the next_page_token of the previous page) continues the
// walk toward older jobs.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	limit := 0
	if raw := q.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, api.CodeBadRequest,
				fmt.Errorf("exp: limit %q is not a positive integer", raw))
			return
		}
		limit = n
	}
	infos, next, err := s.jobs.List(limit, q.Get("page_token"))
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, api.JobPage{Jobs: infos, NextPageToken: next})
}

// lookupJob resolves a path's job ID, writing the 404/410 itself when the
// job is not tracked — 410 with code job_retired distinguishes "this ID
// existed but its record aged out" from "never existed".
func (s *Server) lookupJob(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	id := r.PathValue("id")
	job, state := s.jobs.Lookup(id)
	switch state {
	case LookupFound:
		return job, true
	case LookupRetired:
		writeError(w, http.StatusGone, api.CodeJobRetired,
			fmt.Errorf("exp: job %q retired from the bounded registry; its reports remain cached — resubmit the spec", id))
	default:
		writeError(w, http.StatusNotFound, api.CodeUnknownJob, fmt.Errorf("exp: unknown job %q", id))
	}
	return nil, false
}

// handleJobStatus reports one job's lifecycle state and progress counts.
func (s *Server) handleJobStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, job.Info())
}

// handleJobCancel cancels a job. Idempotent: canceling a terminal (or
// already-canceled) job changes nothing. The response is the job's state
// at cancellation time — in-flight runs still drain, so clients that need
// the terminal "canceled" state poll or stream until it lands.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	job.Cancel()
	writeJSON(w, http.StatusOK, job.Info())
}

// handleJobStream streams the job's RunResults as NDJSON in expansion
// order, each line flushed as its run completes, so a client watches a
// long sweep make progress instead of holding a silent connection. A
// completed job replays its full result set; a failed or canceled sweep
// ends the stream with an api.Envelope error line after the runs that did
// finish.
func (s *Server) handleJobStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.lookupJob(w, r)
	if !ok {
		return
	}
	rc := beginNDJSONStream(w)
	for i := 0; i < job.Total(); i++ {
		rr, ok := job.WaitRun(r.Context(), i)
		if !ok {
			if r.Context().Err() != nil {
				return // client gone; nothing left to tell it
			}
			// Failed or canceled sweep: this run never finished, but later
			// ones may have (the pool drains every claimed run), and the
			// contract promises every finished run before the error line.
			continue
		}
		line, err := json.Marshal(rr)
		if err != nil {
			return
		}
		writeStreamLine(w, rc, line)
	}
	if err := job.Err(); err != nil {
		code := api.CodeRunFailed
		switch {
		case errors.Is(err, ErrJobCanceled):
			code = api.CodeJobCanceled
		case errors.Is(err, ErrJobInterrupted):
			code = api.CodeJobInterrupted
		}
		line, _ := json.Marshal(api.Envelope{Err: &api.Error{Code: code, Message: err.Error()}})
		writeStreamLine(w, rc, line)
	}
}

// beginNDJSONStream opens an NDJSON response. Together with
// writeStreamLine it is the streaming counterpart of writeRawJSON: the
// only emitters allowed to touch a ResponseWriter directly (enforced by
// impact-lint's apienvelope), so every body the server produces goes
// through an audited, shared path.
func beginNDJSONStream(w http.ResponseWriter) *http.ResponseController {
	w.Header().Set("Content-Type", api.ContentTypeNDJSON)
	w.WriteHeader(http.StatusOK)
	return http.NewResponseController(w)
}

// writeStreamLine emits one pre-marshaled NDJSON line and flushes it, so
// clients watch long sweeps progress instead of holding a silent
// connection.
func writeStreamLine(w http.ResponseWriter, rc *http.ResponseController, line []byte) {
	w.Write(line)
	w.Write([]byte("\n"))
	rc.Flush()
}

// maxPeerResultBytes bounds PUT /v1/internal/results/{key} bodies.
// Reports are a few KiB; 8 MiB leaves an order-of-magnitude margin for
// future scenario growth while keeping a misbehaving peer from streaming
// unbounded bytes into memory.
const maxPeerResultBytes = 8 << 20

// validResultKey accepts exactly the content-address alphabet: 64
// lowercase hex digits (a full SHA-256). Anything else is a 400 before
// the store is consulted.
func validResultKey(key string) bool {
	if len(key) != 64 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// handlePeerGet serves one result blob to a cluster peer — strictly from
// this node's local tiers (memory, then local disk/pack). The lookup
// deliberately bypasses the cluster store's remote fallthrough: if node A
// asks node B and B asked C in turn, a missing key would ricochet around
// the ring. A local miss is a normal 404 (code result_not_found); the
// asking node simulates the run itself.
func (s *Server) handlePeerGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validResultKey(key) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Errorf("exp: result key %q is not a 64-digit hex digest", key))
		return
	}
	blob, ok := s.engine.Cache().PeekLocal(r.Context(), key)
	if !ok {
		writeError(w, http.StatusNotFound, api.CodeResultNotFound,
			fmt.Errorf("exp: result %s not held locally", key))
		return
	}
	writeRawJSON(w, http.StatusOK, blob)
}

// handlePeerPut accepts one replicated result blob from a cluster peer
// into this node's local tiers. Like handlePeerGet it stays strictly
// local — storing through the cluster store's Put would re-enqueue the
// blob for replication and echo it around the replica set forever. The
// body must be valid JSON (it is re-served verbatim by handlePeerGet),
// but is otherwise opaque: content addressing means a peer that sends
// bytes for a key it computed honestly can only send the right bytes.
func (s *Server) handlePeerPut(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	if !validResultKey(key) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Errorf("exp: result key %q is not a 64-digit hex digest", key))
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, maxPeerResultBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest, fmt.Errorf("reading body: %v", err))
		return
	}
	if len(body) > maxPeerResultBytes {
		writeError(w, http.StatusRequestEntityTooLarge, api.CodeSpecTooLarge,
			fmt.Errorf("result larger than %d bytes", maxPeerResultBytes))
		return
	}
	if !json.Valid(body) {
		writeError(w, http.StatusBadRequest, api.CodeBadRequest,
			fmt.Errorf("exp: replicated result %s is not valid JSON", key))
		return
	}
	s.engine.Cache().PutLocal(r.Context(), key, body)
	writeJSON(w, http.StatusOK, api.PeerAck{OK: true})
}

// handleScenarios lists the registry.
func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, api.ScenarioList{Scenarios: ScenarioList()})
}

// buildVersion and buildGo are resolved once from the binary's embedded
// build info for the health document.
var buildVersion, buildGo = readBuildInfo()

func readBuildInfo() (string, string) {
	if bi, ok := debug.ReadBuildInfo(); ok {
		v := bi.Main.Version
		if v == "" {
			v = "(devel)"
		}
		return v, bi.GoVersion
	}
	return "unknown", runtime.Version()
}

// handleHealth reports liveness, build info, and the engine's cache
// counters. The shape is a stable wire contract (api.Health); the richer
// document lives on /v1/metrics, and this endpoint stays uninstrumented
// so scraping it never pollutes the experiment counters.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := s.engine.Cache().Stats()
	writeJSON(w, http.StatusOK, api.Health{
		Status:  "ok",
		Version: buildVersion,
		Go:      buildGo,
		NodeID:  s.nodeID,
		Store:   s.storeKind,
		Peers:   s.peers,
		Cache: api.HealthCache{
			Entries: st.Entries,
			Hits:    st.Hits,
			Misses:  st.Misses,
		},
	})
}

// RouteMetrics and MetricsDoc are the /v1/metrics wire shapes, defined in
// pkg/api with the rest of the v1 contract.
type (
	RouteMetrics = api.RouteMetrics
	MetricsDoc   = api.MetricsDoc
)

// handleMetrics serves the runtime metrics document. Read-only: it must
// never touch the result cache or the experiment counters (scrapers poll
// this endpoint, and polling is not traffic).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	pool := s.engine.PoolStats()
	doc := MetricsDoc{
		Requests: make(map[string]RouteMetrics, routeCount),
		Cache:    s.engine.Cache().Stats(),
		Jobs:     s.jobs.Stats(),
		MachinePool: api.MachinePoolStats{
			Hits:   pool.Hits,
			Misses: pool.Misses,
			Drops:  pool.Drops,
		},
	}
	// The store section's shape follows the configured backend, detected
	// structurally (exp imports neither internal/exp/pack nor
	// internal/cluster; the dependencies point the other way via the cmd
	// layer), and a nil interface matches no case, leaving the sections
	// absent. A cluster store contributes its own section and then unwraps
	// to the local backend it shards, so the pack/store sections keep
	// reporting on this node's own tier.
	store := s.engine.cache.store
	if cs, ok := store.(interface{ ClusterStats() api.ClusterStats }); ok {
		stats := cs.ClusterStats()
		doc.Cluster = &stats
		if inner, ok := store.(interface{ Local() ResultStore }); ok {
			store = inner.Local()
		}
	}
	switch st := store.(type) {
	case interface{ PackStats() api.PackStats }:
		stats := st.PackStats()
		doc.Pack = &stats
	case interface{ Stats() api.StoreStats }:
		stats := st.Stats()
		doc.Store = &stats
	}
	for i := range routeNames {
		lat := s.met.Histogram(i)
		doc.Requests[routeNames[i]] = RouteMetrics{
			Requests:        s.met.Value(i, slotRequests),
			Errors:          s.met.Value(i, slotErrors),
			LatencyMeanN:    lat.Mean(),
			LatencyP50N:     lat.Quantile(0.50),
			LatencyP90N:     lat.Quantile(0.90),
			LatencyP99N:     lat.Quantile(0.99),
			LatencyOverflow: lat.Overflow,
			LatencyNegative: lat.Negative,
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// setCacheHeaders records how this request's unique runs were served:
// "hit" (all from cache), "miss" (none), or "partial" (an overlapping
// sweep). The counts ride along for sweep-level observability.
func setCacheHeaders(w http.ResponseWriter, hits, misses int) {
	state := "miss"
	switch {
	case misses == 0 && hits > 0:
		state = "hit"
	case misses > 0 && hits > 0:
		state = "partial"
	}
	w.Header().Set(api.HeaderCache, state)
	w.Header().Set(api.HeaderCacheHits, fmt.Sprint(hits))
	w.Header().Set(api.HeaderCacheMisses, fmt.Sprint(misses))
}

// statusFor maps engine errors to HTTP statuses and stable error codes:
// unknown scenarios are 404s (the resource does not exist), a full job
// registry is a 429 (try again once a job finishes), a canceled sweep is
// a 499 (the nginx "client closed request" convention — the only way a
// synchronous run is canceled is its own client disconnecting), and
// everything else is a client spec error.
func statusFor(err error) (int, api.ErrorCode) {
	if errors.Is(err, ErrUnknownScenario) {
		return http.StatusNotFound, api.CodeUnknownScenario
	}
	if errors.Is(err, ErrTooManyJobs) {
		return http.StatusTooManyRequests, api.CodeTooManyJobs
	}
	if errors.Is(err, ErrShuttingDown) {
		return http.StatusServiceUnavailable, api.CodeShuttingDown
	}
	if errors.Is(err, ErrJournalUnavailable) {
		return http.StatusServiceUnavailable, api.CodeInternal
	}
	if errors.Is(err, ErrSweepCanceled) {
		return 499, api.CodeJobCanceled
	}
	if errors.Is(err, ErrGridTooLarge) {
		return http.StatusBadRequest, api.CodeGridTooLarge
	}
	return http.StatusBadRequest, api.CodeInvalidSpec
}

// writeRawJSON writes pre-marshaled JSON with the shared content type and
// the trailing newline every JSON body carries.
func writeRawJSON(w http.ResponseWriter, status int, blob []byte) {
	w.Header().Set("Content-Type", api.ContentTypeJSON)
	w.WriteHeader(status)
	w.Write(blob)
	w.Write([]byte("\n"))
}

// writeJSON marshals v once and writes it; marshaling before WriteHeader
// keeps error handling honest and the body deterministic.
func writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, api.CodeInternal, err)
		return
	}
	writeRawJSON(w, status, blob)
}

// writeError emits a structured api.Envelope error document.
func writeError(w http.ResponseWriter, status int, code api.ErrorCode, err error) {
	blob, _ := json.Marshal(api.Envelope{Err: &api.Error{Code: code, Message: err.Error()}})
	writeRawJSON(w, status, blob)
}

package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/metrics"
)

// maxSpecBytes bounds POST /v1/run request bodies.
const maxSpecBytes = 1 << 20

// Server serves experiment reports over HTTP from a shared Engine. Because
// every report is deterministic and content-addressed, responses for one
// spec are byte-identical across requests; the X-Cache headers are the
// only request-dependent surface.
//
//	POST /v1/run           run a Spec document, returns the SweepResult
//	GET  /v1/figures/{id}  run one registry scenario, returns its Report
//	GET  /v1/scenarios     list runnable scenarios
//	GET  /v1/metrics       per-route request counters + latency percentiles
//	GET  /healthz          liveness + cache hit/miss counters
//
// Experiment routes run behind a metrics middleware that records request
// counts, error counts, and a latency histogram per route; /healthz and
// /v1/metrics are deliberately outside it, so scraping observability
// endpoints never pollutes the result cache or the experiment counters.
type Server struct {
	engine  *Engine
	workers int
	met     *metrics.Groups
}

// routeID labels the instrumented routes, in the counter slot order built
// by newServerMetrics.
type routeID int

const (
	routeRun routeID = iota
	routeFigure
	routeScenarios
	routeCount
)

// routeNames are the stable labels used in the /v1/metrics document.
var routeNames = []string{"run", "figure", "scenarios"}

// Per-route counter slots inside the metrics.Groups blocks.
const (
	slotRequests = iota
	slotErrors
)

// NewServer wraps an engine; workers bounds each request's simulation
// pool (0 = all cores).
func NewServer(engine *Engine, workers int) *Server {
	return &Server{
		engine:  engine,
		workers: workers,
		met: metrics.NewGroups(routeNames, []string{"requests", "errors"},
			"latency_ns", metrics.LatencyBounds()),
	}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/scenarios", s.instrument(routeScenarios, s.handleScenarios))
	mux.HandleFunc("POST /v1/run", s.instrument(routeRun, s.handleRun))
	mux.HandleFunc("GET /v1/figures/{id}", s.instrument(routeFigure, s.handleFigure))
	return mux
}

// statusRecorder captures the response status for error accounting.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// instrument wraps one experiment route with request/error counting and
// wall-clock latency observation. Wall time is fine here: the serving
// layer is the one part of the system that is *supposed* to be measured in
// host time; simulated time never leaves the engine.
func (s *Server) instrument(route routeID, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		h(rec, r)
		s.met.Add(int(route), slotRequests, 1)
		if rec.status >= 400 {
			s.met.Add(int(route), slotErrors, 1)
		}
		s.met.Observe(int(route), time.Since(start).Nanoseconds())
	}
}

// handleRun expands and runs a spec document.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("spec larger than %d bytes", maxSpecBytes))
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.engine.RunSpec(spec, s.workers)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	setCacheHeaders(w, res.Hits, res.Misses)
	writeJSON(w, http.StatusOK, res)
}

// handleFigure serves one scenario by registry ID (an optional ?scale=
// query selects quick or full).
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	spec := Spec{Scenario: r.PathValue("id"), Scale: r.URL.Query().Get("scale")}
	res, err := s.engine.RunSpec(spec, s.workers)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	setCacheHeaders(w, res.Hits, res.Misses)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(res.Runs[0].Report)
}

// handleScenarios lists the registry.
func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": ScenarioList()})
}

// handleHealth reports liveness and the engine's cache counters. The shape
// (status + entries/hits/misses) is a stable wire contract; the richer
// document lives on /v1/metrics.
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := s.engine.Cache().Stats()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"cache": map[string]int64{
			"entries": st.Entries,
			"hits":    st.Hits,
			"misses":  st.Misses,
		},
	})
}

// RouteMetrics is the per-route section of the /v1/metrics document.
// Latency quantiles are estimated from the fixed 1-2-5 bucket ladder
// (metrics.LatencyBounds), so they carry bucket-resolution error.
type RouteMetrics struct {
	Requests     int64   `json:"requests"`
	Errors       int64   `json:"errors"`
	LatencyMeanN float64 `json:"latency_mean_ns"`
	LatencyP50N  int64   `json:"latency_p50_ns"`
	LatencyP90N  int64   `json:"latency_p90_ns"`
	LatencyP99N  int64   `json:"latency_p99_ns"`
}

// MetricsDoc is the GET /v1/metrics response body.
type MetricsDoc struct {
	Requests map[string]RouteMetrics `json:"requests"`
	Cache    CacheStats              `json:"cache"`
}

// handleMetrics serves the runtime metrics document. Read-only: it must
// never touch the result cache or the experiment counters (scrapers poll
// this endpoint, and polling is not traffic).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	doc := MetricsDoc{
		Requests: make(map[string]RouteMetrics, routeCount),
		Cache:    s.engine.Cache().Stats(),
	}
	for i := range routeNames {
		lat := s.met.Histogram(i)
		doc.Requests[routeNames[i]] = RouteMetrics{
			Requests:     s.met.Value(i, slotRequests),
			Errors:       s.met.Value(i, slotErrors),
			LatencyMeanN: lat.Mean(),
			LatencyP50N:  lat.Quantile(0.50),
			LatencyP90N:  lat.Quantile(0.90),
			LatencyP99N:  lat.Quantile(0.99),
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// setCacheHeaders records how this request's unique runs were served:
// "hit" (all from cache), "miss" (none), or "partial" (an overlapping
// sweep). The counts ride along for sweep-level observability.
func setCacheHeaders(w http.ResponseWriter, hits, misses int) {
	state := "miss"
	switch {
	case misses == 0 && hits > 0:
		state = "hit"
	case misses > 0 && hits > 0:
		state = "partial"
	}
	w.Header().Set("X-Cache", state)
	w.Header().Set("X-Cache-Hits", fmt.Sprint(hits))
	w.Header().Set("X-Cache-Misses", fmt.Sprint(misses))
}

// statusFor maps engine errors to HTTP statuses: unknown scenarios are
// 404s (the resource does not exist), everything else a client spec error.
func statusFor(err error) int {
	if errors.Is(err, ErrUnknownScenario) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// writeJSON marshals v once and writes it; marshaling before WriteHeader
// keeps error handling honest and the body deterministic.
func writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(blob)
	w.Write([]byte("\n"))
}

// writeError emits a JSON error document.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	blob, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Write(blob)
	w.Write([]byte("\n"))
}

package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// maxSpecBytes bounds POST /v1/run request bodies.
const maxSpecBytes = 1 << 20

// Server serves experiment reports over HTTP from a shared Engine. Because
// every report is deterministic and content-addressed, responses for one
// spec are byte-identical across requests; the X-Cache headers are the
// only request-dependent surface.
//
//	POST /v1/run           run a Spec document, returns the SweepResult
//	GET  /v1/figures/{id}  run one registry scenario, returns its Report
//	GET  /v1/scenarios     list runnable scenarios
//	GET  /healthz          liveness + cache hit/miss counters
type Server struct {
	engine  *Engine
	workers int
}

// NewServer wraps an engine; workers bounds each request's simulation
// pool (0 = all cores).
func NewServer(engine *Engine, workers int) *Server {
	return &Server{engine: engine, workers: workers}
}

// Handler returns the route table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /v1/scenarios", s.handleScenarios)
	mux.HandleFunc("POST /v1/run", s.handleRun)
	mux.HandleFunc("GET /v1/figures/{id}", s.handleFigure)
	return mux
}

// handleRun expands and runs a spec document.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("reading body: %v", err))
		return
	}
	if len(body) > maxSpecBytes {
		writeError(w, http.StatusRequestEntityTooLarge, fmt.Errorf("spec larger than %d bytes", maxSpecBytes))
		return
	}
	spec, err := ParseSpec(body)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.engine.RunSpec(spec, s.workers)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	setCacheHeaders(w, res.Hits, res.Misses)
	writeJSON(w, http.StatusOK, res)
}

// handleFigure serves one scenario by registry ID (an optional ?scale=
// query selects quick or full).
func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	spec := Spec{Scenario: r.PathValue("id"), Scale: r.URL.Query().Get("scale")}
	res, err := s.engine.RunSpec(spec, s.workers)
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	setCacheHeaders(w, res.Hits, res.Misses)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(res.Runs[0].Report)
}

// handleScenarios lists the registry.
func (s *Server) handleScenarios(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"scenarios": ScenarioList()})
}

// handleHealth reports liveness and the engine's cache counters (the
// stats.Counters slots underneath CounterHits/CounterMisses/CounterStores).
func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	c := s.engine.Cache()
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"cache": map[string]int64{
			"entries": int64(c.Len()),
			"hits":    c.Hits(),
			"misses":  c.Misses(),
		},
	})
}

// setCacheHeaders records how this request's unique runs were served:
// "hit" (all from cache), "miss" (none), or "partial" (an overlapping
// sweep). The counts ride along for sweep-level observability.
func setCacheHeaders(w http.ResponseWriter, hits, misses int) {
	state := "miss"
	switch {
	case misses == 0 && hits > 0:
		state = "hit"
	case misses > 0 && hits > 0:
		state = "partial"
	}
	w.Header().Set("X-Cache", state)
	w.Header().Set("X-Cache-Hits", fmt.Sprint(hits))
	w.Header().Set("X-Cache-Misses", fmt.Sprint(misses))
}

// statusFor maps engine errors to HTTP statuses: unknown scenarios are
// 404s (the resource does not exist), everything else a client spec error.
func statusFor(err error) int {
	if errors.Is(err, ErrUnknownScenario) {
		return http.StatusNotFound
	}
	return http.StatusBadRequest
}

// writeJSON marshals v once and writes it; marshaling before WriteHeader
// keeps error handling honest and the body deterministic.
func writeJSON(w http.ResponseWriter, status int, v any) {
	blob, err := json.Marshal(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(blob)
	w.Write([]byte("\n"))
}

// writeError emits a JSON error document.
func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	blob, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Write(blob)
	w.Write([]byte("\n"))
}

package fsio

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// TestAtomicWriteRoundTrip pins the publish contract: the final bytes
// land at the path, and no temp file survives.
func TestAtomicWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry")
	if err := AtomicWrite(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("read back %q, %v", got, err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("dir holds %d entries after AtomicWrite, want 1", len(names))
	}
	// Overwrite is atomic too.
	if err := AtomicWrite(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("overwrite read back %q", got)
	}
}

// TestRecordFraming pins the record format: round trips succeed, and any
// single-byte damage (magic, length, checksum, payload, truncation) is
// rejected.
func TestRecordFraming(t *testing.T) {
	payload := []byte(`{"rows":[1,2,3]}`)
	rec := EncodeRecord("testmagic1", payload)
	if got, ok := DecodeRecord("testmagic1", rec); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, %v", got, ok)
	}
	if _, ok := DecodeRecord("othermagic", rec); ok {
		t.Fatal("foreign magic accepted")
	}
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)-1] },                         // truncated payload
		func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },               // flipped payload byte
		func(b []byte) []byte { b[0] ^= 0xff; return b },                      // damaged magic
		func(b []byte) []byte { return append(b, 'x') },                       // trailing junk
		func(b []byte) []byte { return []byte("testmagic1 3 nothex\nabc") },   // bad checksum format
		func(b []byte) []byte { return []byte("testmagic1 -1 deadbeef\nab") }, // negative length
		func(b []byte) []byte { return nil },                                  // empty file
	} {
		buf := mutate(append([]byte(nil), rec...))
		if _, ok := DecodeRecord("testmagic1", buf); ok {
			t.Fatalf("damaged record accepted: %q", buf)
		}
	}
}

// TestAtomicWriteConcurrent races writers at one path: every write must
// be race-clean and the survivor must be one complete version — the
// first-write-wins store contract when identical runs land together.
// Exercised under `make race`.
func TestAtomicWriteConcurrent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry")
	versions := make([][]byte, 8)
	for i := range versions {
		versions[i] = []byte(fmt.Sprintf("version-%d", i))
	}
	var wg sync.WaitGroup
	for _, v := range versions {
		wg.Add(1)
		go func(v []byte) {
			defer wg.Done()
			if err := AtomicWrite(path, v); err != nil {
				t.Errorf("AtomicWrite: %v", err)
			}
		}(v)
	}
	wg.Wait()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range versions {
		if bytes.Equal(got, v) {
			return
		}
	}
	t.Fatalf("final contents %q are not any written version (torn write)", got)
}

// TestEnsureDir pins the synced-creation contract: deep chains appear,
// repeats are no-ops, and a file in the way errors like os.Mkdir.
func TestEnsureDir(t *testing.T) {
	base := t.TempDir()
	deep := filepath.Join(base, "a", "b", "c")
	if err := EnsureDir(deep); err != nil {
		t.Fatalf("EnsureDir: %v", err)
	}
	if fi, err := os.Stat(deep); err != nil || !fi.IsDir() {
		t.Fatalf("Stat(%s) = %v, %v", deep, fi, err)
	}
	if err := EnsureDir(deep); err != nil {
		t.Fatalf("EnsureDir (repeat): %v", err)
	}
	blocked := filepath.Join(base, "file")
	if err := os.WriteFile(blocked, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := EnsureDir(blocked); !errors.Is(err, os.ErrExist) {
		t.Fatalf("EnsureDir over a file = %v, want ErrExist", err)
	}
}

// TestEnsureDirConcurrent mirrors the store's fan-out subdirectory
// creation under parallel Puts: siblings racing over a shared new
// ancestor must all succeed. Exercised under `make race`.
func TestEnsureDirConcurrent(t *testing.T) {
	base := t.TempDir()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			d := filepath.Join(base, "shared", fmt.Sprintf("leaf-%d", i))
			if err := EnsureDir(d); err != nil {
				t.Errorf("EnsureDir(%s): %v", d, err)
			}
		}(i)
	}
	wg.Wait()
	for i := 0; i < 8; i++ {
		d := filepath.Join(base, "shared", fmt.Sprintf("leaf-%d", i))
		if fi, err := os.Stat(d); err != nil || !fi.IsDir() {
			t.Errorf("missing %s: %v", d, err)
		}
	}
}

// TestFailpointArmDisarm pins the hook registry: unarmed names are free,
// armed hooks fire, and disarming restores the fast path.
func TestFailpointArmDisarm(t *testing.T) {
	if err := Failpoint("fsio.test.hook"); err != nil {
		t.Fatalf("unarmed failpoint = %v", err)
	}
	injected := errors.New("injected")
	SetFailpoint("fsio.test.hook", func() error { return injected })
	defer SetFailpoint("fsio.test.hook", nil)
	if err := Failpoint("fsio.test.hook"); !errors.Is(err, injected) {
		t.Fatalf("armed failpoint = %v, want injected error", err)
	}
	if err := Failpoint("fsio.test.other"); err != nil {
		t.Fatalf("unarmed sibling fired: %v", err)
	}
	SetFailpoint("fsio.test.hook", nil)
	if err := Failpoint("fsio.test.hook"); err != nil {
		t.Fatalf("disarmed failpoint = %v", err)
	}
}

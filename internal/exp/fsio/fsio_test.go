package fsio

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// TestAtomicWriteRoundTrip pins the publish contract: the final bytes
// land at the path, and no temp file survives.
func TestAtomicWriteRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "entry")
	if err := AtomicWrite(path, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil || !bytes.Equal(got, []byte("payload")) {
		t.Fatalf("read back %q, %v", got, err)
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 {
		t.Fatalf("dir holds %d entries after AtomicWrite, want 1", len(names))
	}
	// Overwrite is atomic too.
	if err := AtomicWrite(path, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	if got, _ := os.ReadFile(path); string(got) != "v2" {
		t.Fatalf("overwrite read back %q", got)
	}
}

// TestRecordFraming pins the record format: round trips succeed, and any
// single-byte damage (magic, length, checksum, payload, truncation) is
// rejected.
func TestRecordFraming(t *testing.T) {
	payload := []byte(`{"rows":[1,2,3]}`)
	rec := EncodeRecord("testmagic1", payload)
	if got, ok := DecodeRecord("testmagic1", rec); !ok || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = %q, %v", got, ok)
	}
	if _, ok := DecodeRecord("othermagic", rec); ok {
		t.Fatal("foreign magic accepted")
	}
	for _, mutate := range []func([]byte) []byte{
		func(b []byte) []byte { return b[:len(b)-1] },                         // truncated payload
		func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b },               // flipped payload byte
		func(b []byte) []byte { b[0] ^= 0xff; return b },                      // damaged magic
		func(b []byte) []byte { return append(b, 'x') },                       // trailing junk
		func(b []byte) []byte { return []byte("testmagic1 3 nothex\nabc") },   // bad checksum format
		func(b []byte) []byte { return []byte("testmagic1 -1 deadbeef\nab") }, // negative length
		func(b []byte) []byte { return nil },                                  // empty file
	} {
		buf := mutate(append([]byte(nil), rec...))
		if _, ok := DecodeRecord("testmagic1", buf); ok {
			t.Fatalf("damaged record accepted: %q", buf)
		}
	}
}

// TestFailpointArmDisarm pins the hook registry: unarmed names are free,
// armed hooks fire, and disarming restores the fast path.
func TestFailpointArmDisarm(t *testing.T) {
	if err := Failpoint("fsio.test.hook"); err != nil {
		t.Fatalf("unarmed failpoint = %v", err)
	}
	injected := errors.New("injected")
	SetFailpoint("fsio.test.hook", func() error { return injected })
	defer SetFailpoint("fsio.test.hook", nil)
	if err := Failpoint("fsio.test.hook"); !errors.Is(err, injected) {
		t.Fatalf("armed failpoint = %v, want injected error", err)
	}
	if err := Failpoint("fsio.test.other"); err != nil {
		t.Fatalf("unarmed sibling fired: %v", err)
	}
	SetFailpoint("fsio.test.hook", nil)
	if err := Failpoint("fsio.test.hook"); err != nil {
		t.Fatalf("disarmed failpoint = %v", err)
	}
}

// Package fsio is the shared durability toolkit under every disk
// artifact the experiment service writes: the per-file result store, the
// job journal, and the pack engine's bundles and index all publish bytes
// through the same atomic-write discipline and frame them under the same
// checksummed-header record format, so one implementation (and one set of
// crash tests) covers every write path.
package fsio

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
)

// AtomicWrite publishes data at path so readers only ever observe the
// complete old or complete new contents: the bytes land in a temp file in
// the same directory, are fsynced, renamed over path, and then the
// containing directory is fsynced so the rename itself survives power
// loss — not just process death. A crash at any point leaves at worst a
// stray ".tmp-*" file, never a torn entry.
func AtomicWrite(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making previously renamed (or removed)
// entries durable.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// EnsureDir creates dir (and any missing parents) and fsyncs every
// directory entry the creation added, from the first pre-existing
// ancestor down. A bare os.MkdirAll leaves the new entries buffered in
// the parent directories: the process can go on to atomically write files
// *inside* a directory that itself vanishes on power loss. Call sites
// that build a data-dir layout must use this instead.
func EnsureDir(dir string) error {
	if fi, err := os.Stat(dir); err == nil {
		if fi.IsDir() {
			return nil
		}
		return &os.PathError{Op: "mkdir", Path: dir, Err: os.ErrExist}
	}
	// Find the closest ancestor that already exists: everything below it
	// is about to be created and needs its parent entry synced.
	root := dir
	for {
		parent := filepath.Dir(root)
		if parent == root {
			break
		}
		if _, err := os.Stat(parent); err == nil {
			break
		}
		root = parent
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	// Sync the created chain bottom-up, then the pre-existing parent that
	// gained the topmost new entry.
	for d := dir; ; d = filepath.Dir(d) {
		if err := SyncDir(d); err != nil {
			return err
		}
		if d == root {
			break
		}
	}
	return SyncDir(filepath.Dir(root))
}

// EncodeRecord frames a payload under the shared checksummed-header
// discipline: "<magic> <payload-bytes> <hex sha256>\n" followed by the
// payload. The header lets a reader reject truncated, torn, or foreign
// files before trusting a single payload byte.
func EncodeRecord(magic string, payload []byte) []byte {
	digest := sha256.Sum256(payload)
	header := fmt.Sprintf("%s %d %s\n", magic, len(payload), hex.EncodeToString(digest[:]))
	out := make([]byte, 0, len(header)+len(payload))
	out = append(out, header...)
	out = append(out, payload...)
	return out
}

// DecodeRecord validates a framed record against its header, returning the
// payload only when the magic, length, and checksum all agree.
func DecodeRecord(magic string, data []byte) ([]byte, bool) {
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, false
	}
	var gotMagic, sum string
	var n int
	if _, err := fmt.Sscanf(string(data[:nl]), "%s %d %s", &gotMagic, &n, &sum); err != nil {
		return nil, false
	}
	if gotMagic != magic || n < 0 {
		return nil, false
	}
	payload := data[nl+1:]
	if len(payload) != n {
		return nil, false
	}
	digest := sha256.Sum256(payload)
	if hex.EncodeToString(digest[:]) != sum {
		return nil, false
	}
	return payload, true
}

package fsio

import (
	"sync"
	"sync/atomic"
)

// Failpoints are named fault-injection hooks compiled into the durability
// path so tests can prove crash consistency at every write boundary: a
// test arms a hook with SetFailpoint and the production code calls
// Failpoint(name) just before the guarded side effect. An armed hook can
// return an error (the write is abandoned, as if the process had died
// before it landed — everything journaled earlier is on disk, nothing
// later is) or panic (exercising the per-run recovery boundary). With no
// hooks armed the cost is a single atomic load, so the hooks stay in the
// production build without a separate tag.
//
// Hook names in the durability path, in write order:
//
//	journal.seq        the SEQ allocation watermark record
//	journal.spec       a job's immutable spec record
//	journal.status     a job's status/progress record
//	store.write        a result entry in the per-file content-addressed store
//	pack.append        a needle appended to a pack bundle
//	pack.index         the pack engine's persisted needle index
//	pack.compact.swap  the index swap that retires a compacted bundle
//	engine.run         one simulation, just before it starts
var (
	failpointsArmed atomic.Int32
	failpointsMu    sync.Mutex
	failpointFns    map[string]func() error
)

// Failpoint invokes the hook armed under name, if any. The fast path —
// no hooks armed anywhere — is one atomic load.
func Failpoint(name string) error {
	if failpointsArmed.Load() == 0 {
		return nil
	}
	failpointsMu.Lock()
	fn := failpointFns[name]
	failpointsMu.Unlock()
	if fn == nil {
		return nil
	}
	return fn()
}

// SetFailpoint arms fn at a named boundary (nil disarms it). Test-only:
// production code never calls this, so the armed count stays zero and
// Failpoint stays a single load.
func SetFailpoint(name string, fn func() error) {
	failpointsMu.Lock()
	defer failpointsMu.Unlock()
	if failpointFns == nil {
		failpointFns = make(map[string]func() error)
	}
	_, had := failpointFns[name]
	if fn == nil {
		if had {
			delete(failpointFns, name)
			failpointsArmed.Add(-1)
		}
		return
	}
	failpointFns[name] = fn
	if !had {
		failpointsArmed.Add(1)
	}
}

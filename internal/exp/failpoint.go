package exp

import "repro/internal/exp/fsio"

// Failpoints live in internal/exp/fsio so the pack engine's write
// boundaries share the same registry as the journal's and store's; see
// fsio.Failpoint for the discipline and the list of hook names.

// failpoint invokes the hook armed under name, if any.
func failpoint(name string) error { return fsio.Failpoint(name) }

// setFailpoint arms fn at a named boundary (nil disarms it). Test-only.
func setFailpoint(name string, fn func() error) { fsio.SetFailpoint(name, fn) }

package exp

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/metrics"
	"repro/pkg/api"
)

// journalMagic tags every journal record's header line so an unrelated
// file dropped into the jobs dir is never mistaken for a job record.
const journalMagic = "impactjobs1"

// seqChunk is the ID-allocation reservation step: the SEQ watermark on
// disk always covers at least the highest issued sequence number, and is
// advanced seqChunk at a time so a submission pays the fsync only once
// per chunk. After a crash the next boot resumes allocation above the
// watermark, which may skip up to seqChunk IDs — a gap in job numbering,
// never a reuse, so a job ID observed by any client names at most one job
// forever.
const seqChunk = 64

// Fixed counter IDs for journal statistics, in the slot order passed to
// metrics.NewSet in NewJournal.
const (
	journalErrors metrics.CounterID = iota
	journalCorrupt
)

// Journal is the durable half of the job registry: a directory holding,
// for every accepted job, an immutable spec record and a status record
// rewritten on each lifecycle transition, plus the SEQ ID-allocation
// watermark. All writes share the store's discipline — checksummed
// header, temp file, atomic rename, directory fsync — so a crash at any
// instant leaves every record either absent or complete, never torn.
//
// Layout under dir:
//
//	SEQ                 ID-allocation watermark (highest seq covered)
//	job-000017.spec     {"id": ..., "spec": <api.RunSpec>}, written once
//	job-000017.status   {"status", "completed", "resumed", ...}, rewritten
//
// On boot Recover scans the directory, drops and deletes corrupt or
// truncated records (healing, like the store), and hands back every
// decodable job so the registry can re-enqueue non-terminal ones. The
// journal is best-effort for everything except ID allocation: a failed
// spec or status write degrades to a job that may not survive a restart
// (counted, never silent), while a failed SEQ write fails the submission,
// because handing out an ID that a rebooted server could reissue would
// let two different jobs answer to one name.
type Journal struct {
	dir string
	met *metrics.Set
}

// NewJournal opens (creating if needed) a job journal rooted at dir.
func NewJournal(dir string) (*Journal, error) {
	if err := ensureDir(dir); err != nil {
		return nil, fmt.Errorf("exp: journal: %v", err)
	}
	return &Journal{
		dir: dir,
		met: metrics.NewSet("errors", "corrupt_dropped"),
	}, nil
}

// Dir returns the journal's root directory.
func (jl *Journal) Dir() string { return jl.dir }

// journalSpec is the payload of a job's immutable spec record.
type journalSpec struct {
	ID   string      `json:"id"`
	Spec api.RunSpec `json:"spec"`
}

// journalStatus is the payload of a job's status record: the lifecycle
// state plus the progress watermark. Completed is advisory — recovery
// skips already-computed runs by consulting the content-addressed store,
// not this number — so it is flushed at transition boundaries and every
// progressEvery completions rather than per run.
type journalStatus struct {
	Status    string `json:"status"`
	Completed int    `json:"completed"`
	Resumed   bool   `json:"resumed,omitempty"`
	SpecKey   string `json:"spec_key,omitempty"`
	Error     string `json:"error,omitempty"`
}

// seqPath, specPath, and statusPath name the journal's files. Job IDs are
// validated by parseJobID before use, so a path can never escape dir.
func (jl *Journal) seqPath() string           { return filepath.Join(jl.dir, "SEQ") }
func (jl *Journal) specPath(id string) string { return filepath.Join(jl.dir, id+".spec") }
func (jl *Journal) statusPath(id string) string {
	return filepath.Join(jl.dir, id+".status")
}

// RecordSeq persists the ID-allocation watermark. Must succeed before any
// job at or below seq is announced to a client.
func (jl *Journal) RecordSeq(seq int) error {
	err := func() error {
		if err := failpoint("journal.seq"); err != nil {
			return err
		}
		return atomicWrite(jl.seqPath(), encodeRecord(journalMagic, []byte(strconv.Itoa(seq))))
	}()
	if err != nil {
		jl.met.Add(journalErrors, 1)
		return fmt.Errorf("exp: journal: seq watermark: %w", err)
	}
	return nil
}

// RecordSpec persists a job's immutable spec record.
func (jl *Journal) RecordSpec(id string, spec Spec) error {
	err := func() error {
		if err := failpoint("journal.spec"); err != nil {
			return err
		}
		payload, err := json.Marshal(journalSpec{ID: id, Spec: api.RunSpec(spec)})
		if err != nil {
			return err
		}
		return atomicWrite(jl.specPath(id), encodeRecord(journalMagic, payload))
	}()
	if err != nil {
		jl.met.Add(journalErrors, 1)
		return fmt.Errorf("exp: journal: job %s spec: %w", id, err)
	}
	return nil
}

// RecordStatus persists a job's current lifecycle state and progress
// watermark, replacing the previous status record atomically.
func (jl *Journal) RecordStatus(id string, st journalStatus) error {
	err := func() error {
		if err := failpoint("journal.status"); err != nil {
			return err
		}
		payload, err := json.Marshal(st)
		if err != nil {
			return err
		}
		return atomicWrite(jl.statusPath(id), encodeRecord(journalMagic, payload))
	}()
	if err != nil {
		jl.met.Add(journalErrors, 1)
		return fmt.Errorf("exp: journal: job %s status: %w", id, err)
	}
	return nil
}

// Remove deletes a job's records (registry retirement, or boot-time
// cleanup of terminal jobs). Best-effort: a leftover record is re-dropped
// by the next Recover.
func (jl *Journal) Remove(id string) {
	if err := os.Remove(jl.specPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		jl.met.Add(journalErrors, 1)
	}
	if err := os.Remove(jl.statusPath(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		jl.met.Add(journalErrors, 1)
	}
}

// journalEntry is one recovered job: its identity, spec, and last
// journaled status (zero-valued, meaning queued, when the status record
// was missing or corrupt — the safe direction, since re-running is
// idempotent and mostly cache hits).
type journalEntry struct {
	ID     string
	Seq    int
	Spec   Spec
	Status journalStatus
}

// Recover scans the journal, heals damage, and returns the ID-allocation
// watermark plus every decodable job in submission (sequence) order.
// Corrupt or truncated spec records are dropped and their files deleted —
// their sequence numbers still advance the watermark, because the ID was
// issued even if its payload is now unreadable. Corrupt status records
// are deleted but the job survives as queued. Stray temp files and
// orphaned status records are removed. Damage is counted, never fatal: a
// journal that cannot be read at all recovers as empty rather than
// wedging the boot.
func (jl *Journal) Recover() (seq int, entries []journalEntry) {
	names, err := os.ReadDir(jl.dir)
	if err != nil {
		jl.met.Add(journalErrors, 1)
		return 0, nil
	}

	// SEQ watermark first: a corrupt or missing watermark falls back to
	// the spec-record scan below.
	fileSeq := 0
	if data, err := os.ReadFile(jl.seqPath()); err == nil {
		if payload, ok := decodeRecord(journalMagic, data); ok {
			if n, err := strconv.Atoi(string(payload)); err == nil && n > 0 {
				fileSeq = n
			}
		} else {
			os.Remove(jl.seqPath())
			jl.met.Add(journalCorrupt, 1)
		}
	}
	seq = fileSeq

	specs := make(map[string]journalEntry)
	var statusIDs []string
	for _, de := range names {
		name := de.Name()
		switch {
		case de.IsDir() || name == "SEQ":
			continue
		case strings.HasPrefix(name, ".tmp-"):
			// A crash mid-write leaves at worst a stray temp file.
			os.Remove(filepath.Join(jl.dir, name))
			continue
		case strings.HasSuffix(name, ".spec"):
			id := strings.TrimSuffix(name, ".spec")
			n, ok := parseJobID(id)
			if !ok {
				// Not a name this journal ever writes; leave it alone.
				continue
			}
			if n > seq {
				seq = n
			}
			entry, ok := jl.readSpec(id)
			if !ok {
				jl.met.Add(journalCorrupt, 1)
				jl.Remove(id)
				continue
			}
			entry.Seq = n
			specs[id] = entry
		case strings.HasSuffix(name, ".status"):
			statusIDs = append(statusIDs, strings.TrimSuffix(name, ".status"))
		}
	}

	for _, id := range statusIDs {
		entry, ok := specs[id]
		if !ok {
			// Orphaned status (its spec was dropped, or retirement crashed
			// between the two removes): without a spec the job cannot be
			// resumed, so the record is dead weight.
			if _, isOurs := parseJobID(id); isOurs {
				os.Remove(jl.statusPath(id))
			}
			continue
		}
		st, ok := jl.readStatus(id)
		if !ok {
			jl.met.Add(journalCorrupt, 1)
			os.Remove(jl.statusPath(id))
			continue // job survives as queued
		}
		entry.Status = st
		specs[id] = entry
	}

	// A watermark derived from the spec scan (SEQ missing, corrupt, or
	// behind) must itself be made durable before the records that implied
	// it can be dropped — otherwise a second crash could regress the
	// watermark and reuse an ID. Best-effort like every repair: a failed
	// write is counted inside RecordSeq.
	if seq > fileSeq {
		jl.RecordSeq(seq)
	}

	entries = make([]journalEntry, 0, len(specs))
	//lint:ignore nodeterminism collection order is discarded by the Seq sort below
	for _, e := range specs {
		entries = append(entries, e)
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].Seq < entries[j].Seq })
	return seq, entries
}

// readSpec decodes one spec record, reporting ok=false on any damage
// (unreadable file, bad frame, payload/file-name ID mismatch).
func (jl *Journal) readSpec(id string) (journalEntry, bool) {
	data, err := os.ReadFile(jl.specPath(id))
	if err != nil {
		return journalEntry{}, false
	}
	payload, ok := decodeRecord(journalMagic, data)
	if !ok {
		return journalEntry{}, false
	}
	var rec journalSpec
	if err := json.Unmarshal(payload, &rec); err != nil || rec.ID != id {
		return journalEntry{}, false
	}
	return journalEntry{ID: id, Spec: Spec(rec.Spec)}, true
}

// readStatus decodes one status record, reporting ok=false on damage.
func (jl *Journal) readStatus(id string) (journalStatus, bool) {
	data, err := os.ReadFile(jl.statusPath(id))
	if err != nil {
		return journalStatus{}, false
	}
	payload, ok := decodeRecord(journalMagic, data)
	if !ok {
		return journalStatus{}, false
	}
	var st journalStatus
	if err := json.Unmarshal(payload, &st); err != nil {
		return journalStatus{}, false
	}
	return st, true
}

// errorCount and corruptCount snapshot the journal counters; Jobs.Stats
// merges them into the /v1/metrics jobs section.
func (jl *Journal) errorCount() int64   { return jl.met.Value(journalErrors) }
func (jl *Journal) corruptCount() int64 { return jl.met.Value(journalCorrupt) }

package exp

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/pkg/api"
)

// decodeErrorBody parses a structured error response, failing the test on
// anything that is not a well-formed api.Envelope.
func decodeErrorBody(t *testing.T, body []byte) *api.Error {
	t.Helper()
	var env api.Envelope
	if err := json.Unmarshal(body, &env); err != nil || env.Err == nil {
		t.Fatalf("error body is not an api.Envelope: %v (%s)", err, body)
	}
	return env.Err
}

// TestErrorEnvelopeCodes pins the structured error contract: every error
// response is {"error": {"code", "message"}} with the documented code.
func TestErrorEnvelopeCodes(t *testing.T) {
	h := NewServer(NewEngine(), WithWorkers(1)).Handler()
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 api.ErrorCode
	}{
		{"malformed spec", http.MethodPost, "/v1/run", `{"scenario": `, http.StatusBadRequest, api.CodeInvalidSpec},
		{"unknown scenario", http.MethodPost, "/v1/run", `{"scenario": "covert-warp"}`, http.StatusNotFound, api.CodeUnknownScenario},
		{"unknown figure", http.MethodGet, "/v1/figures/nope", "", http.StatusNotFound, api.CodeUnknownScenario},
		{"unknown job", http.MethodGet, "/v1/jobs/job-999999", "", http.StatusNotFound, api.CodeUnknownJob},
		{"unknown job cancel", http.MethodDelete, "/v1/jobs/job-999999", "", http.StatusNotFound, api.CodeUnknownJob},
		{"bad list limit", http.MethodGet, "/v1/jobs?limit=zero", "", http.StatusBadRequest, api.CodeBadRequest},
		{"bad page token", http.MethodGet, "/v1/jobs?page_token=banana", "", http.StatusBadRequest, api.CodeBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doRequest(t, h, tc.method, tc.path, tc.body)
			if rec.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (%s)", rec.Code, tc.wantStatus, rec.Body)
			}
			apiErr := decodeErrorBody(t, rec.Body.Bytes())
			if apiErr.Code != tc.wantCode || apiErr.Message == "" {
				t.Fatalf("error = %+v, want code %q with a message", apiErr, tc.wantCode)
			}
		})
	}

	// Oversized specs carry their own code.
	huge := `{"scenario": "rowbuffer", "config": {` + strings.Repeat(" ", maxSpecBytes) + `}}`
	rec := doRequest(t, h, http.MethodPost, "/v1/run", huge)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec = %d, want 413", rec.Code)
	}
	if apiErr := decodeErrorBody(t, rec.Body.Bytes()); apiErr.Code != api.CodeSpecTooLarge {
		t.Fatalf("oversized spec code = %q, want spec_too_large", apiErr.Code)
	}
}

// TestContentTypeGate pins the 415 contract: POST bodies must be JSON (or
// carry no Content-Type at all, for curl ergonomics).
func TestContentTypeGate(t *testing.T) {
	h := NewServer(NewEngine(), WithWorkers(1)).Handler()
	post := func(path, contentType string) *httptest.ResponseRecorder {
		req := httptest.NewRequest(http.MethodPost, path, strings.NewReader(`{"scenario": "rowbuffer"}`))
		if contentType != "" {
			req.Header.Set("Content-Type", contentType)
		}
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		return rec
	}

	for _, path := range []string{"/v1/run", "/v1/jobs"} {
		for _, bad := range []string{"text/plain", "application/x-www-form-urlencoded", "application/octet-stream", "not a media type"} {
			rec := post(path, bad)
			if rec.Code != http.StatusUnsupportedMediaType {
				t.Fatalf("POST %s with %q = %d, want 415", path, bad, rec.Code)
			}
			if apiErr := decodeErrorBody(t, rec.Body.Bytes()); apiErr.Code != api.CodeUnsupportedMedia {
				t.Fatalf("POST %s with %q code = %q", path, bad, apiErr.Code)
			}
		}
		for _, good := range []string{"", "application/json", "application/json; charset=utf-8", "application/merge-patch+json"} {
			if rec := post(path, good); rec.Code == http.StatusUnsupportedMediaType {
				t.Fatalf("POST %s with Content-Type %q rejected with 415", path, good)
			}
		}
	}
}

// TestRequestIDHeader pins the X-Request-ID contract: every response —
// including observability endpoints and errors — carries one; sane
// inbound IDs are echoed, junk is replaced.
func TestRequestIDHeader(t *testing.T) {
	h := NewServer(NewEngine(), WithWorkers(1)).Handler()
	for _, path := range []string{"/healthz", "/v1/metrics", "/v1/scenarios", "/v1/jobs", "/v1/figures/nope"} {
		rec := doRequest(t, h, http.MethodGet, path, "")
		if id := rec.Header().Get(api.HeaderRequestID); id == "" {
			t.Fatalf("GET %s response missing %s", path, api.HeaderRequestID)
		}
	}

	req := httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(api.HeaderRequestID, "trace-abc-123")
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(api.HeaderRequestID); got != "trace-abc-123" {
		t.Fatalf("inbound request ID not echoed: %q", got)
	}

	req = httptest.NewRequest(http.MethodGet, "/healthz", nil)
	req.Header.Set(api.HeaderRequestID, "has spaces and\ttabs")
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if got := rec.Header().Get(api.HeaderRequestID); got == "" || strings.ContainsAny(got, " \t") {
		t.Fatalf("junk inbound ID not replaced: %q", got)
	}

	// Two generated IDs differ (they are random, not a shared constant).
	a := doRequest(t, h, http.MethodGet, "/healthz", "").Header().Get(api.HeaderRequestID)
	b := doRequest(t, h, http.MethodGet, "/healthz", "").Header().Get(api.HeaderRequestID)
	if a == b {
		t.Fatalf("consecutive generated request IDs identical: %q", a)
	}
}

// TestHealthzBuildInfo pins the satellite contract: /healthz carries
// version and go fields from the embedded build info and the node's
// cluster identity (node_id, store backend, peer count), alongside the
// stable status + cache counters. A server given no identity reports
// the solo defaults.
func TestHealthzBuildInfo(t *testing.T) {
	h := NewServer(NewEngine(), WithWorkers(1)).Handler()
	rec := doRequest(t, h, http.MethodGet, "/healthz", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz = %d", rec.Code)
	}
	var health api.Health
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" {
		t.Fatalf("status = %q", health.Status)
	}
	if health.Version == "" {
		t.Fatal("healthz missing version")
	}
	if !strings.HasPrefix(health.Go, "go") {
		t.Fatalf("healthz go = %q, want a go toolchain version", health.Go)
	}
	if health.NodeID != "solo" || health.Store != "memory" || health.Peers != 0 {
		t.Fatalf("default identity = %q/%q/%d, want solo/memory/0",
			health.NodeID, health.Store, health.Peers)
	}

	// The raw body carries the identity fields under their wire names.
	for _, field := range []string{`"node_id":"solo"`, `"store":"memory"`, `"peers":0`} {
		if !strings.Contains(rec.Body.String(), field) {
			t.Fatalf("healthz body missing %s: %s", field, rec.Body.String())
		}
	}

	// A configured identity is surfaced verbatim.
	h = NewServer(NewEngine(), WithWorkers(1), WithNodeIdentity("n2", "pack", 2)).Handler()
	rec = doRequest(t, h, http.MethodGet, "/healthz", "")
	if err := json.Unmarshal(rec.Body.Bytes(), &health); err != nil {
		t.Fatal(err)
	}
	if health.NodeID != "n2" || health.Store != "pack" || health.Peers != 2 {
		t.Fatalf("identity = %q/%q/%d, want n2/pack/2", health.NodeID, health.Store, health.Peers)
	}
}

// TestPeerResultEndpoints pins the internal peer wire contract: PUT
// stores a blob into the node's local tiers, GET serves it back framed
// exactly like every other JSON body (blob + one newline), a malformed
// key is a 400 before any store work, an absent key is a 404 with code
// result_not_found, and non-JSON replica payloads are refused.
func TestPeerResultEndpoints(t *testing.T) {
	h := NewServer(NewEngine(), WithWorkers(1)).Handler()
	key := strings.Repeat("ab", 32)
	blob := `{"report":{"v":1}}`

	for _, bad := range []string{"short", strings.Repeat("g", 64), strings.Repeat("AB", 32)} {
		rec := doRequest(t, h, http.MethodGet, "/v1/internal/results/"+bad, "")
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("GET with key %q = %d, want 400", bad, rec.Code)
		}
	}

	rec := doRequest(t, h, http.MethodGet, "/v1/internal/results/"+key, "")
	if rec.Code != http.StatusNotFound {
		t.Fatalf("GET absent key = %d, want 404", rec.Code)
	}
	var env api.Envelope
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil || env.Err == nil {
		t.Fatalf("404 body is not an error envelope: %s", rec.Body.String())
	}
	if env.Err.Code != api.CodeResultNotFound {
		t.Fatalf("miss code = %q, want result_not_found", env.Err.Code)
	}

	if rec := doRequest(t, h, http.MethodPut, "/v1/internal/results/"+key, `{"broken`); rec.Code != http.StatusBadRequest {
		t.Fatalf("PUT invalid JSON = %d, want 400", rec.Code)
	}

	if rec := doRequest(t, h, http.MethodPut, "/v1/internal/results/"+key, blob); rec.Code != http.StatusOK {
		t.Fatalf("PUT = %d: %s", rec.Code, rec.Body.String())
	}
	rec = doRequest(t, h, http.MethodGet, "/v1/internal/results/"+key, "")
	if rec.Code != http.StatusOK {
		t.Fatalf("GET after PUT = %d", rec.Code)
	}
	if got := rec.Body.String(); got != blob+"\n" {
		t.Fatalf("round-tripped body %q, want %q + newline", got, blob)
	}
}

// fakeReport pre-resolves every run of a spec with a synthetic report, so
// jobs over it complete instantly and deterministically without touching
// the simulator.
func fakeReport(t *testing.T, eng *Engine, rawSpec string) Spec {
	t.Helper()
	spec, err := ParseSpec([]byte(rawSpec))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		eng.cache.Put(context.Background(), r.Key, json.RawMessage(`{"id":"fake"}`))
	}
	return spec
}

// TestJobListPagination pins GET /v1/jobs: newest-first order, limit
// clamping, and the page-token walk down to an empty token.
func TestJobListPagination(t *testing.T) {
	eng := NewEngine()
	srv := NewServer(eng, WithWorkers(1))
	h := srv.Handler()
	fakeReport(t, eng, `{"scenario": "rowbuffer"}`)

	const total = 5
	for i := 0; i < total; i++ {
		if rec := doRequest(t, h, http.MethodPost, "/v1/jobs", `{"scenario": "rowbuffer"}`); rec.Code != http.StatusAccepted {
			t.Fatalf("submit %d = %d: %s", i, rec.Code, rec.Body)
		}
	}

	list := func(query string) api.JobPage {
		rec := doRequest(t, h, http.MethodGet, "/v1/jobs"+query, "")
		if rec.Code != http.StatusOK {
			t.Fatalf("list %q = %d: %s", query, rec.Code, rec.Body)
		}
		var page api.JobPage
		if err := json.Unmarshal(rec.Body.Bytes(), &page); err != nil {
			t.Fatal(err)
		}
		return page
	}

	// Default page: all five, newest first, no continuation.
	page := list("")
	if len(page.Jobs) != total || page.NextPageToken != "" {
		t.Fatalf("default page: %d jobs, token %q", len(page.Jobs), page.NextPageToken)
	}
	for i, info := range page.Jobs {
		if want := formatJobID(total - i); info.ID != want {
			t.Fatalf("position %d = %s, want %s (newest first)", i, info.ID, want)
		}
	}

	// Token walk: 2 + 2 + 1, token emptying exactly at the end.
	var ids []string
	token := ""
	for pages := 0; ; pages++ {
		if pages > total {
			t.Fatal("pagination never terminated")
		}
		q := "?limit=2"
		if token != "" {
			q += "&page_token=" + token
		}
		page := list(q)
		for _, info := range page.Jobs {
			ids = append(ids, info.ID)
		}
		if token = page.NextPageToken; token == "" {
			break
		}
	}
	want := []string{"job-000005", "job-000004", "job-000003", "job-000002", "job-000001"}
	if len(ids) != len(want) {
		t.Fatalf("paged walk saw %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("paged walk saw %v, want %v", ids, want)
		}
	}

	// A token whose job was never issued is a 400, not an empty page.
	if rec := doRequest(t, h, http.MethodGet, "/v1/jobs?page_token=job-1", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("non-canonical token = %d, want 400", rec.Code)
	}
}

// TestJobRetiredGone pins the 410 contract: a FIFO-retired job answers
// 410 with code job_retired — distinguishable from a never-issued ID's
// 404 — including on the stream and cancel routes.
func TestJobRetiredGone(t *testing.T) {
	eng := NewEngine()
	srv := NewServer(eng, WithWorkers(1), WithMaxJobs(1))
	h := srv.Handler()
	fakeReport(t, eng, `{"scenario": "rowbuffer"}`)

	sub := doRequest(t, h, http.MethodPost, "/v1/jobs", `{"scenario": "rowbuffer"}`)
	var first JobInfo
	if err := json.Unmarshal(sub.Body.Bytes(), &first); err != nil {
		t.Fatal(err)
	}
	pollJob(t, h, first.ID)

	// The registry holds one job; the next submission retires the first.
	if rec := doRequest(t, h, http.MethodPost, "/v1/jobs", `{"scenario": "rowbuffer"}`); rec.Code != http.StatusAccepted {
		t.Fatalf("second submit = %d: %s", rec.Code, rec.Body)
	}

	for _, tc := range []struct{ name, method, path string }{
		{"status", http.MethodGet, "/v1/jobs/" + first.ID},
		{"stream", http.MethodGet, "/v1/jobs/" + first.ID + "/stream"},
		{"cancel", http.MethodDelete, "/v1/jobs/" + first.ID},
	} {
		rec := doRequest(t, h, tc.method, tc.path, "")
		if rec.Code != http.StatusGone {
			t.Fatalf("%s on retired job = %d, want 410 (%s)", tc.name, rec.Code, rec.Body)
		}
		if apiErr := decodeErrorBody(t, rec.Body.Bytes()); apiErr.Code != api.CodeJobRetired {
			t.Fatalf("%s on retired job code = %q, want job_retired", tc.name, apiErr.Code)
		}
	}

	// Never-issued IDs are still plain 404s.
	if rec := doRequest(t, h, http.MethodGet, "/v1/jobs/job-999999", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job = %d, want 404", rec.Code)
	}
}

// TestJobCancelLifecycle drives the DELETE contract deterministically: a
// job parked mid-sweep is canceled, reaches the terminal canceled state
// once its in-flight run drains, streams its finished runs plus a
// job_canceled error line, and further DELETEs are idempotent.
func TestJobCancelLifecycle(t *testing.T) {
	eng := NewEngine()
	srv := NewServer(eng, WithWorkers(1))
	h := srv.Handler()
	spec, err := ParseSpec([]byte(`{
		"scenario": "covert-pnm",
		"grid": {"llc_bytes": [4194304, 8388608]}
	}`))
	if err != nil {
		t.Fatal(err)
	}
	runs, err := spec.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Run 0 is a synthetic cache hit (counted during the lookup phase);
	// run 1 parks inside the worker until released. Waiting for completed
	// == 1 therefore pins the exact sweep phase the DELETE races against:
	// one run done, one in flight.
	fakeA := json.RawMessage(`{"id":"fake-a"}`)
	eng.cache.Put(context.Background(), runs[0].Key, fakeA)
	release := blockRun(eng, runs[1].Key)

	sub := doRequest(t, h, http.MethodPost, "/v1/jobs", `{
		"scenario": "covert-pnm",
		"grid": {"llc_bytes": [4194304, 8388608]}
	}`)
	if sub.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", sub.Code, sub.Body)
	}
	var queued JobInfo
	if err := json.Unmarshal(sub.Body.Bytes(), &queued); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		rec := doRequest(t, h, http.MethodGet, "/v1/jobs/"+queued.ID, "")
		var info JobInfo
		if err := json.Unmarshal(rec.Body.Bytes(), &info); err != nil {
			t.Fatal(err)
		}
		if info.Completed == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached the parked phase: %+v", info)
		}
		time.Sleep(time.Millisecond)
	}

	del := doRequest(t, h, http.MethodDelete, "/v1/jobs/"+queued.ID, "")
	if del.Code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", del.Code, del.Body)
	}
	var atCancel JobInfo
	if err := json.Unmarshal(del.Body.Bytes(), &atCancel); err != nil {
		t.Fatal(err)
	}
	if api.JobTerminal(atCancel.Status) {
		t.Fatalf("cancel response already terminal (%q) while a run is parked", atCancel.Status)
	}

	// The parked run drains — cancellation never abandons in-flight work —
	// and the job must still land in canceled, not done. The DELETE races
	// the worker's claim of run 1: a claimed run completes (completed=2),
	// an unclaimed one is skipped (completed=1); both are clean cancels.
	release(json.RawMessage(`{"id":"fake-b"}`), nil)
	final := pollJob(t, h, queued.ID)
	if final.Status != JobCanceled {
		t.Fatalf("terminal status = %q, want canceled", final.Status)
	}
	if final.Completed < 1 || final.Completed > 2 || final.Hits != 1 || final.SpecKey != "" {
		t.Fatalf("terminal info: %+v", final)
	}
	if !strings.Contains(final.Error, "canceled") {
		t.Fatalf("terminal error = %q", final.Error)
	}

	// The stream replays every finished run, then the canceled line.
	stream := doRequest(t, h, http.MethodGet, "/v1/jobs/"+queued.ID+"/stream", "")
	lines := strings.Split(strings.TrimSuffix(stream.Body.String(), "\n"), "\n")
	if len(lines) != final.Completed+1 {
		t.Fatalf("stream has %d lines, want %d results + 1 error:\n%s", len(lines), final.Completed, stream.Body)
	}
	var rr RunResult
	if err := json.Unmarshal([]byte(lines[0]), &rr); err != nil || rr.Key != runs[0].Key {
		t.Fatalf("line 0 = %q (%v)", lines[0], err)
	}
	var tail api.Envelope
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil || tail.Err == nil || tail.Err.Code != api.CodeJobCanceled {
		t.Fatalf("trailing line = %q, want a job_canceled envelope", lines[len(lines)-1])
	}

	// Canceling a terminal job is an idempotent no-op.
	again := doRequest(t, h, http.MethodDelete, "/v1/jobs/"+queued.ID, "")
	if again.Code != http.StatusOK {
		t.Fatalf("second cancel = %d", again.Code)
	}
	var afterAgain JobInfo
	if err := json.Unmarshal(again.Body.Bytes(), &afterAgain); err != nil {
		t.Fatal(err)
	}
	if afterAgain.Status != JobCanceled || afterAgain.Completed != final.Completed {
		t.Fatalf("second cancel info: %+v", afterAgain)
	}

	st := srv.jobs.Stats()
	if st.Canceled != 1 || st.Failed != 0 || st.Completed != 0 {
		t.Fatalf("job stats after cancel: %+v", st)
	}
}

// TestEngineRunSpecCanceledContext pins the synchronous cancellation
// path: a canceled context fails the sweep with ErrSweepCanceled before
// (or during) scheduling, never with a partial result.
func TestEngineRunSpecCanceledContext(t *testing.T) {
	spec, err := ParseSpec([]byte(`{"scenario": "rowbuffer"}`))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := NewEngine().RunSpec(ctx, spec, 1)
	if res != nil || !errors.Is(err, ErrSweepCanceled) {
		t.Fatalf("RunSpec with canceled ctx = (%v, %v), want ErrSweepCanceled", res, err)
	}
}

// TestJobCancelRaceEightWorkers is the acceptance-criteria stress: DELETE
// while 8 workers are completing runs must land every job in a clean
// terminal state (canceled or done, depending on who wins) with
// consistent counts, never a wedged or torn job. Run under -race via
// make race.
func TestJobCancelRaceEightWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	eng := NewEngine()
	srv := NewServer(eng, WithWorkers(8))
	h := srv.Handler()
	spec := `{
		"scenario": "covert-pnm",
		"grid": {"llc_bytes": [2097152, 4194304, 8388608, 16777216], "mem.defense": ["none", "ctd"]}
	}`

	for round := 0; round < 4; round++ {
		sub := doRequest(t, h, http.MethodPost, "/v1/jobs", spec)
		if sub.Code != http.StatusAccepted {
			t.Fatalf("submit = %d: %s", sub.Code, sub.Body)
		}
		var queued JobInfo
		if err := json.Unmarshal(sub.Body.Bytes(), &queued); err != nil {
			t.Fatal(err)
		}
		// Vary the cancel point across rounds so the DELETE races
		// different phases of the sweep.
		time.Sleep(time.Duration(round) * 2 * time.Millisecond)
		if rec := doRequest(t, h, http.MethodDelete, "/v1/jobs/"+queued.ID, ""); rec.Code != http.StatusOK {
			t.Fatalf("cancel = %d: %s", rec.Code, rec.Body)
		}
		final := pollJob(t, h, queued.ID)
		switch final.Status {
		case JobCanceled:
			if final.Completed > final.Runs || final.SpecKey != "" {
				t.Fatalf("canceled job inconsistent: %+v", final)
			}
		case JobDone:
			if final.Completed != final.Runs || final.SpecKey == "" {
				t.Fatalf("done job inconsistent: %+v", final)
			}
		default:
			t.Fatalf("terminal status = %q", final.Status)
		}
		if final.Hits+final.Misses != final.Completed {
			t.Fatalf("cache counts inconsistent: %+v", final)
		}
	}
}

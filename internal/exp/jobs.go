package exp

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/pkg/api"
)

// Job statuses, in lifecycle order (re-exported from the pkg/api wire
// contract). A job is terminal once it reaches JobDone, JobFailed, or
// JobCanceled.
const (
	JobQueued   = api.JobQueued
	JobRunning  = api.JobRunning
	JobDone     = api.JobDone
	JobFailed   = api.JobFailed
	JobCanceled = api.JobCanceled
)

// JobInfo is the wire form of a job's state (see api.JobInfo).
type JobInfo = api.JobInfo

// JobsStats is the wire form of the registry counters (see api.JobsStats).
type JobsStats = api.JobsStats

// DefaultMaxJobs bounds the job registry when the caller does not choose
// a limit.
const DefaultMaxJobs = 256

// Job listing page bounds: DefaultJobPageSize applies when the client
// does not pass ?limit=, MaxJobPageSize clamps what it may ask for.
const (
	DefaultJobPageSize = 50
	MaxJobPageSize     = 500
)

// ErrTooManyJobs tags submissions rejected because the registry is full
// of jobs that are still queued or running (servers map it to 429).
var ErrTooManyJobs = errors.New("exp: job registry full (all tracked jobs still queued or running)")

// ErrJobCanceled is the terminal error of a canceled job: the sweep
// stopped scheduling runs after DELETE /v1/jobs/{id}. Runs that finished
// before the cancel remain cached.
var ErrJobCanceled = errors.New("exp: job canceled")

// Fixed counter IDs for job statistics, in the slot order passed to
// metrics.NewSet in NewJobs.
const (
	jobsSubmitted metrics.CounterID = iota
	jobsRejected
	jobsCompleted
	jobsFailed
	jobsCanceled
	jobsRetired
)

// Job is one asynchronous sweep: a spec expanded at submission, executed
// in the background over the engine's worker pool, with per-run results
// observable while the sweep runs. Results are retained after completion
// (for late polls and stream replays) until the registry retires the job.
// Cancellation travels through the job's context into Engine.execute:
// once canceled, no further runs are scheduled and the job lands in the
// terminal canceled state.
type Job struct {
	// ID names the job in the HTTP API ("job-000001", …).
	ID string

	seq    int
	runs   []Run
	ctx    context.Context
	cancel context.CancelFunc

	mu        sync.Mutex
	notify    chan struct{} // closed and replaced on every state change
	status    string
	results   []RunResult
	ready     []bool
	completed int
	hits      int // completed runs served from cache
	misses    int // completed runs that were simulated
	specKey   string
	err       error
}

// Total returns the number of concrete runs the job's spec expanded into.
func (j *Job) Total() int { return len(j.runs) }

// Info snapshots the job's current state.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:        j.ID,
		Status:    j.status,
		Runs:      len(j.runs),
		Completed: j.completed,
		Hits:      j.hits,
		Misses:    j.misses,
		SpecKey:   j.specKey,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Err returns the job's failure, if any (nil while non-terminal;
// ErrJobCanceled after a cancel).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Cancel requests cancellation. Idempotent, and a no-op once the job is
// terminal: the context unwinds Engine.execute, which stops scheduling
// runs, and the job reaches the terminal canceled state when the sweep's
// in-flight runs drain. Callers observe the transition via Info/WaitRun.
func (j *Job) Cancel() { j.cancel() }

// WaitRun blocks until run i's result is available and returns it; ok is
// false when the job reached a terminal state without producing run i
// (a failed or canceled sweep) or ctx was canceled first. Results arrive
// in sweep completion order internally, so waiting index by index streams
// them in deterministic expansion order.
func (j *Job) WaitRun(ctx context.Context, i int) (RunResult, bool) {
	for {
		j.mu.Lock()
		if i < len(j.ready) && j.ready[i] {
			rr := j.results[i]
			j.mu.Unlock()
			return rr, true
		}
		if api.JobTerminal(j.status) {
			j.mu.Unlock()
			return RunResult{}, false
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return RunResult{}, false
		}
	}
}

// signal wakes every waiter; callers must hold j.mu.
func (j *Job) signal() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// onRun records one completed run (the engine's execute callback; may be
// called from several worker goroutines at once).
func (j *Job) onRun(i int, rr RunResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results[i] = rr
	j.ready[i] = true
	j.completed++
	if rr.Cached {
		j.hits++
	} else {
		j.misses++
	}
	j.signal()
}

// finish moves the job to its terminal state: done on success, canceled
// when the sweep was cut short by Cancel, failed otherwise.
func (j *Job) finish(res *SweepResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.status = JobDone
		j.specKey = res.SpecKey
	case errors.Is(err, ErrSweepCanceled):
		j.status = JobCanceled
		j.err = ErrJobCanceled
	default:
		j.status = JobFailed
		j.err = err
	}
	j.signal()
}

// terminal reports whether the job has finished (done, failed, or
// canceled).
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.JobTerminal(j.status)
}

// Jobs is a bounded registry of asynchronous sweeps over one engine.
// Submissions expand and validate eagerly (bad specs fail synchronously,
// like POST /v1/run), then execute in a background goroutine. The
// registry holds at most max jobs: when full, the oldest terminal job is
// retired FIFO to make room, and if every tracked job is still queued or
// running the submission is rejected with ErrTooManyJobs — so memory
// stays flat no matter how many sweeps a long-lived server has answered.
// Safe for concurrent use.
type Jobs struct {
	engine  *Engine
	workers int
	max     int
	met     *metrics.Set

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for FIFO retirement
	seq   int
}

// NewJobs returns an empty registry; workers bounds each job's simulation
// pool (0 = all cores) and max bounds the registry (<= 0 selects
// DefaultMaxJobs).
func NewJobs(engine *Engine, workers, max int) *Jobs {
	if max <= 0 {
		max = DefaultMaxJobs
	}
	return &Jobs{
		engine:  engine,
		workers: workers,
		max:     max,
		met:     metrics.NewSet("submitted", "rejected", "completed", "failed", "canceled", "retired"),
		jobs:    make(map[string]*Job),
	}
}

// Submit validates and enqueues a spec, returning the queued job. The
// spec is expanded synchronously so malformed submissions fail with the
// same errors as POST /v1/run; execution happens in the background.
func (js *Jobs) Submit(spec Spec) (*Job, error) {
	runs, err := spec.Expand()
	if err != nil {
		return nil, err
	}

	js.mu.Lock()
	for len(js.jobs) >= js.max {
		if !js.retireOldestLocked() {
			js.mu.Unlock()
			js.met.Add(jobsRejected, 1)
			return nil, ErrTooManyJobs
		}
	}
	js.seq++
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:      formatJobID(js.seq),
		seq:     js.seq,
		runs:    runs,
		ctx:     ctx,
		cancel:  cancel,
		notify:  make(chan struct{}),
		status:  JobQueued,
		results: make([]RunResult, len(runs)),
		ready:   make([]bool, len(runs)),
	}
	js.jobs[j.ID] = j
	js.order = append(js.order, j.ID)
	js.mu.Unlock()

	js.met.Add(jobsSubmitted, 1)
	go js.run(j)
	return j, nil
}

// run executes one job to its terminal state.
func (js *Jobs) run(j *Job) {
	// Release the cancel context's resources once the sweep has drained,
	// whatever the terminal state.
	defer j.cancel()

	j.mu.Lock()
	j.status = JobRunning
	j.signal()
	j.mu.Unlock()

	res, err := js.engine.execute(j.ctx, j.runs, js.workers, j.onRun)
	j.finish(res, err)
	switch {
	case err == nil:
		js.met.Add(jobsCompleted, 1)
	case errors.Is(err, ErrSweepCanceled):
		js.met.Add(jobsCanceled, 1)
	default:
		js.met.Add(jobsFailed, 1)
	}
}

// retireOldestLocked drops the oldest terminal job, reporting whether one
// existed. Queued and running jobs are never retired: a job a client is
// still waiting on cannot disappear. Callers must hold js.mu.
func (js *Jobs) retireOldestLocked() bool {
	for i, id := range js.order {
		if !js.jobs[id].terminal() {
			continue
		}
		js.order = append(js.order[:i], js.order[i+1:]...)
		delete(js.jobs, id)
		js.met.Add(jobsRetired, 1)
		return true
	}
	return false
}

// Get returns a tracked job by ID.
func (js *Jobs) Get(id string) (*Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	return j, ok
}

// LookupState distinguishes the three answers a job ID can have: tracked,
// retired (the ID was issued, but the bounded registry has since dropped
// the terminal record FIFO), or never issued at all. Servers map these to
// 200, 410, and 404.
type LookupState int

const (
	LookupFound LookupState = iota
	LookupRetired
	LookupUnknown
)

// Lookup resolves an ID to its job, or explains its absence. Retirement
// is detected without any per-retired-job memory: IDs are dense sequence
// numbers, so a canonical ID at or below the current sequence that is no
// longer tracked must have been retired.
func (js *Jobs) Lookup(id string) (*Job, LookupState) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if j, ok := js.jobs[id]; ok {
		return j, LookupFound
	}
	if seq, ok := parseJobID(id); ok && seq >= 1 && seq <= js.seq {
		return nil, LookupRetired
	}
	return nil, LookupUnknown
}

// List returns up to limit tracked jobs newest-first, starting strictly
// after pageToken (a job ID from a previous page; empty starts at the
// newest). The returned token is empty when the listing is exhausted.
// A malformed token is an error; a token whose job has since been retired
// still works, because position is derived from the ID's sequence number,
// not the record.
func (js *Jobs) List(limit int, pageToken string) ([]JobInfo, string, error) {
	if limit <= 0 {
		limit = DefaultJobPageSize
	}
	if limit > MaxJobPageSize {
		limit = MaxJobPageSize
	}
	after := int(^uint(0) >> 1) // no token: start above every sequence
	if pageToken != "" {
		seq, ok := parseJobID(pageToken)
		if !ok {
			return nil, "", fmt.Errorf("exp: malformed page token %q (want a job ID)", pageToken)
		}
		after = seq
	}

	js.mu.Lock()
	defer js.mu.Unlock()
	infos := make([]JobInfo, 0, limit)
	next := ""
	// order is submission order, so walking it backwards yields newest
	// first; sequence numbers are strictly increasing with position.
	for i := len(js.order) - 1; i >= 0; i-- {
		j := js.jobs[js.order[i]]
		if j.seq >= after {
			continue
		}
		if len(infos) == limit {
			next = infos[limit-1].ID
			break
		}
		infos = append(infos, j.Info())
	}
	return infos, next, nil
}

// formatJobID renders a sequence number in the canonical wire form
// ("job-000001"; wider, without padding, past a million submissions).
func formatJobID(seq int) string {
	return fmt.Sprintf("job-%06d", seq)
}

// parseJobID inverts formatJobID, accepting only the canonical form —
// "job-1" is not an alias for "job-000001", it is an unknown ID.
func parseJobID(id string) (int, bool) {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	seq, err := strconv.Atoi(id[len(prefix):])
	if err != nil || seq < 1 || formatJobID(seq) != id {
		return 0, false
	}
	return seq, true
}

// Stats snapshots all counters.
func (js *Jobs) Stats() JobsStats {
	js.mu.Lock()
	tracked := int64(len(js.jobs))
	js.mu.Unlock()
	return JobsStats{
		Submitted: js.met.Value(jobsSubmitted),
		Rejected:  js.met.Value(jobsRejected),
		Completed: js.met.Value(jobsCompleted),
		Failed:    js.met.Value(jobsFailed),
		Canceled:  js.met.Value(jobsCanceled),
		Retired:   js.met.Value(jobsRetired),
		Tracked:   tracked,
	}
}

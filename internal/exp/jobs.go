package exp

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"repro/internal/metrics"
	"repro/pkg/api"
)

// Job statuses, in lifecycle order (re-exported from the pkg/api wire
// contract). A job is terminal once it reaches JobDone, JobFailed, or
// JobCanceled; JobInterrupted is the non-terminal shutdown state a
// restarted server resumes from.
const (
	JobQueued      = api.JobQueued
	JobRunning     = api.JobRunning
	JobInterrupted = api.JobInterrupted
	JobDone        = api.JobDone
	JobFailed      = api.JobFailed
	JobCanceled    = api.JobCanceled
)

// JobInfo is the wire form of a job's state (see api.JobInfo).
type JobInfo = api.JobInfo

// JobsStats is the wire form of the registry counters (see api.JobsStats).
type JobsStats = api.JobsStats

// DefaultMaxJobs bounds the job registry when the caller does not choose
// a limit.
const DefaultMaxJobs = 256

// Job listing page bounds: DefaultJobPageSize applies when the client
// does not pass ?limit=, MaxJobPageSize clamps what it may ask for.
const (
	DefaultJobPageSize = 50
	MaxJobPageSize     = 500
)

// progressJournalEvery throttles the per-run progress watermark: the
// journal is rewritten at every lifecycle transition and then every this
// many completed runs. The watermark is advisory — recovery skips
// already-computed runs by consulting the content-addressed store, not
// this number — so a coarse cadence costs nothing but a slightly stale
// "completed" count in the record.
const progressJournalEvery = 16

// ErrTooManyJobs tags submissions rejected because the registry is full
// of jobs that are still queued or running (servers map it to 429 with a
// Retry-After hint).
var ErrTooManyJobs = errors.New("exp: job registry full (all tracked jobs still queued or running)")

// ErrJobCanceled is the terminal error of a canceled job: the sweep
// stopped scheduling runs after DELETE /v1/jobs/{id}. Runs that finished
// before the cancel remain cached.
var ErrJobCanceled = errors.New("exp: job canceled")

// ErrJobInterrupted marks a job caught mid-execution by graceful
// shutdown: its progress is journaled and a server restarted on the same
// data dir re-enqueues it under the same ID.
var ErrJobInterrupted = errors.New("exp: job interrupted by server shutdown; a restart on the same data dir resumes it")

// ErrShuttingDown tags submissions rejected because the registry is
// draining for shutdown (servers map it to 503).
var ErrShuttingDown = errors.New("exp: server shutting down; no new jobs accepted")

// ErrJournalUnavailable tags submissions rejected because the durable ID
// allocation write failed: handing out an ID the journal cannot cover
// would let a rebooted server reissue it to a different job.
var ErrJournalUnavailable = errors.New("exp: job journal unavailable")

// Fixed counter IDs for job statistics, in the slot order passed to
// metrics.NewSet in NewJobs.
const (
	jobsSubmitted metrics.CounterID = iota
	jobsRejected
	jobsCompleted
	jobsFailed
	jobsCanceled
	jobsRetired
	jobsResumed
	jobsRunsSkipped
)

// Job is one asynchronous sweep: a spec validated at submission and
// expanded lazily (one run at a time) while it executes in the background
// over the engine's worker pool, with per-run results observable while
// the sweep runs. The job itself retains no result bytes — only a
// per-run completion bitmap — so a tracked job costs one bit per run,
// not one report: WaitRun reconstructs any completed run on demand from
// the expansion and the engine's content-addressed cache, which is
// exactly as durable as the cache's backing store. Cancellation travels
// through the job's context into Engine.executeStream: once canceled, no
// further runs are scheduled and the job lands in the terminal canceled
// state. A graceful shutdown travels the same path but lands in the
// non-terminal interrupted state, whose journal record a restarted
// registry resumes from.
type Job struct {
	// ID names the job in the HTTP API ("job-000001", …).
	ID string

	seq     int
	x       *Expansion // nil only when a resumed spec failed to expand
	engine  *Engine
	ctx     context.Context
	cancel  context.CancelFunc
	resumed bool // re-enqueued from the journal after a restart

	mu           sync.Mutex
	notify       chan struct{} // closed and replaced on every state change
	status       string
	ready        []bool // per-run completion bitmap, indexed by run
	completed    int
	hits         int // completed runs served from cache
	misses       int // completed runs that were simulated
	specKey      string
	err          error
	userCanceled bool // Cancel was called; beats interrupted in finish
	interrupted  bool // Quiesce caught the job before it finished

	journalMu     sync.Mutex
	lastJournaled int  // completed count at the last progress record
	journalClosed bool // final record written; no further journal writes
}

// Total returns the number of concrete runs the job's spec expands into
// (0 for a resumed job whose spec no longer expands).
func (j *Job) Total() int {
	if j.x == nil {
		return 0
	}
	return j.x.Total()
}

// Info snapshots the job's current state.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:        j.ID,
		Status:    j.status,
		Runs:      j.Total(),
		Completed: j.completed,
		Hits:      j.hits,
		Misses:    j.misses,
		Resumed:   j.resumed,
		SpecKey:   j.specKey,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Status returns the job's current lifecycle state.
func (j *Job) Status() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status
}

// Err returns the job's failure, if any (nil while non-terminal;
// ErrJobCanceled after a cancel, ErrJobInterrupted during drain).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// Cancel requests cancellation. Idempotent, and a no-op once the job is
// terminal: the context unwinds Engine.execute, which stops scheduling
// runs, and the job reaches the terminal canceled state when the sweep's
// in-flight runs drain. Callers observe the transition via Info/WaitRun.
func (j *Job) Cancel() {
	j.mu.Lock()
	j.userCanceled = true
	j.mu.Unlock()
	j.cancel()
}

// interrupt is the shutdown path's cancellation: the sweep unwinds the
// same way, but finish lands in the resumable interrupted state instead
// of the terminal canceled one. A cancel the user already requested wins
// — an acknowledged DELETE must not resurrect as a resumed job.
func (j *Job) interrupt() {
	j.mu.Lock()
	if !api.JobTerminal(j.status) && !j.userCanceled {
		j.interrupted = true
	}
	j.mu.Unlock()
	j.cancel()
}

// settled reports whether the job will produce no further results: it is
// terminal, or interrupted (owing its remaining results to the process
// that resumes it).
func settled(status string) bool {
	return api.JobTerminal(status) || status == JobInterrupted
}

// WaitRun blocks until run i's result is available and returns it; ok is
// false when the job settled without producing run i (a failed, canceled,
// or interrupted sweep) or ctx was canceled first. Results arrive in
// sweep completion order internally, so waiting index by index streams
// them in deterministic expansion order.
//
// The result is rebuilt on demand rather than retained by the job: the
// run's identity (key, scenario, params) comes from the deterministic
// expansion and its report bytes from the engine's content-addressed
// cache, which holds exactly the blob the sweep computed. With a durable
// store behind the cache the rebuild always succeeds; on a memory-only
// engine a report evicted under cache pressure makes WaitRun report the
// run unavailable, the same answer a settled-short job gives.
func (j *Job) WaitRun(ctx context.Context, i int) (RunResult, bool) {
	for {
		j.mu.Lock()
		if i < len(j.ready) && j.ready[i] {
			j.mu.Unlock()
			return j.rebuildRun(ctx, i)
		}
		if settled(j.status) {
			j.mu.Unlock()
			return RunResult{}, false
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return RunResult{}, false
		}
	}
}

// rebuildRun reconstructs a completed run's result outside the job lock.
// Byte-for-byte identical to the result the engine streamed: Params
// marshal in sorted key order, and the report is the exact cached blob.
func (j *Job) rebuildRun(ctx context.Context, i int) (RunResult, bool) {
	r, err := j.x.RunAt(i)
	if err != nil {
		return RunResult{}, false
	}
	blob, ok := j.engine.cache.Peek(ctx, r.Key)
	if !ok {
		return RunResult{}, false
	}
	return RunResult{
		RunResult: api.RunResult{
			Key:      r.Key,
			Scenario: r.Scenario,
			Scale:    r.Scale.String(),
			Params:   r.Params,
			Report:   blob,
		},
	}, true
}

// signal wakes every waiter; callers must hold j.mu.
func (j *Job) signal() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// onRun records one completed run (the engine's executeStream callback;
// may be called from several worker goroutines at once). Only the
// completion bit and the counters are kept — the result itself is
// dropped and rebuilt from cache on demand by WaitRun.
func (j *Job) onRun(i int, rr RunResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.ready[i] = true
	j.completed++
	if rr.Cached {
		j.hits++
	} else {
		j.misses++
	}
	j.signal()
}

// finish moves the job to its settled state: done on success; canceled
// when the sweep was cut short by Cancel; interrupted when graceful
// shutdown cut it short (resumable, not terminal); failed otherwise.
func (j *Job) finish(res *SweepResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	switch {
	case err == nil:
		j.status = JobDone
		j.specKey = res.SpecKey
	case errors.Is(err, ErrSweepCanceled) && !j.userCanceled && j.interrupted:
		j.status = JobInterrupted
		j.err = ErrJobInterrupted
	case errors.Is(err, ErrSweepCanceled):
		j.status = JobCanceled
		j.err = ErrJobCanceled
	default:
		j.status = JobFailed
		j.err = err
	}
	j.signal()
}

// terminal reports whether the job has finished (done, failed, or
// canceled).
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return api.JobTerminal(j.status)
}

// Jobs is a bounded registry of asynchronous sweeps over one engine.
// Submissions validate eagerly (bad specs fail synchronously, like POST
// /v1/run) but expand lazily, then execute in a background goroutine. The
// registry holds at most max jobs: when full, the oldest terminal job is
// retired FIFO to make room, and if every tracked job is still queued or
// running the submission is rejected with ErrTooManyJobs — so memory
// stays flat no matter how many sweeps a long-lived server has answered.
//
// With a Journal attached, every accepted job is durable: its spec and
// lifecycle transitions persist under the data dir, Quiesce drains
// in-flight work into resumable interrupted records on shutdown, and
// Recover re-enqueues every non-terminal job on boot — resumed sweeps
// consult the content-addressed store first, so recovery re-simulates
// only the runs the crash actually lost. Safe for concurrent use.
type Jobs struct {
	engine  *Engine
	workers int
	max     int
	journal *Journal // nil = in-memory registry only
	met     *metrics.Set
	wg      sync.WaitGroup // live job goroutines, for Quiesce

	mu          sync.Mutex
	jobs        map[string]*Job
	order       []string // submission order, for FIFO retirement
	seq         int
	seqReserved int  // highest seq the on-disk SEQ watermark covers
	quiescing   bool // draining for shutdown; reject new submissions
}

// NewJobs returns an empty registry; workers bounds each job's simulation
// pool (0 = all cores), max bounds the registry (<= 0 selects
// DefaultMaxJobs), and journal (nil for in-memory only) makes accepted
// jobs durable. With a journal, call Recover before serving to re-enqueue
// work a previous process left behind.
func NewJobs(engine *Engine, workers, max int, journal *Journal) *Jobs {
	if max <= 0 {
		max = DefaultMaxJobs
	}
	return &Jobs{
		engine:  engine,
		workers: workers,
		max:     max,
		journal: journal,
		met: metrics.NewSet("submitted", "rejected", "completed", "failed",
			"canceled", "retired", "resumed", "runs_skipped_on_resume"),
		jobs: make(map[string]*Job),
	}
}

// Submit validates and enqueues a spec, returning the queued job. The
// spec is validated synchronously so malformed submissions fail with the
// same errors as POST /v1/run, but expansion itself is lazy: the grid is
// never materialized, so a job may sweep up to MaxJobRuns runs (far past
// the synchronous endpoint's MaxRuns) without the submission allocating
// more than one run. Execution happens in the background. With a
// journal, the job's ID allocation is made durable before the ID is
// returned (a failed watermark write rejects the submission — an ID a
// rebooted server could reissue must never escape), and the spec and
// queued-status records follow best-effort.
func (js *Jobs) Submit(spec Spec) (*Job, error) {
	x, err := spec.Expansion(MaxJobRuns)
	if err != nil {
		return nil, err
	}

	js.mu.Lock()
	if js.quiescing {
		js.mu.Unlock()
		js.met.Add(jobsRejected, 1)
		return nil, ErrShuttingDown
	}
	var retired []string
	for len(js.jobs) >= js.max {
		id, ok := js.retireOldestLocked()
		if !ok {
			js.mu.Unlock()
			js.met.Add(jobsRejected, 1)
			return nil, ErrTooManyJobs
		}
		retired = append(retired, id)
	}
	js.seq++
	if js.journal != nil && js.seq > js.seqReserved {
		// Reserve a chunk of IDs on disk before this one escapes. Held
		// under js.mu so the watermark only ever moves forward; it is one
		// fsync per seqChunk submissions, not per submission.
		target := js.seq + seqChunk
		if err := js.journal.RecordSeq(target); err != nil {
			js.seq--
			js.mu.Unlock()
			js.met.Add(jobsRejected, 1)
			return nil, fmt.Errorf("%w: %v", ErrJournalUnavailable, err)
		}
		js.seqReserved = target
	}
	ctx, cancel := detachedContext()
	j := &Job{
		ID:     formatJobID(js.seq),
		seq:    js.seq,
		x:      x,
		engine: js.engine,
		ctx:    ctx,
		cancel: cancel,
		notify: make(chan struct{}),
		status: JobQueued,
		ready:  make([]bool, x.Total()),
	}
	js.jobs[j.ID] = j
	js.order = append(js.order, j.ID)
	js.wg.Add(1)
	js.mu.Unlock()

	for _, id := range retired {
		js.journalRemove(id)
	}
	if js.journal != nil {
		// Best-effort durability from here: a failed write degrades to a
		// job that may not survive a restart, counted in journal_errors,
		// never to a wrong or duplicate job.
		js.journal.RecordSpec(j.ID, spec)
	}
	js.journalState(j, true)
	js.met.Add(jobsSubmitted, 1)
	go js.run(j)
	return j, nil
}

// detachedContext is the registry's one sanctioned escape from request
// contexts: a job outlives the HTTP request that submitted it, and
// graceful shutdown must interrupt jobs explicitly (Quiesce) so in-flight
// runs drain into the store instead of being torn mid-write — deriving
// job contexts from the server's signal context would cancel them first.
func detachedContext() (context.Context, context.CancelFunc) {
	//lint:ignore ctxplumb job lifetime is registry-scoped by design; Quiesce interrupts explicitly
	return context.WithCancel(context.Background())
}

// run executes one job to its settled state.
func (js *Jobs) run(j *Job) {
	defer js.wg.Done()
	// Release the cancel context's resources once the sweep has drained,
	// whatever the settled state.
	defer j.cancel()

	j.mu.Lock()
	j.status = JobRunning
	j.signal()
	j.mu.Unlock()
	js.journalState(j, true)

	res, err := js.engine.executeStream(j.ctx, j.x, js.workers, func(i int, rr RunResult) {
		j.onRun(i, rr)
		if j.resumed && rr.Cached {
			js.met.Add(jobsRunsSkipped, 1)
		}
		js.journalState(j, false)
	})
	j.finish(res, err)
	js.journalState(j, true)
	switch j.Status() {
	case JobDone:
		js.met.Add(jobsCompleted, 1)
	case JobCanceled:
		js.met.Add(jobsCanceled, 1)
	case JobInterrupted:
		// Not terminal: the restarted registry's resume counters pick the
		// job back up.
	default:
		js.met.Add(jobsFailed, 1)
	}
}

// journalState persists the job's current state. force bypasses the
// progress throttle (lifecycle transitions always hit disk; per-run
// progress every progressJournalEvery completions). The record written
// for a settled state is the job's last — later calls no-op, so a slow
// progress writer can never overwrite a terminal record with "running".
func (js *Jobs) journalState(j *Job, force bool) {
	if js.journal == nil {
		return
	}
	j.journalMu.Lock()
	defer j.journalMu.Unlock()
	if j.journalClosed {
		return
	}
	j.mu.Lock()
	st := journalStatus{
		Status:    j.status,
		Completed: j.completed,
		Resumed:   j.resumed,
		SpecKey:   j.specKey,
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	j.mu.Unlock()
	if !force && st.Completed-j.lastJournaled < progressJournalEvery {
		return
	}
	j.lastJournaled = st.Completed
	js.journal.RecordStatus(j.ID, st)
	if settled(st.Status) {
		j.journalClosed = true
	}
}

// journalRemove drops a retired job's records, if a journal is attached.
func (js *Jobs) journalRemove(id string) {
	if js.journal != nil {
		js.journal.Remove(id)
	}
}

// Quiesce drains the registry for graceful shutdown: new submissions are
// rejected, every live job is interrupted (in-flight runs finish and are
// stored; no new runs are scheduled), and Quiesce returns once every job
// goroutine has flushed its final journal record — or ctx expires first.
// After a clean quiesce the journal holds a complete, resumable picture
// of every job the shutdown cut short.
func (js *Jobs) Quiesce(ctx context.Context) error {
	js.mu.Lock()
	js.quiescing = true
	live := make([]*Job, 0, len(js.jobs))
	for _, id := range js.order {
		if j, ok := js.jobs[id]; ok {
			live = append(live, j)
		}
	}
	js.mu.Unlock()
	for _, j := range live {
		j.interrupt()
	}
	done := make(chan struct{})
	go func() {
		js.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("exp: quiesce: %w", ctx.Err())
	}
}

// Recover replays the journal into the registry: the ID-allocation
// watermark is restored (so no past ID is ever reissued), terminal
// records are cleaned up (their results live in the content-addressed
// store; the IDs answer 410 like any retired job), and every non-terminal
// job — queued, running, or interrupted — is re-enqueued under its
// original ID with Resumed set. Resumed sweeps hit the durable store for
// every run a previous process completed, so recovery re-simulates only
// lost work. Returns the number of jobs re-enqueued. Call once, before
// the registry starts serving.
func (js *Jobs) Recover() int {
	if js.journal == nil {
		return 0
	}
	seq, entries := js.journal.Recover()
	js.mu.Lock()
	if seq > js.seq {
		js.seq = seq
	}
	// Force a fresh reservation on the next submission: the new chunk
	// starts above everything recovered, so the watermark never regresses.
	js.seqReserved = 0
	js.mu.Unlock()

	resumed := 0
	for _, e := range entries {
		if api.JobTerminal(e.Status.Status) {
			js.journal.Remove(e.ID)
			js.met.Add(jobsRetired, 1)
			continue
		}
		x, err := e.Spec.Expansion(MaxJobRuns)
		ctx, cancel := detachedContext()
		j := &Job{
			ID:      e.ID,
			seq:     e.Seq,
			x:       x,
			engine:  js.engine,
			ctx:     ctx,
			cancel:  cancel,
			notify:  make(chan struct{}),
			status:  JobQueued,
			resumed: true,
		}
		if x != nil {
			j.ready = make([]bool, x.Total())
		}
		js.mu.Lock()
		js.jobs[j.ID] = j
		js.order = append(js.order, j.ID)
		js.mu.Unlock()
		js.met.Add(jobsResumed, 1)
		if err != nil {
			// The journaled spec no longer expands (scenario registry
			// drift, config schema change): fail the job loudly under its
			// own ID rather than silently dropping accepted work.
			j.mu.Lock()
			j.status = JobFailed
			j.err = fmt.Errorf("exp: resumed job spec no longer expands: %w", err)
			j.mu.Unlock()
			js.journalState(j, true)
			js.met.Add(jobsFailed, 1)
			cancel()
			continue
		}
		js.mu.Lock()
		js.wg.Add(1)
		js.mu.Unlock()
		resumed++
		go js.run(j)
	}
	return resumed
}

// retireOldestLocked drops the oldest terminal job, reporting its ID and
// whether one existed. Queued and running jobs are never retired: a job a
// client is still waiting on cannot disappear. Callers must hold js.mu
// and remove the journal records outside the lock.
func (js *Jobs) retireOldestLocked() (string, bool) {
	for i, id := range js.order {
		if !js.jobs[id].terminal() {
			continue
		}
		js.order = append(js.order[:i], js.order[i+1:]...)
		delete(js.jobs, id)
		js.met.Add(jobsRetired, 1)
		return id, true
	}
	return "", false
}

// Get returns a tracked job by ID.
func (js *Jobs) Get(id string) (*Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	return j, ok
}

// LookupState distinguishes the three answers a job ID can have: tracked,
// retired (the ID was issued, but the bounded registry has since dropped
// the terminal record FIFO), or never issued at all. Servers map these to
// 200, 410, and 404.
type LookupState int

const (
	LookupFound LookupState = iota
	LookupRetired
	LookupUnknown
)

// Lookup resolves an ID to its job, or explains its absence. Retirement
// is detected without any per-retired-job memory: IDs are dense sequence
// numbers, so a canonical ID at or below the current sequence that is no
// longer tracked must have been retired. (After a crash recovery the
// sequence may include a small reserved gap of never-issued IDs, which
// also answer retired — conservatively harmless.)
func (js *Jobs) Lookup(id string) (*Job, LookupState) {
	js.mu.Lock()
	defer js.mu.Unlock()
	if j, ok := js.jobs[id]; ok {
		return j, LookupFound
	}
	if seq, ok := parseJobID(id); ok && seq >= 1 && seq <= js.seq {
		return nil, LookupRetired
	}
	return nil, LookupUnknown
}

// List returns up to limit tracked jobs newest-first, starting strictly
// after pageToken (a job ID from a previous page; empty starts at the
// newest). The returned token is empty when the listing is exhausted.
// A malformed token is an error; a token whose job has since been retired
// still works, because position is derived from the ID's sequence number,
// not the record.
func (js *Jobs) List(limit int, pageToken string) ([]JobInfo, string, error) {
	if limit <= 0 {
		limit = DefaultJobPageSize
	}
	if limit > MaxJobPageSize {
		limit = MaxJobPageSize
	}
	after := int(^uint(0) >> 1) // no token: start above every sequence
	if pageToken != "" {
		seq, ok := parseJobID(pageToken)
		if !ok {
			return nil, "", fmt.Errorf("exp: malformed page token %q (want a job ID)", pageToken)
		}
		after = seq
	}

	js.mu.Lock()
	defer js.mu.Unlock()
	infos := make([]JobInfo, 0, limit)
	next := ""
	// order is submission order, so walking it backwards yields newest
	// first; sequence numbers are strictly increasing with position.
	for i := len(js.order) - 1; i >= 0; i-- {
		j := js.jobs[js.order[i]]
		if j.seq >= after {
			continue
		}
		if len(infos) == limit {
			next = infos[limit-1].ID
			break
		}
		infos = append(infos, j.Info())
	}
	return infos, next, nil
}

// formatJobID renders a sequence number in the canonical wire form
// ("job-000001"; wider, without padding, past a million submissions).
func formatJobID(seq int) string {
	return fmt.Sprintf("job-%06d", seq)
}

// parseJobID inverts formatJobID, accepting only the canonical form —
// "job-1" is not an alias for "job-000001", it is an unknown ID.
func parseJobID(id string) (int, bool) {
	const prefix = "job-"
	if !strings.HasPrefix(id, prefix) {
		return 0, false
	}
	seq, err := strconv.Atoi(id[len(prefix):])
	if err != nil || seq < 1 || formatJobID(seq) != id {
		return 0, false
	}
	return seq, true
}

// Stats snapshots all counters, including the attached journal's.
func (js *Jobs) Stats() JobsStats {
	js.mu.Lock()
	tracked := int64(len(js.jobs))
	js.mu.Unlock()
	st := JobsStats{
		Submitted:           js.met.Value(jobsSubmitted),
		Rejected:            js.met.Value(jobsRejected),
		Completed:           js.met.Value(jobsCompleted),
		Failed:              js.met.Value(jobsFailed),
		Canceled:            js.met.Value(jobsCanceled),
		Retired:             js.met.Value(jobsRetired),
		Tracked:             tracked,
		Resumed:             js.met.Value(jobsResumed),
		RunsSkippedOnResume: js.met.Value(jobsRunsSkipped),
	}
	if js.journal != nil {
		st.JournalErrors = js.journal.errorCount()
		st.JournalCorruptDropped = js.journal.corruptCount()
	}
	return st
}

package exp

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"repro/internal/metrics"
)

// Job statuses, in lifecycle order. A job is terminal once it reaches
// JobDone or JobFailed.
const (
	JobQueued  = "queued"
	JobRunning = "running"
	JobDone    = "done"
	JobFailed  = "failed"
)

// DefaultMaxJobs bounds the job registry when the caller does not choose
// a limit.
const DefaultMaxJobs = 256

// ErrTooManyJobs tags submissions rejected because the registry is full
// of jobs that are still queued or running (servers map it to 429).
var ErrTooManyJobs = errors.New("exp: job registry full (all tracked jobs still queued or running)")

// Fixed counter IDs for job statistics, in the slot order passed to
// metrics.NewSet in NewJobs.
const (
	jobsSubmitted metrics.CounterID = iota
	jobsRejected
	jobsCompleted
	jobsFailed
	jobsRetired
)

// Job is one asynchronous sweep: a spec expanded at submission, executed
// in the background over the engine's worker pool, with per-run results
// observable while the sweep runs. Results are retained after completion
// (for late polls and stream replays) until the registry retires the job.
type Job struct {
	// ID names the job in the HTTP API ("job-000001", …).
	ID string

	runs []Run

	mu        sync.Mutex
	notify    chan struct{} // closed and replaced on every state change
	status    string
	results   []RunResult
	ready     []bool
	completed int
	hits      int // completed runs served from cache
	misses    int // completed runs that were simulated
	specKey   string
	err       error
}

// JobInfo is the wire form of a job's state, served on POST /v1/jobs and
// GET /v1/jobs/{id}. Hits and Misses count completed runs by how they
// were served (cache vs. simulation); SpecKey and Error appear only in
// terminal states.
type JobInfo struct {
	ID        string `json:"id"`
	Status    string `json:"status"`
	Runs      int    `json:"runs"`
	Completed int    `json:"completed"`
	Hits      int    `json:"hits"`
	Misses    int    `json:"misses"`
	SpecKey   string `json:"spec_key,omitempty"`
	Error     string `json:"error,omitempty"`
}

// Total returns the number of concrete runs the job's spec expanded into.
func (j *Job) Total() int { return len(j.runs) }

// Info snapshots the job's current state.
func (j *Job) Info() JobInfo {
	j.mu.Lock()
	defer j.mu.Unlock()
	info := JobInfo{
		ID:        j.ID,
		Status:    j.status,
		Runs:      len(j.runs),
		Completed: j.completed,
		Hits:      j.hits,
		Misses:    j.misses,
		SpecKey:   j.specKey,
	}
	if j.err != nil {
		info.Error = j.err.Error()
	}
	return info
}

// Err returns the job's failure, if any (nil while non-terminal).
func (j *Job) Err() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.err
}

// WaitRun blocks until run i's result is available and returns it; ok is
// false when the job reached a terminal state without producing run i
// (a failed sweep) or ctx was canceled first. Results arrive in sweep
// completion order internally, so waiting index by index streams them in
// deterministic expansion order.
func (j *Job) WaitRun(ctx context.Context, i int) (RunResult, bool) {
	for {
		j.mu.Lock()
		if i < len(j.ready) && j.ready[i] {
			rr := j.results[i]
			j.mu.Unlock()
			return rr, true
		}
		if j.status == JobDone || j.status == JobFailed {
			j.mu.Unlock()
			return RunResult{}, false
		}
		ch := j.notify
		j.mu.Unlock()
		select {
		case <-ch:
		case <-ctx.Done():
			return RunResult{}, false
		}
	}
}

// signal wakes every waiter; callers must hold j.mu.
func (j *Job) signal() {
	close(j.notify)
	j.notify = make(chan struct{})
}

// onRun records one completed run (the engine's execute callback; may be
// called from several worker goroutines at once).
func (j *Job) onRun(i int, rr RunResult) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.results[i] = rr
	j.ready[i] = true
	j.completed++
	if rr.Cached {
		j.hits++
	} else {
		j.misses++
	}
	j.signal()
}

// finish moves the job to its terminal state.
func (j *Job) finish(res *SweepResult, err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err != nil {
		j.status = JobFailed
		j.err = err
	} else {
		j.status = JobDone
		j.specKey = res.SpecKey
	}
	j.signal()
}

// terminal reports whether the job has finished (done or failed).
func (j *Job) terminal() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.status == JobDone || j.status == JobFailed
}

// Jobs is a bounded registry of asynchronous sweeps over one engine.
// Submissions expand and validate eagerly (bad specs fail synchronously,
// like POST /v1/run), then execute in a background goroutine. The
// registry holds at most max jobs: when full, the oldest terminal job is
// retired FIFO to make room, and if every tracked job is still queued or
// running the submission is rejected with ErrTooManyJobs — so memory
// stays flat no matter how many sweeps a long-lived server has answered.
// Safe for concurrent use.
type Jobs struct {
	engine  *Engine
	workers int
	max     int
	met     *metrics.Set

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string // submission order, for FIFO retirement
	seq   int
}

// NewJobs returns an empty registry; workers bounds each job's simulation
// pool (0 = all cores) and max bounds the registry (<= 0 selects
// DefaultMaxJobs).
func NewJobs(engine *Engine, workers, max int) *Jobs {
	if max <= 0 {
		max = DefaultMaxJobs
	}
	return &Jobs{
		engine:  engine,
		workers: workers,
		max:     max,
		met:     metrics.NewSet("submitted", "rejected", "completed", "failed", "retired"),
		jobs:    make(map[string]*Job),
	}
}

// Submit validates and enqueues a spec, returning the queued job. The
// spec is expanded synchronously so malformed submissions fail with the
// same errors as POST /v1/run; execution happens in the background.
func (js *Jobs) Submit(spec Spec) (*Job, error) {
	runs, err := spec.Expand()
	if err != nil {
		return nil, err
	}

	js.mu.Lock()
	for len(js.jobs) >= js.max {
		if !js.retireOldestLocked() {
			js.mu.Unlock()
			js.met.Add(jobsRejected, 1)
			return nil, ErrTooManyJobs
		}
	}
	js.seq++
	j := &Job{
		ID:      fmt.Sprintf("job-%06d", js.seq),
		runs:    runs,
		notify:  make(chan struct{}),
		status:  JobQueued,
		results: make([]RunResult, len(runs)),
		ready:   make([]bool, len(runs)),
	}
	js.jobs[j.ID] = j
	js.order = append(js.order, j.ID)
	js.mu.Unlock()

	js.met.Add(jobsSubmitted, 1)
	go js.run(j)
	return j, nil
}

// run executes one job to its terminal state.
func (js *Jobs) run(j *Job) {
	j.mu.Lock()
	j.status = JobRunning
	j.signal()
	j.mu.Unlock()

	res, err := js.engine.execute(j.runs, js.workers, j.onRun)
	j.finish(res, err)
	if err != nil {
		js.met.Add(jobsFailed, 1)
	} else {
		js.met.Add(jobsCompleted, 1)
	}
}

// retireOldestLocked drops the oldest terminal job, reporting whether one
// existed. Queued and running jobs are never retired: a job a client is
// still waiting on cannot disappear. Callers must hold js.mu.
func (js *Jobs) retireOldestLocked() bool {
	for i, id := range js.order {
		if !js.jobs[id].terminal() {
			continue
		}
		js.order = append(js.order[:i], js.order[i+1:]...)
		delete(js.jobs, id)
		js.met.Add(jobsRetired, 1)
		return true
	}
	return false
}

// Get returns a tracked job by ID.
func (js *Jobs) Get(id string) (*Job, bool) {
	js.mu.Lock()
	defer js.mu.Unlock()
	j, ok := js.jobs[id]
	return j, ok
}

// JobsStats is a point-in-time copy of the registry counters, served on
// /v1/metrics. Tracked is the current registry occupancy (bounded by the
// configured max); Retired counts terminal jobs dropped FIFO to make
// room.
type JobsStats struct {
	Submitted int64 `json:"submitted"`
	Rejected  int64 `json:"rejected"`
	Completed int64 `json:"completed"`
	Failed    int64 `json:"failed"`
	Retired   int64 `json:"retired"`
	Tracked   int64 `json:"tracked"`
}

// Stats snapshots all counters.
func (js *Jobs) Stats() JobsStats {
	js.mu.Lock()
	tracked := int64(len(js.jobs))
	js.mu.Unlock()
	return JobsStats{
		Submitted: js.met.Value(jobsSubmitted),
		Rejected:  js.met.Value(jobsRejected),
		Completed: js.met.Value(jobsCompleted),
		Failed:    js.met.Value(jobsFailed),
		Retired:   js.met.Value(jobsRetired),
		Tracked:   tracked,
	}
}

package exp

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func doRequest(t *testing.T, h http.Handler, method, path string, body string) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	if body == "" {
		rd = bytes.NewReader(nil)
	} else {
		rd = bytes.NewReader([]byte(body))
	}
	req := httptest.NewRequest(method, path, rd)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

// TestServerRunCacheHit is the acceptance-criteria test: POSTing the same
// spec twice returns byte-identical bodies, with the second response a
// recorded cache hit.
func TestServerRunCacheHit(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	h := NewServer(NewEngine(), WithWorkers(2)).Handler()
	spec := `{
		"scenario": "covert-pum",
		"grid": {"llc_bytes": [4194304, 8388608], "mem.defense": ["none", "ctd"]}
	}`

	first := doRequest(t, h, http.MethodPost, "/v1/run", spec)
	if first.Code != http.StatusOK {
		t.Fatalf("first POST = %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first POST X-Cache = %q, want miss", got)
	}

	second := doRequest(t, h, http.MethodPost, "/v1/run", spec)
	if second.Code != http.StatusOK {
		t.Fatalf("second POST = %d: %s", second.Code, second.Body)
	}
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second POST X-Cache = %q, want hit", got)
	}
	if got := second.Header().Get("X-Cache-Hits"); got != "4" {
		t.Fatalf("second POST X-Cache-Hits = %q, want 4", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("cached response is not byte-identical to the cold response")
	}

	var res struct {
		SpecKey string `json:"spec_key"`
		Runs    []struct {
			Key    string          `json:"key"`
			Report json.RawMessage `json:"report"`
			Cached *bool           `json:"cached"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(second.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 4 || res.SpecKey == "" {
		t.Fatalf("response shape: %d runs, spec_key %q", len(res.Runs), res.SpecKey)
	}
	for _, r := range res.Runs {
		if r.Cached != nil {
			t.Fatal("cache state leaked into the response body; bodies could never be byte-identical")
		}
		if len(r.Report) == 0 || r.Key == "" {
			t.Fatal("run missing report or key")
		}
	}

	// The health endpoint exposes the hit/miss counters.
	health := doRequest(t, h, http.MethodGet, "/healthz", "")
	if health.Code != http.StatusOK {
		t.Fatalf("healthz = %d", health.Code)
	}
	var hres struct {
		Status string           `json:"status"`
		Cache  map[string]int64 `json:"cache"`
	}
	if err := json.Unmarshal(health.Body.Bytes(), &hres); err != nil {
		t.Fatal(err)
	}
	if hres.Status != "ok" || hres.Cache["entries"] != 4 || hres.Cache["hits"] != 4 || hres.Cache["misses"] != 4 {
		t.Fatalf("healthz counters: %+v", hres)
	}
}

// TestServerFigureEndpoint serves a single registry artifact, cached on
// the second fetch.
func TestServerFigureEndpoint(t *testing.T) {
	h := NewServer(NewEngine(), WithWorkers(1)).Handler()

	first := doRequest(t, h, http.MethodGet, "/v1/figures/rowbuffer", "")
	if first.Code != http.StatusOK {
		t.Fatalf("GET figure = %d: %s", first.Code, first.Body)
	}
	if got := first.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("first fetch X-Cache = %q", got)
	}
	// Figure bodies honor the API-wide contract: JSON terminated by a
	// newline, like every other response.
	if body := first.Body.Bytes(); len(body) == 0 || body[len(body)-1] != '\n' {
		t.Fatal("figure body missing the trailing newline")
	}
	var rep struct {
		ID   string `json:"id"`
		Rows []any  `json:"rows"`
	}
	if err := json.Unmarshal(first.Body.Bytes(), &rep); err != nil {
		t.Fatal(err)
	}
	if rep.ID != "§3.1" || len(rep.Rows) == 0 {
		t.Fatalf("unexpected report: %s", first.Body)
	}

	second := doRequest(t, h, http.MethodGet, "/v1/figures/rowbuffer", "")
	if got := second.Header().Get("X-Cache"); got != "hit" {
		t.Fatalf("second fetch X-Cache = %q", got)
	}
	if !bytes.Equal(first.Body.Bytes(), second.Body.Bytes()) {
		t.Fatal("figure responses differ")
	}

	// Scale is part of the identity: a full-scale fetch is a fresh run.
	full := doRequest(t, h, http.MethodGet, "/v1/figures/rowbuffer?scale=full", "")
	if got := full.Header().Get("X-Cache"); got != "miss" {
		t.Fatalf("full-scale fetch X-Cache = %q", got)
	}

	if rec := doRequest(t, h, http.MethodGet, "/v1/figures/fig99", ""); rec.Code != http.StatusNotFound {
		t.Fatalf("unknown figure = %d, want 404", rec.Code)
	}
	if rec := doRequest(t, h, http.MethodGet, "/v1/figures/rowbuffer?scale=huge", ""); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad scale = %d, want 400", rec.Code)
	}
}

// TestServerScenarios lists the registry.
func TestServerScenarios(t *testing.T) {
	h := NewServer(NewEngine(), WithWorkers(1)).Handler()
	rec := doRequest(t, h, http.MethodGet, "/v1/scenarios", "")
	if rec.Code != http.StatusOK {
		t.Fatalf("scenarios = %d", rec.Code)
	}
	var res struct {
		Scenarios []ScenarioInfo `json:"scenarios"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Scenarios) != len(ScenarioNames()) {
		t.Fatalf("listed %d scenarios, want %d", len(res.Scenarios), len(ScenarioNames()))
	}
	byName := map[string]ScenarioInfo{}
	for _, s := range res.Scenarios {
		byName[s.Name] = s
	}
	if !byName["covert-pnm"].ConfigSensitive {
		t.Fatal("covert-pnm not marked config-sensitive")
	}
	if byName["fig9"].ConfigSensitive {
		t.Fatal("figure replay marked config-sensitive")
	}
}

// TestServerErrors checks the HTTP error contract.
func TestServerErrors(t *testing.T) {
	h := NewServer(NewEngine(), WithWorkers(1)).Handler()
	cases := []struct {
		name, method, path, body string
		want                     int
		mention                  string
	}{
		{"malformed JSON", http.MethodPost, "/v1/run", `{"scenario": `, http.StatusBadRequest, "spec"},
		{"unknown spec field", http.MethodPost, "/v1/run", `{"scenario": "rowbuffer", "grids": {}}`, http.StatusBadRequest, "grids"},
		{"unknown scenario", http.MethodPost, "/v1/run", `{"scenario": "covert-warp"}`, http.StatusNotFound, "covert-warp"},
		{"invalid config", http.MethodPost, "/v1/run", `{"scenario": "covert-pnm", "config": {"cores": 0}}`, http.StatusBadRequest, "cores"},
		{"config on figure replay", http.MethodPost, "/v1/run", `{"scenario": "rowbuffer", "config": {"cores": 2}}`, http.StatusBadRequest, "ignores sim.Config"},
		{"wrong method", http.MethodGet, "/v1/run", "", http.StatusMethodNotAllowed, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rec := doRequest(t, h, tc.method, tc.path, tc.body)
			if rec.Code != tc.want {
				t.Fatalf("status = %d, want %d (%s)", rec.Code, tc.want, rec.Body)
			}
			if tc.mention != "" && !strings.Contains(rec.Body.String(), tc.mention) {
				t.Fatalf("error body %q does not mention %q", rec.Body, tc.mention)
			}
		})
	}

	// Oversized specs are rejected without reading the whole body.
	huge := `{"scenario": "rowbuffer", "config": {` + strings.Repeat(" ", maxSpecBytes) + `}}`
	rec := doRequest(t, h, http.MethodPost, "/v1/run", huge)
	if rec.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized spec = %d, want 413", rec.Code)
	}
}

package pack

import (
	"bytes"
	"testing"
)

// The two decoders below are the only code in the store that parses
// bytes an attacker (or a failing disk) controls: needle frames read
// back from bundles and the persisted index file. Fuzzing pins the
// contract the rest of the package builds on: arbitrary input never
// panics, never over-reads, and anything the decoder accepts survives a
// re-encode round trip. Checked-in seeds live under testdata/fuzz; make
// fuzz-smoke runs both targets briefly in CI.

// FuzzDecodeNeedle drives the needle-frame parser with arbitrary bytes.
func FuzzDecodeNeedle(f *testing.F) {
	f.Add(encodeNeedle(rawKey(testFuzzKey), []byte(`{"metric":1}`)))
	f.Add(encodeNeedle(rawKey(testFuzzKey), nil))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, headerSize+8))
	f.Add(encodeNeedle(rawKey(testFuzzKey), []byte(`{"metric":1}`))[:headerSize-1])
	f.Fuzz(func(t *testing.T, data []byte) {
		h, payload, consumed, ok := parseNeedle(data)
		if !ok {
			return
		}
		if consumed != needleSize(h.n) || consumed > int64(len(data)) {
			t.Fatalf("consumed %d bytes of %d (n=%d)", consumed, len(data), h.n)
		}
		if len(payload) != h.n || !h.checkPayload(payload) {
			t.Fatalf("accepted payload fails its own check (n=%d, len=%d)", h.n, len(payload))
		}
		// Round trip: re-encoding what was decoded reproduces the frame.
		if !bytes.Equal(encodeNeedle(h.key, payload), data[:consumed]) {
			t.Fatal("re-encode does not reproduce the accepted frame")
		}
	})
}

// FuzzDecodeIndex drives the index-file parser with arbitrary bytes.
func FuzzDecodeIndex(f *testing.F) {
	f.Add(encodeIndex(nil, nil))
	f.Add(encodeIndex(
		[]indexBundle{{id: 1, scannedTo: 4096}, {id: 7, scannedTo: 0}},
		map[string]indexEntry{testFuzzKey: {bundle: 1, off: 128, n: 64}},
	))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0x41}, 100))
	f.Fuzz(func(t *testing.T, data []byte) {
		bundles, entries, ok := decodeIndex(data)
		if !ok {
			return
		}
		known := make(map[uint32]bool, len(bundles))
		for _, b := range bundles {
			if known[b.id] {
				t.Fatalf("accepted duplicate bundle id %d", b.id)
			}
			known[b.id] = true
		}
		for key, e := range entries {
			if !validKey(key) {
				t.Fatalf("accepted invalid key %q", key)
			}
			if !known[e.bundle] {
				t.Fatalf("entry %q names unknown bundle %d", key, e.bundle)
			}
			if e.n > maxPayload || e.off < 0 {
				t.Fatalf("accepted insane entry %+v", e)
			}
		}
		// Round trip: an accepted index re-encodes to something the decoder
		// accepts identically (byte equality is not guaranteed — map order —
		// but the decoded content must match).
		b2, e2, ok2 := decodeIndex(encodeIndex(bundles, entries))
		if !ok2 || len(b2) != len(bundles) || len(e2) != len(entries) {
			t.Fatalf("re-encode round trip lost data: %v %d/%d %d/%d",
				ok2, len(b2), len(bundles), len(e2), len(entries))
		}
		for key, e := range entries {
			if e2[key] != e {
				t.Fatalf("entry %q changed across round trip: %+v != %+v", key, e2[key], e)
			}
		}
	})
}

// testFuzzKey is a fixed valid key for seed corpus construction.
const testFuzzKey = "9f86d081884c7d659a2feaa0c55ad015a3bf4f1b2b0b822cd15d6c15b0f00a08"

package pack

import (
	"encoding/binary"
	"encoding/hex"
	"hash/crc32"
)

// A needle is one result record inside a bundle file: a fixed binary
// header — magic, the raw 32-byte content-address key, the payload
// length, and a CRC over the payload — followed by the payload bytes.
// The header is everything a sequential scan needs to rebuild the index
// from bare bundles, and the CRC is everything a read (or the auditor)
// needs to refuse a rotted payload before serving a single byte of it.
//
// Layout, little-endian:
//
//	offset  0  magic   uint32  "npk1"
//	offset  4  key     [32]byte raw SHA-256 of the run's canonical JSON
//	offset 36  length  uint32  payload bytes
//	offset 40  crc     uint32  CRC-32 (Castagnoli) of the payload
//	offset 44  payload
const (
	needleMagic = uint32('n') | uint32('p')<<8 | uint32('k')<<16 | uint32('1')<<24
	keySize     = 32
	headerSize  = 4 + keySize + 4 + 4
	// maxPayload rejects absurd length fields before a scan or read
	// trusts them: no marshaled report comes near 64 MiB, so anything
	// larger is damage, not data.
	maxPayload = 64 << 20
)

// castagnoli is the CRC-32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// needleSize returns the on-disk footprint of a needle holding n payload
// bytes.
func needleSize(n int) int64 { return int64(headerSize + n) }

// encodeNeedle frames one payload under its raw key.
func encodeNeedle(key [keySize]byte, payload []byte) []byte {
	buf := make([]byte, headerSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], needleMagic)
	copy(buf[4:4+keySize], key[:])
	binary.LittleEndian.PutUint32(buf[36:40], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[40:44], crc32.Checksum(payload, castagnoli))
	copy(buf[headerSize:], payload)
	return buf
}

// needleHeader is a decoded header; the payload is validated separately
// so a reader can size its buffer before touching payload bytes.
type needleHeader struct {
	key [keySize]byte
	n   int
	crc uint32
}

// decodeNeedleHeader validates the fixed header fields (magic and a sane
// length). It does not — cannot — vouch for the payload; checkPayload
// does that once the bytes are in hand.
func decodeNeedleHeader(buf []byte) (needleHeader, bool) {
	if len(buf) < headerSize {
		return needleHeader{}, false
	}
	if binary.LittleEndian.Uint32(buf[0:4]) != needleMagic {
		return needleHeader{}, false
	}
	var h needleHeader
	copy(h.key[:], buf[4:4+keySize])
	n := binary.LittleEndian.Uint32(buf[36:40])
	if n > maxPayload {
		return needleHeader{}, false
	}
	h.n = int(n)
	h.crc = binary.LittleEndian.Uint32(buf[40:44])
	return h, true
}

// checkPayload reports whether payload matches the header's CRC.
func (h needleHeader) checkPayload(payload []byte) bool {
	return len(payload) == h.n && crc32.Checksum(payload, castagnoli) == h.crc
}

// parseNeedle decodes one complete needle from the front of buf,
// returning the header, the payload (aliasing buf), and the total bytes
// consumed. ok is false when buf does not start with a fully intact
// needle — a torn tail, a damaged header, or a payload that fails its
// CRC all look the same to a scan: the end of trustworthy data.
func parseNeedle(buf []byte) (needleHeader, []byte, int64, bool) {
	h, ok := decodeNeedleHeader(buf)
	if !ok {
		return needleHeader{}, nil, 0, false
	}
	if len(buf) < headerSize+h.n {
		return needleHeader{}, nil, 0, false
	}
	payload := buf[headerSize : headerSize+h.n]
	if !h.checkPayload(payload) {
		return needleHeader{}, nil, 0, false
	}
	return h, payload, needleSize(h.n), true
}

// validKey reports whether key is a lowercase hex SHA-256 digest — the
// only names the store accepts, and a guarantee that a key can never
// traverse outside the data dir.
func validKey(key string) bool {
	if len(key) != keySize*2 {
		return false
	}
	for i := 0; i < len(key); i++ {
		c := key[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// rawKey decodes a validated hex key to its 32-byte form.
func rawKey(key string) (k [keySize]byte) {
	hex.Decode(k[:], []byte(key))
	return k
}

// hexKey is rawKey's inverse, used when a scan rebuilds index entries.
func hexKey(k [keySize]byte) string {
	return hex.EncodeToString(k[:])
}

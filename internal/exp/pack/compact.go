package pack

import (
	"os"
	"sort"

	"repro/internal/exp/fsio"
	"repro/internal/metrics"
)

// Compaction reclaims bundle garbage: needles orphaned by corrupt-entry
// drops, audit drops, or recovery duplicates. A sealed bundle whose
// garbage fraction crosses the configured threshold is rewritten — its
// live needles re-verified and copied to the active bundle, the index
// repointed, and only after the repointed index is durable on disk is
// the old bundle file unlinked. The crash windows are all benign:
//
//   - crash before the index swap: the old bundle and old index are both
//     intact; the copies appended to the active bundle are duplicates the
//     boot scan ignores (first key wins) and later compaction reclaims.
//   - crash after the swap, before the unlink: the old bundle survives
//     with zero live references; Open's zero-live sweep unlinks it.
//
// Compact runs from the background maintenance loop and is exported for
// tests and tools that want deterministic scheduling.

// Compact rewrites every sealed bundle past the garbage threshold.
// It returns the number of bundles reclaimed.
func (s *Store) Compact() (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, nil
	}

	var victims []*bundle
	for id, b := range s.bundles {
		if id == s.active || b.size == 0 {
			continue
		}
		if float64(b.size-b.live)/float64(b.size) >= s.opts.garbageRatio {
			victims = append(victims, b)
		}
	}
	if len(victims) == 0 {
		return 0, nil
	}
	sort.Slice(victims, func(i, j int) bool { return victims[i].id < victims[j].id })

	// Copy each victim's live needles into the active bundle. Keys are
	// found by walking the index (the only authority on liveness); a
	// needle that fails verification during the copy is dropped like any
	// other corrupt read.
	byBundle := make(map[uint32][]string)
	for key, e := range s.index {
		byBundle[e.bundle] = append(byBundle[e.bundle], key)
	}
	var reclaimed int64
	for _, v := range victims {
		for _, key := range byBundle[v.id] {
			e := s.index[key]
			buf := make([]byte, needleSize(e.n))
			if _, err := v.f.ReadAt(buf, e.off); err != nil {
				s.met.Add(packErrors, 1)
				s.dropEntryLocked(key, e, packCorrupt)
				continue
			}
			h, payload, _, ok := parseNeedle(buf)
			if !ok || h.key != rawKey(key) {
				s.dropEntryLocked(key, e, packCorrupt)
				continue
			}
			// Repoint the key at a fresh copy in the active bundle. The old
			// needle becomes garbage that dies with the victim file.
			s.moveEntryLocked(key, e)
			if err := s.appendLocked(key, payload); err != nil {
				// The copy failed; the entry was already dropped, so the key
				// degrades to a miss and heals by re-simulation. Counted, and
				// strictly better than pointing the index at a file about to
				// be unlinked.
				s.met.Add(packErrors, 1)
			}
		}
		reclaimed += v.size
	}

	// The swap: make the repointed index durable, then unlink. The
	// failpoint models a crash at the boundary between those two steps'
	// preconditions — after the copies, before the commit.
	if err := fsio.Failpoint("pack.compact.swap"); err != nil {
		s.met.Add(packErrors, 1)
		return 0, err
	}
	if err := s.persistIndexLocked(); err != nil {
		// Not durable — the victims must survive, since the on-disk index
		// still points into them. They are all-garbage now, so the next
		// Compact (or Open) retries the swap cheaply.
		return 0, err
	}
	for _, v := range victims {
		v.f.Close()
		if err := os.Remove(s.bundlePath(v.id)); err != nil {
			s.met.Add(packErrors, 1)
		}
		delete(s.bundles, v.id)
	}
	fsio.SyncDir(s.dir)
	s.met.Add(packCompactions, int64(len(victims)))
	s.met.Add(packCompactedBytes, reclaimed)
	return len(victims), nil
}

// dropEntryLocked removes one index entry, fixes live accounting, and
// counts it under counter. Unlike dropCorrupt it does not persist —
// callers batch durability.
func (s *Store) dropEntryLocked(key string, e indexEntry, counter metrics.CounterID) {
	if !s.moveEntryLocked(key, e) {
		return
	}
	s.met.Add(counter, 1)
}

// moveEntryLocked removes one index entry without counting it as
// corruption — the compactor's repointing step, where the needle is
// healthy and about to be re-appended. Reports whether e was still the
// live entry for key.
func (s *Store) moveEntryLocked(key string, e indexEntry) bool {
	cur, ok := s.index[key]
	if !ok || cur != e {
		return false
	}
	delete(s.index, key)
	if b, ok := s.bundles[e.bundle]; ok {
		b.live -= needleSize(e.n)
	}
	s.dirty++
	return true
}

package pack

// The auditor is the store's answer to silent rot: content-addressed
// results are written once and may sit unread for weeks, so the first
// reader of a flipped bit would otherwise be a cache Get on somebody's
// critical path. Instead, a background pass re-verifies needle CRCs a
// batch at a time, dropping any entry whose bytes no longer match so
// the next Get misses cleanly and the engine re-simulates a fresh copy.
// Every drop is persisted immediately — a crash cannot resurrect an
// entry the auditor already refused — and the orphaned needle bytes
// become bundle garbage for the compactor.
//
// A pass walks a snapshot of the index keys; keys added after the
// snapshot wait for the next pass, keys dropped or repointed in the
// meantime are re-read through the live index (never a stale entry).
// The work is incremental by design: each maintenance tick verifies at
// most the configured batch, so audit I/O stays a bounded tax no matter
// how large the store grows.

// Audit re-verifies up to limit needles, continuing the current pass or
// starting a new one if the previous pass finished. It returns the
// number of needles checked and the number dropped as corrupt.
func (s *Store) Audit(limit int) (checked, dropped int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return 0, 0
	}
	if len(s.auditQueue) == 0 {
		if len(s.index) == 0 {
			return 0, 0
		}
		s.auditQueue = make([]string, 0, len(s.index))
		for key := range s.index {
			s.auditQueue = append(s.auditQueue, key)
		}
	}
	for checked < limit && len(s.auditQueue) > 0 {
		key := s.auditQueue[len(s.auditQueue)-1]
		s.auditQueue = s.auditQueue[:len(s.auditQueue)-1]
		e, ok := s.index[key]
		if !ok {
			continue // dropped since the snapshot; nothing to verify
		}
		checked++
		b := s.bundles[e.bundle]
		buf := make([]byte, needleSize(e.n))
		if _, err := b.f.ReadAt(buf, e.off); err != nil {
			s.met.Add(packErrors, 1)
			s.dropEntryLocked(key, e, packAuditCorrupt)
			dropped++
			continue
		}
		h, _, _, ok := parseNeedle(buf)
		if !ok || h.key != rawKey(key) {
			s.dropEntryLocked(key, e, packAuditCorrupt)
			dropped++
		}
	}
	s.met.Add(packAudited, int64(checked))
	if dropped > 0 {
		s.persistIndexLocked() // make the drops durable now, not at the next batch
	}
	if len(s.auditQueue) == 0 {
		s.auditQueue = nil
		s.met.Add(packAuditPasses, 1)
	}
	return checked, dropped
}

package pack

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/exp/fsio"
)

// testKey derives a distinct valid store key from n.
func testKey(n int) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("pack-test-key-%d", n)))
	return hex.EncodeToString(sum[:])
}

// testBlob derives the payload stored under testKey(n).
func testBlob(n int) json.RawMessage {
	return json.RawMessage(fmt.Sprintf(`{"n":%d,"metric":0.5}`, n))
}

// openTest opens a store with small, deterministic tuning: tiny bundles
// so rotation happens, index persists on every mutation, and no
// background goroutine so tests control compaction and audit timing.
func openTest(t *testing.T, root string, opts ...Option) *Store {
	t.Helper()
	base := []Option{
		WithBundleSize(1 << 12),
		WithIndexEvery(1),
		WithAuditInterval(0),
	}
	st, err := Open(root, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// fill stores n entries and verifies them back.
func fill(t *testing.T, st *Store, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		st.Put(context.Background(), testKey(i), testBlob(i))
	}
	for i := 0; i < n; i++ {
		got, ok := st.Get(context.Background(), testKey(i))
		if !ok || !bytes.Equal(got, testBlob(i)) {
			t.Fatalf("Get(%d) = %q, %v after fill", i, got, ok)
		}
	}
}

func TestPackRoundTrip(t *testing.T) {
	st := openTest(t, t.TempDir())
	key := testKey(1)
	if _, ok := st.Get(context.Background(), key); ok {
		t.Fatal("Get on empty store reported a hit")
	}
	st.Put(context.Background(), key, testBlob(1))
	got, ok := st.Get(context.Background(), key)
	if !ok || !bytes.Equal(got, testBlob(1)) {
		t.Fatalf("Get = %q, %v", got, ok)
	}
	// First write wins: a second Put must not change the stored bytes.
	st.Put(context.Background(), key, json.RawMessage(`{"other":true}`))
	if got, _ := st.Get(context.Background(), key); !bytes.Equal(got, testBlob(1)) {
		t.Fatalf("second Put changed entry to %q", got)
	}
	if _, ok := st.Get(context.Background(), "not-a-valid-key"); ok {
		t.Fatal("invalid key reported a hit")
	}
	stats := st.PackStats()
	if stats.Stores != 1 || stats.Hits != 2 || stats.IndexEntries != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestPackRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	const n = 200 // ~9KB of needles against a 4KB bundle size: several rotations
	st := openTest(t, dir)
	fill(t, st, n)
	if got := st.PackStats().Bundles; got < 3 {
		t.Fatalf("expected multiple bundles after %d entries, got %d", n, got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2 := openTest(t, dir)
	for i := 0; i < n; i++ {
		got, ok := st2.Get(context.Background(), testKey(i))
		if !ok || !bytes.Equal(got, testBlob(i)) {
			t.Fatalf("after reopen, Get(%d) = %q, %v", i, got, ok)
		}
	}
	// A clean reopen loads the index; nothing should need scan recovery.
	if rec := st2.PackStats().RecoveredNeedles; rec != 0 {
		t.Fatalf("clean reopen recovered %d needles, want 0", rec)
	}
}

func TestPackScanRebuildsDeletedIndex(t *testing.T) {
	dir := t.TempDir()
	const n = 50
	st := openTest(t, dir)
	fill(t, st, n)
	st.Close()
	if err := os.Remove(filepath.Join(dir, "pack", indexName)); err != nil {
		t.Fatal(err)
	}

	st2 := openTest(t, dir)
	for i := 0; i < n; i++ {
		got, ok := st2.Get(context.Background(), testKey(i))
		if !ok || !bytes.Equal(got, testBlob(i)) {
			t.Fatalf("after index loss, Get(%d) = %q, %v", i, got, ok)
		}
	}
	if rec := st2.PackStats().RecoveredNeedles; rec != n {
		t.Fatalf("recovered %d needles, want %d", rec, n)
	}
}

func TestPackCorruptIndexFallsBackToScan(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir)
	fill(t, st, 10)
	st.Close()
	idx := filepath.Join(dir, "pack", indexName)
	data, err := os.ReadFile(idx)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(idx, data, 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openTest(t, dir)
	for i := 0; i < 10; i++ {
		if _, ok := st2.Get(context.Background(), testKey(i)); !ok {
			t.Fatalf("entry %d lost after index corruption", i)
		}
	}
	if rec := st2.PackStats().RecoveredNeedles; rec != 10 {
		t.Fatalf("recovered %d needles, want 10", rec)
	}
}

// corruptNeedle flips one payload byte of key's needle on disk.
func corruptNeedle(t *testing.T, st *Store, key string) {
	t.Helper()
	st.mu.Lock()
	defer st.mu.Unlock()
	e, ok := st.index[key]
	if !ok {
		t.Fatalf("key %s not indexed", key)
	}
	buf := []byte{0xff}
	if _, err := st.bundles[e.bundle].f.WriteAt(buf, e.off+headerSize); err != nil {
		t.Fatal(err)
	}
}

func TestPackCorruptNeedleDroppedAndHealed(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir)
	st.Put(context.Background(), testKey(0), testBlob(0))
	st.Put(context.Background(), testKey(1), testBlob(1))
	corruptNeedle(t, st, testKey(0))

	if _, ok := st.Get(context.Background(), testKey(0)); ok {
		t.Fatal("corrupt needle served")
	}
	if got := st.PackStats().CorruptDropped; got != 1 {
		t.Fatalf("corrupt_dropped = %d, want 1", got)
	}
	// The sibling entry is untouched.
	if got, ok := st.Get(context.Background(), testKey(1)); !ok || !bytes.Equal(got, testBlob(1)) {
		t.Fatalf("sibling entry = %q, %v", got, ok)
	}
	// The next Put heals the key.
	st.Put(context.Background(), testKey(0), testBlob(0))
	if got, ok := st.Get(context.Background(), testKey(0)); !ok || !bytes.Equal(got, testBlob(0)) {
		t.Fatalf("healed entry = %q, %v", got, ok)
	}
}

func TestPackDroppedEntryStaysDroppedAcrossReopen(t *testing.T) {
	// The drop-durability guarantee: once a reader refuses a corrupt
	// needle, no restart may resurrect it — the drop is persisted before
	// Get returns, and the boot scan must not re-index the bad needle
	// (its CRC fails, ending the tail scan).
	dir := t.TempDir()
	st := openTest(t, dir)
	st.Put(context.Background(), testKey(0), testBlob(0))
	corruptNeedle(t, st, testKey(0))
	if _, ok := st.Get(context.Background(), testKey(0)); ok {
		t.Fatal("corrupt needle served")
	}
	st.Close()

	st2 := openTest(t, dir)
	if _, ok := st2.Get(context.Background(), testKey(0)); ok {
		t.Fatal("dropped entry resurrected by reopen")
	}
}

func TestPackCompaction(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir)
	const n = 200
	fill(t, st, n)
	before := st.PackStats()
	if before.Bundles < 3 {
		t.Fatalf("need several bundles to compact, got %d", before.Bundles)
	}

	// Orphan most entries so sealed bundles cross the garbage threshold.
	st.mu.Lock()
	for i := 0; i < n; i++ {
		if i%4 != 0 {
			key := testKey(i)
			st.dropEntryLocked(key, st.index[key], packCorrupt)
		}
	}
	st.mu.Unlock()

	moved, err := st.Compact()
	if err != nil || moved == 0 {
		t.Fatalf("Compact = %d, %v", moved, err)
	}
	after := st.PackStats()
	if after.Compactions == 0 || after.CompactedBytes == 0 {
		t.Fatalf("compaction not accounted: %+v", after)
	}
	if after.GarbageBytes >= before.GarbageBytes+before.LiveBytes {
		t.Fatalf("compaction reclaimed nothing: before %+v after %+v", before, after)
	}
	for i := 0; i < n; i += 4 {
		got, ok := st.Get(context.Background(), testKey(i))
		if !ok || !bytes.Equal(got, testBlob(i)) {
			t.Fatalf("survivor %d lost by compaction: %q, %v", i, got, ok)
		}
	}
	st.Close()

	// Survivors stay readable across a reopen (the swapped index is the
	// one on disk).
	st2 := openTest(t, dir)
	for i := 0; i < n; i += 4 {
		got, ok := st2.Get(context.Background(), testKey(i))
		if !ok || !bytes.Equal(got, testBlob(i)) {
			t.Fatalf("survivor %d lost after reopen: %q, %v", i, got, ok)
		}
	}
}

func TestPackAuditDropsRot(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir)
	const n = 20
	fill(t, st, n)
	corruptNeedle(t, st, testKey(3))
	corruptNeedle(t, st, testKey(7))

	checked, dropped := st.Audit(n)
	if checked != n || dropped != 2 {
		t.Fatalf("Audit = %d checked, %d dropped; want %d, 2", checked, dropped, n)
	}
	stats := st.PackStats()
	if stats.AuditCorruptDropped != 2 || stats.AuditedNeedles != int64(n) || stats.AuditPasses != 1 {
		t.Fatalf("audit stats = %+v", stats)
	}
	for i := 0; i < n; i++ {
		_, ok := st.Get(context.Background(), testKey(i))
		if want := i != 3 && i != 7; ok != want {
			t.Fatalf("after audit, Get(%d) ok = %v, want %v", i, ok, want)
		}
	}
	// Incremental batches: a second full pass over the healthy remainder.
	st.Put(context.Background(), testKey(3), testBlob(3))
	st.Put(context.Background(), testKey(7), testBlob(7))
	for done := 0; done < n; {
		c, d := st.Audit(7)
		if d != 0 {
			t.Fatalf("healthy pass dropped %d", d)
		}
		done += c
	}
	if got := st.PackStats().AuditPasses; got != 2 {
		t.Fatalf("audit passes = %d, want 2", got)
	}
}

func TestPackTornTailTruncatedOnBoot(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir)
	fill(t, st, 5)
	st.Close()

	// Simulate a torn append: a valid needle prefix cut mid-payload.
	bundles, _ := filepath.Glob(filepath.Join(dir, "pack", "bundle-*.pack"))
	if len(bundles) != 1 {
		t.Fatalf("bundles = %v", bundles)
	}
	full := encodeNeedle(rawKey(testKey(99)), testBlob(99))
	f, err := os.OpenFile(bundles[0], os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := os.Remove(filepath.Join(dir, "pack", indexName)); err != nil {
		t.Fatal(err)
	}

	st2 := openTest(t, dir)
	for i := 0; i < 5; i++ {
		if _, ok := st2.Get(context.Background(), testKey(i)); !ok {
			t.Fatalf("entry %d lost to torn-tail truncation", i)
		}
	}
	if _, ok := st2.Get(context.Background(), testKey(99)); ok {
		t.Fatal("torn needle served")
	}
	// The tail was physically removed, so the next boot scans cleanly too.
	st2.Put(context.Background(), testKey(99), testBlob(99))
	st2.Close()
	st3 := openTest(t, dir)
	if got, ok := st3.Get(context.Background(), testKey(99)); !ok || !bytes.Equal(got, testBlob(99)) {
		t.Fatalf("append after truncation = %q, %v", got, ok)
	}
}

func TestPackMigratesPerFileLayout(t *testing.T) {
	root := t.TempDir()
	// Hand-build the per-file layout the "files" backend writes: the same
	// record framing, fanned out over two-hex-digit dirs.
	const n = 30
	for i := 0; i < n; i++ {
		key := testKey(i)
		dir := filepath.Join(root, key[:2])
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		rec := fsio.EncodeRecord(legacyMagic, testBlob(i))
		if err := os.WriteFile(filepath.Join(dir, key), rec, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	// One corrupt legacy entry: migration must drop it, like a per-file
	// Get would.
	badKey := testKey(n)
	if err := os.MkdirAll(filepath.Join(root, badKey[:2]), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(root, badKey[:2], badKey), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	// The journal dir must survive migration untouched.
	if err := os.MkdirAll(filepath.Join(root, "jobs"), 0o755); err != nil {
		t.Fatal(err)
	}

	st := openTest(t, root)
	for i := 0; i < n; i++ {
		got, ok := st.Get(context.Background(), testKey(i))
		if !ok || !bytes.Equal(got, testBlob(i)) {
			t.Fatalf("migrated entry %d = %q, %v", i, got, ok)
		}
	}
	if _, ok := st.Get(context.Background(), badKey); ok {
		t.Fatal("corrupt legacy entry migrated")
	}
	stats := st.PackStats()
	if stats.Migrated != n {
		t.Fatalf("migrated = %d, want %d", stats.Migrated, n)
	}
	// The fan-out dirs are gone; jobs and pack remain.
	des, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	for _, de := range des {
		if name := de.Name(); name != "jobs" && name != "pack" {
			t.Fatalf("migration left %q behind", name)
		}
	}
	// Idempotent: a reopen migrates nothing further.
	st.Close()
	st2 := openTest(t, root)
	if got := st2.PackStats().Migrated; got != 0 {
		t.Fatalf("second open migrated %d entries", got)
	}
}

func TestPackFailpointAppend(t *testing.T) {
	st := openTest(t, t.TempDir())
	injected := errors.New("injected")
	fsio.SetFailpoint("pack.append", func() error { return injected })
	st.Put(context.Background(), testKey(0), testBlob(0))
	fsio.SetFailpoint("pack.append", nil)
	if _, ok := st.Get(context.Background(), testKey(0)); ok {
		t.Fatal("failed append still indexed")
	}
	if got := st.PackStats().Errors; got != 1 {
		t.Fatalf("errors = %d, want 1", got)
	}
	// The store keeps working after the fault clears.
	st.Put(context.Background(), testKey(0), testBlob(0))
	if got, ok := st.Get(context.Background(), testKey(0)); !ok || !bytes.Equal(got, testBlob(0)) {
		t.Fatalf("post-fault Put = %q, %v", got, ok)
	}
}

func TestPackFailpointIndexRecoversByScan(t *testing.T) {
	// An index write that dies at the failpoint leaves appended needles
	// covered only by the bundle; a reopen must rebuild them by scan.
	dir := t.TempDir()
	st := openTest(t, dir)
	st.Put(context.Background(), testKey(0), testBlob(0)) // indexed durably
	injected := errors.New("injected")
	fsio.SetFailpoint("pack.index", func() error { return injected })
	st.Put(context.Background(), testKey(1), testBlob(1)) // append lands, index write dies
	fsio.SetFailpoint("pack.index", nil)
	// Abandon without Close — simulate the crash (Close would persist).
	st.mu.Lock()
	for _, b := range st.bundles {
		b.f.Sync()
	}
	st.mu.Unlock()

	st2 := openTest(t, dir)
	for i := 0; i < 2; i++ {
		got, ok := st2.Get(context.Background(), testKey(i))
		if !ok || !bytes.Equal(got, testBlob(i)) {
			t.Fatalf("after index-write crash, Get(%d) = %q, %v", i, got, ok)
		}
	}
	if rec := st2.PackStats().RecoveredNeedles; rec == 0 {
		t.Fatal("scan recovered nothing; the unindexed append was lost")
	}
}

func TestPackFailpointCompactSwap(t *testing.T) {
	dir := t.TempDir()
	st := openTest(t, dir)
	const n = 120
	fill(t, st, n)
	st.mu.Lock()
	for i := 0; i < n; i++ {
		if i%2 != 0 {
			key := testKey(i)
			st.dropEntryLocked(key, st.index[key], packCorrupt)
		}
	}
	st.mu.Unlock()

	injected := errors.New("injected")
	fsio.SetFailpoint("pack.compact.swap", func() error { return injected })
	if _, err := st.Compact(); !errors.Is(err, injected) {
		t.Fatalf("Compact with armed swap failpoint = %v", err)
	}
	fsio.SetFailpoint("pack.compact.swap", nil)

	// Nothing lost: every survivor readable, both live and after reopen.
	for i := 0; i < n; i += 2 {
		if _, ok := st.Get(context.Background(), testKey(i)); !ok {
			t.Fatalf("survivor %d lost to aborted compaction", i)
		}
	}
	// Retrying succeeds and actually reclaims.
	if moved, err := st.Compact(); err != nil || moved == 0 {
		t.Fatalf("Compact retry = %d, %v", moved, err)
	}
	st.Close()
	st2 := openTest(t, dir)
	for i := 0; i < n; i += 2 {
		got, ok := st2.Get(context.Background(), testKey(i))
		if !ok || !bytes.Equal(got, testBlob(i)) {
			t.Fatalf("survivor %d wrong after reopen: %q, %v", i, got, ok)
		}
	}
}

func TestPackConcurrentAccess(t *testing.T) {
	st := openTest(t, t.TempDir(), WithIndexEvery(16))
	const n = 300
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			st.Put(context.Background(), testKey(i), testBlob(i))
		}
	}()
	for i := 0; i < n; i++ {
		st.Get(context.Background(), testKey(i%50))
		if i%37 == 0 {
			st.Audit(8)
		}
		if i%53 == 0 {
			st.Compact()
		}
	}
	<-done
	for i := 0; i < n; i++ {
		got, ok := st.Get(context.Background(), testKey(i))
		if !ok || !bytes.Equal(got, testBlob(i)) {
			t.Fatalf("entry %d lost under concurrency: %q, %v", i, got, ok)
		}
	}
}

package pack

import (
	"os"
	"path/filepath"

	"repro/internal/exp/fsio"
)

// legacyMagic frames the per-file store's entries (internal/exp
// storeMagic); migration decodes them with the same validation a
// per-file Get would apply.
const legacyMagic = "impactstore1"

// migrate performs the one-way per-file → pack upgrade: any fan-out
// directory of the "files" backend found directly under the data-dir
// root (a two-hex-digit name, never "jobs" or "pack") has its entries
// decoded, appended into bundles, and removed. Corrupt legacy entries
// are dropped — exactly what the per-file store itself would have done
// on read. The walk is idempotent and crash-safe without any extra
// bookkeeping: a key that already reached a bundle is skipped (and its
// file removed), a key that didn't is still on disk for the next boot,
// and the index is persisted by Open after migration returns.
func (s *Store) migrate() {
	dirs, err := os.ReadDir(s.root)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	migratedAny := false
	for _, de := range dirs {
		name := de.Name()
		if !de.IsDir() || !isFanout(name) {
			continue
		}
		dirPath := filepath.Join(s.root, name)
		files, err := os.ReadDir(dirPath)
		if err != nil {
			s.met.Add(packErrors, 1)
			continue
		}
		removedAll := true
		for _, fe := range files {
			key := fe.Name()
			if fe.IsDir() || !validKey(key) || key[:2] != name {
				removedAll = false
				continue // not a store entry; leave it for a human
			}
			path := filepath.Join(dirPath, key)
			if !s.migrateEntryLocked(key, path) {
				removedAll = false
				continue
			}
			if err := os.Remove(path); err != nil {
				s.met.Add(packErrors, 1)
				removedAll = false
			}
		}
		if removedAll {
			fsio.SyncDir(dirPath)
			if err := os.Remove(dirPath); err != nil {
				s.met.Add(packErrors, 1)
			} else {
				migratedAny = true
			}
		}
	}
	if migratedAny {
		fsio.SyncDir(s.root)
	}
}

// migrateEntryLocked moves one legacy entry into the pack, reporting
// whether the file is safe to remove (migrated, already present, or
// corrupt beyond recovery — anything but a transient append failure).
func (s *Store) migrateEntryLocked(key, path string) bool {
	if _, ok := s.index[key]; ok {
		return true // a previous, interrupted migration already carried it over
	}
	data, err := os.ReadFile(path)
	if err != nil {
		s.met.Add(packErrors, 1)
		return false
	}
	payload, ok := fsio.DecodeRecord(legacyMagic, data)
	if !ok {
		s.met.Add(packCorrupt, 1)
		return true // damaged on the old side; dropping it is the heal path
	}
	if err := s.appendLocked(key, payload); err != nil {
		s.met.Add(packErrors, 1)
		return false // keep the legacy file; the next boot retries
	}
	s.met.Add(packMigrated, 1)
	return true
}

// isFanout reports whether name is a per-file store fan-out directory:
// exactly two lowercase hex digits.
func isFanout(name string) bool {
	if len(name) != 2 {
		return false
	}
	for i := 0; i < 2; i++ {
		c := name[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

package pack

import (
	"context"
	"fmt"
	"testing"
)

// benchStore opens a store tuned for benchmarking: background audit off
// (the benchmarks drive maintenance explicitly) and index persistence
// deferred so preloads are not dominated by INDEX rewrites.
func benchStore(b *testing.B, opts ...Option) *Store {
	b.Helper()
	st, err := Open(b.TempDir(), append([]Option{
		WithAuditInterval(0), WithIndexEvery(1 << 30),
	}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { st.Close() })
	return st
}

// BenchmarkAuditThroughput measures the background auditor's CRC
// verification rate over a healthy store — the cost ceiling for the
// incremental rot scan that runs every audit interval.
func BenchmarkAuditThroughput(b *testing.B) {
	const n = 10000
	st := benchStore(b)
	var bytes int64
	for i := 0; i < n; i++ {
		blob := testBlob(i)
		bytes += int64(len(blob))
		st.Put(context.Background(), testKey(i), blob)
	}
	b.SetBytes(bytes / n)
	b.ResetTimer()
	checked := 0
	for i := 0; i < b.N; i++ {
		c, dropped := st.Audit(1)
		if dropped != 0 {
			b.Fatalf("healthy store dropped %d needles", dropped)
		}
		checked += c
	}
	if checked != b.N {
		b.Fatalf("audited %d needles over %d iterations", checked, b.N)
	}
}

// BenchmarkCompact measures one compaction pass: every sealed bundle is
// 75% garbage, so the pass re-copies one live needle in four and
// unlinks the victims. Reported bytes are the garbage reclaimed.
func BenchmarkCompact(b *testing.B) {
	const n = 4000
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st := benchStore(b, WithBundleSize(1<<18))
		for j := 0; j < n; j++ {
			st.Put(context.Background(), testKey(j), testBlob(j))
		}
		st.mu.Lock()
		for j := 0; j < n; j++ {
			if j%4 != 0 {
				key := testKey(j)
				st.dropEntryLocked(key, st.index[key], packCorrupt)
			}
		}
		st.mu.Unlock()
		b.SetBytes(st.PackStats().GarbageBytes)
		b.StartTimer()
		moved, err := st.Compact()
		if err != nil {
			b.Fatal(err)
		}
		if moved == 0 {
			b.Fatal("compaction moved nothing")
		}
	}
}

// BenchmarkPackGet is the in-package view of the root
// BenchmarkResultStoreGet sweep: one Get against a preloaded store, at
// increasing object counts. The per-op time must stay flat — Get is one
// map probe plus one ReadAt however large the store grows.
func BenchmarkPackGet(b *testing.B) {
	for _, n := range []int{1000, 100000} {
		b.Run(fmt.Sprintf("objects=%d", n), func(b *testing.B) {
			st := benchStore(b)
			for i := 0; i < n; i++ {
				st.Put(context.Background(), testKey(i), testBlob(i))
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, ok := st.Get(context.Background(), testKey(i%n)); !ok {
					b.Fatalf("preloaded key %d missing", i%n)
				}
			}
		})
	}
}

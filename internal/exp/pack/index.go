package pack

import (
	"encoding/binary"
	"os"

	"repro/internal/exp/fsio"
)

// The index file ("INDEX" in the pack dir) is the persisted form of the
// in-memory needle map: for every live key, which bundle holds its
// needle and where. It is a pure accelerator — everything in it can be
// rebuilt by scanning the bundles — but it is what makes Open O(new
// data) instead of O(all data): each bundle's scanned-through watermark
// says how far the persisted entries already cover, so a boot only
// scans the bytes appended since the last index write.
//
// The file is framed with the shared fsio record discipline (magic,
// length, SHA-256) and replaced atomically, so a torn index is
// impossible to observe: a boot either reads a complete index or falls
// back to a full bundle scan. Payload layout, little-endian:
//
//	u32 bundle count
//	  per bundle: u32 id, u64 scannedTo (bytes covered by this index)
//	u32 entry count
//	  per entry: [32]byte raw key, u32 bundle id, u64 offset, u32 length
const indexMagic = "impactpackidx1"

// indexName is the index's file name inside the pack dir.
const indexName = "INDEX"

// indexBundle is one bundle's row in the persisted bundle table.
type indexBundle struct {
	id        uint32
	scannedTo int64
}

// indexEntry locates one needle. n is the payload length (the on-disk
// needle occupies needleSize(n) bytes at off).
type indexEntry struct {
	bundle uint32
	off    int64
	n      int
}

// encodeIndex serializes the bundle table and entry map.
func encodeIndex(bundles []indexBundle, entries map[string]indexEntry) []byte {
	size := 4 + len(bundles)*(4+8) + 4 + len(entries)*(keySize+4+8+4)
	buf := make([]byte, 0, size)
	var u32 [4]byte
	var u64 [8]byte
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(u32[:], v)
		buf = append(buf, u32[:]...)
	}
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	put32(uint32(len(bundles)))
	for _, b := range bundles {
		put32(b.id)
		put64(uint64(b.scannedTo))
	}
	put32(uint32(len(entries)))
	for key, e := range entries {
		k := rawKey(key)
		buf = append(buf, k[:]...)
		put32(e.bundle)
		put64(uint64(e.off))
		put32(uint32(e.n))
	}
	return buf
}

// decodeIndex parses an index payload. ok is false on any structural
// damage: short buffers, counts that disagree with the length, entries
// naming bundles absent from the table, or insane field values. A false
// return means "rebuild by scanning" — never a partial result.
func decodeIndex(buf []byte) ([]indexBundle, map[string]indexEntry, bool) {
	off := 0
	get32 := func() (uint32, bool) {
		if off+4 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(buf[off : off+4])
		off += 4
		return v, true
	}
	get64 := func() (uint64, bool) {
		if off+8 > len(buf) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(buf[off : off+8])
		off += 8
		return v, true
	}

	nb, ok := get32()
	if !ok || nb > 1<<20 {
		return nil, nil, false
	}
	bundles := make([]indexBundle, 0, nb)
	known := make(map[uint32]bool, nb)
	for i := uint32(0); i < nb; i++ {
		id, ok1 := get32()
		to, ok2 := get64()
		if !ok1 || !ok2 || known[id] || to > 1<<62 {
			return nil, nil, false
		}
		known[id] = true
		bundles = append(bundles, indexBundle{id: id, scannedTo: int64(to)})
	}

	ne, ok := get32()
	if !ok {
		return nil, nil, false
	}
	// Each entry is a fixed 48 bytes; reject counts the buffer cannot hold
	// before allocating for them.
	const entrySize = keySize + 4 + 8 + 4
	if int64(ne)*entrySize != int64(len(buf)-off) {
		return nil, nil, false
	}
	entries := make(map[string]indexEntry, ne)
	for i := uint32(0); i < ne; i++ {
		var k [keySize]byte
		copy(k[:], buf[off:off+keySize])
		off += keySize
		bid, _ := get32()
		eoff, _ := get64()
		n, _ := get32()
		if !known[bid] || n > maxPayload || eoff > 1<<62 {
			return nil, nil, false
		}
		key := hexKey(k)
		if _, dup := entries[key]; dup {
			return nil, nil, false
		}
		entries[key] = indexEntry{bundle: bid, off: int64(eoff), n: int(n)}
	}
	return bundles, entries, true
}

// loadIndex reads and validates the persisted index, reporting ok=false
// (a full-scan boot) when the file is missing, torn, or corrupt. A
// corrupt index file is deleted so the rebuilt one replaces it cleanly.
func loadIndex(path string) ([]indexBundle, map[string]indexEntry, bool) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, false
	}
	payload, ok := fsio.DecodeRecord(indexMagic, data)
	if !ok {
		os.Remove(path)
		return nil, nil, false
	}
	bundles, entries, ok := decodeIndex(payload)
	if !ok {
		os.Remove(path)
		return nil, nil, false
	}
	return bundles, entries, true
}

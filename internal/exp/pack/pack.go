// Package pack is the bundle-file result store: the backend that keeps
// lookup latency flat while the object count grows past what a
// file-per-result layout can carry.
//
// The per-file store (internal/exp's Store) spends one inode, one
// directory entry, and one directory fsync per result; past ~10^5
// objects the filesystem's metadata paths dominate every operation.
// The pack engine instead appends results into a few large append-only
// bundle files, each record framed as a checksummed needle (magic, key,
// length, CRC — see needle.go), and keeps a compact key → (bundle,
// offset, length) index in memory, persisted to a single atomically
// rewritten index file (see index.go). A Get is one index probe and one
// pread regardless of whether the store holds a thousand results or a
// million; a Put is one sequential append, with the bundle fsync and
// index rewrite amortized over many writes instead of paid per object.
//
// Durability follows the shared fsio discipline, weakened only where
// the content-addressed contract allows: the index file is always
// complete-or-absent (atomic replace + dir fsync), while recent appends
// may be lost to a power cut between index writes — a loss the engine
// repairs by re-simulating, never a wrong answer. On boot, Open replays
// each bundle's un-indexed tail to rebuild what the last index write
// missed, truncates torn tails, migrates any per-file layout it finds
// beside the pack dir, and unlinks bundles no live needle references.
//
// Two background maintainers keep an aging store healthy: a compactor
// rewrites bundles whose garbage fraction (dropped needles, duplicate
// appends) crosses a threshold, swapping the index atomically and
// unlinking the old bundle only after the new index is durable; and an
// auditor incrementally re-verifies needle CRCs, dropping rotted
// entries from the index so the next lookup heals them by
// re-simulation. Both are observable through PackStats, exported on
// /v1/metrics.
package pack

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"repro/internal/exp/fsio"
	"repro/internal/metrics"
	"repro/pkg/api"
)

// Fixed counter IDs, in the slot order passed to metrics.NewSet in Open.
const (
	packHits metrics.CounterID = iota
	packMisses
	packStores
	packCorrupt
	packErrors
	packMigrated
	packRecovered
	packIndexWrites
	packCompactions
	packCompactedBytes
	packAuditPasses
	packAudited
	packAuditCorrupt
)

// options collects the tunables; production defaults suit a server, the
// tests shrink everything to force rotation/compaction/audit activity.
type options struct {
	bundleSize    int64         // rotate the active bundle past this size
	indexEvery    int           // persist the index every N mutations
	garbageRatio  float64       // compact a sealed bundle past this garbage fraction
	auditInterval time.Duration // background maintenance cadence (0 = disabled)
	auditBatch    int           // needles re-verified per maintenance tick
}

// Option configures a Store at Open.
type Option func(*options)

// WithBundleSize sets the rotation threshold for the active bundle.
func WithBundleSize(n int64) Option { return func(o *options) { o.bundleSize = n } }

// WithIndexEvery sets how many index mutations may accumulate before the
// index file is rewritten (lower = less scan work on boot, more fsyncs).
func WithIndexEvery(n int) Option { return func(o *options) { o.indexEvery = n } }

// WithGarbageRatio sets the garbage fraction past which a sealed bundle
// is compacted.
func WithGarbageRatio(f float64) Option { return func(o *options) { o.garbageRatio = f } }

// WithAuditInterval sets the background maintenance cadence; 0 disables
// the background goroutine (Audit and Compact remain callable).
func WithAuditInterval(d time.Duration) Option { return func(o *options) { o.auditInterval = d } }

// WithAuditBatch sets how many needles each audit tick re-verifies.
func WithAuditBatch(n int) Option { return func(o *options) { o.auditBatch = n } }

// bundle is one on-disk bundle file plus its accounting.
type bundle struct {
	id        uint32
	f         *os.File
	size      int64 // bytes written (append offset)
	live      int64 // bytes referenced by live index entries
	indexedTo int64 // bytes covered by the last persisted index
}

// Store is a pack-engine result store rooted at <dir>/pack. It
// implements the same Get/Put contract as the per-file store (and so
// exp.ResultStore): content-addressed, first write wins, corrupt
// entries degrade to misses and heal on the next Put. Safe for
// concurrent use.
type Store struct {
	root string // the -data-dir; scanned once for per-file migration
	dir  string // <root>/pack
	opts options
	met  *metrics.Set

	mu         sync.RWMutex
	index      map[string]indexEntry
	bundles    map[uint32]*bundle
	active     uint32
	nextID     uint32
	dirty      int      // index mutations since the last persisted index
	auditQueue []string // keys awaiting re-verification this audit pass
	closed     bool

	bg chan struct{}
	wg sync.WaitGroup
}

// Open opens (creating if needed) a pack store under root/pack. Any
// per-file store layout found directly under root (the two-hex-digit
// fan-out the "files" backend writes) is migrated into bundles and
// removed — a one-way upgrade, after which the directory serves the
// same keys with flat lookup cost. See the package comment for the boot
// sequence.
func Open(root string, opts ...Option) (*Store, error) {
	o := options{
		bundleSize:    256 << 20,
		indexEvery:    1024,
		garbageRatio:  0.5,
		auditInterval: 30 * time.Second,
		auditBatch:    512,
	}
	for _, opt := range opts {
		opt(&o)
	}
	if o.bundleSize < needleSize(0) {
		return nil, fmt.Errorf("pack: bundle size %d below minimum needle size", o.bundleSize)
	}
	if o.indexEvery < 1 || o.auditBatch < 1 || o.garbageRatio <= 0 || o.garbageRatio > 1 {
		return nil, fmt.Errorf("pack: invalid options %+v", o)
	}
	dir := filepath.Join(root, "pack")
	if err := fsio.EnsureDir(dir); err != nil {
		return nil, fmt.Errorf("pack: %v", err)
	}
	s := &Store{
		root: root,
		dir:  dir,
		opts: o,
		met: metrics.NewSet("hits", "misses", "stores", "corrupt_dropped", "errors",
			"migrated", "recovered_needles", "index_writes", "compactions",
			"compacted_bytes", "audit_passes", "audited_needles", "audit_corrupt_dropped"),
		index:   make(map[string]indexEntry),
		bundles: make(map[uint32]*bundle),
		nextID:  1,
		bg:      make(chan struct{}),
	}
	if err := s.recover(); err != nil {
		return nil, err
	}
	s.migrate()
	s.mu.Lock()
	if s.dirty > 0 {
		s.persistIndexLocked() // best-effort; a failure re-scans on next boot
	}
	s.mu.Unlock()
	if o.auditInterval > 0 {
		s.wg.Add(1)
		go s.background()
	}
	return s, nil
}

// Dir returns the pack directory (under the data-dir root).
func (s *Store) Dir() string { return s.dir }

// bundlePath names a bundle file.
func (s *Store) bundlePath(id uint32) string {
	return filepath.Join(s.dir, fmt.Sprintf("bundle-%08d.pack", id))
}

// recover rebuilds the in-memory state from disk: persisted index if
// intact, then each bundle's un-indexed tail, healing torn tails by
// truncation and unlinking bundles nothing references.
func (s *Store) recover() error {
	table, entries, haveIndex := loadIndex(filepath.Join(s.dir, indexName))
	if haveIndex {
		s.index = entries
	}
	scannedTo := make(map[uint32]int64, len(table))
	for _, row := range table {
		scannedTo[row.id] = row.scannedTo
	}

	names, err := os.ReadDir(s.dir)
	if err != nil {
		return fmt.Errorf("pack: %v", err)
	}
	for _, de := range names {
		name := de.Name()
		if name == indexName || de.IsDir() {
			continue
		}
		if tmp := filepath.Join(s.dir, name); len(name) > 5 && name[:5] == ".tmp-" {
			os.Remove(tmp) // a crash mid index write leaves at worst a stray temp
			continue
		}
		var id uint32
		if _, err := fmt.Sscanf(name, "bundle-%08d.pack", &id); err != nil || s.bundlePath(id) != filepath.Join(s.dir, name) {
			continue // not a name this store ever writes; leave it alone
		}
		f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_RDWR, 0o644)
		if err != nil {
			s.met.Add(packErrors, 1)
			continue
		}
		st, err := f.Stat()
		if err != nil {
			s.met.Add(packErrors, 1)
			f.Close()
			continue
		}
		s.bundles[id] = &bundle{id: id, f: f, size: st.Size()}
		if id >= s.nextID {
			s.nextID = id + 1
		}
	}

	// Drop index entries whose bundle file is gone or too short to hold
	// them — an index is an accelerator, never an oracle.
	for key, e := range s.index {
		b, ok := s.bundles[e.bundle]
		if !ok || e.off+needleSize(e.n) > b.size {
			delete(s.index, key)
			s.met.Add(packCorrupt, 1)
		}
	}

	// Replay each bundle's tail beyond what the persisted index covers.
	ids := make([]uint32, 0, len(s.bundles))
	for id := range s.bundles {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		b := s.bundles[id]
		from := scannedTo[id]
		if from > b.size {
			from = 0 // index claims more than the file holds: rescan it all
		}
		s.scanTail(b, from)
	}

	// Per-bundle live accounting, then unlink bundles no entry references.
	for _, e := range s.index {
		s.bundles[e.bundle].live += needleSize(e.n)
	}
	for id, b := range s.bundles {
		if b.live == 0 {
			b.f.Close()
			if err := os.Remove(s.bundlePath(id)); err != nil {
				s.met.Add(packErrors, 1)
			}
			delete(s.bundles, id)
			s.dirty++
		}
	}

	// Pick (or create) the active bundle: the newest one with append room.
	if len(s.bundles) > 0 {
		maxID := ids[0]
		for id := range s.bundles {
			if id > maxID {
				maxID = id
			}
		}
		if b := s.bundles[maxID]; b.size < s.opts.bundleSize {
			s.active = maxID
			return nil
		}
	}
	_, err = s.rotateLocked()
	return err
}

// scanTail replays one bundle's needles from offset from, adding any key
// the index does not already hold. The scan stops at the first frame
// that fails to decode — everything past it is a torn tail or rot — and
// truncates the file there so the append offset is trustworthy again.
func (s *Store) scanTail(b *bundle, from int64) {
	if from >= b.size {
		return
	}
	rd := bufio.NewReaderSize(io.NewSectionReader(b.f, from, b.size-from), 1<<20)
	off := from
	var header [headerSize]byte
	for off < b.size {
		if _, err := io.ReadFull(rd, header[:]); err != nil {
			break // torn mid-header
		}
		h, ok := decodeNeedleHeader(header[:])
		if !ok {
			s.met.Add(packCorrupt, 1) // a full header that doesn't decode is damage, not a tear
			break
		}
		payload := make([]byte, h.n)
		if _, err := io.ReadFull(rd, payload); err != nil {
			break // torn mid-payload
		}
		if !h.checkPayload(payload) {
			s.met.Add(packCorrupt, 1)
			break
		}
		key := hexKey(h.key)
		if _, dup := s.index[key]; !dup {
			s.index[key] = indexEntry{bundle: b.id, off: off, n: h.n}
			s.met.Add(packRecovered, 1)
			s.dirty++
		}
		off += needleSize(h.n)
	}
	if off < b.size {
		// Truncate the untrustworthy tail so future appends extend a clean
		// prefix instead of burying garbage mid-bundle.
		if err := b.f.Truncate(off); err != nil {
			s.met.Add(packErrors, 1)
			return
		}
		b.f.Sync()
		b.size = off
		s.dirty++
	}
}

// rotateLocked seals the active bundle (fsync) and opens a fresh one.
// Callers hold mu (or are inside single-threaded Open).
func (s *Store) rotateLocked() (*bundle, error) {
	if cur, ok := s.bundles[s.active]; ok {
		if err := cur.f.Sync(); err != nil {
			s.met.Add(packErrors, 1)
			return nil, err
		}
	}
	id := s.nextID
	f, err := os.OpenFile(s.bundlePath(id), os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		s.met.Add(packErrors, 1)
		return nil, err
	}
	s.nextID++
	b := &bundle{id: id, f: f}
	s.bundles[id] = b
	s.active = id
	return b, nil
}

// Get returns the stored report bytes for a key: one index probe, one
// pread, one CRC check. A needle that fails verification is dropped
// from the index (and the drop persisted) so the entry heals by
// re-simulation instead of poisoning every later read.
func (s *Store) Get(_ context.Context, key string) (json.RawMessage, bool) {
	if !validKey(key) {
		s.met.Add(packMisses, 1)
		return nil, false
	}
	s.mu.RLock()
	if s.closed {
		s.mu.RUnlock()
		s.met.Add(packMisses, 1)
		return nil, false
	}
	e, ok := s.index[key]
	var buf []byte
	var readErr error
	if ok {
		buf = make([]byte, needleSize(e.n))
		_, readErr = s.bundles[e.bundle].f.ReadAt(buf, e.off)
	}
	s.mu.RUnlock()
	if !ok {
		s.met.Add(packMisses, 1)
		return nil, false
	}
	if readErr == nil {
		if h, okh := decodeNeedleHeader(buf); okh && h.key == rawKey(key) && h.checkPayload(buf[headerSize:]) {
			s.met.Add(packHits, 1)
			return json.RawMessage(buf[headerSize:]), true
		}
	} else {
		s.met.Add(packErrors, 1)
	}
	s.dropCorrupt(key, e, packCorrupt)
	s.met.Add(packMisses, 1)
	return nil, false
}

// dropCorrupt removes a damaged entry from the index and persists the
// drop, so a crash cannot resurrect an entry a reader already refused.
// The needle bytes stay behind as bundle garbage for the compactor.
func (s *Store) dropCorrupt(key string, e indexEntry, counter metrics.CounterID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.index[key]
	if !ok || cur != e {
		return // raced with a concurrent drop or a healing re-Put
	}
	delete(s.index, key)
	if b, ok := s.bundles[e.bundle]; ok {
		b.live -= needleSize(e.n)
	}
	s.met.Add(counter, 1)
	s.dirty++
	s.persistIndexLocked() // best-effort; the drop is re-derived by audit if lost
}

// Put persists report bytes under a key: one append to the active
// bundle. First write wins. Best-effort like the per-file store: any
// failure is counted and degrades to a future miss, never a wrong
// answer.
func (s *Store) Put(_ context.Context, key string, blob json.RawMessage) {
	if !validKey(key) {
		s.met.Add(packErrors, 1)
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return
	}
	if _, ok := s.index[key]; ok {
		return
	}
	if err := s.appendLocked(key, blob); err != nil {
		s.met.Add(packErrors, 1)
		return
	}
	s.met.Add(packStores, 1)
	if s.dirty >= s.opts.indexEvery {
		s.persistIndexLocked() // best-effort; the tail scan covers a failure
	}
}

// appendLocked writes one needle at the active bundle's append offset
// and indexes it. The caller holds mu and accounts errors.
func (s *Store) appendLocked(key string, payload []byte) error {
	if err := fsio.Failpoint("pack.append"); err != nil {
		return err
	}
	b := s.bundles[s.active]
	if b == nil || b.size >= s.opts.bundleSize {
		var err error
		if b, err = s.rotateLocked(); err != nil {
			return err
		}
	}
	needle := encodeNeedle(rawKey(key), payload)
	if _, err := b.f.WriteAt(needle, b.size); err != nil {
		// A partial tail is exactly what the boot scan heals; trim it now
		// so this process's later appends don't bury it mid-bundle.
		b.f.Truncate(b.size)
		return err
	}
	s.index[key] = indexEntry{bundle: b.id, off: b.size, n: len(payload)}
	b.size += needleSize(len(payload))
	b.live += needleSize(len(payload))
	s.dirty++
	return nil
}

// persistIndexLocked rewrites the index file to match the in-memory
// state: fsync the active bundle first (data before metadata), then
// atomically replace INDEX. On success every bundle's watermark
// advances to its current size. Best-effort for callers that treat the
// index as an accelerator; returns the error for the swap paths that
// must not proceed without durability.
func (s *Store) persistIndexLocked() error {
	err := func() error {
		if err := fsio.Failpoint("pack.index"); err != nil {
			return err
		}
		if b, ok := s.bundles[s.active]; ok {
			if err := b.f.Sync(); err != nil {
				return err
			}
		}
		table := make([]indexBundle, 0, len(s.bundles))
		for _, b := range s.bundles {
			table = append(table, indexBundle{id: b.id, scannedTo: b.size})
		}
		sort.Slice(table, func(i, j int) bool { return table[i].id < table[j].id })
		return fsio.AtomicWrite(filepath.Join(s.dir, indexName),
			fsio.EncodeRecord(indexMagic, encodeIndex(table, s.index)))
	}()
	if err != nil {
		s.met.Add(packErrors, 1)
		return err
	}
	for _, b := range s.bundles {
		b.indexedTo = b.size
	}
	s.dirty = 0
	s.met.Add(packIndexWrites, 1)
	return nil
}

// background runs the maintenance loop: each tick re-verifies a batch
// of needles and compacts any bundle past the garbage threshold.
func (s *Store) background() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.auditInterval)
	defer t.Stop()
	for {
		select {
		case <-s.bg:
			return
		case <-t.C:
			s.Audit(s.opts.auditBatch)
			s.Compact()
		}
	}
}

// Close stops the maintenance loop, persists the index, and closes
// every bundle. The store serves misses (and drops writes) afterward.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	close(s.bg)
	s.wg.Wait()

	s.mu.Lock()
	defer s.mu.Unlock()
	var err error
	if s.dirty > 0 {
		err = s.persistIndexLocked()
	}
	for _, b := range s.bundles {
		b.f.Sync()
		if cerr := b.f.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	s.closed = true
	return err
}

// PackStats snapshots the store's counters and gauges for /v1/metrics.
func (s *Store) PackStats() api.PackStats {
	s.mu.RLock()
	var live, total int64
	for _, b := range s.bundles {
		live += b.live
		total += b.size
	}
	st := api.PackStats{
		Bundles:      int64(len(s.bundles)),
		IndexEntries: int64(len(s.index)),
		LiveBytes:    live,
		GarbageBytes: total - live,
	}
	s.mu.RUnlock()
	st.Hits = s.met.Value(packHits)
	st.Misses = s.met.Value(packMisses)
	st.Stores = s.met.Value(packStores)
	st.CorruptDropped = s.met.Value(packCorrupt)
	st.Errors = s.met.Value(packErrors)
	st.Migrated = s.met.Value(packMigrated)
	st.RecoveredNeedles = s.met.Value(packRecovered)
	st.IndexWrites = s.met.Value(packIndexWrites)
	st.Compactions = s.met.Value(packCompactions)
	st.CompactedBytes = s.met.Value(packCompactedBytes)
	st.AuditPasses = s.met.Value(packAuditPasses)
	st.AuditedNeedles = s.met.Value(packAudited)
	st.AuditCorruptDropped = s.met.Value(packAuditCorrupt)
	return st
}

package exp

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/figures"
	"repro/internal/sim"
	"repro/pkg/api"
)

// scenario is one runnable experiment kind. Config-sensitive scenarios
// acquire a sim.Machine for the run's resolved sim.Config from the
// engine's machine pool (falling back to sim.New when pool is nil), so
// grids over config fields sweep real system parameters without paying
// full machine assembly per run; figure scenarios replay a paper
// artifact, which constructs its own fixed machines and ignores the pool.
type scenario struct {
	Name            string `json:"name"`
	Description     string `json:"description"`
	ConfigSensitive bool   `json:"config_sensitive"`

	run func(pool *sim.Pool, cfg sim.Config, scale figures.Scale) (figures.Report, error)
}

// acquireMachine builds a machine for cfg, through the pool when one is
// provided. The pool's Get is exactly equivalent to sim.New — Reset is
// provably state-free (TestPooledMachineDeterminism) — so callers cannot
// observe which path produced the machine.
func acquireMachine(pool *sim.Pool, cfg sim.Config) (*sim.Machine, func(), error) {
	if pool == nil {
		m, err := sim.New(cfg)
		return m, func() {}, err
	}
	m, err := pool.Get(cfg)
	return m, func() { pool.Put(m) }, err
}

// covertRunner adapts one covert-channel protocol into a scenario. Each
// scenario gets its own message seed (mirroring the figure generators) so
// no two scenarios ever transmit the same bit string.
func covertRunner(name, desc string, seed uint64,
	fn func(*sim.Machine, []bool, core.Options) (core.Result, error)) scenario {
	return scenario{
		Name:            name,
		Description:     desc,
		ConfigSensitive: true,
		run: func(pool *sim.Pool, cfg sim.Config, scale figures.Scale) (figures.Report, error) {
			m, release, err := acquireMachine(pool, cfg)
			if err != nil {
				return figures.Report{}, err
			}
			defer release()
			msg := core.RandomMessage(scale.Bits(), seed)
			res, err := fn(m, msg, core.Options{})
			if err != nil {
				return figures.Report{}, err
			}
			return covertReport(name, res), nil
		},
	}
}

// covertReport renders one covert-channel result in the same Report shape
// the figure generators emit, so every scenario serializes identically.
func covertReport(name string, res core.Result) figures.Report {
	return figures.Report{
		ID:    name,
		Title: fmt.Sprintf("%s covert channel (%d bits)", res.Channel, res.Bits),
		Rows: []figures.Row{
			{Label: "throughput", Paper: "-", Measured: fmt.Sprintf("%.2f Mb/s", res.ThroughputMbps)},
			{Label: "effective throughput", Paper: "-", Measured: fmt.Sprintf("%.2f Mb/s", res.EffectiveThroughputMbps)},
			{Label: "error rate", Paper: "-", Measured: fmt.Sprintf("%.2f%%", res.ErrorRate*100)},
			{Label: "transmission time", Paper: "-", Measured: fmt.Sprintf("%d cyc", res.Cycles)},
			{Label: "sender busy", Paper: "-", Measured: fmt.Sprintf("%d cyc", res.SenderCycles)},
			{Label: "receiver busy", Paper: "-", Measured: fmt.Sprintf("%d cyc", res.ReceiverCycles)},
		},
	}
}

// testScenarios holds extra registry entries injected by tests (for
// example a microsecond-cost synthetic scenario that makes a 10^5-run
// memory-bound sweep affordable). Production code never appends to it.
var testScenarios []scenario

// scenarios returns the full registry in presentation order: the
// config-sensitive covert channels first, then every paper artifact from
// the figures registry, then any test-injected entries.
func scenarios() []scenario {
	out := []scenario{
		covertRunner("covert-pnm", "IMPACT PnM covert channel (PEI row-buffer probes)", 101, core.RunPnM),
		covertRunner("covert-pum", "IMPACT PuM covert channel (RowClone row-buffer probes)", 102, core.RunPuM),
		covertRunner("covert-direct", "direct-access covert channel (uncached loads)", 103, core.RunDirect),
		covertRunner("covert-drama-clflush", "DRAMA baseline, clflush variant", 104, core.RunDRAMAClflush),
		covertRunner("covert-drama-eviction", "DRAMA baseline, eviction-set variant", 105, core.RunDRAMAEviction),
		covertRunner("covert-dma", "DMA-engine covert channel", 106, core.RunDMA),
	}
	for _, id := range figures.IDs() {
		id := id
		out = append(out, scenario{
			Name:        id,
			Description: fmt.Sprintf("paper artifact %q from the figures registry", id),
			run: func(_ *sim.Pool, _ sim.Config, scale figures.Scale) (figures.Report, error) {
				return figures.Run(id, scale)
			},
		})
	}
	return append(out, testScenarios...)
}

// ScenarioNames lists every runnable scenario in presentation order.
func ScenarioNames() []string {
	scns := scenarios()
	out := make([]string, len(scns))
	for i, s := range scns {
		out[i] = s.Name
	}
	return out
}

// ScenarioInfo describes one registry entry for API listings. The wire
// shape lives in pkg/api with the rest of the v1 contract.
type ScenarioInfo = api.ScenarioInfo

// ScenarioList returns the registry metadata in presentation order.
func ScenarioList() []ScenarioInfo {
	scns := scenarios()
	out := make([]ScenarioInfo, len(scns))
	for i, s := range scns {
		out[i] = ScenarioInfo{Name: s.Name, Description: s.Description, ConfigSensitive: s.ConfigSensitive}
	}
	return out
}

// scenarioByName resolves a registry entry.
func scenarioByName(name string) (scenario, bool) {
	for _, s := range scenarios() {
		if s.Name == name {
			return s, true
		}
	}
	return scenario{}, false
}

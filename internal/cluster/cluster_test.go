package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
	"repro/pkg/api"
)

// gate wraps a node's handler with fault injection: while down, every
// request — peer traffic included — is refused, simulating a network
// partition that can later heal (unlike closing the listener, which
// frees the port). It also records the X-Request-ID of inbound internal
// peer requests for the propagation test.
type gate struct {
	inner http.Handler
	down  atomic.Bool

	mu          sync.Mutex
	peerReqIDs  []string
	peerReqPath []string
}

func (g *gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.down.Load() {
		// An opaque non-API 503: the peer client must treat any remote
		// failure shape as a degraded hop, not just well-formed envelopes.
		http.Error(w, "partitioned", http.StatusServiceUnavailable)
		return
	}
	if strings.HasPrefix(r.URL.Path, "/v1/internal/") {
		g.mu.Lock()
		g.peerReqIDs = append(g.peerReqIDs, r.Header.Get(api.HeaderRequestID))
		g.peerReqPath = append(g.peerReqPath, r.Method+" "+r.URL.Path)
		g.mu.Unlock()
	}
	g.inner.ServeHTTP(w, r)
}

// recordedIDs returns the X-Request-ID of each inbound internal peer
// request whose method matches.
func (g *gate) recordedIDs(method string) []string {
	g.mu.Lock()
	defer g.mu.Unlock()
	var ids []string
	for i, p := range g.peerReqPath {
		if strings.HasPrefix(p, method+" ") {
			ids = append(ids, g.peerReqIDs[i])
		}
	}
	return ids
}

// testNode is one in-process cluster member: a real exp.Server over a
// real listener, its cache backed by a cluster Store that dials its
// peers through the production pkg/client transport.
type testNode struct {
	node  Node
	ts    *httptest.Server
	store *Store
	gate  *gate
}

// newTestCluster boots n memory-only nodes that all know each other.
// Memory-only keeps the test hermetic: replicas land in each receiver's
// result-cache memory tier, which is exactly the tier the internal peer
// endpoints serve from.
func newTestCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	nodes := make([]*testNode, n)
	members := make([]Node, n)
	for i := range nodes {
		ts := httptest.NewUnstartedServer(http.NotFoundHandler())
		nodes[i] = &testNode{ts: ts}
		members[i] = Node{ID: fmt.Sprintf("n%d", i+1), Addr: ts.Listener.Addr().String()}
		nodes[i].node = members[i]
	}
	for i, tn := range nodes {
		store, err := New(Config{
			Self:       members[i].ID,
			Nodes:      members,
			HopTimeout: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		tn.store = store
		engine := exp.NewEngine(exp.WithStore(store))
		srv := exp.NewServer(engine, exp.WithWorkers(2),
			exp.WithNodeIdentity(members[i].ID, "memory", n-1))
		tn.gate = &gate{inner: srv.Handler()}
		tn.ts.Config.Handler = tn.gate
		tn.ts.Start()
		t.Cleanup(func() {
			tn.ts.Close()
			store.Close()
		})
	}
	return nodes
}

// postRun runs a sweep spec through one node and returns the raw
// response body.
func postRun(t *testing.T, tn *testNode, spec string, headers map[string]string) []byte {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, tn.ts.URL+"/v1/run", strings.NewReader(spec))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/run via %s: %v", tn.node.ID, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/run via %s: %d: %s", tn.node.ID, resp.StatusCode, body)
	}
	return body
}

// sweepSpec builds a small covert-pnm sweep whose seed keys the whole
// spec cold for this test alone.
func sweepSpec(seed, points int) string {
	grid := make([]string, points)
	for i := range grid {
		grid[i] = fmt.Sprint(1 << (20 + i))
	}
	return fmt.Sprintf(`{"scenario":"covert-pnm","config":{"noise":{"seed":%d}},"grid":{"llc_bytes":[%s]}}`,
		seed, strings.Join(grid, ","))
}

// waitReplicationIdle waits until a node's replication queue drains.
func waitReplicationIdle(t *testing.T, tn *testNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if tn.store.ClusterStats().ReplQueue == 0 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("%s replication queue never drained: %+v", tn.node.ID, tn.store.ClusterStats())
}

// TestClusterPartitionRejoin is the consistency pin for the whole
// subsystem: the same sweep, asked of different nodes before, during,
// and after a partition, returns byte-identical bodies every time. A
// partitioned peer may make a request slower (failed hops fall back to
// local simulation); it must never change a single output byte and never
// fail a request.
func TestClusterPartitionRejoin(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	nodes := newTestCluster(t, 3)
	spec := sweepSpec(4401, 3)

	// Healthy cluster: n1 computes, n2 serves the same bytes (remote
	// fetches or local re-simulation — either way identical).
	reference := postRun(t, nodes[0], spec, nil)
	if got := postRun(t, nodes[1], spec, nil); !bytes.Equal(got, reference) {
		t.Fatal("n2's healthy-cluster body differs from n1's")
	}
	waitReplicationIdle(t, nodes[0])

	// Partition n3 away and keep asking: warm keys on n2, cold keys via
	// n1, a fully cold sweep via n2 — all must stay byte-identical to a
	// healthy cluster's answers.
	nodes[2].gate.down.Store(true)
	if got := postRun(t, nodes[1], spec, nil); !bytes.Equal(got, reference) {
		t.Fatal("n2's during-partition body differs")
	}
	coldSpec := sweepSpec(4402, 3)
	coldRef := postRun(t, nodes[0], coldSpec, nil)
	if got := postRun(t, nodes[1], coldSpec, nil); !bytes.Equal(got, coldRef) {
		t.Fatal("cold sweep computed during the partition differs between nodes")
	}

	// Rejoin: the healed n3 serves the same bytes as everyone else.
	nodes[2].gate.down.Store(false)
	if got := postRun(t, nodes[2], spec, nil); !bytes.Equal(got, reference) {
		t.Fatal("n3's post-rejoin body differs")
	}
	if got := postRun(t, nodes[2], coldSpec, nil); !bytes.Equal(got, coldRef) {
		t.Fatal("n3's post-rejoin cold-spec body differs")
	}
}

// TestClusterSmoke is the CI gate (make cluster-smoke): three nodes, a
// sweep through one, a peer killed mid-sweep on another, and the
// survivors still serving every key — including the dead node's —
// byte-identically.
func TestClusterSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	nodes := newTestCluster(t, 3)
	spec := sweepSpec(5501, 6)

	reference := postRun(t, nodes[0], spec, nil)
	waitReplicationIdle(t, nodes[0])

	// Kill n3 mid-sweep: while n2 works through the sweep (remote-fetching
	// keys it does not hold), the partition lands under it.
	killed := make(chan struct{})
	go func() {
		time.Sleep(5 * time.Millisecond)
		nodes[2].gate.down.Store(true)
		close(killed)
	}()
	got := postRun(t, nodes[1], spec, nil)
	<-killed
	if !bytes.Equal(got, reference) {
		t.Fatal("n2's body with a peer dying mid-sweep differs from the reference")
	}

	// The dead node's keys are still served: with n3 partitioned, both
	// survivors answer the full sweep — keys whose replica set includes n3
	// come from the other replica or are re-simulated.
	for _, tn := range nodes[:2] {
		if got := postRun(t, tn, spec, nil); !bytes.Equal(got, reference) {
			t.Fatalf("%s's body with n3 dead differs from the reference", tn.node.ID)
		}
	}

	// The cluster layer actually participated: someone fetched remotely or
	// replicated successfully, and nobody returned an error anywhere above.
	var remoteHits, replSent int64
	for _, tn := range nodes {
		st := tn.store.ClusterStats()
		remoteHits += st.RemoteHits
		replSent += st.ReplSent
	}
	if remoteHits == 0 && replSent == 0 {
		t.Fatal("three-node smoke ran without any cross-node traffic")
	}
}

// TestClusterRequestIDPropagation pins satellite behavior: a peer hop
// made on behalf of a user request carries the user's X-Request-ID, so
// one request traces as one ID across every node it touches.
func TestClusterRequestIDPropagation(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	nodes := newTestCluster(t, 2)
	const traceID = "trace-cluster-0042"

	// Two nodes, R=2: every key's replica set is both nodes, so n1 probes
	// n2 for every cold key before simulating. Only the synchronous fetch
	// hops ride the user's request; replication PUTs run detached from any
	// request on purpose (results outlive the request that computed them)
	// and carry no inherited ID.
	postRun(t, nodes[0], sweepSpec(6601, 2), map[string]string{api.HeaderRequestID: traceID})

	ids := nodes[1].gate.recordedIDs(http.MethodGet)
	if len(ids) == 0 {
		t.Fatal("n1 never forwarded a peer fetch to n2")
	}
	for _, id := range ids {
		if id != traceID {
			t.Fatalf("peer fetch carried X-Request-ID %q, want %q (all: %v)", id, traceID, ids)
		}
	}
}

// TestClusterHealthIdentity pins the healthz identity fields a cluster
// node reports.
func TestClusterHealthIdentity(t *testing.T) {
	nodes := newTestCluster(t, 3)
	resp, err := http.Get(nodes[1].ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h api.Health
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.NodeID != "n2" || h.Store != "memory" || h.Peers != 2 {
		t.Fatalf("healthz identity = %q/%q/%d, want n2/memory/2", h.NodeID, h.Store, h.Peers)
	}
}

// TestClusterMetricsSection pins that a cluster-backed node surfaces the
// cluster section on /v1/metrics with its identity filled in.
func TestClusterMetricsSection(t *testing.T) {
	if testing.Short() {
		t.Skip("simulating sweeps in -short mode")
	}
	nodes := newTestCluster(t, 2)
	postRun(t, nodes[0], sweepSpec(7701, 2), nil)

	resp, err := http.Get(nodes[0].ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc api.MetricsDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if doc.Cluster == nil {
		t.Fatal("metrics document has no cluster section")
	}
	if doc.Cluster.NodeID != "n1" || doc.Cluster.Peers != 1 {
		t.Fatalf("cluster section identity: %+v", doc.Cluster)
	}
	if doc.Cluster.ReplEnqueued == 0 {
		t.Fatalf("sweep produced no replication work: %+v", doc.Cluster)
	}
}

package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// Golden keys from TestRingPlacementGolden: on the threeNodes() ring
// with 64 vnodes, their R=2 replica sets are pinned and byte-stable.
const (
	keyAlphaBeta = "9b0fcb6e86e9df8eb723bd4b8c8e2f0c7a3d5e1f2a4b6c8d9e0f1a2b3c4d5e6f" // {alpha, beta}
	keyBetaGamma = "0000000000000000000000000000000000000000000000000000000000000000" // {beta, gamma}
	keyGammaBeta = "4a5e1e4baab89f3a32518a88c31bc87f618f76673e2cc77ab2127b7afdeda33b" // {gamma, beta}
)

// mapStore is a minimal local exp.ResultStore for tests.
type mapStore struct {
	mu sync.Mutex
	m  map[string]json.RawMessage
}

func newMapStore() *mapStore { return &mapStore{m: map[string]json.RawMessage{}} }

func (s *mapStore) Get(_ context.Context, key string) (json.RawMessage, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	blob, ok := s.m[key]
	return blob, ok
}

func (s *mapStore) Put(_ context.Context, key string, blob json.RawMessage) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.m[key]; !ok {
		s.m[key] = append(json.RawMessage(nil), blob...)
	}
}

// fakePeer is an in-process Peer with fault injection: down peers error
// every call, storeFailures makes the next N StoreResult calls fail
// (testing replication retries), and blockStores holds StoreResult until
// released (testing queue overflow).
type fakePeer struct {
	mu            sync.Mutex
	data          map[string]json.RawMessage
	down          bool
	storeFailures int
	blockStores   chan struct{}
	fetchCalls    int
	storeCalls    int
}

func newFakePeer() *fakePeer { return &fakePeer{data: map[string]json.RawMessage{}} }

func (p *fakePeer) FetchResult(_ context.Context, key string) (json.RawMessage, bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fetchCalls++
	if p.down {
		return nil, false, fmt.Errorf("fakepeer: down")
	}
	blob, ok := p.data[key]
	return blob, ok, nil
}

func (p *fakePeer) StoreResult(ctx context.Context, key string, blob json.RawMessage) error {
	p.mu.Lock()
	block := p.blockStores
	p.mu.Unlock()
	if block != nil {
		select {
		case <-block:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.storeCalls++
	if p.down {
		return fmt.Errorf("fakepeer: down")
	}
	if p.storeFailures > 0 {
		p.storeFailures--
		return fmt.Errorf("fakepeer: transient store failure")
	}
	p.data[key] = append(json.RawMessage(nil), blob...)
	return nil
}

func (p *fakePeer) get(key string) (json.RawMessage, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	blob, ok := p.data[key]
	return blob, ok
}

// newTestStore builds an alpha-node store over fake beta/gamma peers.
func newTestStore(t *testing.T, cfg Config) (*Store, *fakePeer, *fakePeer) {
	t.Helper()
	beta, gamma := newFakePeer(), newFakePeer()
	cfg.Self = "alpha"
	cfg.Nodes = threeNodes()
	cfg.Dial = func(n Node) (Peer, error) {
		switch n.ID {
		case "beta":
			return beta, nil
		case "gamma":
			return gamma, nil
		}
		return nil, fmt.Errorf("unexpected dial of %s", n.ID)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s, beta, gamma
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestStoreGetLocalFirst: a locally-held key never touches the network.
func TestStoreGetLocalFirst(t *testing.T) {
	local := newMapStore()
	s, beta, gamma := newTestStore(t, Config{Local: local})
	blob := json.RawMessage(`{"v":1}`)
	local.Put(context.Background(), keyAlphaBeta, blob)

	got, ok := s.Get(context.Background(), keyAlphaBeta)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = %q, %v; want local blob", got, ok)
	}
	if beta.fetchCalls != 0 || gamma.fetchCalls != 0 {
		t.Fatalf("local hit touched the network: beta %d, gamma %d fetches", beta.fetchCalls, gamma.fetchCalls)
	}
	if st := s.ClusterStats(); st.LocalHits != 1 || st.RemoteHits != 0 {
		t.Fatalf("stats after local hit: %+v", st)
	}
}

// TestStoreGetRemoteHitHeals: a local miss fetches from the key's remote
// replica, and — because this node is in the replica set — heals the
// blob into the local tier so the next read is local.
func TestStoreGetRemoteHitHeals(t *testing.T) {
	local := newMapStore()
	s, beta, _ := newTestStore(t, Config{Local: local})
	blob := json.RawMessage(`{"v":2}`)
	beta.data[keyAlphaBeta] = blob // replica set {alpha, beta}; alpha lost its copy

	got, ok := s.Get(context.Background(), keyAlphaBeta)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = %q, %v; want beta's blob", got, ok)
	}
	if healed, ok := local.Get(context.Background(), keyAlphaBeta); !ok || !bytes.Equal(healed, blob) {
		t.Fatalf("blob not healed into local tier: %q, %v", healed, ok)
	}
	st := s.ClusterStats()
	if st.RemoteHits != 1 || st.Heals != 1 {
		t.Fatalf("stats after healing fetch: %+v", st)
	}

	// Second read is purely local.
	before := beta.fetchCalls
	if _, ok := s.Get(context.Background(), keyAlphaBeta); !ok {
		t.Fatal("healed key missing")
	}
	if beta.fetchCalls != before {
		t.Fatal("healed key still fetched remotely")
	}
}

// TestStoreGetNoHealOffReplica: fetching a key this node does NOT
// replicate must not pin it into the local durable tier — placement
// stays where the ring says it lives.
func TestStoreGetNoHealOffReplica(t *testing.T) {
	local := newMapStore()
	s, beta, _ := newTestStore(t, Config{Local: local})
	blob := json.RawMessage(`{"v":3}`)
	beta.data[keyBetaGamma] = blob // replica set {beta, gamma}; alpha is off-replica

	got, ok := s.Get(context.Background(), keyBetaGamma)
	if !ok || !bytes.Equal(got, blob) {
		t.Fatalf("Get = %q, %v; want beta's blob", got, ok)
	}
	if _, ok := local.Get(context.Background(), keyBetaGamma); ok {
		t.Fatal("off-replica key healed into local tier")
	}
	if st := s.ClusterStats(); st.Heals != 0 {
		t.Fatalf("off-replica fetch healed: %+v", st)
	}
}

// TestStorePartitionDegradesToMiss: with every peer down, a remote
// lookup degrades to a miss — the caller simulates locally — and the
// request sees no error of any kind.
func TestStorePartitionDegradesToMiss(t *testing.T) {
	s, beta, gamma := newTestStore(t, Config{Local: newMapStore()})
	beta.down, gamma.down = true, true

	if _, ok := s.Get(context.Background(), keyBetaGamma); ok {
		t.Fatal("partitioned lookup reported a hit")
	}
	st := s.ClusterStats()
	if st.PeerErrors != 2 || st.Misses != 1 {
		t.Fatalf("stats after partitioned lookup: %+v", st)
	}
}

// TestStorePutReplicates: Put lands locally at once and fans out
// asynchronously to exactly the key's other replicas.
func TestStorePutReplicates(t *testing.T) {
	local := newMapStore()
	s, beta, gamma := newTestStore(t, Config{Local: local})
	blob := json.RawMessage(`{"v":4}`)

	s.Put(context.Background(), keyAlphaBeta, blob) // replicas {alpha, beta}
	if _, ok := local.Get(context.Background(), keyAlphaBeta); !ok {
		t.Fatal("Put did not land in the local tier synchronously")
	}
	waitFor(t, "replication to beta", func() bool {
		got, ok := beta.get(keyAlphaBeta)
		return ok && bytes.Equal(got, blob)
	})
	if _, ok := gamma.get(keyAlphaBeta); ok {
		t.Fatal("blob replicated to gamma, which is not in the replica set")
	}
	st := s.ClusterStats()
	if st.ReplEnqueued != 1 || st.ReplSent != 1 {
		t.Fatalf("stats after replication: %+v", st)
	}
}

// TestStorePutOffReplica: a node computing a key it does not replicate
// pushes copies to both of the key's true replicas.
func TestStorePutOffReplica(t *testing.T) {
	s, beta, gamma := newTestStore(t, Config{Local: newMapStore()})
	blob := json.RawMessage(`{"v":5}`)

	s.Put(context.Background(), keyBetaGamma, blob) // replicas {beta, gamma}
	waitFor(t, "replication to both replicas", func() bool {
		_, okB := beta.get(keyBetaGamma)
		_, okG := gamma.get(keyBetaGamma)
		return okB && okG
	})
}

// TestStoreReplicationRetries: a transiently failing peer is retried
// with backoff until the push lands.
func TestStoreReplicationRetries(t *testing.T) {
	s, beta, _ := newTestStore(t, Config{Local: newMapStore()})
	beta.mu.Lock()
	beta.storeFailures = 2
	beta.mu.Unlock()

	s.Put(context.Background(), keyAlphaBeta, json.RawMessage(`{"v":6}`))
	waitFor(t, "retried replication to beta", func() bool {
		_, ok := beta.get(keyAlphaBeta)
		return ok
	})
	if st := s.ClusterStats(); st.ReplRetries < 2 || st.ReplSent != 1 {
		t.Fatalf("stats after retried replication: %+v", st)
	}
}

// TestStoreReplicationDropsWhenFull: the queue is bounded and the
// enqueue never blocks — overflow is dropped and counted, not buffered
// without limit and not stalling the simulation path.
func TestStoreReplicationDropsWhenFull(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, beta, _ := newTestStore(t, Config{Local: newMapStore(), QueueLen: 1, Workers: 1})
	beta.mu.Lock()
	beta.blockStores = block
	beta.mu.Unlock()

	// First Put occupies the worker (blocked in StoreResult), second fills
	// the one-slot queue; give the worker a moment to claim the first so
	// the counts below are deterministic.
	s.Put(context.Background(), keyAlphaBeta, json.RawMessage(`{"n":1}`))
	waitFor(t, "worker to claim the first push", func() bool {
		beta.mu.Lock()
		defer beta.mu.Unlock()
		return beta.fetchCalls == 0 && len(s.repl.ch) == 0 && s.repl.queued() == 1
	})
	s.Put(context.Background(), keyGammaBeta, json.RawMessage(`{"n":2}`))
	s.Put(context.Background(), keyBetaGamma, json.RawMessage(`{"n":3}`))

	st := s.ClusterStats()
	if st.ReplDroppedFull == 0 {
		t.Fatalf("overflowing the 1-slot queue dropped nothing: %+v", st)
	}
}

// TestStoreCloseStopsWorkers: Close returns promptly even with a peer
// holding a push open, and later enqueues are discarded quietly.
func TestStoreCloseStopsWorkers(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	s, beta, _ := newTestStore(t, Config{Local: newMapStore()})
	beta.mu.Lock()
	beta.blockStores = block
	beta.mu.Unlock()

	s.Put(context.Background(), keyAlphaBeta, json.RawMessage(`{"v":7}`))
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on an in-flight push")
	}
	// Post-close writes must not panic or block.
	s.Put(context.Background(), keyGammaBeta, json.RawMessage(`{"v":8}`))
}

// TestStoreSelfNotInNodes: configuration errors surface at construction.
func TestStoreSelfNotInNodes(t *testing.T) {
	_, err := New(Config{Self: "nope", Nodes: threeNodes(), Dial: func(n Node) (Peer, error) {
		return newFakePeer(), nil
	}})
	if err == nil {
		t.Fatal("New accepted a self ID missing from the node list")
	}
}

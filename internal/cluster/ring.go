// Package cluster scales the content-addressed result store across
// peers: a consistent-hash ring places every run key on a small replica
// set of nodes, lookups fall through memory → local store → the key's
// remote replicas → local simulation, and completed runs replicate
// asynchronously to their replica set so no single node owns the cache.
//
// The design leans entirely on the existing key scheme: run results are
// already addressed by the SHA-256 of their canonical spec, so placement
// is a pure function of bytes every node computes identically from the
// static -peers list — no coordinator, no membership protocol, no wire
// changes. A partitioned peer degrades a lookup to a local simulation
// (slower, never wrong, never failed), and the deterministic simulator
// guarantees any two nodes that compute the same key produce the same
// bytes, so replicas can never disagree.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
)

// DefaultVirtualNodes is the per-node virtual point count used when a
// Config does not say otherwise. 64 points per node keeps the expected
// load imbalance across a handful of peers within a few percent while
// the whole ring stays small enough to rebuild at boot in microseconds.
const DefaultVirtualNodes = 64

// Node is one cluster member: a stable identity (the -node-id flag,
// which the ring hashes for placement) and the HTTP address its peers
// dial. Placement depends only on IDs, so a node can change address —
// new port, new host — without moving a single key.
type Node struct {
	ID   string
	Addr string
}

// ringPoint is one virtual node on the ring: a position in hash space
// owned by nodes[node].
type ringPoint struct {
	hash uint64
	node int
}

// Ring is an immutable consistent-hash ring over a static node list.
// Placement is byte-stable: it is derived from SHA-256 over node IDs and
// vnode indices alone — no map iteration, no randomness, no process
// state — so every process that builds a ring from the same node list
// places every key identically, across restarts and across machines.
// Safe for concurrent use after construction.
type Ring struct {
	points []ringPoint
	nodes  []Node
}

// NewRing builds a ring with vnodes virtual points per node (<= 0
// selects DefaultVirtualNodes). Node IDs and addresses must be non-empty
// and unique; the node order given does not affect placement.
func NewRing(nodes []Node, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	// Placement hashes IDs, not list positions, so sorting the nodes here
	// makes the ring independent of -peers argument order too.
	sorted := append([]Node(nil), nodes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].ID < sorted[j].ID })
	seenID := make(map[string]bool, len(sorted))
	seenAddr := make(map[string]bool, len(sorted))
	for _, n := range sorted {
		if n.ID == "" || n.Addr == "" {
			return nil, fmt.Errorf("cluster: node %+v needs both an ID and an address", n)
		}
		if seenID[n.ID] {
			return nil, fmt.Errorf("cluster: duplicate node ID %q", n.ID)
		}
		if seenAddr[n.Addr] {
			return nil, fmt.Errorf("cluster: duplicate node address %q", n.Addr)
		}
		seenID[n.ID], seenAddr[n.Addr] = true, true
	}
	r := &Ring{
		points: make([]ringPoint, 0, len(sorted)*vnodes),
		nodes:  sorted,
	}
	for i, n := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(n.ID, v), node: i})
		}
	}
	// Ties (astronomically unlikely with SHA-256, but placement must be a
	// total order) break toward the lexicographically smaller node ID,
	// which the pre-sort above makes the smaller index.
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].node < r.points[j].node
	})
	return r, nil
}

// pointHash positions one virtual node: the first 8 bytes of
// SHA-256("<id>\n<vnode>"). The separator keeps ("n1", 0) and ("n10",
// ...) from colliding textually; SHA-256 (rather than a seeded fast
// hash) guarantees the placement is identical for every Go version and
// architecture.
func pointHash(id string, vnode int) uint64 {
	h := sha256.New()
	h.Write([]byte(id))
	h.Write([]byte{'\n'})
	h.Write([]byte(strconv.Itoa(vnode)))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0]))
}

// keyHash positions a result key on the ring. Keys are already hex
// SHA-256 digests, but hashing again costs little and keeps placement
// uniform even for the synthetic keys tests and benches use.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring's members, sorted by ID.
func (r *Ring) Nodes() []Node { return append([]Node(nil), r.nodes...) }

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node that owns a key: the first virtual point at or
// clockwise after the key's hash.
func (r *Ring) Owner(key string) Node {
	return r.nodes[r.points[r.successor(keyHash(key))].node]
}

// Replicas returns the key's replica set: the owner plus the next n-1
// distinct nodes clockwise. n is clamped to the member count, so a
// two-node ring with R=3 returns both nodes and no duplicates. The
// order is significant — lookups try replicas in this order, and the
// first element is always the owner.
func (r *Ring) Replicas(key string, n int) []Node {
	if n <= 0 {
		n = 1
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]Node, 0, n)
	seen := make(map[int]bool, n)
	for i, start := 0, r.successor(keyHash(key)); len(out) < n && i < len(r.points); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// successor finds the index of the first point with hash >= h, wrapping
// to 0 past the end of the ring.
func (r *Ring) successor(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

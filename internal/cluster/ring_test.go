package cluster

import (
	"fmt"
	"testing"
)

func mustRing(t *testing.T, nodes []Node, vnodes int) *Ring {
	t.Helper()
	r, err := NewRing(nodes, vnodes)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func threeNodes() []Node {
	return []Node{
		{ID: "alpha", Addr: "a:1"}, {ID: "beta", Addr: "b:1"}, {ID: "gamma", Addr: "c:1"},
	}
}

// synthetic keys for distribution tests; placement hashes keys again, so
// they need not be hex digests.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%06d", i)
	}
	return keys
}

// TestRingPlacementGolden pins placement to exact byte-stable values:
// the ring must place these keys on these nodes in every process, on
// every architecture, forever. If this test breaks, placement changed,
// and a rolling restart of a live cluster would orphan every cached
// result on the wrong node.
func TestRingPlacementGolden(t *testing.T) {
	ring := mustRing(t, threeNodes(), 64)
	golden := map[string][2]string{
		"0000000000000000000000000000000000000000000000000000000000000000": {"beta", "gamma"},
		"4a5e1e4baab89f3a32518a88c31bc87f618f76673e2cc77ab2127b7afdeda33b": {"gamma", "beta"},
		"9b0fcb6e86e9df8eb723bd4b8c8e2f0c7a3d5e1f2a4b6c8d9e0f1a2b3c4d5e6f": {"alpha", "beta"},
		"ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff": {"gamma", "beta"},
		"deadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeefdeadbeef": {"alpha", "gamma"},
	}
	for key, want := range golden {
		reps := ring.Replicas(key, 2)
		if len(reps) != 2 || reps[0].ID != want[0] || reps[1].ID != want[1] {
			t.Errorf("Replicas(%s..., 2) = %v, want %v", key[:8], reps, want)
		}
		if owner := ring.Owner(key); owner.ID != want[0] {
			t.Errorf("Owner(%s...) = %s, want %s", key[:8], owner.ID, want[0])
		}
	}
}

// TestRingOrderIndependent builds the same membership in two different
// list orders and checks every key lands identically: the -peers flag's
// argument order must not affect placement, or two nodes with
// differently ordered flags would route the same key to different
// owners.
func TestRingOrderIndependent(t *testing.T) {
	a := mustRing(t, threeNodes(), 32)
	reversed := []Node{
		{ID: "gamma", Addr: "c:1"}, {ID: "alpha", Addr: "a:1"}, {ID: "beta", Addr: "b:1"},
	}
	b := mustRing(t, reversed, 32)
	for _, key := range testKeys(2000) {
		ra, rb := a.Replicas(key, 2), b.Replicas(key, 2)
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("key %q: placement differs by construction order: %v vs %v", key, ra, rb)
			}
		}
	}
}

// TestRingRebalance checks the consistent-hashing contract: growing the
// cluster from N to N+1 nodes moves roughly K/(N+1) of the keys and no
// more, and every moved key moves TO the new node — existing nodes never
// trade keys among themselves.
func TestRingRebalance(t *testing.T) {
	keys := testKeys(20000)
	before := mustRing(t, threeNodes(), 64)
	after := mustRing(t, append(threeNodes(), Node{ID: "delta", Addr: "d:1"}), 64)

	moved := 0
	for _, key := range keys {
		oldOwner, newOwner := before.Owner(key), after.Owner(key)
		if oldOwner.ID == newOwner.ID {
			continue
		}
		moved++
		if newOwner.ID != "delta" {
			t.Fatalf("key %q moved %s → %s: keys may only move to the joining node", key, oldOwner.ID, newOwner.ID)
		}
	}
	// Ideal share is 1/4 of the keys. Allow generous slack for vnode
	// placement variance, but fail if movement is wildly off: far too few
	// means the new node is underused, far too many means placement churns.
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.45 {
		t.Fatalf("adding a 4th node moved %.1f%% of keys, want roughly 25%%", 100*frac)
	}
}

// TestRingRemovalRebalance is the inverse: removing a node reassigns
// only the keys it owned.
func TestRingRemovalRebalance(t *testing.T) {
	keys := testKeys(20000)
	before := mustRing(t, threeNodes(), 64)
	after := mustRing(t, threeNodes()[:2], 64)

	for _, key := range keys {
		oldOwner, newOwner := before.Owner(key), after.Owner(key)
		if oldOwner.ID != "gamma" && oldOwner.ID != newOwner.ID {
			t.Fatalf("key %q moved %s → %s though its owner survived", key, oldOwner.ID, newOwner.ID)
		}
	}
}

// TestRingBalance checks the virtual nodes spread load sanely: with the
// default vnode count, no node of three owns more than half or less than
// a tenth of the keyspace.
func TestRingBalance(t *testing.T) {
	ring := mustRing(t, threeNodes(), 0) // default vnodes
	counts := map[string]int{}
	keys := testKeys(30000)
	for _, key := range keys {
		counts[ring.Owner(key).ID]++
	}
	for id, n := range counts {
		frac := float64(n) / float64(len(keys))
		if frac < 0.10 || frac > 0.55 {
			t.Errorf("node %s owns %.1f%% of the keyspace", id, 100*frac)
		}
	}
}

// TestRingReplicas checks the replica-set contract: distinct nodes,
// owner first, clamped to the membership size.
func TestRingReplicas(t *testing.T) {
	ring := mustRing(t, threeNodes(), 16)
	for _, key := range testKeys(500) {
		reps := ring.Replicas(key, 2)
		if len(reps) != 2 {
			t.Fatalf("Replicas(%q, 2) returned %d nodes", key, len(reps))
		}
		if reps[0] != ring.Owner(key) {
			t.Fatalf("Replicas(%q)[0] = %v, want the owner %v", key, reps[0], ring.Owner(key))
		}
		if reps[0].ID == reps[1].ID {
			t.Fatalf("Replicas(%q) repeated node %s", key, reps[0].ID)
		}
	}
	if got := ring.Replicas("k", 99); len(got) != 3 {
		t.Fatalf("Replicas(k, 99) on a 3-node ring returned %d nodes, want 3 (clamped)", len(got))
	}
	if got := ring.Replicas("k", 0); len(got) != 1 {
		t.Fatalf("Replicas(k, 0) returned %d nodes, want 1 (owner only)", len(got))
	}
}

// TestRingValidation rejects malformed memberships up front.
func TestRingValidation(t *testing.T) {
	cases := []struct {
		name  string
		nodes []Node
	}{
		{"empty", nil},
		{"missing id", []Node{{Addr: "a:1"}}},
		{"missing addr", []Node{{ID: "a"}}},
		{"duplicate id", []Node{{ID: "a", Addr: "a:1"}, {ID: "a", Addr: "b:1"}}},
		{"duplicate addr", []Node{{ID: "a", Addr: "a:1"}, {ID: "b", Addr: "a:1"}}},
	}
	for _, tc := range cases {
		if _, err := NewRing(tc.nodes, 8); err == nil {
			t.Errorf("%s: NewRing accepted invalid membership", tc.name)
		}
	}
}

// FuzzRingPlacement fuzzes arbitrary keys against the placement
// invariants: deterministic across independently built rings, replica
// sets distinct with the owner first, and stable under membership
// reordering.
func FuzzRingPlacement(f *testing.F) {
	f.Add("deadbeef")
	f.Add("")
	f.Add("4a5e1e4baab89f3a32518a88c31bc87f618f76673e2cc77ab2127b7afdeda33b")
	f.Add("key with spaces \x00 and bytes")

	ringA, err := NewRing(threeNodes(), 32)
	if err != nil {
		f.Fatal(err)
	}
	reversed := []Node{
		{ID: "gamma", Addr: "c:1"}, {ID: "beta", Addr: "b:1"}, {ID: "alpha", Addr: "a:1"},
	}
	ringB, err := NewRing(reversed, 32)
	if err != nil {
		f.Fatal(err)
	}

	f.Fuzz(func(t *testing.T, key string) {
		repsA := ringA.Replicas(key, 2)
		repsB := ringB.Replicas(key, 2)
		if len(repsA) != 2 || len(repsB) != 2 {
			t.Fatalf("replica set size: %d vs %d, want 2", len(repsA), len(repsB))
		}
		for i := range repsA {
			if repsA[i] != repsB[i] {
				t.Fatalf("key %q places differently across rings: %v vs %v", key, repsA, repsB)
			}
		}
		if repsA[0].ID == repsA[1].ID {
			t.Fatalf("key %q: replica set repeats node %s", key, repsA[0].ID)
		}
		if repsA[0] != ringA.Owner(key) {
			t.Fatalf("key %q: replicas[0] %v is not the owner %v", key, repsA[0], ringA.Owner(key))
		}
	})
}

package cluster

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// Replication retry schedule: a push gets a handful of quick attempts
// with doubling, capped backoff, then the copy is abandoned (the ring
// heals by fetch or re-simulation). Totals well under ten seconds per
// push, so a dead peer cannot pin a worker for long.
const (
	replAttempts    = 4
	replBackoffBase = 50 * time.Millisecond
	replBackoffCap  = time.Second
)

// replJob is one pending push: this blob to that peer. Jobs are
// per-peer (a key replicating to two peers enqueues two jobs) so one
// unreachable peer retries without holding up the copy to a healthy one.
type replJob struct {
	peerID string
	key    string
	blob   json.RawMessage
}

// replicator drains the bounded replication queue. Its lifetime is the
// store's, not any request's: results outlive the sweep that computed
// them, so pushes run under a detached context that only Close cancels.
type replicator struct {
	store   *Store
	ch      chan replJob
	ctx     context.Context
	cancel  context.CancelFunc
	wg      sync.WaitGroup
	mu      sync.Mutex
	closed  bool
	pending int64
}

func newReplicator(s *Store, queueLen, workers int) *replicator {
	if queueLen <= 0 {
		queueLen = DefaultQueueLen
	}
	if workers <= 0 {
		workers = DefaultReplWorkers
	}
	//lint:ignore ctxplumb replication outlives the request that computed the result; Close interrupts explicitly
	ctx, cancel := context.WithCancel(context.Background())
	r := &replicator{
		store:  s,
		ch:     make(chan replJob, queueLen),
		ctx:    ctx,
		cancel: cancel,
	}
	r.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go r.work()
	}
	return r
}

// enqueue hands a push to the workers without ever blocking the caller:
// the simulation path funds replication with a channel send, nothing
// more. A full queue drops the push (counted), and sends after close are
// silently discarded — a sweep draining during shutdown loses only
// replica copies, never its own results.
func (r *replicator) enqueue(peerID, key string, blob json.RawMessage) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return
	}
	select {
	case r.ch <- replJob{peerID: peerID, key: key, blob: blob}:
		r.pending++
		r.store.met.Add(cReplEnqueued, 1)
	default:
		r.store.met.Add(cReplDropped, 1)
	}
}

// queued reports the jobs accepted but not yet settled (sent or
// abandoned).
func (r *replicator) queued() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.pending
}

func (r *replicator) settle() {
	r.mu.Lock()
	r.pending--
	r.mu.Unlock()
}

// work drains the queue until close. Each job gets replAttempts tries
// with capped exponential backoff; each attempt is bounded by the
// store's hop timeout.
func (r *replicator) work() {
	defer r.wg.Done()
	for {
		select {
		case <-r.ctx.Done():
			return
		case job := <-r.ch:
			r.push(job)
			r.settle()
		}
	}
}

func (r *replicator) push(job replJob) {
	peer, ok := r.store.peers[job.peerID]
	if !ok {
		r.store.met.Add(cReplFailed, 1)
		return
	}
	backoff := replBackoffBase
	for attempt := 0; attempt < replAttempts; attempt++ {
		if attempt > 0 {
			r.store.met.Add(cReplRetries, 1)
			select {
			case <-r.ctx.Done():
				r.store.met.Add(cReplFailed, 1)
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > replBackoffCap {
				backoff = replBackoffCap
			}
		}
		ctx, cancel := context.WithTimeout(r.ctx, r.store.hop)
		err := peer.StoreResult(ctx, job.key, job.blob)
		cancel()
		if err == nil {
			r.store.met.Add(cReplSent, 1)
			return
		}
		if r.ctx.Err() != nil {
			break // shutting down; stop burning attempts
		}
	}
	r.store.met.Add(cReplFailed, 1)
}

// close stops accepting work and interrupts the workers. Unsent jobs are
// abandoned without being counted as failed — shutdown is not a peer
// fault.
func (r *replicator) close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	r.mu.Unlock()
	r.cancel()
	r.wg.Wait()
}

package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"repro/internal/exp"
	"repro/internal/metrics"
	"repro/pkg/api"
)

// Tunable defaults; see Config.
const (
	// DefaultReplicas is the replica set size R: every key lives on its
	// ring owner plus one successor. R=2 survives any single node loss
	// without losing cached work, and the content-addressed store makes a
	// lost second copy merely a re-simulation, so buying more copies costs
	// more than it protects.
	DefaultReplicas = 2
	// DefaultHopTimeout bounds one remote fetch. Peer hops are an
	// optimization over local simulation (~10ms–10s depending on the
	// scenario); past two seconds the hop has lost its reason to exist.
	DefaultHopTimeout = 2 * time.Second
	// DefaultQueueLen bounds the async replication queue. At a few KiB per
	// report, 1024 pending pushes is a few MiB of memory and several
	// seconds of burst absorption; beyond that, dropping (and letting the
	// ring heal by fetch or re-simulation) beats unbounded growth.
	DefaultQueueLen = 1024
	// DefaultReplWorkers is how many goroutines drain the replication
	// queue. Pushes are tiny HTTP PUTs; two workers keep one slow peer
	// from serializing the whole queue behind it.
	DefaultReplWorkers = 2
)

// Counter slots for the store's metrics.Set, exported on /v1/metrics as
// api.ClusterStats.
const (
	cLocalHits = iota
	cRemoteHits
	cRemoteMisses
	cPeerErrors
	cMisses
	cHeals
	cReplEnqueued
	cReplSent
	cReplRetries
	cReplFailed
	cReplDropped
	cCounters
)

var counterNames = []string{
	"local_hits", "remote_hits", "remote_misses", "peer_errors", "misses",
	"heals", "repl_enqueued", "repl_sent", "repl_retries", "repl_failed",
	"repl_dropped",
}

// Config assembles a cluster Store. Self and Nodes are required (Self
// must name one of Nodes); everything else has a default.
type Config struct {
	// Self is this node's ID in Nodes.
	Self string
	// Nodes is the full static membership list, this node included.
	Nodes []Node
	// Local is the node's own durable tier (per-file store, pack store),
	// or nil for a memory-only node — replicas it receives then live only
	// in the result cache's memory tier.
	Local exp.ResultStore
	// VNodes is the virtual-node count per member (<= 0 selects
	// DefaultVirtualNodes).
	VNodes int
	// Replicas is the replica set size R (<= 0 selects DefaultReplicas;
	// clamped to the cluster size).
	Replicas int
	// HopTimeout bounds each remote fetch and each replication push
	// attempt (<= 0 selects DefaultHopTimeout).
	HopTimeout time.Duration
	// QueueLen bounds the replication queue (<= 0 selects DefaultQueueLen).
	QueueLen int
	// Workers is the replication worker count (<= 0 selects
	// DefaultReplWorkers).
	Workers int
	// Dial builds peer transports (nil selects the pkg/client dialer).
	// Tests inject in-process peers here.
	Dial DialFunc
}

// Store is the cluster-aware exp.ResultStore: reads fall through this
// node's local tier to the key's remote replica set and writes replicate
// asynchronously to that set. It degrades, never fails — any remote
// problem (partition, dead peer, timeout) turns a lookup into a miss,
// and a miss just means the engine simulates locally. Safe for
// concurrent use.
type Store struct {
	self     Node
	ring     *Ring
	local    exp.ResultStore
	peers    map[string]Peer // node ID → transport, self excluded
	replicas int
	hop      time.Duration
	met      *metrics.Set
	repl     *replicator
}

// New builds the cluster store and starts its replication workers. Call
// Close before tearing down the local store underneath it.
func New(cfg Config) (*Store, error) {
	ring, err := NewRing(cfg.Nodes, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	var self Node
	found := false
	for _, n := range ring.Nodes() {
		if n.ID == cfg.Self {
			self, found = n, true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %q is not in the node list", cfg.Self)
	}
	dial := cfg.Dial
	if dial == nil {
		dial = defaultDial
	}
	peers := make(map[string]Peer, ring.Len()-1)
	for _, n := range ring.Nodes() {
		if n.ID == self.ID {
			continue
		}
		p, err := dial(n)
		if err != nil {
			return nil, fmt.Errorf("cluster: dialing peer %s (%s): %w", n.ID, n.Addr, err)
		}
		peers[n.ID] = p
	}
	s := &Store{
		self:     self,
		ring:     ring,
		local:    cfg.Local,
		peers:    peers,
		replicas: cfg.Replicas,
		hop:      cfg.HopTimeout,
		met:      metrics.NewSet(counterNames...),
	}
	if s.replicas <= 0 {
		s.replicas = DefaultReplicas
	}
	if s.replicas > ring.Len() {
		s.replicas = ring.Len()
	}
	if s.hop <= 0 {
		s.hop = DefaultHopTimeout
	}
	s.repl = newReplicator(s, cfg.QueueLen, cfg.Workers)
	return s, nil
}

// Ring exposes the store's placement ring (cmd/impact-server logs the
// membership it resolved; tests assert placement).
func (s *Store) Ring() *Ring { return s.ring }

// Self returns this node's identity.
func (s *Store) Self() Node { return s.self }

// Local returns the wrapped local tier (nil for a memory-only node).
// The metrics handler unwraps through this so the pack/store sections
// keep reporting on the node's own backend.
func (s *Store) Local() exp.ResultStore { return s.local }

// Get implements exp.ResultStore: local tier first, then the key's
// remote replicas in ring order, then a miss — in which case the caller
// simulates the run itself. A fetched blob is healed into the local tier
// when this node is in the key's replica set, so the ring repairs itself
// read by read after a partition. Remote failures are counted, never
// returned: a partitioned peer can slow a request (one hop timeout per
// dead replica), but can never fail it.
func (s *Store) Get(ctx context.Context, key string) (json.RawMessage, bool) {
	if blob, ok := s.LocalGet(ctx, key); ok {
		s.met.Add(cLocalHits, 1)
		return blob, true
	}
	selfHolds := false
	for _, n := range s.ring.Replicas(key, s.replicas) {
		if n.ID == s.self.ID {
			selfHolds = true
			continue
		}
		blob, ok, err := s.fetch(ctx, n, key)
		if err != nil {
			s.met.Add(cPeerErrors, 1)
			continue
		}
		if !ok {
			s.met.Add(cRemoteMisses, 1)
			continue
		}
		s.met.Add(cRemoteHits, 1)
		if selfHolds && s.local != nil {
			s.local.Put(ctx, key, blob)
			s.met.Add(cHeals, 1)
		}
		return blob, true
	}
	s.met.Add(cMisses, 1)
	return nil, false
}

// fetch is one bounded peer hop.
func (s *Store) fetch(ctx context.Context, n Node, key string) (json.RawMessage, bool, error) {
	p, ok := s.peers[n.ID]
	if !ok {
		// Unreachable with a well-formed ring; fail as a peer error rather
		// than panicking in the serving path.
		return nil, false, fmt.Errorf("cluster: no transport for node %s", n.ID)
	}
	hopCtx, cancel := context.WithTimeout(ctx, s.hop)
	defer cancel()
	return p.FetchResult(hopCtx, key)
}

// Put implements exp.ResultStore: the blob lands in the local tier
// synchronously (the durability the caller already had without a
// cluster), then fans out asynchronously to the key's other replicas.
// The enqueue never blocks the simulation path: a full queue drops the
// push and counts it, and the ring heals later by fetch or
// re-simulation.
func (s *Store) Put(ctx context.Context, key string, blob json.RawMessage) {
	s.LocalPut(ctx, key, blob)
	for _, n := range s.ring.Replicas(key, s.replicas) {
		if n.ID == s.self.ID {
			continue
		}
		s.repl.enqueue(n.ID, key, blob)
	}
}

// LocalGet reads strictly from the node's own tier — no remote hops.
// This is the path behind the internal peer-fetch endpoint (a peer
// answering a peer must not recurse to a third node) and the first rung
// of Get's fallthrough.
func (s *Store) LocalGet(ctx context.Context, key string) (json.RawMessage, bool) {
	if s.local == nil {
		return nil, false
	}
	return s.local.Get(ctx, key)
}

// LocalPut writes strictly to the node's own tier — no replication.
// This is the path behind the internal peer replication endpoint: the
// sender already placed the copy by ring position, so the receiver
// fanning it out again would echo around the replica set forever.
func (s *Store) LocalPut(ctx context.Context, key string, blob json.RawMessage) {
	if s.local == nil {
		return
	}
	s.local.Put(ctx, key, blob)
}

// ClusterStats snapshots the store's counters for /v1/metrics.
func (s *Store) ClusterStats() api.ClusterStats {
	return api.ClusterStats{
		NodeID:          s.self.ID,
		Peers:           len(s.peers),
		LocalHits:       s.met.Value(cLocalHits),
		RemoteHits:      s.met.Value(cRemoteHits),
		RemoteMisses:    s.met.Value(cRemoteMisses),
		PeerErrors:      s.met.Value(cPeerErrors),
		Misses:          s.met.Value(cMisses),
		Heals:           s.met.Value(cHeals),
		ReplEnqueued:    s.met.Value(cReplEnqueued),
		ReplSent:        s.met.Value(cReplSent),
		ReplRetries:     s.met.Value(cReplRetries),
		ReplFailed:      s.met.Value(cReplFailed),
		ReplDroppedFull: s.met.Value(cReplDropped),
		ReplQueue:       s.repl.queued(),
	}
}

// Close stops the replication workers. Pending and in-flight pushes are
// abandoned, which is the async-replication contract: replicas are an
// optimization, and anything unreplicated heals later by peer fetch or
// re-simulation. Close before closing the local store underneath, so no
// replica write races a closed pack file.
func (s *Store) Close() {
	s.repl.close()
}

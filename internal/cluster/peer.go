package cluster

import (
	"context"
	"encoding/json"
	"time"

	"repro/pkg/client"
)

// Peer is the transport to one remote cluster node: fetch a result it
// holds locally, or hand it a replica copy. The production implementation
// is pkg/client (the same SDK external callers use); tests inject
// in-process fakes through Config.Dial to simulate partitions without
// binding sockets.
type Peer interface {
	// FetchResult returns the peer's locally-held bytes for key, a clean
	// miss (nil, false, nil) when the peer does not hold it, or an error
	// when the peer is unreachable.
	FetchResult(ctx context.Context, key string) (json.RawMessage, bool, error)
	// StoreResult hands the peer a replica copy to store locally.
	StoreResult(ctx context.Context, key string, blob json.RawMessage) error
}

// DialFunc builds the transport to one node. Called once per peer at
// store construction; the static membership list means there is nothing
// to re-dial later.
type DialFunc func(n Node) (Peer, error)

// defaultDial connects via pkg/client. The per-request timeout is left
// to the cluster store's per-hop context (the store owns the latency
// budget, and a fetch and a replication push deserve different bounds),
// and the retry budget is kept small with a tight backoff: a peer hop is
// an optimization over local simulation, so a flapping peer gets one
// quick second chance, not a patient courtship.
func defaultDial(n Node) (Peer, error) {
	return client.New(n.Addr,
		client.WithTimeout(0),
		client.WithRetry(1, 25*time.Millisecond),
		client.WithBackoffCap(250*time.Millisecond),
	)
}

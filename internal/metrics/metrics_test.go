package metrics

import (
	"sync"
	"testing"
)

// TestCounterSlots pins the slot contract: IDs index names in argument
// order and Add/Value round-trip.
func TestCounterSlots(t *testing.T) {
	s := NewSet("hits", "misses")
	const hits, misses CounterID = 0, 1
	s.Add(hits, 3)
	s.Add(misses, 1)
	s.Add(hits, 2)
	if got := s.Value(hits); got != 5 {
		t.Fatalf("hits = %d, want 5", got)
	}
	if got := s.Value(misses); got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
	if s.CounterName(hits) != "hits" || s.CounterName(misses) != "misses" {
		t.Fatal("counter names out of registration order")
	}
}

// TestCountersConcurrent checks that concurrent increments are not lost
// (run under -race in make race).
func TestCountersConcurrent(t *testing.T) {
	s := NewSet("n")
	h := s.AddHistogram("lat", []int64{10, 100})
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				s.Add(0, 1)
				s.Observe(h, int64(i%200))
			}
		}()
	}
	wg.Wait()
	if got := s.Value(0); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := s.Histogram(h).Count; got != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestHistogramBuckets pins bucket assignment: inclusive upper bounds and
// a trailing overflow bucket.
func TestHistogramBuckets(t *testing.T) {
	s := NewSet()
	h := s.AddHistogram("lat", []int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 5000} {
		s.Observe(h, v)
	}
	snap := s.Histogram(h)
	want := []int64{2, 2, 1, 1} // <=10, <=100, <=1000, overflow
	for i, w := range want {
		if snap.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, snap.Counts[i], w, snap.Counts)
		}
	}
	if snap.Count != 6 || snap.Sum != 5+10+11+100+500+5000 {
		t.Fatalf("count=%d sum=%d", snap.Count, snap.Sum)
	}
	if snap.Mean() != float64(snap.Sum)/6 {
		t.Fatalf("mean = %f", snap.Mean())
	}
}

// TestQuantile checks interpolation, clamping, and the overflow rule.
func TestQuantile(t *testing.T) {
	s := NewSet()
	h := s.AddHistogram("lat", []int64{100, 200, 400})
	var zero HistogramSnapshot
	if zero.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile nonzero")
	}
	// 100 samples spread evenly through the (100, 200] bucket.
	for i := 0; i < 100; i++ {
		s.Observe(h, 150)
	}
	snap := s.Histogram(h)
	p50 := snap.Quantile(0.5)
	if p50 <= 100 || p50 > 200 {
		t.Fatalf("p50 = %d, want within (100, 200]", p50)
	}
	// The p99 of a distribution living in one bucket stays in that bucket.
	if p99 := snap.Quantile(0.99); p99 <= 100 || p99 > 200 {
		t.Fatalf("p99 = %d, want within (100, 200]", p99)
	}
	// Overflow samples report the top bound rather than inventing a value.
	s.Observe(h, 10_000)
	for i := 0; i < 400; i++ {
		s.Observe(h, 10_000)
	}
	if got := s.Histogram(h).Quantile(0.99); got != 400 {
		t.Fatalf("overflow p99 = %d, want top bound 400", got)
	}
	// Out-of-range q values clamp instead of panicking.
	if snap.Quantile(-1) == 0 && snap.Count > 0 {
		t.Fatal("q<0 returned 0 for a non-empty histogram")
	}
	snap.Quantile(2)
}

// TestHistogramOverflowExposed pins the overflow edge: samples beyond the
// top bound are counted in an explicit Overflow field, so a consumer can
// tell "p99 = 400 because the data says so" apart from "p99 = 400 because
// the ladder tops out there".
func TestHistogramOverflowExposed(t *testing.T) {
	s := NewSet()
	h := s.AddHistogram("lat", []int64{100, 200, 400})
	s.Observe(h, 50)
	s.Observe(h, 300)
	snap := s.Histogram(h)
	if snap.Overflow != 0 {
		t.Fatalf("overflow = %d with all samples in range, want 0", snap.Overflow)
	}
	s.Observe(h, 401)
	s.Observe(h, 1<<40)
	snap = s.Histogram(h)
	if snap.Overflow != 2 {
		t.Fatalf("overflow = %d, want 2", snap.Overflow)
	}
	if snap.Overflow != snap.Counts[len(snap.Counts)-1] {
		t.Fatalf("Overflow %d disagrees with the overflow bucket %d", snap.Overflow, snap.Counts[len(snap.Counts)-1])
	}
	if snap.Count != 4 {
		t.Fatalf("count = %d, want overflow samples included", snap.Count)
	}
	// Overflow samples still report the top bound in quantiles.
	if got := snap.Quantile(1); got != 400 {
		t.Fatalf("max quantile = %d, want top bound 400", got)
	}
}

// TestHistogramNegativeClamp pins the other edge: negative observations
// (clock skew) clamp to zero — landing in the lowest bucket without
// dragging the sum negative — and are counted so the clamping is visible.
func TestHistogramNegativeClamp(t *testing.T) {
	s := NewSet()
	h := s.AddHistogram("lat", []int64{100, 200})
	s.Observe(h, -50)
	s.Observe(h, -1)
	s.Observe(h, 150)
	snap := s.Histogram(h)
	if snap.Negative != 2 {
		t.Fatalf("negative = %d, want 2", snap.Negative)
	}
	if snap.Counts[0] != 2 {
		t.Fatalf("lowest bucket = %d, want the clamped samples (2)", snap.Counts[0])
	}
	if snap.Count != 3 {
		t.Fatalf("count = %d, want clamped samples included", snap.Count)
	}
	if snap.Sum != 150 {
		t.Fatalf("sum = %d, want 150 (clamped samples contribute 0, not their negative value)", snap.Sum)
	}
	if snap.Mean() != 50 {
		t.Fatalf("mean = %f, want 50", snap.Mean())
	}
	// A histogram that never saw a negative sample reports zero.
	if s.Histogram(s.AddHistogram("clean", []int64{10})).Negative != 0 {
		t.Fatal("phantom negative count")
	}
}

// TestGroups pins the labeled-block addressing: (label, slot) pairs map
// to independent counters and each label owns its histogram.
func TestGroups(t *testing.T) {
	g := NewGroups([]string{"run", "figure"}, []string{"requests", "errors"}, "latency_ns", []int64{10, 100})
	g.Add(0, 0, 3) // run_requests
	g.Add(0, 1, 1) // run_errors
	g.Add(1, 0, 7) // figure_requests
	g.Observe(0, 50)
	g.Observe(1, 5)
	g.Observe(1, 5)
	if g.Value(0, 0) != 3 || g.Value(0, 1) != 1 || g.Value(1, 0) != 7 || g.Value(1, 1) != 0 {
		t.Fatalf("counter blocks crossed: %d %d %d %d", g.Value(0, 0), g.Value(0, 1), g.Value(1, 0), g.Value(1, 1))
	}
	if got := g.Histogram(0).Count; got != 1 {
		t.Fatalf("run histogram count = %d, want 1", got)
	}
	if got := g.Histogram(1).Count; got != 2 {
		t.Fatalf("figure histogram count = %d, want 2", got)
	}
	// Registered names follow the <label>_<suffix> convention.
	if g.set.CounterName(g.counter(1, 1)) != "figure_errors" {
		t.Fatalf("name = %q", g.set.CounterName(g.counter(1, 1)))
	}
}

// TestLatencyBounds pins the ladder: sorted, 1µs through 10s.
func TestLatencyBounds(t *testing.T) {
	b := LatencyBounds()
	if b[0] != 1_000 || b[len(b)-1] != 10_000_000_000 {
		t.Fatalf("ladder endpoints %d..%d", b[0], b[len(b)-1])
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, b)
		}
	}
}

// Package metrics provides lock-cheap runtime metrics for the serving
// layer: fixed-slot atomic counters and fixed-bucket latency histograms.
//
// The design mirrors stats.Counters' slot layout — a small enum of integer
// IDs registered at construction, then hot-path updates by array index with
// no hashing and no allocation — but where stats.Counters belongs to a
// single simulated entity, a metrics.Set is shared by every request-handling
// goroutine in a server, so each slot is a cache-line-padded atomic.
// Registration (NewSet, AddHistogram) must finish before the set is shared;
// after that Add and Observe are safe for unlimited concurrent use.
//
// internal/exp uses a Set for its sharded result-cache counters and its
// HTTP middleware; cmd/impact-bench uses one to aggregate client-side
// latency percentiles.
package metrics

import "sync/atomic"

// CounterID indexes a fixed counter slot registered via NewSet, in the
// name order passed at construction (the ID for names[i] is i).
type CounterID int

// HistogramID indexes a histogram registered via AddHistogram, in
// registration order.
type HistogramID int

// slot is one atomic counter padded out to a 64-byte cache line so that
// adjacent hot slots do not false-share under concurrent increments.
type slot struct {
	v atomic.Int64
	_ [56]byte
}

// Set is a fixed collection of atomic counters and histograms. The zero
// value is not usable; construct with NewSet.
type Set struct {
	counters     []slot
	counterNames []string
	hists        []*histogram
	histNames    []string
}

// NewSet returns a set with one counter slot per name, indexed in argument
// order. Histograms are added separately with AddHistogram; all
// registration must complete before the set is shared across goroutines.
func NewSet(counterNames ...string) *Set {
	return &Set{
		counters:     make([]slot, len(counterNames)),
		counterNames: append([]string(nil), counterNames...),
	}
}

// AddHistogram registers a histogram whose buckets are the given sorted
// inclusive upper bounds (plus an implicit overflow bucket), returning its
// ID in registration order. Not safe to call concurrently with Observe.
func (s *Set) AddHistogram(name string, bounds []int64) HistogramID {
	s.hists = append(s.hists, newHistogram(bounds))
	s.histNames = append(s.histNames, name)
	return HistogramID(len(s.hists) - 1)
}

// Add atomically adds delta to a counter slot. Hot path: one padded
// atomic add, no hashing, no allocation.
//
//impact:hotpath
func (s *Set) Add(id CounterID, delta int64) {
	s.counters[id].v.Add(delta)
}

// Value returns the current value of a counter slot.
func (s *Set) Value(id CounterID) int64 {
	return s.counters[id].v.Load()
}

// CounterName returns the name a counter slot was registered under.
func (s *Set) CounterName(id CounterID) string { return s.counterNames[id] }

// Observe records one sample in a histogram.
//
//impact:hotpath
func (s *Set) Observe(id HistogramID, v int64) {
	s.hists[id].observe(v)
}

// Histogram returns a point-in-time copy of a histogram's state. Slots are
// read individually, so a snapshot taken under concurrent writes is
// approximately — not transactionally — consistent, which is the standard
// trade for lock-free metrics.
func (s *Set) Histogram(id HistogramID) HistogramSnapshot {
	return s.hists[id].snapshot()
}

// HistogramName returns the name a histogram was registered under.
func (s *Set) HistogramName(id HistogramID) string { return s.histNames[id] }

// Groups is a labeled family of metric blocks: every label gets the same
// fixed block of counters (one per suffix, addressed by label index +
// slot index) plus one histogram. This is the shape both the server's
// per-route middleware and impact-bench's per-op accounting need, so the
// stride arithmetic and name registration live here once.
type Groups struct {
	set   *Set
	width int
	hists []HistogramID
}

// NewGroups registers len(labels)*len(counterSuffixes) counters named
// "<label>_<suffix>" plus one "<label>_<histSuffix>" histogram per label
// over the given bounds. Registration order fixes the addressing: the
// counter for (label i, slot j) is block i, offset j.
func NewGroups(labels, counterSuffixes []string, histSuffix string, bounds []int64) *Groups {
	names := make([]string, 0, len(labels)*len(counterSuffixes))
	for _, l := range labels {
		for _, c := range counterSuffixes {
			names = append(names, l+"_"+c)
		}
	}
	g := &Groups{set: NewSet(names...), width: len(counterSuffixes)}
	for _, l := range labels {
		g.hists = append(g.hists, g.set.AddHistogram(l+"_"+histSuffix, bounds))
	}
	return g
}

// counter maps (label, slot) to the underlying CounterID.
func (g *Groups) counter(label, slot int) CounterID {
	return CounterID(label*g.width + slot)
}

// Add atomically adds delta to one label's counter slot.
//
//impact:hotpath
func (g *Groups) Add(label, slot int, delta int64) {
	g.set.Add(g.counter(label, slot), delta)
}

// Value returns one label's counter slot.
func (g *Groups) Value(label, slot int) int64 {
	return g.set.Value(g.counter(label, slot))
}

// Observe records one sample in a label's histogram.
//
//impact:hotpath
func (g *Groups) Observe(label int, v int64) {
	g.set.Observe(g.hists[label], v)
}

// Histogram snapshots a label's histogram.
func (g *Groups) Histogram(label int) HistogramSnapshot {
	return g.set.Histogram(g.hists[label])
}

package metrics

import (
	"math"
	"sort"
)

// histogram is a fixed-bucket distribution: counts[i] holds samples with
// v <= bounds[i] (and above bounds[i-1]), counts[len(bounds)] is the
// overflow bucket. Bounds are fixed at construction, so observing is one
// binary search plus one padded atomic add.
type histogram struct {
	bounds   []int64
	counts   []slot
	sum      slot
	negative slot
}

// newHistogram builds a histogram over sorted inclusive upper bounds.
func newHistogram(bounds []int64) *histogram {
	return &histogram{
		bounds: append([]int64(nil), bounds...),
		counts: make([]slot, len(bounds)+1),
	}
}

// observe records one sample. Negative values (clock skew, upstream
// arithmetic underflow) are not real durations: they clamp to zero so the
// sum and the lowest bucket stay meaningful, and the clamp is counted so
// it is visible in snapshots rather than silently folded in.
func (h *histogram) observe(v int64) {
	if v < 0 {
		h.negative.v.Add(1)
		v = 0
	}
	i := sort.Search(len(h.bounds), func(i int) bool { return v <= h.bounds[i] })
	h.counts[i].v.Add(1)
	h.sum.v.Add(v)
}

// snapshot copies the current bucket counts.
func (h *histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds:   h.bounds,
		Counts:   make([]int64, len(h.counts)),
		Sum:      h.sum.v.Load(),
		Negative: h.negative.v.Load(),
	}
	for i := range h.counts {
		c := h.counts[i].v.Load()
		s.Counts[i] = c
		s.Count += c
	}
	s.Overflow = s.Counts[len(s.Counts)-1]
	return s
}

// HistogramSnapshot is a point-in-time copy of a histogram. Counts has one
// more entry than Bounds (the trailing overflow bucket, surfaced again as
// Overflow so consumers need not know the layout). Negative counts
// samples that arrived below zero and were clamped into the lowest bucket
// as zero; both edges are included in Count.
type HistogramSnapshot struct {
	Bounds   []int64
	Counts   []int64
	Count    int64
	Sum      int64
	Overflow int64
	Negative int64
}

// Mean returns the average observed value, or 0 with no samples.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation inside the bucket holding the target rank; samples in the
// overflow bucket are attributed to the highest bound (their true value
// is unknowable, but Overflow makes the attribution visible). Returns 0
// with no samples. Resolution is bounded by the bucket ladder — with the
// 1-2-5 LatencyBounds ladder estimates land within the enclosing bucket's
// span.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// Nearest-rank with ceil: p99 of 32 samples targets rank 32, so the
	// slowest sample is visible in the tail instead of truncated away.
	target := int64(math.Ceil(q * float64(s.Count)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		if cum+c < target {
			cum += c
			continue
		}
		if i >= len(s.Bounds) {
			break // overflow bucket
		}
		var lo int64
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		return lo + int64(float64(hi-lo)*float64(target-cum)/float64(c))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LatencyBounds returns the standard request-latency bucket ladder: a
// 1-2-5 progression from 1µs to 10s, in nanoseconds (22 buckets plus
// overflow). Wide enough for a cached JSON response and a full cold
// simulation sweep to land in meaningful buckets.
func LatencyBounds() []int64 {
	var bounds []int64
	for decade := int64(1_000); decade <= 1_000_000_000; decade *= 10 {
		for _, m := range []int64{1, 2, 5} {
			bounds = append(bounds, m*decade)
		}
	}
	return append(bounds, 10_000_000_000)
}

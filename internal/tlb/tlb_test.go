package tlb

import "testing"

func TestTLBHitMiss(t *testing.T) {
	tlb := New(Config{Entries: 16, Ways: 4, Latency: 1, PageBits: 12})
	if tlb.Lookup(0x1000) {
		t.Fatal("cold lookup hit")
	}
	if !tlb.Lookup(0x1abc) {
		t.Fatal("same-page lookup missed")
	}
	if tlb.Lookup(0x2000) {
		t.Fatal("different page hit")
	}
}

func TestTLBCapacityEviction(t *testing.T) {
	tlb := New(Config{Entries: 4, Ways: 4, Latency: 1, PageBits: 12})
	// One set of 4 ways: the fifth distinct page evicts the LRU.
	for p := uint64(0); p < 5; p++ {
		tlb.Lookup(p << 12)
	}
	if tlb.Lookup(0) {
		t.Fatal("LRU entry survived capacity eviction")
	}
	if !tlb.Lookup(4 << 12) {
		t.Fatal("most recent entry evicted")
	}
}

func TestTLBFlushAll(t *testing.T) {
	tlb := New(Config{Entries: 16, Ways: 4, Latency: 1, PageBits: 12})
	tlb.Lookup(0x5000)
	tlb.FlushAll()
	if tlb.Lookup(0x5000) {
		t.Fatal("entry survived FlushAll")
	}
}

func TestMMUWalkPath(t *testing.T) {
	var walks int
	mmu := DefaultMMU(func(_ int64, level int, _ uint64) int64 {
		walks++
		return 30
	})
	lat := mmu.Translate(0, 0xdead000, false)
	// Cold: L1 probe (1) + L2 probe (12) + 4 walk levels x 30.
	if want := int64(1 + 12 + 4*30); lat != want {
		t.Fatalf("cold translate latency = %d, want %d", lat, want)
	}
	if walks != 4 {
		t.Fatalf("walker invoked %d times, want 4", walks)
	}
	// Warm: L1 hit.
	if lat := mmu.Translate(100, 0xdead000, false); lat != 1 {
		t.Fatalf("warm translate latency = %d, want 1", lat)
	}
	if got := mmu.Counters().Get("walk"); got != 1 {
		t.Fatalf("walk counter = %d, want 1", got)
	}
}

func TestMMUL2Hit(t *testing.T) {
	mmu := DefaultMMU(func(_ int64, _ int, _ uint64) int64 { return 30 })
	// Fill the 64-entry L1 DTLB past capacity; early pages stay in L2.
	for p := uint64(0); p < 80; p++ {
		mmu.Translate(0, p<<12, false)
	}
	lat := mmu.Translate(0, 0, false)
	if want := int64(1 + 12); lat != want {
		t.Fatalf("L2-hit latency = %d, want %d", lat, want)
	}
}

func TestMMUHugePages(t *testing.T) {
	mmu := DefaultMMU(func(_ int64, _ int, _ uint64) int64 { return 30 })
	mmu.Translate(0, 0x200000, true)
	if lat := mmu.Translate(0, 0x2abcde, true); lat != 1 {
		t.Fatalf("huge-page warm translate = %d, want 1", lat)
	}
}

func TestMMUFlushAll(t *testing.T) {
	var walks int
	mmu := DefaultMMU(func(_ int64, _ int, _ uint64) int64 { walks++; return 30 })
	mmu.Translate(0, 0x7000, false)
	mmu.FlushAll()
	mmu.Translate(0, 0x7000, false)
	if walks != 8 {
		t.Fatalf("walker invoked %d times, want 8 (two full walks)", walks)
	}
}

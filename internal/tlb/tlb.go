// Package tlb models the paper's Table 2 MMU: a split L1 DTLB (4 KiB and
// 2 MiB pages), a unified L2 TLB, and a page-table walker whose memory
// accesses go to real (simulated) DRAM — making address translation both a
// latency component and a row-buffer noise source, exactly as in the
// paper's Sniper setup.
package tlb

import "repro/internal/stats"

// Fixed counter IDs for MMU statistics, in the slot order passed to
// stats.NewFixed in DefaultMMU.
const (
	CounterL1Hit stats.CounterID = iota
	CounterL2Hit
	CounterWalk
)

// Config describes one TLB level.
type Config struct {
	Entries int
	Ways    int
	// Latency is the lookup cost in cycles.
	Latency int64
	// PageBits is log2 of the page size covered (12 for 4 KiB, 21 for 2 MiB).
	PageBits uint
}

type tlbEntry struct {
	vpn   uint64
	valid bool
	lru   int64
}

// TLB is a set-associative translation cache keyed by virtual page number.
type TLB struct {
	cfg   Config
	sets  int
	lines [][]tlbEntry
	tick  int64
}

// New builds a TLB. Entries must be divisible by Ways and sets must be a
// power of two; the Table 2 L2 TLB (1536 entries, 12-way, 128 sets)
// satisfies this.
func New(cfg Config) *TLB {
	sets := cfg.Entries / cfg.Ways
	if sets < 1 {
		sets = 1
	}
	lines := make([][]tlbEntry, sets)
	for i := range lines {
		lines[i] = make([]tlbEntry, cfg.Ways)
	}
	return &TLB{cfg: cfg, sets: sets, lines: lines}
}

// Lookup probes the TLB for the page containing vaddr, inserting on miss.
//
//impact:hotpath
func (t *TLB) Lookup(vaddr uint64) bool {
	t.tick++
	vpn := vaddr >> t.cfg.PageBits
	set := int(vpn % uint64(t.sets))
	ways := t.lines[set]
	for i := range ways {
		if ways[i].valid && ways[i].vpn == vpn {
			ways[i].lru = t.tick
			return true
		}
	}
	victim := 0
	for i := 1; i < len(ways); i++ {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	ways[victim] = tlbEntry{vpn: vpn, valid: true, lru: t.tick}
	return false
}

// Latency returns the lookup cost.
func (t *TLB) Latency() int64 { return t.cfg.Latency }

// FlushAll empties the TLB.
func (t *TLB) FlushAll() {
	for s := range t.lines {
		for w := range t.lines[s] {
			t.lines[s][w] = tlbEntry{}
		}
	}
}

// Reset returns the TLB to its just-constructed state: entries cleared and
// the LRU tick restarted. TLBs are small (at most 1536 entries), so a plain
// clear is cheap enough not to need the cache package's epoch trick.
func (t *TLB) Reset() {
	t.FlushAll()
	t.tick = 0
}

// Walker performs the memory accesses of a page-table walk. The MMU calls
// it once per walk level; implementations route the access to the memory
// system so walks disturb DRAM state.
type Walker func(now int64, level int, vaddr uint64) int64

// MMU combines the TLB hierarchy with a page-table walker.
type MMU struct {
	dtlb4k *TLB
	dtlb2m *TLB
	stlb   *TLB
	walker Walker
	// WalkLevels is the number of page-table levels touched on a full
	// walk (4 for x86-64).
	WalkLevels int
	counters   *stats.Counters
}

// DefaultMMU builds the Table 2 MMU: 64-entry 4-way 1-cycle L1 DTLB (4 KiB),
// 32-entry 4-way 1-cycle L1 DTLB (2 MiB), 1536-entry 12-way 12-cycle L2 TLB.
func DefaultMMU(walker Walker) *MMU {
	return &MMU{
		dtlb4k:     New(Config{Entries: 64, Ways: 4, Latency: 1, PageBits: 12}),
		dtlb2m:     New(Config{Entries: 32, Ways: 4, Latency: 1, PageBits: 21}),
		stlb:       New(Config{Entries: 1536, Ways: 12, Latency: 12, PageBits: 12}),
		walker:     walker,
		WalkLevels: 4,
		counters:   stats.NewFixed("l1_hit", "l2_hit", "walk"),
	}
}

// Counters exposes hit/miss/walk statistics.
func (m *MMU) Counters() *stats.Counters { return m.counters }

// Translate returns the address-translation latency for vaddr. huge selects
// the 2 MiB page path. On an L1 and L2 TLB miss the walker is invoked for
// each page-table level, and those accesses hit DRAM.
//
//impact:hotpath
func (m *MMU) Translate(now int64, vaddr uint64, huge bool) int64 {
	l1 := m.dtlb4k
	if huge {
		l1 = m.dtlb2m
	}
	if l1.Lookup(vaddr) {
		m.counters.Add(CounterL1Hit, 1)
		return l1.Latency()
	}
	lat := l1.Latency()
	if m.stlb.Lookup(vaddr) {
		m.counters.Add(CounterL2Hit, 1)
		return lat + m.stlb.Latency()
	}
	lat += m.stlb.Latency()
	m.counters.Add(CounterWalk, 1)
	if m.walker != nil {
		for level := 0; level < m.WalkLevels; level++ {
			lat += m.walker(now+lat, level, vaddr)
		}
	}
	return lat
}

// FlushAll empties all TLB levels.
func (m *MMU) FlushAll() {
	m.dtlb4k.FlushAll()
	m.dtlb2m.FlushAll()
	m.stlb.FlushAll()
}

// Reset returns the MMU to its just-constructed state: every TLB level
// cleared with LRU ticks restarted, and all counters zeroed. The walker is
// retained — it closes over the owning machine's memory system, which the
// machine resets itself.
func (m *MMU) Reset() {
	m.dtlb4k.Reset()
	m.dtlb2m.Reset()
	m.stlb.Reset()
	m.counters.Reset()
}

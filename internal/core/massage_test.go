package core

import (
	"errors"
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

func TestMassageFindsColocatedPairs(t *testing.T) {
	for _, scheme := range []dram.MappingScheme{dram.MapRowInterleaved, dram.MapBankXOR} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			cfg := sim.DefaultConfig()
			cfg.Noise.EventsPerMCycle = 0
			cfg.Mapping = scheme
			m, err := sim.New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			res, err := MassageMemory(m, m.Core(0), 8)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Pairs) != 8 {
				t.Fatalf("pairs = %d, want 8", len(res.Pairs))
			}
			if err := VerifyColocation(m, res); err != nil {
				t.Fatalf("timing-discovered pairs wrong: %v", err)
			}
			if res.ProbeCount == 0 || res.Cycles == 0 {
				t.Fatal("massaging cost nothing; accounting broken")
			}
		})
	}
}

func TestMassageInputValidation(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := MassageMemory(m, m.Core(0), 0); err == nil {
		t.Error("zero banks accepted")
	}
	if _, err := MassageMemory(m, m.Core(0), 1000); err == nil {
		t.Error("more banks than the device has accepted")
	}
}

func TestMassageFailsUnderConstantTime(t *testing.T) {
	// With the CTD defense, timing carries no bank information; the
	// search must fail rather than return bogus pairs.
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	cfg.Mem.Defense = memctrl.DefenseConstantTime
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = MassageMemory(m, m.Core(0), 8)
	if !errors.Is(err, ErrMassageFailed) {
		t.Fatalf("massaging under CTD returned %v, want ErrMassageFailed", err)
	}
}

package core

import (
	"repro/internal/code"
	"repro/internal/sim"
)

// ReliableResult combines the coded-transmission statistics with the
// underlying channel's timing.
type ReliableResult struct {
	// Raw is the underlying channel result for the coded bit stream.
	Raw Result
	// Coded carries correction statistics from the FEC layer.
	Coded code.ReliableResult
	// GoodputMbps is corrected data bits per second: the useful rate
	// after the 7/4 coding overhead.
	GoodputMbps float64
}

// RunReliable transmits data bits over any covert channel under the
// Hamming(7,4)+interleaving layer of internal/code — the practical framing
// an attacker deploys so that residual channel noise (prefetchers, page
// walks, refresh) does not corrupt the exfiltrated payload.
func RunReliable(
	m *sim.Machine,
	data []bool,
	opt Options,
	run func(*sim.Machine, []bool, Options) (Result, error),
) (ReliableResult, error) {
	var raw Result
	coded, err := code.SendReliable(func(bits []bool) ([]bool, error) {
		var err error
		raw, err = run(m, bits, opt)
		if err != nil {
			return nil, err
		}
		return raw.Decoded, nil
	}, data)
	if err != nil {
		return ReliableResult{}, err
	}
	good := int64(len(data) - coded.ResidualErrors)
	return ReliableResult{
		Raw:         raw,
		Coded:       coded,
		GoodputMbps: sim.ThroughputMbps(good, raw.Cycles),
	}, nil
}

package core

import (
	"repro/internal/sim"
)

// Row indices used by the covert channels. Sender and receiver co-locate
// data in the same banks via memory massaging (Machine.AddrFor) but use
// distinct rows, so a sender activation forces a row-buffer conflict against
// the receiver's initialized row.
const (
	receiverInitRow = 1000
	senderRow       = 2000
	receiverSrcRow  = 3000
	receiverDstRow  = 3001
	senderSrcRow    = 4000
	senderDstRow    = 4001
)

const cacheLineBytes = 64

// RunPnM executes the IMPACT-PnM covert channel of Section 4.1 (Listing 1):
// the sender encodes each bit of a batch as the presence or absence of a
// row-buffer conflict in one DRAM bank, created with fire-and-forget
// PIM-enabled instructions; the receiver decodes by timing synchronous PEIs
// against its initialized rows. Core 0 is the sender, core 1 the receiver.
func RunPnM(m *sim.Machine, msg []bool, opt Options) (Result, error) {
	res := Result{Channel: "IMPACT-PnM"}
	banks := opt.banksOrDefault(m)
	threshold := opt.Threshold
	if threshold == 0 {
		threshold = DefaultThresholdCycles
	}
	sender, receiver := m.Core(0), m.Core(1)
	if sender == nil || receiver == nil {
		return Result{}, ErrProtocol
	}

	sent := sim.NewSemaphore(m)
	acked := sim.NewSemaphore(m)
	colsPerRow := m.Config().DRAM.RowBytes / cacheLineBytes

	// Step 1 (Listing 1 line 2): the receiver initializes each bank by
	// executing a PEI against its row, pulling it into the row buffer.
	for _, bank := range banks {
		addr := m.AddrFor(bank, receiverInitRow, 0)
		if _, err := receiver.PEIAccess(addr); err != nil {
			return Result{}, err
		}
	}
	// The sender does not start before initialization completes.
	sender.AdvanceTo(receiver.Now())
	start := receiver.Now()

	decoded := make([]bool, 0, len(msg))
	batch := 0
	for off := 0; off < len(msg); off += len(banks) {
		end := off + len(banks)
		if end > len(msg) {
			end = len(msg)
		}
		bits := msg[off:end]
		// Fresh cache line per batch defeats the PEI locality monitor
		// (Section 4.1: "the receiver accesses the next cache line in
		// the initialized row"); batch 0 starts one line past the
		// initialization access, and past the end of a row the attack
		// moves to the next row.
		col := ((batch + 1) % colsPerRow) * cacheLineBytes
		rowBump := int64((batch + 1) / colsPerRow)

		// Step 2: the sender transmits the batch, one bank per bit.
		sBatch := sender.Now()
		for i, bit := range bits {
			sender.Advance(m.Config().Costs.SenderComputeCost)
			if bit {
				addr := m.AddrFor(banks[i], senderRow+rowBump, col)
				if _, err := sender.PEIActivate(addr); err != nil {
					return Result{}, err
				}
			}
			sender.LoopTick()
		}
		sender.Fence() // Listing 1 line 17
		res.SenderCycles += sender.Now() - sBatch
		sent.Post(sender)

		// Step 3: the receiver probes each bank and thresholds the
		// PEI latency.
		if !sent.Wait(receiver) {
			return Result{}, ErrProtocol
		}
		rBatch := receiver.Now()
		for i := range bits {
			t0 := receiver.Rdtscp()
			addr := m.AddrFor(banks[i], receiverInitRow+rowBump, col)
			if _, err := receiver.PEIAccess(addr); err != nil {
				return Result{}, err
			}
			t1 := receiver.Rdtscp()
			lat := opt.filterMaintenance(t1-t0, threshold)
			if opt.RecordLatencies {
				res.Latencies = append(res.Latencies, lat)
			}
			decoded = append(decoded, lat > threshold)
			receiver.Advance(m.Config().Costs.DecodeCost)
			receiver.LoopTick()
		}
		receiver.Fence() // Listing 1 line 32
		res.ReceiverCycles += receiver.Now() - rBatch
		acked.Post(receiver)
		if !acked.Wait(sender) {
			return Result{}, ErrProtocol
		}
		batch++
		m.AdvanceNoise(receiver.Now())
	}

	res.finalize(msg, decoded, receiver.Now()-start)
	return res, nil
}

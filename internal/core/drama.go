package core

import (
	"repro/internal/sim"
)

// calibrate measures the channel's empty-vs-conflict latency profile with
// two training probes and returns the midpoint threshold — the offline
// calibration step a real attacker performs before transmitting. probe runs
// one timed receiver measurement against the given bank; disturb opens a
// conflicting row in that bank.
func calibrate(
	m *sim.Machine,
	bank int,
	disturb func(bank int),
	probe func(bank int) (int64, error),
) (int64, error) {
	// Warm up TLBs and page-table caches so the training probes measure
	// the steady-state path, not first-touch translation misses.
	for i := 0; i < 2; i++ {
		if _, err := probe(bank); err != nil {
			return 0, err
		}
	}
	// Quiet probe: bank precharged (or holding the probe row).
	empty, err := probe(bank)
	if err != nil {
		return 0, err
	}
	// Disturbed probe: another row was opened since.
	disturb(bank)
	conflict, err := probe(bank)
	if err != nil {
		return 0, err
	}
	if conflict <= empty {
		// Degenerate (e.g. constant-time defense active): fall back to
		// the paper's threshold so the attack still runs — and fails
		// honestly.
		return DefaultThresholdCycles, nil
	}
	// Bias toward the quiet latency: the training conflict includes a tRAS
	// stall (the disturbance happened moments before the probe) that
	// steady-state conflicts do not pay.
	return empty + (conflict-empty)/4, nil
}

// warmup runs the per-bank probe and disturb paths once before timing
// starts, mirroring the paper's Section 5.2.1 warm-up that avoids compulsory
// TLB and page-table misses during measurement. The sender's warm-up runs
// first so the receiver's pass leaves its own rows in the row buffers.
func warmup(banks []int, senderTouch, receiverProbe func(bank int)) {
	for _, b := range banks {
		senderTouch(b)
	}
	for _, b := range banks {
		receiverProbe(b)
	}
}

// RunDRAMAClflush executes the DRAMA row-buffer covert channel using clflush
// to bypass the cache hierarchy (Pessl et al., USENIX Security'16; the
// paper's strongest prior-work baseline). Each bit costs both parties a
// flush and an uncached reload, and the flush path grows with LLC size —
// the effect Figures 2 and 9 quantify.
func RunDRAMAClflush(m *sim.Machine, msg []bool, opt Options) (Result, error) {
	res := Result{Channel: "DRAMA-clflush"}
	banks := opt.banksOrDefault(m)
	sender, receiver := m.Core(0), m.Core(1)
	if sender == nil || receiver == nil {
		return Result{}, ErrProtocol
	}

	recvAddr := func(bank int) uint64 { return m.AddrFor(bank, receiverInitRow, 0) }
	sendAddr := func(bank int) uint64 { return m.AddrFor(bank, senderRow, 0) }

	warmup(banks,
		func(b int) { sender.Flush(sendAddr(b)); sender.Load(sendAddr(b), 0x200) },
		func(b int) { receiver.Flush(recvAddr(b)); receiver.Load(recvAddr(b), 0x100) })

	threshold := opt.Threshold
	if threshold == 0 {
		var err error
		threshold, err = calibrate(m, banks[0],
			func(bank int) {
				_, _ = m.Device().Activate(receiver.Now(), bank, senderRow)
			},
			func(bank int) (int64, error) {
				receiver.Flush(recvAddr(bank))
				t0 := receiver.Rdtscp()
				receiver.Load(recvAddr(bank), 0x100)
				return receiver.Rdtscp() - t0, nil
			})
		if err != nil {
			return Result{}, err
		}
	}

	sent := sim.NewSemaphore(m)
	acked := sim.NewSemaphore(m)
	sender.AdvanceTo(receiver.Now())
	start := receiver.Now()

	decoded := make([]bool, 0, len(msg))
	for off := 0; off < len(msg); off += len(banks) {
		end := off + len(banks)
		if end > len(msg) {
			end = len(msg)
		}
		bits := msg[off:end]

		sBatch := sender.Now()
		for i, bit := range bits {
			sender.Advance(m.Config().Costs.SenderComputeCost)
			if bit {
				// Flush then reload: the reload goes to DRAM and
				// drags the sender's row into the row buffer.
				sender.Flush(sendAddr(banks[i]))
				sender.Load(sendAddr(banks[i]), 0x200)
			}
			sender.LoopTick()
		}
		res.SenderCycles += sender.Now() - sBatch
		sent.Post(sender)

		if !sent.Wait(receiver) {
			return Result{}, ErrProtocol
		}
		rBatch := receiver.Now()
		for i := range bits {
			// Evict the receiver's line so the timed reload reaches
			// DRAM, then measure it.
			receiver.Flush(recvAddr(banks[i]))
			t0 := receiver.Rdtscp()
			receiver.Load(recvAddr(banks[i]), 0x100)
			t1 := receiver.Rdtscp()
			lat := t1 - t0
			if opt.RecordLatencies {
				res.Latencies = append(res.Latencies, lat)
			}
			decoded = append(decoded, lat > threshold)
			receiver.Advance(m.Config().Costs.DecodeCost)
			receiver.LoopTick()
		}
		res.ReceiverCycles += receiver.Now() - rBatch
		acked.Post(receiver)
		if !acked.Wait(sender) {
			return Result{}, ErrProtocol
		}
		m.AdvanceNoise(receiver.Now())
	}

	res.finalize(msg, decoded, receiver.Now()-start)
	return res, nil
}

// RunDRAMAEviction executes the DRAMA covert channel using cache eviction
// sets instead of clflush (Liu et al.'s eviction-set technique). The channel
// uses half the banks and builds eviction sets from addresses mapping to the
// other half, so the eviction traffic does not trample the channel's own row
// state — a luxury the attacker pays for with many more memory requests,
// which is exactly why the paper finds this baseline slowest.
func RunDRAMAEviction(m *sim.Machine, msg []bool, opt Options) (Result, error) {
	res := Result{Channel: "DRAMA-eviction"}
	all := opt.banksOrDefault(m)
	banks := all
	if len(all) > 1 {
		banks = all[:(len(all)+1)/2]
	}
	channelBanks := make(map[int]bool, len(banks))
	for _, b := range banks {
		channelBanks[b] = true
	}
	sender, receiver := m.Core(0), m.Core(1)
	if sender == nil || receiver == nil {
		return Result{}, ErrProtocol
	}

	recvAddr := func(bank int) uint64 { return m.AddrFor(bank, receiverInitRow, 0) }
	sendAddr := func(bank int) uint64 { return m.AddrFor(bank, senderRow, 0) }

	ways := m.Config().LLCWays
	mlp := m.Config().Costs.EvictionMLP
	// Per-address eviction sets, filtered off the channel banks so the
	// eviction traffic does not trample the encoded row-buffer states.
	evRecv := make(map[int][]uint64, len(banks))
	evSend := make(map[int][]uint64, len(banks))
	for _, bank := range banks {
		evRecv[bank] = buildFilteredEvictionSet(m, receiver, recvAddr(bank), ways, channelBanks)
		evSend[bank] = buildFilteredEvictionSet(m, sender, sendAddr(bank), ways, channelBanks)
	}
	evict := func(c *sim.Core, set []uint64) {
		for _, a := range set {
			c.LoadOverlapped(a, 0x300, mlp)
		}
	}

	warmup(banks,
		func(b int) { evict(sender, evSend[b]); sender.Load(sendAddr(b), 0x200) },
		func(b int) { evict(receiver, evRecv[b]); receiver.Load(recvAddr(b), 0x100) })

	threshold := opt.Threshold
	if threshold == 0 {
		var err error
		threshold, err = calibrate(m, banks[0],
			func(bank int) {
				_, _ = m.Device().Activate(receiver.Now(), bank, senderRow)
			},
			func(bank int) (int64, error) {
				evict(receiver, evRecv[bank])
				t0 := receiver.Rdtscp()
				receiver.Load(recvAddr(bank), 0x100)
				return receiver.Rdtscp() - t0, nil
			})
		if err != nil {
			return Result{}, err
		}
	}

	sent := sim.NewSemaphore(m)
	acked := sim.NewSemaphore(m)
	sender.AdvanceTo(receiver.Now())
	start := receiver.Now()

	decoded := make([]bool, 0, len(msg))
	for off := 0; off < len(msg); off += len(banks) {
		end := off + len(banks)
		if end > len(msg) {
			end = len(msg)
		}
		bits := msg[off:end]

		sBatch := sender.Now()
		for i, bit := range bits {
			sender.Advance(m.Config().Costs.SenderComputeCost)
			if bit {
				evict(sender, evSend[banks[i]])
				sender.Load(sendAddr(banks[i]), 0x200)
			}
			sender.LoopTick()
		}
		res.SenderCycles += sender.Now() - sBatch
		sent.Post(sender)

		if !sent.Wait(receiver) {
			return Result{}, ErrProtocol
		}
		rBatch := receiver.Now()
		for i := range bits {
			evict(receiver, evRecv[banks[i]])
			t0 := receiver.Rdtscp()
			receiver.Load(recvAddr(banks[i]), 0x100)
			t1 := receiver.Rdtscp()
			lat := t1 - t0
			if opt.RecordLatencies {
				res.Latencies = append(res.Latencies, lat)
			}
			decoded = append(decoded, lat > threshold)
			receiver.Advance(m.Config().Costs.DecodeCost)
			receiver.LoopTick()
		}
		res.ReceiverCycles += receiver.Now() - rBatch
		acked.Post(receiver)
		if !acked.Wait(sender) {
			return Result{}, ErrProtocol
		}
		m.AdvanceNoise(receiver.Now())
	}

	res.finalize(msg, decoded, receiver.Now()-start)
	return res, nil
}

// buildFilteredEvictionSet returns n addresses congruent with target in the
// LLC but mapped to banks outside the channel set, so eviction traffic does
// not corrupt the row-buffer states the channel encodes in.
func buildFilteredEvictionSet(m *sim.Machine, c *sim.Core, target uint64, n int, exclude map[int]bool) []uint64 {
	candidates := c.Hierarchy().EvictionSet(target, n*len(exclude)*4+n)
	out := make([]uint64, 0, n)
	for _, a := range candidates {
		if exclude[m.Mapper().FlatBankOf(a)] {
			continue
		}
		out = append(out, a)
		if len(out) == n {
			break
		}
	}
	// If filtering starved the set (tiny LLCs), top up with unfiltered
	// candidates; the attack degrades, which is realistic.
	for i := 0; len(out) < n && i < len(candidates); i++ {
		out = append(out, candidates[i])
	}
	return out
}

package core

import (
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

func TestReliableTransmissionOverNoisyMachine(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 250
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := RandomMessage(2048, 17)
	res, err := RunReliable(m, data, Options{}, RunPnM)
	if err != nil {
		t.Fatal(err)
	}
	if res.Raw.ErrorRate == 0 {
		t.Fatal("noisy machine produced no raw errors; test is vacuous")
	}
	residual := float64(res.Coded.ResidualErrors) / float64(len(data))
	if residual >= res.Raw.ErrorRate/2 {
		t.Fatalf("coding did not help: residual %.4f vs raw %.4f", residual, res.Raw.ErrorRate)
	}
	if res.GoodputMbps <= 0 || res.GoodputMbps >= res.Raw.ThroughputMbps {
		t.Fatalf("goodput %.2f must be positive and below raw %.2f (7/4 overhead)",
			res.GoodputMbps, res.Raw.ThroughputMbps)
	}
}

func TestRFMStallsAreFilterable(t *testing.T) {
	// Section 8.4: RowHammer-mitigation stalls are far larger than a
	// row-buffer conflict and can be filtered out by the receiver.
	build := func() *sim.Machine {
		cfg := sim.DefaultConfig()
		cfg.Noise.EventsPerMCycle = 0
		cfg.DRAM.Maintenance = dram.DDR5RFM()
		m, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return m
	}
	msg := RandomMessage(2048, 18)

	unfiltered, err := RunPnM(build(), msg, Options{RecordLatencies: true})
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := RunPnM(build(), msg, Options{
		MaintenanceStall: dram.DDR5RFM().MitigationPenalty,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The preventive actions are visible as latency spikes far above any
	// row-buffer conflict — the paper's observation that RFM stalls are
	// distinguishable from the signal.
	var spike int64
	for _, lat := range unfiltered.Latencies {
		if lat > spike {
			spike = lat
		}
	}
	if spike < dram.DDR5RFM().MitigationPenalty {
		t.Fatalf("no RFM stall visible in receiver latencies (max %d)", spike)
	}
	// Because only conflict probes trigger activations, the stalls land on
	// bits that already decode as 1 — the channel tolerates RFM, and the
	// subtraction filter must never make things worse.
	if filtered.ErrorRate > unfiltered.ErrorRate+0.005 {
		t.Fatalf("filter hurt decoding: %.2f%% vs %.2f%%",
			filtered.ErrorRate*100, unfiltered.ErrorRate*100)
	}
	// The end-to-end answer to maintenance noise is the coding layer.
	coded, err := RunReliable(build(), RandomMessage(1024, 23), Options{
		MaintenanceStall: dram.DDR5RFM().MitigationPenalty,
	}, RunPnM)
	if err != nil {
		t.Fatal(err)
	}
	if coded.Coded.ResidualErrors > 2 {
		t.Fatalf("coded transmission under RFM left %d residual errors", coded.Coded.ResidualErrors)
	}
}

func TestRefreshKeepsChannelAlive(t *testing.T) {
	// Periodic refresh adds rare large stalls and closes rows, but the
	// channel survives with a modest error rate.
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	cfg.DRAM.Maintenance = dram.DDR4Refresh()
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPnM(m, RandomMessage(2048, 19), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.15 {
		t.Fatalf("refresh error rate %.1f%% — channel should survive", res.ErrorRate*100)
	}
	if res.ThroughputMbps < 5 {
		t.Fatalf("refresh throughput %.2f Mb/s too low", res.ThroughputMbps)
	}
}

func TestAdaptiveAttackerThreadsACTMild(t *testing.T) {
	mem := memctrl.DefaultConfig()
	mem.Defense = memctrl.DefenseAdaptive
	mem.ACT = memctrl.ACTMild()
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	cfg.Mem = mem
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPnMAdaptive(m, RandomMessage(1024, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.05 {
		t.Fatalf("adaptive attacker error %.1f%% under ACT-Mild", res.ErrorRate*100)
	}
	// Threading between Mild's short penalties costs roughly one idle
	// epoch per batch, so the adaptive attacker retains about half the
	// undefended rate with a clean error rate (the plain attacker under
	// Mild keeps ~90% but eats padded probes; both circumvent the
	// defense, matching the paper's "cannot reduce the throughput").
	if res.EffectiveThroughputMbps < 3 {
		t.Fatalf("adaptive attacker throughput %.2f Mb/s under ACT-Mild; should retain meaningful rate",
			res.EffectiveThroughputMbps)
	}
}

func TestAdaptiveAttackerStarvedByACTAggressive(t *testing.T) {
	mem := memctrl.DefaultConfig()
	mem.Defense = memctrl.DefenseAdaptive
	mem.ACT = memctrl.ACTAggressive()
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	cfg.Mem = mem
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPnMAdaptive(m, RandomMessage(512, 20), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Waiting out 4000-epoch penalties costs so much time that effective
	// throughput collapses even when decoded bits are correct.
	if res.EffectiveThroughputMbps > 1.0 {
		t.Fatalf("adaptive attacker sustained %.2f Mb/s under ACT-Aggressive",
			res.EffectiveThroughputMbps)
	}
}

func TestBankScalingRaisesPuMThroughput(t *testing.T) {
	// Section 8.4: newer DRAM generations have more banks, and IMPACT's
	// covert throughput grows with the available parallelism.
	run := func(banks int) Result {
		cfg := sim.DefaultConfig()
		cfg.Noise.EventsPerMCycle = 0
		cfg.DRAM = cfg.DRAM.WithBanks(banks)
		m, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		set := make([]int, banks)
		for i := range set {
			set[i] = i
		}
		if len(set) > 64 {
			set = set[:64]
		}
		res, err := RunPuM(m, RandomMessage(2048, 21), Options{Banks: set})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	narrow := run(16)
	wide := run(64)
	// The sender's masked RowClone amortizes fully, but the receiver
	// still probes banks serially, so the gain is the per-batch overhead
	// share (~10%), not linear in banks.
	if wide.ThroughputMbps <= narrow.ThroughputMbps*1.05 {
		t.Fatalf("64-bank throughput %.2f not above 16-bank %.2f",
			wide.ThroughputMbps, narrow.ThroughputMbps)
	}
}

func TestMPRDefenseStopsColocation(t *testing.T) {
	// Bank partitioning denies the co-location premise outright: the
	// sender cannot touch the receiver's banks.
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	cfg.Mem.Defense = memctrl.DefensePartition
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < 16; b++ {
		if err := m.Controller().SetOwner(b, 1); err != nil { // receiver owns everything
			t.Fatal(err)
		}
	}
	_, err = RunPnM(m, RandomMessage(64, 22), Options{})
	if err == nil {
		t.Fatal("PnM channel ran despite bank partitioning")
	}
}

func TestPipelinedChannelOverlapsRoutines(t *testing.T) {
	msg := RandomMessage(2048, 30)
	serial, err := RunPnM(quietMachine(t), msg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := RunPnMPipelined(quietMachine(t), msg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if pipelined.ErrorRate > 0.02 {
		t.Fatalf("pipelined error rate %.2f%%", pipelined.ErrorRate*100)
	}
	// Overlapping sender and receiver must beat strict alternation.
	if pipelined.ThroughputMbps <= serial.ThroughputMbps*1.2 {
		t.Fatalf("pipelining gained nothing: %.2f vs %.2f Mb/s",
			pipelined.ThroughputMbps, serial.ThroughputMbps)
	}
}

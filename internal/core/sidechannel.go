package core

import (
	"fmt"
	"math"

	"repro/internal/genomics"
	"repro/internal/sim"
)

// attackerProbeRow is the attacker's own co-located row in each bank,
// distinct from the hash table rows so a probe that finds the attacker's row
// still latched means "no victim activity".
const attackerProbeRow = 50

// SideChannelOptions configures the Section 4.3 attack.
type SideChannelOptions struct {
	// Sweeps is how many times the attacker scans every bank.
	Sweeps int
	// Threshold is the conflict decode threshold (0 = paper's 150).
	Threshold int64
}

// SideChannelResult reports the genomic read-mapping side channel.
type SideChannelResult struct {
	// Banks the attacker probed.
	Banks int
	// Probes and Correct count binary activity inferences and how many
	// matched the victim's ground-truth accesses.
	Probes  int64
	Correct int64
	// ThroughputMbps counts correctly leaked bits per second (Section
	// 5.2.3: throughput is measured on successfully leaked data only).
	ThroughputMbps float64
	// ErrorRate is the fraction of wrong inferences.
	ErrorRate float64
	// VictimReadsMapped and VictimAccuracy report that the victim was
	// doing real work while being spied on.
	VictimReadsMapped int
	VictimAccuracy    float64
	// CandidateEntries is how many hash-table entries a correct positive
	// detection narrows the victim's access to, and PrecisionBits the
	// information that narrowing carries (log2 of table/candidates). As
	// banks grow, candidates shrink and precision rises — the Section
	// 6.3 observation that more banks leak more exact information.
	CandidateEntries int
	PrecisionBits    float64
	// AttackerCycles is the attack duration on the simulated clock.
	AttackerCycles int64
	// FalsePositives counts probes that inferred activity in a quiet
	// bank; FalseNegatives the reverse; TruePositiveWindows counts
	// probe windows in which the victim really was active.
	FalsePositives      int64
	FalseNegatives      int64
	TruePositiveWindows int64
}

// String summarizes the result.
func (r SideChannelResult) String() string {
	return fmt.Sprintf("side-channel over %d banks: %.2f Mb/s, error %.2f%% (%d probes)",
		r.Banks, r.ThroughputMbps, r.ErrorRate*100, r.Probes)
}

// RunSideChannel executes the IMPACT side-channel attack of Section 4.3
// against a genomic read-mapping victim. The attacker continuously sweeps
// all DRAM banks holding the shared hash table, timing one PEI per bank: a
// row-buffer conflict against its own co-located row means the victim's
// seeding step activated a hash-table row in that bank since the last probe.
// Victim and attacker run interleaved on the simulated clock.
func RunSideChannel(m *sim.Machine, victim *genomics.Mapper, opt SideChannelOptions) (SideChannelResult, error) {
	threshold := opt.Threshold
	if threshold == 0 {
		threshold = DefaultThresholdCycles
	}
	sweeps := opt.Sweeps
	if sweeps <= 0 {
		sweeps = 8
	}
	attacker := m.Core(3)
	if attacker == nil {
		attacker = m.Core(m.NumCores() - 1)
	}
	banks := victim.Layout().Banks
	costs := m.Config().Costs

	// Ground truth: a per-bank generation counter bumped on every victim
	// touch. Device state mutates in execution order, so generations —
	// not simulated timestamps, which can run ahead of the attacker's
	// clock — define exactly what a probe could have observed.
	touchGen := make([]int64, banks)
	victim.SetTouchFunc(func(bank int, _ int64, _ int64) {
		if bank >= 0 && bank < banks {
			touchGen[bank]++
		}
	})

	// The probe column alternates between the two 4 KiB pages of each
	// 8 KiB row so probe VPNs spread over all TLB sets.
	probeAddr := func(bank int) uint64 {
		return m.AddrFor(bank, attackerProbeRow, (bank%2)*4096)
	}

	// Attacker initialization: open its own row in every bank (and warm
	// its TLB over the probe pages, per the paper's warm-up phase).
	for b := 0; b < banks; b++ {
		if _, err := attacker.PEIAccess(probeAddr(b)); err != nil {
			return SideChannelResult{}, err
		}
	}
	seenGen := make([]int64, banks)
	copy(seenGen, touchGen)

	res := SideChannelResult{Banks: banks}
	start := attacker.Now()

	probeOne := func(bank int) error {
		attacker.Advance(costs.SideProbeBookkeeping)
		// Preload the translation so a page walk (frequent once the probe
		// set outgrows the TLBs) slows the sweep but cannot corrupt the
		// timed measurement.
		attacker.TranslateTouch(probeAddr(bank))
		t0 := attacker.Rdtscp()
		if _, err := attacker.PEIAccess(probeAddr(bank)); err != nil {
			return err
		}
		t1 := attacker.Rdtscp()
		attacker.Advance(costs.DecodeCost)
		attacker.LoopTick()

		inferredActive := t1-t0 > threshold
		trulyActive := touchGen[bank] != seenGen[bank]
		res.Probes++
		switch {
		case inferredActive == trulyActive:
			res.Correct++
		case inferredActive:
			res.FalsePositives++
		default:
			res.FalseNegatives++
		}
		if trulyActive {
			res.TruePositiveWindows++
		}
		seenGen[bank] = touchGen[bank]
		return nil
	}

	// Interleave victim and attacker by simulated time: whichever clock
	// is behind advances, so bank state evolves in causal order.
	for sweep := 0; sweep < sweeps; sweep++ {
		for b := 0; b < banks; b++ {
			for !victim.Done() && victim.Now() <= attacker.Now() {
				if err := victim.Step(); err != nil {
					return SideChannelResult{}, err
				}
			}
			if err := probeOne(b); err != nil {
				return SideChannelResult{}, err
			}
		}
		m.AdvanceNoise(attacker.Now())
	}

	res.AttackerCycles = attacker.Now() - start
	res.ThroughputMbps = sim.ThroughputMbps(res.Correct, res.AttackerCycles)
	if res.Probes > 0 {
		res.ErrorRate = float64(res.Probes-res.Correct) / float64(res.Probes)
	}
	res.VictimReadsMapped = len(victim.Results())
	res.VictimAccuracy = victim.Accuracy(64)
	buckets := victim.IndexBuckets()
	res.CandidateEntries = (buckets + banks - 1) / banks
	if res.CandidateEntries > 0 {
		res.PrecisionBits = math.Log2(float64(buckets) / float64(res.CandidateEntries))
	}
	return res, nil
}

package core

import (
	"testing"

	"repro/internal/memctrl"
	"repro/internal/sim"
)

func quietMachine(t *testing.T) *sim.Machine {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// channelRunners enumerates every covert channel for table-driven tests.
func channelRunners() map[string]func(*sim.Machine, []bool, Options) (Result, error) {
	return map[string]func(*sim.Machine, []bool, Options) (Result, error){
		"pnm":      RunPnM,
		"pum":      RunPuM,
		"clflush":  RunDRAMAClflush,
		"eviction": RunDRAMAEviction,
		"dma":      RunDMA,
		"direct":   RunDirect,
	}
}

func TestAllChannelsDecodeNoiselessly(t *testing.T) {
	msg := RandomMessage(256, 21)
	for name, run := range channelRunners() {
		name, run := name, run
		t.Run(name, func(t *testing.T) {
			res, err := run(quietMachine(t), msg, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if res.ErrorRate > 0.02 {
				t.Fatalf("error rate %.2f%% on a noiseless machine", res.ErrorRate*100)
			}
			if res.ThroughputMbps <= 0 {
				t.Fatal("non-positive throughput")
			}
			if res.Cycles <= 0 {
				t.Fatal("non-positive duration")
			}
		})
	}
}

func TestChannelThroughputOrdering(t *testing.T) {
	// The paper's headline ordering: PuM > PnM > clflush > DMA, and
	// eviction slowest among DRAMA variants.
	msg := RandomMessage(1024, 33)
	results := make(map[string]Result, 6)
	for name, run := range channelRunners() {
		res, err := run(quietMachine(t), msg, Options{})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		results[name] = res
	}
	order := []struct{ fast, slow string }{
		{"pum", "pnm"},
		{"pnm", "clflush"},
		{"clflush", "dma"},
		{"clflush", "eviction"},
		{"dma", "eviction"},
	}
	for _, o := range order {
		if results[o.fast].ThroughputMbps <= results[o.slow].ThroughputMbps {
			t.Errorf("%s (%.2f) not faster than %s (%.2f)",
				o.fast, results[o.fast].ThroughputMbps, o.slow, results[o.slow].ThroughputMbps)
		}
	}
}

func TestPnMHeadlineThroughput(t *testing.T) {
	msg := RandomMessage(4096, 42)
	res, err := RunPnM(quietMachine(t), msg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Calibrated to the paper's 8.2 Mb/s; allow 15% drift.
	if res.ThroughputMbps < 7.0 || res.ThroughputMbps > 9.4 {
		t.Fatalf("PnM throughput %.2f Mb/s out of calibrated band (paper: 8.2)", res.ThroughputMbps)
	}
}

func TestPuMFasterThanPnMByBankParallelism(t *testing.T) {
	msg := RandomMessage(2048, 13)
	pnm, err := RunPnM(quietMachine(t), msg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	pum, err := RunPuM(quietMachine(t), msg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ratio := pum.ThroughputMbps / pnm.ThroughputMbps
	if ratio < 1.3 || ratio > 2.5 {
		t.Fatalf("PuM/PnM = %.2f, want ~1.8 (paper)", ratio)
	}
	senderRatio := float64(pnm.SenderCycles) / float64(pum.SenderCycles)
	if senderRatio < 4 {
		t.Fatalf("PnM/PuM sender ratio = %.1f, want >> 1 (paper: 11.1)", senderRatio)
	}
}

func TestChannelRoundTripsText(t *testing.T) {
	secret := "attack at dawn"
	bits := BitsFromBytes([]byte(secret))
	res, err := RunPnM(quietMachine(t), bits, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := string(BytesFromBits(res.Decoded)); got != secret {
		t.Fatalf("decoded %q, want %q", got, secret)
	}
}

func TestPnMRecordsLatencies(t *testing.T) {
	msg := RandomMessage(64, 3)
	res, err := RunPnM(quietMachine(t), msg, Options{RecordLatencies: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Latencies) != len(msg) {
		t.Fatalf("recorded %d latencies for %d bits", len(res.Latencies), len(msg))
	}
	// Every 1-bit latency must exceed every 0-bit latency on a quiet
	// machine — the Figure 8 separation.
	var max0, min1 int64 = 0, 1 << 62
	for i, lat := range res.Latencies {
		if msg[i] && lat < min1 {
			min1 = lat
		}
		if !msg[i] && lat > max0 {
			max0 = lat
		}
	}
	if max0 >= min1 {
		t.Fatalf("latency bands overlap: max0=%d min1=%d", max0, min1)
	}
	if max0 >= DefaultThresholdCycles || min1 <= DefaultThresholdCycles {
		t.Fatalf("threshold 150 does not separate bands (%d / %d)", max0, min1)
	}
}

func TestChannelsHonorCustomBanks(t *testing.T) {
	msg := RandomMessage(40, 5)
	res, err := RunPnM(quietMachine(t), msg, Options{Banks: []int{2, 5, 9, 14}})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate != 0 {
		t.Fatalf("custom-bank run error rate %.2f%%", res.ErrorRate*100)
	}
}

func TestNonBatchAlignedMessage(t *testing.T) {
	msg := RandomMessage(37, 6) // not a multiple of 16
	res, err := RunPuM(quietMachine(t), msg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bits != 37 || len(res.Decoded) != 37 {
		t.Fatalf("bits = %d decoded = %d, want 37", res.Bits, len(res.Decoded))
	}
	if res.ErrorRate != 0 {
		t.Fatalf("error rate %.2f%%", res.ErrorRate*100)
	}
}

func TestConstantTimeDefenseBreaksChannel(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	cfg.Mem.Defense = memctrl.DefenseConstantTime
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPnM(m, RandomMessage(512, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveThroughputMbps > 0.2 {
		t.Fatalf("CTD left %.2f Mb/s of effective capacity", res.EffectiveThroughputMbps)
	}
}

func TestClosedRowDefenseBreaksChannel(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	cfg.Mem.Defense = memctrl.DefenseClosedRow
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPnM(m, RandomMessage(512, 8), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectiveThroughputMbps > 0.2 {
		t.Fatalf("CRP left %.2f Mb/s of effective capacity", res.EffectiveThroughputMbps)
	}
}

func TestNoiseCausesSomeErrorsButChannelSurvives(t *testing.T) {
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 200
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunPnM(m, RandomMessage(4096, 9), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate == 0 {
		t.Fatal("heavy noise produced zero errors — noise not reaching the channel")
	}
	if res.ErrorRate > 0.2 {
		t.Fatalf("noise error rate %.1f%% too destructive", res.ErrorRate*100)
	}
}

func TestMessageHelpersRoundTrip(t *testing.T) {
	data := []byte("IMPACT reproduction")
	bits := BitsFromBytes(data)
	if len(bits) != len(data)*8 {
		t.Fatalf("bits = %d, want %d", len(bits), len(data)*8)
	}
	back := BytesFromBits(bits)
	if string(back) != string(data) {
		t.Fatalf("round trip = %q", back)
	}
	// Trailing partial bytes are dropped.
	if got := BytesFromBits(bits[:12]); len(got) != 1 {
		t.Fatalf("partial pack = %d bytes, want 1", len(got))
	}
}

func TestRandomMessageDeterministic(t *testing.T) {
	a := RandomMessage(128, 5)
	b := RandomMessage(128, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("messages diverge at bit %d", i)
		}
	}
}

func TestBSCCapacity(t *testing.T) {
	if got := bscCapacity(0); got != 1 {
		t.Errorf("capacity(0) = %v", got)
	}
	if got := bscCapacity(0.5); got != 0 {
		t.Errorf("capacity(0.5) = %v", got)
	}
	if got := bscCapacity(0.89); got != 0 {
		t.Errorf("capacity(>0.5) = %v, want 0", got)
	}
	mid := bscCapacity(0.1)
	if mid <= 0.5 || mid >= 0.6 {
		t.Errorf("capacity(0.1) = %v, want ~0.53", mid)
	}
}

func TestTable1Properties(t *testing.T) {
	rows := Table1(quietMachine(t))
	if len(rows) != 5 {
		t.Fatalf("Table 1 has %d rows, want 5", len(rows))
	}
	var pim, dma *PrimitiveProperties
	for i := range rows {
		switch rows[i].Primitive {
		case PrimitivePiM:
			pim = &rows[i]
		case PrimitiveDMA:
			dma = &rows[i]
		}
	}
	if pim == nil || dma == nil {
		t.Fatal("missing PiM or DMA row")
	}
	// PiM is the only primitive satisfying all four properties.
	if !(pim.NoCacheLookup && pim.NoExcessiveMemAccesses && pim.TimingDetectable && pim.ISAGuaranteed) {
		t.Error("PiM row does not satisfy all properties")
	}
	for _, r := range rows {
		if r.Primitive == PrimitivePiM {
			continue
		}
		if r.NoCacheLookup && r.NoExcessiveMemAccesses && r.TimingDetectable && r.ISAGuaranteed {
			t.Errorf("%s satisfies all properties; only PiM should", r.Primitive)
		}
		if r.MeasuredLatency <= pim.MeasuredLatency {
			t.Errorf("%s per-request latency %d not above PiM's %d",
				r.Primitive, r.MeasuredLatency, pim.MeasuredLatency)
		}
	}
}

package core

import (
	"repro/internal/sim"
)

// RunDirect executes the idealized direct-memory-access attack of
// Section 3.3: each bit costs exactly one memory request on each side, with
// no cache lookups or evictions. The sender's requests are fire-and-forget
// (overlapped with the receiver, as the paper's throughput model assumes),
// so the channel is receiver-bound and independent of the cache
// configuration — the flat line of Figures 2 and 3.
func RunDirect(m *sim.Machine, msg []bool, opt Options) (Result, error) {
	res := Result{Channel: "DirectAccess"}
	banks := opt.banksOrDefault(m)
	sender, receiver := m.Core(0), m.Core(1)
	if sender == nil || receiver == nil {
		return Result{}, ErrProtocol
	}

	recvAddr := func(bank int) uint64 { return m.AddrFor(bank, receiverInitRow, 0) }

	warmup(banks,
		func(b int) { _ = sender.ActivateAsync(b, senderRow) },
		func(b int) { receiver.LoadUncached(recvAddr(b)) })
	sender.Fence()

	threshold := opt.Threshold
	if threshold == 0 {
		var err error
		threshold, err = calibrate(m, banks[0],
			func(bank int) {
				_, _ = m.Device().Activate(receiver.Now(), bank, senderRow)
			},
			func(bank int) (int64, error) {
				t0 := receiver.Rdtscp()
				receiver.LoadUncached(recvAddr(bank))
				return receiver.Rdtscp() - t0, nil
			})
		if err != nil {
			return Result{}, err
		}
	}

	sent := sim.NewSemaphore(m)
	acked := sim.NewSemaphore(m)
	sender.AdvanceTo(receiver.Now())
	start := receiver.Now()

	decoded := make([]bool, 0, len(msg))
	for off := 0; off < len(msg); off += len(banks) {
		end := off + len(banks)
		if end > len(msg) {
			end = len(msg)
		}
		bits := msg[off:end]

		sBatch := sender.Now()
		for i, bit := range bits {
			if bit {
				// One asynchronous memory request, no cache path: the
				// activation drains while the sender moves on.
				if err := sender.ActivateAsync(banks[i], senderRow); err != nil {
					return Result{}, err
				}
			}
			sender.LoopTick()
		}
		sender.Fence()
		res.SenderCycles += sender.Now() - sBatch
		sent.Post(sender)

		if !sent.Wait(receiver) {
			return Result{}, ErrProtocol
		}
		rBatch := receiver.Now()
		for i := range bits {
			receiver.Serialize()
			t0 := receiver.Rdtscp()
			receiver.LoadUncached(recvAddr(banks[i]))
			t1 := receiver.Rdtscp()
			receiver.Serialize()
			lat := t1 - t0
			if opt.RecordLatencies {
				res.Latencies = append(res.Latencies, lat)
			}
			decoded = append(decoded, lat > threshold)
			receiver.Advance(m.Config().Costs.DecodeCost)
			receiver.LoopTick()
		}
		res.ReceiverCycles += receiver.Now() - rBatch
		acked.Post(receiver)
		if !acked.Wait(sender) {
			return Result{}, ErrProtocol
		}
		m.AdvanceNoise(receiver.Now())
	}

	res.finalize(msg, decoded, receiver.Now()-start)
	return res, nil
}

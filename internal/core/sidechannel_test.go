package core

import (
	"testing"

	"repro/internal/genomics"
	"repro/internal/sim"
)

func sideChannelFixture(t *testing.T, banks int, noise float64) (*sim.Machine, *genomics.Mapper) {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.DRAM = cfg.DRAM.WithBanks(banks)
	cfg.Noise.EventsPerMCycle = noise
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref := genomics.NewReference(1<<17, 7)
	idx, err := genomics.BuildIndex(ref, genomics.DefaultIndexConfig())
	if err != nil {
		t.Fatal(err)
	}
	reads, err := genomics.SampleReads(ref, 20000, 150, 0.02, 8)
	if err != nil {
		t.Fatal(err)
	}
	victim, err := genomics.NewMapper(m, m.Core(2), ref, idx, genomics.DefaultBankLayout(banks), reads, genomics.DefaultCosts())
	if err != nil {
		t.Fatal(err)
	}
	return m, victim
}

func TestSideChannelQuietSystemIsAccurate(t *testing.T) {
	m, victim := sideChannelFixture(t, 256, 0)
	res, err := RunSideChannel(m, victim, SideChannelOptions{Sweeps: 6})
	if err != nil {
		t.Fatal(err)
	}
	// Even with background noise disabled, the victim's own page-table
	// walks disturb row buffers (a modeled noise source), so a small
	// error floor remains.
	if res.ErrorRate > 0.08 {
		t.Fatalf("noiseless error rate = %.2f%%", res.ErrorRate*100)
	}
	if res.TruePositiveWindows == 0 {
		t.Fatal("victim produced no detectable activity")
	}
	if res.ThroughputMbps <= 0 {
		t.Fatal("non-positive leakage throughput")
	}
}

func TestSideChannelVictimKeepsWorking(t *testing.T) {
	m, victim := sideChannelFixture(t, 256, 0)
	res, err := RunSideChannel(m, victim, SideChannelOptions{Sweeps: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.VictimReadsMapped == 0 {
		t.Fatal("victim mapped no reads while being attacked")
	}
	if res.VictimAccuracy < 0.9 {
		t.Fatalf("victim accuracy under attack = %.2f", res.VictimAccuracy)
	}
}

func TestSideChannelNoiseRaisesError(t *testing.T) {
	mQuiet, vQuiet := sideChannelFixture(t, 256, 0)
	quiet, err := RunSideChannel(mQuiet, vQuiet, SideChannelOptions{Sweeps: 5})
	if err != nil {
		t.Fatal(err)
	}
	mNoisy, vNoisy := sideChannelFixture(t, 256, 400)
	noisy, err := RunSideChannel(mNoisy, vNoisy, SideChannelOptions{Sweeps: 5})
	if err != nil {
		t.Fatal(err)
	}
	if noisy.ErrorRate <= quiet.ErrorRate {
		t.Fatalf("noise did not raise error: %.3f vs %.3f", noisy.ErrorRate, quiet.ErrorRate)
	}
}

func TestSideChannelProbeAccounting(t *testing.T) {
	m, victim := sideChannelFixture(t, 64, 0)
	res, err := RunSideChannel(m, victim, SideChannelOptions{Sweeps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(4 * 64); res.Probes != want {
		t.Fatalf("probes = %d, want %d", res.Probes, want)
	}
	if res.Correct+res.FalsePositives+res.FalseNegatives != res.Probes {
		t.Fatal("probe accounting does not add up")
	}
}

func TestSideChannelPrecisionRisesWithBanks(t *testing.T) {
	mSmall, vSmall := sideChannelFixture(t, 64, 0)
	small, err := RunSideChannel(mSmall, vSmall, SideChannelOptions{Sweeps: 2})
	if err != nil {
		t.Fatal(err)
	}
	mLarge, vLarge := sideChannelFixture(t, 256, 0)
	large, err := RunSideChannel(mLarge, vLarge, SideChannelOptions{Sweeps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if large.CandidateEntries >= small.CandidateEntries {
		t.Fatalf("candidates did not shrink with banks: %d -> %d",
			small.CandidateEntries, large.CandidateEntries)
	}
	if large.PrecisionBits <= small.PrecisionBits {
		t.Fatalf("precision did not rise with banks: %.1f -> %.1f bits",
			small.PrecisionBits, large.PrecisionBits)
	}
}

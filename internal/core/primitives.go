package core

import (
	"repro/internal/cacti"
	"repro/internal/sim"
)

// Primitive identifies one cache-bypass attack primitive from Table 1.
type Primitive int

const (
	// PrimitiveSpecialized is clflush-style specialized instructions.
	PrimitiveSpecialized Primitive = iota + 1
	// PrimitiveEvictionSets is cache eviction sets.
	PrimitiveEvictionSets
	// PrimitiveDMA is the (R)DMA engine.
	PrimitiveDMA
	// PrimitiveNonTemporal is non-temporal memory hints (movnti).
	PrimitiveNonTemporal
	// PrimitivePiM is PiM operations (the paper's contribution).
	PrimitivePiM
)

// String implements fmt.Stringer.
func (p Primitive) String() string {
	switch p {
	case PrimitiveSpecialized:
		return "Specialized Instructions"
	case PrimitiveEvictionSets:
		return "Eviction Sets"
	case PrimitiveDMA:
		return "DMA/RDMA"
	case PrimitiveNonTemporal:
		return "Non-temporal Hints"
	case PrimitivePiM:
		return "PiM Operations"
	default:
		return "unknown"
	}
}

// PrimitiveProperties is one row of Table 1, extended with the per-request
// latency our simulator measures for the primitive (cycles to place one
// request into a DRAM row buffer).
type PrimitiveProperties struct {
	Primitive Primitive
	// NoCacheLookup: the primitive avoids cache lookup overhead.
	NoCacheLookup bool
	// NoExcessiveMemAccesses: it avoids issuing many extra requests.
	NoExcessiveMemAccesses bool
	// TimingDetectable: the resulting timing difference is fine-grained
	// enough to detect row-buffer states.
	TimingDetectable bool
	// ISAGuaranteed: the ISA guarantees the bypass works (true/false);
	// NotApplicable marks the DMA row's "N/A".
	ISAGuaranteed bool
	NotApplicable bool
	// MeasuredLatency is the simulated cost of one direct-memory request
	// via this primitive.
	MeasuredLatency int64
}

// Table1 reproduces the paper's attack-primitive comparison, attaching the
// per-request latency each primitive exhibits in the simulated system so
// the qualitative matrix is backed by quantitative evidence.
func Table1(m *sim.Machine) []PrimitiveProperties {
	t := m.Config().DRAM.Timing
	costs := m.Config().Costs
	llcMB := float64(m.Config().LLCBytes) / float64(1<<20)
	llcLat := cacti.LLCLatencyWays(llcMB, m.Config().LLCWays)
	memLat := t.EmptyLatency() + m.Config().Mem.RequestOverhead

	flushCost := m.Core(0).Hierarchy().FlushOverhead + 4 + 16 + llcLat // probes at each level
	evictCost := cacti.EvictionLatency(llcMB, m.Config().LLCWays, memLat, costs.EvictionMLP)

	return []PrimitiveProperties{
		{
			Primitive:              PrimitiveSpecialized,
			NoCacheLookup:          false, // clflush probes the LLC
			NoExcessiveMemAccesses: true,
			TimingDetectable:       true,
			ISAGuaranteed:          true,
			MeasuredLatency:        flushCost + memLat,
		},
		{
			Primitive:              PrimitiveEvictionSets,
			NoCacheLookup:          false,
			NoExcessiveMemAccesses: false, // N loads per eviction
			TimingDetectable:       true,
			ISAGuaranteed:          false, // replacement policy may defeat it
			MeasuredLatency:        evictCost + memLat,
		},
		{
			Primitive:              PrimitiveDMA,
			NoCacheLookup:          true,
			NoExcessiveMemAccesses: true,
			TimingDetectable:       false, // software stack swamps 70-cycle differences
			NotApplicable:          true,
			MeasuredLatency:        costs.DMASyscall + costs.DMASetup + memLat,
		},
		{
			Primitive:              PrimitiveNonTemporal,
			NoCacheLookup:          false,
			NoExcessiveMemAccesses: true,
			TimingDetectable:       true,
			ISAGuaranteed:          false, // implementation-defined buffering
			MeasuredLatency:        flushCost + memLat,
		},
		{
			Primitive:              PrimitivePiM,
			NoCacheLookup:          true,
			NoExcessiveMemAccesses: true,
			TimingDetectable:       true,
			ISAGuaranteed:          true,
			MeasuredLatency:        m.PEI().Costs().IssueCost + m.PEI().Costs().PEIOverhead + memLat,
		},
	}
}

package core

import (
	"repro/internal/sim"
)

// RunPnMAdaptive executes the IMPACT-PnM channel with the adaptive attacker
// of Section 7.4: against the ACT defense, the parties transmit only during
// epochs in which the banks serve default latency, idling through
// constant-time penalty windows. The attacker infers padding from its own
// measurements (every probe at worst-case latency), which the simulation
// models via the controller's ConstantTimeActive observable.
//
// Against ACT-Mild/Conservative the penalties expire between batches and
// throughput is essentially unaffected; against ACT-Aggressive the 4000-
// epoch penalties leave almost no usable windows — the trade-off the paper
// quantifies.
func RunPnMAdaptive(m *sim.Machine, msg []bool, opt Options) (Result, error) {
	res := Result{Channel: "IMPACT-PnM-adaptive"}
	banks := opt.banksOrDefault(m)
	threshold := opt.Threshold
	if threshold == 0 {
		threshold = DefaultThresholdCycles
	}
	sender, receiver := m.Core(0), m.Core(1)
	if sender == nil || receiver == nil {
		return Result{}, ErrProtocol
	}
	ctrl := m.Controller()
	epoch := m.Config().Mem.ACT.EpochCycles
	if epoch <= 0 {
		epoch = 2600
	}

	sent := sim.NewSemaphore(m)
	acked := sim.NewSemaphore(m)
	colsPerRow := m.Config().DRAM.RowBytes / cacheLineBytes

	for _, bank := range banks {
		if _, err := receiver.PEIAccess(m.AddrFor(bank, receiverInitRow, 0)); err != nil {
			return Result{}, err
		}
	}
	sender.AdvanceTo(receiver.Now())
	start := receiver.Now()

	// waitBudget bounds how long the attacker waits out penalties before
	// giving up on a batch and transmitting anyway (so the run always
	// terminates even under ACT-Aggressive).
	waitBudget := int64(64) * epoch

	decoded := make([]bool, 0, len(msg))
	batch := 0
	for off := 0; off < len(msg); off += len(banks) {
		end := off + len(banks)
		if end > len(msg) {
			end = len(msg)
		}
		bits := msg[off:end]
		col := ((batch + 1) % colsPerRow) * cacheLineBytes
		rowBump := int64((batch + 1) / colsPerRow)

		// Adaptive step: idle while any channel bank is padded, up to
		// the wait budget.
		waited := int64(0)
		for waited < waitBudget {
			padded := false
			for _, bank := range banks {
				if ctrl.ConstantTimeActive(sender.Now(), bank) {
					padded = true
					break
				}
			}
			if !padded {
				break
			}
			sender.Advance(epoch)
			waited += epoch
		}
		receiver.AdvanceTo(sender.Now())

		sBatch := sender.Now()
		for i, bit := range bits {
			sender.Advance(m.Config().Costs.SenderComputeCost)
			if bit {
				if _, err := sender.PEIActivate(m.AddrFor(banks[i], senderRow+rowBump, col)); err != nil {
					return Result{}, err
				}
			}
			sender.LoopTick()
		}
		sender.Fence()
		res.SenderCycles += sender.Now() - sBatch
		sent.Post(sender)

		if !sent.Wait(receiver) {
			return Result{}, ErrProtocol
		}
		rBatch := receiver.Now()
		for i := range bits {
			t0 := receiver.Rdtscp()
			if _, err := receiver.PEIAccess(m.AddrFor(banks[i], receiverInitRow+rowBump, col)); err != nil {
				return Result{}, err
			}
			t1 := receiver.Rdtscp()
			lat := opt.filterMaintenance(t1-t0, threshold)
			if opt.RecordLatencies {
				res.Latencies = append(res.Latencies, lat)
			}
			decoded = append(decoded, lat > threshold)
			receiver.Advance(m.Config().Costs.DecodeCost)
			receiver.LoopTick()
		}
		receiver.Fence()
		res.ReceiverCycles += receiver.Now() - rBatch
		acked.Post(receiver)
		if !acked.Wait(sender) {
			return Result{}, ErrProtocol
		}
		batch++
		m.AdvanceNoise(receiver.Now())
	}

	res.finalize(msg, decoded, receiver.Now()-start)
	return res, nil
}

package core

import (
	"repro/internal/sim"
)

// RunDMA executes the row-buffer covert channel over the (R)DMA engine
// (Section 5.2.2 comparison point iii): transfers bypass the caches, but
// every operation drags the deep OS software stack — syscall, descriptor
// setup, completion — which caps throughput around three orders of
// magnitude of cycles per bit regardless of cache configuration.
func RunDMA(m *sim.Machine, msg []bool, opt Options) (Result, error) {
	res := Result{Channel: "DMA"}
	banks := opt.banksOrDefault(m)
	sender, receiver := m.Core(0), m.Core(1)
	if sender == nil || receiver == nil {
		return Result{}, ErrProtocol
	}

	recvAddr := func(bank int) uint64 { return m.AddrFor(bank, receiverInitRow, 0) }
	sendAddr := func(bank int) uint64 { return m.AddrFor(bank, senderRow, 0) }

	warmup(banks,
		func(b int) { sender.DMATransfer(sendAddr(b)) },
		func(b int) { receiver.DMATransfer(recvAddr(b)) })

	threshold := opt.Threshold
	if threshold == 0 {
		var err error
		threshold, err = calibrate(m, banks[0],
			func(bank int) {
				_, _ = m.Device().Activate(receiver.Now(), bank, senderRow)
			},
			func(bank int) (int64, error) {
				t0 := receiver.Rdtscp()
				receiver.DMATransfer(recvAddr(bank))
				return receiver.Rdtscp() - t0, nil
			})
		if err != nil {
			return Result{}, err
		}
	}

	sent := sim.NewSemaphore(m)
	acked := sim.NewSemaphore(m)
	sender.AdvanceTo(receiver.Now())
	start := receiver.Now()

	decoded := make([]bool, 0, len(msg))
	for off := 0; off < len(msg); off += len(banks) {
		end := off + len(banks)
		if end > len(msg) {
			end = len(msg)
		}
		bits := msg[off:end]

		sBatch := sender.Now()
		for i, bit := range bits {
			sender.Advance(m.Config().Costs.SenderComputeCost)
			if bit {
				sender.DMATransfer(sendAddr(banks[i]))
			}
			sender.LoopTick()
		}
		res.SenderCycles += sender.Now() - sBatch
		sent.Post(sender)

		if !sent.Wait(receiver) {
			return Result{}, ErrProtocol
		}
		rBatch := receiver.Now()
		for i := range bits {
			t0 := receiver.Rdtscp()
			receiver.DMATransfer(recvAddr(banks[i]))
			t1 := receiver.Rdtscp()
			lat := t1 - t0
			if opt.RecordLatencies {
				res.Latencies = append(res.Latencies, lat)
			}
			decoded = append(decoded, lat > threshold)
			receiver.Advance(m.Config().Costs.DecodeCost)
			receiver.LoopTick()
		}
		res.ReceiverCycles += receiver.Now() - rBatch
		acked.Post(receiver)
		if !acked.Wait(sender) {
			return Result{}, ErrProtocol
		}
		m.AdvanceNoise(receiver.Now())
	}

	res.finalize(msg, decoded, receiver.Now()-start)
	return res, nil
}

package core

import (
	"repro/internal/sim"
)

// RunPuM executes the IMPACT-PuM covert channel of Section 4.2 (Listing 2):
// the sender transmits an M-bit batch with a single masked RowClone request
// that copies rows in the selected banks in parallel; the receiver decodes
// by timing a per-bank RowClone with the copy direction swapped. Bank-level
// parallelism on the sender side is the source of PuM's throughput advantage
// over PnM. Core 0 is the sender, core 1 the receiver.
func RunPuM(m *sim.Machine, msg []bool, opt Options) (Result, error) {
	res := Result{Channel: "IMPACT-PuM"}
	banks := opt.banksOrDefault(m)
	threshold := opt.Threshold
	if threshold == 0 {
		threshold = DefaultThresholdCycles
	}
	sender, receiver := m.Core(0), m.Core(1)
	if sender == nil || receiver == nil {
		return Result{}, ErrProtocol
	}
	if len(banks) > 64 {
		banks = banks[:64] // the mask is a uint64
	}

	sent := sim.NewSemaphore(m)
	acked := sim.NewSemaphore(m)

	// Step 1 (Listing 2 line 25): the receiver initializes all banks with
	// one full-mask RowClone, leaving its destination rows open.
	fullMask := uint64(1)<<uint(len(banks)) - 1
	if len(banks) == 64 {
		fullMask = ^uint64(0)
	}
	if _, err := receiver.RowCloneSubmit(banks, fullMask, receiverSrcRow, receiverDstRow); err != nil {
		return Result{}, err
	}
	receiver.Fence()
	sender.AdvanceTo(receiver.Now())
	start := receiver.Now()

	decoded := make([]bool, 0, len(msg))
	// The receiver alternates copy direction every batch so its own probe
	// finds the previous destination row still latched (Listing 2 swaps
	// src and dst on the probe path).
	forward := false
	for off := 0; off < len(msg); off += len(banks) {
		end := off + len(banks)
		if end > len(msg) {
			end = len(msg)
		}
		bits := msg[off:end]

		// Step 2: the sender builds the mask for this batch and issues
		// one RowClone request; the controller fans it out to the
		// masked banks in parallel (Listing 2 lines 15-22).
		sBatch := sender.Now()
		var mask uint64
		for i, bit := range bits {
			if bit {
				mask |= 1 << uint(i)
			}
		}
		sender.Advance(m.Config().Costs.MaskComputeCost)
		if _, err := sender.RowCloneSubmit(banks, mask, senderSrcRow, senderDstRow); err != nil {
			return Result{}, err
		}
		sender.Fence() // Listing 2 line 22
		res.SenderCycles += sender.Now() - sBatch
		sent.Post(sender)

		// Step 3: the receiver probes one bank at a time (Listing 2
		// lines 26-38), timing each RowClone.
		if !sent.Wait(receiver) {
			return Result{}, ErrProtocol
		}
		rBatch := receiver.Now()
		src, dst := receiverDstRow, receiverSrcRow
		if forward {
			src, dst = receiverSrcRow, receiverDstRow
		}
		for i := range bits {
			t0 := receiver.Rdtscp()
			if _, err := receiver.RowCloneMeasure(banks[i], int64(src), int64(dst)); err != nil {
				return Result{}, err
			}
			t1 := receiver.Rdtscp()
			lat := opt.filterMaintenance(t1-t0, threshold)
			if opt.RecordLatencies {
				res.Latencies = append(res.Latencies, lat)
			}
			decoded = append(decoded, lat > threshold)
			receiver.Advance(m.Config().Costs.DecodeCost)
			receiver.LoopTick()
		}
		receiver.Fence() // Listing 2 line 38
		res.ReceiverCycles += receiver.Now() - rBatch
		acked.Post(receiver)
		if !acked.Wait(sender) {
			return Result{}, ErrProtocol
		}
		forward = !forward
		m.AdvanceNoise(receiver.Now())
	}

	res.finalize(msg, decoded, receiver.Now()-start)
	return res, nil
}

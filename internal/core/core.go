// Package core implements the paper's primary contribution: the IMPACT
// family of high-throughput main-memory timing attacks. It provides the
// IMPACT-PnM covert channel (PIM-enabled instructions, Section 4.1), the
// IMPACT-PuM covert channel (RowClone, Section 4.2), the comparison
// baselines (DRAMA-clflush, DRAMA-eviction, DMA engine, and the idealized
// direct-memory-access attack of Section 3.3), and the side-channel attacker
// of Section 4.3.
//
// All attacks run against a sim.Machine and measure simulated cycles only.
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/sim"
	"repro/internal/stats"
)

// ErrProtocol indicates the sender/receiver protocol desynchronized (a bug,
// surfaced instead of silently corrupting results).
var ErrProtocol = errors.New("impact: sender/receiver protocol desynchronized")

// DefaultThresholdCycles is the paper's row-buffer conflict decode threshold
// (Section 6.1: 150 cycles).
const DefaultThresholdCycles = 150

// Options configures a covert-channel run.
type Options struct {
	// Banks are the DRAM banks used, one per bit of a batch. Defaults to
	// banks 0..15.
	Banks []int
	// Threshold is the decode threshold in cycles; 0 selects the
	// channel's default (150 for the PIM channels, auto-calibrated for
	// the cache-path baselines).
	Threshold int64
	// RecordLatencies keeps every receiver-measured probe latency in the
	// result (Figure 8).
	RecordLatencies bool
	// MaintenanceStall, when positive, enables the receiver-side filter
	// of Section 8.4: RowHammer-mitigation actions (RFM/PRAC) stall an
	// access by a fixed, specification-known amount far larger than a
	// row-buffer conflict, so a receiver subtracts the stall from any
	// measurement that can only be explained by one before thresholding.
	MaintenanceStall int64
}

// filterMaintenance removes one known maintenance stall from a measured
// latency when the measurement could not otherwise exceed the decode range.
func (o Options) filterMaintenance(lat, threshold int64) int64 {
	if o.MaintenanceStall <= 0 {
		return lat
	}
	// Anything beyond threshold + stall/2 must contain a stall.
	if lat > threshold+o.MaintenanceStall/2 {
		lat -= o.MaintenanceStall
	}
	if lat < 0 {
		lat = 0
	}
	return lat
}

// banksOrDefault returns the configured banks or the first 16 banks.
func (o Options) banksOrDefault(m *sim.Machine) []int {
	if len(o.Banks) > 0 {
		out := make([]int, len(o.Banks))
		copy(out, o.Banks)
		return out
	}
	n := 16
	if total := m.Device().NumBanks(); total < n {
		n = total
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Result reports one covert-channel transmission.
type Result struct {
	// Channel names the attack variant.
	Channel string
	// Bits is the message length; Correct counts bits decoded correctly.
	Bits    int
	Correct int
	// Cycles is the end-to-end transmission time on the simulated clock.
	Cycles int64
	// SenderCycles and ReceiverCycles are the busy times of each routine
	// (Figure 10 breakdown); they exclude synchronization waits.
	SenderCycles   int64
	ReceiverCycles int64
	// ThroughputMbps counts only correctly leaked bits, matching the
	// paper's methodology (Section 5.2.3).
	ThroughputMbps float64
	// EffectiveThroughputMbps additionally discounts by binary-symmetric-
	// channel capacity, 1 - H2(errorRate): a channel decoding everything
	// as one symbol is 50% "correct" yet carries zero information. The
	// defense evaluation uses this metric so constant-time padding shows
	// up as a complete break.
	EffectiveThroughputMbps float64
	// ErrorRate is the fraction of bits decoded incorrectly.
	ErrorRate float64
	// Latencies holds the receiver-measured latency of every probe when
	// Options.RecordLatencies is set (Figure 8).
	Latencies []int64
	// Decoded is the bit string the receiver recovered.
	Decoded []bool
}

// finalize computes derived metrics.
func (r *Result) finalize(msg, decoded []bool, cycles int64) {
	r.Bits = len(msg)
	r.Decoded = decoded
	for i := range msg {
		if i < len(decoded) && decoded[i] == msg[i] {
			r.Correct++
		}
	}
	r.Cycles = cycles
	r.ThroughputMbps = sim.ThroughputMbps(int64(r.Correct), cycles)
	if r.Bits > 0 {
		r.ErrorRate = float64(r.Bits-r.Correct) / float64(r.Bits)
	}
	r.EffectiveThroughputMbps = r.ThroughputMbps * bscCapacity(r.ErrorRate)
}

// bscCapacity returns 1 - H2(p), the capacity factor of a binary symmetric
// channel with crossover probability p.
func bscCapacity(p float64) float64 {
	if p <= 0 {
		return 1
	}
	if p >= 0.5 {
		return 0
	}
	h := -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	return 1 - h
}

// String summarizes the result.
func (r *Result) String() string {
	return fmt.Sprintf("%s: %d bits, %.2f Mb/s, error %.2f%%, %d cycles",
		r.Channel, r.Bits, r.ThroughputMbps, r.ErrorRate*100, r.Cycles)
}

// RandomMessage generates a deterministic pseudo-random bit string.
func RandomMessage(n int, seed uint64) []bool {
	rng := stats.NewRNG(seed)
	msg := make([]bool, n)
	for i := range msg {
		msg[i] = rng.Bool(0.5)
	}
	return msg
}

// BitsFromBytes expands a byte slice into its bits, MSB first.
func BitsFromBytes(data []byte) []bool {
	out := make([]bool, 0, len(data)*8)
	for _, b := range data {
		for i := 7; i >= 0; i-- {
			out = append(out, b>>uint(i)&1 == 1)
		}
	}
	return out
}

// BytesFromBits packs bits (MSB first) back into bytes; trailing bits that
// do not fill a byte are dropped.
func BytesFromBits(bits []bool) []byte {
	out := make([]byte, 0, len(bits)/8)
	for i := 0; i+8 <= len(bits); i += 8 {
		var b byte
		for j := 0; j < 8; j++ {
			b <<= 1
			if bits[i+j] {
				b |= 1
			}
		}
		out = append(out, b)
	}
	return out
}

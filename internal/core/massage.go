package core

import (
	"errors"
	"fmt"

	"repro/internal/sim"
)

// ErrMassageFailed indicates the attacker could not find enough co-located
// address pairs within its probe budget.
var ErrMassageFailed = errors.New("impact: memory massaging found too few co-located pairs")

// MassageResult is the outcome of timing-based memory massaging: for each
// requested bank slot, a pair of addresses the attacker verified to be
// same-bank different-row — the raw material of Section 4.1's "co-locate
// their data in the same set of DRAM banks" step, obtained without knowing
// the address mapping (as DRAMA reverse-engineers it on real systems).
type MassageResult struct {
	// Pairs holds (probe, partner) physical addresses per discovered
	// bank; probe and partner conflict in the row buffer.
	Pairs [][2]uint64
	// ProbeCount is how many timed accesses the search needed.
	ProbeCount int64
	// Cycles is the simulated time the search took.
	Cycles int64
}

// MassageMemory discovers `banks` same-bank/different-row address pairs by
// timing: two addresses are co-located iff accessing them alternately is
// slow (every access is a row-buffer conflict), and in different banks iff
// alternation is fast (both rows stay open). The search scans candidate
// addresses at row-sized strides against a pivot set, exactly how
// row-buffer attacks bootstrap on unknown mappings.
func MassageMemory(m *sim.Machine, c *sim.Core, banks int) (MassageResult, error) {
	if banks <= 0 {
		return MassageResult{}, fmt.Errorf("impact: non-positive bank request %d", banks)
	}
	cfg := m.Config().DRAM
	rowStride := uint64(cfg.RowBytes)
	totalBanks := cfg.TotalBanks()
	if banks > totalBanks {
		return MassageResult{}, fmt.Errorf("impact: requested %d banks, device has %d", banks, totalBanks)
	}

	res := MassageResult{}
	start := c.Now()

	// Calibrate the conflict threshold from two known-state probes on an
	// arbitrary address.
	base := uint64(0x4000_0000)
	c.TranslateTouch(base)
	c.LoadUncached(base) // open some row
	hit := c.LoadUncached(base)
	res.ProbeCount += 2
	// Scan for the first conflicting partner to learn the conflict
	// latency.
	conflictLat := int64(0)
	for i := uint64(1); i <= uint64(totalBanks)*4; i++ {
		cand := base + i*rowStride*uint64(totalBanks) // vary high bits: same bank under either scheme? timed check decides
		c.TranslateTouch(cand)
		lat := c.LoadUncached(cand)
		res.ProbeCount++
		again := c.LoadUncached(base)
		res.ProbeCount++
		if again > hit+20 {
			conflictLat = again
			break
		}
		_ = lat
	}
	if conflictLat == 0 {
		return MassageResult{}, ErrMassageFailed
	}
	threshold := hit + (conflictLat-hit)/2

	// conflicts reports whether a and b are same-bank different-row.
	conflicts := func(a, b uint64) bool {
		c.TranslateTouch(a)
		c.TranslateTouch(b)
		c.LoadUncached(a)
		latB := c.LoadUncached(b)
		latA := c.LoadUncached(a)
		res.ProbeCount += 3
		return latA > threshold && latB > threshold
	}

	// Greedily collect pairs in distinct banks: a new pair must conflict
	// internally but not with the pivots of already-claimed banks.
	claimed := make([][2]uint64, 0, banks)
	budget := totalBanks * 64
	for i := 0; len(claimed) < banks && i < budget; i++ {
		probe := base + uint64(i+1)*rowStride
		partner := uint64(0)
		for j := 1; j <= totalBanks*2; j++ {
			cand := probe + uint64(j)*rowStride
			res.ProbeCount++
			if conflicts(probe, cand) {
				partner = cand
				break
			}
		}
		if partner == 0 {
			continue
		}
		fresh := true
		for _, pair := range claimed {
			if conflicts(probe, pair[0]) {
				fresh = false
				break
			}
		}
		if fresh {
			claimed = append(claimed, [2]uint64{probe, partner})
		}
	}
	if len(claimed) < banks {
		return MassageResult{}, fmt.Errorf("%w: found %d of %d", ErrMassageFailed, len(claimed), banks)
	}
	res.Pairs = claimed
	res.Cycles = c.Now() - start
	return res, nil
}

// VerifyColocation checks a massage result against the machine's true
// address mapping (tests and documentation; a real attacker cannot do this).
func VerifyColocation(m *sim.Machine, res MassageResult) error {
	mapper := m.Mapper()
	cfg := m.Config().DRAM
	seen := make(map[int]bool, len(res.Pairs))
	for i, pair := range res.Pairs {
		a, b := mapper.Map(pair[0]), mapper.Map(pair[1])
		bankA, bankB := a.FlatBank(cfg), b.FlatBank(cfg)
		if bankA != bankB {
			return fmt.Errorf("pair %d spans banks %d and %d", i, bankA, bankB)
		}
		if a.Row == b.Row {
			return fmt.Errorf("pair %d shares row %d", i, a.Row)
		}
		if seen[bankA] {
			return fmt.Errorf("bank %d claimed twice", bankA)
		}
		seen[bankA] = true
	}
	return nil
}

package core

import (
	"repro/internal/sim"
)

// RunPnMPipelined executes the IMPACT-PnM covert channel with the overlap
// the paper describes (Section 4.1: the parties "overlap the latencies of
// their operations to increase the throughput of the attack"). The bank set
// is split into two halves: while the receiver probes batch k in one half,
// the sender transmits batch k+1 into the other, so the routines run
// concurrently without ever racing on a bank. Each batch carries half as
// many bits, but the batch period shrinks to the slower routine instead of
// the sum of both.
func RunPnMPipelined(m *sim.Machine, msg []bool, opt Options) (Result, error) {
	res := Result{Channel: "IMPACT-PnM-pipelined"}
	banks := opt.banksOrDefault(m)
	threshold := opt.Threshold
	if threshold == 0 {
		threshold = DefaultThresholdCycles
	}
	sender, receiver := m.Core(0), m.Core(1)
	if sender == nil || receiver == nil {
		return Result{}, ErrProtocol
	}
	if len(banks) < 2 {
		// Nothing to pipeline over; fall back to the serial protocol.
		return RunPnM(m, msg, opt)
	}
	half := len(banks) / 2
	groups := [2][]int{banks[:half], banks[half : 2*half]}

	colsPerRow := m.Config().DRAM.RowBytes / cacheLineBytes
	costs := m.Config().Costs

	// The receiver initializes both groups.
	for _, group := range groups {
		for _, bank := range group {
			if _, err := receiver.PEIAccess(m.AddrFor(bank, receiverInitRow, 0)); err != nil {
				return Result{}, err
			}
		}
	}
	sender.AdvanceTo(receiver.Now())
	start := receiver.Now()

	type batchInfo struct {
		bits   []bool
		group  []int
		col    int
		bump   int64
		postAt int64
	}
	var batches []batchInfo
	for off, idx := 0, 0; off < len(msg); off, idx = off+half, idx+1 {
		end := off + half
		if end > len(msg) {
			end = len(msg)
		}
		// Each group sees every second batch; the cache-line cursor per
		// group advances accordingly.
		perGroup := idx/2 + 1
		batches = append(batches, batchInfo{
			bits:  msg[off:end],
			group: groups[idx%2],
			col:   (perGroup % colsPerRow) * cacheLineBytes,
			bump:  int64(perGroup / colsPerRow),
		})
	}

	sendBatch := func(b *batchInfo) error {
		sBatch := sender.Now()
		for i, bit := range b.bits {
			sender.Advance(costs.SenderComputeCost)
			if bit {
				if _, err := sender.PEIActivate(m.AddrFor(b.group[i], senderRow+b.bump, b.col)); err != nil {
					return err
				}
			}
			sender.LoopTick()
		}
		sender.Fence()
		res.SenderCycles += sender.Now() - sBatch
		sender.Advance(costs.SemPost)
		b.postAt = sender.Now()
		return nil
	}

	decoded := make([]bool, 0, len(msg))
	recvBatch := func(b batchInfo) error {
		receiver.Advance(costs.SemWait)
		receiver.AdvanceTo(b.postAt)
		rBatch := receiver.Now()
		for i := range b.bits {
			t0 := receiver.Rdtscp()
			if _, err := receiver.PEIAccess(m.AddrFor(b.group[i], receiverInitRow+b.bump, b.col)); err != nil {
				return err
			}
			t1 := receiver.Rdtscp()
			lat := opt.filterMaintenance(t1-t0, threshold)
			if opt.RecordLatencies {
				res.Latencies = append(res.Latencies, lat)
			}
			decoded = append(decoded, lat > threshold)
			receiver.Advance(costs.DecodeCost)
			receiver.LoopTick()
		}
		receiver.Fence()
		res.ReceiverCycles += receiver.Now() - rBatch
		return nil
	}

	// Host order stays send(k) before recv(k), so bank state is always
	// consistent; the overlap lives in the clocks — the sender's batch
	// k+1 occupies the same simulated interval as the receiver's batch k
	// because they touch disjoint banks.
	for i := range batches {
		if err := sendBatch(&batches[i]); err != nil {
			return Result{}, err
		}
		if err := recvBatch(batches[i]); err != nil {
			return Result{}, err
		}
		m.AdvanceNoise(receiver.Now())
	}

	end := receiver.Now()
	if sender.Now() > end {
		end = sender.Now()
	}
	res.finalize(msg, decoded, end-start)
	return res, nil
}

package sim

import (
	"testing"
	"testing/quick"

	"repro/internal/memctrl"
)

func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	return cfg
}

func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(quietConfig())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMachineConstruction(t *testing.T) {
	m := newTestMachine(t)
	if m.NumCores() != 4 {
		t.Errorf("cores = %d, want 4", m.NumCores())
	}
	if m.Device().NumBanks() != 16 {
		t.Errorf("banks = %d, want 16", m.Device().NumBanks())
	}
	if m.Core(-1) != nil || m.Core(4) != nil {
		t.Error("out-of-range Core returned non-nil")
	}
}

func TestMachineRejectsZeroCores(t *testing.T) {
	cfg := quietConfig()
	cfg.Cores = 0
	if _, err := New(cfg); err == nil {
		t.Fatal("zero cores accepted")
	}
}

func TestCoreClockMonotonic(t *testing.T) {
	m := newTestMachine(t)
	c := m.Core(0)
	check := func(ops []uint8) bool {
		last := c.Now()
		for _, op := range ops {
			switch op % 5 {
			case 0:
				c.Load(uint64(op)*64+0x1000, 0x1)
			case 1:
				c.Rdtscp()
			case 2:
				c.Fence()
			case 3:
				c.LoadUncached(uint64(op) * 8192)
			case 4:
				c.Advance(int64(op))
			}
			if c.Now() < last {
				return false
			}
			last = c.Now()
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCoreAdvanceIgnoresNegative(t *testing.T) {
	m := newTestMachine(t)
	c := m.Core(0)
	c.Advance(100)
	c.Advance(-50)
	if c.Now() != 100 {
		t.Fatalf("clock = %d, want 100", c.Now())
	}
	c.AdvanceTo(50) // past time: no-op
	if c.Now() != 100 {
		t.Fatalf("AdvanceTo went backwards: %d", c.Now())
	}
}

func TestRdtscpCost(t *testing.T) {
	m := newTestMachine(t)
	c := m.Core(0)
	t0 := c.Rdtscp()
	t1 := c.Rdtscp()
	if t1-t0 != m.Config().Costs.TimerCost {
		t.Fatalf("back-to-back rdtscp delta = %d, want %d", t1-t0, m.Config().Costs.TimerCost)
	}
}

func TestFenceDrainsAsyncOps(t *testing.T) {
	m := newTestMachine(t)
	c := m.Core(0)
	if err := c.ActivateAsync(0, 100); err != nil {
		t.Fatal(err)
	}
	before := c.Now()
	c.Fence()
	if c.Now() <= before {
		t.Fatal("fence did not wait for the outstanding activation")
	}
	// A second fence has nothing to drain beyond its base cost.
	mid := c.Now()
	c.Fence()
	if got := c.Now() - mid; got != m.Config().Costs.FenceBase {
		t.Fatalf("idle fence cost = %d, want %d", got, m.Config().Costs.FenceBase)
	}
}

func TestSemaphoreTransfersTime(t *testing.T) {
	m := newTestMachine(t)
	sender, receiver := m.Core(0), m.Core(1)
	sem := NewSemaphore(m)
	sender.Advance(10_000)
	sem.Post(sender)
	if !sem.Wait(receiver) {
		t.Fatal("Wait failed after Post")
	}
	if receiver.Now() < sender.Now() {
		t.Fatalf("receiver clock %d behind poster %d", receiver.Now(), sender.Now())
	}
}

func TestSemaphoreWaitWithoutPost(t *testing.T) {
	m := newTestMachine(t)
	sem := NewSemaphore(m)
	if sem.Wait(m.Core(0)) {
		t.Fatal("Wait succeeded without a Post")
	}
}

func TestAddrForRoundTrip(t *testing.T) {
	m := newTestMachine(t)
	for bank := 0; bank < m.Device().NumBanks(); bank++ {
		addr := m.AddrFor(bank, 123, 64)
		coord := m.Mapper().Map(addr)
		if got := coord.FlatBank(m.Config().DRAM); got != bank {
			t.Fatalf("AddrFor(%d) mapped back to bank %d", bank, got)
		}
		if coord.Row != 123 || coord.Col != 64 {
			t.Fatalf("AddrFor round trip = row %d col %d", coord.Row, coord.Col)
		}
	}
}

func TestLoadUncachedFasterSecondTimeSameRow(t *testing.T) {
	m := newTestMachine(t)
	c := m.Core(0)
	addr := m.AddrFor(0, 50, 0)
	c.TranslateTouch(addr)
	first := c.LoadUncached(addr) // opens the row
	second := c.LoadUncached(addr)
	if second >= first {
		t.Fatalf("row-buffer hit %d not faster than activation %d", second, first)
	}
}

func TestLoadCachesTheLine(t *testing.T) {
	m := newTestMachine(t)
	c := m.Core(0)
	c.Load(0x80_0000, 0x1)
	warm := c.Load(0x80_0000, 0x1)
	// Warm load: 1-cycle TLB + 4-cycle L1.
	if warm > 10 {
		t.Fatalf("warm cached load latency = %d, want L1-hit scale", warm)
	}
}

func TestDMATransferDominatedBySoftware(t *testing.T) {
	m := newTestMachine(t)
	c := m.Core(0)
	lat := c.DMATransfer(m.AddrFor(0, 60, 0))
	minimum := m.Config().Costs.DMASyscall + m.Config().Costs.DMASetup
	if lat < minimum {
		t.Fatalf("DMA latency %d below software floor %d", lat, minimum)
	}
}

func TestNoiseDeterminism(t *testing.T) {
	cfg := quietConfig()
	cfg.Noise = NoiseConfig{EventsPerMCycle: 50, Seed: 77}
	m1, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1.AdvanceNoise(5_000_000)
	m2.AdvanceNoise(5_000_000)
	c1 := m1.Device().Counters().Snapshot()
	c2 := m2.Device().Counters().Snapshot()
	for k, v := range c1 {
		if c2[k] != v {
			t.Fatalf("noise diverged for %s: %d vs %d", k, v, c2[k])
		}
	}
	if m1.Device().Counters().Get("empty")+m1.Device().Counters().Get("conflict") == 0 {
		t.Fatal("noise injected no activations")
	}
}

func TestNoiseDisabled(t *testing.T) {
	m := newTestMachine(t)
	m.AdvanceNoise(10_000_000)
	total := m.Device().Counters().Get("hit") + m.Device().Counters().Get("empty") +
		m.Device().Counters().Get("conflict")
	if total != 0 {
		t.Fatalf("disabled noise injected %d accesses", total)
	}
}

func TestPartitionedMachineFaultsGracefully(t *testing.T) {
	cfg := quietConfig()
	cfg.Mem.Defense = memctrl.DefensePartition
	m, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Controller().SetOwner(0, 0); err != nil {
		t.Fatal(err)
	}
	// Core 1 loading from core 0's bank must not panic; the backend
	// reports a worst-case-latency fault.
	c := m.Core(1)
	addr := m.AddrFor(0, 10, 0)
	if lat := c.LoadUncached(addr); lat <= 0 {
		t.Fatalf("partition fault latency = %d", lat)
	}
}

func TestThroughputMbps(t *testing.T) {
	// 2.6e9 cycles = 1 second; 1e6 bits in 1 s = 1 Mb/s.
	if got := ThroughputMbps(1_000_000, int64(FrequencyHz)); got != 1 {
		t.Fatalf("ThroughputMbps = %v, want 1", got)
	}
	if got := ThroughputMbps(100, 0); got != 0 {
		t.Fatalf("zero-cycle throughput = %v, want 0", got)
	}
}

func TestCoreReset(t *testing.T) {
	m := newTestMachine(t)
	c := m.Core(0)
	c.Advance(500)
	if err := c.ActivateAsync(0, 1); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("clock after Reset = %d", c.Now())
	}
	before := c.Now()
	c.Fence()
	if got := c.Now() - before; got != m.Config().Costs.FenceBase {
		t.Fatalf("fence after Reset drained stale ops: %d", got)
	}
}

package sim

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/pim"
	"repro/internal/tlb"
)

// Core is one simulated CPU core with its own logical clock, private L1/L2
// caches over the shared LLC, an MMU, and access to the machine's PIM
// engines. A core's clock only moves forward; all latencies the attack code
// "measures" are differences of this clock, never wall-clock time.
type Core struct {
	m    *Machine
	id   int
	hier *cache.Hierarchy
	mmu  *tlb.MMU

	clock   int64
	pending []int64
}

// newCore assembles one core over the shared LLC.
func newCore(m *Machine, id int, hcfg cache.HierarchyConfig, llc *cache.Cache, backend cache.Level) (*Core, error) {
	hier, err := cache.NewHierarchySharedLLC(hcfg, llc, backend)
	if err != nil {
		return nil, err
	}
	c := &Core{m: m, id: id, hier: hier}
	// Page-table walks go through the shared LLC to DRAM: the first walk
	// of a page disturbs a row buffer, repeats mostly hit the LLC.
	const pageTableBase = 0x7f00_0000_0000
	c.mmu = tlb.DefaultMMU(func(now int64, level int, vaddr uint64) int64 {
		pte := pageTableBase + (vaddr>>12)*8 + uint64(level)*(1<<28)
		return llc.Access(now, pte, false)
	})
	return c, nil
}

// ID returns the core index; it doubles as the process identifier for
// memory-controller ownership checks.
func (c *Core) ID() int { return c.id }

// Now returns the core's current cycle.
func (c *Core) Now() int64 { return c.clock }

// Advance moves the clock forward by d cycles (negative values are ignored).
//
//impact:hotpath
func (c *Core) Advance(d int64) {
	if d > 0 {
		c.clock += d
	}
}

// AdvanceTo moves the clock forward to t if t is in the future.
//
//impact:hotpath
func (c *Core) AdvanceTo(t int64) {
	if t > c.clock {
		c.clock = t
	}
}

// Hierarchy exposes the core's cache hierarchy.
func (c *Core) Hierarchy() *cache.Hierarchy { return c.hier }

// MMU exposes the core's MMU.
func (c *Core) MMU() *tlb.MMU { return c.mmu }

// Rdtscp reads the timestamp counter: it advances the clock by the timer
// cost and returns the post-read cycle, mirroring how rdtscp serializes
// reads on real hardware.
//
//impact:hotpath
func (c *Core) Rdtscp() int64 {
	c.clock += c.m.cfg.Costs.TimerCost
	return c.clock
}

// Serialize models the cpuid instruction the paper's receiver issues around
// rdtscp for precise measurement.
func (c *Core) Serialize() {
	c.clock += c.m.cfg.Costs.SerializeCost
}

// Fence drains all outstanding asynchronous operations issued by this core
// (Listing 1/2 memory_fence): the clock advances to the latest completion.
func (c *Core) Fence() {
	c.clock += c.m.cfg.Costs.FenceBase
	for _, t := range c.pending {
		if t > c.clock {
			c.clock = t
		}
	}
	c.pending = c.pending[:0]
}

// track registers an asynchronous completion for the next fence.
func (c *Core) track(completedAt int64) {
	c.pending = append(c.pending, completedAt)
}

// TranslateTouch warms the translation for vaddr without touching the data:
// the attacker's trick for keeping page walks out of its timed probes.
//
//impact:hotpath
func (c *Core) TranslateTouch(vaddr uint64) int64 {
	lat := c.mmu.Translate(c.clock, vaddr, false)
	c.clock += lat
	return lat
}

// Load performs a demand load at the given virtual address and program
// counter: address translation (possibly a page-table walk) followed by the
// cache hierarchy. The clock advances by the total latency, which is also
// returned.
//
//impact:hotpath
func (c *Core) Load(vaddr uint64, pc uint64) int64 {
	lat := c.mmu.Translate(c.clock, vaddr, false)
	lat += c.hier.Load(c.clock+lat, vaddr, pc)
	c.clock += lat
	return lat
}

// LoadOverlapped performs a demand load whose miss latency partially
// overlaps with other outstanding misses (memory-level parallelism), as in
// an eviction-set loop. Cache and DRAM state update fully, but the clock
// advances only by the exposed fraction: the LLC lookup plus mlp times the
// remaining miss latency.
//
//impact:hotpath
func (c *Core) LoadOverlapped(vaddr uint64, pc uint64, mlp float64) int64 {
	lat := c.mmu.Translate(c.clock, vaddr, false)
	full := c.hier.Load(c.clock+lat, vaddr, pc)
	llcLat := c.m.llc.Config().Latency
	exposed := full
	if full > llcLat {
		exposed = llcLat + int64(mlp*float64(full-llcLat))
	}
	lat += exposed
	c.clock += lat
	return lat
}

// LoadUncached performs a load that bypasses the cache hierarchy (the
// idealized direct-memory-access primitive of Section 3.3). Translation is
// still paid.
func (c *Core) LoadUncached(vaddr uint64) int64 {
	lat := c.mmu.Translate(c.clock, vaddr, false)
	coord := c.m.mapper.Map(vaddr)
	bank := coord.FlatBank(c.m.cfg.DRAM)
	res, err := c.m.ctrl.Access(c.clock+lat, bank, coord.Row, c.id)
	if err == nil {
		lat += res.Latency
	} else {
		lat += c.m.cfg.DRAM.Timing.WorstCaseLatency()
	}
	c.clock += lat
	return lat
}

// ActivateAsync issues a fire-and-forget row activation straight at the
// memory controller (an idealized direct-access request with no cache or
// PIM interface cost). The clock advances by a small issue cost; the
// completion is drained by the next Fence.
func (c *Core) ActivateAsync(bank int, row int64) error {
	const issueCost = 10
	res, err := c.m.ctrl.Activate(c.clock+issueCost, bank, row, c.id)
	if err != nil {
		return err
	}
	c.clock += issueCost
	c.track(c.clock + res.Latency)
	return nil
}

// Flush executes clflush on the line containing vaddr.
func (c *Core) Flush(vaddr uint64) int64 {
	lat := c.hier.Flush(c.clock, vaddr)
	c.clock += lat
	return lat
}

// PEIAccess executes a PEI synchronously (receiver probe, Listing 1 line
// 24): address translation, then the PEI round trip. The clock advances by
// the total latency.
func (c *Core) PEIAccess(vaddr uint64) (pim.PEIResult, error) {
	c.clock += c.mmu.Translate(c.clock, vaddr, false)
	res, err := c.m.pei.Execute(c.clock, vaddr, c.id)
	if err != nil {
		return pim.PEIResult{}, err
	}
	c.clock += res.Latency
	return res, nil
}

// PEIActivate issues a fire-and-forget PEI that opens the target row
// (sender transmit, Listing 1 line 11). Translation and the issue cost are
// charged now; the completion is drained by the next Fence.
func (c *Core) PEIActivate(vaddr uint64) (pim.PEIResult, error) {
	c.clock += c.mmu.Translate(c.clock, vaddr, false)
	res, err := c.m.pei.ExecuteAsync(c.clock, vaddr, c.id)
	if err != nil {
		return pim.PEIResult{}, err
	}
	c.clock += res.Latency
	c.track(res.CompletedAt)
	return res, nil
}

// RowCloneSubmit issues one masked, asynchronous RowClone request
// (Listing 2 line 20).
func (c *Core) RowCloneSubmit(banks []int, mask uint64, srcRow, dstRow int64) (pim.RowCloneResult, error) {
	res, err := c.m.rowClone.Submit(c.clock, banks, mask, srcRow, dstRow, c.id)
	if err != nil {
		return pim.RowCloneResult{}, err
	}
	c.clock += res.IssueLatency
	c.track(res.CompletedAt)
	return res, nil
}

// RowCloneMeasure issues a single-bank RowClone synchronously and returns
// the device result (receiver probe, Listing 2 line 31).
func (c *Core) RowCloneMeasure(bank int, srcRow, dstRow int64) (dram.AccessResult, error) {
	res, err := c.m.rowClone.Measure(c.clock, bank, srcRow, dstRow, c.id)
	if err != nil {
		return dram.AccessResult{}, err
	}
	c.clock += res.Latency
	return res, nil
}

// DMATransfer models one transfer through the (R)DMA engine: syscall and
// descriptor-setup overheads dominate, then the device touches DRAM
// directly.
func (c *Core) DMATransfer(vaddr uint64) int64 {
	costs := c.m.cfg.Costs
	lat := costs.DMASyscall + costs.DMASetup
	coord := c.m.mapper.Map(vaddr)
	bank := coord.FlatBank(c.m.cfg.DRAM)
	res, err := c.m.ctrl.Access(c.clock+lat, bank, coord.Row, c.id)
	if err == nil {
		lat += res.Latency
	} else {
		lat += c.m.cfg.DRAM.Timing.WorstCaseLatency()
	}
	c.clock += lat
	return lat
}

// LoopTick charges the per-iteration loop overhead of attack loops.
//
//impact:hotpath
func (c *Core) LoopTick() {
	c.clock += c.m.cfg.Costs.LoopOverhead
}

// Reset rewinds the core's clock and pending operations (used between
// experiment repetitions; cache/TLB contents persist unless flushed).
func (c *Core) Reset() {
	c.clock = 0
	c.pending = c.pending[:0]
}

package sim

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// Pool recycles Machine allocations across runs. Building a machine costs
// ~9 MB and ~17k allocations (DRAM banks, three cache levels' line arrays),
// which is roughly half of a cold run; a pooled machine whose allocation
// shape matches the requested configuration is Reset in microseconds
// instead. Machines are pooled per shape — the tuple of everything
// Machine.Reset refuses to change (core count, prefetcher wiring, DRAM
// bank geometry, LLC geometry) — so a sweep alternating between, say, two
// LLC sizes reuses a machine of each shape instead of thrashing one slot.
//
// Pool is safe for concurrent use. Get hands out machines configured
// exactly as New(cfg) would produce them — Reset is provably state-free
// (see TestPooledMachineDeterminism in internal/exp) — and Put returns a
// machine for reuse in any state, since the next Get fully reinitializes
// it. Machines are retained under sync.Pool semantics: idle ones may be
// dropped at any GC, so the pool never pins memory under low load.
type Pool struct {
	mu     sync.Mutex
	shapes map[string]*sync.Pool

	hits   atomic.Int64
	misses atomic.Int64
	drops  atomic.Int64
}

// NewPool returns an empty machine pool.
func NewPool() *Pool {
	return &Pool{shapes: make(map[string]*sync.Pool)}
}

// PoolStats counts pool traffic: Hits reused a pooled machine, Misses built
// a fresh one, and Drops (a subset of Misses) discarded a pooled machine
// that Reset nevertheless refused (an invalid or exotic configuration the
// shape key cannot distinguish).
type PoolStats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	Drops  int64 `json:"drops"`
}

// shapeKey renders the allocation shape Machine.Reset requires to match:
// two configs with equal keys differ only in parameters Reset can apply
// in place. LLC line size is fixed by hierarchyConfig, so bytes+ways
// determine the LLC arrays.
func shapeKey(cfg Config) string {
	return fmt.Sprintf("c%d,p%t,b%d,r%d,l%d/%d",
		cfg.Cores, cfg.EnablePrefetchers,
		cfg.DRAM.TotalBanks(), cfg.DRAM.RowBytes,
		cfg.LLCBytes, cfg.LLCWays)
}

// shape returns the sync.Pool for one allocation shape.
func (p *Pool) shape(key string) *sync.Pool {
	p.mu.Lock()
	defer p.mu.Unlock()
	sp := p.shapes[key]
	if sp == nil {
		sp = &sync.Pool{}
		p.shapes[key] = sp
	}
	return sp
}

// Get returns a machine configured as New(cfg) would produce, reusing a
// pooled machine's allocations when possible.
func (p *Pool) Get(cfg Config) (*Machine, error) {
	sp := p.shape(shapeKey(cfg))
	if m, _ := sp.Get().(*Machine); m != nil {
		if m.Reset(cfg) {
			p.hits.Add(1)
			return m, nil
		}
		// Reset refused despite the matching shape key (for example a
		// config that no longer validates): discard to GC and build fresh
		// rather than re-pooling a machine Get can never hand out.
		p.drops.Add(1)
	}
	m, err := New(cfg)
	if err != nil {
		return nil, err
	}
	p.misses.Add(1)
	return m, nil
}

// Put returns a machine to the pool for a future Get of the same shape.
// It accepts machines in any state (including mid-run state after a
// panic): Get fully reinitializes them before reuse. Put(nil) is a no-op.
func (p *Pool) Put(m *Machine) {
	if m != nil {
		p.shape(shapeKey(m.Config())).Put(m)
	}
}

// Stats returns a snapshot of pool traffic counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Hits:   p.hits.Load(),
		Misses: p.misses.Load(),
		Drops:  p.drops.Load(),
	}
}

//go:build race

package sim

// raceEnabled reports whether the race detector is compiled in. Under it
// sync.Pool deliberately drops a fraction of Puts, so tests that pin
// exact pool hit/miss counts cannot hold and skip themselves.
const raceEnabled = true

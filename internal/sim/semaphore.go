package sim

// Semaphore synchronizes two simulated cores the way the paper's sender and
// receiver synchronize (Section 4.1 "Sender-Receiver Synchronization"): the
// value counts batches transmitted but not yet probed; the receiver blocks
// until the sender posts. Blocking is modeled by advancing the waiter's
// logical clock to the poster's clock.
type Semaphore struct {
	value   int
	readyAt int64
	costs   SoftCosts
}

// NewSemaphore returns a semaphore with the machine's synchronization costs.
func NewSemaphore(m *Machine) *Semaphore {
	return &Semaphore{costs: m.cfg.Costs}
}

// Post increments the semaphore from core c.
func (s *Semaphore) Post(c *Core) {
	c.Advance(s.costs.SemPost)
	s.value++
	if c.Now() > s.readyAt {
		s.readyAt = c.Now()
	}
}

// Wait decrements the semaphore from core c, blocking (advancing c's clock)
// until a post has happened. The harness drives sender and receiver in
// program order, so a Wait without a prior Post indicates a protocol bug;
// it is reported via the return value.
func (s *Semaphore) Wait(c *Core) bool {
	c.Advance(s.costs.SemWait)
	if s.value <= 0 {
		return false
	}
	s.value--
	c.AdvanceTo(s.readyAt)
	return true
}

// Value returns the current count (for tests).
func (s *Semaphore) Value() int { return s.value }

// Package sim assembles the full simulated system of the paper's Table 2:
// out-of-order x86 cores at 2.6 GHz with rdtscp/cpuid timing, a three-level
// cache hierarchy, an MMU with a DRAM-visiting page-table walker, a memory
// controller with defenses, PEI and RowClone engines, a DMA engine with OS
// software-stack overheads, and deterministic background noise sources.
//
// Everything is measured in simulated CPU cycles on per-core logical clocks;
// no wall-clock time is ever read, so host GC pauses and scheduler jitter
// cannot perturb any measured latency (see DESIGN.md).
package sim

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/pim"
)

// FrequencyHz is the simulated core clock (Table 2: 2.6 GHz).
const FrequencyHz = 2.6e9

// SoftCosts collects the software-path cost constants calibrated against the
// paper's headline numbers (see DESIGN.md "Calibration targets").
type SoftCosts struct {
	// TimerCost is the cost of one rdtscp read.
	TimerCost int64
	// SerializeCost is the cost of the cpuid serialization the paper's
	// receiver pairs with rdtscp for precise measurement.
	SerializeCost int64
	// LoopOverhead is the per-iteration branch/index cost of the attack
	// loops.
	LoopOverhead int64
	// DecodeCost is the threshold compare + store per received bit.
	DecodeCost int64
	// SemPost and SemWait are the semaphore synchronization costs of the
	// sender/receiver protocol.
	SemPost, SemWait int64
	// FenceBase is the fixed cost of a memory fence before waiting for
	// outstanding operations.
	FenceBase int64
	// DMASyscall and DMASetup model the deep software stack of the DMA
	// engine path (context switch, descriptor setup).
	DMASyscall, DMASetup int64
	// EvictionMLP is the fraction of DRAM latency exposed per eviction-set
	// load once misses pipeline in the memory controller.
	EvictionMLP float64
	// SenderComputeCost is the per-bit message-inspection cost on the
	// sender side (bit test, address computation).
	SenderComputeCost int64
	// MaskComputeCost is the cost of building a RowClone bank mask for a
	// whole batch.
	MaskComputeCost int64
	// FlushOverhead is the serialization cost of a clflush (plus the
	// mfence that must order it) beyond the cache tag probes.
	FlushOverhead int64
	// SideProbeBookkeeping is the side-channel attacker's per-probe
	// record-keeping cost (per-bank state update, timestamp logging).
	SideProbeBookkeeping int64
}

// DefaultSoftCosts returns the calibrated constants.
func DefaultSoftCosts() SoftCosts {
	return SoftCosts{
		TimerCost:            15,
		SerializeCost:        25,
		LoopOverhead:         5,
		DecodeCost:           5,
		SemPost:              60,
		SemWait:              60,
		FenceBase:            10,
		DMASyscall:           1700,
		DMASetup:             200,
		EvictionMLP:          0.30,
		SenderComputeCost:    120,
		MaskComputeCost:      30,
		FlushOverhead:        250,
		SideProbeBookkeeping: 60,
	}
}

// NoiseConfig parameterizes background DRAM activity (prefetchers and page
// table walkers of unrelated processes; Section 5.2.3).
type NoiseConfig struct {
	// EventsPerMCycle is the expected number of background row
	// activations per million cycles across the whole device.
	EventsPerMCycle float64
	// Seed drives the deterministic noise stream.
	Seed uint64
}

// Config describes a whole simulated system.
type Config struct {
	// DRAM is the device geometry and timing (Table 2 defaults).
	DRAM dram.Config
	// Mapping selects the physical-address-to-bank scattering.
	Mapping dram.MappingScheme
	// Mem is the memory controller configuration (defense selection).
	Mem memctrl.Config
	// LLCBytes and LLCWays size the shared last-level cache; LLCLatency
	// overrides the CACTI-derived latency when positive.
	LLCBytes   int
	LLCWays    int
	LLCLatency int64
	// Cores is the number of simulated cores (Table 2: 4).
	Cores int
	// Costs are the calibrated software-path constants.
	Costs SoftCosts
	// PEI and RowClone cost constants.
	PEICosts      pim.PEICosts
	RowCloneCosts pim.RowCloneCosts
	// Noise configures background DRAM activity.
	Noise NoiseConfig
	// EnablePrefetchers attaches the cache prefetchers (noise sources).
	EnablePrefetchers bool
}

// DefaultConfig returns the paper's Table 2 system with an 8 MB shared LLC
// (2 MB/core x 4 cores).
func DefaultConfig() Config {
	return Config{
		DRAM:              dram.DefaultConfig(),
		Mapping:           dram.MapBankXOR,
		Mem:               memctrl.DefaultConfig(),
		LLCBytes:          8 << 20,
		LLCWays:           16,
		Cores:             4,
		Costs:             DefaultSoftCosts(),
		PEICosts:          pim.DefaultPEICosts(),
		RowCloneCosts:     pim.DefaultRowCloneCosts(),
		Noise:             NoiseConfig{EventsPerMCycle: 3, Seed: 0x1337},
		EnablePrefetchers: true,
	}
}

// CyclesToSeconds converts simulated cycles to seconds at the configured
// frequency.
func CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / FrequencyHz
}

// ThroughputMbps converts bits transferred over a cycle span into megabits
// per second.
func ThroughputMbps(bits int64, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(bits) / CyclesToSeconds(cycles) / 1e6
}

// hierarchyConfig derives the cache hierarchy configuration.
func (c Config) hierarchyConfig(llcLatency int64) cache.HierarchyConfig {
	cfg := cache.DefaultHierarchyConfig(c.LLCBytes, c.LLCWays, llcLatency)
	cfg.EnablePrefetchers = c.EnablePrefetchers
	return cfg
}

// Package sim assembles the full simulated system of the paper's Table 2:
// out-of-order x86 cores at 2.6 GHz with rdtscp/cpuid timing, a three-level
// cache hierarchy, an MMU with a DRAM-visiting page-table walker, a memory
// controller with defenses, PEI and RowClone engines, a DMA engine with OS
// software-stack overheads, and deterministic background noise sources.
//
// Everything is measured in simulated CPU cycles on per-core logical clocks;
// no wall-clock time is ever read, so host GC pauses and scheduler jitter
// cannot perturb any measured latency (see DESIGN.md).
package sim

import (
	"repro/internal/cache"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/pim"
)

// FrequencyHz is the simulated core clock (Table 2: 2.6 GHz).
const FrequencyHz = 2.6e9

// SoftCosts collects the software-path cost constants calibrated against the
// paper's headline numbers (see DESIGN.md "Calibration targets").
type SoftCosts struct {
	// TimerCost is the cost of one rdtscp read.
	TimerCost int64 `json:"timer_cost"`
	// SerializeCost is the cost of the cpuid serialization the paper's
	// receiver pairs with rdtscp for precise measurement.
	SerializeCost int64 `json:"serialize_cost"`
	// LoopOverhead is the per-iteration branch/index cost of the attack
	// loops.
	LoopOverhead int64 `json:"loop_overhead"`
	// DecodeCost is the threshold compare + store per received bit.
	DecodeCost int64 `json:"decode_cost"`
	// SemPost and SemWait are the semaphore synchronization costs of the
	// sender/receiver protocol.
	SemPost int64 `json:"sem_post"`
	SemWait int64 `json:"sem_wait"`
	// FenceBase is the fixed cost of a memory fence before waiting for
	// outstanding operations.
	FenceBase int64 `json:"fence_base"`
	// DMASyscall and DMASetup model the deep software stack of the DMA
	// engine path (context switch, descriptor setup).
	DMASyscall int64 `json:"dma_syscall"`
	DMASetup   int64 `json:"dma_setup"`
	// EvictionMLP is the fraction of DRAM latency exposed per eviction-set
	// load once misses pipeline in the memory controller.
	EvictionMLP float64 `json:"eviction_mlp"`
	// SenderComputeCost is the per-bit message-inspection cost on the
	// sender side (bit test, address computation).
	SenderComputeCost int64 `json:"sender_compute_cost"`
	// MaskComputeCost is the cost of building a RowClone bank mask for a
	// whole batch.
	MaskComputeCost int64 `json:"mask_compute_cost"`
	// FlushOverhead is the serialization cost of a clflush (plus the
	// mfence that must order it) beyond the cache tag probes.
	FlushOverhead int64 `json:"flush_overhead"`
	// SideProbeBookkeeping is the side-channel attacker's per-probe
	// record-keeping cost (per-bank state update, timestamp logging).
	SideProbeBookkeeping int64 `json:"side_probe_bookkeeping"`
}

// DefaultSoftCosts returns the calibrated constants.
func DefaultSoftCosts() SoftCosts {
	return SoftCosts{
		TimerCost:            15,
		SerializeCost:        25,
		LoopOverhead:         5,
		DecodeCost:           5,
		SemPost:              60,
		SemWait:              60,
		FenceBase:            10,
		DMASyscall:           1700,
		DMASetup:             200,
		EvictionMLP:          0.30,
		SenderComputeCost:    120,
		MaskComputeCost:      30,
		FlushOverhead:        250,
		SideProbeBookkeeping: 60,
	}
}

// NoiseConfig parameterizes background DRAM activity (prefetchers and page
// table walkers of unrelated processes; Section 5.2.3).
type NoiseConfig struct {
	// EventsPerMCycle is the expected number of background row
	// activations per million cycles across the whole device.
	EventsPerMCycle float64 `json:"events_per_mcycle"`
	// Seed drives the deterministic noise stream.
	Seed uint64 `json:"seed"`
}

// Config describes a whole simulated system. The JSON form (see FromJSON)
// is the declarative surface of the experiment engine and the HTTP service,
// so every field carries a stable snake_case tag.
type Config struct {
	// DRAM is the device geometry and timing (Table 2 defaults).
	DRAM dram.Config `json:"dram"`
	// Mapping selects the physical-address-to-bank scattering.
	Mapping dram.MappingScheme `json:"mapping"`
	// Mem is the memory controller configuration (defense selection).
	Mem memctrl.Config `json:"mem"`
	// LLCBytes and LLCWays size the shared last-level cache; LLCLatency
	// overrides the CACTI-derived latency when positive.
	LLCBytes   int   `json:"llc_bytes"`
	LLCWays    int   `json:"llc_ways"`
	LLCLatency int64 `json:"llc_latency"`
	// Cores is the number of simulated cores (Table 2: 4).
	Cores int `json:"cores"`
	// Costs are the calibrated software-path constants.
	Costs SoftCosts `json:"costs"`
	// PEI and RowClone cost constants.
	PEICosts      pim.PEICosts      `json:"pei_costs"`
	RowCloneCosts pim.RowCloneCosts `json:"rowclone_costs"`
	// Noise configures background DRAM activity.
	Noise NoiseConfig `json:"noise"`
	// EnablePrefetchers attaches the cache prefetchers (noise sources).
	EnablePrefetchers bool `json:"enable_prefetchers"`
}

// DefaultConfig returns the paper's Table 2 system with an 8 MB shared LLC
// (2 MB/core x 4 cores).
func DefaultConfig() Config {
	return Config{
		DRAM:              dram.DefaultConfig(),
		Mapping:           dram.MapBankXOR,
		Mem:               memctrl.DefaultConfig(),
		LLCBytes:          8 << 20,
		LLCWays:           16,
		Cores:             4,
		Costs:             DefaultSoftCosts(),
		PEICosts:          pim.DefaultPEICosts(),
		RowCloneCosts:     pim.DefaultRowCloneCosts(),
		Noise:             NoiseConfig{EventsPerMCycle: 3, Seed: 0x1337},
		EnablePrefetchers: true,
	}
}

// CyclesToSeconds converts simulated cycles to seconds at the configured
// frequency.
func CyclesToSeconds(cycles int64) float64 {
	return float64(cycles) / FrequencyHz
}

// ThroughputMbps converts bits transferred over a cycle span into megabits
// per second.
func ThroughputMbps(bits int64, cycles int64) float64 {
	if cycles <= 0 {
		return 0
	}
	return float64(bits) / CyclesToSeconds(cycles) / 1e6
}

// hierarchyConfig derives the cache hierarchy configuration.
func (c Config) hierarchyConfig(llcLatency int64) cache.HierarchyConfig {
	cfg := cache.DefaultHierarchyConfig(c.LLCBytes, c.LLCWays, llcLatency)
	cfg.EnablePrefetchers = c.EnablePrefetchers
	return cfg
}

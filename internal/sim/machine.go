package sim

import (
	"fmt"

	"repro/internal/cache"
	"repro/internal/cacti"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/pim"
)

// Machine is one fully assembled simulated system.
type Machine struct {
	cfg    Config
	device *dram.Device
	ctrl   *memctrl.Controller
	mapper *dram.AddrMapper
	llc    *cache.Cache
	cores  []*Core

	pei      *pim.PEIEngine
	rowClone *pim.RowCloneEngine
	noise    *Noise
}

// New builds a machine from the configuration.
func New(cfg Config) (*Machine, error) {
	device, err := dram.NewDevice(cfg.DRAM)
	if err != nil {
		return nil, fmt.Errorf("dram: %w", err)
	}
	ctrl := memctrl.New(device, cfg.Mem)
	mapper, err := dram.NewAddrMapper(cfg.DRAM, cfg.Mapping)
	if err != nil {
		return nil, err
	}

	llcLatency := cfg.LLCLatency
	if llcLatency <= 0 {
		llcLatency = cacti.LLCLatencyWays(float64(cfg.LLCBytes)/float64(1<<20), cfg.LLCWays)
	}
	hcfg := cfg.hierarchyConfig(llcLatency)

	m := &Machine{cfg: cfg, device: device, ctrl: ctrl, mapper: mapper}

	// The shared LLC sits over the memory backend; each core stacks a
	// private L1/L2 on top of it.
	sharedBackend := &memBackend{m: m, proc: -1}
	llc, err := cache.New(hcfg.LLC, sharedBackend)
	if err != nil {
		return nil, fmt.Errorf("llc: %w", err)
	}
	m.llc = llc

	if cfg.Cores < 1 {
		return nil, fmt.Errorf("sim: need at least one core, got %d", cfg.Cores)
	}
	m.cores = make([]*Core, cfg.Cores)
	for i := range m.cores {
		core, err := newCore(m, i, hcfg, llc, sharedBackend)
		if err != nil {
			return nil, fmt.Errorf("core %d: %w", i, err)
		}
		core.hier.FlushOverhead = cfg.Costs.FlushOverhead
		m.cores[i] = core
	}
	// The LLC is inclusive: an LLC eviction back-invalidates the private
	// L1/L2 copies, which is what lets eviction sets displace another
	// core's line.
	llc.SetEvictHook(func(addr uint64) {
		for _, c := range m.cores {
			c.hier.L1().Invalidate(addr)
			c.hier.L2().Invalidate(addr)
		}
	})

	m.pei = pim.NewPEIEngine(ctrl, mapper, llc, cfg.PEICosts)
	m.rowClone = pim.NewRowCloneEngine(ctrl, cfg.RowCloneCosts)
	m.noise = newNoise(m, cfg.Noise)
	return m, nil
}

// Reset returns the machine to the exact state New(cfg) would produce,
// reusing the expensive allocations — DRAM banks with their row buffers and
// every cache level's line arrays (~9 MB, ~17k allocations per machine) —
// when the new configuration's allocation shape matches the old one. It
// reports whether reuse was possible; on false the machine is left
// untouched and the caller must build a fresh one with New.
//
// Reuse requires: same core count, same DRAM bank count and row size, same
// LLC geometry (bytes/ways), and the same prefetcher setting. Everything
// else (timing, defenses, costs, noise seed, LLC latency) reconfigures in
// place. Reset must be provably state-free: the pool-purity test suite in
// internal/exp runs every scenario on pooled and fresh machines and
// requires byte-identical reports.
func (m *Machine) Reset(cfg Config) bool {
	if cfg.Cores != m.cfg.Cores || cfg.Cores < 1 || cfg.EnablePrefetchers != m.cfg.EnablePrefetchers {
		return false
	}
	if cfg.DRAM.Validate() != nil ||
		cfg.DRAM.TotalBanks() != m.cfg.DRAM.TotalBanks() ||
		cfg.DRAM.RowBytes != m.cfg.DRAM.RowBytes {
		return false
	}
	llcLatency := cfg.LLCLatency
	if llcLatency <= 0 {
		llcLatency = cacti.LLCLatencyWays(float64(cfg.LLCBytes)/float64(1<<20), cfg.LLCWays)
	}
	hcfg := cfg.hierarchyConfig(llcLatency)
	llcCfg := m.llc.Config()
	if hcfg.LLC.SizeBytes != llcCfg.SizeBytes || hcfg.LLC.Ways != llcCfg.Ways || hcfg.LLC.LineBytes != llcCfg.LineBytes {
		return false
	}
	mapper, err := dram.NewAddrMapper(cfg.DRAM, cfg.Mapping)
	if err != nil {
		return false
	}
	// All checks passed: commit. From here every step succeeds, so the
	// machine can never be left half-reconfigured.
	m.cfg = cfg
	m.device.Reconfigure(cfg.DRAM)
	m.ctrl = memctrl.New(m.device, cfg.Mem)
	m.mapper = mapper
	m.llc.Reconfigure(hcfg.LLC)
	for _, c := range m.cores {
		c.hier.ResetPrivate()
		c.hier.FlushOverhead = cfg.Costs.FlushOverhead
		c.mmu.Reset()
		c.Reset()
	}
	// The tiny engines close over the controller/mapper just rebuilt, so
	// they are rebuilt rather than reset; their cost is a few map/struct
	// allocations, not the megabytes the reuse path exists to save.
	m.pei = pim.NewPEIEngine(m.ctrl, m.mapper, m.llc, cfg.PEICosts)
	m.rowClone = pim.NewRowCloneEngine(m.ctrl, cfg.RowCloneCosts)
	m.noise = newNoise(m, cfg.Noise)
	return true
}

// Config returns the machine configuration.
func (m *Machine) Config() Config { return m.cfg }

// Device returns the DRAM device.
func (m *Machine) Device() *dram.Device { return m.device }

// Controller returns the memory controller.
func (m *Machine) Controller() *memctrl.Controller { return m.ctrl }

// Mapper returns the physical address mapper.
func (m *Machine) Mapper() *dram.AddrMapper { return m.mapper }

// LLC returns the shared last-level cache.
func (m *Machine) LLC() *cache.Cache { return m.llc }

// PEI returns the PIM-enabled-instructions engine.
func (m *Machine) PEI() *pim.PEIEngine { return m.pei }

// RowClone returns the RowClone engine.
func (m *Machine) RowClone() *pim.RowCloneEngine { return m.rowClone }

// Core returns core i, or nil if out of range.
func (m *Machine) Core(i int) *Core {
	if i < 0 || i >= len(m.cores) {
		return nil
	}
	return m.cores[i]
}

// NumCores returns the core count.
func (m *Machine) NumCores() int { return len(m.cores) }

// AdvanceNoise injects background DRAM activity (prefetcher fills, page
// table walks of unrelated processes) up to simulated time t. Attack
// harnesses call it at batch boundaries so noise interleaves with probes.
func (m *Machine) AdvanceNoise(t int64) {
	m.noise.AdvanceTo(t)
}

// AddrFor composes the physical address that lands in the given bank, row
// and byte offset — the memory-massaging primitive attackers use to
// co-locate data (Section 4.1 "Before the attack...").
func (m *Machine) AddrFor(bank int, row int64, col int) uint64 {
	return m.mapper.Compose(bank, row, col)
}

// memBackend adapts the memory controller to the cache.Level interface so
// cache misses and writebacks reach simulated DRAM.
type memBackend struct {
	m    *Machine
	proc int
}

var _ cache.Level = (*memBackend)(nil)

func (b *memBackend) Access(now int64, addr uint64, write bool) int64 {
	coord := b.m.mapper.Map(addr)
	bank := coord.FlatBank(b.m.cfg.DRAM)
	res, err := b.m.ctrl.Access(now, bank, coord.Row, b.proc)
	if err != nil {
		// Partition violations surface as a worst-case-latency fault
		// rather than an error in the cache path.
		return b.m.cfg.DRAM.Timing.WorstCaseLatency()
	}
	return res.Latency
}

package sim

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dram"
	"repro/internal/memctrl"
)

// TestConfigJSONRoundTrip pins that encode/decode is lossless: the JSON
// form is the experiment engine's canonical identity for a run, so any
// field that fails to round-trip would silently decouple the cache key
// from the simulated system.
func TestConfigJSONRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LLCBytes = 16 << 20
	cfg.LLCWays = 32
	cfg.Cores = 8
	cfg.Mapping = dram.MapRowInterleaved
	cfg.Mem.Defense = memctrl.DefenseAdaptive
	cfg.Mem.ACT = memctrl.ACTAggressive()
	cfg.Noise = NoiseConfig{EventsPerMCycle: 7.5, Seed: 0xdeadbeef}
	cfg.DRAM.Maintenance = dram.DDR5RFM().WithRefresh()
	cfg.EnablePrefetchers = false

	data, err := cfg.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(data)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cfg, back) {
		t.Fatalf("round trip lost information:\nin:  %+v\nout: %+v", cfg, back)
	}

	// Encoding is deterministic byte-for-byte.
	data2, err := back.ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatalf("re-encoding differs:\n%s\n%s", data, data2)
	}
}

// TestConfigJSONEnumsAreStrings pins the human-readable JSON forms of the
// two enums so spec files stay greppable.
func TestConfigJSONEnumsAreStrings(t *testing.T) {
	data, err := DefaultConfig().ToJSON()
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if got := doc["mapping"]; got != "bank-xor" {
		t.Fatalf("mapping encodes as %v, want \"bank-xor\"", got)
	}
	mem, ok := doc["mem"].(map[string]any)
	if !ok {
		t.Fatalf("mem is %T", doc["mem"])
	}
	if got := mem["defense"]; got != "none" {
		t.Fatalf("defense encodes as %v, want \"none\"", got)
	}
}

// TestFromJSONPartialOverride checks that a sparse document only overrides
// what it names, inheriting everything else from DefaultConfig.
func TestFromJSONPartialOverride(t *testing.T) {
	cfg, err := FromJSON([]byte(`{"llc_bytes": 4194304, "mem": {"defense": "crp"}}`))
	if err != nil {
		t.Fatal(err)
	}
	if cfg.LLCBytes != 4<<20 {
		t.Fatalf("llc_bytes = %d", cfg.LLCBytes)
	}
	if cfg.Mem.Defense != memctrl.DefenseClosedRow {
		t.Fatalf("defense = %v", cfg.Mem.Defense)
	}
	def := DefaultConfig()
	if cfg.Cores != def.Cores || cfg.LLCWays != def.LLCWays {
		t.Fatalf("untouched fields drifted from defaults: %+v", cfg)
	}
	if cfg.Mem.RequestOverhead != def.Mem.RequestOverhead {
		t.Fatalf("sibling field under partially-overridden struct drifted: %d", cfg.Mem.RequestOverhead)
	}
}

// TestFromJSONErrorsNameFields checks the error contract: every rejection
// names the offending field.
func TestFromJSONErrorsNameFields(t *testing.T) {
	cases := []struct {
		name, doc, want string
	}{
		{"unknown field", `{"llcbytes": 1}`, `unknown field "llcbytes"`},
		{"wrong type", `{"cores": "four"}`, `"cores"`},
		{"bad enum", `{"mapping": "diagonal"}`, `"mapping"`},
		{"bad defense", `{"mem": {"defense": "moat"}}`, `"defense"`},
		{"invalid value", `{"llc_ways": -1}`, `"llc_ways"`},
		{"invalid nested", `{"dram": {"row_bytes": 0}}`, `"dram"`},
		{"act without config", `{"mem": {"defense": "act"}}`, `"act.epoch_cycles"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := FromJSON([]byte(tc.doc))
			if err == nil {
				t.Fatalf("accepted %s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %q", err, tc.want)
			}
		})
	}
}

package sim

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
)

// FromJSON decodes a Config from JSON, starting from DefaultConfig so a
// document only needs to spell out the fields it overrides. Unknown fields
// are rejected (with the offending field named) rather than silently
// ignored, and the decoded config is validated — this is the entry point
// the experiment engine and the HTTP service use, so every error message
// must be actionable without reading Go source.
func FromJSON(data []byte) (Config, error) {
	cfg := DefaultConfig()
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cfg); err != nil {
		return Config{}, fmt.Errorf("sim: config: %w", prettyJSONError(err))
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// ToJSON encodes the config. Go's encoding/json emits struct fields in
// declaration order and map keys sorted, so the output is deterministic —
// the experiment cache hashes it as part of a run's identity.
func (c Config) ToJSON() ([]byte, error) {
	return json.Marshal(c)
}

// Validate reports configuration errors, naming fields by their JSON tags
// so server clients can fix specs without reading Go source.
func (c Config) Validate() error {
	if c.Cores <= 0 {
		return fmt.Errorf(`sim: field "cores": must be > 0 (got %d)`, c.Cores)
	}
	if c.LLCBytes <= 0 {
		return fmt.Errorf(`sim: field "llc_bytes": must be > 0 (got %d)`, c.LLCBytes)
	}
	if c.LLCWays <= 0 {
		return fmt.Errorf(`sim: field "llc_ways": must be > 0 (got %d)`, c.LLCWays)
	}
	if c.LLCLatency < 0 {
		return fmt.Errorf(`sim: field "llc_latency": must be >= 0 (got %d)`, c.LLCLatency)
	}
	if c.Noise.EventsPerMCycle < 0 {
		return fmt.Errorf(`sim: field "noise.events_per_mcycle": must be >= 0 (got %g)`, c.Noise.EventsPerMCycle)
	}
	if err := c.DRAM.Validate(); err != nil {
		return fmt.Errorf(`sim: field "dram": %w`, err)
	}
	if err := c.Mem.Validate(); err != nil {
		return fmt.Errorf(`sim: field "mem": %w`, err)
	}
	return nil
}

// prettyJSONError rewrites encoding/json's decode errors into field-naming
// messages ("unknown field", "field X: want a number").
func prettyJSONError(err error) error {
	switch e := err.(type) {
	case *json.UnmarshalTypeError:
		field := e.Field
		if field == "" {
			field = "(document root)"
		}
		return fmt.Errorf("field %q: want %s, got JSON %s", field, e.Type, e.Value)
	case *json.SyntaxError:
		return fmt.Errorf("malformed JSON at offset %d: %v", e.Offset, e)
	}
	// DisallowUnknownFields yields an unexported error type; its message
	// already names the field (`json: unknown field "foo"`).
	if msg := err.Error(); strings.HasPrefix(msg, "json: ") {
		return fmt.Errorf("%s", strings.TrimPrefix(msg, "json: "))
	}
	return err
}

package sim

import "repro/internal/stats"

// Noise injects background DRAM activity: the hardware prefetchers and page
// table walkers the paper simulates to perturb the attacks (Section 5.2.3).
// Events are row activations at deterministic pseudo-random times, banks and
// rows, so every experiment is reproducible while still experiencing
// realistic interference.
type Noise struct {
	m    *Machine
	cfg  NoiseConfig
	rng  *stats.RNG
	last int64
	// gap is the mean inter-event gap in cycles (0 disables noise).
	gap float64
	// next is the pre-drawn time of the next event.
	next   int64
	events int64
}

func newNoise(m *Machine, cfg NoiseConfig) *Noise {
	n := &Noise{m: m, cfg: cfg, rng: stats.NewRNG(cfg.Seed)}
	if cfg.EventsPerMCycle > 0 {
		n.gap = 1e6 / cfg.EventsPerMCycle
		n.next = n.draw(0)
	}
	return n
}

// draw samples the next event time after t with an exponential-ish gap
// (uniform in [0.5, 1.5] x mean, which is close enough for interference
// purposes and cheaper than a log).
func (n *Noise) draw(t int64) int64 {
	jitter := 0.5 + n.rng.Float64()
	return t + int64(n.gap*jitter) + 1
}

// AdvanceTo injects all noise events with timestamps <= t.
func (n *Noise) AdvanceTo(t int64) {
	if n.gap <= 0 || t <= n.last {
		return
	}
	dev := n.m.device
	banks := dev.NumBanks()
	rows := n.m.cfg.DRAM.RowsPerBank
	for n.next <= t {
		bank := n.rng.Intn(banks)
		row := n.rng.Int63() % rows
		// Background activity opens rows directly at the device: it is
		// other processes' traffic, not the attacker's, so it must not
		// appear in the attacker's latency accounting — only in the
		// bank state it leaves behind.
		_, _ = dev.Activate(n.next, bank, row)
		n.events++
		n.next = n.draw(n.next)
	}
	n.last = t
}

// Events returns the number of injected events so far.
func (n *Noise) Events() int64 { return n.events }

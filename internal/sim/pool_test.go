package sim

import (
	"strings"
	"testing"
)

// TestPoolShapeSharding pins the pool's routing: configs that differ only
// in Reset-applicable parameters share a shard (reuse), configs with a
// different allocation shape get their own shard (no thrash between
// alternating shapes), and a shape-matching config that Reset still
// refuses is dropped rather than handed out.
func TestPoolShapeSharding(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector; exact hit/miss pins cannot hold")
	}
	pool := NewPool()

	cfgA := DefaultConfig()
	cfgB := DefaultConfig()
	cfgB.Costs.FlushOverhead += 100 // same shape as A
	cfgC := DefaultConfig()
	cfgC.LLCBytes = 4 << 20 // different LLC geometry: own shard

	mA, err := pool.Get(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(mA)
	if st := pool.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Fatalf("after first Get: stats %+v, want 0 hits / 1 miss", st)
	}

	// Same shape, different behavior parameters: must reuse mA.
	mB, err := pool.Get(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	if mB != mA {
		t.Fatal("same-shape Get did not reuse the pooled machine")
	}
	if got, want := mB.Config().Costs.FlushOverhead, cfgB.Costs.FlushOverhead; got != want {
		t.Fatalf("reused machine kept stale config: flush overhead %d, want %d", got, want)
	}

	// Different LLC geometry while mB is checked out: fresh build in a
	// separate shard, and returning both machines keeps both shapes pooled.
	mC, err := pool.Get(cfgC)
	if err != nil {
		t.Fatal(err)
	}
	if mC == mB {
		t.Fatal("different-shape Get reused a machine whose LLC arrays cannot fit")
	}
	pool.Put(mB)
	pool.Put(mC)

	// Alternate shapes: each Get must hit its own shard, never dropping.
	for i := 0; i < 4; i++ {
		cfg := cfgA
		if i%2 == 1 {
			cfg = cfgC
		}
		m, err := pool.Get(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pool.Put(m)
	}
	st := pool.Stats()
	if st.Drops != 0 {
		t.Fatalf("stats %+v: alternating shapes dropped machines instead of sharding", st)
	}
	if st.Hits < 5 { // mB reuse + 4 alternating reuses (sync.Pool may GC-drop, but not in this window)
		t.Fatalf("stats %+v: expected at least 5 reset reuses", st)
	}
	if st.Misses != 2 {
		t.Fatalf("stats %+v: expected exactly one fresh build per shape", st)
	}
}

// TestPoolDropOnResetRefusal exercises the defensive drop path: a config
// whose shape key matches a pooled machine but which Machine.Reset still
// refuses (RowsPerBank is not part of the allocation shape, yet zero fails
// DRAM validation). The pooled machine must be discarded — not re-pooled —
// and Get must surface New's error.
func TestPoolDropOnResetRefusal(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops Puts at random under the race detector; exact drop/miss pins cannot hold")
	}
	pool := NewPool()
	m, err := pool.Get(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pool.Put(m)

	bad := DefaultConfig()
	bad.DRAM.RowsPerBank = 0 // same TotalBanks/RowBytes, fails Validate
	if _, err := pool.Get(bad); err == nil || !strings.Contains(err.Error(), "rows per bank") {
		t.Fatalf("Get(invalid config) error = %v, want rows-per-bank validation failure", err)
	}
	st := pool.Stats()
	if st.Drops != 1 {
		t.Fatalf("stats %+v: Reset refusal must count as a drop", st)
	}

	// The dropped machine is gone for good; the next valid Get of that
	// shape rebuilds fresh.
	m2, err := pool.Get(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m2 == m {
		t.Fatal("dropped machine was handed out again")
	}
	if st := pool.Stats(); st.Misses != 2 {
		t.Fatalf("stats %+v: expected a fresh build after the drop", st)
	}
}

package code

import "fmt"

// Channel is any transport that moves a bit slice and reports what arrived.
// core's covert channels satisfy this shape via small adapters.
type Channel func(bits []bool) (received []bool, err error)

// ReliableResult reports a coded transmission.
type ReliableResult struct {
	// Data is the recovered message.
	Data []bool
	// RawBits is the number of channel bits transmitted (overhead 7/4).
	RawBits int
	// Corrections is the number of single-bit errors the code fixed.
	Corrections int
	// ResidualErrors counts data bits still wrong versus the original
	// (only multi-error blocks survive the code).
	ResidualErrors int
}

// InterleaveDepth spreads bursts across codewords; 28 covers a 16-bit batch
// of consecutive probes landing in one noisy region plus margin.
const InterleaveDepth = 28

// SendReliable transmits data over the channel under Hamming(7,4) with
// interleaving and returns the corrected message.
func SendReliable(ch Channel, data []bool) (ReliableResult, error) {
	coded := Interleave(EncodeHamming74(data), InterleaveDepth)
	received, err := ch(coded)
	if err != nil {
		return ReliableResult{}, fmt.Errorf("reliable send: %w", err)
	}
	if len(received) != len(coded) {
		return ReliableResult{}, fmt.Errorf("reliable send: channel returned %d bits, sent %d", len(received), len(coded))
	}
	decoded, corrections, err := DecodeHamming74(Deinterleave(received, InterleaveDepth), len(data))
	if err != nil {
		return ReliableResult{}, err
	}
	res := ReliableResult{Data: decoded, RawBits: len(coded), Corrections: corrections}
	for i := range data {
		if decoded[i] != data[i] {
			res.ResidualErrors++
		}
	}
	return res, nil
}

package code

import (
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestHammingRoundTripClean(t *testing.T) {
	check := func(raw []byte) bool {
		data := make([]bool, len(raw))
		for i, b := range raw {
			data[i] = b&1 == 1
		}
		coded := EncodeHamming74(data)
		decoded, corrections, err := DecodeHamming74(coded, len(data))
		if err != nil || corrections != 0 {
			return false
		}
		for i := range data {
			if decoded[i] != data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHammingCorrectsAnySingleBitError(t *testing.T) {
	data := []bool{true, false, true, true, false, false, true, false}
	coded := EncodeHamming74(data)
	for flip := range coded {
		corrupted := make([]bool, len(coded))
		copy(corrupted, coded)
		corrupted[flip] = !corrupted[flip]
		decoded, corrections, err := DecodeHamming74(corrupted, len(data))
		if err != nil {
			t.Fatal(err)
		}
		if corrections != 1 {
			t.Fatalf("flip at %d: corrections = %d, want 1", flip, corrections)
		}
		for i := range data {
			if decoded[i] != data[i] {
				t.Fatalf("flip at %d not corrected (bit %d)", flip, i)
			}
		}
	}
}

func TestHammingExpansionRatio(t *testing.T) {
	coded := EncodeHamming74(make([]bool, 16))
	if len(coded) != 28 {
		t.Fatalf("16 data bits encoded to %d, want 28", len(coded))
	}
	// Padding: 5 bits pad to 8 -> 2 blocks -> 14 coded bits.
	if got := len(EncodeHamming74(make([]bool, 5))); got != 14 {
		t.Fatalf("5 data bits encoded to %d, want 14", got)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeHamming74(make([]bool, 7), -1); err == nil {
		t.Fatal("negative length accepted")
	}
	if _, _, err := DecodeHamming74(make([]bool, 6), 4); err == nil {
		t.Fatal("short input accepted")
	}
}

func TestInterleaveRoundTrip(t *testing.T) {
	check := func(raw []byte, depthRaw uint8) bool {
		depth := int(depthRaw)%40 + 1
		bits := make([]bool, len(raw))
		for i, b := range raw {
			bits[i] = b&1 == 1
		}
		back := Deinterleave(Interleave(bits, depth), depth)
		for i := range bits {
			if back[i] != bits[i] {
				return false
			}
		}
		return len(back) == len(bits)
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInterleaveSpreadsBursts(t *testing.T) {
	// A burst of consecutive channel errors up to the interleaver's row
	// count (codedLen / depth) lands depth-strided in the original
	// stream, so each Hamming block sees at most one error and the whole
	// burst is corrected.
	data := make([]bool, 64)
	coded := Interleave(EncodeHamming74(data), InterleaveDepth)
	burst := len(coded) / InterleaveDepth
	for i := 0; i < burst; i++ {
		coded[i] = !coded[i]
	}
	decoded, corrections, err := DecodeHamming74(Deinterleave(coded, InterleaveDepth), len(data))
	if err != nil {
		t.Fatal(err)
	}
	if corrections != burst {
		t.Fatalf("corrections = %d, want %d (one per codeword)", corrections, burst)
	}
	for i, bit := range decoded {
		if bit {
			t.Fatalf("residual error at bit %d after burst correction", i)
		}
	}
}

func TestSendReliableOverNoisyChannel(t *testing.T) {
	rng := stats.NewRNG(99)
	// A channel flipping 1% of bits, uniformly.
	noisy := func(bits []bool) ([]bool, error) {
		out := make([]bool, len(bits))
		copy(out, bits)
		for i := range out {
			if rng.Bool(0.01) {
				out[i] = !out[i]
			}
		}
		return out, nil
	}
	data := make([]bool, 4096)
	for i := range data {
		data[i] = rng.Bool(0.5)
	}
	res, err := SendReliable(noisy, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Corrections == 0 {
		t.Fatal("noisy channel produced no corrections")
	}
	// With a 1% crossover, double-error blocks survive at about
	// C(7,2)*p^2 ~ 0.2% of blocks; coding must still improve on the raw
	// rate by a wide margin.
	residual := float64(res.ResidualErrors) / float64(len(data))
	if residual > 0.004 {
		t.Fatalf("residual error rate %.4f too high after coding", residual)
	}
	if res.RawBits != len(EncodeHamming74(data)) {
		t.Fatalf("raw bits = %d", res.RawBits)
	}
}

func TestSendReliableLengthMismatch(t *testing.T) {
	truncating := func(bits []bool) ([]bool, error) { return bits[:len(bits)-1], nil }
	if _, err := SendReliable(truncating, make([]bool, 16)); err == nil {
		t.Fatal("length mismatch not detected")
	}
}

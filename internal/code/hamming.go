// Package code provides the forward-error-correction layer practical covert
// channels run on top of raw bit transmission: Hamming(7,4) block coding
// with bit interleaving. The paper measures raw throughput "based on the
// successfully leaked data"; a real attacker ships a code like this so that
// occasional row-buffer noise (prefetchers, page walks, refresh) does not
// corrupt the message. The package is generic over any covert channel that
// transmits bit slices.
package code

import "fmt"

// Hamming(7,4): data bits d1..d4 and parity bits p1..p3 laid out as
// [p1 p2 d1 p3 d2 d3 d4] (positions 1..7), so a single-bit error's syndrome
// is its position.

// EncodeHamming74 expands data bits into 7-bit codewords. The tail is
// padded with zeros to a multiple of 4; callers must track the original
// length (Decode takes it as an argument).
func EncodeHamming74(data []bool) []bool {
	out := make([]bool, 0, (len(data)+3)/4*7)
	for i := 0; i < len(data); i += 4 {
		var d [4]bool
		for j := 0; j < 4 && i+j < len(data); j++ {
			d[j] = data[i+j]
		}
		p1 := d[0] != d[1] != d[3]
		p2 := d[0] != d[2] != d[3]
		p3 := d[1] != d[2] != d[3]
		out = append(out, p1, p2, d[0], p3, d[1], d[2], d[3])
	}
	return out
}

// DecodeHamming74 corrects single-bit errors per 7-bit block and returns
// the first dataLen data bits plus the number of corrections applied.
// Incomplete trailing blocks are dropped.
func DecodeHamming74(coded []bool, dataLen int) ([]bool, int, error) {
	if dataLen < 0 {
		return nil, 0, fmt.Errorf("code: negative data length %d", dataLen)
	}
	out := make([]bool, 0, dataLen)
	corrections := 0
	for i := 0; i+7 <= len(coded); i += 7 {
		var w [8]bool // 1-indexed
		copy(w[1:], coded[i:i+7])
		s1 := w[1] != w[3] != w[5] != w[7]
		s2 := w[2] != w[3] != w[6] != w[7]
		s3 := w[4] != w[5] != w[6] != w[7]
		syndrome := 0
		if s1 {
			syndrome |= 1
		}
		if s2 {
			syndrome |= 2
		}
		if s3 {
			syndrome |= 4
		}
		if syndrome != 0 {
			w[syndrome] = !w[syndrome]
			corrections++
		}
		out = append(out, w[3], w[5], w[6], w[7])
	}
	if len(out) < dataLen {
		return nil, corrections, fmt.Errorf("code: %d decoded bits < %d requested", len(out), dataLen)
	}
	return out[:dataLen], corrections, nil
}

// Interleave reorders bits with the given depth so that a burst of
// consecutive channel errors spreads across many codewords (each block then
// sees at most one error, within Hamming's correction budget).
func Interleave(bits []bool, depth int) []bool {
	if depth <= 1 || len(bits) == 0 {
		out := make([]bool, len(bits))
		copy(out, bits)
		return out
	}
	rows := (len(bits) + depth - 1) / depth
	out := make([]bool, 0, len(bits))
	for col := 0; col < depth; col++ {
		for row := 0; row < rows; row++ {
			idx := row*depth + col
			if idx < len(bits) {
				out = append(out, bits[idx])
			}
		}
	}
	return out
}

// Deinterleave inverts Interleave for the same depth and length.
func Deinterleave(bits []bool, depth int) []bool {
	if depth <= 1 || len(bits) == 0 {
		out := make([]bool, len(bits))
		copy(out, bits)
		return out
	}
	rows := (len(bits) + depth - 1) / depth
	out := make([]bool, len(bits))
	src := 0
	for col := 0; col < depth; col++ {
		for row := 0; row < rows; row++ {
			idx := row*depth + col
			if idx < len(bits) {
				out[idx] = bits[src]
				src++
			}
		}
	}
	return out
}

package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary accumulates a stream of observations and reports basic moments.
// The zero value is ready to use.
type Summary struct {
	n     int64
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	if s.n == 0 {
		s.min, s.max = v, v
	} else {
		if v < s.min {
			s.min = v
		}
		if v > s.max {
			s.max = v
		}
	}
	s.n++
	s.sum += v
	s.sumSq += v * v
}

// N returns the number of observations recorded.
func (s *Summary) N() int64 { return s.n }

// Sum returns the sum of all observations.
func (s *Summary) Sum() float64 { return s.sum }

// Mean returns the arithmetic mean, or 0 if empty.
func (s *Summary) Mean() float64 {
	if s.n == 0 {
		return 0
	}
	return s.sum / float64(s.n)
}

// Min returns the smallest observation, or 0 if empty.
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation, or 0 if empty.
func (s *Summary) Max() float64 { return s.max }

// StdDev returns the population standard deviation, or 0 if fewer than two
// observations were recorded.
func (s *Summary) StdDev() float64 {
	if s.n < 2 {
		return 0
	}
	mean := s.Mean()
	variance := s.sumSq/float64(s.n) - mean*mean
	if variance < 0 {
		variance = 0
	}
	return math.Sqrt(variance)
}

// String renders the summary in a compact human-readable form.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f min=%.2f max=%.2f sd=%.2f",
		s.n, s.Mean(), s.min, s.max, s.StdDev())
}

// GeometricMean returns the geometric mean of vs, ignoring non-positive
// values (which have no defined log). It returns 0 for an empty input.
func GeometricMean(vs []float64) float64 {
	var logSum float64
	var n int
	for _, v := range vs {
		if v <= 0 {
			continue
		}
		logSum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Percentile returns the p-th percentile (0..100) of vs using linear
// interpolation. The input is not modified. It returns 0 for empty input.
func Percentile(vs []float64, p float64) float64 {
	if len(vs) == 0 {
		return 0
	}
	sorted := make([]float64, len(vs))
	copy(sorted, vs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

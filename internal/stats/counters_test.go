package stats

import (
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("Get(missing) = %d, want 0", got)
	}
	c.Inc("a", 2)
	c.Inc("a", 3)
	c.Inc("b", 1)
	if got := c.Get("a"); got != 5 {
		t.Errorf("a = %d, want 5", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
	if got := c.String(); got != "a=5 b=1" {
		t.Errorf("String = %q", got)
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	c := NewCounters()
	c.Inc("x", 1)
	snap := c.Snapshot()
	snap["x"] = 99
	if got := c.Get("x"); got != 1 {
		t.Fatalf("snapshot mutation leaked into counters: x = %d", got)
	}
}

func TestCountersReset(t *testing.T) {
	c := NewCounters()
	c.Inc("x", 7)
	c.Reset()
	if got := c.Get("x"); got != 0 {
		t.Fatalf("after Reset x = %d, want 0", got)
	}
	if len(c.Names()) != 0 {
		t.Fatalf("after Reset names = %v, want empty", c.Names())
	}
}

func TestErrorRate(t *testing.T) {
	var e ErrorRate
	if e.Rate() != 0 {
		t.Fatalf("empty Rate = %v, want 0", e.Rate())
	}
	for i := 0; i < 9; i++ {
		e.Record(true)
	}
	e.Record(false)
	if got := e.Rate(); got != 0.1 {
		t.Errorf("Rate = %v, want 0.1", got)
	}
	if e.Correct() != 9 || e.Wrong() != 1 || e.Total() != 10 {
		t.Errorf("counts = %d/%d/%d, want 9/1/10", e.Correct(), e.Wrong(), e.Total())
	}
}

package stats

import (
	"testing"
)

func TestCountersBasics(t *testing.T) {
	c := NewCounters()
	if got := c.Get("missing"); got != 0 {
		t.Fatalf("Get(missing) = %d, want 0", got)
	}
	c.Inc("a", 2)
	c.Inc("a", 3)
	c.Inc("b", 1)
	if got := c.Get("a"); got != 5 {
		t.Errorf("a = %d, want 5", got)
	}
	names := c.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v, want [a b]", names)
	}
	if got := c.String(); got != "a=5 b=1" {
		t.Errorf("String = %q", got)
	}
}

func TestCountersSnapshotIsCopy(t *testing.T) {
	c := NewCounters()
	c.Inc("x", 1)
	snap := c.Snapshot()
	snap["x"] = 99
	if got := c.Get("x"); got != 1 {
		t.Fatalf("snapshot mutation leaked into counters: x = %d", got)
	}
}

func TestCountersReset(t *testing.T) {
	c := NewCounters()
	c.Inc("x", 7)
	c.Reset()
	if got := c.Get("x"); got != 0 {
		t.Fatalf("after Reset x = %d, want 0", got)
	}
	if len(c.Names()) != 0 {
		t.Fatalf("after Reset names = %v, want empty", c.Names())
	}
}

func TestFixedSlotsAndStringAPIAgree(t *testing.T) {
	const (
		idHit CounterID = iota
		idMiss
	)
	c := NewFixed("hit", "miss")
	c.Add(idHit, 3)
	c.Inc("hit", 2) // registered name must land in the same slot
	c.Add(idMiss, 1)
	c.Inc("dynamic", 4) // unregistered name goes to the overflow map
	if got := c.Value(idHit); got != 5 {
		t.Errorf("Value(hit) = %d, want 5", got)
	}
	if got := c.Get("hit"); got != 5 {
		t.Errorf("Get(hit) = %d, want 5", got)
	}
	if got := c.Get("dynamic"); got != 4 {
		t.Errorf("Get(dynamic) = %d, want 4", got)
	}
	snap := c.Snapshot()
	want := map[string]int64{"hit": 5, "miss": 1, "dynamic": 4}
	if len(snap) != len(want) {
		t.Fatalf("Snapshot = %v, want %v", snap, want)
	}
	for k, v := range want {
		if snap[k] != v {
			t.Errorf("Snapshot[%s] = %d, want %d", k, snap[k], v)
		}
	}
	if got := c.String(); got != "dynamic=4 hit=5 miss=1" {
		t.Errorf("String = %q", got)
	}
}

func TestFixedZeroSlotsOmitted(t *testing.T) {
	c := NewFixed("hit", "miss")
	c.Add(0, 1)
	// A never-incremented fixed slot must not surface through the export
	// API, matching the historical map behavior.
	if names := c.Names(); len(names) != 1 || names[0] != "hit" {
		t.Fatalf("Names = %v, want [hit]", names)
	}
	if _, ok := c.Snapshot()["miss"]; ok {
		t.Fatal("zero-valued fixed slot leaked into Snapshot")
	}
	// A zero-delta increment of an unregistered name must stay invisible
	// too: presence semantics are the same for slots and overflow entries.
	c.Inc("dyn", 0)
	if names := c.Names(); len(names) != 1 || names[0] != "hit" {
		t.Fatalf("Names after zero-delta Inc = %v, want [hit]", names)
	}
	if _, ok := c.Snapshot()["dyn"]; ok {
		t.Fatal("zero-valued overflow entry leaked into Snapshot")
	}
}

func TestFixedReset(t *testing.T) {
	c := NewFixed("a")
	c.Add(0, 7)
	c.Inc("b", 2)
	c.Reset()
	if c.Value(0) != 0 || c.Get("a") != 0 || c.Get("b") != 0 {
		t.Fatalf("Reset left values: %s", c)
	}
	if len(c.Names()) != 0 {
		t.Fatalf("after Reset names = %v, want empty", c.Names())
	}
}

func TestFixedAddNoAllocs(t *testing.T) {
	c := NewFixed("hit")
	if avg := testing.AllocsPerRun(1000, func() { c.Add(0, 1) }); avg != 0 {
		t.Fatalf("Add allocates %v allocs/op, want 0", avg)
	}
}

func TestErrorRate(t *testing.T) {
	var e ErrorRate
	if e.Rate() != 0 {
		t.Fatalf("empty Rate = %v, want 0", e.Rate())
	}
	for i := 0; i < 9; i++ {
		e.Record(true)
	}
	e.Record(false)
	if got := e.Rate(); got != 0.1 {
		t.Errorf("Rate = %v, want 0.1", got)
	}
	if e.Correct() != 9 || e.Wrong() != 1 || e.Total() != 10 {
		t.Errorf("counts = %d/%d/%d, want 9/1/10", e.Correct(), e.Wrong(), e.Total())
	}
}

package stats

import (
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if got, want := a.Uint64(), b.Uint64(); got != want {
			t.Fatalf("stream diverged at %d: %d != %d", i, got, want)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("different seeds produced %d identical values out of 100", same)
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(7)
	for _, n := range []int{1, 2, 3, 10, 1000} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestRNGIntnDegenerate(t *testing.T) {
	r := NewRNG(7)
	if got := r.Intn(0); got != 0 {
		t.Fatalf("Intn(0) = %d, want 0", got)
	}
	if got := r.Intn(-5); got != 0 {
		t.Fatalf("Intn(-5) = %d, want 0", got)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64() = %v out of [0,1)", v)
		}
	}
}

func TestRNGBoolProbability(t *testing.T) {
	r := NewRNG(9)
	trues := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			trues++
		}
	}
	frac := float64(trues) / n
	if frac < 0.27 || frac > 0.33 {
		t.Fatalf("Bool(0.3) frequency = %.3f, want ~0.3", frac)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	check := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)%64 + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(11)
	childA := parent.Split()
	childB := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if childA.Uint64() == childB.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("split streams correlated: %d identical values", same)
	}
}

func TestRNGInt63NonNegative(t *testing.T) {
	r := NewRNG(13)
	for i := 0; i < 1000; i++ {
		if v := r.Int63(); v < 0 {
			t.Fatalf("Int63() = %d, want non-negative", v)
		}
	}
}

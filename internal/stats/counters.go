package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CounterID indexes a fixed counter slot registered at construction time.
// Subsystems declare a small enum of IDs matching the name order they pass
// to NewFixed, then increment through Add on the hot path — an array index,
// no string hash and no allocation.
type CounterID int

// Counters is a named set of monotonically increasing counters. Hot
// counters live in fixed integer-indexed slots (NewFixed + Add/Value);
// the string-keyed API (Inc/Get/Snapshot/...) is retained as a
// compatibility and export layer over the same slots, with a lazily
// allocated overflow map for names never registered. The zero value is not
// usable; construct with NewCounters or NewFixed.
type Counters struct {
	slots []int64
	names []string
	index map[string]CounterID
	// extra holds counters incremented by a name that was never
	// registered; nil until first needed so fixed-only sets stay lean.
	extra map[string]int64
}

// NewCounters returns an empty counter set with no registered slots; every
// increment goes through the string-keyed overflow map.
func NewCounters() *Counters {
	return NewFixed()
}

// NewFixed returns a counter set with one fixed slot per name, indexed in
// argument order: the CounterID for names[i] is i.
func NewFixed(names ...string) *Counters {
	c := &Counters{
		slots: make([]int64, len(names)),
		names: append([]string(nil), names...),
		index: make(map[string]CounterID, len(names)),
	}
	for i, name := range names {
		c.index[name] = CounterID(i)
	}
	return c
}

// Add adds delta to a registered slot. This is the hot path: a bounds-checked
// array index, no hashing, no allocation.
//
//impact:hotpath
func (c *Counters) Add(id CounterID, delta int64) {
	c.slots[id] += delta
}

// Value returns the current value of a registered slot without hashing.
//
//impact:hotpath
func (c *Counters) Value(id CounterID) int64 {
	return c.slots[id]
}

// Inc adds delta to the named counter, creating it at zero if absent.
// Registered names update their fixed slot; others land in the overflow map.
func (c *Counters) Inc(name string, delta int64) {
	if id, ok := c.index[name]; ok {
		c.slots[id] += delta
		return
	}
	if c.extra == nil {
		c.extra = make(map[string]int64)
	}
	c.extra[name] += delta
}

// Get returns the value of the named counter (0 if never incremented).
func (c *Counters) Get(name string) int64 {
	if id, ok := c.index[name]; ok {
		return c.slots[id]
	}
	return c.extra[name]
}

// Names returns the names of all non-zero counters in sorted order.
// Zero-valued counters — fixed slots never incremented, or overflow
// entries that only ever saw zero deltas — are omitted, so a counter
// exists only once meaningfully incremented.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.slots)+len(c.extra))
	for i, v := range c.slots {
		if v != 0 {
			names = append(names, c.names[i])
		}
	}
	for name, v := range c.extra {
		if v != 0 {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	return names
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	for i := range c.slots {
		c.slots[i] = 0
	}
	for name := range c.extra {
		delete(c.extra, name)
	}
}

// Snapshot returns a copy of the current non-zero counter values.
func (c *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.slots)+len(c.extra))
	for i, v := range c.slots {
		if v != 0 {
			out[c.names[i]] = v
		}
	}
	for k, v := range c.extra {
		if v != 0 {
			out[k] = v
		}
	}
	return out
}

// String renders counters as "name=value" pairs in sorted order.
func (c *Counters) String() string {
	names := c.Names()
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, c.Get(name)))
	}
	return strings.Join(parts, " ")
}

// ErrorRate tracks correct/incorrect decisions (e.g. decoded covert-channel
// bits or side-channel guesses) and reports the fraction wrong.
type ErrorRate struct {
	correct int64
	wrong   int64
}

// Record adds one decision outcome.
func (e *ErrorRate) Record(ok bool) {
	if ok {
		e.correct++
	} else {
		e.wrong++
	}
}

// Correct returns the number of correct decisions.
func (e *ErrorRate) Correct() int64 { return e.correct }

// Wrong returns the number of incorrect decisions.
func (e *ErrorRate) Wrong() int64 { return e.wrong }

// Total returns the total number of decisions.
func (e *ErrorRate) Total() int64 { return e.correct + e.wrong }

// Rate returns wrong/total, or 0 when no decisions were recorded.
func (e *ErrorRate) Rate() float64 {
	total := e.Total()
	if total == 0 {
		return 0
	}
	return float64(e.wrong) / float64(total)
}

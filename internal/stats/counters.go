package stats

import (
	"fmt"
	"sort"
	"strings"
)

// Counters is a named set of monotonically increasing counters. The zero
// value is not usable; construct with NewCounters.
type Counters struct {
	vals map[string]int64
}

// NewCounters returns an empty counter set.
func NewCounters() *Counters {
	return &Counters{vals: make(map[string]int64)}
}

// Inc adds delta to the named counter, creating it at zero if absent.
func (c *Counters) Inc(name string, delta int64) {
	c.vals[name] += delta
}

// Get returns the value of the named counter (0 if never incremented).
func (c *Counters) Get(name string) int64 {
	return c.vals[name]
}

// Names returns the counter names in sorted order.
func (c *Counters) Names() []string {
	names := make([]string, 0, len(c.vals))
	for name := range c.vals {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Reset zeroes all counters.
func (c *Counters) Reset() {
	for name := range c.vals {
		delete(c.vals, name)
	}
}

// Snapshot returns a copy of the current counter values.
func (c *Counters) Snapshot() map[string]int64 {
	out := make(map[string]int64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}

// String renders counters as "name=value" pairs in sorted order.
func (c *Counters) String() string {
	names := c.Names()
	parts := make([]string, 0, len(names))
	for _, name := range names {
		parts = append(parts, fmt.Sprintf("%s=%d", name, c.vals[name]))
	}
	return strings.Join(parts, " ")
}

// ErrorRate tracks correct/incorrect decisions (e.g. decoded covert-channel
// bits or side-channel guesses) and reports the fraction wrong.
type ErrorRate struct {
	correct int64
	wrong   int64
}

// Record adds one decision outcome.
func (e *ErrorRate) Record(ok bool) {
	if ok {
		e.correct++
	} else {
		e.wrong++
	}
}

// Correct returns the number of correct decisions.
func (e *ErrorRate) Correct() int64 { return e.correct }

// Wrong returns the number of incorrect decisions.
func (e *ErrorRate) Wrong() int64 { return e.wrong }

// Total returns the total number of decisions.
func (e *ErrorRate) Total() int64 { return e.correct + e.wrong }

// Rate returns wrong/total, or 0 when no decisions were recorded.
func (e *ErrorRate) Rate() float64 {
	total := e.Total()
	if total == 0 {
		return 0
	}
	return float64(e.wrong) / float64(total)
}

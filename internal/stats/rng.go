// Package stats provides deterministic pseudo-random number generation,
// streaming summaries, counters, and error-rate accounting used across the
// IMPACT simulator. Everything here is allocation-light and fully
// deterministic for a given seed, which keeps every experiment reproducible
// bit-for-bit across runs and platforms.
//
// Counters' fixed-slot design — integer CounterIDs registered at
// construction, hot-path increments by array index — is single-goroutine
// by intent, matching the simulator's one-entity-one-counter-set layout.
// Its concurrent sibling for the serving layer (atomic slots, latency
// histograms) is internal/metrics, which borrows the same slot design.
package stats

// RNG is a small, fast, deterministic pseudo-random number generator based
// on SplitMix64. It is not safe for concurrent use; each simulated entity
// (noise source, workload generator, genome synthesizer) owns its own RNG
// seeded from the experiment seed so that adding one consumer never perturbs
// the stream seen by another.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two generators with the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64-bit value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniformly distributed int in [0, n). It returns 0 when
// n <= 0 so that callers never divide by zero mid-simulation.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniformly distributed float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Split derives an independent generator from the current stream. Derived
// generators are decorrelated from the parent and from each other.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0xa0761d6478bd642f}
}

package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.N() != 0 || s.Mean() != 0 || s.StdDev() != 0 {
		t.Fatalf("empty summary not zeroed: %s", s.String())
	}
}

func TestSummaryMoments(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Mean(); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := s.StdDev(); math.Abs(got-2) > 1e-9 {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", s.Min(), s.Max())
	}
	if s.N() != 8 {
		t.Errorf("N = %d, want 8", s.N())
	}
}

func TestSummaryMinMaxProperty(t *testing.T) {
	check := func(vs []float64) bool {
		var s Summary
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
			s.Add(v)
		}
		if len(vs) == 0 {
			return true
		}
		return s.Min() <= s.Mean() && s.Mean() <= s.Max()
	}
	// Restrict to small magnitudes to avoid float overflow in sumSq.
	cfg := &quick.Config{MaxCount: 200, Values: nil}
	if err := quick.Check(func(raw []uint16) bool {
		vs := make([]float64, len(raw))
		for i, r := range raw {
			vs[i] = float64(r)
		}
		return check(vs)
	}, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGeometricMean(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, 0},
		{"single", []float64{4}, 4},
		{"pair", []float64{1, 4}, 2},
		{"ignores-nonpositive", []float64{-1, 0, 4, 1}, 2},
		{"identity", []float64{3, 3, 3}, 3},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := GeometricMean(tt.in); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("GeometricMean(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25},
	}
	for _, tt := range tests {
		if got := Percentile(vs, tt.p); math.Abs(got-tt.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %v, want 0", got)
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	vs := []float64{3, 1, 2}
	Percentile(vs, 50)
	if vs[0] != 3 || vs[1] != 1 || vs[2] != 2 {
		t.Fatalf("input mutated: %v", vs)
	}
}

func TestPercentileWithinRange(t *testing.T) {
	if err := quick.Check(func(raw []uint8, p uint8) bool {
		if len(raw) == 0 {
			return true
		}
		vs := make([]float64, len(raw))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i, r := range raw {
			vs[i] = float64(r)
			lo = math.Min(lo, vs[i])
			hi = math.Max(hi, vs[i])
		}
		got := Percentile(vs, float64(p%101))
		return got >= lo && got <= hi
	}, nil); err != nil {
		t.Fatal(err)
	}
}

package cacti

import "testing"

func TestLLCLatencyAnchors(t *testing.T) {
	// Fitted to Table 2's anchor points: 2 MB L2 at 16 cycles and an 8 MB
	// LLC at ~50 cycles.
	if got := LLCLatency(2); got < 14 || got > 18 {
		t.Errorf("LLCLatency(2MB) = %d, want ~16", got)
	}
	if got := LLCLatency(8); got < 45 || got > 55 {
		t.Errorf("LLCLatency(8MB) = %d, want ~50", got)
	}
}

func TestLLCLatencyMonotonicInSize(t *testing.T) {
	prev := int64(0)
	for _, mb := range []float64{1, 2, 4, 8, 16, 32, 64, 128} {
		got := LLCLatency(mb)
		if got <= prev {
			t.Fatalf("latency not increasing at %v MB: %d <= %d", mb, got, prev)
		}
		prev = got
	}
}

func TestLLCLatencyClampsSmall(t *testing.T) {
	if got, want := LLCLatency(0.25), LLCLatency(1); got != want {
		t.Errorf("sub-MB latency = %d, want clamp to %d", got, want)
	}
}

func TestLLCLatencyWaysAdjustment(t *testing.T) {
	base := LLCLatencyWays(16, 16)
	wide := LLCLatencyWays(16, 128)
	narrow := LLCLatencyWays(16, 2)
	if wide <= base {
		t.Errorf("128-way latency %d not above 16-way %d", wide, base)
	}
	if narrow >= base {
		t.Errorf("2-way latency %d not below 16-way %d", narrow, base)
	}
	if LLCLatencyWays(16, 0) <= 0 {
		t.Error("zero ways produced non-positive latency")
	}
}

func TestEvictionLatencyScalesWithWays(t *testing.T) {
	prev := int64(0)
	for _, ways := range []int{2, 4, 8, 16, 32, 64, 128} {
		got := EvictionLatency(16, ways, 104, 0.3)
		if got <= prev {
			t.Fatalf("eviction latency not increasing at %d ways: %d <= %d", ways, got, prev)
		}
		prev = got
	}
}

func TestEvictionLatencyScalesWithSize(t *testing.T) {
	small := EvictionLatency(4, 16, 104, 0.3)
	large := EvictionLatency(128, 16, 104, 0.3)
	if large < 3*small {
		t.Errorf("128MB eviction %d not >> 4MB eviction %d", large, small)
	}
}

// Package cacti approximates CACTI 6.0 cache access latency estimates with
// an analytic fit, as the paper uses CACTI to scale LLC access latency with
// capacity (Figures 2, 3 and 9). The fit reproduces the paper's anchor
// points: a 2 MB L2 at 16 cycles and an 8 MB LLC at 50 cycles (Table 2),
// with latency growing sub-linearly in capacity (wire delay dominates).
package cacti

import "math"

// latencyExponent and latencyScale define lat = scale * sizeMB^exponent.
// Fitted to Table 2: 2 MB -> 16 cycles, 8 MB -> 50 cycles.
const (
	latencyScale    = 8.9
	latencyExponent = 0.8
)

// LLCLatency returns the access latency in CPU cycles of an LLC of the given
// capacity in megabytes. Sub-megabyte sizes are clamped to 1 MB.
func LLCLatency(sizeMB float64) int64 {
	if sizeMB < 1 {
		sizeMB = 1
	}
	return int64(math.Round(latencyScale * math.Pow(sizeMB, latencyExponent)))
}

// LLCLatencyWays adjusts the base capacity latency for associativity: wider
// ways add tag-comparison and mux depth. The adjustment is small relative to
// the capacity term, matching CACTI's behaviour.
func LLCLatencyWays(sizeMB float64, ways int) int64 {
	base := float64(LLCLatency(sizeMB))
	if ways < 1 {
		ways = 1
	}
	// +2.5% per doubling beyond 16 ways, -2.5% per halving below.
	adj := 1 + 0.025*(math.Log2(float64(ways))-4)
	if adj < 0.8 {
		adj = 0.8
	}
	return int64(math.Round(base * adj))
}

// EvictionLatency estimates the cycles needed to evict one cache line from
// an LLC of the given geometry using an eviction set. Evicting a line from
// an N-way set requires N conflicting loads; each pays the LLC lookup and a
// (partially overlapped) memory fill. memLatency is the DRAM access latency
// and mlp the fraction of the memory latency exposed per load once requests
// pipeline in the memory controller.
func EvictionLatency(sizeMB float64, ways int, memLatency int64, mlp float64) int64 {
	if ways < 1 {
		ways = 1
	}
	perLoad := float64(LLCLatencyWays(sizeMB, ways)) + mlp*float64(memLatency)
	return int64(math.Round(float64(ways)*perLoad)) + memLatency
}

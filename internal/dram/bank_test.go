package dram

import (
	"testing"
	"testing/quick"
)

func testTiming() Timing {
	t := DDR4_2400()
	return t
}

func TestBankFirstAccessIsEmpty(t *testing.T) {
	b := NewBank(testTiming(), 8192)
	res := b.Access(0, 5)
	if res.Outcome != OutcomeEmpty {
		t.Fatalf("first access outcome = %v, want empty", res.Outcome)
	}
	if want := testTiming().EmptyLatency(); res.Latency != want {
		t.Fatalf("empty latency = %d, want %d", res.Latency, want)
	}
}

func TestBankHitAfterOpen(t *testing.T) {
	b := NewBank(testTiming(), 8192)
	first := b.Access(0, 5)
	res := b.Access(first.CompletedAt+10, 5)
	if res.Outcome != OutcomeHit {
		t.Fatalf("outcome = %v, want hit", res.Outcome)
	}
	if want := testTiming().HitLatency(); res.Latency != want {
		t.Fatalf("hit latency = %d, want %d", res.Latency, want)
	}
}

func TestBankConflictLatency(t *testing.T) {
	tm := testTiming()
	b := NewBank(tm, 8192)
	first := b.Access(0, 5)
	// Access a different row well past tRAS so no stall applies.
	res := b.Access(first.CompletedAt+tm.TRAS+100, 6)
	if res.Outcome != OutcomeConflict {
		t.Fatalf("outcome = %v, want conflict", res.Outcome)
	}
	if want := tm.ConflictLatency(); res.Latency != want {
		t.Fatalf("conflict latency = %d, want %d", res.Latency, want)
	}
}

func TestBankConflictWaitsForTRAS(t *testing.T) {
	tm := testTiming()
	b := NewBank(tm, 8192)
	b.Access(0, 5) // activation at cycle 0
	// Conflict immediately after the access completes: the precharge must
	// wait until tRAS has elapsed since activation.
	res := b.Access(tm.EmptyLatency(), 6)
	minimum := tm.ConflictLatency()
	if res.Latency <= minimum {
		t.Fatalf("conflict latency %d does not include tRAS stall (>%d expected)", res.Latency, minimum)
	}
}

func TestBankBusyStall(t *testing.T) {
	tm := testTiming()
	b := NewBank(tm, 8192)
	first := b.Access(0, 5)
	// Issue while the bank is still busy: the access must stall.
	res := b.Access(first.CompletedAt-10, 5)
	if res.Latency != tm.HitLatency()+10 {
		t.Fatalf("stalled hit latency = %d, want %d", res.Latency, tm.HitLatency()+10)
	}
}

func TestBankRowTimeoutClosesRow(t *testing.T) {
	tm := testTiming()
	tm.RowTimeout = 100
	b := NewBank(tm, 8192)
	first := b.Access(0, 5)
	res := b.Access(first.CompletedAt+101, 5)
	if res.Outcome != OutcomeEmpty {
		t.Fatalf("outcome after timeout = %v, want empty", res.Outcome)
	}
}

func TestBankNoTimeoutWhenDisabled(t *testing.T) {
	tm := testTiming()
	tm.RowTimeout = 0
	b := NewBank(tm, 8192)
	first := b.Access(0, 5)
	res := b.Access(first.CompletedAt+1_000_000, 5)
	if res.Outcome != OutcomeHit {
		t.Fatalf("outcome with disabled timeout = %v, want hit", res.Outcome)
	}
}

func TestBankPrechargeIdempotent(t *testing.T) {
	b := NewBank(testTiming(), 8192)
	first := b.Access(0, 5)
	pre := b.Precharge(first.CompletedAt + 200)
	if b.OpenRow() != -1 {
		t.Fatalf("open row after precharge = %d, want -1", b.OpenRow())
	}
	again := b.Precharge(pre.CompletedAt + 10)
	if again.Latency != 0 {
		t.Fatalf("second precharge latency = %d, want 0", again.Latency)
	}
}

func TestBankActivateOpensWithoutData(t *testing.T) {
	tm := testTiming()
	b := NewBank(tm, 8192)
	res := b.Activate(0, 7)
	if res.Outcome != OutcomeEmpty || res.Latency != tm.TRCD {
		t.Fatalf("activate = %+v, want empty with tRCD", res)
	}
	if b.OpenRow() != 7 {
		t.Fatalf("open row = %d, want 7", b.OpenRow())
	}
}

func TestBankRowCloneCopiesData(t *testing.T) {
	b := NewBank(testTiming(), 128)
	payload := []byte("the row buffer is a covert channel")
	b.WriteBytes(3, 0, payload)
	b.Access(0, 3) // latch source
	res := b.RowClone(200, 3, 4)
	if res.Outcome != OutcomeHit {
		t.Fatalf("rowclone with latched source outcome = %v, want hit", res.Outcome)
	}
	got := make([]byte, len(payload))
	b.ReadBytes(4, 0, got)
	if string(got) != string(payload) {
		t.Fatalf("destination row = %q, want %q", got, payload)
	}
	if b.OpenRow() != 4 {
		t.Fatalf("open row after rowclone = %d, want destination 4", b.OpenRow())
	}
}

func TestBankRowCloneConflictTiming(t *testing.T) {
	tm := testTiming()
	b := NewBank(tm, 8192)
	first := b.Access(0, 9) // open an unrelated row
	res := b.RowClone(first.CompletedAt+tm.TRAS+100, 3, 4)
	if res.Outcome != OutcomeConflict {
		t.Fatalf("outcome = %v, want conflict", res.Outcome)
	}
	want := tm.TRP + tm.TRCD + tm.RowCloneFPM
	if res.Latency != want {
		t.Fatalf("conflict rowclone latency = %d, want %d", res.Latency, want)
	}
}

func TestBankReadWriteBounds(t *testing.T) {
	b := NewBank(testTiming(), 64)
	if n := b.WriteBytes(0, -1, []byte{1}); n != 0 {
		t.Errorf("negative col write wrote %d bytes", n)
	}
	if n := b.WriteBytes(0, 64, []byte{1}); n != 0 {
		t.Errorf("past-end write wrote %d bytes", n)
	}
	if n := b.WriteBytes(0, 60, []byte{1, 2, 3, 4, 5, 6}); n != 4 {
		t.Errorf("truncated write = %d bytes, want 4", n)
	}
	buf := make([]byte, 8)
	if n := b.ReadBytes(0, 60, buf); n != 4 {
		t.Errorf("truncated read = %d bytes, want 4", n)
	}
}

func TestBankLatencyMonotonicity(t *testing.T) {
	// Property: for any access sequence, CompletedAt never decreases.
	check := func(rows []uint8, gaps []uint8) bool {
		b := NewBank(testTiming(), 8192)
		now := int64(0)
		var lastDone int64
		for i, r := range rows {
			if i < len(gaps) {
				now += int64(gaps[i])
			}
			res := b.Access(now, int64(r%8))
			if res.CompletedAt < lastDone {
				return false
			}
			lastDone = res.CompletedAt
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBankOutcomeLatencyOrdering(t *testing.T) {
	// Property: hit <= empty <= conflict for quiescent accesses.
	tm := testTiming()
	if !(tm.HitLatency() <= tm.EmptyLatency() && tm.EmptyLatency() <= tm.ConflictLatency()) {
		t.Fatalf("latency ordering violated: hit=%d empty=%d conflict=%d",
			tm.HitLatency(), tm.EmptyLatency(), tm.ConflictLatency())
	}
	if tm.WorstCaseLatency() < tm.ConflictLatency() {
		t.Fatalf("worst case %d < conflict %d", tm.WorstCaseLatency(), tm.ConflictLatency())
	}
}

package dram

import (
	"testing"
	"testing/quick"
)

func TestAddrMapperRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	for _, scheme := range []MappingScheme{MapRowInterleaved, MapBankXOR} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			m, err := NewAddrMapper(cfg, scheme)
			if err != nil {
				t.Fatal(err)
			}
			check := func(bankRaw uint8, rowRaw uint16, colRaw uint16) bool {
				bank := int(bankRaw) % cfg.TotalBanks()
				row := int64(rowRaw)
				col := int(colRaw) % cfg.RowBytes
				addr := m.Compose(bank, row, col)
				coord := m.Map(addr)
				return coord.FlatBank(cfg) == bank && coord.Row == row && coord.Col == col
			}
			if err := quick.Check(check, nil); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAddrMapperXORSpreadsRows(t *testing.T) {
	cfg := DefaultConfig()
	m, err := NewAddrMapper(cfg, MapBankXOR)
	if err != nil {
		t.Fatal(err)
	}
	// Consecutive rows at a fixed raw bank field must land in different
	// banks under the XOR scheme.
	banks := make(map[int]bool)
	for row := int64(0); row < 16; row++ {
		addr := (uint64(row)<<4 | 0) << 13 // raw bank field 0
		banks[m.FlatBankOf(addr)] = true
	}
	if len(banks) < 8 {
		t.Fatalf("XOR mapping only used %d banks for 16 consecutive rows", len(banks))
	}
}

func TestAddrMapperRowInterleavedKeepsBank(t *testing.T) {
	cfg := DefaultConfig()
	m, err := NewAddrMapper(cfg, MapRowInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	base := m.Compose(3, 100, 0)
	for col := 0; col < cfg.RowBytes; col += 1024 {
		if got := m.FlatBankOf(base + uint64(col)); got != 3 {
			t.Fatalf("col %d moved to bank %d", col, got)
		}
	}
}

func TestAddrMapperRejectsBadGeometry(t *testing.T) {
	cfg := DefaultConfig()
	cfg.RowBytes = 1000 // not a power of two
	if _, err := NewAddrMapper(cfg, MapRowInterleaved); err == nil {
		t.Fatal("expected error for non-power-of-two row size")
	}
	cfg = DefaultConfig()
	cfg.BanksPerGroup = 3
	if _, err := NewAddrMapper(cfg, MapRowInterleaved); err == nil {
		t.Fatal("expected error for non-power-of-two bank count")
	}
}

func TestCoordFlatBankRoundTrip(t *testing.T) {
	cfg := Config{Channels: 2, Ranks: 2, BankGroups: 4, BanksPerGroup: 4, RowBytes: 8192, RowsPerBank: 16}
	m, err := NewAddrMapper(cfg, MapRowInterleaved)
	if err != nil {
		t.Fatal(err)
	}
	for flat := 0; flat < cfg.TotalBanks(); flat++ {
		coord := m.split(flat, 0, 0)
		if got := coord.FlatBank(cfg); got != flat {
			t.Fatalf("flat bank %d round-tripped to %d (coord %+v)", flat, got, coord)
		}
	}
}

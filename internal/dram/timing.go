// Package dram models a DDR4 main memory device at the granularity the
// IMPACT attacks exploit: per-bank row-buffer state, activation/precharge
// timing, open-row policy with a timeout, and RowClone-style in-DRAM bulk
// copy. All latencies are expressed in CPU cycles of the simulated host
// (2.6 GHz in the paper's Table 2 configuration) so that attack code can
// compare them directly against rdtscp-style measurements.
package dram

// Timing holds DRAM timing parameters converted to CPU cycles. The paper's
// Table 2 uses DDR4-2400 with tRCD = tRP = 13.5 ns; at a 2.6 GHz host clock
// that is ~35 CPU cycles each.
type Timing struct {
	// TRCD is the activate-to-read/write delay (row open cost).
	TRCD int64 `json:"trcd"`
	// TRP is the precharge latency (row close cost).
	TRP int64 `json:"trp"`
	// TCAS is the column access latency once a row is open.
	TCAS int64 `json:"tcas"`
	// TRAS is the minimum time a row must stay open after activation
	// before it may be precharged.
	TRAS int64 `json:"tras"`
	// TBurst is the data burst transfer time for one access.
	TBurst int64 `json:"tburst"`
	// RowTimeout is the open-row policy timeout: a row left untouched
	// this long is closed by the controller; 0 disables the timeout
	// (pure open-row policy). Table 2 lists 100 ns, but any timeout
	// shorter than an attack batch (covert channels) or a bank sweep
	// (side channel) closes every row between probes and erases the
	// hit-vs-conflict signature the paper's Figures 8 and 11 demonstrably
	// observe — so the default disables it, and timeout values are
	// exercised as an ablation that measurably degrades and then kills
	// the channel (BenchmarkAblationRowPolicy).
	RowTimeout int64 `json:"row_timeout"`
	// RowCloneFPM is the latency of one RowClone Fast-Parallel-Mode
	// operation (two back-to-back activations) when the source row is
	// already the open row.
	RowCloneFPM int64 `json:"rowclone_fpm"`
}

// DDR4_2400 returns the paper's Table 2 timing converted to cycles of a
// 2.6 GHz host: tRCD = tRP = 13.5 ns = 35 cycles, tCAS ~= 35 cycles,
// tRAS ~= 32 ns = 83 cycles, 100 ns row timeout = 260 cycles.
func DDR4_2400() Timing {
	return Timing{
		TRCD:        35,
		TRP:         35,
		TCAS:        35,
		TRAS:        83,
		TBurst:      4,
		RowTimeout:  0,
		RowCloneFPM: 50,
	}
}

// HitLatency returns the device-side latency of a row-buffer hit.
func (t Timing) HitLatency() int64 { return t.TCAS + t.TBurst }

// EmptyLatency returns the device-side latency of an access to a closed
// (precharged) bank: one activation plus the column access.
func (t Timing) EmptyLatency() int64 { return t.TRCD + t.TCAS + t.TBurst }

// ConflictLatency returns the device-side latency of a row-buffer conflict:
// precharge the open row, activate the target, then access it.
func (t Timing) ConflictLatency() int64 {
	return t.TRP + t.TRCD + t.TCAS + t.TBurst
}

// WorstCaseLatency returns the constant-time defense latency: the maximum
// latency any single access can take (a conflict against a row that was
// activated immediately beforehand, forcing a tRAS stall before precharge).
func (t Timing) WorstCaseLatency() int64 {
	return t.TRAS + t.TRP + t.TRCD + t.TCAS + t.TBurst
}

package dram

import (
	"fmt"

	"repro/internal/stats"
)

// Config describes the device geometry (the paper's Table 2 defaults are in
// DefaultConfig).
type Config struct {
	Channels      int `json:"channels"`
	Ranks         int `json:"ranks"`
	BankGroups    int `json:"bank_groups"`
	BanksPerGroup int `json:"banks_per_group"`
	// RowBytes is the size of one DRAM row (8192 bytes in Table 2).
	RowBytes int `json:"row_bytes"`
	// RowsPerBank bounds the row index space of each bank.
	RowsPerBank int64  `json:"rows_per_bank"`
	Timing      Timing `json:"timing"`
	// Maintenance configures refresh and RowHammer-mitigation stalls
	// (zero value: disabled, matching the Table 2 calibration).
	Maintenance Maintenance `json:"maintenance"`
}

// DefaultConfig returns the paper's Table 2 main-memory configuration:
// DDR4-2400, 1 channel, 1 rank, 4 bank groups x 4 banks = 16 banks, 8 KiB
// rows, open-row policy with a 100 ns timeout.
func DefaultConfig() Config {
	return Config{
		Channels:      1,
		Ranks:         1,
		BankGroups:    4,
		BanksPerGroup: 4,
		RowBytes:      8192,
		RowsPerBank:   1 << 16,
		Timing:        DDR4_2400(),
	}
}

// WithBanks returns a copy of the config resized to the given total bank
// count (used by the Figure 11 bank sweep). The count must be divisible by
// the bank-group count.
func (c Config) WithBanks(total int) Config {
	out := c
	out.BanksPerGroup = total / out.BankGroups
	if out.BanksPerGroup == 0 {
		out.BankGroups = total
		out.BanksPerGroup = 1
	}
	return out
}

// TotalBanks returns the number of independently accessible banks.
func (c Config) TotalBanks() int {
	return c.Channels * c.Ranks * c.BankGroups * c.BanksPerGroup
}

// Validate reports configuration errors early.
func (c Config) Validate() error {
	if c.TotalBanks() <= 0 {
		return fmt.Errorf("dram: non-positive bank count %d", c.TotalBanks())
	}
	if c.RowBytes <= 0 {
		return fmt.Errorf("dram: non-positive row size %d", c.RowBytes)
	}
	if c.RowsPerBank <= 0 {
		return fmt.Errorf("dram: non-positive rows per bank %d", c.RowsPerBank)
	}
	return nil
}

// Fixed counter IDs for device statistics, in the slot order passed to
// stats.NewFixed in NewDevice.
const (
	CounterHit stats.CounterID = iota
	CounterEmpty
	CounterConflict
	CounterRowClone
)

// Device is a full DRAM module: a flat array of banks (the hierarchy is
// encoded by AddrMapper) with shared timing and access statistics.
type Device struct {
	cfg      Config
	banks    []*Bank
	counters *stats.Counters
}

// NewDevice builds a device from the configuration.
func NewDevice(cfg Config) (*Device, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	banks := make([]*Bank, cfg.TotalBanks())
	for i := range banks {
		banks[i] = NewBank(cfg.Timing, cfg.RowBytes)
		banks[i].SetMaintenance(cfg.Maintenance)
	}
	return &Device{
		cfg:      cfg,
		banks:    banks,
		counters: stats.NewFixed("hit", "empty", "conflict", "rowclone"),
	}, nil
}

// Config returns the device configuration.
func (d *Device) Config() Config { return d.cfg }

// NumBanks returns the total bank count.
func (d *Device) NumBanks() int { return len(d.banks) }

// Bank returns the bank at the given flat index. It returns nil for
// out-of-range indices so misaddressed requests surface in tests rather
// than panicking deep in a simulation.
func (d *Device) Bank(i int) *Bank {
	if i < 0 || i >= len(d.banks) {
		return nil
	}
	return d.banks[i]
}

// Access performs a data access (read or write share the same timing at
// this granularity) against bank/row and records statistics.
func (d *Device) Access(now int64, bank int, row int64) (AccessResult, error) {
	b := d.Bank(bank)
	if b == nil {
		return AccessResult{}, fmt.Errorf("dram: bank %d out of range [0,%d)", bank, len(d.banks))
	}
	res := b.Access(now, row)
	d.record(res.Outcome)
	return res, nil
}

// Activate opens a row without a data transfer.
func (d *Device) Activate(now int64, bank int, row int64) (AccessResult, error) {
	b := d.Bank(bank)
	if b == nil {
		return AccessResult{}, fmt.Errorf("dram: bank %d out of range [0,%d)", bank, len(d.banks))
	}
	res := b.Activate(now, row)
	d.record(res.Outcome)
	return res, nil
}

// RowClone performs an in-DRAM copy within one bank.
func (d *Device) RowClone(now int64, bank int, srcRow, dstRow int64) (AccessResult, error) {
	b := d.Bank(bank)
	if b == nil {
		return AccessResult{}, fmt.Errorf("dram: bank %d out of range [0,%d)", bank, len(d.banks))
	}
	res := b.RowClone(now, srcRow, dstRow)
	d.record(res.Outcome)
	d.counters.Add(CounterRowClone, 1)
	return res, nil
}

// PrechargeAll closes every bank (used between experiments).
func (d *Device) PrechargeAll(now int64) {
	for _, b := range d.banks {
		b.Precharge(now)
	}
}

// Reset precharges all banks and clears busy state without dropping row
// contents or statistics.
func (d *Device) Reset() {
	for _, b := range d.banks {
		b.Reset()
	}
}

// ResetFull returns the device to its just-constructed state: every bank
// fully reset (timing state and row contents) and statistics zeroed, so a
// pooled machine starts each run indistinguishable from a fresh one.
func (d *Device) ResetFull() {
	for _, b := range d.banks {
		b.ResetFull()
	}
	d.counters.Reset()
}

// Reconfigure fully resets the device under a new configuration, reusing
// the allocated banks and row buffers. Reuse requires the allocation shape
// — bank count and row size — to be unchanged; Reconfigure reports whether
// it was possible and leaves the device untouched when it was not.
func (d *Device) Reconfigure(cfg Config) bool {
	if cfg.Validate() != nil || cfg.TotalBanks() != d.cfg.TotalBanks() || cfg.RowBytes != d.cfg.RowBytes {
		return false
	}
	d.cfg = cfg
	for _, b := range d.banks {
		b.Reconfigure(cfg.Timing, cfg.Maintenance)
	}
	d.counters.Reset()
	return true
}

// Counters exposes access statistics: hits, empties, conflicts, rowclones.
func (d *Device) Counters() *stats.Counters { return d.counters }

func (d *Device) record(o Outcome) {
	switch o {
	case OutcomeHit:
		d.counters.Add(CounterHit, 1)
	case OutcomeEmpty:
		d.counters.Add(CounterEmpty, 1)
	case OutcomeConflict:
		d.counters.Add(CounterConflict, 1)
	}
}

package dram

import "testing"

func TestRefreshWindowStallsAccess(t *testing.T) {
	tm := DDR4_2400()
	b := NewBank(tm, 8192)
	maint := DDR4Refresh()
	b.SetMaintenance(maint)
	// An access issued right at a refresh boundary waits out tRFC.
	res := b.Access(maint.RefreshInterval, 5)
	minimum := maint.RefreshDuration + tm.EmptyLatency()
	if res.Latency < minimum {
		t.Fatalf("latency at refresh boundary = %d, want >= %d", res.Latency, minimum)
	}
}

func TestRefreshClosesOpenRows(t *testing.T) {
	tm := DDR4_2400()
	b := NewBank(tm, 8192)
	maint := DDR4Refresh()
	b.SetMaintenance(maint)
	first := b.Access(100, 5)
	// Access the same row after a refresh boundary: the refresh
	// precharged the bank, so this is an activation, not a hit.
	res := b.Access(first.CompletedAt+maint.RefreshInterval, 5)
	if res.Outcome != OutcomeEmpty {
		t.Fatalf("outcome after refresh = %v, want empty", res.Outcome)
	}
}

func TestRefreshNoEffectWithinWindow(t *testing.T) {
	tm := DDR4_2400()
	b := NewBank(tm, 8192)
	b.SetMaintenance(DDR4Refresh())
	first := b.Access(1000, 5)
	res := b.Access(first.CompletedAt+100, 5)
	if res.Outcome != OutcomeHit {
		t.Fatalf("same-interval access outcome = %v, want hit", res.Outcome)
	}
	if res.Latency != tm.HitLatency() {
		t.Fatalf("same-interval hit latency = %d", res.Latency)
	}
}

func TestMitigationTriggersEveryThresholdActivations(t *testing.T) {
	tm := DDR4_2400()
	b := NewBank(tm, 8192)
	maint := Maintenance{MitigationThreshold: 4, MitigationPenalty: 910}
	b.SetMaintenance(maint)
	now := int64(0)
	stalls := 0
	for i := 0; i < 12; i++ {
		res := b.Access(now, int64(i)) // every access is a fresh activation
		if res.Latency >= maint.MitigationPenalty {
			stalls++
		}
		now = res.CompletedAt + tm.TRAS + 10 // avoid tRAS stalls confusing the count
	}
	if stalls != 3 {
		t.Fatalf("preventive actions = %d for 12 activations at threshold 4, want 3", stalls)
	}
}

func TestMitigationIgnoresRowHits(t *testing.T) {
	tm := DDR4_2400()
	b := NewBank(tm, 8192)
	b.SetMaintenance(Maintenance{MitigationThreshold: 2, MitigationPenalty: 910})
	first := b.Access(0, 5) // activation 1
	now := first.CompletedAt + 10
	for i := 0; i < 10; i++ {
		res := b.Access(now, 5) // hits do not activate
		if res.Latency >= 910 {
			t.Fatalf("row hit %d paid a preventive action", i)
		}
		now = res.CompletedAt + 10
	}
}

func TestMaintenanceDisabledByDefault(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Maintenance.RefreshInterval != 0 || cfg.Maintenance.MitigationThreshold != 0 {
		t.Fatalf("default config enables maintenance: %+v", cfg.Maintenance)
	}
}

func TestRefreshAdjustMath(t *testing.T) {
	m := Maintenance{RefreshInterval: 1000, RefreshDuration: 100}
	tests := []struct {
		now, since     int64
		wantStart      int64
		wantRowsClosed bool
	}{
		{now: 50, since: 40, wantStart: 100, wantRowsClosed: false},
		{now: 500, since: 400, wantStart: 500, wantRowsClosed: false},
		{now: 1050, since: 900, wantStart: 1100, wantRowsClosed: true},
		{now: 2500, since: 900, wantStart: 2500, wantRowsClosed: true},
	}
	for _, tt := range tests {
		start, closed := m.refreshAdjust(tt.now, tt.since)
		if start != tt.wantStart || closed != tt.wantRowsClosed {
			t.Errorf("refreshAdjust(%d,%d) = (%d,%v), want (%d,%v)",
				tt.now, tt.since, start, closed, tt.wantStart, tt.wantRowsClosed)
		}
	}
	// Disabled: identity.
	var off Maintenance
	if start, closed := off.refreshAdjust(123, 0); start != 123 || closed {
		t.Errorf("disabled refreshAdjust = (%d,%v)", start, closed)
	}
}

func TestWithRefreshCombinator(t *testing.T) {
	m := DDR5RFM().WithRefresh()
	if m.MitigationThreshold == 0 || m.RefreshInterval == 0 {
		t.Fatalf("combined maintenance incomplete: %+v", m)
	}
}

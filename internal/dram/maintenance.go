package dram

// Maintenance models the two classes of DRAM maintenance operation that
// stall attacker-visible accesses and that Section 8.4 discusses as timing
// noise in future devices:
//
//   - Periodic refresh: every RefreshInterval cycles (tREFI) the bank is
//     blocked for RefreshDuration cycles (tRFC) and its row buffer is
//     precharged.
//   - RowHammer mitigations (RFM/PRAC): after MitigationThreshold
//     activations, the bank performs a preventive action that blocks it for
//     MitigationPenalty cycles (350-1400 ns per the DDR5 specifications the
//     paper cites). The paper observes these stalls are much larger than a
//     row-buffer conflict "and can be filtered out by the receiver".
//
// Both default to disabled (zero values) so the Table 2 calibration is
// unaffected; ablation benches and the Section 8.4 experiment enable them.
type Maintenance struct {
	// RefreshInterval is tREFI in cycles (0 disables refresh).
	RefreshInterval int64 `json:"refresh_interval"`
	// RefreshDuration is tRFC in cycles.
	RefreshDuration int64 `json:"refresh_duration"`
	// MitigationThreshold is the activation count (RAA) that triggers a
	// preventive refresh-management action (0 disables).
	MitigationThreshold int `json:"mitigation_threshold"`
	// MitigationPenalty is the stall per preventive action in cycles.
	MitigationPenalty int64 `json:"mitigation_penalty"`
}

// DDR4Refresh returns standard DDR4 refresh timing at 2.6 GHz: tREFI =
// 7.8 us = 20280 cycles, tRFC = 350 ns = 910 cycles.
func DDR4Refresh() Maintenance {
	return Maintenance{RefreshInterval: 20280, RefreshDuration: 910}
}

// DDR5RFM returns an RFM-style RowHammer mitigation: a preventive action
// every 32 activations costing 910 cycles (350 ns), the lower bound of the
// 350-1400 ns range the paper quotes.
func DDR5RFM() Maintenance {
	return Maintenance{MitigationThreshold: 32, MitigationPenalty: 910}
}

// WithRefresh combines this maintenance config with DDR4 refresh.
func (m Maintenance) WithRefresh() Maintenance {
	r := DDR4Refresh()
	m.RefreshInterval = r.RefreshInterval
	m.RefreshDuration = r.RefreshDuration
	return m
}

// refreshAdjust returns the earliest cycle at or after now that is outside
// any refresh window, and whether a refresh boundary has passed since
// `since` (meaning open rows were precharged by the all-bank refresh).
func (m Maintenance) refreshAdjust(now, since int64) (start int64, rowsClosed bool) {
	if m.RefreshInterval <= 0 {
		return now, false
	}
	window := now / m.RefreshInterval
	windowStart := window * m.RefreshInterval
	start = now
	if now < windowStart+m.RefreshDuration {
		start = windowStart + m.RefreshDuration
	}
	rowsClosed = since/m.RefreshInterval != window || since < windowStart
	return start, rowsClosed
}

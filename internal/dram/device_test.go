package dram

import "testing"

func TestDeviceConfigValidation(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero banks", func(c *Config) { c.BanksPerGroup = 0; c.BankGroups = 0 }},
		{"zero row bytes", func(c *Config) { c.RowBytes = 0 }},
		{"zero rows", func(c *Config) { c.RowsPerBank = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if _, err := NewDevice(cfg); err == nil {
				t.Fatal("expected construction error")
			}
		})
	}
}

func TestDeviceBankOutOfRange(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Access(0, -1, 0); err == nil {
		t.Error("negative bank accepted")
	}
	if _, err := dev.Access(0, dev.NumBanks(), 0); err == nil {
		t.Error("out-of-range bank accepted")
	}
	if dev.Bank(dev.NumBanks()) != nil {
		t.Error("Bank out of range returned non-nil")
	}
}

func TestDeviceCountsOutcomes(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev.Access(0, 0, 1)    // empty
	dev.Access(1000, 0, 1) // hit
	dev.Access(2000, 0, 2) // conflict
	dev.RowClone(5000, 1, 3, 4)
	c := dev.Counters()
	if c.Get("empty") != 2 { // first access + rowclone on closed bank
		t.Errorf("empty = %d, want 2", c.Get("empty"))
	}
	if c.Get("hit") != 1 {
		t.Errorf("hit = %d, want 1", c.Get("hit"))
	}
	if c.Get("conflict") != 1 {
		t.Errorf("conflict = %d, want 1", c.Get("conflict"))
	}
	if c.Get("rowclone") != 1 {
		t.Errorf("rowclone = %d, want 1", c.Get("rowclone"))
	}
}

func TestDeviceBanksAreIndependent(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	dev.Access(0, 0, 10)
	res, err := dev.Access(500, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Outcome != OutcomeEmpty {
		t.Fatalf("bank 1 outcome = %v, want empty (banks must not share row buffers)", res.Outcome)
	}
}

func TestDevicePrechargeAllAndReset(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for b := 0; b < dev.NumBanks(); b++ {
		dev.Access(0, b, 42)
	}
	dev.PrechargeAll(10_000)
	for b := 0; b < dev.NumBanks(); b++ {
		if got := dev.Bank(b).OpenRow(); got != -1 {
			t.Fatalf("bank %d open row = %d after PrechargeAll", b, got)
		}
	}
	dev.Reset()
	for b := 0; b < dev.NumBanks(); b++ {
		if got := dev.Bank(b).BusyUntil(); got != 0 {
			t.Fatalf("bank %d busyUntil = %d after Reset", b, got)
		}
	}
}

func TestConfigWithBanks(t *testing.T) {
	for _, total := range []int{16, 64, 1024, 8192} {
		cfg := DefaultConfig().WithBanks(total)
		if got := cfg.TotalBanks(); got != total {
			t.Errorf("WithBanks(%d).TotalBanks() = %d", total, got)
		}
	}
	// Fewer banks than groups collapses to one bank per group.
	cfg := DefaultConfig().WithBanks(2)
	if cfg.TotalBanks() != 2 {
		t.Errorf("WithBanks(2) = %d banks", cfg.TotalBanks())
	}
}

func TestRowCloneIsFunctionalAcrossDevice(t *testing.T) {
	dev, err := NewDevice(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte{0xde, 0xad, 0xbe, 0xef}
	dev.Bank(2).WriteBytes(100, 0, payload)
	if _, err := dev.RowClone(0, 2, 100, 200); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4)
	dev.Bank(2).ReadBytes(200, 0, got)
	for i := range payload {
		if got[i] != payload[i] {
			t.Fatalf("cloned row byte %d = %#x, want %#x", i, got[i], payload[i])
		}
	}
}

package dram

// Bank models one DRAM bank: a two-dimensional array of cells fronted by a
// row buffer. The row buffer is the shared microarchitectural state that the
// IMPACT timing channel exploits. Banks also hold functional row contents so
// that RowClone bulk copies can be verified end to end, not just timed.
type Bank struct {
	timing Timing
	maint  Maintenance
	// raa counts activations toward the RowHammer-mitigation threshold.
	raa int

	// openRow is the row currently latched in the row buffer, or -1 when
	// the bank is precharged.
	openRow int64
	// busyUntil is the cycle at which the bank finishes its current
	// operation; new commands stall until then.
	busyUntil int64
	// activatedAt is the cycle of the most recent activation, used to
	// enforce tRAS before a precharge.
	activatedAt int64
	// lastTouch is the cycle of the most recent access, used by the
	// open-row timeout policy.
	lastTouch int64

	rowBytes int
	rows     map[int64][]byte
}

// NewBank returns a precharged bank with the given timing and row size.
func NewBank(timing Timing, rowBytes int) *Bank {
	return &Bank{
		timing:   timing,
		openRow:  -1,
		rowBytes: rowBytes,
		rows:     make(map[int64][]byte),
	}
}

// SetMaintenance configures refresh and RowHammer-mitigation behaviour.
func (b *Bank) SetMaintenance(m Maintenance) { b.maint = m }

// OpenRow returns the row currently in the row buffer, or -1 if precharged.
// It does not apply the timeout policy; callers that want timeout semantics
// should use Access.
func (b *Bank) OpenRow() int64 { return b.openRow }

// BusyUntil returns the cycle at which the bank becomes free.
func (b *Bank) BusyUntil() int64 { return b.busyUntil }

// applyTimeout closes the row if it has sat untouched past the open-row
// timeout, emulating the controller's timeout-based precharge.
//
//impact:hotpath
func (b *Bank) applyTimeout(now int64) {
	if b.openRow >= 0 && b.timing.RowTimeout > 0 && now-b.lastTouch > b.timing.RowTimeout {
		b.openRow = -1
	}
}

// start returns the cycle at which a new command can begin, accounting for
// the bank being busy and for refresh windows; a refresh that happened
// since the last touch precharges the open row.
//
//impact:hotpath
func (b *Bank) start(now int64) int64 {
	if b.busyUntil > now {
		now = b.busyUntil
	}
	adjusted, rowsClosed := b.maint.refreshAdjust(now, b.lastTouch)
	if rowsClosed {
		b.openRow = -1
	}
	return adjusted
}

// activationPenalty accounts one activation against the RowHammer
// mitigation budget (RFM/PRAC), returning the preventive-action stall when
// the threshold is reached (Section 8.4).
//
//impact:hotpath
func (b *Bank) activationPenalty() int64 {
	if b.maint.MitigationThreshold <= 0 {
		return 0
	}
	b.raa++
	if b.raa >= b.maint.MitigationThreshold {
		b.raa = 0
		return b.maint.MitigationPenalty
	}
	return 0
}

// Access performs a read or write of the given row, returning the access
// latency relative to now and the row-buffer outcome.
//
//impact:hotpath
func (b *Bank) Access(now int64, row int64) AccessResult {
	b.applyTimeout(now)
	start := b.start(now)
	var outcome Outcome
	var deviceLat int64
	switch {
	case b.openRow == row:
		outcome = OutcomeHit
		deviceLat = b.timing.HitLatency()
	case b.openRow < 0:
		outcome = OutcomeEmpty
		deviceLat = b.timing.EmptyLatency() + b.activationPenalty()
		b.activatedAt = start
	default:
		outcome = OutcomeConflict
		// The precharge cannot begin until tRAS has elapsed since the
		// open row's activation.
		rasReady := b.activatedAt + b.timing.TRAS
		if rasReady > start {
			start = rasReady
		}
		deviceLat = b.timing.ConflictLatency() + b.activationPenalty()
		b.activatedAt = start + b.timing.TRP
	}
	done := start + deviceLat
	b.openRow = row
	b.busyUntil = done
	b.lastTouch = done
	return AccessResult{Latency: done - now, Outcome: outcome, CompletedAt: done}
}

// Activate opens the given row without transferring data (used by sender
// PEIs that only need to perturb the row buffer). Latency accounting matches
// Access minus the column access and burst.
//
//impact:hotpath
func (b *Bank) Activate(now int64, row int64) AccessResult {
	b.applyTimeout(now)
	start := b.start(now)
	var outcome Outcome
	var deviceLat int64
	switch {
	case b.openRow == row:
		outcome = OutcomeHit
		deviceLat = 1 // row already open; nothing to do
	case b.openRow < 0:
		outcome = OutcomeEmpty
		deviceLat = b.timing.TRCD + b.activationPenalty()
		b.activatedAt = start
	default:
		outcome = OutcomeConflict
		rasReady := b.activatedAt + b.timing.TRAS
		if rasReady > start {
			start = rasReady
		}
		deviceLat = b.timing.TRP + b.timing.TRCD + b.activationPenalty()
		b.activatedAt = start + b.timing.TRP
	}
	done := start + deviceLat
	b.openRow = row
	b.busyUntil = done
	b.lastTouch = done
	return AccessResult{Latency: done - now, Outcome: outcome, CompletedAt: done}
}

// Precharge closes the bank's open row. It is idempotent.
//
//impact:hotpath
func (b *Bank) Precharge(now int64) AccessResult {
	b.applyTimeout(now)
	start := b.start(now)
	if b.openRow < 0 {
		return AccessResult{Latency: 0, Outcome: OutcomeEmpty, CompletedAt: start}
	}
	rasReady := b.activatedAt + b.timing.TRAS
	if rasReady > start {
		start = rasReady
	}
	done := start + b.timing.TRP
	b.openRow = -1
	b.busyUntil = done
	b.lastTouch = done
	return AccessResult{Latency: done - now, Outcome: OutcomeConflict, CompletedAt: done}
}

// RowClone performs an in-DRAM Fast-Parallel-Mode copy of srcRow into
// dstRow: the first activation latches srcRow into the row buffer, the
// second connects dstRow so the buffered data overwrites it. If a different
// row is open the bank must first precharge, which is the timing signal the
// IMPACT-PuM receiver decodes.
func (b *Bank) RowClone(now int64, srcRow, dstRow int64) AccessResult {
	b.applyTimeout(now)
	start := b.start(now)
	var outcome Outcome
	var deviceLat int64
	switch {
	case b.openRow == srcRow:
		// Source already latched: only the second activation is needed.
		outcome = OutcomeHit
		deviceLat = b.timing.RowCloneFPM
	case b.openRow < 0:
		outcome = OutcomeEmpty
		deviceLat = b.timing.TRCD + b.timing.RowCloneFPM + b.activationPenalty()
		b.activatedAt = start
	default:
		outcome = OutcomeConflict
		rasReady := b.activatedAt + b.timing.TRAS
		if rasReady > start {
			start = rasReady
		}
		deviceLat = b.timing.TRP + b.timing.TRCD + b.timing.RowCloneFPM + b.activationPenalty()
		b.activatedAt = start + b.timing.TRP
	}
	// Functional copy: dst becomes a copy of src.
	copy(b.row(dstRow), b.row(srcRow))
	done := start + deviceLat
	// After FPM the destination row is the open row.
	b.openRow = dstRow
	b.busyUntil = done
	b.lastTouch = done
	return AccessResult{Latency: done - now, Outcome: outcome, CompletedAt: done}
}

// row returns the functional contents of a row, allocating lazily.
func (b *Bank) row(row int64) []byte {
	data, ok := b.rows[row]
	if !ok {
		data = make([]byte, b.rowBytes)
		b.rows[row] = data
	}
	return data
}

// ReadBytes copies row contents starting at col into dst and returns the
// number of bytes copied. Reads past the end of the row are truncated.
func (b *Bank) ReadBytes(row int64, col int, dst []byte) int {
	data := b.row(row)
	if col < 0 || col >= len(data) {
		return 0
	}
	return copy(dst, data[col:])
}

// WriteBytes copies src into the row starting at col and returns the number
// of bytes written. Writes past the end of the row are truncated.
func (b *Bank) WriteBytes(row int64, col int, src []byte) int {
	data := b.row(row)
	if col < 0 || col >= len(data) {
		return 0
	}
	return copy(data[col:], src)
}

// Reset precharges the bank and clears busy state, keeping row contents.
func (b *Bank) Reset() {
	b.openRow = -1
	b.busyUntil = 0
	b.activatedAt = 0
	b.lastTouch = 0
	b.raa = 0
}

// ResetFull returns the bank to its just-constructed state: timing state
// cleared AND functional row contents zeroed. RowClone and WriteBytes leak
// data between runs otherwise, so pooled machines must use this, not Reset.
// Row buffers stay allocated (a fresh bank lazily materializes zeroed rows,
// so zeroing in place is behaviorally identical and allocation-free).
func (b *Bank) ResetFull() {
	b.Reset()
	for _, data := range b.rows {
		for i := range data {
			data[i] = 0
		}
	}
}

// Reconfigure fully resets the bank under new timing and maintenance
// parameters, reusing the allocated row buffers.
func (b *Bank) Reconfigure(t Timing, m Maintenance) {
	b.timing = t
	b.maint = m
	b.ResetFull()
}

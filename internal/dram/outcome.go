package dram

// Outcome classifies how an access interacted with the row buffer.
type Outcome int

const (
	// OutcomeHit means the target row was already open in the row buffer.
	OutcomeHit Outcome = iota + 1
	// OutcomeEmpty means the bank was precharged (closed); the access paid
	// one activation but no precharge.
	OutcomeEmpty
	// OutcomeConflict means a different row was open; the access paid a
	// precharge plus an activation.
	OutcomeConflict
)

// String implements fmt.Stringer.
func (o Outcome) String() string {
	switch o {
	case OutcomeHit:
		return "hit"
	case OutcomeEmpty:
		return "empty"
	case OutcomeConflict:
		return "conflict"
	default:
		return "unknown"
	}
}

// AccessResult describes one completed DRAM access.
type AccessResult struct {
	// Latency is the total device-side latency in CPU cycles, including
	// any stall waiting for the bank to become free or for tRAS.
	Latency int64
	// Outcome classifies the row-buffer interaction.
	Outcome Outcome
	// CompletedAt is the simulated cycle at which the access finished.
	CompletedAt int64
}

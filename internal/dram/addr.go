package dram

import (
	"fmt"

	"repro/internal/jsonenum"
)

// Coord locates one DRAM word within the device hierarchy.
type Coord struct {
	Channel   int
	Rank      int
	BankGroup int
	Bank      int // bank index within the bank group
	Row       int64
	Col       int // byte offset within the row
}

// FlatBank returns the global bank index across channels, ranks and groups,
// which is how the rest of the simulator addresses banks.
func (c Coord) FlatBank(cfg Config) int {
	idx := c.Channel
	idx = idx*cfg.Ranks + c.Rank
	idx = idx*cfg.BankGroups + c.BankGroup
	idx = idx*cfg.BanksPerGroup + c.Bank
	return idx
}

// MappingScheme selects how physical addresses are scattered across banks.
type MappingScheme int

const (
	// MapRowInterleaved places consecutive rows in the same bank:
	// low bits = column, middle bits = bank, high bits = row.
	MapRowInterleaved MappingScheme = iota + 1
	// MapBankXOR additionally XORs low row bits into the bank index,
	// emulating the bank-interleaving functions of modern controllers
	// (and of the DRAMA-reverse-engineered mappings) so that consecutive
	// rows of one page spread across banks.
	MapBankXOR
)

// String implements fmt.Stringer.
func (s MappingScheme) String() string {
	switch s {
	case MapRowInterleaved:
		return "row-interleaved"
	case MapBankXOR:
		return "bank-xor"
	default:
		return "unknown"
	}
}

// mappingNames maps the JSON/String form back to the enum.
var mappingNames = map[string]MappingScheme{
	"row-interleaved": MapRowInterleaved,
	"bank-xor":        MapBankXOR,
}

// MarshalJSON encodes the scheme as its String form, so JSON configs read
// "bank-xor" rather than a bare enum ordinal.
func (s MappingScheme) MarshalJSON() ([]byte, error) {
	blob, err := jsonenum.Marshal(s, "mapping", mappingNames)
	if err != nil {
		return nil, fmt.Errorf("dram: %w", err)
	}
	return blob, nil
}

// UnmarshalJSON decodes either the String form ("row-interleaved",
// "bank-xor") or the integer ordinal.
func (s *MappingScheme) UnmarshalJSON(data []byte) error {
	v, err := jsonenum.Unmarshal(data, "mapping", mappingNames)
	if err != nil {
		return fmt.Errorf("dram: %w", err)
	}
	*s = v
	return nil
}

// AddrMapper translates physical addresses to device coordinates and back.
type AddrMapper struct {
	cfg    Config
	scheme MappingScheme

	colBits  uint
	bankBits uint
}

// NewAddrMapper builds a mapper for the device configuration. The row size
// and total bank count must be powers of two.
func NewAddrMapper(cfg Config, scheme MappingScheme) (*AddrMapper, error) {
	colBits, ok := log2(uint64(cfg.RowBytes))
	if !ok {
		return nil, fmt.Errorf("dram: row size %d is not a power of two", cfg.RowBytes)
	}
	bankBits, ok := log2(uint64(cfg.TotalBanks()))
	if !ok {
		return nil, fmt.Errorf("dram: total banks %d is not a power of two", cfg.TotalBanks())
	}
	return &AddrMapper{cfg: cfg, scheme: scheme, colBits: colBits, bankBits: bankBits}, nil
}

// log2 returns the base-2 log of v if v is a power of two.
func log2(v uint64) (uint, bool) {
	if v == 0 || v&(v-1) != 0 {
		return 0, false
	}
	var n uint
	for v > 1 {
		v >>= 1
		n++
	}
	return n, true
}

// Map translates a physical address into a device coordinate.
func (m *AddrMapper) Map(phys uint64) Coord {
	col := int(phys & ((1 << m.colBits) - 1))
	rest := phys >> m.colBits
	bank := int(rest & ((1 << m.bankBits) - 1))
	row := int64(rest >> m.bankBits)
	if m.scheme == MapBankXOR {
		bank ^= int(uint64(row) & ((1 << m.bankBits) - 1))
	}
	return m.split(bank, row, col)
}

// Compose is the inverse of Map: it builds the physical address that lands
// at the given flat bank, row and column. Attack code uses it for memory
// massaging (placing data in a chosen bank).
func (m *AddrMapper) Compose(flatBank int, row int64, col int) uint64 {
	bank := flatBank
	if m.scheme == MapBankXOR {
		bank ^= int(uint64(row) & ((1 << m.bankBits) - 1))
	}
	return (uint64(row)<<m.bankBits|uint64(bank))<<m.colBits | uint64(col)
}

// split decomposes a flat bank index into the hierarchy coordinate.
func (m *AddrMapper) split(flatBank int, row int64, col int) Coord {
	cfg := m.cfg
	bank := flatBank % cfg.BanksPerGroup
	rest := flatBank / cfg.BanksPerGroup
	group := rest % cfg.BankGroups
	rest /= cfg.BankGroups
	rank := rest % cfg.Ranks
	channel := rest / cfg.Ranks
	return Coord{Channel: channel, Rank: rank, BankGroup: group, Bank: bank, Row: row, Col: col}
}

// FlatBankOf is a convenience that maps an address straight to its global
// bank index.
func (m *AddrMapper) FlatBankOf(phys uint64) int {
	return m.Map(phys).FlatBank(m.cfg)
}

// RowOf returns the row index an address maps to.
func (m *AddrMapper) RowOf(phys uint64) int64 {
	return m.Map(phys).Row
}

package cache

import "fmt"

// Hierarchy assembles the paper's three-level cache hierarchy (Table 2:
// 32 KB L1D LRU, 2 MB L2 SRRIP, shared LLC SRRIP) over a memory backend,
// with optional IP-stride (L1) and streamer (L2) prefetchers.
type Hierarchy struct {
	l1, l2, llc *Cache
	backend     Level

	ipStride *IPStridePrefetcher
	streamer *StreamerPrefetcher

	// FlushOverhead models the serialization cost of a clflush
	// instruction beyond the cache probes themselves.
	FlushOverhead int64
}

// HierarchyConfig sizes the three levels. Latencies follow Table 2 except
// the LLC latency, which callers derive from cacti.LLCLatencyWays so the
// Figure 2/3/9 sweeps scale correctly.
type HierarchyConfig struct {
	L1  Config
	L2  Config
	LLC Config
	// EnablePrefetchers attaches the IP-stride and streamer prefetchers,
	// which the paper simulates as noise sources.
	EnablePrefetchers bool
}

// DefaultHierarchyConfig returns the Table 2 hierarchy with the given LLC
// size (bytes), ways, and access latency.
func DefaultHierarchyConfig(llcBytes, llcWays int, llcLatency int64) HierarchyConfig {
	return HierarchyConfig{
		L1: Config{
			Name: "l1d", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64,
			Latency: 4, Policy: PolicyLRU,
		},
		L2: Config{
			Name: "l2", SizeBytes: 2 << 20, Ways: 16, LineBytes: 64,
			Latency: 16, Policy: PolicySRRIP,
		},
		LLC: Config{
			Name: "llc", SizeBytes: llcBytes, Ways: llcWays, LineBytes: 64,
			Latency: llcLatency, Policy: PolicySRRIP,
		},
		EnablePrefetchers: true,
	}
}

// NewHierarchy builds the hierarchy over the given backend.
func NewHierarchy(cfg HierarchyConfig, backend Level) (*Hierarchy, error) {
	llc, err := New(cfg.LLC, backend)
	if err != nil {
		return nil, fmt.Errorf("llc: %w", err)
	}
	return NewHierarchySharedLLC(cfg, llc, backend)
}

// NewHierarchySharedLLC builds private L1/L2 levels over an existing
// (shared) LLC, as in the paper's Table 2 system where four cores share the
// last-level cache. backend is the memory level below the LLC, needed for
// clflush writebacks.
func NewHierarchySharedLLC(cfg HierarchyConfig, llc *Cache, backend Level) (*Hierarchy, error) {
	l2, err := New(cfg.L2, llc)
	if err != nil {
		return nil, fmt.Errorf("l2: %w", err)
	}
	l1, err := New(cfg.L1, l2)
	if err != nil {
		return nil, fmt.Errorf("l1: %w", err)
	}
	h := &Hierarchy{l1: l1, l2: l2, llc: llc, backend: backend, FlushOverhead: 20}
	if cfg.EnablePrefetchers {
		h.ipStride = NewIPStridePrefetcher(64)
		h.streamer = NewStreamerPrefetcher(16, 2)
	}
	return h, nil
}

// L1 returns the first-level cache.
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 returns the mid-level cache.
func (h *Hierarchy) L2() *Cache { return h.l2 }

// LLC returns the last-level cache.
func (h *Hierarchy) LLC() *Cache { return h.llc }

// Load performs a demand load at program counter pc, returning its latency.
// Prefetchers observe the access and may issue additional fills, which
// perturb DRAM row-buffer state (the paper's simulated noise) without
// charging the demand load.
func (h *Hierarchy) Load(now int64, addr uint64, pc uint64) int64 {
	lat := h.l1.Access(now, addr, false)
	if h.ipStride != nil {
		if pfAddr, ok := h.ipStride.Observe(pc, addr); ok {
			h.l1.Access(now+lat, pfAddr, false)
		}
	}
	if h.streamer != nil {
		for _, pfAddr := range h.streamer.Observe(addr) {
			h.l2.Access(now+lat, pfAddr, false)
		}
	}
	return lat
}

// Store performs a demand store.
func (h *Hierarchy) Store(now int64, addr uint64, pc uint64) int64 {
	return h.l1.Access(now, addr, true)
}

// Flush implements clflush: it invalidates addr at every level and writes
// dirty data back to memory. The returned latency includes the per-level tag
// probes, the writeback if one was needed, and the instruction's
// serialization overhead — this is the "write-back latency on the critical
// path" cost the paper identifies for specialized flush instructions.
func (h *Hierarchy) Flush(now int64, addr uint64) int64 {
	lat := h.FlushOverhead
	dirty := false
	for _, c := range []*Cache{h.l1, h.l2, h.llc} {
		lat += c.Config().Latency
		if present, d := c.Invalidate(addr); present && d {
			dirty = true
		}
	}
	if dirty {
		lat += h.backend.Access(now+lat, addr, true)
	}
	return lat
}

// LoadUncached charges a load that bypasses all cache levels (used by the
// idealized direct-memory-access attack of Section 3.3).
func (h *Hierarchy) LoadUncached(now int64, addr uint64) int64 {
	return h.backend.Access(now, addr, false)
}

// EvictionSet returns n addresses distinct from target that map to the same
// LLC set, spaced so they also map to distinct cache lines. The addresses
// stride across LLC tag space, so loading all of them displaces the target
// under both LRU and SRRIP.
func (h *Hierarchy) EvictionSet(target uint64, n int) []uint64 {
	set := h.llc.SetIndex(target)
	stride := uint64(h.llc.Sets()) << h.llc.LineBits()
	base := (target & (stride - 1) &^ ((1 << h.llc.LineBits()) - 1)) | uint64(set)<<h.llc.LineBits()
	out := make([]uint64, 0, n)
	for i := 1; len(out) < n; i++ {
		candidate := base + uint64(i)*stride
		if candidate != target {
			out = append(out, candidate)
		}
	}
	return out
}

// FlushAll empties every level (used between experiments).
func (h *Hierarchy) FlushAll() {
	h.l1.FlushAll()
	h.l2.FlushAll()
	h.llc.FlushAll()
}

// ResetPrivate returns the hierarchy's private levels (L1, L2) and
// prefetcher tables to their just-constructed state. The shared LLC is
// reset separately by the machine that owns it, since several hierarchies
// share one LLC instance.
func (h *Hierarchy) ResetPrivate() {
	h.l1.Reset()
	h.l2.Reset()
	if h.ipStride != nil {
		h.ipStride.Reset()
	}
	if h.streamer != nil {
		h.streamer.Reset()
	}
}

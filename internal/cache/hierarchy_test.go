package cache

import "testing"

func testHierarchy(t *testing.T, prefetch bool) (*Hierarchy, *fixedMem) {
	t.Helper()
	mem := &fixedMem{latency: 120}
	cfg := DefaultHierarchyConfig(8<<20, 16, 50)
	cfg.EnablePrefetchers = prefetch
	h, err := NewHierarchy(cfg, mem)
	if err != nil {
		t.Fatal(err)
	}
	return h, mem
}

func TestHierarchyLoadPopulatesAllLevels(t *testing.T) {
	h, _ := testHierarchy(t, false)
	lat := h.Load(0, 0x4000, 0x1)
	// Cold load: L1 + L2 + LLC lookups plus the memory fill.
	want := int64(4 + 16 + 50 + 120)
	if lat != want {
		t.Fatalf("cold load latency = %d, want %d", lat, want)
	}
	if !h.L1().Contains(0x4000) || !h.L2().Contains(0x4000) || !h.LLC().Contains(0x4000) {
		t.Fatal("line missing from some level after cold load")
	}
	if lat := h.Load(0, 0x4000, 0x1); lat != 4 {
		t.Fatalf("warm load latency = %d, want 4 (L1 hit)", lat)
	}
}

func TestHierarchyFlushRemovesEverywhere(t *testing.T) {
	h, mem := testHierarchy(t, false)
	h.Store(0, 0x5000, 0x1)
	lat := h.Flush(0, 0x5000)
	if h.L1().Contains(0x5000) || h.L2().Contains(0x5000) || h.LLC().Contains(0x5000) {
		t.Fatal("line survived Flush at some level")
	}
	if len(mem.writes) != 1 {
		t.Fatalf("dirty flush wrote back %d times, want 1", len(mem.writes))
	}
	// Flush must cost at least the per-level probes plus the writeback.
	if lat < h.FlushOverhead+4+16+50+120 {
		t.Fatalf("flush latency %d too small", lat)
	}
	// Reload goes to memory again.
	if lat := h.Load(0, 0x5000, 0x1); lat < 120 {
		t.Fatalf("post-flush load latency = %d, want a memory access", lat)
	}
}

func TestHierarchyFlushCleanLineNoWriteback(t *testing.T) {
	h, mem := testHierarchy(t, false)
	h.Load(0, 0x6000, 0x1)
	h.Flush(0, 0x6000)
	if len(mem.writes) != 0 {
		t.Fatalf("clean flush wrote back %d times, want 0", len(mem.writes))
	}
}

func TestHierarchyEvictionSetProperties(t *testing.T) {
	h, _ := testHierarchy(t, false)
	target := uint64(0x123456780)
	set := h.EvictionSet(target, 16)
	if len(set) != 16 {
		t.Fatalf("eviction set size = %d, want 16", len(set))
	}
	wantSet := h.LLC().SetIndex(target)
	seen := map[uint64]bool{target: true}
	for _, a := range set {
		if got := h.LLC().SetIndex(a); got != wantSet {
			t.Fatalf("eviction addr %#x maps to set %d, want %d", a, got, wantSet)
		}
		if seen[a] {
			t.Fatalf("duplicate eviction addr %#x", a)
		}
		seen[a] = true
	}
}

func TestHierarchyEvictionSetDisplacesTarget(t *testing.T) {
	h, _ := testHierarchy(t, false)
	// Wire inclusive back-invalidation as the machine does.
	h.LLC().SetEvictHook(func(addr uint64) {
		h.L1().Invalidate(addr)
		h.L2().Invalidate(addr)
	})
	target := uint64(0x7654000)
	h.Load(0, target, 0x1)
	for _, a := range h.EvictionSet(target, h.LLC().Config().Ways) {
		h.Load(0, a, 0x2)
	}
	if h.LLC().Contains(target) {
		t.Fatal("target still in LLC after loading a full eviction set")
	}
	if h.L1().Contains(target) {
		t.Fatal("target still in L1: back-invalidation failed")
	}
}

func TestHierarchySharedLLC(t *testing.T) {
	mem := &fixedMem{latency: 120}
	cfg := DefaultHierarchyConfig(8<<20, 16, 50)
	cfg.EnablePrefetchers = false
	llc, err := New(cfg.LLC, mem)
	if err != nil {
		t.Fatal(err)
	}
	h1, err := NewHierarchySharedLLC(cfg, llc, mem)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := NewHierarchySharedLLC(cfg, llc, mem)
	if err != nil {
		t.Fatal(err)
	}
	h1.Load(0, 0x9000, 0x1)
	// Core 2 misses its private levels but hits the shared LLC.
	lat := h2.Load(0, 0x9000, 0x1)
	want := int64(4 + 16 + 50)
	if lat != want {
		t.Fatalf("cross-core load latency = %d, want %d (shared LLC hit)", lat, want)
	}
}

func TestHierarchyLoadUncachedBypasses(t *testing.T) {
	h, mem := testHierarchy(t, false)
	h.LoadUncached(0, 0xa000)
	if h.L1().Contains(0xa000) || h.LLC().Contains(0xa000) {
		t.Fatal("uncached load polluted the caches")
	}
	if len(mem.accesses) != 1 {
		t.Fatalf("memory accesses = %d, want 1", len(mem.accesses))
	}
}

func TestIPStridePrefetcher(t *testing.T) {
	p := NewIPStridePrefetcher(8)
	pc := uint64(0x400)
	var got uint64
	var fired bool
	for i := 0; i < 4; i++ {
		got, fired = p.Observe(pc, uint64(0x1000+i*64))
	}
	if !fired {
		t.Fatal("confident stride did not prefetch")
	}
	if want := uint64(0x1000 + 4*64); got != want {
		t.Fatalf("prefetch addr = %#x, want %#x", got, want)
	}
	// A stride change resets confidence.
	if _, fired = p.Observe(pc, 0x9000); fired {
		t.Fatal("prefetched immediately after stride break")
	}
}

func TestStreamerPrefetcher(t *testing.T) {
	p := NewStreamerPrefetcher(4, 2)
	p.Observe(0x2000)
	out := p.Observe(0x2040)
	if len(out) != 2 {
		t.Fatalf("streamer issued %d prefetches, want 2", len(out))
	}
	if out[0] != 0x2080 || out[1] != 0x20c0 {
		t.Fatalf("streamer prefetched %#x %#x, want 0x2080 0x20c0", out[0], out[1])
	}
	// Non-sequential access: no prefetch.
	if out := p.Observe(0x2400); out != nil {
		t.Fatalf("non-sequential access prefetched %v", out)
	}
}

func TestHierarchyPrefetcherFillsNextLine(t *testing.T) {
	h, _ := testHierarchy(t, true)
	pc := uint64(0x500)
	for i := 0; i < 4; i++ {
		h.Load(0, uint64(0x10000+i*64), pc)
	}
	// After a confident stride, the next line should have been prefetched.
	if lat := h.Load(0, 0x10000+4*64, pc); lat != 4 {
		t.Fatalf("prefetched line load latency = %d, want 4 (L1 hit)", lat)
	}
}

// Package cache models the processor-side cache hierarchy that main-memory
// timing attacks must bypass: set-associative caches with LRU and SRRIP
// replacement, clflush semantics, eviction-set construction, and the
// IP-stride and streamer prefetchers the paper simulates as noise sources.
package cache

import (
	"fmt"

	"repro/internal/stats"
)

// Level is anything that can serve a memory access: another cache or the
// memory backend. Access returns the end-to-end latency of serving addr
// starting at cycle now.
type Level interface {
	Access(now int64, addr uint64, write bool) int64
}

// ReplacementPolicy selects the victim-selection algorithm.
type ReplacementPolicy int

const (
	// PolicyLRU evicts the least recently used way.
	PolicyLRU ReplacementPolicy = iota + 1
	// PolicySRRIP implements static re-reference interval prediction
	// (the paper's L2/L3 policy, Jaleel et al.).
	PolicySRRIP
)

// String implements fmt.Stringer.
func (p ReplacementPolicy) String() string {
	switch p {
	case PolicyLRU:
		return "lru"
	case PolicySRRIP:
		return "srrip"
	default:
		return "unknown"
	}
}

const srripMax = 3 // 2-bit RRPV

// Fixed counter IDs for the per-level statistics, in the slot order passed
// to stats.NewFixed below. The hot path increments these by index; the
// string names remain visible through the Counters export API.
const (
	CounterHit stats.CounterID = iota
	CounterMiss
	CounterWriteback
)

func newCounters() *stats.Counters {
	return stats.NewFixed("hit", "miss", "writeback")
}

type line struct {
	tag uint64
	// lastUse orders LRU; rrpv drives SRRIP.
	lastUse int64
	// epoch stamps the Cache.epoch the line was filled in. A line is valid
	// iff its epoch equals the cache's current epoch, so Reset invalidates
	// every line by bumping one counter instead of clearing megabytes of
	// line metadata. The zero epoch is never current (caches start at 1),
	// which keeps `line{}` meaning "invalid" for Invalidate/FlushAll.
	epoch uint32
	dirty bool
	rrpv  uint8
}

// Config describes one cache level.
type Config struct {
	Name      string
	SizeBytes int
	Ways      int
	LineBytes int
	// Latency is the lookup latency in cycles (hit cost, and the tag
	// probe cost paid on the way to a miss).
	Latency int64
	Policy  ReplacementPolicy
}

// Cache is one set-associative cache level.
type Cache struct {
	cfg      Config
	sets     int
	lineBits uint
	// setShift is log2(sets) and tagShift is lineBits+setShift, both fixed
	// at construction so tag extraction and writeback-address
	// reconstruction are single shifts instead of per-access loops.
	setShift uint
	tagShift uint
	setMask  uint64
	// direct marks a direct-mapped (1-way) geometry, whose miss path can
	// skip victim selection (the probe is already a single tag compare).
	direct   bool
	lines    [][]line
	next     Level
	counters *stats.Counters
	tick     int64  // logical use counter for LRU ordering
	epoch    uint32 // current validity epoch; lines match it or are invalid
	onEvict  func(addr uint64)
}

// New builds a cache level backed by next. Geometry must be power-of-two.
func New(cfg Config, next Level) (*Cache, error) {
	if cfg.LineBytes <= 0 || cfg.LineBytes&(cfg.LineBytes-1) != 0 {
		return nil, fmt.Errorf("cache %s: line size %d not a power of two", cfg.Name, cfg.LineBytes)
	}
	if cfg.Ways <= 0 {
		return nil, fmt.Errorf("cache %s: non-positive ways %d", cfg.Name, cfg.Ways)
	}
	numLines := cfg.SizeBytes / cfg.LineBytes
	if numLines <= 0 || numLines%cfg.Ways != 0 {
		return nil, fmt.Errorf("cache %s: %d lines not divisible by %d ways", cfg.Name, numLines, cfg.Ways)
	}
	sets := numLines / cfg.Ways
	if sets&(sets-1) != 0 {
		return nil, fmt.Errorf("cache %s: set count %d not a power of two", cfg.Name, sets)
	}
	var lineBits uint
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		lineBits++
	}
	lines := make([][]line, sets)
	for i := range lines {
		lines[i] = make([]line, cfg.Ways)
	}
	setShift := uint(setBits(sets))
	return &Cache{
		cfg:      cfg,
		sets:     sets,
		lineBits: lineBits,
		setShift: setShift,
		tagShift: lineBits + setShift,
		setMask:  uint64(sets - 1),
		direct:   cfg.Ways == 1,
		lines:    lines,
		next:     next,
		counters: newCounters(),
		epoch:    1,
	}, nil
}

// Config returns the level's configuration.
func (c *Cache) Config() Config { return c.cfg }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// LineBits returns log2 of the line size.
func (c *Cache) LineBits() uint { return c.lineBits }

// Counters exposes hit/miss/writeback statistics.
func (c *Cache) Counters() *stats.Counters { return c.counters }

// SetIndex returns the set an address maps to.
//
//impact:hotpath
func (c *Cache) SetIndex(addr uint64) int {
	return int((addr >> c.lineBits) & c.setMask)
}

//impact:hotpath
func (c *Cache) tagOf(addr uint64) uint64 {
	return addr >> c.tagShift
}

func setBits(sets int) int {
	b := 0
	for s := sets; s > 1; s >>= 1 {
		b++
	}
	return b
}

// Access serves a load or store, returning its latency.
//
//impact:hotpath
func (c *Cache) Access(now int64, addr uint64, write bool) int64 {
	c.tick++
	set := c.SetIndex(addr)
	tag := c.tagOf(addr)
	ways := c.lines[set]
	for i := range ways {
		if ways[i].epoch == c.epoch && ways[i].tag == tag {
			c.counters.Add(CounterHit, 1)
			c.touch(&ways[i])
			if write {
				ways[i].dirty = true
			}
			return c.cfg.Latency
		}
	}
	c.counters.Add(CounterMiss, 1)
	// Miss: probe cost, fill from next level, insert.
	fill := c.next.Access(now+c.cfg.Latency, addr, false)
	// Direct-mapped fast path: the probe above was a single compare, and
	// the victim is always way 0 — skip victim selection entirely.
	victim := 0
	if !c.direct {
		victim = c.selectVictim(ways)
	}
	if ways[victim].epoch == c.epoch {
		wbAddr := c.reconstruct(ways[victim].tag, set)
		if ways[victim].dirty {
			c.counters.Add(CounterWriteback, 1)
			// Writebacks happen off the critical path but still disturb
			// DRAM state; model the access without charging the requester.
			c.next.Access(now+c.cfg.Latency, wbAddr, true)
		}
		if c.onEvict != nil {
			// Inclusive-hierarchy back-invalidation: dropping a line
			// from this level removes it from the levels above, which
			// is what makes eviction-set attacks on the LLC work.
			c.onEvict(wbAddr)
		}
	}
	ways[victim] = line{tag: tag, epoch: c.epoch, dirty: write, lastUse: c.tick, rrpv: srripMax - 1}
	return c.cfg.Latency + fill
}

// touch updates replacement metadata on a hit.
//
//impact:hotpath
func (c *Cache) touch(l *line) {
	l.lastUse = c.tick
	l.rrpv = 0
}

// selectVictim picks the way to evict in a full set.
//
//impact:hotpath
func (c *Cache) selectVictim(ways []line) int {
	for i := range ways {
		if ways[i].epoch != c.epoch {
			return i
		}
	}
	switch c.cfg.Policy {
	case PolicySRRIP:
		for {
			for i := range ways {
				if ways[i].rrpv >= srripMax {
					return i
				}
			}
			for i := range ways {
				ways[i].rrpv++
			}
		}
	default: // LRU
		victim := 0
		for i := 1; i < len(ways); i++ {
			if ways[i].lastUse < ways[victim].lastUse {
				victim = i
			}
		}
		return victim
	}
}

// reconstruct rebuilds a line-aligned address from tag and set.
//
//impact:hotpath
func (c *Cache) reconstruct(tag uint64, set int) uint64 {
	return (tag<<c.setShift | uint64(set)) << c.lineBits
}

// SetEvictHook installs a callback invoked with the address of every line
// this cache evicts, enabling inclusive back-invalidation of upper levels.
func (c *Cache) SetEvictHook(hook func(addr uint64)) {
	c.onEvict = hook
}

// Contains reports whether addr is currently cached at this level.
func (c *Cache) Contains(addr uint64) bool {
	set := c.SetIndex(addr)
	tag := c.tagOf(addr)
	for _, l := range c.lines[set] {
		if l.epoch == c.epoch && l.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate drops addr from this level, returning whether it was present
// and whether the dropped line was dirty.
func (c *Cache) Invalidate(addr uint64) (present, dirty bool) {
	set := c.SetIndex(addr)
	tag := c.tagOf(addr)
	ways := c.lines[set]
	for i := range ways {
		if ways[i].epoch == c.epoch && ways[i].tag == tag {
			present, dirty = true, ways[i].dirty
			ways[i] = line{}
			return present, dirty
		}
	}
	return false, false
}

// FlushAll invalidates every line (used between experiments).
func (c *Cache) FlushAll() {
	for s := range c.lines {
		for w := range c.lines[s] {
			c.lines[s][w] = line{}
		}
	}
}

// Reset returns the cache to its just-constructed state in O(1): bumping
// the validity epoch invalidates every line without touching megabytes of
// line metadata (an 8 MiB LLC holds 128k lines), and the tick and counters
// restart from zero so a pooled machine replays accesses exactly like a
// fresh one. On the (4-billion-reset) epoch wraparound the lines really
// are cleared, so stale stamps can never alias back to validity.
func (c *Cache) Reset() {
	c.epoch++
	if c.epoch == 0 {
		c.FlushAll()
		c.epoch = 1
	}
	c.tick = 0
	c.counters.Reset()
}

// Reconfigure resets the cache under a new configuration, reusing the line
// arrays. Reuse requires the geometry — size, ways, line size — to be
// unchanged (latency, policy, and name may differ freely); Reconfigure
// reports whether it was possible and leaves the cache untouched when not.
func (c *Cache) Reconfigure(cfg Config) bool {
	if cfg.SizeBytes != c.cfg.SizeBytes || cfg.Ways != c.cfg.Ways || cfg.LineBytes != c.cfg.LineBytes {
		return false
	}
	c.cfg = cfg
	c.Reset()
	return true
}

package cache

// IPStridePrefetcher implements the classic instruction-pointer stride
// prefetcher (Fu et al., MICRO'92) the paper attaches to the L1D. It tracks
// the last address and stride per program counter and, once a stride is
// confirmed twice, prefetches the next line. In the IMPACT threat model its
// job is to be a noise source: prefetches open DRAM rows the attacker did
// not ask for.
type IPStridePrefetcher struct {
	entries map[uint64]*strideEntry
	max     int
}

type strideEntry struct {
	lastAddr   uint64
	stride     int64
	confidence int
}

// NewIPStridePrefetcher returns a prefetcher with a bounded table.
func NewIPStridePrefetcher(maxEntries int) *IPStridePrefetcher {
	return &IPStridePrefetcher{entries: make(map[uint64]*strideEntry, maxEntries), max: maxEntries}
}

// Observe records a demand access and returns a prefetch address if the
// stride is confident.
func (p *IPStridePrefetcher) Observe(pc, addr uint64) (uint64, bool) {
	e, ok := p.entries[pc]
	if !ok {
		if len(p.entries) >= p.max {
			// Simple capacity management: drop the table. Real designs
			// use per-set replacement; the noise behaviour is equivalent.
			p.entries = make(map[uint64]*strideEntry, p.max)
		}
		p.entries[pc] = &strideEntry{lastAddr: addr}
		return 0, false
	}
	stride := int64(addr) - int64(e.lastAddr)
	if stride == e.stride && stride != 0 {
		if e.confidence < 3 {
			e.confidence++
		}
	} else {
		e.stride = stride
		e.confidence = 0
	}
	e.lastAddr = addr
	if e.confidence >= 2 {
		return uint64(int64(addr) + e.stride), true
	}
	return 0, false
}

// Reset empties the stride table, returning the prefetcher to its
// just-constructed state (table capacity is retained; no lookup depends on
// map iteration order, so reuse is behaviorally identical to a fresh table).
func (p *IPStridePrefetcher) Reset() {
	clear(p.entries)
}

// StreamerPrefetcher implements a simple next-line stream prefetcher
// (Chen & Baer) attached to the L2 in Table 2: when consecutive accesses
// walk forward within a page, it prefetches the next degree lines.
type StreamerPrefetcher struct {
	streams map[uint64]uint64 // page -> last line offset
	max     int
	degree  int
}

// NewStreamerPrefetcher returns a streamer with the given table size and
// prefetch degree.
func NewStreamerPrefetcher(maxStreams, degree int) *StreamerPrefetcher {
	return &StreamerPrefetcher{streams: make(map[uint64]uint64, maxStreams), max: maxStreams, degree: degree}
}

// Observe records a demand access and returns prefetch addresses, if any.
func (p *StreamerPrefetcher) Observe(addr uint64) []uint64 {
	const pageBits = 12
	const lineBits = 6
	page := addr >> pageBits
	lineOff := (addr >> lineBits) & ((1 << (pageBits - lineBits)) - 1)
	last, ok := p.streams[page]
	if len(p.streams) >= p.max && !ok {
		p.streams = make(map[uint64]uint64, p.max)
	}
	p.streams[page] = lineOff
	if !ok || lineOff != last+1 {
		return nil
	}
	out := make([]uint64, 0, p.degree)
	for i := 1; i <= p.degree; i++ {
		next := lineOff + uint64(i)
		if next >= 1<<(pageBits-lineBits) {
			break
		}
		out = append(out, (page<<pageBits)|(next<<lineBits))
	}
	return out
}

// Reset empties the stream table, returning the streamer to its
// just-constructed state.
func (p *StreamerPrefetcher) Reset() {
	clear(p.streams)
}

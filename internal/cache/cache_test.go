package cache

import (
	"testing"
)

// fixedMem is a test backend with a constant latency that records accesses.
type fixedMem struct {
	latency  int64
	accesses []uint64
	writes   []uint64
}

var _ Level = (*fixedMem)(nil)

func (m *fixedMem) Access(_ int64, addr uint64, write bool) int64 {
	if write {
		m.writes = append(m.writes, addr)
	} else {
		m.accesses = append(m.accesses, addr)
	}
	return m.latency
}

func smallCache(t *testing.T, policy ReplacementPolicy, next Level) *Cache {
	t.Helper()
	c, err := New(Config{
		Name: "test", SizeBytes: 4096, Ways: 4, LineBytes: 64, Latency: 10, Policy: policy,
	}, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheGeometryValidation(t *testing.T) {
	next := &fixedMem{latency: 100}
	bad := []Config{
		{Name: "badline", SizeBytes: 4096, Ways: 4, LineBytes: 48, Latency: 1},
		{Name: "badways", SizeBytes: 4096, Ways: 0, LineBytes: 64, Latency: 1},
		{Name: "badsets", SizeBytes: 4096 + 64, Ways: 4, LineBytes: 64, Latency: 1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, next); err == nil {
			t.Errorf("config %q accepted", cfg.Name)
		}
	}
}

func TestCacheMissThenHit(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	if lat := c.Access(0, 0x1000, false); lat != 110 {
		t.Fatalf("miss latency = %d, want 110 (lookup + fill)", lat)
	}
	if lat := c.Access(0, 0x1000, false); lat != 10 {
		t.Fatalf("hit latency = %d, want 10", lat)
	}
	if !c.Contains(0x1000) {
		t.Fatal("line not cached after fill")
	}
	if got := c.Counters().Get("hit"); got != 1 {
		t.Fatalf("hit counter = %d, want 1", got)
	}
}

func TestCacheSameLineDifferentOffsets(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	c.Access(0, 0x1000, false)
	if lat := c.Access(0, 0x1030, false); lat != 10 {
		t.Fatalf("same-line access latency = %d, want hit", lat)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next) // 16 sets, 4 ways
	stride := uint64(c.Sets()) << c.LineBits()
	// Fill one set with 4 distinct tags, then touch the first again so
	// the second becomes LRU, then insert a fifth.
	for i := uint64(0); i < 4; i++ {
		c.Access(0, i*stride, false)
	}
	c.Access(0, 0, false) // refresh tag 0
	c.Access(0, 4*stride, false)
	if c.Contains(1 * stride) {
		t.Fatal("LRU victim (tag 1) still present")
	}
	if !c.Contains(0) {
		t.Fatal("recently used tag 0 evicted")
	}
}

func TestCacheSRRIPEvictsNonReused(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicySRRIP, next)
	stride := uint64(c.Sets()) << c.LineBits()
	for i := uint64(0); i < 4; i++ {
		c.Access(0, i*stride, false)
	}
	// Promote tag 0 to RRPV 0; a new insertion must not victimize it.
	c.Access(0, 0, false)
	c.Access(0, 4*stride, false)
	if !c.Contains(0) {
		t.Fatal("SRRIP evicted the re-referenced line")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	stride := uint64(c.Sets()) << c.LineBits()
	c.Access(0, 0, true) // dirty line
	for i := uint64(1); i <= 4; i++ {
		c.Access(0, i*stride, false)
	}
	if len(next.writes) != 1 {
		t.Fatalf("writebacks = %d, want 1", len(next.writes))
	}
	if got := c.Counters().Get("writeback"); got != 1 {
		t.Fatalf("writeback counter = %d, want 1", got)
	}
}

func TestCacheInvalidate(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	c.Access(0, 0x2000, true)
	present, dirty := c.Invalidate(0x2000)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(0x2000) {
		t.Fatal("line still present after Invalidate")
	}
	present, _ = c.Invalidate(0x2000)
	if present {
		t.Fatal("second Invalidate reported present")
	}
}

func TestCacheEvictHook(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	var evicted []uint64
	c.SetEvictHook(func(addr uint64) { evicted = append(evicted, addr) })
	stride := uint64(c.Sets()) << c.LineBits()
	for i := uint64(0); i <= 4; i++ {
		c.Access(0, i*stride, false)
	}
	if len(evicted) != 1 {
		t.Fatalf("evict hook fired %d times, want 1", len(evicted))
	}
	if evicted[0] != 0 {
		t.Fatalf("evicted address = %#x, want 0 (the LRU line)", evicted[0])
	}
}

func TestCacheFlushAll(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	c.Access(0, 0x3000, false)
	c.FlushAll()
	if c.Contains(0x3000) {
		t.Fatal("line survived FlushAll")
	}
}

// TestReconstructRoundTrip is the regression test for the precomputed
// set/tag shift constants: a writeback address rebuilt from (tag, set) must
// be the line-aligned original and must map back to the same set and tag.
func TestReconstructRoundTrip(t *testing.T) {
	geoms := []Config{
		{Name: "l1", SizeBytes: 32 << 10, Ways: 8, LineBytes: 64, Latency: 4, Policy: PolicyLRU},
		{Name: "direct", SizeBytes: 16 << 10, Ways: 1, LineBytes: 64, Latency: 4, Policy: PolicyLRU},
		{Name: "llc", SizeBytes: 8 << 20, Ways: 16, LineBytes: 64, Latency: 42, Policy: PolicySRRIP},
		{Name: "one-set", SizeBytes: 512, Ways: 8, LineBytes: 64, Latency: 2, Policy: PolicyLRU},
		{Name: "bigline", SizeBytes: 64 << 10, Ways: 4, LineBytes: 256, Latency: 8, Policy: PolicyLRU},
	}
	addrs := []uint64{0, 0x40, 0x1000, 0xdeadbeef40, 1<<40 | 0x1234c0, ^uint64(0)}
	for _, cfg := range geoms {
		c, err := New(cfg, &fixedMem{latency: 100})
		if err != nil {
			t.Fatal(err)
		}
		for _, addr := range addrs {
			aligned := addr &^ (uint64(cfg.LineBytes) - 1)
			set := c.SetIndex(addr)
			tag := c.tagOf(addr)
			re := c.reconstruct(tag, set)
			if re != aligned {
				t.Errorf("%s: reconstruct(tagOf(%#x), SetIndex) = %#x, want %#x", cfg.Name, addr, re, aligned)
			}
			if got := c.SetIndex(re); got != set {
				t.Errorf("%s: SetIndex(reconstructed %#x) = %d, want %d", cfg.Name, re, got, set)
			}
			if got := c.tagOf(re); got != tag {
				t.Errorf("%s: tagOf(reconstructed %#x) = %#x, want %#x", cfg.Name, re, got, tag)
			}
		}
	}
}

// TestDirectMappedFastPath exercises the 1-way probe path: hit, conflict
// eviction with dirty writeback, and back-invalidation hook.
func TestDirectMappedFastPath(t *testing.T) {
	next := &fixedMem{latency: 100}
	c, err := New(Config{
		Name: "dm", SizeBytes: 4096, Ways: 1, LineBytes: 64, Latency: 10, Policy: PolicyLRU,
	}, next)
	if err != nil {
		t.Fatal(err)
	}
	var evicted []uint64
	c.SetEvictHook(func(addr uint64) { evicted = append(evicted, addr) })
	stride := uint64(c.Sets()) << c.LineBits()
	if lat := c.Access(0, 0, true); lat != 110 {
		t.Fatalf("cold miss latency = %d, want 110", lat)
	}
	if lat := c.Access(1, 0, false); lat != 10 {
		t.Fatalf("hit latency = %d, want 10", lat)
	}
	// Same set, different tag: must evict line 0 and write it back dirty.
	c.Access(2, stride, false)
	if c.Contains(0) || !c.Contains(stride) {
		t.Fatal("direct-mapped conflict did not replace the resident line")
	}
	if len(next.writes) != 1 || next.writes[0] != 0 {
		t.Fatalf("writebacks = %#v, want [0]", next.writes)
	}
	if len(evicted) != 1 || evicted[0] != 0 {
		t.Fatalf("evict hook = %#v, want [0]", evicted)
	}
	if hits := c.Counters().Value(CounterHit); hits != 1 {
		t.Fatalf("hit counter = %d, want 1", hits)
	}
	if misses := c.Counters().Value(CounterMiss); misses != 2 {
		t.Fatalf("miss counter = %d, want 2", misses)
	}
}

// TestAccessHitPathNoAllocs asserts the per-access fast path is
// allocation-free, for both set-associative and direct-mapped geometries.
func TestAccessHitPathNoAllocs(t *testing.T) {
	for _, ways := range []int{1, 8} {
		c, err := New(Config{
			Name: "hot", SizeBytes: 32 << 10, Ways: ways, LineBytes: 64, Latency: 4, Policy: PolicyLRU,
		}, &fixedMem{latency: 100})
		if err != nil {
			t.Fatal(err)
		}
		c.Access(0, 0x1000, false)
		now := int64(0)
		if avg := testing.AllocsPerRun(1000, func() {
			now++
			c.Access(now, 0x1000, false)
		}); avg != 0 {
			t.Errorf("ways=%d: hit path allocates %v allocs/op, want 0", ways, avg)
		}
	}
}

package cache

import (
	"testing"
)

// fixedMem is a test backend with a constant latency that records accesses.
type fixedMem struct {
	latency  int64
	accesses []uint64
	writes   []uint64
}

var _ Level = (*fixedMem)(nil)

func (m *fixedMem) Access(_ int64, addr uint64, write bool) int64 {
	if write {
		m.writes = append(m.writes, addr)
	} else {
		m.accesses = append(m.accesses, addr)
	}
	return m.latency
}

func smallCache(t *testing.T, policy ReplacementPolicy, next Level) *Cache {
	t.Helper()
	c, err := New(Config{
		Name: "test", SizeBytes: 4096, Ways: 4, LineBytes: 64, Latency: 10, Policy: policy,
	}, next)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCacheGeometryValidation(t *testing.T) {
	next := &fixedMem{latency: 100}
	bad := []Config{
		{Name: "badline", SizeBytes: 4096, Ways: 4, LineBytes: 48, Latency: 1},
		{Name: "badways", SizeBytes: 4096, Ways: 0, LineBytes: 64, Latency: 1},
		{Name: "badsets", SizeBytes: 4096 + 64, Ways: 4, LineBytes: 64, Latency: 1},
	}
	for _, cfg := range bad {
		if _, err := New(cfg, next); err == nil {
			t.Errorf("config %q accepted", cfg.Name)
		}
	}
}

func TestCacheMissThenHit(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	if lat := c.Access(0, 0x1000, false); lat != 110 {
		t.Fatalf("miss latency = %d, want 110 (lookup + fill)", lat)
	}
	if lat := c.Access(0, 0x1000, false); lat != 10 {
		t.Fatalf("hit latency = %d, want 10", lat)
	}
	if !c.Contains(0x1000) {
		t.Fatal("line not cached after fill")
	}
	if got := c.Counters().Get("hit"); got != 1 {
		t.Fatalf("hit counter = %d, want 1", got)
	}
}

func TestCacheSameLineDifferentOffsets(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	c.Access(0, 0x1000, false)
	if lat := c.Access(0, 0x1030, false); lat != 10 {
		t.Fatalf("same-line access latency = %d, want hit", lat)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next) // 16 sets, 4 ways
	stride := uint64(c.Sets()) << c.LineBits()
	// Fill one set with 4 distinct tags, then touch the first again so
	// the second becomes LRU, then insert a fifth.
	for i := uint64(0); i < 4; i++ {
		c.Access(0, i*stride, false)
	}
	c.Access(0, 0, false) // refresh tag 0
	c.Access(0, 4*stride, false)
	if c.Contains(1 * stride) {
		t.Fatal("LRU victim (tag 1) still present")
	}
	if !c.Contains(0) {
		t.Fatal("recently used tag 0 evicted")
	}
}

func TestCacheSRRIPEvictsNonReused(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicySRRIP, next)
	stride := uint64(c.Sets()) << c.LineBits()
	for i := uint64(0); i < 4; i++ {
		c.Access(0, i*stride, false)
	}
	// Promote tag 0 to RRPV 0; a new insertion must not victimize it.
	c.Access(0, 0, false)
	c.Access(0, 4*stride, false)
	if !c.Contains(0) {
		t.Fatal("SRRIP evicted the re-referenced line")
	}
}

func TestCacheWritebackOnDirtyEviction(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	stride := uint64(c.Sets()) << c.LineBits()
	c.Access(0, 0, true) // dirty line
	for i := uint64(1); i <= 4; i++ {
		c.Access(0, i*stride, false)
	}
	if len(next.writes) != 1 {
		t.Fatalf("writebacks = %d, want 1", len(next.writes))
	}
	if got := c.Counters().Get("writeback"); got != 1 {
		t.Fatalf("writeback counter = %d, want 1", got)
	}
}

func TestCacheInvalidate(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	c.Access(0, 0x2000, true)
	present, dirty := c.Invalidate(0x2000)
	if !present || !dirty {
		t.Fatalf("Invalidate = (%v,%v), want (true,true)", present, dirty)
	}
	if c.Contains(0x2000) {
		t.Fatal("line still present after Invalidate")
	}
	present, _ = c.Invalidate(0x2000)
	if present {
		t.Fatal("second Invalidate reported present")
	}
}

func TestCacheEvictHook(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	var evicted []uint64
	c.SetEvictHook(func(addr uint64) { evicted = append(evicted, addr) })
	stride := uint64(c.Sets()) << c.LineBits()
	for i := uint64(0); i <= 4; i++ {
		c.Access(0, i*stride, false)
	}
	if len(evicted) != 1 {
		t.Fatalf("evict hook fired %d times, want 1", len(evicted))
	}
	if evicted[0] != 0 {
		t.Fatalf("evicted address = %#x, want 0 (the LRU line)", evicted[0])
	}
}

func TestCacheFlushAll(t *testing.T) {
	next := &fixedMem{latency: 100}
	c := smallCache(t, PolicyLRU, next)
	c.Access(0, 0x3000, false)
	c.FlushAll()
	if c.Contains(0x3000) {
		t.Fatal("line survived FlushAll")
	}
}

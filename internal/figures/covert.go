package figures

import (
	"fmt"

	"repro/internal/cacti"
	"repro/internal/core"
	"repro/internal/sim"
)

// newMachine builds a default machine with the given LLC geometry.
func newMachine(llcBytes, llcWays int) (*sim.Machine, error) {
	cfg := sim.DefaultConfig()
	cfg.LLCBytes = llcBytes
	cfg.LLCWays = llcWays
	return sim.New(cfg)
}

// RowBufferGap reproduces the Section 3.1 microbenchmark: the latency
// difference between a row-buffer conflict and a hit, which the paper
// reports as 74 CPU cycles at 2.6 GHz.
func RowBufferGap(Scale) (Report, error) {
	m, err := newMachine(8<<20, 16)
	if err != nil {
		return Report{}, err
	}
	c := m.Core(0)
	// Warm translations so the microbenchmark isolates DRAM timing, then
	// open a row, measure a hit, and measure a conflict far enough from
	// the activation that no tRAS stall inflates it.
	c.TranslateTouch(m.AddrFor(0, 10, 0))
	c.TranslateTouch(m.AddrFor(0, 20, 0))
	c.LoadUncached(m.AddrFor(0, 10, 0))
	hit := c.LoadUncached(m.AddrFor(0, 10, 64))
	c.Advance(500)
	conflict := c.LoadUncached(m.AddrFor(0, 20, 0))
	gap := conflict - hit
	return Report{
		ID:    "§3.1",
		Title: "Row buffer conflict vs. hit latency gap",
		Rows: []Row{
			{Label: "conflict - hit", Paper: "74 cyc", Measured: fmtCycles(gap)},
			{Label: "hit latency", Paper: "-", Measured: fmtCycles(hit)},
			{Label: "conflict latency", Paper: "-", Measured: fmtCycles(conflict)},
		},
	}, nil
}

// Table1 reproduces the attack-primitive property matrix.
func Table1(Scale) (Report, error) {
	m, err := newMachine(8<<20, 16)
	if err != nil {
		return Report{}, err
	}
	rep := Report{ID: "Table 1", Title: "Efficiency and effectiveness of attack primitives"}
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	for _, p := range core.Table1(m) {
		isa := mark(p.ISAGuaranteed)
		if p.NotApplicable {
			isa = "n/a"
		}
		rep.Rows = append(rep.Rows, Row{
			Label: p.Primitive.String(),
			Paper: "see Table 1",
			Measured: fmt.Sprintf("noLookup=%s noExtraMem=%s detectable=%s isa=%s latency=%d",
				mark(p.NoCacheLookup), mark(p.NoExcessiveMemAccesses), mark(p.TimingDetectable), isa, p.MeasuredLatency),
		})
	}
	return rep, nil
}

// Table2 dumps the simulated system configuration next to the paper's.
func Table2(Scale) (Report, error) {
	cfg := sim.DefaultConfig()
	t := cfg.DRAM.Timing
	return Report{
		ID:    "Table 2",
		Title: "Simulated system configuration",
		Rows: []Row{
			{Label: "CPU", Paper: "4-core OoO x86, 2.6 GHz", Measured: fmt.Sprintf("%d cores @ %.1f GHz", cfg.Cores, sim.FrequencyHz/1e9)},
			{Label: "L1D", Paper: "32 KB 8-way 4-cycle", Measured: "32 KB 8-way 4-cycle LRU + IP-stride"},
			{Label: "L2", Paper: "2 MB 16-way 16-cycle SRRIP", Measured: "2 MB 16-way 16-cycle SRRIP + streamer"},
			{Label: "LLC", Paper: "2 MB/core 16-way 50-cycle SRRIP", Measured: fmt.Sprintf("%d MB %d-way SRRIP (CACTI-fitted latency)", cfg.LLCBytes>>20, cfg.LLCWays)},
			{Label: "DRAM", Paper: "DDR4-2400, 16 banks, 4 groups, 8 KB rows", Measured: fmt.Sprintf("%d banks, %d groups, %d B rows", cfg.DRAM.TotalBanks(), cfg.DRAM.BankGroups, cfg.DRAM.RowBytes)},
			{Label: "tRCD/tRP/tCAS", Paper: "13.5 ns each", Measured: fmt.Sprintf("%d/%d/%d cyc (= 13.5 ns at 2.6 GHz)", t.TRCD, t.TRP, t.TCAS)},
			{Label: "Row policy", Paper: "open, 100 ns timeout", Measured: "open, no timeout (see DESIGN.md reconciliation)"},
			{Label: "PEI overhead", Paper: "3 cycles", Measured: fmt.Sprintf("%d cycles", cfg.PEICosts.PEIOverhead)},
		},
	}, nil
}

// Fig2 reproduces the LLC-size sweep of Section 3.3: direct-access attack
// throughput (flat, ~11.27 Mb/s) vs. the eviction-based baseline (falling),
// plus the eviction latency curve.
func Fig2(scale Scale) (Report, error) {
	rep := Report{ID: "Figure 2", Title: "Impact of LLC size on covert-channel throughput and eviction latency"}
	msg := core.RandomMessage(scale.Bits(), 2)
	sizes := []int{4, 8, 16, 32, 64, 128}
	if scale == ScaleQuick {
		sizes = []int{4, 16, 128}
	}
	for _, mb := range sizes {
		m, err := newMachine(mb<<20, 16)
		if err != nil {
			return Report{}, err
		}
		direct, err := core.RunDirect(m, msg, core.Options{})
		if err != nil {
			return Report{}, err
		}
		m2, err := newMachine(mb<<20, 16)
		if err != nil {
			return Report{}, err
		}
		baseline, err := core.RunDRAMAEviction(m2, msg, core.Options{})
		if err != nil {
			return Report{}, err
		}
		evLat := cacti.EvictionLatency(float64(mb), 16, 104, sim.DefaultSoftCosts().EvictionMLP)
		paper := "direct 11.27 flat; baseline <=2.29 falling"
		rep.Rows = append(rep.Rows, Row{
			Label: fmt.Sprintf("LLC %3d MB", mb),
			Paper: paper,
			Measured: fmt.Sprintf("direct %s, baseline %s, eviction %s",
				fmtMbps(direct.ThroughputMbps), fmtMbps(baseline.ThroughputMbps), fmtCycles(evLat)),
		})
	}
	return rep, nil
}

// Fig3 reproduces the LLC-associativity sweep of Section 3.3.
func Fig3(scale Scale) (Report, error) {
	rep := Report{ID: "Figure 3", Title: "Impact of LLC associativity on covert-channel throughput and eviction latency"}
	msg := core.RandomMessage(scale.Bits(), 3)
	ways := []int{2, 4, 8, 16, 32, 64, 128}
	if scale == ScaleQuick {
		ways = []int{2, 16, 128}
	}
	for _, w := range ways {
		m, err := newMachine(16<<20, w)
		if err != nil {
			return Report{}, err
		}
		direct, err := core.RunDirect(m, msg, core.Options{})
		if err != nil {
			return Report{}, err
		}
		m2, err := newMachine(16<<20, w)
		if err != nil {
			return Report{}, err
		}
		baseline, err := core.RunDRAMAEviction(m2, msg, core.Options{})
		if err != nil {
			return Report{}, err
		}
		evLat := cacti.EvictionLatency(16, w, 104, sim.DefaultSoftCosts().EvictionMLP)
		rep.Rows = append(rep.Rows, Row{
			Label: fmt.Sprintf("%3d ways", w),
			Paper: "direct flat; baseline falls with ways",
			Measured: fmt.Sprintf("direct %s, baseline %s, eviction %s",
				fmtMbps(direct.ThroughputMbps), fmtMbps(baseline.ThroughputMbps), fmtCycles(evLat)),
		})
	}
	return rep, nil
}

// Fig8 reproduces the proof-of-concept: a 16-bit message over 16 banks with
// the receiver's measured latencies, decoded with the 150-cycle threshold.
func Fig8(Scale) (Report, error) {
	msg := []bool{true, true, true, false, false, true, false, false, true, true, true, false, false, true, false, false}
	rep := Report{ID: "Figure 8", Title: "PoC: receiver latency per bank decoding a 16-bit message (threshold 150)"}

	m, err := newMachine(8<<20, 16)
	if err != nil {
		return Report{}, err
	}
	pnm, err := core.RunPnM(m, msg, core.Options{RecordLatencies: true})
	if err != nil {
		return Report{}, err
	}
	m2, err := newMachine(8<<20, 16)
	if err != nil {
		return Report{}, err
	}
	pumMsg := []bool{false, false, false, true, true, false, true, true, false, false, false, true, true, false, true, true}
	pum, err := core.RunPuM(m2, pumMsg, core.Options{RecordLatencies: true})
	if err != nil {
		return Report{}, err
	}

	band := func(lats []int64, bits []bool, want bool) (int64, int64) {
		lo, hi := int64(1<<62), int64(0)
		for i, l := range lats {
			if bits[i] != want {
				continue
			}
			if l < lo {
				lo = l
			}
			if l > hi {
				hi = l
			}
		}
		if hi == 0 {
			return 0, 0
		}
		return lo, hi
	}
	p0lo, p0hi := band(pnm.Latencies, msg, false)
	p1lo, p1hi := band(pnm.Latencies, msg, true)
	u0lo, u0hi := band(pum.Latencies, pumMsg, false)
	u1lo, u1hi := band(pum.Latencies, pumMsg, true)
	rep.Rows = []Row{
		{Label: "PnM logic-0 latency band", Paper: "~70-100 cyc", Measured: fmt.Sprintf("%d-%d cyc", p0lo, p0hi)},
		{Label: "PnM logic-1 latency band", Paper: "~170-240 cyc", Measured: fmt.Sprintf("%d-%d cyc", p1lo, p1hi)},
		{Label: "PnM decode errors", Paper: "0/16", Measured: fmt.Sprintf("%d/16", pnm.Bits-pnm.Correct)},
		{Label: "PuM logic-0 latency band", Paper: "~70-100 cyc", Measured: fmt.Sprintf("%d-%d cyc", u0lo, u0hi)},
		{Label: "PuM logic-1 latency band", Paper: "~170-240 cyc", Measured: fmt.Sprintf("%d-%d cyc", u1lo, u1hi)},
		{Label: "PuM decode errors", Paper: "0/16", Measured: fmt.Sprintf("%d/16", pum.Bits-pum.Correct)},
	}
	return rep, nil
}

// Fig9 reproduces the headline throughput comparison across LLC sizes.
func Fig9(scale Scale) (Report, error) {
	rep := Report{ID: "Figure 9", Title: "Covert-channel leakage throughput vs. LLC size"}
	msg := core.RandomMessage(scale.Bits(), 4)
	type variant struct {
		name  string
		paper string
		run   func(*sim.Machine) (core.Result, error)
	}
	variants := []variant{
		{"IMPACT-PnM", "8.2 Mb/s flat", func(m *sim.Machine) (core.Result, error) { return core.RunPnM(m, msg, core.Options{}) }},
		{"IMPACT-PuM", "14.8 Mb/s flat", func(m *sim.Machine) (core.Result, error) { return core.RunPuM(m, msg, core.Options{}) }},
		{"DRAMA-clflush", "~2.3 Mb/s falling", func(m *sim.Machine) (core.Result, error) { return core.RunDRAMAClflush(m, msg, core.Options{}) }},
		{"DRAMA-eviction", "lowest, falling", func(m *sim.Machine) (core.Result, error) { return core.RunDRAMAEviction(m, msg, core.Options{}) }},
		{"DMA engine", "0.81 Mb/s flat", func(m *sim.Machine) (core.Result, error) { return core.RunDMA(m, msg, core.Options{}) }},
	}
	sizes := []int{1, 8, 128}
	if scale == ScaleFull {
		sizes = []int{1, 2, 4, 8, 16, 32, 64, 128}
	}
	for _, v := range variants {
		vals := make([]string, 0, len(sizes))
		for _, mb := range sizes {
			m, err := newMachine(mb<<20, 16)
			if err != nil {
				return Report{}, err
			}
			res, err := v.run(m)
			if err != nil {
				return Report{}, err
			}
			vals = append(vals, fmt.Sprintf("%dMB:%.2f", mb, res.ThroughputMbps))
		}
		rep.Rows = append(rep.Rows, Row{Label: v.name, Paper: v.paper, Measured: join(vals...)})
	}
	return rep, nil
}

// Fig10 reproduces the sender/receiver cycle breakdown of the two IMPACT
// channels.
func Fig10(scale Scale) (Report, error) {
	bits := scale.Bits()
	msg := core.RandomMessage(bits, 5)
	m, err := newMachine(8<<20, 16)
	if err != nil {
		return Report{}, err
	}
	pnm, err := core.RunPnM(m, msg, core.Options{})
	if err != nil {
		return Report{}, err
	}
	m2, err := newMachine(8<<20, 16)
	if err != nil {
		return Report{}, err
	}
	pum, err := core.RunPuM(m2, msg, core.Options{})
	if err != nil {
		return Report{}, err
	}
	batches := int64((bits + 15) / 16)
	ratio := float64(pnm.SenderCycles) / float64(pum.SenderCycles)
	return Report{
		ID:    "Figure 10",
		Title: "Per-batch sender/receiver time breakdown (16-bit batches)",
		Rows: []Row{
			{Label: "PnM sender / batch", Paper: "dominant", Measured: fmtCycles(pnm.SenderCycles / batches)},
			{Label: "PnM receiver / batch", Paper: "-", Measured: fmtCycles(pnm.ReceiverCycles / batches)},
			{Label: "PuM sender / batch", Paper: "11.1x less than PnM", Measured: fmtCycles(pum.SenderCycles / batches)},
			{Label: "PuM receiver / batch", Paper: "similar to PnM", Measured: fmtCycles(pum.ReceiverCycles / batches)},
			{Label: "sender ratio PnM/PuM", Paper: "11.1x", Measured: fmt.Sprintf("%.1fx", ratio)},
		},
	}, nil
}

package figures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dram"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

// Section84 reproduces the forward-looking analysis of Section 8.4: the
// behaviour of IMPACT on future DRAM devices — more banks (more covert
// parallelism) and RowHammer mitigations (RFM/PRAC) whose preventive-action
// stalls are visible to, and tolerable by, the receiver.
func Section84(scale Scale) (Report, error) {
	bits := scale.Bits()
	rep := Report{ID: "§8.4", Title: "Future DRAM devices: bank scaling and RowHammer mitigations"}

	// Bank scaling: PuM throughput with 16 vs. 64 banks per batch.
	runPuM := func(banks int) (core.Result, error) {
		cfg := sim.DefaultConfig()
		cfg.Noise.EventsPerMCycle = 0
		cfg.DRAM = cfg.DRAM.WithBanks(banks)
		m, err := sim.New(cfg)
		if err != nil {
			return core.Result{}, err
		}
		set := make([]int, banks)
		for i := range set {
			set[i] = i
		}
		if len(set) > 64 {
			set = set[:64]
		}
		return core.RunPuM(m, core.RandomMessage(bits, 21), core.Options{Banks: set})
	}
	narrow, err := runPuM(16)
	if err != nil {
		return Report{}, err
	}
	wide, err := runPuM(64)
	if err != nil {
		return Report{}, err
	}
	rep.Rows = append(rep.Rows,
		Row{Label: "PuM over 16 banks", Paper: "baseline", Measured: fmtMbps(narrow.ThroughputMbps)},
		Row{Label: "PuM over 64 banks", Paper: "throughput grows with banks", Measured: fmtMbps(wide.ThroughputMbps)},
	)

	// RowHammer mitigations: RFM-style preventive actions under the PnM
	// channel, with and without the receiver's stall filter, plus the
	// coding layer.
	runPnM := func(maint dram.Maintenance, opt core.Options) (core.Result, error) {
		cfg := sim.DefaultConfig()
		cfg.Noise.EventsPerMCycle = 0
		cfg.DRAM.Maintenance = maint
		m, err := sim.New(cfg)
		if err != nil {
			return core.Result{}, err
		}
		return core.RunPnM(m, core.RandomMessage(bits, 22), opt)
	}
	plain, err := runPnM(dram.Maintenance{}, core.Options{})
	if err != nil {
		return Report{}, err
	}
	rfm, err := runPnM(dram.DDR5RFM(), core.Options{})
	if err != nil {
		return Report{}, err
	}
	rfmFiltered, err := runPnM(dram.DDR5RFM(), core.Options{MaintenanceStall: dram.DDR5RFM().MitigationPenalty})
	if err != nil {
		return Report{}, err
	}
	refresh, err := runPnM(dram.DDR4Refresh(), core.Options{})
	if err != nil {
		return Report{}, err
	}
	rep.Rows = append(rep.Rows,
		Row{Label: "PnM, no maintenance", Paper: "8.2 Mb/s", Measured: fmt.Sprintf("%s, %s err", fmtMbps(plain.ThroughputMbps), fmtPct(plain.ErrorRate*100))},
		Row{Label: "PnM under RFM", Paper: "stalls filterable", Measured: fmt.Sprintf("%s, %s err", fmtMbps(rfm.ThroughputMbps), fmtPct(rfm.ErrorRate*100))},
		Row{Label: "PnM under RFM + filter", Paper: "-", Measured: fmt.Sprintf("%s, %s err", fmtMbps(rfmFiltered.ThroughputMbps), fmtPct(rfmFiltered.ErrorRate*100))},
		Row{Label: "PnM under DDR4 refresh", Paper: "-", Measured: fmt.Sprintf("%s, %s err", fmtMbps(refresh.ThroughputMbps), fmtPct(refresh.ErrorRate*100))},
	)
	rep.Notes = append(rep.Notes,
		"RFM preventive actions land on activations (logic-1 probes), so the PnM decode tolerates them; refresh adds ~4.5% duty-cycle stalls")
	return rep, nil
}

// AdaptiveAttacker reproduces the Section 7.4 observation that an attacker
// can transmit only while ACT serves default latency.
func AdaptiveAttacker(scale Scale) (Report, error) {
	bits := scale.Bits()
	run := func(act memctrl.ACTConfig, adaptive bool) (core.Result, error) {
		mem := memctrl.DefaultConfig()
		mem.Defense = memctrl.DefenseAdaptive
		mem.ACT = act
		cfg := sim.DefaultConfig()
		cfg.Noise.EventsPerMCycle = 0
		cfg.Mem = mem
		m, err := sim.New(cfg)
		if err != nil {
			return core.Result{}, err
		}
		if adaptive {
			return core.RunPnMAdaptive(m, core.RandomMessage(bits, 23), core.Options{})
		}
		return core.RunPnM(m, core.RandomMessage(bits, 23), core.Options{})
	}
	rep := Report{ID: "§7.4-adaptive", Title: "Plain vs. adaptive attacker under ACT"}
	for _, tc := range []struct {
		name string
		act  memctrl.ACTConfig
	}{
		{"ACT-Mild", memctrl.ACTMild()},
		{"ACT-Aggressive", memctrl.ACTAggressive()},
	} {
		plain, err := run(tc.act, false)
		if err != nil {
			return Report{}, err
		}
		adaptive, err := run(tc.act, true)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, Row{
			Label: tc.name,
			Paper: "attacker transmits in default-latency epochs",
			Measured: fmt.Sprintf("plain %s eff (err %s) / adaptive %s eff (err %s)",
				fmtMbps(plain.EffectiveThroughputMbps), fmtPct(plain.ErrorRate*100),
				fmtMbps(adaptive.EffectiveThroughputMbps), fmtPct(adaptive.ErrorRate*100)),
		})
	}
	return rep, nil
}

// ReliableFraming demonstrates the FEC layer a practical attacker ships:
// raw vs. residual error and goodput on a noisy machine.
func ReliableFraming(scale Scale) (Report, error) {
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 250
	m, err := sim.New(cfg)
	if err != nil {
		return Report{}, err
	}
	data := core.RandomMessage(scale.Bits(), 24)
	res, err := core.RunReliable(m, data, core.Options{}, core.RunPnM)
	if err != nil {
		return Report{}, err
	}
	residual := float64(res.Coded.ResidualErrors) / float64(len(data))
	return Report{
		ID:    "framing",
		Title: "Hamming(7,4)+interleaving over IMPACT-PnM on a noisy system",
		Rows: []Row{
			{Label: "raw channel error", Paper: "-", Measured: fmtPct(res.Raw.ErrorRate * 100)},
			{Label: "residual error after coding", Paper: "-", Measured: fmtPct(residual * 100)},
			{Label: "corrections applied", Paper: "-", Measured: fmt.Sprintf("%d", res.Coded.Corrections)},
			{Label: "goodput", Paper: "-", Measured: fmtMbps(res.GoodputMbps)},
		},
	}, nil
}

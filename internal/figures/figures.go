// Package figures regenerates every table and figure of the paper's
// evaluation, printing the paper's reported values next to this
// reproduction's measured values. Each function corresponds to one artifact
// (see DESIGN.md's per-experiment index); All runs the complete set.
package figures

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	Label    string `json:"label"`
	Paper    string `json:"paper"`
	Measured string `json:"measured"`
}

// Report is one regenerated table or figure. The JSON form is served by
// cmd/impact-server and emitted by the -json CLI modes; encoding/json
// preserves field declaration order, so marshaling is deterministic.
type Report struct {
	ID    string   `json:"id"`
	Title string   `json:"title"`
	Rows  []Row    `json:"rows"`
	Notes []string `json:"notes,omitempty"`
}

// Render writes the report as an aligned text table.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Title)
	labelW, paperW := len("series"), len("paper")
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
		if len(row.Paper) > paperW {
			paperW = len(row.Paper)
		}
	}
	fmt.Fprintf(w, "%-*s  %*s  %s\n", labelW, "series", paperW, "paper", "measured")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-*s  %*s  %s\n", labelW, row.Label, paperW, row.Paper, row.Measured)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale selects how much work the harness performs.
type Scale int

const (
	// ScaleQuick shrinks message sizes and sweeps for CI-speed runs.
	ScaleQuick Scale = iota + 1
	// ScaleFull reproduces the experiments at full size.
	ScaleFull
)

// Bits returns the covert-channel message length for the scale.
func (s Scale) Bits() int {
	if s == ScaleFull {
		return 4096
	}
	return 512
}

// String implements fmt.Stringer; the forms round-trip through ParseScale.
func (s Scale) String() string {
	if s == ScaleFull {
		return "full"
	}
	return "quick"
}

// ParseScale maps the CLI/JSON scale names to a Scale. The empty string
// selects ScaleQuick so spec files may omit the field.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "", "quick":
		return ScaleQuick, nil
	case "full":
		return ScaleFull, nil
	default:
		return 0, fmt.Errorf(`figures: unknown scale %q (want "quick" or "full")`, name)
	}
}

// generator names one artifact generator.
type generator struct {
	name string
	fn   func(Scale) (Report, error)
}

// generators returns every artifact generator in paper order. Each
// generator builds its own sim.Machine from fixed seeds, so generators are
// independent and safe to run concurrently.
func generators() []generator {
	return []generator{
		{"rowbuffer", RowBufferGap},
		{"table1", Table1},
		{"table2", Table2},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"act", ACTReduction},
		{"act-adaptive", AdaptiveAttacker},
		{"section8.4", Section84},
		{"framing", ReliableFraming},
	}
}

// IDs returns every artifact generator ID in paper order. The IDs are the
// public registry keys: Run accepts them, cmd/impact-figures -only filters
// by them, and the experiment engine exposes each as a scenario.
func IDs() []string {
	gens := generators()
	out := make([]string, len(gens))
	for i, g := range gens {
		out[i] = g.name
	}
	return out
}

// Run regenerates the single artifact with the given registry ID.
func Run(id string, scale Scale) (Report, error) {
	for _, g := range generators() {
		if g.name == id {
			rep, err := g.fn(scale)
			if err != nil {
				return Report{}, fmt.Errorf("%s: %w", g.name, err)
			}
			return rep, nil
		}
	}
	return Report{}, fmt.Errorf("figures: unknown figure ID %q (known: %s)", id, strings.Join(IDs(), ", "))
}

// All regenerates every artifact sequentially in paper order.
func All(scale Scale) ([]Report, error) {
	gens := generators()
	out := make([]Report, 0, len(gens))
	for _, g := range gens {
		rep, err := g.fn(scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// RunParallel regenerates every artifact using a pool of workers, each
// trial on its own sim.Machine. The returned reports are identical to
// All's — same paper order, same values (every generator is seeded) — only
// the wall-clock time changes. workers == 0 selects runtime.NumCPU(),
// negative worker counts are rejected, pools larger than the generator
// count are clamped to it, and workers == 1 degenerates to the sequential
// path. When several generators fail, the error of the earliest one in
// paper order is returned, again matching All.
func RunParallel(scale Scale, workers int) ([]Report, error) {
	gens := generators()
	if workers < 0 {
		return nil, fmt.Errorf("figures: negative worker count %d", workers)
	}
	if workers == 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(gens) {
		workers = len(gens)
	}
	if workers == 1 {
		return All(scale)
	}
	out := make([]Report, len(gens))
	errs := make([]error, len(gens))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				rep, err := gens[i].fn(scale)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", gens[i].name, err)
					continue
				}
				out[i] = rep
			}
		}()
	}
	for i := range gens {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fmtMbps formats a throughput value.
func fmtMbps(v float64) string { return fmt.Sprintf("%.2f Mb/s", v) }

// fmtPct formats a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// fmtCycles formats a cycle count.
func fmtCycles(v int64) string { return fmt.Sprintf("%d cyc", v) }

// join concatenates label parts.
func join(parts ...string) string { return strings.Join(parts, " ") }

// Package figures regenerates every table and figure of the paper's
// evaluation, printing the paper's reported values next to this
// reproduction's measured values. Each function corresponds to one artifact
// (see DESIGN.md's per-experiment index); All runs the complete set.
package figures

import (
	"fmt"
	"io"
	"strings"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	Label    string
	Paper    string
	Measured string
}

// Report is one regenerated table or figure.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
}

// Render writes the report as an aligned text table.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Title)
	labelW, paperW := len("series"), len("paper")
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
		if len(row.Paper) > paperW {
			paperW = len(row.Paper)
		}
	}
	fmt.Fprintf(w, "%-*s  %*s  %s\n", labelW, "series", paperW, "paper", "measured")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-*s  %*s  %s\n", labelW, row.Label, paperW, row.Paper, row.Measured)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale selects how much work the harness performs.
type Scale int

const (
	// ScaleQuick shrinks message sizes and sweeps for CI-speed runs.
	ScaleQuick Scale = iota + 1
	// ScaleFull reproduces the experiments at full size.
	ScaleFull
)

// bits returns the covert-channel message length for the scale.
func (s Scale) bits() int {
	if s == ScaleFull {
		return 4096
	}
	return 512
}

// All regenerates every artifact in paper order.
func All(scale Scale) ([]Report, error) {
	type gen struct {
		name string
		fn   func(Scale) (Report, error)
	}
	gens := []gen{
		{"rowbuffer", RowBufferGap},
		{"table1", Table1},
		{"table2", Table2},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"act", ACTReduction},
		{"act-adaptive", AdaptiveAttacker},
		{"section8.4", Section84},
		{"framing", ReliableFraming},
	}
	out := make([]Report, 0, len(gens))
	for _, g := range gens {
		rep, err := g.fn(scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// fmtMbps formats a throughput value.
func fmtMbps(v float64) string { return fmt.Sprintf("%.2f Mb/s", v) }

// fmtPct formats a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// fmtCycles formats a cycle count.
func fmtCycles(v int64) string { return fmt.Sprintf("%d cyc", v) }

// join concatenates label parts.
func join(parts ...string) string { return strings.Join(parts, " ") }

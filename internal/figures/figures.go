// Package figures regenerates every table and figure of the paper's
// evaluation, printing the paper's reported values next to this
// reproduction's measured values. Each function corresponds to one artifact
// (see DESIGN.md's per-experiment index); All runs the complete set.
package figures

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
)

// Row is one paper-vs-measured comparison line.
type Row struct {
	Label    string
	Paper    string
	Measured string
}

// Report is one regenerated table or figure.
type Report struct {
	ID    string
	Title string
	Rows  []Row
	Notes []string
}

// Render writes the report as an aligned text table.
func (r Report) Render(w io.Writer) {
	fmt.Fprintf(w, "=== %s — %s ===\n", r.ID, r.Title)
	labelW, paperW := len("series"), len("paper")
	for _, row := range r.Rows {
		if len(row.Label) > labelW {
			labelW = len(row.Label)
		}
		if len(row.Paper) > paperW {
			paperW = len(row.Paper)
		}
	}
	fmt.Fprintf(w, "%-*s  %*s  %s\n", labelW, "series", paperW, "paper", "measured")
	for _, row := range r.Rows {
		fmt.Fprintf(w, "%-*s  %*s  %s\n", labelW, row.Label, paperW, row.Paper, row.Measured)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Scale selects how much work the harness performs.
type Scale int

const (
	// ScaleQuick shrinks message sizes and sweeps for CI-speed runs.
	ScaleQuick Scale = iota + 1
	// ScaleFull reproduces the experiments at full size.
	ScaleFull
)

// bits returns the covert-channel message length for the scale.
func (s Scale) bits() int {
	if s == ScaleFull {
		return 4096
	}
	return 512
}

// generator names one artifact generator.
type generator struct {
	name string
	fn   func(Scale) (Report, error)
}

// generators returns every artifact generator in paper order. Each
// generator builds its own sim.Machine from fixed seeds, so generators are
// independent and safe to run concurrently.
func generators() []generator {
	return []generator{
		{"rowbuffer", RowBufferGap},
		{"table1", Table1},
		{"table2", Table2},
		{"fig2", Fig2},
		{"fig3", Fig3},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"fig12", Fig12},
		{"act", ACTReduction},
		{"act-adaptive", AdaptiveAttacker},
		{"section8.4", Section84},
		{"framing", ReliableFraming},
	}
}

// All regenerates every artifact sequentially in paper order.
func All(scale Scale) ([]Report, error) {
	gens := generators()
	out := make([]Report, 0, len(gens))
	for _, g := range gens {
		rep, err := g.fn(scale)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", g.name, err)
		}
		out = append(out, rep)
	}
	return out, nil
}

// RunParallel regenerates every artifact using a pool of workers, each
// trial on its own sim.Machine. The returned reports are identical to
// All's — same paper order, same values (every generator is seeded) — only
// the wall-clock time changes. workers <= 0 selects runtime.NumCPU(), and
// workers == 1 degenerates to the sequential path. When several
// generators fail, the error of the earliest one in paper order is
// returned, again matching All.
func RunParallel(scale Scale, workers int) ([]Report, error) {
	gens := generators()
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(gens) {
		workers = len(gens)
	}
	if workers == 1 {
		return All(scale)
	}
	out := make([]Report, len(gens))
	errs := make([]error, len(gens))
	work := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				rep, err := gens[i].fn(scale)
				if err != nil {
					errs[i] = fmt.Errorf("%s: %w", gens[i].name, err)
					continue
				}
				out[i] = rep
			}
		}()
	}
	for i := range gens {
		work <- i
	}
	close(work)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}

// fmtMbps formats a throughput value.
func fmtMbps(v float64) string { return fmt.Sprintf("%.2f Mb/s", v) }

// fmtPct formats a percentage.
func fmtPct(v float64) string { return fmt.Sprintf("%.1f%%", v) }

// fmtCycles formats a cycle count.
func fmtCycles(v int64) string { return fmt.Sprintf("%d cyc", v) }

// join concatenates label parts.
func join(parts ...string) string { return strings.Join(parts, " ") }

package figures

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/genomics"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// SideChannelOnce runs the Section 4.3 attack against a fresh machine with
// the given bank count (shared by Fig11, the CLI, and the benches).
func SideChannelOnce(banks, refLen, numReads, sweeps int, seed uint64) (core.SideChannelResult, error) {
	cfg := sim.DefaultConfig()
	cfg.DRAM = cfg.DRAM.WithBanks(banks)
	// Background activity scales with machine size (see DESIGN.md).
	cfg.Noise.EventsPerMCycle = 90 * float64(banks) / 1024
	m, err := sim.New(cfg)
	if err != nil {
		return core.SideChannelResult{}, err
	}
	ref := genomics.NewReference(refLen, seed)
	idx, err := genomics.BuildIndex(ref, genomics.DefaultIndexConfig())
	if err != nil {
		return core.SideChannelResult{}, err
	}
	reads, err := genomics.SampleReads(ref, numReads, 150, 0.02, seed+1)
	if err != nil {
		return core.SideChannelResult{}, err
	}
	victim, err := genomics.NewMapper(m, m.Core(2), ref, idx, genomics.DefaultBankLayout(banks), reads, genomics.DefaultCosts())
	if err != nil {
		return core.SideChannelResult{}, err
	}
	return core.RunSideChannel(m, victim, core.SideChannelOptions{Sweeps: sweeps})
}

// Fig11 reproduces the genomic read-mapping side channel sweep over DRAM
// bank counts.
func Fig11(scale Scale) (Report, error) {
	rep := Report{ID: "Figure 11", Title: "Side-channel leakage throughput and error rate vs. DRAM banks"}
	bankCounts := []int{1024, 8192}
	sweeps, reads, refLen := 3, 8000, 1<<18
	if scale == ScaleFull {
		bankCounts = []int{1024, 2048, 4096, 8192}
		sweeps, reads, refLen = 8, 30000, 1<<20
	}
	paper := map[int]string{
		1024: "7.57 Mb/s, <5% err",
		2048: "falling, rising err",
		4096: "falling, rising err",
		8192: "2.56 Mb/s, <15% err",
	}
	for _, banks := range bankCounts {
		res, err := SideChannelOnce(banks, refLen, reads, sweeps, 7)
		if err != nil {
			return Report{}, err
		}
		rep.Rows = append(rep.Rows, Row{
			Label: fmt.Sprintf("%d banks", banks),
			Paper: paper[banks],
			Measured: fmt.Sprintf("%s, %s err (victim mapped %d reads at %.0f%% accuracy)",
				fmtMbps(res.ThroughputMbps), fmtPct(res.ErrorRate*100), res.VictimReadsMapped, res.VictimAccuracy*100),
		})
	}
	rep.Notes = append(rep.Notes,
		"throughput declines and error rises with bank count as in the paper; the decline is shallower (see EXPERIMENTS.md)")
	return rep, nil
}

// Fig12 reproduces the defense performance comparison.
func Fig12(scale Scale) (Report, error) {
	suiteCfg := workloads.SmallSuiteConfig()
	if scale == ScaleFull {
		suiteCfg = workloads.DefaultSuiteConfig()
	}
	rows, err := workloads.RunDefenseComparison(suiteCfg, workloads.DefenseConfigs())
	if err != nil {
		return Report{}, err
	}
	paper := map[string]string{
		"CTD":              "highest overhead",
		"ACT-Aggressive":   "similar to CTD",
		"ACT-Mild":         "~10% overhead",
		"ACT-Conservative": "~10% overhead",
	}
	rep := Report{ID: "Figure 12", Title: "Normalized execution time under each defense (vs. no defense)"}
	for _, r := range rows {
		rep.Rows = append(rep.Rows, Row{
			Label: r.Defense,
			Paper: paper[r.Defense],
			Measured: fmt.Sprintf("BC %.3f BFS %.3f CC %.3f TC %.3f XS %.3f GMEAN %.3f",
				r.Normalized["BC"], r.Normalized["BFS"], r.Normalized["CC"],
				r.Normalized["TC"], r.Normalized["XS"], r.GMean),
		})
	}
	return rep, nil
}

// ACTReduction reproduces the Section 7.4 attack-throughput analysis: how
// much each defense cuts IMPACT-PnM's effective (capacity-adjusted)
// throughput.
func ACTReduction(scale Scale) (Report, error) {
	msg := core.RandomMessage(scale.Bits(), 99)
	run := func(mem memctrl.Config) (core.Result, error) {
		cfg := sim.DefaultConfig()
		cfg.Mem = mem
		m, err := sim.New(cfg)
		if err != nil {
			return core.Result{}, err
		}
		return core.RunPnM(m, msg, core.Options{})
	}
	baseline, err := run(memctrl.DefaultConfig())
	if err != nil {
		return Report{}, err
	}
	paper := map[string]string{
		"CTD":              "prevents completely",
		"ACT-Aggressive":   "-72% on average",
		"ACT-Mild":         "cannot reduce",
		"ACT-Conservative": "cannot reduce",
	}
	rep := Report{
		ID:    "§7.4",
		Title: "IMPACT-PnM effective throughput under defenses",
		Rows: []Row{{
			Label:    "no defense",
			Paper:    "8.2 Mb/s",
			Measured: fmtMbps(baseline.EffectiveThroughputMbps),
		}},
	}
	for _, d := range workloads.DefenseConfigs() {
		res, err := run(d)
		if err != nil {
			return Report{}, err
		}
		reduction := 0.0
		if baseline.EffectiveThroughputMbps > 0 {
			reduction = 100 * (1 - res.EffectiveThroughputMbps/baseline.EffectiveThroughputMbps)
		}
		name := workloads.DefenseName(d)
		rep.Rows = append(rep.Rows, Row{
			Label:    name,
			Paper:    paper[name],
			Measured: fmt.Sprintf("%s (reduction %.0f%%)", fmtMbps(res.EffectiveThroughputMbps), reduction),
		})
	}
	rep.Notes = append(rep.Notes,
		"ACT-Aggressive eliminates the channel here rather than reducing it 72%: with 4000-epoch penalties every bank stays padded (see EXPERIMENTS.md)")
	return rep, nil
}

package figures

import (
	"reflect"
	"strings"
	"testing"
)

func TestReportRender(t *testing.T) {
	rep := Report{
		ID:    "Test",
		Title: "title",
		Rows:  []Row{{Label: "a", Paper: "1", Measured: "2"}},
		Notes: []string{"a note"},
	}
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	for _, want := range []string{"=== Test — title ===", "series", "paper", "measured", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestRowBufferGapNearPaper(t *testing.T) {
	rep, err := RowBufferGap(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("empty report")
	}
	// The measured gap is in the row label "conflict - hit"; re-derive it
	// numerically instead of parsing strings.
	// (The §3.1 value check lives in the bench harness; here we check
	// the report is populated and well-formed.)
	for _, row := range rep.Rows {
		if row.Measured == "" {
			t.Fatalf("row %q has no measurement", row.Label)
		}
	}
}

func TestTable1And2Populate(t *testing.T) {
	t1, err := Table1(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 5 {
		t.Fatalf("Table 1 rows = %d, want 5", len(t1.Rows))
	}
	t2, err := Table2(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) < 6 {
		t.Fatalf("Table 2 rows = %d", len(t2.Rows))
	}
}

func TestFig8SeparatesBands(t *testing.T) {
	rep, err := Fig8(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if strings.Contains(row.Label, "errors") && !strings.HasPrefix(row.Measured, "0/") {
			t.Fatalf("PoC decoded with errors: %s = %s", row.Label, row.Measured)
		}
	}
}

// TestRunParallelMatchesSequential pins RunParallel's determinism contract:
// same reports, same order, same values as the sequential runner. Run under
// -race (see the Makefile) this also exercises the worker pool for data
// races between concurrently built machines.
func TestRunParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	seq, err := All(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(ScaleQuick, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel reports = %d, sequential = %d", len(par), len(seq))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("report %d (%s) differs between sequential and parallel runs:\nseq: %+v\npar: %+v",
				i, seq[i].ID, seq[i], par[i])
		}
	}
}

func TestAllQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	reports, err := All(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 14 {
		t.Fatalf("reports = %d, want 14", len(reports))
	}
	for _, rep := range reports {
		if len(rep.Rows) == 0 {
			t.Errorf("report %s is empty", rep.ID)
		}
	}
}

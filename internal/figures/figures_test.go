package figures

import (
	"reflect"
	"strings"
	"testing"
)

func TestReportRender(t *testing.T) {
	rep := Report{
		ID:    "Test",
		Title: "title",
		Rows:  []Row{{Label: "a", Paper: "1", Measured: "2"}},
		Notes: []string{"a note"},
	}
	var sb strings.Builder
	rep.Render(&sb)
	out := sb.String()
	for _, want := range []string{"=== Test — title ===", "series", "paper", "measured", "a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, out)
		}
	}
}

func TestRowBufferGapNearPaper(t *testing.T) {
	rep, err := RowBufferGap(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("empty report")
	}
	// The measured gap is in the row label "conflict - hit"; re-derive it
	// numerically instead of parsing strings.
	// (The §3.1 value check lives in the bench harness; here we check
	// the report is populated and well-formed.)
	for _, row := range rep.Rows {
		if row.Measured == "" {
			t.Fatalf("row %q has no measurement", row.Label)
		}
	}
}

func TestTable1And2Populate(t *testing.T) {
	t1, err := Table1(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(t1.Rows) != 5 {
		t.Fatalf("Table 1 rows = %d, want 5", len(t1.Rows))
	}
	t2, err := Table2(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2.Rows) < 6 {
		t.Fatalf("Table 2 rows = %d", len(t2.Rows))
	}
}

func TestFig8SeparatesBands(t *testing.T) {
	rep, err := Fig8(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range rep.Rows {
		if strings.Contains(row.Label, "errors") && !strings.HasPrefix(row.Measured, "0/") {
			t.Fatalf("PoC decoded with errors: %s = %s", row.Label, row.Measured)
		}
	}
}

// TestRunParallelMatchesSequential pins RunParallel's determinism contract:
// same reports, same order, same values as the sequential runner. Run under
// -race (see the Makefile) this also exercises the worker pool for data
// races between concurrently built machines.
func TestRunParallelMatchesSequential(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	seq, err := All(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunParallel(ScaleQuick, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(seq) {
		t.Fatalf("parallel reports = %d, sequential = %d", len(par), len(seq))
	}
	for i := range seq {
		if !reflect.DeepEqual(seq[i], par[i]) {
			t.Errorf("report %d (%s) differs between sequential and parallel runs:\nseq: %+v\npar: %+v",
				i, seq[i].ID, seq[i], par[i])
		}
	}
}

func TestAllQuickScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	reports, err := All(ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 14 {
		t.Fatalf("reports = %d, want 14", len(reports))
	}
	for _, rep := range reports {
		if len(rep.Rows) == 0 {
			t.Errorf("report %s is empty", rep.ID)
		}
	}
}

// TestRegistryIDs pins the exported registry: paper order, stable names.
func TestRegistryIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != 14 {
		t.Fatalf("IDs() = %d entries, want 14", len(ids))
	}
	if ids[0] != "rowbuffer" || ids[1] != "table1" || ids[len(ids)-1] != "framing" {
		t.Fatalf("unexpected registry order: %v", ids)
	}
	seen := map[string]bool{}
	for _, id := range ids {
		if seen[id] {
			t.Fatalf("duplicate registry ID %q", id)
		}
		seen[id] = true
	}
}

// TestRunByID checks single-artifact dispatch and the unknown-ID error.
func TestRunByID(t *testing.T) {
	rep, err := Run("table2", ScaleQuick)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "Table 2" {
		t.Fatalf("Run(table2) returned report %q", rep.ID)
	}
	if _, err := Run("fig99", ScaleQuick); err == nil {
		t.Fatal("unknown ID accepted")
	} else if !strings.Contains(err.Error(), "rowbuffer") {
		t.Fatalf("unknown-ID error does not list known IDs: %v", err)
	}
}

// TestParseScale pins the CLI/JSON scale names.
func TestParseScale(t *testing.T) {
	for name, want := range map[string]Scale{"": ScaleQuick, "quick": ScaleQuick, "full": ScaleFull} {
		got, err := ParseScale(name)
		if err != nil || got != want {
			t.Fatalf("ParseScale(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Fatal("ParseScale accepted an unknown scale")
	}
}

// TestRunParallelWorkerValidation pins the worker-count contract: negative
// counts are rejected, oversized pools are clamped rather than spawning
// idle goroutines.
func TestRunParallelWorkerValidation(t *testing.T) {
	if _, err := RunParallel(ScaleQuick, -1); err == nil {
		t.Fatal("negative worker count accepted")
	}
	if testing.Short() {
		t.Skip("full harness in -short mode")
	}
	// More workers than generators must behave identically to a full pool.
	reports, err := RunParallel(ScaleQuick, 10_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != len(IDs()) {
		t.Fatalf("clamped pool produced %d reports, want %d", len(reports), len(IDs()))
	}
}

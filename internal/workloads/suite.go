package workloads

import (
	"fmt"

	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/stats"
)

// SuiteConfig sizes the Figure 12 workload suite.
type SuiteConfig struct {
	// GraphN and GraphDegree size the GraphBIG input graph. The defaults
	// give an edge array comparable to the LLC so the kernels exercise
	// DRAM, as the paper's full-size inputs do.
	GraphN      int
	GraphDegree int
	// TCSample caps triangle counting; BCSources caps Brandes sources.
	TCSample  int
	BCSources int
	// XSLookups sizes the XSBench kernel.
	XSLookups int
	Seed      uint64
}

// DefaultSuiteConfig returns the full-scale configuration used by
// cmd/impact-defense.
func DefaultSuiteConfig() SuiteConfig {
	return SuiteConfig{
		GraphN:      1 << 17,
		GraphDegree: 12,
		TCSample:    1 << 11,
		BCSources:   2,
		XSLookups:   40000,
		Seed:        11,
	}
}

// SmallSuiteConfig returns a reduced configuration for unit tests and
// benchmarks.
func SmallSuiteConfig() SuiteConfig {
	return SuiteConfig{
		GraphN:      1 << 12,
		GraphDegree: 8,
		TCSample:    256,
		BCSources:   1,
		XSLookups:   2000,
		Seed:        11,
	}
}

// Suite builds the five Figure 12 workloads over shared inputs.
func Suite(cfg SuiteConfig) []Workload {
	g := NewRandomGraph(cfg.GraphN, cfg.GraphDegree, cfg.Seed)
	return []Workload{
		BC{G: g, Sources: cfg.BCSources},
		BFS{G: g},
		CC{G: g, MaxIters: 4},
		TC{G: g, Sample: cfg.TCSample},
		XSBench{GridPoints: 1 << 16, Nuclides: 64, Lookups: cfg.XSLookups, Seed: cfg.Seed},
	}
}

// DefenseRow is one Figure 12 series: a defense and its normalized execution
// time per workload plus the geometric mean.
type DefenseRow struct {
	Defense    string
	Normalized map[string]float64
	GMean      float64
}

// DefenseConfigs returns the Figure 12 defense configurations in plot order.
func DefenseConfigs() []memctrl.Config {
	base := memctrl.DefaultConfig()
	ctd := base
	ctd.Defense = memctrl.DefenseConstantTime
	aggr := base
	aggr.Defense = memctrl.DefenseAdaptive
	aggr.ACT = memctrl.ACTAggressive()
	mild := base
	mild.Defense = memctrl.DefenseAdaptive
	mild.ACT = memctrl.ACTMild()
	cons := base
	cons.Defense = memctrl.DefenseAdaptive
	cons.ACT = memctrl.ACTConservative()
	return []memctrl.Config{ctd, aggr, mild, cons}
}

// DefenseName labels a controller configuration as in Figure 12.
func DefenseName(cfg memctrl.Config) string {
	if cfg.Defense != memctrl.DefenseAdaptive {
		return "CTD"
	}
	switch {
	case cfg.ACT.PenaltyEpochs >= 1000:
		return "ACT-Aggressive"
	case cfg.ACT.ConflictThreshold >= 5:
		return "ACT-Conservative"
	default:
		return "ACT-Mild"
	}
}

// RunDefenseComparison executes every workload under the baseline and each
// defense, returning normalized execution times (Figure 12). It also checks
// that defenses never change computed results, returning an error if a
// checksum diverges.
func RunDefenseComparison(suiteCfg SuiteConfig, defenses []memctrl.Config) ([]DefenseRow, error) {
	suite := Suite(suiteCfg)

	baseline := make(map[string]Result, len(suite))
	for _, w := range suite {
		res, err := runOne(w, memctrl.DefaultConfig())
		if err != nil {
			return nil, err
		}
		baseline[w.Name()] = res
	}

	rows := make([]DefenseRow, 0, len(defenses))
	for _, d := range defenses {
		row := DefenseRow{Defense: DefenseName(d), Normalized: make(map[string]float64, len(suite))}
		norms := make([]float64, 0, len(suite))
		for _, w := range suite {
			res, err := runOne(w, d)
			if err != nil {
				return nil, err
			}
			base := baseline[w.Name()]
			if res.Checksum != base.Checksum {
				return nil, fmt.Errorf("workloads: %s checksum changed under %s: %d != %d",
					w.Name(), row.Defense, res.Checksum, base.Checksum)
			}
			norm := float64(res.Cycles) / float64(base.Cycles)
			row.Normalized[w.Name()] = norm
			norms = append(norms, norm)
		}
		row.GMean = stats.GeometricMean(norms)
		rows = append(rows, row)
	}
	return rows, nil
}

// runOne executes a workload on a fresh machine with the given memory
// controller configuration.
func runOne(w Workload, mem memctrl.Config) (Result, error) {
	cfg := sim.DefaultConfig()
	cfg.Mem = mem
	// Workload runs measure steady application behaviour, not attack
	// noise.
	cfg.Noise.EventsPerMCycle = 0
	m, err := sim.New(cfg)
	if err != nil {
		return Result{}, err
	}
	return w.Run(m.Core(0)), nil
}

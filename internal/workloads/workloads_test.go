package workloads

import (
	"testing"
	"testing/quick"

	"repro/internal/memctrl"
	"repro/internal/sim"
)

func testCore(t *testing.T) *sim.Core {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m.Core(0)
}

func TestGraphCSRInvariants(t *testing.T) {
	check := func(seedRaw uint16, nRaw uint8) bool {
		n := int(nRaw)%200 + 8
		g := NewRandomGraph(n, 4, uint64(seedRaw))
		if g.N != n || len(g.Offsets) != n+1 {
			return false
		}
		if g.Offsets[0] != 0 || int(g.Offsets[n]) != len(g.Edges) {
			return false
		}
		for v := 0; v < n; v++ {
			if g.Offsets[v] > g.Offsets[v+1] {
				return false
			}
			adj := g.Neighbors(int32(v))
			for i, dst := range adj {
				if dst < 0 || int(dst) >= n {
					return false
				}
				if i > 0 && adj[i-1] > dst {
					return false // adjacency must be sorted for TC
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestGraphDeterministic(t *testing.T) {
	a := NewRandomGraph(100, 4, 9)
	b := NewRandomGraph(100, 4, 9)
	if len(a.Edges) != len(b.Edges) {
		t.Fatal("edge counts differ")
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs", i)
		}
	}
}

// refBFSDepthSum computes the BFS checksum independently of the simulated
// kernel.
func refBFSDepthSum(g *Graph) uint64 {
	depth := make([]int32, g.N)
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	queue := []int32{0}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, dst := range g.Neighbors(v) {
			if depth[dst] < 0 {
				depth[dst] = depth[v] + 1
				queue = append(queue, dst)
			}
		}
	}
	var sum uint64
	for _, d := range depth {
		sum += uint64(d + 2)
	}
	return sum
}

func TestBFSMatchesReference(t *testing.T) {
	g := NewRandomGraph(500, 6, 4)
	res := BFS{G: g}.Run(testCore(t))
	if want := refBFSDepthSum(g); res.Checksum != want {
		t.Fatalf("BFS checksum = %d, want %d", res.Checksum, want)
	}
	if res.Cycles <= 0 || res.Accesses <= 0 {
		t.Fatalf("BFS result = %+v", res)
	}
}

func TestWorkloadsDeterministicAcrossRuns(t *testing.T) {
	for _, w := range Suite(SmallSuiteConfig()) {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			a := w.Run(testCore(t))
			b := w.Run(testCore(t))
			if a.Checksum != b.Checksum {
				t.Fatalf("checksum varies: %d vs %d", a.Checksum, b.Checksum)
			}
			if a.Cycles != b.Cycles {
				t.Fatalf("cycles vary on identical machines: %d vs %d", a.Cycles, b.Cycles)
			}
		})
	}
}

func TestDefensesPreserveResults(t *testing.T) {
	// RunDefenseComparison verifies checksums internally and errors on
	// divergence.
	rows, err := RunDefenseComparison(SmallSuiteConfig(), DefenseConfigs())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
}

func TestDefenseOverheadOrdering(t *testing.T) {
	rows, err := RunDefenseComparison(SmallSuiteConfig(), DefenseConfigs())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]DefenseRow{}
	for _, r := range rows {
		byName[r.Defense] = r
	}
	ctd := byName["CTD"].GMean
	aggr := byName["ACT-Aggressive"].GMean
	mild := byName["ACT-Mild"].GMean
	cons := byName["ACT-Conservative"].GMean
	// The paper's Figure 12 ordering: CTD >= Aggressive >= Mild >=
	// Conservative >= 1.
	if !(ctd >= aggr && aggr >= mild && mild >= cons && cons >= 0.999) {
		t.Fatalf("overhead ordering violated: ctd=%.3f aggr=%.3f mild=%.3f cons=%.3f",
			ctd, aggr, mild, cons)
	}
	if ctd < 1.05 {
		t.Fatalf("CTD overhead %.3f implausibly low", ctd)
	}
}

func TestDefenseNames(t *testing.T) {
	for i, want := range []string{"CTD", "ACT-Aggressive", "ACT-Mild", "ACT-Conservative"} {
		if got := DefenseName(DefenseConfigs()[i]); got != want {
			t.Errorf("config %d named %q, want %q", i, got, want)
		}
	}
	if got := DefenseName(memctrl.DefaultConfig()); got != "CTD" {
		// Non-adaptive configs label as CTD by design; document it holds.
		t.Logf("default config labels as %q", got)
	}
}

func TestXSBenchScalesWithLookups(t *testing.T) {
	smaller := XSBench{GridPoints: 1 << 12, Nuclides: 16, Lookups: 200, Seed: 1}.Run(testCore(t))
	larger := XSBench{GridPoints: 1 << 12, Nuclides: 16, Lookups: 400, Seed: 1}.Run(testCore(t))
	if larger.Accesses <= smaller.Accesses {
		t.Fatal("doubling lookups did not increase accesses")
	}
	if larger.Cycles <= smaller.Cycles {
		t.Fatal("doubling lookups did not increase cycles")
	}
}

func TestTCCountsRealTriangles(t *testing.T) {
	// A triangle 0-1-2 with edges in both directions plus a pendant
	// vertex. Build CSR manually.
	g := &Graph{
		N:       4,
		Offsets: []int32{0, 3, 6, 9, 10},
		Edges: []int32{
			1, 2, 3, // 0 -> 1,2,3
			0, 2, 3, // 1 -> 0,2,3
			0, 1, 3, // 2 -> 0,1,3
			0, // 3 -> 0
		},
	}
	res := TC{G: g, Sample: 4}.Run(testCore(t))
	// Triangles counted once via v<u<w ordering: (0,1,2), (0,1,3)? 3 has
	// only edge to 0, so adj(1) contains 3 and adj(0) contains 3 -> the
	// intersection {0<1} includes w=3 with w>u: (0,1,3) counts; (0,2,3)
	// likewise via u=2. Just assert the count is stable and positive.
	if res.Checksum == 0 {
		t.Fatal("no triangles found in a graph containing triangles")
	}
}

package workloads

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// Result reports one workload execution on the simulated machine.
type Result struct {
	Name string
	// Cycles is the simulated execution time.
	Cycles int64
	// Accesses is the number of memory operations issued.
	Accesses int64
	// Checksum is a defense-independent digest of the computation's
	// output: defenses must change timing, never results.
	Checksum uint64
}

// Workload is one Figure 12 benchmark.
type Workload interface {
	Name() string
	Run(core *sim.Core) Result
}

// BFS is GraphBIG's breadth-first search from vertex 0.
type BFS struct{ G *Graph }

// Name implements Workload.
func (BFS) Name() string { return "BFS" }

// Run implements Workload.
func (w BFS) Run(core *sim.Core) Result {
	mem := NewMem(core)
	start := core.Now()
	depth := make([]int32, w.G.N)
	for i := range depth {
		depth[i] = -1
	}
	depth[0] = 0
	frontier := []int32{0}
	var checksum uint64
	for len(frontier) > 0 {
		var next []int32
		for _, v := range frontier {
			mem.Load4(baseOffsets, int(v), 0x1001)
			mem.Load4(baseOffsets, int(v)+1, 0x1002)
			for ei := w.G.Offsets[v]; ei < w.G.Offsets[v+1]; ei++ {
				mem.Load4(baseEdges, int(ei), 0x1003)
				dst := w.G.Edges[ei]
				mem.Load4(baseVisited, int(dst), 0x1004)
				if depth[dst] < 0 {
					depth[dst] = depth[v] + 1
					mem.Store4(baseVisited, int(dst), 0x1005)
					next = append(next, dst)
				}
			}
		}
		frontier = next
	}
	for _, d := range depth {
		checksum += uint64(d + 2)
	}
	return Result{Name: w.Name(), Cycles: core.Now() - start, Accesses: mem.Accesses(), Checksum: checksum}
}

// CC is GraphBIG's connected components via label propagation.
type CC struct {
	G        *Graph
	MaxIters int
}

// Name implements Workload.
func (CC) Name() string { return "CC" }

// Run implements Workload.
func (w CC) Run(core *sim.Core) Result {
	mem := NewMem(core)
	start := core.Now()
	iters := w.MaxIters
	if iters <= 0 {
		iters = 8
	}
	labels := make([]int32, w.G.N)
	for i := range labels {
		labels[i] = int32(i)
	}
	for it := 0; it < iters; it++ {
		changed := false
		for v := int32(0); int(v) < w.G.N; v++ {
			mem.Load4(baseOffsets, int(v), 0x2001)
			mem.Load4(baseLabels, int(v), 0x2002)
			best := labels[v]
			for ei := w.G.Offsets[v]; ei < w.G.Offsets[v+1]; ei++ {
				mem.Load4(baseEdges, int(ei), 0x2003)
				dst := w.G.Edges[ei]
				mem.Load4(baseLabels, int(dst), 0x2004)
				if labels[dst] < best {
					best = labels[dst]
				}
			}
			if best < labels[v] {
				labels[v] = best
				mem.Store4(baseLabels, int(v), 0x2005)
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	var checksum uint64
	for _, l := range labels {
		checksum += uint64(l)
	}
	return Result{Name: w.Name(), Cycles: core.Now() - start, Accesses: mem.Accesses(), Checksum: checksum}
}

// TC is GraphBIG's triangle counting via sorted adjacency intersection over
// a vertex sample (real deployments shard the same way).
type TC struct {
	G      *Graph
	Sample int
}

// Name implements Workload.
func (TC) Name() string { return "TC" }

// Run implements Workload.
func (w TC) Run(core *sim.Core) Result {
	mem := NewMem(core)
	start := core.Now()
	sample := w.Sample
	if sample <= 0 || sample > w.G.N {
		sample = w.G.N
	}
	var triangles uint64
	for v := int32(0); int(v) < sample; v++ {
		mem.Load4(baseOffsets, int(v), 0x3001)
		adjV := w.G.Neighbors(v)
		for ui, u := range adjV {
			mem.Load4(baseEdges, int(w.G.Offsets[v])+ui, 0x3002)
			if u <= v {
				continue
			}
			adjU := w.G.Neighbors(u)
			// Two-pointer intersection of sorted adjacency lists.
			i, j := 0, 0
			for i < len(adjV) && j < len(adjU) {
				mem.Load4(baseEdges, int(w.G.Offsets[v])+i, 0x3003)
				mem.Load4(baseEdges, int(w.G.Offsets[u])+j, 0x3004)
				switch {
				case adjV[i] == adjU[j]:
					if adjV[i] > u {
						triangles++
					}
					i++
					j++
				case adjV[i] < adjU[j]:
					i++
				default:
					j++
				}
			}
		}
	}
	return Result{Name: w.Name(), Cycles: core.Now() - start, Accesses: mem.Accesses(), Checksum: triangles}
}

// BC is GraphBIG's betweenness centrality (Brandes' algorithm) from a few
// source vertices.
type BC struct {
	G       *Graph
	Sources int
}

// Name implements Workload.
func (BC) Name() string { return "BC" }

// Run implements Workload.
func (w BC) Run(core *sim.Core) Result {
	mem := NewMem(core)
	start := core.Now()
	sources := w.Sources
	if sources <= 0 {
		sources = 2
	}
	n := w.G.N
	centrality := make([]float64, n)
	for s := 0; s < sources && s < n; s++ {
		// Forward BFS accumulating shortest-path counts (sigma).
		sigma := make([]float64, n)
		dist := make([]int32, n)
		for i := range dist {
			dist[i] = -1
		}
		sigma[s] = 1
		dist[s] = 0
		order := []int32{int32(s)}
		for qi := 0; qi < len(order); qi++ {
			v := order[qi]
			mem.Load4(baseOffsets, int(v), 0x4001)
			for ei := w.G.Offsets[v]; ei < w.G.Offsets[v+1]; ei++ {
				mem.Load4(baseEdges, int(ei), 0x4002)
				dst := w.G.Edges[ei]
				mem.Load4(baseSigma, int(dst), 0x4003)
				if dist[dst] < 0 {
					dist[dst] = dist[v] + 1
					order = append(order, dst)
				}
				if dist[dst] == dist[v]+1 {
					sigma[dst] += sigma[v]
					mem.Store4(baseSigma, int(dst), 0x4004)
				}
			}
		}
		// Reverse dependency accumulation.
		delta := make([]float64, n)
		for qi := len(order) - 1; qi >= 0; qi-- {
			v := order[qi]
			mem.Load4(baseOffsets, int(v), 0x4005)
			for ei := w.G.Offsets[v]; ei < w.G.Offsets[v+1]; ei++ {
				mem.Load4(baseEdges, int(ei), 0x4006)
				dst := w.G.Edges[ei]
				mem.Load4(baseDelta, int(dst), 0x4007)
				if dist[dst] == dist[v]+1 && sigma[dst] > 0 {
					delta[v] += sigma[v] / sigma[dst] * (1 + delta[dst])
				}
			}
			if v != int32(s) {
				centrality[v] += delta[v]
				mem.Store4(baseDelta, int(v), 0x4008)
			}
		}
	}
	var checksum uint64
	for _, c := range centrality {
		checksum += uint64(c * 16)
	}
	return Result{Name: w.Name(), Cycles: core.Now() - start, Accesses: mem.Accesses(), Checksum: checksum}
}

// XSBench is the Monte Carlo neutron-transport cross-section lookup kernel
// (Tramm et al., PHYSOR'14): random energy lookups binary-search an energy
// grid, then gather cross sections for every nuclide at that grid point.
type XSBench struct {
	GridPoints int
	Nuclides   int
	Lookups    int
	Seed       uint64
}

// Name implements Workload.
func (XSBench) Name() string { return "XS" }

// Run implements Workload.
func (w XSBench) Run(core *sim.Core) Result {
	mem := NewMem(core)
	start := core.Now()
	grid := w.GridPoints
	if grid <= 0 {
		grid = 1 << 16
	}
	nuclides := w.Nuclides
	if nuclides <= 0 {
		nuclides = 64
	}
	lookups := w.Lookups
	if lookups <= 0 {
		lookups = 50000
	}
	rng := stats.NewRNG(w.Seed + 1)
	var checksum uint64
	for l := 0; l < lookups; l++ {
		target := rng.Intn(grid)
		// Binary search over the energy grid.
		lo, hi := 0, grid-1
		for lo < hi {
			mid := (lo + hi) / 2
			mem.Load4(baseGrid, mid, 0x5001)
			if mid < target {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		// Gather the macroscopic cross section over all nuclides.
		for nu := 0; nu < nuclides; nu++ {
			mem.Load4(baseXS, lo*nuclides+nu, 0x5002)
			checksum += uint64(lo*nuclides+nu) & 0xff
		}
	}
	return Result{Name: w.Name(), Cycles: core.Now() - start, Accesses: mem.Accesses(), Checksum: checksum}
}

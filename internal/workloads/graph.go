// Package workloads implements the benchmark programs of the paper's
// defense evaluation (Figure 12): four GraphBIG kernels — Betweenness
// Centrality, Breadth-First Search, Connected Components, Triangle
// Counting — and an XSBench-style Monte Carlo cross-section lookup kernel.
// Each workload runs its real algorithm over synthetic data, issuing every
// data-structure access through the simulated cache hierarchy and memory
// controller, so defense mechanisms slow them down exactly as they would on
// the modeled machine.
package workloads

import (
	"sort"

	"repro/internal/stats"
)

// Graph is a directed graph in compressed sparse row (CSR) form, the layout
// GraphBIG kernels traverse.
type Graph struct {
	N       int
	Offsets []int32 // len N+1
	Edges   []int32 // len M
}

// NewRandomGraph builds a graph with n vertices and approximately n*degree
// edges using a skewed (preferential-ish) endpoint distribution so some
// vertices are hubs, as in real graph workloads.
func NewRandomGraph(n, degree int, seed uint64) *Graph {
	rng := stats.NewRNG(seed)
	adj := make([][]int32, n)
	m := n * degree
	for i := 0; i < m; i++ {
		src := rng.Intn(n)
		var dst int
		if rng.Bool(0.25) {
			// Skew: square the uniform draw toward low vertex ids,
			// creating hubs.
			u := rng.Float64()
			dst = int(u * u * float64(n))
		} else {
			dst = rng.Intn(n)
		}
		if dst == src {
			dst = (dst + 1) % n
		}
		adj[src] = append(adj[src], int32(dst))
	}
	g := &Graph{N: n, Offsets: make([]int32, n+1)}
	for v := 0; v < n; v++ {
		sort.Slice(adj[v], func(i, j int) bool { return adj[v][i] < adj[v][j] })
		g.Offsets[v+1] = g.Offsets[v] + int32(len(adj[v]))
	}
	g.Edges = make([]int32, 0, m)
	for v := 0; v < n; v++ {
		g.Edges = append(g.Edges, adj[v]...)
	}
	return g
}

// NumEdges returns the edge count.
func (g *Graph) NumEdges() int { return len(g.Edges) }

// Neighbors returns the adjacency list of v.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

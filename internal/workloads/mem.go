package workloads

import "repro/internal/sim"

// Array base virtual addresses: each logical array of a workload lives in
// its own region so cache and DRAM behaviour reflects real data layouts.
const (
	baseOffsets  = 0x10_0000_0000
	baseEdges    = 0x11_0000_0000
	baseVisited  = 0x12_0000_0000
	baseLabels   = 0x13_0000_0000
	baseSigma    = 0x14_0000_0000
	baseDelta    = 0x15_0000_0000
	baseFrontier = 0x16_0000_0000
	baseGrid     = 0x20_0000_0000
	baseXS       = 0x21_0000_0000
)

// Mem issues a workload's memory operations through a simulated core, and
// charges a small per-operation compute cost so the memory share of total
// runtime is realistic for memory-intensive kernels.
type Mem struct {
	core      *sim.Core
	computeOp int64
	accesses  int64
}

// NewMem wraps a core with the default 3-cycle per-op compute cost.
func NewMem(core *sim.Core) *Mem {
	return &Mem{core: core, computeOp: 3}
}

// Load4 reads the 4-byte element idx of the array at base, with pc
// identifying the load site (prefetchers key on it).
func (w *Mem) Load4(base uint64, idx int, pc uint64) {
	w.core.Advance(w.computeOp)
	w.core.Load(base+uint64(idx)*4, pc)
	w.accesses++
}

// Store4 writes the 4-byte element idx of the array at base.
func (w *Mem) Store4(base uint64, idx int, pc uint64) {
	w.core.Advance(w.computeOp)
	w.core.Hierarchy().Store(w.core.Now(), base+uint64(idx)*4, pc)
	w.core.Advance(1) // stores retire off the critical path
	w.accesses++
}

// Compute charges pure compute cycles.
func (w *Mem) Compute(cycles int64) {
	w.core.Advance(cycles)
}

// Accesses returns the number of memory operations issued.
func (w *Mem) Accesses() int64 { return w.accesses }

// Now returns the core clock.
func (w *Mem) Now() int64 { return w.core.Now() }

// Cross-module integration tests: end-to-end invariants of the paper's
// evaluation that span the simulator, the PiM engines, the attacks, the
// victim application and the defenses.
package repro_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/genomics"
	"repro/internal/memctrl"
	"repro/internal/sim"
)

func quietTestMachine(t *testing.T, mutate func(*sim.Config)) *sim.Machine {
	t.Helper()
	cfg := sim.DefaultConfig()
	cfg.Noise.EventsPerMCycle = 0
	if mutate != nil {
		mutate(&cfg)
	}
	m, err := sim.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestEndToEndDeterminism: identical machines and messages must yield
// bit-identical results — the property that makes every experiment in this
// repository reproducible.
func TestEndToEndDeterminism(t *testing.T) {
	msg := core.RandomMessage(1024, 55)
	runs := make([]core.Result, 2)
	for i := range runs {
		cfg := sim.DefaultConfig() // default noise ON: determinism must hold under noise too
		m, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.RunPnM(m, msg, core.Options{RecordLatencies: true})
		if err != nil {
			t.Fatal(err)
		}
		runs[i] = res
	}
	if runs[0].Cycles != runs[1].Cycles || runs[0].Correct != runs[1].Correct {
		t.Fatalf("nondeterministic runs: %+v vs %+v", runs[0], runs[1])
	}
	for i := range runs[0].Latencies {
		if runs[0].Latencies[i] != runs[1].Latencies[i] {
			t.Fatalf("latency %d differs: %d vs %d", i, runs[0].Latencies[i], runs[1].Latencies[i])
		}
	}
}

// TestMassagedChannel: the full attack chain — discover co-located pairs by
// timing, then run a covert channel over the discovered banks.
func TestMassagedChannel(t *testing.T) {
	m := quietTestMachine(t, nil)
	massage, err := core.MassageMemory(m, m.Core(0), 8)
	if err != nil {
		t.Fatal(err)
	}
	banks := make([]int, 0, len(massage.Pairs))
	for _, pair := range massage.Pairs {
		coord := m.Mapper().Map(pair[0])
		banks = append(banks, coord.FlatBank(m.Config().DRAM))
	}
	res, err := core.RunPnM(m, core.RandomMessage(256, 56), core.Options{Banks: banks})
	if err != nil {
		t.Fatal(err)
	}
	if res.ErrorRate > 0.02 {
		t.Fatalf("channel over timing-discovered banks errored %.2f%%", res.ErrorRate*100)
	}
}

// TestVictimUnaffectedResultsUnderAttack: the read mapper must compute the
// same mappings whether or not it is being spied on (the attack is passive).
func TestVictimUnaffectedResultsUnderAttack(t *testing.T) {
	build := func() (*sim.Machine, *genomics.Mapper) {
		cfg := sim.DefaultConfig()
		cfg.DRAM = cfg.DRAM.WithBanks(64)
		cfg.Noise.EventsPerMCycle = 0
		m, err := sim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref := genomics.NewReference(1<<17, 7)
		idx, err := genomics.BuildIndex(ref, genomics.DefaultIndexConfig())
		if err != nil {
			t.Fatal(err)
		}
		reads, err := genomics.SampleReads(ref, 200, 150, 0.02, 8)
		if err != nil {
			t.Fatal(err)
		}
		v, err := genomics.NewMapper(m, m.Core(2), ref, idx, genomics.DefaultBankLayout(64), reads, genomics.DefaultCosts())
		if err != nil {
			t.Fatal(err)
		}
		return m, v
	}

	_, alone := build()
	if err := alone.Run(); err != nil {
		t.Fatal(err)
	}

	m, spied := build()
	if _, err := core.RunSideChannel(m, spied, core.SideChannelOptions{Sweeps: 4}); err != nil {
		t.Fatal(err)
	}
	// Drain any remaining reads so both runs cover the same input.
	if err := spied.Run(); err != nil {
		t.Fatal(err)
	}

	a, b := alone.Results(), spied.Results()
	if len(a) != len(b) {
		t.Fatalf("result counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].MappedPos != b[i].MappedPos {
			t.Fatalf("read %d mapped to %d alone but %d under attack", i, a[i].MappedPos, b[i].MappedPos)
		}
	}
}

// TestDefenseHierarchy: end-to-end, the effective covert throughput under
// each defense must order none > ACT-Conservative >= ACT-Mild > CTD.
func TestDefenseHierarchy(t *testing.T) {
	msg := core.RandomMessage(1024, 57)
	run := func(d memctrl.Defense, act memctrl.ACTConfig) float64 {
		m := quietTestMachine(t, func(cfg *sim.Config) {
			cfg.Mem.Defense = d
			cfg.Mem.ACT = act
		})
		res, err := core.RunPnM(m, msg, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return res.EffectiveThroughputMbps
	}
	none := run(memctrl.DefenseNone, memctrl.ACTConfig{})
	cons := run(memctrl.DefenseAdaptive, memctrl.ACTConservative())
	mild := run(memctrl.DefenseAdaptive, memctrl.ACTMild())
	ctd := run(memctrl.DefenseConstantTime, memctrl.ACTConfig{})
	if !(none >= cons && cons >= mild && mild > ctd) {
		t.Fatalf("defense hierarchy violated: none=%.2f cons=%.2f mild=%.2f ctd=%.2f",
			none, cons, mild, ctd)
	}
	if ctd > 0.2 {
		t.Fatalf("CTD left %.2f Mb/s effective", ctd)
	}
}

// TestPipelinedAndSerialAgreeOnPayload: both protocol variants must deliver
// the same message.
func TestPipelinedAndSerialAgreeOnPayload(t *testing.T) {
	payload := core.BitsFromBytes([]byte("pipelined and serial must agree"))
	serial, err := core.RunPnM(quietTestMachine(t, nil), payload, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pipelined, err := core.RunPnMPipelined(quietTestMachine(t, nil), payload, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if string(core.BytesFromBits(serial.Decoded)) != string(core.BytesFromBits(pipelined.Decoded)) {
		t.Fatal("protocol variants decoded different payloads")
	}
}

package main

import "testing"

func TestRunSmallSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("defense suite in -short mode")
	}
	if err := run([]string{"-small", "-bits", "256"}); err != nil {
		t.Fatal(err)
	}
}

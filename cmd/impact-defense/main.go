// Command impact-defense evaluates the paper's Section 7 defenses: the
// Figure 12 performance comparison (CTD and the three ACT variants over the
// GraphBIG + XSBench suite) and the Section 7.4 attack-throughput reduction
// of ACT against IMPACT-PnM.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/memctrl"
	"repro/internal/sim"
	"repro/internal/workloads"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "impact-defense:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("impact-defense", flag.ContinueOnError)
	var (
		small      = fs.Bool("small", false, "use the reduced workload suite")
		throughput = fs.Bool("attack-throughput", true, "also report ACT's effect on IMPACT-PnM throughput")
		bits       = fs.Int("bits", 2048, "message bits for the attack-throughput experiment")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	suiteCfg := workloads.DefaultSuiteConfig()
	if *small {
		suiteCfg = workloads.SmallSuiteConfig()
	}
	rows, err := workloads.RunDefenseComparison(suiteCfg, workloads.DefenseConfigs())
	if err != nil {
		return err
	}

	names := []string{"BC", "BFS", "CC", "TC", "XS"}
	fmt.Printf("%-18s", "defense")
	for _, n := range names {
		fmt.Printf(" %8s", n)
	}
	fmt.Printf(" %8s\n", "GMEAN")
	for _, row := range rows {
		fmt.Printf("%-18s", row.Defense)
		for _, n := range names {
			fmt.Printf(" %8.3f", row.Normalized[n])
		}
		fmt.Printf(" %8.3f\n", row.GMean)
	}

	if !*throughput {
		return nil
	}
	fmt.Println()
	fmt.Println("IMPACT-PnM throughput under ACT (Section 7.4):")
	msg := core.RandomMessage(*bits, 99)
	baseline, err := runPnMWith(memctrl.DefaultConfig(), msg)
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %10.2f Mb/s effective (err %.1f%%)\n", "no defense", baseline.EffectiveThroughputMbps, baseline.ErrorRate*100)
	for _, d := range workloads.DefenseConfigs() {
		res, err := runPnMWith(d, msg)
		if err != nil {
			return err
		}
		reduction := 0.0
		if baseline.EffectiveThroughputMbps > 0 {
			reduction = 100 * (1 - res.EffectiveThroughputMbps/baseline.EffectiveThroughputMbps)
		}
		fmt.Printf("%-18s %10.2f Mb/s effective (err %.1f%%, reduction %.0f%%)\n",
			workloads.DefenseName(d), res.EffectiveThroughputMbps, res.ErrorRate*100, reduction)
	}
	return nil
}

func runPnMWith(mem memctrl.Config, msg []bool) (core.Result, error) {
	cfg := sim.DefaultConfig()
	cfg.Mem = mem
	m, err := sim.New(cfg)
	if err != nil {
		return core.Result{}, err
	}
	return core.RunPnM(m, msg, core.Options{})
}
